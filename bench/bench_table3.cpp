// Reproduces Table III of Monteiro et al., DAC'96: gate-level area and
// power of the original vs power-managed machine, measured with random
// vectors on our unit-delay (glitch-counting) netlist simulator — the
// substitute for Synopsys Design Compiler + DesignPower.
//
// Both machines are functionally checked against the CDFG interpreter on
// every vector; a nonzero mismatch count would invalidate the measurement.

#include <iostream>

#include "analysis/experiments.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main() {
  using namespace pmsched;

  std::cout << "Table III — Power Estimation (gate-level, random vectors)\n"
            << "Paper (Synopsys): dealer 1.06x area / 24.5% power, gcd 1.11x / 10.0%,\n"
            << "vender 0.98x / 32.8%. Absolute units differ (our substrate is a\n"
            << "NAND2-equivalent toggle simulator); orderings and directions are the\n"
            << "comparable content.\n\n";

  analysis::Table3Options opts;
  opts.samples = 200;
  const std::vector<analysis::Table3Row> rows = analysis::table3(opts);

  AsciiTable table({"Circuit", "Ctl Stp", "Area Orig", "Area New", "Incr.", "Power Orig",
                    "Power New", "Red.(%)", "Func. mismatches"});
  for (const analysis::Table3Row& row : rows) {
    table.addRow({row.circuit, std::to_string(row.steps), fixed(row.areaOrig, 0),
                  fixed(row.areaNew, 0), fixed(row.areaRatio, 2), fixed(row.powerOrig, 0),
                  fixed(row.powerNew, 0), fixed(row.reductionPct, 1),
                  std::to_string(row.functionalMismatches)});
  }
  std::cout << table.render() << "\n";

  std::cout << "Controller complexity (the paper: \"the controller is more complex for\n"
               "the power managed circuit\"):\n";
  for (const analysis::Table3Row& row : rows)
    std::cout << "  " << row.circuit << ": controller area " << fixed(row.controllerAreaOrig, 0)
              << " -> " << fixed(row.controllerAreaNew, 0) << " NAND2-eq ("
              << row.controllerGatedLoads << " gated loads)\n";
  std::cout << "\n";

  JsonWriter json;
  json.beginObject().key("table").value("III").key("samples").value(opts.samples)
      .key("rows").beginArray();
  for (const analysis::Table3Row& row : rows) {
    json.beginObject()
        .key("circuit").value(row.circuit)
        .key("steps").value(row.steps)
        .key("area_orig").value(row.areaOrig)
        .key("area_new").value(row.areaNew)
        .key("area_ratio").value(row.areaRatio)
        .key("power_orig").value(row.powerOrig)
        .key("power_new").value(row.powerNew)
        .key("reduction_pct").value(row.reductionPct)
        .key("functional_mismatches").value(row.functionalMismatches)
        .endObject();
  }
  json.endArray().endObject();
  std::cout << "JSON: " << json.str() << "\n";
  return 0;
}
