// Ablation for §IV-A (multiplexor reordering): how the order in which
// muxes are offered power management changes the outcome.
//
// The paper processes muxes closest-to-the-outputs first and notes that a
// greedy pick "may impede the selection of one or more other multiplexors";
// it announces a reordering pre-processing as future work. We compare:
//   * OutputFirst  — the paper's order,
//   * InputFirst   — the reverse (a deliberately bad baseline),
//   * BySavings    — greedy by potential gated power (§IV-A's idea),
//   * Optimal      — exact best subset (our extension; feasibility of a mux
//                    set is order-independent, so exact search is sound).

#include <iostream>

#include "analysis/experiments.hpp"
#include "power/activation.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace pmsched;

struct Outcome {
  int pmMuxes = 0;
  double reductionPct = 0;
};

Outcome evaluate(const Graph& g, int steps, MuxOrdering ordering, bool optimal) {
  PowerManagedDesign design =
      optimal ? applyPowerManagementOptimal(g, steps) : applyPowerManagement(g, steps, ordering);
  applySharedGating(design);
  const ActivationResult activation = analyzeActivation(design);
  return {design.managedCount(),
          activation.reductionPercent(OpPowerModel::paperWeights())};
}

}  // namespace

int main() {
  using namespace pmsched;

  std::cout << "Ablation §IV-A — multiplexor processing order\n\n";
  AsciiTable table({"Circuit", "Steps", "OutputFirst", "InputFirst", "BySavings", "ExactSubset"});

  for (const auto& circuit : circuits::paperCircuits()) {
    const Graph g = circuit.build();
    for (const int steps : circuits::tableIISteps(circuit.name)) {
      const Outcome out = evaluate(g, steps, MuxOrdering::OutputFirst, false);
      const Outcome in = evaluate(g, steps, MuxOrdering::InputFirst, false);
      const Outcome sav = evaluate(g, steps, MuxOrdering::BySavings, false);
      const Outcome opt = evaluate(g, steps, MuxOrdering::OutputFirst, true);
      auto cell = [](const Outcome& o) {
        return std::to_string(o.pmMuxes) + " muxes / " + fixed(o.reductionPct, 2) + "%";
      };
      table.addRow({circuit.name, std::to_string(steps), cell(out), cell(in), cell(sav),
                    cell(opt)});
    }
    table.addSeparator();
  }
  std::cout << table.render();
  std::cout << "\nReading: when slack is scarce, order matters — a mux committed early can\n"
               "consume the slack another mux needed (dealer@4: InputFirst loses 5 points).\n"
               "ExactSubset maximizes a static savings proxy (nesting discounts ignored),\n"
               "so a lucky greedy order can still edge it out on the exact metric; it\n"
               "bounds what the §IV-A reordering preprocessing could recover per-proxy.\n";
  return 0;
}
