// Reproduces Figures 1 and 2 of Monteiro et al., DAC'96: the |a-b| example.
//
// Figure 1: with 2 control steps the schedule is unique — the comparison
// and both subtractions share step 1, needing two subtractors, and no
// power management is possible.
// Figure 2(a): 3 control steps, traditional schedule — one subtractor
// suffices but both subtractions still always execute.
// Figure 2(b): 3 control steps, power-managed schedule — a>b runs first
// and only the selected subtraction loads its operands.

#include <cstdio>
#include <iostream>

#include "analysis/experiments.hpp"

int main() {
  using namespace pmsched;

  std::cout << "Figures 1 & 2 — scheduling |a-b|\n==================================\n\n";
  for (const analysis::AbsdiffFigure& fig : analysis::absdiffFigures()) {
    const char* label = fig.steps == 2
                            ? (fig.powerManaged ? "Figure 1 (PM attempted)" : "Figure 1")
                            : (fig.powerManaged ? "Figure 2(b)" : "Figure 2(a)");
    std::cout << label << " — " << fig.steps << " control steps, "
              << (fig.powerManaged ? "power-managed" : "traditional") << ":\n";
    std::cout << fig.scheduleText;
    std::printf("  power-managed muxes: %d, subtractors: %d, datapath power reduction: %.2f%%\n\n",
                fig.pmMuxes, fig.subtractors, fig.powerReductionPct);
  }

  std::cout << "Paper's narrative check:\n"
               "  * 2 steps: unique schedule, 2 subtractors, no power management.\n"
               "  * 3 steps + PM: comparison scheduled first; each subtraction then\n"
               "    executes with probability 1/2 (datapath reduction 3/11 = 27.27%).\n";
  return 0;
}
