// Reproduces Table II of Monteiro et al., DAC'96: for each circuit and
// control-step budget, the number of power-managed muxes, the execution-unit
// area increase, the average number of operations executed per sample
// (exact, under fair independent selects), and the datapath power reduction
// with the paper's op weights (MUX:1 COMP:4 +:3 -:3 *:20).
//
// A JSON dump follows the table so EXPERIMENTS.md numbers are regenerable.

#include <iostream>

#include "analysis/experiments.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main() {
  using namespace pmsched;

  std::cout << "Table II — Average Number of Operations Executed Using Power Management\n"
            << "(paper values in brackets; see EXPERIMENTS.md for the per-row discussion)\n\n";

  struct PaperRow {
    const char* circuit;
    int steps;
    int pmMuxes;
    double area;
    const char* mux;
    const char* comp;
    const char* add;
    const char* sub;
    const char* mul;
    double red;
  };
  // The paper's Table II, verbatim.
  const PaperRow paper[] = {
      {"dealer", 4, 1, 1.20, "2.00", "2.00", "2.00", "0.50", "0.00", 27.00},
      {"dealer", 5, 1, 1.00, "2.00", "2.00", "2.00", "0.50", "0.00", 27.00},
      {"dealer", 6, 2, 1.00, "2.00", "2.00", "1.75", "0.25", "0.00", 33.33},
      {"gcd", 5, 1, 1.00, "5.50", "2.00", "0.00", "0.50", "0.00", 11.76},
      {"gcd", 6, 1, 1.00, "5.50", "2.00", "0.00", "0.50", "0.00", 11.76},
      {"gcd", 7, 2, 1.05, "5.50", "2.00", "0.00", "0.25", "0.00", 16.18},
      {"vender", 5, 4, 1.04, "4.50", "2.50", "1.50", "1.00", "1.00", 41.67},
      {"vender", 6, 4, 1.00, "4.50", "2.50", "1.50", "1.00", "1.00", 41.67},
      {"cordic", 48, 38, 1.00, "47.00", "16.00", "24.00", "27.00", "0.00", 30.16},
      {"cordic", 52, 46, 1.17, "47.00", "16.00", "22.00", "23.00", "0.00", 34.92},
  };

  const std::vector<analysis::Table2Row> rows = analysis::table2();

  AsciiTable table({"Circuit", "Steps", "P.Man. Muxs", "Area Incr.", "MUX", "COMP", "+", "-",
                    "*", "Power Red.(%)"});
  std::string lastCircuit;
  std::size_t paperIdx = 0;
  for (const analysis::Table2Row& row : rows) {
    if (!lastCircuit.empty() && row.circuit != lastCircuit) table.addSeparator();
    lastCircuit = row.circuit;

    std::string paperNote;
    if (paperIdx < std::size(paper) && paper[paperIdx].circuit == row.circuit &&
        paper[paperIdx].steps == row.steps) {
      paperNote = " [" + fixed(paper[paperIdx].red, 2) + "]";
      ++paperIdx;
    }
    table.addRow({row.circuit, std::to_string(row.steps), std::to_string(row.pmMuxes),
                  fixed(row.areaIncrease, 2), row.avgMux.toFixed(2), row.avgComp.toFixed(2),
                  row.avgAdd.toFixed(2), row.avgSub.toFixed(2), row.avgMul.toFixed(2),
                  fixed(row.powerReductionPct, 2) + paperNote});
  }
  std::cout << table.render() << "\n";

  std::cout << "Shared-gated operations per row (our OR-composed extension, required for\n"
               "the paper's dealer '+ = 1.75' entry): ";
  for (const analysis::Table2Row& row : rows)
    if (row.sharedGated > 0)
      std::cout << row.circuit << "@" << row.steps << ": " << row.sharedGated << "  ";
  std::cout << "\n\n";

  JsonWriter json;
  json.beginObject().key("table").value("II").key("rows").beginArray();
  for (const analysis::Table2Row& row : rows) {
    json.beginObject()
        .key("circuit").value(row.circuit)
        .key("steps").value(row.steps)
        .key("pm_muxes").value(row.pmMuxes)
        .key("shared_gated").value(row.sharedGated)
        .key("area_increase").value(row.areaIncrease)
        .key("avg_mux").value(row.avgMux.toDouble())
        .key("avg_comp").value(row.avgComp.toDouble())
        .key("avg_add").value(row.avgAdd.toDouble())
        .key("avg_sub").value(row.avgSub.toDouble())
        .key("avg_mul").value(row.avgMul.toDouble())
        .key("power_reduction_pct").value(row.powerReductionPct)
        .endObject();
  }
  json.endArray().endObject();
  std::cout << "JSON: " << json.str() << "\n";
  return 0;
}
