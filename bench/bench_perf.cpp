// Runtime micro-benchmarks (google-benchmark): cost of the
// power-management transform and the schedulers as a function of CDFG
// size, on random layered DFGs and on the paper circuits.
//
// BM_ForceDirected (incremental) and BM_ForceDirectedReference (the
// retained from-scratch algorithm) run on identical graphs, so one
// --benchmark_format=json dump (see tools/bench_report.sh) records the
// speedup of the incremental scheduler at every size.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "alloc/binding.hpp"
#include "cdfg/analysis.hpp"
#include "cdfg/textio.hpp"
#include "circuits/circuits.hpp"
#include "ctrl/controller.hpp"
#include "explore/explore.hpp"
#include "power/activation.hpp"
#include "sched/bdd.hpp"
#include "sched/force_directed.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/power_transform.hpp"
#include "sched/probe_farm.hpp"
#include "sched/shared_gating.hpp"
#include "sched/timeframe_oracle.hpp"
#include "server/server.hpp"
#include "support/json.hpp"
#include "support/random_dfg.hpp"
#include "support/run_budget.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace pmsched;

/// Seeded DNF with support k shaped like real activation conditions:
/// sliding-window conjunctions (nested gating chains share select
/// prefixes, shared gating ORs them). Enumeration is 2^k on it regardless
/// of structure; the BDD stays near-linear. Same seed at each size, so
/// BM_DnfProbability* runs are comparable across builds.
GateDnf benchDnf(int k) {
  std::mt19937_64 rng(1996 + static_cast<unsigned>(k));
  std::uniform_int_distribution<int> bit(0, 1);
  GateDnf dnf;
  for (int t = 0; t + 1 < k; t += 2) {
    GateTerm term;
    for (int i = t; i < t + 4 && i < k; ++i)
      term.push_back(GateLiteral{static_cast<NodeId>(i + 1), bit(rng) != 0});
    dnf.push_back(std::move(term));
  }
  return dnf;
}

void BM_PowerTransform(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(applyPowerManagement(g, steps));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PowerTransform)->RangeMultiplier(2)->Range(4, 48)->Complexity();

// Same sweep with a never-exhausting RunBudget attached: the delta against
// BM_PowerTransform is the whole cost of cooperative budget polling
// (designed to be one relaxed load per candidate — compare the two before
// adding poll points to hotter loops).
void BM_PowerTransformBudgeted(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  RunBudget budget;
  budget.setDeadline(std::chrono::hours(24));
  budget.setProbeCap(UINT64_MAX);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        applyPowerManagement(g, steps, MuxOrdering::OutputFirst, LatencyModel::unit(), &budget));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PowerTransformBudgeted)->RangeMultiplier(2)->Range(4, 48)->Complexity();

void BM_PowerTransformOptimal(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(applyPowerManagementOptimal(g, steps));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PowerTransformOptimal)->RangeMultiplier(2)->Range(4, 48)->Complexity();

void BM_SharedGating(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    PowerManagedDesign design = applyPowerManagement(g, steps);
    benchmark::DoNotOptimize(applySharedGating(design));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SharedGating)->RangeMultiplier(2)->Range(4, 48)->Complexity();

void BM_ListSchedule(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimizeResources(g, steps));
  }
}
BENCHMARK(BM_ListSchedule)->RangeMultiplier(2)->Range(4, 32);

void BM_ForceDirected(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 6, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forceDirectedSchedule(g, steps));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ForceDirected)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_ForceDirectedReference(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 6, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forceDirectedScheduleReference(g, steps));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ForceDirectedReference)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_ActivationAnalysis(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  PowerManagedDesign design = applyPowerManagement(g, steps);
  applySharedGating(design);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzeActivation(design));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ActivationAnalysis)->RangeMultiplier(2)->Range(4, 64)->Complexity();

// Probability of one condition as a function of support size. The BDD path
// (production dnfProbability) amortizes across queries through the
// thread-local manager; the Cold variant pays the full conversion each
// iteration; the Reference variant is the retained 2^k enumeration, capped
// at its 24-variable limit.
void BM_DnfProbability(benchmark::State& state) {
  const GateDnf dnf = benchDnf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dnfProbability(dnf));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DnfProbability)->RangeMultiplier(2)->Range(4, 48)->Complexity();

void BM_DnfProbabilityCold(benchmark::State& state) {
  const GateDnf dnf = benchDnf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    BddManager mgr;
    benchmark::DoNotOptimize(mgr.probability(mgr.fromDnf(dnf)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DnfProbabilityCold)->RangeMultiplier(2)->Range(4, 48)->Complexity();

void BM_DnfProbabilityReference(benchmark::State& state) {
  const GateDnf dnf = benchDnf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dnfProbabilityReference(dnf));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DnfProbabilityReference)->RangeMultiplier(2)->Range(4, 24)->Complexity();

// ---------------------------------------------------------------------------
// Probe-farm handoff: the PR-4 per-probe protocol (one cv round per probe)
// vs the PR-5 batched wave (one cv round per wave). Empty-edge probes make
// the repair itself free, so the measured time IS the handoff; the consumer
// only polls the lock-free result slots (never claims), as in a real reject
// streak where the consumer runs ahead of the lanes. With a single lane
// (PMSCHED_THREADS=1) there is no cross-thread handoff to measure and the
// consumer claims inline — that run is the no-handoff baseline.
// ---------------------------------------------------------------------------

void BM_ProbeFarmHandoffPerProbe(benchmark::State& state) {
  const Graph g = randomLayeredDfg(6, 4, 42);
  const int steps = criticalPathLength(g) + 2;
  ProbeFarm farm(g, steps, LatencyModel::unit(), "bench-handoff");
  const bool solo = farm.lanes() <= 1;
  if (!solo) (void)farm.await(farm.enqueue({}, false));  // spin the lanes up
  for (auto _ : state) {
    const std::size_t t = farm.enqueue({}, false);  // stage + ring: a wave of one
    if (solo) {
      benchmark::DoNotOptimize(farm.await(t));
    } else {
      while (!farm.tryResult(t)) {
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProbeFarmHandoffPerProbe)->UseRealTime();

void BM_ProbeFarmHandoffWave(benchmark::State& state) {
  const Graph g = randomLayeredDfg(6, 4, 42);
  const int steps = criticalPathLength(g) + 2;
  ProbeFarm farm(g, steps, LatencyModel::unit(), "bench-handoff");
  const bool solo = farm.lanes() <= 1;
  if (!solo) (void)farm.await(farm.enqueue({}, false));
  const std::size_t waveSize = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> tickets(waveSize);
  for (auto _ : state) {
    for (std::size_t i = 0; i < waveSize; ++i) tickets[i] = farm.stage({}, false);
    farm.ring();  // the one cv round for the whole wave
    for (const std::size_t t : tickets) {
      if (solo) {
        benchmark::DoNotOptimize(farm.await(t));
      } else {
        while (!farm.tryResult(t)) {
        }
      }
    }
  }
  // items/s here vs BM_ProbeFarmHandoffPerProbe is the amortization factor.
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(waveSize));
}
BENCHMARK(BM_ProbeFarmHandoffWave)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->UseRealTime();

// The inline side of the speculation crossover: one incremental probe
// (push + feasibility + pop) on the consumer's own oracle as a function of
// graph size. The empirical crossover is the smallest graph whose inline
// probe costs more than BM_ProbeFarmHandoffWave's per-item time.
void BM_OracleProbeInline(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  TimeFrameOracle oracle(g, steps);
  // The calibration's own batch recipe, pre-generated off the clock, so
  // this curve measures exactly the probe shape measureMedianProbeNs
  // estimates per node.
  const std::vector<std::vector<TimeFrameOracle::Edge>> batches = seededProbeBatches(g, 64);
  std::size_t next = 0;
  for (auto _ : state) {
    oracle.push(batches[next]);
    benchmark::DoNotOptimize(oracle.feasible());
    oracle.pop();
    next = (next + 1) % batches.size();
  }
  state.counters["nodes"] = static_cast<double>(g.size());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OracleProbeInline)->RangeMultiplier(2)->Range(4, 64)->Complexity();

// Records the startup self-calibration (or the PMSCHED_CALIBRATION
// override) into the JSON snapshot: the measured wave-amortized handoff,
// the median repair cost per node, and the auto-mode crossover they imply.
void BM_SpeculationCrossover(benchmark::State& state) {
  const SpeculationCalibration cal = speculationCalibration();  // memoized measurement
  for (auto _ : state) {
    benchmark::DoNotOptimize(cal.crossoverNodes());
  }
  state.counters["handoff_ns"] = cal.handoffNs;
  state.counters["repair_ns_per_node"] = cal.repairNsPerNode;
  state.counters["crossover_nodes"] = static_cast<double>(cal.crossoverNodes());
  state.counters["measured"] = cal.measured ? 1 : 0;
}
BENCHMARK(BM_SpeculationCrossover);

// ---------------------------------------------------------------------------
// PR-7 condition-stack benchmarks: raw ite/unique-table throughput, the
// cost of one sifting pass, and controller generation (whose condition
// comparison rides the canonical activation BDD refs).
// ---------------------------------------------------------------------------

// A fresh AND of two staggered DNF BDDs per iteration: every makeNode /
// unique-table probe / computed-cache hit on the hot path, with automatic
// reordering disabled so the measurement is pure ite.
void BM_BddIte(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const GateDnf a = benchDnf(k);
  GateDnf b = benchDnf(k);
  for (GateTerm& term : b)
    for (GateLiteral& lit : term) lit.select += 2;  // interleave the supports
  setBddReorderMode(BddReorderMode::Off);
  for (auto _ : state) {
    BddManager mgr;
    const BddRef fa = mgr.fromDnf(a);
    const BddRef fb = mgr.fromDnf(b);
    benchmark::DoNotOptimize(mgr.bddAnd(fa, fb));
  }
  setBddReorderMode(BddReorderMode::Auto);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BddIte)->RangeMultiplier(2)->Range(4, 48)->Complexity();

// One full sifting pass over a deliberately mis-ordered build (variables
// pre-registered in reverse first-use order), the shape the watermark
// trigger fires on. Build time is excluded via pause/resume.
void BM_BddSift(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const GateDnf dnf = benchDnf(k);
  std::vector<NodeId> reversed;
  for (int v = k; v >= 1; --v) reversed.push_back(static_cast<NodeId>(v));
  setBddReorderMode(BddReorderMode::Off);  // sift manually, once per iteration
  for (auto _ : state) {
    state.PauseTiming();
    BddManager mgr;
    mgr.registerVariables(reversed);
    benchmark::DoNotOptimize(mgr.fromDnf(dnf));
    state.ResumeTiming();
    mgr.sift();
  }
  setBddReorderMode(BddReorderMode::Auto);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BddSift)->RangeMultiplier(2)->Range(4, 48)->Complexity();

// Controller synthesis on a fully prepared design: condition-class
// resolution (canonical BDD ref equality), status capture planning, and
// the load-action sweep.
void BM_ControllerGen(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  PowerManagedDesign design = applyPowerManagement(g, steps);
  applySharedGating(design);
  const ResourceVector units = minimizeResources(design.graph, design.steps);
  const ListScheduleResult scheduled = listSchedule(design.graph, design.steps, units);
  const Schedule& sched = *scheduled.schedule;
  const Binding binding = bindDesign(design.graph, sched);
  const ActivationResult activation = analyzeActivation(design);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesizeController(design, sched, binding, activation));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ControllerGen)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_Cordic_FullFlow(benchmark::State& state) {
  const Graph g = circuits::cordic();
  for (auto _ : state) {
    PowerManagedDesign design = applyPowerManagement(g, 48);
    applySharedGating(design);
    benchmark::DoNotOptimize(analyzeActivation(design));
  }
}
BENCHMARK(BM_Cordic_FullFlow);

// ---- scheduling-as-a-service (src/server) ---------------------------------

/// JSONL design frames over a rotating pool of graphs, 3 smalls to 1 large —
/// the loadgen's default mix, minus the socket.
std::vector<std::string> serverBenchFrames(int count) {
  std::vector<std::string> frames;
  frames.reserve(static_cast<std::size_t>(count));
  for (int j = 0; j < count; ++j) {
    const bool large = (j % 4) == 3;
    const Graph g = large ? randomLayeredDfg(8, 6, 900 + static_cast<std::uint64_t>(j % 4))
                          : randomLayeredDfg(3, 4, 100 + static_cast<std::uint64_t>(j % 4));
    const int steps = criticalPathLength(g) + 4;
    JsonWriter quotedGraph;
    quotedGraph.value(saveGraphText(g));
    frames.push_back(R"({"id":0,"op":"design","graph":)" + quotedGraph.str() +
                     ",\"steps\":" + std::to_string(steps) + "}");
  }
  return frames;
}

// Warm multi-tenant throughput: one ServerCore, 2 workers, a 64-frame mixed
// batch submitted and drained per iteration. After the first iteration every
// request is cache-warm, so this tracks the serving overhead — framing,
// admission, memo/cache lookups, response building — not the design compute.
void BM_ServerThroughput(benchmark::State& state) {
  ServerOptions opts;
  opts.workers = 2;
  opts.queueCapacity = 1024;
  ServerCore core(opts);
  const std::vector<std::string> frames = serverBenchFrames(64);
  const ServerCore::ResponseSink sink = [](const std::string&) {};
  for (auto _ : state) {
    for (const std::string& f : frames) core.submitFrame(f, sink);
    core.waitIdle();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(frames.size()));
}
BENCHMARK(BM_ServerThroughput)->UseRealTime();

// Per-request wall latency through the queue on a warm cache, one request in
// flight at a time; p50/p99 land in the counters. This is the server-side
// floor under the loadgen's socket-measured tail latency.
void BM_ServerTailLatency(benchmark::State& state) {
  ServerOptions opts;
  opts.workers = 1;
  ServerCore core(opts);
  const std::vector<std::string> frames = serverBenchFrames(16);
  const ServerCore::ResponseSink sink = [](const std::string&) {};
  for (const std::string& f : frames) core.submitFrame(f, sink);  // warm the cache
  core.waitIdle();
  std::vector<double> latenciesMs;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    core.submitFrame(frames[i++ % frames.size()], sink);
    core.waitIdle();
    latenciesMs.push_back(
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count());
  }
  std::sort(latenciesMs.begin(), latenciesMs.end());
  if (!latenciesMs.empty()) {
    state.counters["p50_ms"] = latenciesMs[latenciesMs.size() / 2];
    state.counters["p99_ms"] = latenciesMs[latenciesMs.size() * 99 / 100];
  }
}
BENCHMARK(BM_ServerTailLatency)->UseRealTime();

// Amortized design-space sweep vs the retained per-point loop, same graph
// and range (docs/EXPLORE.md). The sweep spans cp..cp+128 so the
// post-saturation region dominates — exactly the regime the amortization
// targets; tools/bench_report.sh divides the pair into the "explore"
// speedup recorded in BENCH_PR<n>.json.
void BM_ExploreSweep(benchmark::State& state) {
  ExploreRequest req;
  req.graph = randomLayeredDfg(static_cast<int>(state.range(0)), 6, 1);
  req.span = 128;
  for (auto _ : state) {
    ExploreResult res = exploreDesignSpace(req);
    benchmark::DoNotOptimize(res.front.data());
  }
}
BENCHMARK(BM_ExploreSweep)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_ExplorePerPoint(benchmark::State& state) {
  ExploreRequest req;
  req.graph = randomLayeredDfg(static_cast<int>(state.range(0)), 6, 1);
  req.span = 128;
  for (auto _ : state) {
    ExploreResult res = explorePerPointReference(req);
    benchmark::DoNotOptimize(res.front.data());
  }
}
BENCHMARK(BM_ExplorePerPoint)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
