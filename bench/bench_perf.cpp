// Runtime micro-benchmarks (google-benchmark): cost of the
// power-management transform and the schedulers as a function of CDFG
// size, on random layered DFGs and on the paper circuits.
//
// BM_ForceDirected (incremental) and BM_ForceDirectedReference (the
// retained from-scratch algorithm) run on identical graphs, so one
// --benchmark_format=json dump (see tools/bench_report.sh) records the
// speedup of the incremental scheduler at every size.

#include <benchmark/benchmark.h>

#include "circuits/circuits.hpp"
#include "power/activation.hpp"
#include "sched/force_directed.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/power_transform.hpp"
#include "sched/shared_gating.hpp"
#include "support/random_dfg.hpp"

namespace {

using namespace pmsched;

void BM_PowerTransform(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(applyPowerManagement(g, steps));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PowerTransform)->RangeMultiplier(2)->Range(4, 48)->Complexity();

void BM_PowerTransformOptimal(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(applyPowerManagementOptimal(g, steps));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PowerTransformOptimal)->RangeMultiplier(2)->Range(4, 48)->Complexity();

void BM_SharedGating(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    PowerManagedDesign design = applyPowerManagement(g, steps);
    benchmark::DoNotOptimize(applySharedGating(design));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SharedGating)->RangeMultiplier(2)->Range(4, 32)->Complexity();

void BM_ListSchedule(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimizeResources(g, steps));
  }
}
BENCHMARK(BM_ListSchedule)->RangeMultiplier(2)->Range(4, 32);

void BM_ForceDirected(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 6, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forceDirectedSchedule(g, steps));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ForceDirected)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_ForceDirectedReference(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 6, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forceDirectedScheduleReference(g, steps));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ForceDirectedReference)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_ActivationAnalysis(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  PowerManagedDesign design = applyPowerManagement(g, steps);
  applySharedGating(design);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzeActivation(design));
  }
}
BENCHMARK(BM_ActivationAnalysis)->RangeMultiplier(2)->Range(4, 32);

void BM_Cordic_FullFlow(benchmark::State& state) {
  const Graph g = circuits::cordic();
  for (auto _ : state) {
    PowerManagedDesign design = applyPowerManagement(g, 48);
    applySharedGating(design);
    benchmark::DoNotOptimize(analyzeActivation(design));
  }
}
BENCHMARK(BM_Cordic_FullFlow);

}  // namespace

BENCHMARK_MAIN();
