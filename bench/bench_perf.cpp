// Runtime micro-benchmarks (google-benchmark): cost of the
// power-management transform and the schedulers as a function of CDFG
// size, on random layered DFGs and on the paper circuits.
//
// BM_ForceDirected (incremental) and BM_ForceDirectedReference (the
// retained from-scratch algorithm) run on identical graphs, so one
// --benchmark_format=json dump (see tools/bench_report.sh) records the
// speedup of the incremental scheduler at every size.

#include <benchmark/benchmark.h>

#include <random>

#include "circuits/circuits.hpp"
#include "power/activation.hpp"
#include "sched/bdd.hpp"
#include "sched/force_directed.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/power_transform.hpp"
#include "sched/shared_gating.hpp"
#include "support/random_dfg.hpp"

namespace {

using namespace pmsched;

/// Seeded DNF with support k shaped like real activation conditions:
/// sliding-window conjunctions (nested gating chains share select
/// prefixes, shared gating ORs them). Enumeration is 2^k on it regardless
/// of structure; the BDD stays near-linear. Same seed at each size, so
/// BM_DnfProbability* runs are comparable across builds.
GateDnf benchDnf(int k) {
  std::mt19937_64 rng(1996 + static_cast<unsigned>(k));
  std::uniform_int_distribution<int> bit(0, 1);
  GateDnf dnf;
  for (int t = 0; t + 1 < k; t += 2) {
    GateTerm term;
    for (int i = t; i < t + 4 && i < k; ++i)
      term.push_back(GateLiteral{static_cast<NodeId>(i + 1), bit(rng) != 0});
    dnf.push_back(std::move(term));
  }
  return dnf;
}

void BM_PowerTransform(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(applyPowerManagement(g, steps));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PowerTransform)->RangeMultiplier(2)->Range(4, 48)->Complexity();

void BM_PowerTransformOptimal(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(applyPowerManagementOptimal(g, steps));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PowerTransformOptimal)->RangeMultiplier(2)->Range(4, 48)->Complexity();

void BM_SharedGating(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    PowerManagedDesign design = applyPowerManagement(g, steps);
    benchmark::DoNotOptimize(applySharedGating(design));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SharedGating)->RangeMultiplier(2)->Range(4, 48)->Complexity();

void BM_ListSchedule(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimizeResources(g, steps));
  }
}
BENCHMARK(BM_ListSchedule)->RangeMultiplier(2)->Range(4, 32);

void BM_ForceDirected(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 6, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forceDirectedSchedule(g, steps));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ForceDirected)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_ForceDirectedReference(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 6, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forceDirectedScheduleReference(g, steps));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ForceDirectedReference)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_ActivationAnalysis(benchmark::State& state) {
  const Graph g = randomLayeredDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  PowerManagedDesign design = applyPowerManagement(g, steps);
  applySharedGating(design);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzeActivation(design));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ActivationAnalysis)->RangeMultiplier(2)->Range(4, 64)->Complexity();

// Probability of one condition as a function of support size. The BDD path
// (production dnfProbability) amortizes across queries through the
// thread-local manager; the Cold variant pays the full conversion each
// iteration; the Reference variant is the retained 2^k enumeration, capped
// at its 24-variable limit.
void BM_DnfProbability(benchmark::State& state) {
  const GateDnf dnf = benchDnf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dnfProbability(dnf));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DnfProbability)->RangeMultiplier(2)->Range(4, 48)->Complexity();

void BM_DnfProbabilityCold(benchmark::State& state) {
  const GateDnf dnf = benchDnf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    BddManager mgr;
    benchmark::DoNotOptimize(mgr.probability(mgr.fromDnf(dnf)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DnfProbabilityCold)->RangeMultiplier(2)->Range(4, 48)->Complexity();

void BM_DnfProbabilityReference(benchmark::State& state) {
  const GateDnf dnf = benchDnf(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dnfProbabilityReference(dnf));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DnfProbabilityReference)->RangeMultiplier(2)->Range(4, 24)->Complexity();

void BM_Cordic_FullFlow(benchmark::State& state) {
  const Graph g = circuits::cordic();
  for (auto _ : state) {
    PowerManagedDesign design = applyPowerManagement(g, 48);
    applySharedGating(design);
    benchmark::DoNotOptimize(analyzeActivation(design));
  }
}
BENCHMARK(BM_Cordic_FullFlow);

}  // namespace

BENCHMARK_MAIN();
