// Runtime micro-benchmarks (google-benchmark): cost of the
// power-management transform and the schedulers as a function of CDFG
// size, on random layered DFGs and on the paper circuits.

#include <benchmark/benchmark.h>

#include "circuits/circuits.hpp"
#include "power/activation.hpp"
#include "sched/force_directed.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/power_transform.hpp"
#include "sched/shared_gating.hpp"
#include "support/rng.hpp"

namespace {

using namespace pmsched;

/// Random layered DFG with conditionals: `layers` layers of `perLayer`
/// binary ops; every third op is a mux selected by a fresh comparison.
Graph randomDfg(int layers, int perLayer, std::uint64_t seed) {
  Rng rng(seed);
  Graph g("random_" + std::to_string(layers) + "x" + std::to_string(perLayer));
  std::vector<NodeId> previous;
  for (int i = 0; i < perLayer; ++i)
    previous.push_back(g.addInput("in" + std::to_string(i)));

  int counter = 0;
  for (int layer = 0; layer < layers; ++layer) {
    std::vector<NodeId> current;
    for (int i = 0; i < perLayer; ++i) {
      const NodeId a = previous[rng.below(previous.size())];
      const NodeId b = previous[rng.below(previous.size())];
      const std::string name = "n" + std::to_string(counter++);
      if (counter % 3 == 0) {
        const NodeId c = previous[rng.below(previous.size())];
        const NodeId d = previous[rng.below(previous.size())];
        const NodeId cmp = g.addOp(OpKind::CmpGt, {c, d}, name + "_c");
        current.push_back(g.addMux(cmp, a, b, name));
      } else if (counter % 7 == 0) {
        current.push_back(g.addOp(OpKind::Mul, {a, b}, name));
      } else {
        current.push_back(
            g.addOp(counter % 2 == 0 ? OpKind::Add : OpKind::Sub, {a, b}, name));
      }
    }
    previous = current;
  }
  for (std::size_t i = 0; i < previous.size(); ++i)
    g.addOutput(previous[i], "out" + std::to_string(i));
  return g;
}

void BM_PowerTransform(benchmark::State& state) {
  const Graph g = randomDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(applyPowerManagement(g, steps));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PowerTransform)->RangeMultiplier(2)->Range(4, 32)->Complexity();

void BM_SharedGating(benchmark::State& state) {
  const Graph g = randomDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    PowerManagedDesign design = applyPowerManagement(g, steps);
    benchmark::DoNotOptimize(applySharedGating(design));
  }
}
BENCHMARK(BM_SharedGating)->RangeMultiplier(2)->Range(4, 16);

void BM_ListSchedule(benchmark::State& state) {
  const Graph g = randomDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimizeResources(g, steps));
  }
}
BENCHMARK(BM_ListSchedule)->RangeMultiplier(2)->Range(4, 32);

void BM_ForceDirected(benchmark::State& state) {
  const Graph g = randomDfg(static_cast<int>(state.range(0)), 6, 42);
  const int steps = criticalPathLength(g) + 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forceDirectedSchedule(g, steps));
  }
}
BENCHMARK(BM_ForceDirected)->RangeMultiplier(2)->Range(4, 16);

void BM_ActivationAnalysis(benchmark::State& state) {
  const Graph g = randomDfg(static_cast<int>(state.range(0)), 8, 42);
  const int steps = criticalPathLength(g) + 4;
  PowerManagedDesign design = applyPowerManagement(g, steps);
  applySharedGating(design);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzeActivation(design));
  }
}
BENCHMARK(BM_ActivationAnalysis)->RangeMultiplier(2)->Range(4, 32);

void BM_Cordic_FullFlow(benchmark::State& state) {
  const Graph g = circuits::cordic();
  for (auto _ : state) {
    PowerManagedDesign design = applyPowerManagement(g, 48);
    applySharedGating(design);
    benchmark::DoNotOptimize(analyzeActivation(design));
  }
}
BENCHMARK(BM_Cordic_FullFlow);

}  // namespace

BENCHMARK_MAIN();
