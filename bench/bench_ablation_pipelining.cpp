// Ablation for §IV-B (pipelining): adding pipeline stages multiplies the
// latency budget while keeping throughput, and the extra slack is exactly
// what the power-management transform needs to schedule control signals
// first. The paper lists the costs: latency, registers, execution units.
//
// For each circuit we keep the throughput at the tightest Table II budget
// and sweep the number of stages.

#include <iostream>

#include "alloc/binding.hpp"
#include "analysis/experiments.hpp"
#include "sched/pipeline.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main() {
  using namespace pmsched;

  std::cout << "Ablation §IV-B — pipelining as a power-management enabler\n"
            << "(fixed throughput; stages multiply the latency budget)\n\n";

  AsciiTable table({"Circuit", "Throughput", "Stages", "Latency", "PM muxes", "Power Red.(%)",
                    "Units cost", "Registers"});

  for (const auto& circuit : circuits::paperCircuits()) {
    const Graph g = circuit.build();
    const int throughput = circuits::tableIISteps(circuit.name).front();
    for (const int stages : {1, 2, 3}) {
      PipelineOptions opts;
      opts.stages = stages;
      opts.effectiveSteps = throughput;
      PipelineResult result = pipelineSchedule(g, opts);
      const ActivationResult activation = analyzeActivation(result.design);

      const Binding binding = bindDesign(result.design.graph, result.schedule);
      table.addRow({circuit.name, std::to_string(throughput), std::to_string(stages),
                    std::to_string(result.latency),
                    std::to_string(result.design.managedCount()),
                    fixed(activation.reductionPercent(OpPowerModel::paperWeights()), 2),
                    fixed(UnitCosts::defaults().costOf(result.units), 0),
                    std::to_string(binding.registers.size())});
    }
    table.addSeparator();
  }
  std::cout << table.render();
  std::cout << "\nReading: more stages -> more slack -> more gated muxes and larger power\n"
               "reduction, paid for in latency and (sometimes) registers/units — the\n"
               "trade-off §IV-B describes.\n";
  return 0;
}
