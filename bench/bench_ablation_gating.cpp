// Ablation: strict (paper-faithful) per-mux gating vs the Shared extension
// (OR-composed latch enables for operations whose every use is
// conditional). The paper's own dealer row ("+ = 1.75" at 6 steps) is only
// reachable with shared gating, which is the evidence the extension mirrors
// what the authors' implementation actually did.

#include <iostream>

#include "analysis/experiments.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main() {
  using namespace pmsched;

  std::cout << "Ablation — gating mode: strict per-mux rule vs shared (OR) gating\n\n";

  AsciiTable table({"Circuit", "Steps", "Strict: red.%", "Shared: red.%", "Shared-gated ops"});
  for (const auto& circuit : circuits::paperCircuits()) {
    const Graph g = circuit.build();
    for (const int steps : circuits::tableIISteps(circuit.name)) {
      analysis::Table2Options strict;
      strict.mode = GatingMode::Strict;
      analysis::Table2Options shared;
      shared.mode = GatingMode::Shared;

      const auto rowStrict = analysis::table2Row(circuit.name, g, steps, strict);
      const auto rowShared = analysis::table2Row(circuit.name, g, steps, shared);
      table.addRow({circuit.name, std::to_string(steps),
                    fixed(rowStrict.powerReductionPct, 2),
                    fixed(rowShared.powerReductionPct, 2),
                    std::to_string(rowShared.sharedGated)});
    }
    table.addSeparator();
  }
  std::cout << table.render();
  std::cout << "\nShared gating only ever adds savings (it gates operations the strict\n"
               "rule must skip because their fanout crosses gated regions).\n";
  return 0;
}
