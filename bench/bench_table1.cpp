// Reproduces Table I of Monteiro et al., DAC'96: circuit statistics of the
// four benchmark CDFGs (critical path and operation inventory).

#include <cstdio>
#include <iostream>

#include "analysis/experiments.hpp"
#include "support/table.hpp"

int main() {
  using namespace pmsched;

  std::cout << "Table I — Circuit Statistics (paper: Monteiro et al., DAC'96)\n\n";

  AsciiTable table({"Circuit", "Critical Path", "MUX", "COMP", "+", "-", "*"});
  for (const analysis::Table1Row& row : analysis::table1()) {
    table.addRow({row.circuit, std::to_string(row.criticalPath), std::to_string(row.ops.mux),
                  std::to_string(row.ops.comp), std::to_string(row.ops.add),
                  std::to_string(row.ops.sub), std::to_string(row.ops.mul)});
  }
  std::cout << table.render();
  std::cout << "\nPaper values: dealer 4/3/3/2/1/0, gcd 5/6/2/0/1/0, "
               "vender 5/6/3/3/3/2, cordic 48/47/16/43/46/0\n";
  return 0;
}
