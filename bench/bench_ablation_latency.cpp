// Ablation (extension): multi-cycle multipliers vs the paper's unit-latency
// assumption. A 2-cycle multiplier stretches chains through '*' operations,
// which consumes exactly the slack the power-management transform feeds on —
// the interesting question is how much budget buys the savings back.

#include <iostream>

#include "analysis/experiments.hpp"
#include "sched/shared_gating.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace pmsched;

struct Row {
  int pmMuxes = 0;
  double red = 0;
  bool feasible = true;
};

Row evaluate(const Graph& g, int steps, const LatencyModel& model) {
  Row row;
  try {
    PowerManagedDesign design =
        applyPowerManagement(g, steps, MuxOrdering::OutputFirst, model);
    applySharedGating(design);
    row.pmMuxes = design.managedCount();
    row.red = analyzeActivation(design).reductionPercent(OpPowerModel::paperWeights());
  } catch (const InfeasibleError&) {
    row.feasible = false;
  }
  if (!computeTimeFrames(g, steps, {}, model).feasible(g)) row.feasible = false;
  return row;
}

}  // namespace

int main() {
  using namespace pmsched;

  std::cout << "Ablation — multi-cycle multiplier (extension beyond the paper)\n"
            << "Circuits without '*' are unaffected; vender's coin-value chain\n"
            << "runs through a multiplier and pays the full stretch.\n\n";

  const LatencyModel unit = LatencyModel::unit();
  const LatencyModel two = LatencyModel::multiCycleMultiplier(2);

  AsciiTable table({"Circuit", "Steps", "mul=1 cycle", "mul=2 cycles"});
  for (const auto& circuit : circuits::paperCircuits()) {
    const Graph g = circuit.build();
    const int cp = criticalPathLength(g);
    for (int steps = cp; steps <= cp + 3; ++steps) {
      const Row a = evaluate(g, steps, unit);
      const Row b = evaluate(g, steps, two);
      auto cell = [](const Row& r) {
        if (!r.feasible) return std::string("infeasible");
        return std::to_string(r.pmMuxes) + " muxes / " + fixed(r.red, 2) + "%";
      };
      table.addRow({circuit.name, std::to_string(steps), cell(a), cell(b)});
    }
    table.addSeparator();
  }
  std::cout << table.render();
  std::cout << "\nReading: with 2-cycle multipliers, vender's budgets below the stretched\n"
               "critical path become infeasible outright, and the first feasible budget\n"
               "gates less than the unit-latency schedule at the same step count —\n"
               "multi-cycle units raise the price of power management.\n";
  return 0;
}
