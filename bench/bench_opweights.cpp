// Calibrates the relative operation power weights the paper uses for its
// Table II model: "we computed the power consumption of each of the
// operations using timing simulation with random input vectors, thus
// obtaining a relative weight of the operations in terms of power
// (MUX:1; COMP:4; +:3; -:3; *:20). An 8-bit datapath was assumed."
//
// Each functional unit is instantiated in isolation behind input registers
// and driven with fresh random operands every cycle; the unit-delay
// simulator counts every transition including glitches (that is what
// "timing simulation" measures). Weights are reported normalized to MUX=1.

#include <cstdio>
#include <iostream>

#include "netlist/wordgen.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/strings.hpp"

namespace {

using namespace pmsched;

double measureUnit(const char* kind, int width, int cycles, Rng& rng) {
  Netlist nl(kind);
  const Word a = inputWord(nl, "a", width);
  const Word b = inputWord(nl, "b", width);
  const SignalId sel = nl.addInput("sel");
  const Word ra = registerWord(nl, a);
  const Word rb = registerWord(nl, b);
  const SignalId rsel = nl.addDff(sel);

  Word out;
  const std::string name(kind);
  if (name == "MUX") out = mux2Word(nl, rsel, ra, rb);
  else if (name == "COMP") out = {compareGtWord(nl, ra, rb)};
  else if (name == "ADD") out = adderWord(nl, ra, rb);
  else if (name == "SUB") out = subtractorWord(nl, ra, rb);
  else if (name == "MUL") out = multiplierWord(nl, ra, rb);
  for (std::size_t i = 0; i < out.size(); ++i)
    nl.markOutput(out[i], "y[" + std::to_string(i) + "]");

  Simulator sim(nl);
  // Warm up, then measure.
  auto drive = [&] {
    for (int i = 0; i < width; ++i) {
      sim.setInput(a[static_cast<std::size_t>(i)], rng.coin());
      sim.setInput(b[static_cast<std::size_t>(i)], rng.coin());
    }
    sim.setInput(sel, rng.coin());
    sim.clock();
  };
  for (int c = 0; c < 16; ++c) drive();
  sim.resetCounters();
  for (int c = 0; c < cycles; ++c) drive();
  return static_cast<double>(sim.energy()) / cycles;
}

}  // namespace

int main() {
  using namespace pmsched;
  Rng rng(20260609);
  constexpr int kWidth = 8;
  constexpr int kCycles = 4000;

  std::cout << "Operation power weights, 8-bit datapath, random vectors\n"
            << "(paper: MUX:1, COMP:4, +:3, -:3, *:20)\n\n";

  const char* kinds[] = {"MUX", "COMP", "ADD", "SUB", "MUL"};
  double energy[5] = {};
  for (int k = 0; k < 5; ++k) energy[k] = measureUnit(kinds[k], kWidth, kCycles, rng);
  const double muxEnergy = energy[0];

  const double paper[] = {1, 4, 3, 3, 20};
  AsciiTable table({"Unit", "Energy/cycle", "Weight (MUX=1)", "Paper weight"});
  for (int k = 0; k < 5; ++k) {
    table.addRow({kinds[k], fixed(energy[k], 1), fixed(energy[k] / muxEnergy, 2),
                  fixed(paper[k], 0)});
  }
  std::cout << table.render();
  std::cout << "\nThe measured ratios calibrate OpPowerModel::paperWeights(); Table II's\n"
               "power column uses the paper's published integers.\n";
  return 0;
}
