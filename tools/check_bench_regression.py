#!/usr/bin/env python3
"""Gate a google-benchmark JSON run against a checked-in baseline.

Usage: check_bench_regression.py BASELINE.json RESULT.json [THRESHOLD] [NAME=MULT ...]

Exits non-zero if any benchmark named in the baseline either

  * is missing from the result (a bench that crashed or was renamed must
    not silently pass the gate), or
  * has cpu_time > THRESHOLD x the baseline cpu_time (default 3.0 — a
    deliberately generous multiplier: CI runners are noisy and the
    baseline was measured on different hardware; the gate exists to catch
    order-of-magnitude hot-path regressions, not 20% drifts).

Trailing NAME=MULT arguments override the threshold for individual
benchmarks — used for cv/futex-bound benches whose legitimate run-to-run
variance exceeds the shared threshold (they stay gated for crashes and
lost orders of magnitude).

Benchmarks present only in the result are ignored, so widening the gate
filter does not require touching the baseline. Aggregate entries (BigO /
RMS / mean) are skipped on both sides. The baseline is a plain
google-benchmark JSON dump, so refreshing it is:

    ./build/bench_perf --benchmark_filter='<gate filter>' \
        --benchmark_format=json --benchmark_out=bench/ci_baseline.json
"""

import json
import sys

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def index_cpu_times(doc):
    """name -> cpu_time in ns, real runs only."""
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if name is None or "cpu_time" not in bench:
            continue
        out[name] = bench["cpu_time"] * UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
    return out


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(argv[1]) as f:
            baseline = index_cpu_times(json.load(f))
        with open(argv[2]) as f:
            result = index_cpu_times(json.load(f))
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_regression: cannot load input: {e}", file=sys.stderr)
        return 2
    threshold = 3.0
    overrides = {}
    for arg in argv[3:]:
        if "=" in arg:
            name, _, mult = arg.rpartition("=")
            overrides[name] = float(mult)
        else:
            threshold = float(arg)

    if not baseline:
        print("check_bench_regression: baseline contains no benchmarks", file=sys.stderr)
        return 2

    failures = []
    for name, base_ns in sorted(baseline.items()):
        got_ns = result.get(name)
        if got_ns is None:
            failures.append(f"{name}: missing from result (crashed mid-suite or renamed?)")
            print(f"FAIL {name}: missing from result")
            continue
        limit = overrides.get(name, threshold)
        ratio = got_ns / base_ns if base_ns > 0 else float("inf")
        verdict = "FAIL" if ratio > limit else "  ok"
        print(
            f"{verdict} {name}: {got_ns:12.0f} ns vs baseline {base_ns:12.0f} ns "
            f"({ratio:5.2f}x, limit {limit:.1f}x)"
        )
        if ratio > limit:
            failures.append(f"{name}: {ratio:.2f}x over baseline (limit {limit:.1f}x)")

    if failures:
        print(f"\ncheck_bench_regression: {len(failures)} hot-path regression(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\ncheck_bench_regression: all {len(baseline)} gated benchmarks within "
          f"{threshold:.1f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
