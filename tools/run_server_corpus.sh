#!/usr/bin/env bash
# Replay the malformed-frame corpus through `pmsched --serve` over stdio and
# pin the server robustness contract: every frame — truncated JSON, garbage
# UTF-8, oversized lines, duplicate sessions, bad requests — gets exactly one
# JSONL response, bad frames carry the expected typed error category,
# *.ok.jsonl streams produce no errors at all, and the server always drains
# to EOF and exits 0. Never a crash, a signal death, or a hang (each replay
# runs under `timeout`). Registered as the `server_corpus` ctest; the CI
# robustness job runs it against an ASan build.
#
# Usage: run_server_corpus.sh PMSCHED_BINARY CORPUS_DIR

set -u

if [ $# -ne 2 ]; then
  echo "usage: $0 PMSCHED_BINARY CORPUS_DIR" >&2
  exit 2
fi

pmsched=$1
corpus=$2
failures=0

# Frames above this limit must be rejected as oversized; every legitimate
# corpus frame is far below it. oversized-frame.bad.jsonl carries a ~4KB line.
max_frame=2048

# Expected error category per bad file (basename without .bad.jsonl).
category_for() {
  case $1 in
    truncated-frame | garbage-utf8 | oversized-frame | duplicate-session | \
      unknown-op | non-object) echo protocol ;;
    bad-graph) echo parse ;;
    bad-steps) echo usage ;;
    *) echo protocol ;;
  esac
}

replay() {
  # $1 = corpus file; stdout/stderr land in the caller-provided temp files.
  timeout 60 "$pmsched" --serve --serve-max-frame "$max_frame" \
    <"$1" >"$out_file" 2>"$err_file"
}

check_common() {
  local file=$1 got=$2
  if [ "$got" -eq 124 ]; then
    echo "FAIL $file: server hung (timeout)" >&2
    return 1
  elif [ "$got" -ge 128 ]; then
    echo "FAIL $file: died on a signal (exit $got)" >&2
    return 1
  elif [ "$got" -ne 0 ]; then
    echo "FAIL $file: exit $got, want 0" >&2
    sed 's/^/  stderr: /' "$err_file" >&2
    return 1
  fi
  # One response per non-blank frame: the server never drops or duplicates.
  local frames responses
  frames=$(grep -c . "$file")
  responses=$(grep -c . "$out_file")
  if [ "$frames" -ne "$responses" ]; then
    echo "FAIL $file: $frames frames but $responses responses" >&2
    sed 's/^/  out: /' "$out_file" >&2
    return 1
  fi
  return 0
}

out_file=$(mktemp)
err_file=$(mktemp)
trap 'rm -f "$out_file" "$err_file"' EXIT

bad=0
for f in "$corpus"/*.bad.jsonl; do
  [ -e "$f" ] || continue
  bad=$((bad + 1))
  name=$(basename "$f" .bad.jsonl)
  want=$(category_for "$name")
  replay "$f"
  got=$?
  if ! check_common "$f" "$got"; then
    failures=$((failures + 1))
  elif ! grep -q "\"ok\":false,\"error\":{\"category\":\"$want\"" "$out_file"; then
    echo "FAIL $f: no typed '$want' error response" >&2
    sed 's/^/  out: /' "$out_file" >&2
    failures=$((failures + 1))
  else
    echo "ok   $f (typed $want error, exit 0)"
  fi
done

ok=0
for f in "$corpus"/*.ok.jsonl; do
  [ -e "$f" ] || continue
  ok=$((ok + 1))
  replay "$f"
  got=$?
  if ! check_common "$f" "$got"; then
    failures=$((failures + 1))
  elif grep -q '"ok":false' "$out_file"; then
    echo "FAIL $f: error response in an all-good stream" >&2
    sed 's/^/  out: /' "$out_file" >&2
    failures=$((failures + 1))
  else
    echo "ok   $f (all responses ok, exit 0)"
  fi
done

if [ "$bad" -lt 8 ] || [ "$ok" -lt 2 ]; then
  echo "FAIL: server corpus incomplete ($bad bad, $ok ok files in $corpus)" >&2
  failures=$((failures + 1))
fi

if [ "$failures" -ne 0 ]; then
  echo "$failures server-corpus failure(s)" >&2
  exit 1
fi
echo "server corpus clean: $bad malformed streams rejected with typed errors, $ok valid streams served"
