#!/usr/bin/env sh
# Run the google-benchmark suite and record the result as BENCH_PR<n>.json
# at the repo root, so every PR leaves a perf-trajectory data point.
#
# Usage: tools/bench_report.sh <bench_perf-binary> [repo-root] [filter]
#
# Since PR 4 the transform hot paths are parallel (speculative probing on a
# ProbeFarm), so the snapshot records TWO runs of the suite: one pinned to
# PMSCHED_THREADS=1 (the sequential baseline) and one at BENCH_THREADS
# (default: nproc) — the same filter, the same binary. The output is a
# single JSON object {"threads": {"1": <run>, "<N>": <run>}} so the
# thread-scaling ratio of every benchmark can be read from one file.
#
# The output index is one past the highest existing BENCH_PR<n>.json, so
# re-running inside one PR overwrites nothing; delete stale files if you
# want a clean slate. Invoked by the `bench_report` CMake target.

set -eu

BENCH_BIN=${1:?usage: bench_report.sh <bench_perf-binary> [repo-root] [filter]}
ROOT=${2:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
FILTER=${3:-}

if [ -n "${BENCH_THREADS:-}" ]; then
  THREADS=$BENCH_THREADS
elif command -v nproc >/dev/null 2>&1; then
  THREADS=$(nproc)
else
  THREADS=2
fi

# One past the highest existing index (never fill gaps left by deleted
# snapshots, so the sequence stays chronological).
max=0
for f in "$ROOT"/BENCH_PR*.json; do
  [ -e "$f" ] || continue
  i=${f##*/BENCH_PR}
  i=${i%.json}
  case $i in
    *[!0-9]*) continue ;;
  esac
  [ "$i" -gt "$max" ] && max=$i
done
OUT="$ROOT/BENCH_PR$((max + 1)).json"

TMPDIR=${TMPDIR:-/tmp}
ONE="$TMPDIR/bench_report_t1.$$.json"
MANY="$TMPDIR/bench_report_tN.$$.json"
trap 'rm -f "$ONE" "$MANY"' EXIT

run_at() {
  # $1 = thread count, $2 = output file
  if [ -n "$FILTER" ]; then
    PMSCHED_THREADS=$1 "$BENCH_BIN" --benchmark_filter="$FILTER" \
      --benchmark_format=json --benchmark_out="$2" --benchmark_out_format=json
  else
    PMSCHED_THREADS=$1 "$BENCH_BIN" \
      --benchmark_format=json --benchmark_out="$2" --benchmark_out_format=json
  fi
}

echo "bench_report: run 1/2 at PMSCHED_THREADS=1"
run_at 1 "$ONE"
echo "bench_report: run 2/2 at PMSCHED_THREADS=$THREADS"
run_at "$THREADS" "$MANY"

{
  printf '{\n"threads": {\n"1":\n'
  cat "$ONE"
  printf ',\n"%s":\n' "$THREADS"
  cat "$MANY"
  printf '}\n}\n'
} > "$OUT"

echo "wrote $OUT (thread counts: 1 and $THREADS)"
