#!/usr/bin/env sh
# Run the google-benchmark suite and record the result as BENCH_PR<n>.json
# at the repo root, so every PR leaves a perf-trajectory data point.
#
# Usage: tools/bench_report.sh <bench_perf-binary> [repo-root] [filter]
#                              [pmsched-binary] [loadgen-binary]
#
# Since PR 4 the transform hot paths are parallel (speculative probing on a
# ProbeFarm), so the snapshot records TWO runs of the suite: one pinned to
# PMSCHED_THREADS=1 (the sequential baseline) and one at BENCH_THREADS
# (default: nproc) — the same filter, the same binary. The output is a
# single JSON object {"threads": {"1": <run>, "<N>": <run>}} so the
# thread-scaling ratio of every benchmark can be read from one file.
#
# Failure behavior (PR 5): if a benchmark binary exits non-zero (including
# a crash mid-suite) or produces a truncated/invalid JSON dump, the script
# exits non-zero WITHOUT writing BENCH_PR<n>.json — the snapshot is
# assembled in a temp file and moved into place only after both runs
# validate, so a failed run can never leave a partial snapshot behind.
#
# Server capture (PR 8): when the pmsched CLI and pmsched_loadgen binaries
# are passed as args 4 and 5, the snapshot additionally records three
# socket-level loadgen runs against a freshly spawned `pmsched --serve` —
# the default small/large mix, and a repeated-request pair with the design
# cache on and off (whose requests_per_sec ratio is the cache speedup) —
# under a top-level "server" key. Each run carries requests/sec and p50/p99
# latency; a failed loadgen run fails the whole script, snapshot unwritten.
#
# The output index is one past the highest existing BENCH_PR<n>.json, so
# re-running inside one PR overwrites nothing; delete stale files if you
# want a clean slate. Invoked by the `bench_report` CMake target.

set -eu

BENCH_BIN=${1:?usage: bench_report.sh <bench_perf-binary> [repo-root] [filter] [pmsched-binary] [loadgen-binary]}
ROOT=${2:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
FILTER=${3:-}
PMSCHED_BIN=${4:-}
LOADGEN_BIN=${5:-}

if [ -n "${BENCH_THREADS:-}" ]; then
  THREADS=$BENCH_THREADS
elif command -v nproc >/dev/null 2>&1; then
  THREADS=$(nproc)
else
  THREADS=2
fi

# One past the highest existing index (never fill gaps left by deleted
# snapshots, so the sequence stays chronological).
max=0
for f in "$ROOT"/BENCH_PR*.json; do
  [ -e "$f" ] || continue
  i=${f##*/BENCH_PR}
  i=${i%.json}
  case $i in
    *[!0-9]*) continue ;;
  esac
  [ "$i" -gt "$max" ] && max=$i
done
OUT="$ROOT/BENCH_PR$((max + 1)).json"

TMPDIR=${TMPDIR:-/tmp}
ONE="$TMPDIR/bench_report_t1.$$.json"
MANY="$TMPDIR/bench_report_tN.$$.json"
# Assembled next to OUT so the final mv is an atomic same-filesystem rename.
ASSEMBLED="$OUT.tmp.$$"
trap 'rm -f "$ONE" "$MANY" "$ASSEMBLED" \
  "$TMPDIR/bench_report_srv_mixed.$$.json" "$TMPDIR/bench_report_srv_on.$$.json" \
  "$TMPDIR/bench_report_srv_off.$$.json" "$TMPDIR/bench_report_explore.$$.json"' EXIT

fail() {
  echo "bench_report: ERROR: $1" >&2
  echo "bench_report: no snapshot written (refusing to leave a partial $OUT)" >&2
  exit 1
}

run_at() {
  # $1 = thread count, $2 = output file. The exit status is checked
  # explicitly: a benchmark binary that crashes mid-suite (SIGSEGV, abort,
  # sanitizer halt) leaves a truncated --benchmark_out file behind, and
  # that must never end up inside a BENCH_PR<n>.json.
  if [ -n "$FILTER" ]; then
    PMSCHED_THREADS=$1 "$BENCH_BIN" --benchmark_filter="$FILTER" \
      --benchmark_format=json --benchmark_out="$2" --benchmark_out_format=json ||
      fail "benchmark run at PMSCHED_THREADS=$1 exited with status $?"
  else
    PMSCHED_THREADS=$1 "$BENCH_BIN" \
      --benchmark_format=json --benchmark_out="$2" --benchmark_out_format=json ||
      fail "benchmark run at PMSCHED_THREADS=$1 exited with status $?"
  fi
  [ -s "$2" ] || fail "benchmark run at PMSCHED_THREADS=$1 wrote no output"
  validate_json "$2" || fail "benchmark run at PMSCHED_THREADS=$1 wrote invalid/truncated JSON"
}

validate_json() {
  # Prefer a real parse; fall back to a closing-brace sniff on systems
  # without python3 (a crash mid-dump always loses the final brace).
  if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import json, sys; json.load(open(sys.argv[1]))' "$1" 2>/dev/null
  else
    [ "$(tail -c 2 "$1" | tr -d '[:space:]')" = "}" ]
  fi
}

echo "bench_report: run 1/2 at PMSCHED_THREADS=1"
run_at 1 "$ONE"
echo "bench_report: run 2/2 at PMSCHED_THREADS=$THREADS"
run_at "$THREADS" "$MANY"

# Optional socket-level server capture (see header comment).
SRV_MIXED="$TMPDIR/bench_report_srv_mixed.$$.json"
SRV_ON="$TMPDIR/bench_report_srv_on.$$.json"
SRV_OFF="$TMPDIR/bench_report_srv_off.$$.json"
HAVE_SERVER=0
if [ -n "$PMSCHED_BIN" ] && [ -n "$LOADGEN_BIN" ]; then
  [ -x "$PMSCHED_BIN" ] || fail "pmsched binary '$PMSCHED_BIN' is not executable"
  [ -x "$LOADGEN_BIN" ] || fail "loadgen binary '$LOADGEN_BIN' is not executable"
  echo "bench_report: loadgen 1/3 (mixed small/large)"
  "$LOADGEN_BIN" --server "$PMSCHED_BIN" --requests 400 --clients 4 \
    >"$SRV_MIXED" || fail "loadgen mixed run exited with status $?"
  echo "bench_report: loadgen 2/3 (repeated requests, cache on)"
  "$LOADGEN_BIN" --server "$PMSCHED_BIN" --requests 200 --clients 4 \
    --unique 1 --large-every 1 --large 16x8 --steps 48 --no-design \
    >"$SRV_ON" || fail "loadgen cache-on run exited with status $?"
  echo "bench_report: loadgen 3/3 (repeated requests, cache off)"
  "$LOADGEN_BIN" --server "$PMSCHED_BIN" --requests 200 --clients 4 \
    --unique 1 --large-every 1 --large 16x8 --steps 48 --no-design --no-cache \
    >"$SRV_OFF" || fail "loadgen cache-off run exited with status $?"
  for f in "$SRV_MIXED" "$SRV_ON" "$SRV_OFF"; do
    validate_json "$f" || fail "loadgen wrote invalid JSON ($f)"
  done
  HAVE_SERVER=1
fi

# Amortized-exploration speedup (PR 10, docs/EXPLORE.md): the per-size
# BM_ExplorePerPoint / BM_ExploreSweep real_time ratio from both runs,
# published under a top-level "explore" key. Skipped (not failed) when
# python3 is unavailable or the filter excluded the explore pair — the
# ratio is derived data; the raw numbers are in the runs either way.
EXPLORE="$TMPDIR/bench_report_explore.$$.json"
HAVE_EXPLORE=0
if command -v python3 >/dev/null 2>&1; then
  if python3 - "$ONE" "$MANY" "$THREADS" >"$EXPLORE" <<'PY'
import json
import sys


def ratios(path):
    doc = json.load(open(path))
    by_size = {}
    for bench in doc.get("benchmarks", []):
        name = bench["name"]
        if name.startswith(("BM_ExploreSweep/", "BM_ExplorePerPoint/")):
            kind, size = name.split("/", 1)
            by_size.setdefault(size, {})[kind] = bench["real_time"]
    out = {}
    for size, pair in sorted(by_size.items(), key=lambda kv: int(kv[0])):
        sweep = pair.get("BM_ExploreSweep")
        per_point = pair.get("BM_ExplorePerPoint")
        if sweep and per_point:
            out[size] = round(per_point / sweep, 2)
    return out


one, many = ratios(sys.argv[1]), ratios(sys.argv[2])
if not one and not many:
    sys.exit(1)
json.dump({"amortized_speedup": {"1": one, sys.argv[3]: many}}, sys.stdout)
print()
PY
  then HAVE_EXPLORE=1; fi
fi

{
  printf '{\n"threads": {\n"1":\n'
  cat "$ONE"
  printf ',\n"%s":\n' "$THREADS"
  cat "$MANY"
  printf '}\n'
  if [ "$HAVE_SERVER" -eq 1 ]; then
    printf ',\n"server": {\n"mixed":\n'
    cat "$SRV_MIXED"
    printf ',\n"cache_on":\n'
    cat "$SRV_ON"
    printf ',\n"cache_off":\n'
    cat "$SRV_OFF"
    printf '}\n'
  fi
  if [ "$HAVE_EXPLORE" -eq 1 ]; then
    printf ',\n"explore":\n'
    cat "$EXPLORE"
  fi
  printf '}\n'
} > "$ASSEMBLED"
validate_json "$ASSEMBLED" || fail "assembled snapshot is not valid JSON"

# Atomic publish: the snapshot appears at its final path fully formed.
mv "$ASSEMBLED" "$OUT"
echo "wrote $OUT (thread counts: 1 and $THREADS)"
