#!/usr/bin/env sh
# Run the google-benchmark suite and record the result as BENCH_PR<n>.json
# at the repo root, so every PR leaves a perf-trajectory data point.
#
# Usage: tools/bench_report.sh <bench_perf-binary> [repo-root] [filter]
#
# The output index is one past the highest existing BENCH_PR<n>.json, so
# re-running inside one PR overwrites nothing; delete stale files if you
# want a clean slate. Invoked by the `bench_report` CMake target.

set -eu

BENCH_BIN=${1:?usage: bench_report.sh <bench_perf-binary> [repo-root] [filter]}
ROOT=${2:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
FILTER=${3:-}

# One past the highest existing index (never fill gaps left by deleted
# snapshots, so the sequence stays chronological).
max=0
for f in "$ROOT"/BENCH_PR*.json; do
  [ -e "$f" ] || continue
  i=${f##*/BENCH_PR}
  i=${i%.json}
  case $i in
    *[!0-9]*) continue ;;
  esac
  [ "$i" -gt "$max" ] && max=$i
done
OUT="$ROOT/BENCH_PR$((max + 1)).json"

if [ -n "$FILTER" ]; then
  "$BENCH_BIN" --benchmark_filter="$FILTER" --benchmark_format=json \
    --benchmark_out="$OUT" --benchmark_out_format=json
else
  "$BENCH_BIN" --benchmark_format=json \
    --benchmark_out="$OUT" --benchmark_out_format=json
fi

echo "wrote $OUT"
