#!/usr/bin/env bash
# Replay the malformed-input corpus through the pmsched CLI and pin the
# robustness contract: every *.bad.cdfg exits 3 with one structured
# "error[parse]" diagnostic on stderr, every *.ok.cdfg exits 0, and nothing
# ever dies on a signal (exit >= 128 — a crash, sanitizer abort, or
# uncaught exception). Registered as the `corpus_cli` ctest; the CI
# robustness job runs it against an ASan build.
#
# Usage: run_corpus.sh PMSCHED_BINARY CORPUS_DIR

set -u

if [ $# -ne 2 ]; then
  echo "usage: $0 PMSCHED_BINARY CORPUS_DIR" >&2
  exit 2
fi

pmsched=$1
corpus=$2
failures=0

check() {
  local file=$1 want=$2
  local stderr_file
  stderr_file=$(mktemp)
  "$pmsched" "$file" --steps 6 >/dev/null 2>"$stderr_file"
  local got=$?
  if [ "$got" -ge 128 ]; then
    echo "FAIL $file: died on a signal (exit $got)" >&2
    failures=$((failures + 1))
  elif [ "$got" -ne "$want" ]; then
    echo "FAIL $file: exit $got, want $want" >&2
    sed 's/^/  stderr: /' "$stderr_file" >&2
    failures=$((failures + 1))
  elif [ "$want" -ne 0 ] && ! grep -q 'error\[parse\]' "$stderr_file"; then
    echo "FAIL $file: exit $got but no structured error[parse] diagnostic" >&2
    sed 's/^/  stderr: /' "$stderr_file" >&2
    failures=$((failures + 1))
  else
    echo "ok   $file (exit $got)"
  fi
  rm -f "$stderr_file"
}

bad=0
for f in "$corpus"/*.bad.cdfg; do
  [ -e "$f" ] || continue
  check "$f" 3
  bad=$((bad + 1))
done
ok=0
for f in "$corpus"/*.ok.cdfg; do
  [ -e "$f" ] || continue
  check "$f" 0
  ok=$((ok + 1))
done

if [ "$bad" -lt 12 ] || [ "$ok" -lt 2 ]; then
  echo "FAIL: corpus incomplete ($bad bad, $ok ok files in $corpus)" >&2
  failures=$((failures + 1))
fi

if [ "$failures" -ne 0 ]; then
  echo "$failures corpus failure(s)" >&2
  exit 1
fi
echo "corpus clean: $bad malformed files rejected, $ok valid files accepted"
