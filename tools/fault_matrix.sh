#!/usr/bin/env bash
# Fire every compiled-in fault-injection site once (PMSCHED_FAULT=<site>:1)
# against an input that actually reaches it, and pin the contract: the CLI
# exits 5 (internal error) with a structured error[internal] diagnostic
# naming the fault — never a crash, signal death, hang, or silent success.
# Lane-side sites (farm-*) run with 2 threads and forced speculation so the
# error crosses the ProbeFarm handoff. Registered as the `fault_matrix`
# ctest; the CI robustness job runs it against an ASan build.
#
# Usage: fault_matrix.sh PMSCHED_BINARY CORPUS_DIR

set -u

if [ $# -ne 2 ]; then
  echo "usage: $0 PMSCHED_BINARY CORPUS_DIR" >&2
  exit 2
fi

pmsched=$1
corpus=$2
failures=0

run_site() {
  local site=$1
  shift
  local stderr_file
  stderr_file=$(mktemp)
  PMSCHED_FAULT="$site:1" PMSCHED_THREADS=2 PMSCHED_SPECULATE=force \
    "$pmsched" "$@" >/dev/null 2>"$stderr_file"
  local got=$?
  if [ "$got" -ne 5 ]; then
    echo "FAIL $site: exit $got, want 5 (internal)" >&2
    sed 's/^/  stderr: /' "$stderr_file" >&2
    failures=$((failures + 1))
  elif ! grep -q "error\[internal\].*fault injected at site '$site'" "$stderr_file"; then
    echo "FAIL $site: exit 5 but diagnostic does not name the fault" >&2
    sed 's/^/  stderr: /' "$stderr_file" >&2
    failures=$((failures + 1))
  else
    echo "ok   $site"
  fi
  rm -f "$stderr_file"
}

# bdd-sift is the one site with a DIFFERENT contract: a fault between the
# atomic level swaps of a reordering pass must degrade cleanly — the sift
# aborts at a canonical intermediate order, the run keeps going, and the
# CLI exits 0 with its normal output. (BddSift.MidSiftFaultDegradesCleanly
# pins the abort semantics; this entry pins "no crash, no exit 5" at the
# CLI level.) The tiny watermark makes the reorder trigger on this input.
run_site_clean() {
  local site=$1
  shift
  local stderr_file
  stderr_file=$(mktemp)
  PMSCHED_FAULT="$site:1" PMSCHED_THREADS=2 PMSCHED_SPECULATE=force \
    PMSCHED_BDD_REORDER_WATERMARK=8 \
    "$pmsched" "$@" >/dev/null 2>"$stderr_file"
  local got=$?
  if [ "$got" -ne 0 ]; then
    echo "FAIL $site: exit $got, want 0 (clean degradation)" >&2
    sed 's/^/  stderr: /' "$stderr_file" >&2
    failures=$((failures + 1))
  else
    echo "ok   $site (clean degradation)"
  fi
  rm -f "$stderr_file"
}

# Consumer-side sites: a file input that exercises parse, per-mux gating,
# shared gating, oracle commits, and the BDD/DNF engines.
run_site parse-stmt "$corpus/shared.ok.cdfg" --steps 6
run_site bdd-node "$corpus/shared.ok.cdfg" --steps 6
run_site dnf-intern "$corpus/shared.ok.cdfg" --steps 6
run_site oracle-commit "$corpus/shared.ok.cdfg" --steps 6
run_site gating-commit "$corpus/shared.ok.cdfg" --steps 6
# Lane-side sites: a graph big enough that forced speculation actually
# stages probe waves; the injected error must be captured by the lane and
# rethrown on the consumer in candidate order.
run_site farm-stage --random-dfg 16x6:2
run_site farm-run --random-dfg 16x6:2
run_site_clean bdd-sift --random-dfg 16x6:2

# explore-point: a fault at one sweep point must degrade cleanly — the point
# is skipped with a typed {"kind":"fault"} entry, the REST of the front still
# emits, and the exit stays 0 (docs/EXPLORE.md pins the contract; the
# FaultSkipsPointKeepsFront test pins it in-process).
run_explore_point() {
  local out_file stderr_file
  out_file=$(mktemp)
  stderr_file=$(mktemp)
  PMSCHED_FAULT="explore-point:1" PMSCHED_THREADS=2 PMSCHED_SPECULATE=force \
    "$pmsched" --explore --explore-span 4 "$corpus/shared.ok.cdfg" \
    >"$out_file" 2>"$stderr_file"
  local got=$?
  if [ "$got" -ne 0 ]; then
    echo "FAIL explore-point: exit $got, want 0 (clean degradation)" >&2
    sed 's/^/  stderr: /' "$stderr_file" >&2
    failures=$((failures + 1))
  elif ! grep -q '"kind":"fault"' "$out_file"; then
    echo "FAIL explore-point: faulted point not skipped typed" >&2
    sed 's/^/  out: /' "$out_file" >&2
    failures=$((failures + 1))
  elif ! grep -q '"front":\[{"steps":' "$out_file"; then
    echo "FAIL explore-point: the rest of the front did not emit" >&2
    sed 's/^/  out: /' "$out_file" >&2
    failures=$((failures + 1))
  else
    echo "ok   explore-point (clean degradation, front still emitted)"
  fi
  rm -f "$out_file" "$stderr_file"
}
run_explore_point

# Server-side sites (PR 8): all three degrade CLEANLY at the server level —
# the faulted request gets a typed error response (or, for cache-insert, a
# normal response that simply is not cached), the server keeps serving the
# rest of the stream, and `pmsched --serve` exits 0 at EOF. A JSONL script
# is piped through stdio and the response stream is grepped for the
# expected shape.
run_serve_site() {
  local site=$1 want=$2 script=$3
  shift 3  # remaining args are extra server flags (e.g. --cache-persist)
  local out_file stderr_file
  out_file=$(mktemp)
  stderr_file=$(mktemp)
  # Frames go in one at a time with a short gap so async design work (and
  # its cache insert) lands before a later stats frame reads the counters.
  while IFS= read -r frame_line; do
    printf '%s\n' "$frame_line"
    sleep 0.3
  done <<<"$script" |
    PMSCHED_FAULT="$site:1" timeout 60 "$pmsched" --serve "$@" \
      >"$out_file" 2>"$stderr_file"
  local got=$?
  if [ "$got" -ne 0 ]; then
    echo "FAIL $site: exit $got, want 0 (server keeps serving)" >&2
    sed 's/^/  stderr: /' "$stderr_file" >&2
    failures=$((failures + 1))
  elif ! grep -q "$want" "$out_file"; then
    echo "FAIL $site: response stream missing expected '$want'" >&2
    sed 's/^/  out: /' "$out_file" >&2
    failures=$((failures + 1))
  elif ! grep -q '"pong":true' "$out_file"; then
    echo "FAIL $site: server did not serve the follow-up ping" >&2
    sed 's/^/  out: /' "$out_file" >&2
    failures=$((failures + 1))
  else
    echo "ok   $site (clean degradation, server kept serving)"
  fi
  rm -f "$out_file" "$stderr_file"
}

graph_json='graph g\ninput a 8\ninput b 8\nnode add s 8 a b\noutput out s\n'
design_frame='{"id":1,"op":"design","graph":"'$graph_json'","steps":4}'
ping_frame='{"id":9,"op":"ping"}'
stats_frame='{"id":10,"op":"stats"}'

# serve-frame: the first frame parse faults -> typed internal error
# response, stream continues.
run_serve_site serve-frame '"category":"internal"' \
  "$ping_frame
$ping_frame"
# serve-accept: the first design admission faults -> typed admission
# rejection, the identical retry is accepted and completes.
run_serve_site serve-accept '"category":"admission"' \
  "$design_frame
$design_frame
$ping_frame"
# cache-insert: the insert after the first design faults -> the result is
# still served (ok:true), just not cached; stats pin insert_failures=1.
run_serve_site cache-insert '"insert_failures":1' \
  "$design_frame
$design_frame
$ping_frame
$stats_frame"

# Supervision + persistence sites (PR 9). worker-crash: the crash fires
# INSIDE the worker before any typed catch; supervision quarantines the
# arenas, restarts the incarnation, and the single automatic retry answers
# the request ok -- the client never sees the crash.
run_serve_site worker-crash '"id":1,"ok":true' \
  "$design_frame
$ping_frame"

persist_dir=$(mktemp -d)
# cache-journal-write: the journal append after the first insert faults ->
# the response is already correct and still served; the failure is counted,
# the cache itself stays warm, the server keeps serving.
run_serve_site cache-journal-write '"journal_append_failures":1' \
  "$design_frame
$ping_frame
$stats_frame" \
  --cache-persist "$persist_dir/jw.cache"
# cache-snapshot-load: the startup load faults -> cold start (counted as one
# skipped record), the server comes up and serves normally.
run_serve_site cache-snapshot-load '"journal_skipped":1' \
  "$ping_frame
$stats_frame" \
  --cache-persist "$persist_dir/sl.cache"
# drain-deadline: the fault expires the drain deadline at EOF -> in-flight
# work already answered, the snapshot still flushes, exit stays 0.
run_serve_site drain-deadline '"id":1,"ok":true' \
  "$design_frame
$ping_frame" \
  --cache-persist "$persist_dir/dd.cache"
rm -rf "$persist_dir"

if [ "$failures" -ne 0 ]; then
  echo "$failures fault-matrix failure(s)" >&2
  exit 1
fi
echo "fault matrix clean: 7 sites produced a structured internal diagnostic, bdd-sift, explore-point and the 7 server-side sites degraded cleanly"
