#!/usr/bin/env bash
# Fire every compiled-in fault-injection site once (PMSCHED_FAULT=<site>:1)
# against an input that actually reaches it, and pin the contract: the CLI
# exits 5 (internal error) with a structured error[internal] diagnostic
# naming the fault — never a crash, signal death, hang, or silent success.
# Lane-side sites (farm-*) run with 2 threads and forced speculation so the
# error crosses the ProbeFarm handoff. Registered as the `fault_matrix`
# ctest; the CI robustness job runs it against an ASan build.
#
# Usage: fault_matrix.sh PMSCHED_BINARY CORPUS_DIR

set -u

if [ $# -ne 2 ]; then
  echo "usage: $0 PMSCHED_BINARY CORPUS_DIR" >&2
  exit 2
fi

pmsched=$1
corpus=$2
failures=0

run_site() {
  local site=$1
  shift
  local stderr_file
  stderr_file=$(mktemp)
  PMSCHED_FAULT="$site:1" PMSCHED_THREADS=2 PMSCHED_SPECULATE=force \
    "$pmsched" "$@" >/dev/null 2>"$stderr_file"
  local got=$?
  if [ "$got" -ne 5 ]; then
    echo "FAIL $site: exit $got, want 5 (internal)" >&2
    sed 's/^/  stderr: /' "$stderr_file" >&2
    failures=$((failures + 1))
  elif ! grep -q "error\[internal\].*fault injected at site '$site'" "$stderr_file"; then
    echo "FAIL $site: exit 5 but diagnostic does not name the fault" >&2
    sed 's/^/  stderr: /' "$stderr_file" >&2
    failures=$((failures + 1))
  else
    echo "ok   $site"
  fi
  rm -f "$stderr_file"
}

# bdd-sift is the one site with a DIFFERENT contract: a fault between the
# atomic level swaps of a reordering pass must degrade cleanly — the sift
# aborts at a canonical intermediate order, the run keeps going, and the
# CLI exits 0 with its normal output. (BddSift.MidSiftFaultDegradesCleanly
# pins the abort semantics; this entry pins "no crash, no exit 5" at the
# CLI level.) The tiny watermark makes the reorder trigger on this input.
run_site_clean() {
  local site=$1
  shift
  local stderr_file
  stderr_file=$(mktemp)
  PMSCHED_FAULT="$site:1" PMSCHED_THREADS=2 PMSCHED_SPECULATE=force \
    PMSCHED_BDD_REORDER_WATERMARK=8 \
    "$pmsched" "$@" >/dev/null 2>"$stderr_file"
  local got=$?
  if [ "$got" -ne 0 ]; then
    echo "FAIL $site: exit $got, want 0 (clean degradation)" >&2
    sed 's/^/  stderr: /' "$stderr_file" >&2
    failures=$((failures + 1))
  else
    echo "ok   $site (clean degradation)"
  fi
  rm -f "$stderr_file"
}

# Consumer-side sites: a file input that exercises parse, per-mux gating,
# shared gating, oracle commits, and the BDD/DNF engines.
run_site parse-stmt "$corpus/shared.ok.cdfg" --steps 6
run_site bdd-node "$corpus/shared.ok.cdfg" --steps 6
run_site dnf-intern "$corpus/shared.ok.cdfg" --steps 6
run_site oracle-commit "$corpus/shared.ok.cdfg" --steps 6
run_site gating-commit "$corpus/shared.ok.cdfg" --steps 6
# Lane-side sites: a graph big enough that forced speculation actually
# stages probe waves; the injected error must be captured by the lane and
# rethrown on the consumer in candidate order.
run_site farm-stage --random-dfg 16x6:2
run_site farm-run --random-dfg 16x6:2
run_site_clean bdd-sift --random-dfg 16x6:2

if [ "$failures" -ne 0 ]; then
  echo "$failures fault-matrix failure(s)" >&2
  exit 1
fi
echo "fault matrix clean: 7 sites produced a structured internal diagnostic, bdd-sift degraded cleanly"
