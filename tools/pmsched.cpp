// pmsched — command-line driver for the whole flow.
//
// Usage:
//   pmsched INPUT --steps N [options]
//   pmsched --random-dfg LxP[:SEED] [--steps N] [options]
//
// INPUT is a behavioral .sil source or a serialized .cdfg graph. The tool
// runs the power-management transform and the resource-minimizing
// scheduler, then emits whatever artifacts are requested:
//
//   --steps N           control-step budget (required for file inputs;
//                       defaults to critical path + 2 for --random-dfg)
//   --ordering MODE     output | input | savings   (default: output)
//   --threads N         worker threads for the speculative transform
//                       (default: PMSCHED_THREADS or hardware concurrency;
//                       results are identical at every thread count)
//   --optimal           exact maximum-savings mux subset (DFS) instead of
//                       the paper's greedy order
//   --strict            disable the shared (OR-composed) gating extension
//   --random-dfg LxP[:SEED]  synthesize a random layered DFG (L layers of
//                       P ops, default seed 1) instead of reading INPUT
//   --circuit NAME      run a reconstructed paper circuit (dealer, gcd,
//                       vender, cordic, ...) instead of reading INPUT
//   --report FILE       Markdown design report
//   --vhdl PREFIX       PREFIX_datapath.vhd / _controller.vhd / _tb.vhd
//   --dot FILE          Graphviz rendering of the transformed CDFG
//   --save FILE         serialized CDFG (with control edges)
//   --power-sim N       gate-level power comparison over N random vectors
//   --bdd-reorder MODE  off | auto — dynamic BDD variable reordering
//                       (sifting); beats PMSCHED_BDD_REORDER when given
//   --calibration       measure (or read) the speculation calibration and
//                       print it as a PMSCHED_CALIBRATION=... line, then
//                       exit — export that line to pin auto-mode decisions
//                       across runs and machines
//
// Server mode (docs/SERVER.md):
//
//   --serve               JSONL request/response over stdin/stdout
//   --serve-socket PATH   listen on a Unix-domain socket instead of stdio
//   --serve-workers N     concurrent design workers (default 2)
//   --serve-queue N       admission queue capacity (default 64)
//   --serve-max-frame N   per-request frame limit in bytes (default 1 MiB)
//   --serve-cache N       canonical-form cache entries (default 256, 0 = off)
//   --serve-threads N     pool lanes per worker (default: --threads /
//                         PMSCHED_THREADS / hardware)
//   --default-deadline-ms N  server-side RunBudget deadline wrapped around
//                         every design request that sent no budget.ms of
//                         its own (0 = off); a degraded-by-deadline result
//                         is typed, never a hung worker slot
//   --cache-persist PATH  snapshot + append-only journal for the canonical
//                         design cache; a restarted server replays the
//                         valid prefix and starts warm
//   --drain-deadline-ms N how long a drain (EOF, shutdown op, SIGTERM/
//                         SIGINT) waits for in-flight work before failing
//                         still-queued requests typed (default 5000)
//
// Explore mode (docs/EXPLORE.md): sweep latency budgets min..max over one
// amortized run and print the latency/power/area Pareto front as JSON
// (stdout carries ONLY the JSON document, so fronts diff byte-for-byte):
//
//   --explore             sweep instead of a single --steps point
//   --explore-span K      sweep width when --explore-max-steps is not given
//                         (max = min + K; default 8)
//   --explore-min-steps N first step budget (default: critical path)
//   --explore-max-steps N last step budget (default: min + span)
//   --explore-out FILE    also write the JSON document to FILE
//   --explore-reference   retained per-point loop (differential baseline)
//
// Run budget (see docs/ROBUSTNESS.md for the per-stage contract):
//
//   --budget-ms N         wall-clock deadline for the optimizing stages
//   --budget-probes N     total oracle-probe cap
//   --budget-bdd-nodes N  per-manager BDD node cap
//   --budget-dnf-terms N  DNF literal-arena cap for shared gating
//   --fail-degraded       exit 4 when any stage degraded (for CI gates)
//
// Exit codes: 0 success, 2 usage error, 3 unreadable/malformed input,
// 4 budget exceeded (--fail-degraded), 5 internal error, 6 infeasible
// constraints. Every failure prints one structured "pmsched: error[...]"
// line to stderr — never a raw abort.
//
// Without artifact options it prints the summary to stdout.

#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#endif

#include "alloc/binding.hpp"
#include "analysis/report.hpp"
#include "cdfg/textio.hpp"
#include "circuits/circuits.hpp"
#include "explore/explore.hpp"
#include "lang/elaborate.hpp"
#include "rtl/power_harness.hpp"
#include "sched/bdd.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/probe_farm.hpp"
#include "sched/shared_gating.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "server/transport.hpp"
#include "support/diagnostics.hpp"
#include "support/fault_injector.hpp"
#include "support/random_dfg.hpp"
#include "support/run_budget.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "vhdl/emit.hpp"

namespace {

using namespace pmsched;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitInput = 3;  ///< unreadable file or parse error
constexpr int kExitBudget = 4;
constexpr int kExitInternal = 5;
constexpr int kExitInfeasible = 6;

/// Bad command line (maps to exit 2 and the usage text).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Unreadable input file (exit 3, like a parse error: the input is at fault).
struct InputError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Options {
  std::string inputPath;
  int steps = 0;
  int threads = 0;  ///< 0 = automatic (PMSCHED_THREADS / hardware)
  MuxOrdering ordering = MuxOrdering::OutputFirst;
  BddReorderMode bddReorder = BddReorderMode::Auto;
  bool bddReorderSet = false;  ///< only override the env default when given
  bool shared = true;
  bool optimal = false;
  bool calibration = false;
  bool failDegraded = false;
  std::string reportPath;
  std::string vhdlPrefix;
  std::string dotPath;
  std::string savePath;
  int powerSim = 0;

  // --explore mode.
  bool explore = false;
  bool exploreReference = false;
  int exploreSpan = 8;
  int exploreMinSteps = 0;  ///< 0 = critical path
  int exploreMaxSteps = 0;  ///< 0 = min + span
  std::string exploreOut;

  // --circuit NAME (a reconstructed paper circuit instead of INPUT).
  std::string circuitName;

  // --random-dfg LxP[:SEED]
  bool randomDfg = false;
  int dfgLayers = 0;
  int dfgPerLayer = 0;
  std::uint64_t dfgSeed = 1;

  // --serve mode.
  bool serve = false;
  std::string serveSocket;
  std::size_t serveWorkers = 2;
  std::size_t serveQueue = 64;
  std::size_t serveMaxFrame = 1 << 20;
  std::size_t serveCache = 256;
  std::size_t serveThreads = 0;  ///< lanes per worker (0 = configured)
  std::uint64_t defaultDeadlineMs = 0;  ///< 0 = no server-side deadline
  std::uint64_t drainDeadlineMs = 5000;
  std::string cachePersistPath;

  // Run budget (0 = unlimited / not set).
  long long budgetMs = 0;
  long long budgetProbes = 0;
  long long budgetBddNodes = 0;
  long long budgetDnfTerms = 0;

  [[nodiscard]] bool hasBudget() const {
    return budgetMs > 0 || budgetProbes > 0 || budgetBddNodes > 0 || budgetDnfTerms > 0;
  }
};

void printUsage(std::ostream& os) {
  os << "usage: pmsched INPUT --steps N [--ordering output|input|savings] [--strict]\n"
        "               [--optimal] [--threads N] [--report FILE] [--vhdl PREFIX]\n"
        "               [--dot FILE] [--save FILE] [--power-sim N]\n"
        "               [--budget-ms N] [--budget-probes N] [--budget-bdd-nodes N]\n"
        "               [--budget-dnf-terms N] [--fail-degraded] [--bdd-reorder off|auto]\n"
        "       pmsched --random-dfg LxP[:SEED] [--steps N] [options]\n"
        "       pmsched --circuit NAME --steps N [options]\n"
        "       pmsched INPUT --explore [--explore-span K] [--explore-min-steps N]\n"
        "               [--explore-max-steps N] [--explore-out FILE] [--explore-reference]\n"
        "       pmsched --calibration [--threads N]\n"
        "       pmsched --serve [--serve-socket PATH] [--serve-workers N]\n"
        "               [--serve-queue N] [--serve-max-frame N] [--serve-cache N]\n"
        "               [--serve-threads N] [--default-deadline-ms N]\n"
        "               [--cache-persist PATH] [--drain-deadline-ms N]\n";
}

/// Strict integer parsing: the whole token must be a number in [lo, hi].
/// Replaces raw std::stoi, whose std::invalid_argument would surface as an
/// internal error instead of a usage error.
long long parseInt(const std::string& text, const char* what, long long lo, long long hi) {
  long long value = 0;
  std::size_t pos = 0;
  try {
    value = std::stoll(text, &pos);
  } catch (const std::exception&) {
    throw UsageError(std::string(what) + " expects an integer, got '" + text + "'");
  }
  if (pos != text.size())
    throw UsageError(std::string(what) + " expects an integer, got '" + text + "'");
  if (value < lo || value > hi)
    throw UsageError(std::string(what) + " must be in [" + std::to_string(lo) + ", " +
                     std::to_string(hi) + "], got " + text);
  return value;
}

/// "LxP" or "LxP:SEED" for --random-dfg.
void parseRandomDfg(const std::string& spec, Options& opts) {
  const auto x = spec.find('x');
  if (x == std::string::npos)
    throw UsageError("--random-dfg expects LxP[:SEED], got '" + spec + "'");
  const auto colon = spec.find(':', x + 1);
  const std::string perLayer =
      spec.substr(x + 1, colon == std::string::npos ? std::string::npos : colon - x - 1);
  opts.dfgLayers = static_cast<int>(parseInt(spec.substr(0, x), "--random-dfg layers", 1, 4096));
  opts.dfgPerLayer = static_cast<int>(parseInt(perLayer, "--random-dfg ops per layer", 1, 4096));
  if (colon != std::string::npos)
    opts.dfgSeed = static_cast<std::uint64_t>(
        parseInt(spec.substr(colon + 1), "--random-dfg seed", 0, INT64_MAX));
  opts.randomDfg = true;
}

Options parseArgs(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) throw UsageError(std::string("missing value for ") + what);
      return argv[++i];
    };
    auto nextInt = [&](const char* what, long long lo, long long hi) {
      return parseInt(next(what), what, lo, hi);
    };
    if (arg == "--help" || arg == "-h") {
      printUsage(std::cout);
      std::exit(kExitOk);
    } else if (arg == "--steps") opts.steps = static_cast<int>(nextInt("--steps", 1, 1 << 20));
    else if (arg == "--threads") opts.threads = static_cast<int>(nextInt("--threads", 1, 4096));
    else if (arg == "--ordering") {
      const std::string mode = next("--ordering");
      if (mode == "output") opts.ordering = MuxOrdering::OutputFirst;
      else if (mode == "input") opts.ordering = MuxOrdering::InputFirst;
      else if (mode == "savings") opts.ordering = MuxOrdering::BySavings;
      else throw UsageError("unknown ordering '" + mode + "'");
    } else if (arg == "--bdd-reorder") {
      const std::string mode = next("--bdd-reorder");
      if (mode == "off") opts.bddReorder = BddReorderMode::Off;
      else if (mode == "auto") opts.bddReorder = BddReorderMode::Auto;
      else throw UsageError("unknown --bdd-reorder mode '" + mode + "' (off|auto)");
      opts.bddReorderSet = true;
    } else if (arg == "--strict") opts.shared = false;
    else if (arg == "--optimal") opts.optimal = true;
    else if (arg == "--random-dfg") parseRandomDfg(next("--random-dfg"), opts);
    else if (arg == "--circuit") opts.circuitName = next("--circuit");
    else if (arg == "--report") opts.reportPath = next("--report");
    else if (arg == "--vhdl") opts.vhdlPrefix = next("--vhdl");
    else if (arg == "--dot") opts.dotPath = next("--dot");
    else if (arg == "--save") opts.savePath = next("--save");
    else if (arg == "--power-sim")
      opts.powerSim = static_cast<int>(nextInt("--power-sim", 1, 1 << 24));
    else if (arg == "--calibration") opts.calibration = true;
    else if (arg == "--explore") opts.explore = true;
    else if (arg == "--explore-reference") opts.exploreReference = true;
    else if (arg == "--explore-span")
      opts.exploreSpan = static_cast<int>(nextInt("--explore-span", 0, 1 << 16));
    else if (arg == "--explore-min-steps")
      opts.exploreMinSteps = static_cast<int>(nextInt("--explore-min-steps", 1, 1 << 20));
    else if (arg == "--explore-max-steps")
      opts.exploreMaxSteps = static_cast<int>(nextInt("--explore-max-steps", 1, 1 << 20));
    else if (arg == "--explore-out") opts.exploreOut = next("--explore-out");
    else if (arg == "--serve") opts.serve = true;
    else if (arg == "--serve-socket") opts.serveSocket = next("--serve-socket");
    else if (arg == "--serve-workers")
      opts.serveWorkers = static_cast<std::size_t>(nextInt("--serve-workers", 0, 4096));
    else if (arg == "--serve-queue")
      opts.serveQueue = static_cast<std::size_t>(nextInt("--serve-queue", 1, 1 << 20));
    else if (arg == "--serve-max-frame")
      opts.serveMaxFrame = static_cast<std::size_t>(nextInt("--serve-max-frame", 64, 1 << 28));
    else if (arg == "--serve-cache")
      opts.serveCache = static_cast<std::size_t>(nextInt("--serve-cache", 0, 1 << 20));
    else if (arg == "--serve-threads")
      opts.serveThreads = static_cast<std::size_t>(nextInt("--serve-threads", 1, 4096));
    else if (arg == "--default-deadline-ms")
      opts.defaultDeadlineMs = static_cast<std::uint64_t>(nextInt("--default-deadline-ms", 0, 1LL << 32));
    else if (arg == "--drain-deadline-ms")
      opts.drainDeadlineMs = static_cast<std::uint64_t>(nextInt("--drain-deadline-ms", 0, 1LL << 32));
    else if (arg == "--cache-persist") opts.cachePersistPath = next("--cache-persist");
    else if (arg == "--budget-ms") opts.budgetMs = nextInt("--budget-ms", 1, 1LL << 32);
    else if (arg == "--budget-probes") opts.budgetProbes = nextInt("--budget-probes", 1, INT64_MAX);
    else if (arg == "--budget-bdd-nodes")
      opts.budgetBddNodes = nextInt("--budget-bdd-nodes", 1, INT64_MAX);
    else if (arg == "--budget-dnf-terms")
      opts.budgetDnfTerms = nextInt("--budget-dnf-terms", 1, INT64_MAX);
    else if (arg == "--fail-degraded") opts.failDegraded = true;
    else if (!arg.empty() && arg[0] == '-') throw UsageError("unknown option '" + arg + "'");
    else if (opts.inputPath.empty()) opts.inputPath = arg;
    else throw UsageError("multiple inputs given");
  }
  if (opts.calibration) {
    if (!opts.inputPath.empty() || opts.steps != 0 || opts.randomDfg)
      throw UsageError("--calibration takes no input");
    return opts;
  }
  if (!opts.serve) {
    if (!opts.serveSocket.empty() || opts.serveWorkers != 2 || opts.serveQueue != 64 ||
        opts.serveMaxFrame != (1u << 20) || opts.serveCache != 256 || opts.serveThreads != 0 ||
        opts.defaultDeadlineMs != 0 || opts.drainDeadlineMs != 5000 ||
        !opts.cachePersistPath.empty())
      throw UsageError("--serve-* options require --serve");
  } else {
    if (!opts.inputPath.empty() || opts.steps != 0 || opts.randomDfg)
      throw UsageError("--serve takes no INPUT (requests arrive as frames)");
    return opts;
  }
  if (!opts.explore) {
    if (opts.exploreReference || opts.exploreSpan != 8 || opts.exploreMinSteps != 0 ||
        opts.exploreMaxSteps != 0 || !opts.exploreOut.empty())
      throw UsageError("--explore-* options require --explore");
  } else {
    if (opts.steps != 0)
      throw UsageError("--explore sweeps step budgets; use --explore-min-steps/--explore-max-steps");
    if (!opts.reportPath.empty() || !opts.vhdlPrefix.empty() || !opts.dotPath.empty() ||
        !opts.savePath.empty() || opts.powerSim != 0)
      throw UsageError("artifact emitters are not available with --explore");
    if (opts.exploreMinSteps != 0 && opts.exploreMaxSteps != 0 &&
        opts.exploreMaxSteps < opts.exploreMinSteps)
      throw UsageError("--explore-max-steps must be >= --explore-min-steps");
  }
  if (opts.randomDfg || !opts.circuitName.empty()) {
    if (opts.randomDfg && !opts.circuitName.empty())
      throw UsageError("--circuit and --random-dfg are mutually exclusive");
    if (!opts.inputPath.empty())
      throw UsageError(std::string(opts.randomDfg ? "--random-dfg" : "--circuit") +
                       " replaces the INPUT file");
    if (!opts.circuitName.empty() && !opts.explore && opts.steps <= 0)
      throw UsageError("--steps is required and must be positive");
  } else {
    if (opts.inputPath.empty()) throw UsageError("no input file");
    if (!opts.explore && opts.steps <= 0)
      throw UsageError("--steps is required and must be positive");
  }
  return opts;
}

/// --calibration: print the speculation calibration in the exact format the
/// PMSCHED_CALIBRATION environment variable accepts, so runs can be pinned.
int printCalibration(const Options& opts) {
  if (opts.threads > 0) setThreadCount(static_cast<std::size_t>(opts.threads));
  const SpeculationCalibration cal = speculationCalibration();
  std::cout << "PMSCHED_CALIBRATION=" << cal.handoffNs << "," << cal.repairNsPerNode << "\n"
            << "# source: " << (cal.measured ? "measured on this machine" : "environment")
            << "\n"
            << "# wave-amortized handoff: " << fixed(cal.handoffNs, 0) << " ns/probe\n"
            << "# median repair: " << fixed(cal.repairNsPerNode, 2) << " ns/node\n"
            << "# auto-mode speculation crossover: " << cal.crossoverNodes() << " nodes\n";
  return kExitOk;
}

/// SIGTERM/SIGINT land here: one async-signal-safe atomic store; the
/// transport loops notice and run the graceful drain (exit 0).
extern "C" void serveSignalHandler(int) { requestGlobalDrain(); }

/// Install the drain handlers WITHOUT SA_RESTART: a blocked stdin read must
/// fail with EINTR so serveStdio falls out of getline into the drain.
void installDrainSignalHandlers() {
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction action {};
  action.sa_handler = serveSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
#endif
}

/// --serve: hand the process over to the multi-tenant server core.
int runServe(const Options& opts) {
  if (opts.threads > 0) setThreadCount(static_cast<std::size_t>(opts.threads));
  if (opts.bddReorderSet) setBddReorderMode(opts.bddReorder);

  ServerOptions serverOpts;
  serverOpts.workers = opts.serveWorkers;
  serverOpts.queueCapacity = opts.serveQueue;
  serverOpts.maxFrameBytes = opts.serveMaxFrame;
  serverOpts.cacheEntries = opts.serveCache;
  serverOpts.threadsPerWorker = opts.serveThreads;
  serverOpts.defaultDeadlineMs = opts.defaultDeadlineMs;
  serverOpts.drainDeadlineMs = opts.drainDeadlineMs;
  serverOpts.cachePersistPath = opts.cachePersistPath;
  installDrainSignalHandlers();
  ServerCore core(serverOpts);
  if (!opts.serveSocket.empty()) {
    try {
      return serveUnixSocket(core, opts.serveSocket);
    } catch (const std::runtime_error& e) {
      // Socket setup failures are environment errors, like unreadable input.
      throw InputError(e.what());
    }
  }
  return serveStdio(core, std::cin, std::cout);
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InputError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw InputError("cannot write '" + path + "'");
  out << text;
  std::cout << "wrote " << path << " (" << text.size() << " bytes)\n";
}

/// Shared front-end setup for run()/runExplore(): thread count, BDD
/// reorder mode, and the optional CLI run budget.
const RunBudget* configureRun(const Options& opts, RunBudget& budgetStorage) {
  // Configure the transform's speculative-probing parallelism before the
  // first pool use; every downstream pass (greedy transform, shared
  // gating, exact search, activation analysis) picks it up from here.
  if (opts.threads > 0) setThreadCount(static_cast<std::size_t>(opts.threads));
  // --bdd-reorder beats PMSCHED_BDD_REORDER; unset keeps the env default.
  if (opts.bddReorderSet) setBddReorderMode(opts.bddReorder);

  if (!opts.hasBudget()) return nullptr;
  if (opts.budgetMs > 0)
    budgetStorage.setDeadline(std::chrono::milliseconds(opts.budgetMs));
  if (opts.budgetProbes > 0)
    budgetStorage.setProbeCap(static_cast<std::uint64_t>(opts.budgetProbes));
  if (opts.budgetBddNodes > 0)
    budgetStorage.setBddNodeCap(static_cast<std::size_t>(opts.budgetBddNodes));
  if (opts.budgetDnfTerms > 0)
    budgetStorage.setDnfTermCap(static_cast<std::size_t>(opts.budgetDnfTerms));
  return &budgetStorage;
}

/// Resolve INPUT / --circuit / --random-dfg into a graph (shared by both
/// run modes).
Graph loadInputGraph(const Options& opts) {
  if (!opts.circuitName.empty()) {
    for (const auto& named : circuits::paperCircuits())
      if (opts.circuitName == named.name) return named.build();
    std::string known;
    for (const auto& named : circuits::paperCircuits()) {
      if (!known.empty()) known += ", ";
      known += named.name;
    }
    throw InputError("unknown circuit '" + opts.circuitName + "' (known: " + known + ")");
  }
  if (opts.randomDfg)
    return randomLayeredDfg(opts.dfgLayers, opts.dfgPerLayer, opts.dfgSeed);
  const std::string source = readFile(opts.inputPath);
  const bool isSil = opts.inputPath.size() >= 4 &&
                     opts.inputPath.substr(opts.inputPath.size() - 4) == ".sil";
  return isSil ? lang::compile(source) : loadGraphText(source);
}

/// --explore: one amortized Pareto sweep (docs/EXPLORE.md). Stdout carries
/// ONLY the JSON document so the CI smoke jobs can diff fronts
/// byte-for-byte; the degradation summary goes to stderr.
int runExplore(const Options& opts) {
  RunBudget budgetStorage;
  const RunBudget* budget = configureRun(opts, budgetStorage);

  ExploreRequest req;
  req.graph = loadInputGraph(opts);
  req.minSteps = opts.exploreMinSteps;
  req.maxSteps = opts.exploreMaxSteps;
  req.span = opts.exploreSpan;
  req.ordering = opts.ordering;
  req.optimal = opts.optimal;
  req.shared = opts.shared;

  const ExploreResult res = opts.exploreReference ? explorePerPointReference(req, budget)
                                                  : exploreDesignSpace(req, budget);
  const std::string json = renderExploreJson(res);
  if (!opts.exploreOut.empty()) {
    std::ofstream out(opts.exploreOut);
    if (!out) throw InputError("cannot write '" + opts.exploreOut + "'");
    out << json << "\n";
  }
  std::cout << json << "\n";

  if (res.degraded) {
    std::cerr << "degraded: yes (" << res.degradeReason << ")\n";
    if (opts.failDegraded) {
      std::cerr << "pmsched: "
                << Diagnostic{"budget", SourceLoc{},
                              "run degraded under its budget (--fail-degraded)"}
                       .toString()
                << "\n";
      return kExitBudget;
    }
  }
  return kExitOk;
}

int run(const Options& opts) {
  RunBudget budgetStorage;
  const RunBudget* budget = configureRun(opts, budgetStorage);

  Graph g = loadInputGraph(opts);
  int steps = opts.steps;
  if (opts.randomDfg && steps <= 0) steps = criticalPathLength(g) + 2;

  std::cout << "circuit '" << g.name() << "': " << countOps(g).totalUnits()
            << " operations, critical path " << criticalPathLength(g) << ", budget "
            << steps << " steps\n";

  // The same service call the server multiplexes (src/server/service.hpp):
  // keeping both front ends on one function is what makes a server response
  // bit-identical to this one-shot run.
  DesignJob job;
  job.graph = g;
  job.steps = steps;
  job.ordering = opts.ordering;
  job.optimal = opts.optimal;
  job.shared = opts.shared;
  const DesignOutcome outcome = runDesignJob(job, budget);
  const PowerManagedDesign& design = outcome.design;
  const Schedule& sched = outcome.schedule;
  const Binding& binding = outcome.binding;
  const ActivationResult& activation = outcome.activation;
  const ControllerSpec& ctrl = outcome.controller;
  const DesignSummary& summary = outcome.summary;

  std::cout << "power-managed muxes: " << summary.managed
            << ", shared-gated ops: " << summary.sharedGated
            << ", units: " << summary.units << "\n"
            << "expected datapath power reduction: " << summary.reductionPercent << "%\n";

  // One stable, machine-grepped degradation summary; the per-stage log
  // follows so humans can see exactly what was cut short.
  const bool degraded = summary.degraded;
  if (degraded) {
    std::cout << "degraded: yes (" << summary.degradeReason << ")\n";
    if (budget != nullptr)
      for (const DegradeEvent& ev : budget->events())
        std::cout << "  degraded[" << ev.stage << "] " << budgetKindName(ev.kind) << ": "
                  << ev.detail << "\n";
    if (!design.degradeReason.empty())
      std::cout << "  degraded[transform] " << design.degradeReason << "\n";
  } else {
    std::cout << "degraded: no\n";
  }

  if (!opts.reportPath.empty()) {
    writeFile(opts.reportPath, analysis::renderDesignReport(
                                   {design, sched, binding, activation, ctrl}));
  }
  if (!opts.vhdlPrefix.empty()) {
    writeFile(opts.vhdlPrefix + "_datapath.vhd", vhdl::emitDatapath(design, sched, ctrl));
    writeFile(opts.vhdlPrefix + "_controller.vhd",
              vhdl::emitController(design, sched, ctrl));
    writeFile(opts.vhdlPrefix + "_tb.vhd",
              vhdl::emitTestbench(design, sched, ctrl, 8, 0xDAC1996));
  }
  if (!opts.dotPath.empty()) writeFile(opts.dotPath, toDot(design.graph));
  if (!opts.savePath.empty()) writeFile(opts.savePath, saveGraphText(design.graph));

  if (opts.powerSim > 0) {
    const PowerManagedDesign baseline = unmanagedDesign(g, steps);
    const ResourceVector baseUnits = minimizeResources(baseline.graph, steps);
    const ListScheduleResult baseScheduled = listSchedule(baseline.graph, steps, baseUnits);
    if (!baseScheduled.schedule) throw InfeasibleError(baseScheduled.message);
    const Schedule& baseSched = *baseScheduled.schedule;
    const Binding baseBinding = bindDesign(baseline.graph, baseSched);
    const ActivationResult baseAct = analyzeActivation(baseline);

    Rng rngA(0xDAC1996);
    Rng rngB(0xDAC1996);
    const RtlPowerResult orig = measurePower(
        mapDesign(baseline, baseSched, baseBinding, baseAct, RtlOptions{false}), g,
        opts.powerSim, rngA, true);
    const RtlPowerResult pm =
        measurePower(mapDesign(design, sched, binding, activation, RtlOptions{true}),
                     design.graph, opts.powerSim, rngB, true);

    std::cout << "gate-level (" << opts.powerSim << " vectors): baseline "
              << fixed(orig.energyPerSample(), 0) << " -> power-managed "
              << fixed(pm.energyPerSample(), 0) << " ("
              << fixed((orig.energyPerSample() - pm.energyPerSample()) /
                           orig.energyPerSample() * 100.0,
                       1)
              << "% lower), functional mismatches: "
              << orig.functionalMismatches + pm.functionalMismatches << "\n";
  }

  if (degraded && opts.failDegraded) {
    std::cerr << "pmsched: "
              << Diagnostic{"budget", SourceLoc{},
                            "run degraded under its budget (--fail-degraded)"}
                     .toString()
              << "\n";
    return kExitBudget;
  }
  return kExitOk;
}

void printDiag(const std::string& category, SourceLoc loc, const std::string& message) {
  std::cerr << "pmsched: " << Diagnostic{category, loc, message}.toString() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Every failure path funnels through here: one structured diagnostic on
  // stderr and a category-specific exit code — never an uncaught throw.
  try {
    const Options opts = parseArgs(argc, argv);
    if (opts.calibration) return printCalibration(opts);
    if (opts.serve) return runServe(opts);
    if (opts.explore) return runExplore(opts);
    return run(opts);
  } catch (const UsageError& e) {
    printDiag("usage", SourceLoc{}, e.what());
    printUsage(std::cerr);
    return kExitUsage;
  } catch (const ParseError& e) {
    // what() already embeds the location prefix; strip it so the structured
    // line carries the location exactly once.
    std::string message = e.what();
    const std::string prefix = e.loc().toString() + ": ";
    if (message.rfind(prefix, 0) == 0) message = message.substr(prefix.size());
    printDiag("parse", e.loc(), message);
    return kExitInput;
  } catch (const InputError& e) {
    printDiag("parse", SourceLoc{}, e.what());
    return kExitInput;
  } catch (const BudgetExceededError& e) {
    printDiag("budget", SourceLoc{}, e.what());
    return kExitBudget;
  } catch (const InfeasibleError& e) {
    printDiag("infeasible", SourceLoc{}, e.what());
    return kExitInfeasible;
  } catch (const FaultInjectedError& e) {
    printDiag("internal", SourceLoc{}, e.what());
    return kExitInternal;
  } catch (const std::exception& e) {
    printDiag("internal", SourceLoc{}, e.what());
    return kExitInternal;
  } catch (...) {
    printDiag("internal", SourceLoc{}, "unknown exception");
    return kExitInternal;
  }
}
