// pmsched — command-line driver for the whole flow.
//
// Usage:
//   pmsched INPUT --steps N [options]
//
// INPUT is a behavioral .sil source or a serialized .cdfg graph. The tool
// runs the power-management transform and the resource-minimizing
// scheduler, then emits whatever artifacts are requested:
//
//   --steps N           control-step budget (required)
//   --ordering MODE     output | input | savings   (default: output)
//   --threads N         worker threads for the speculative transform
//                       (default: PMSCHED_THREADS or hardware concurrency;
//                       results are identical at every thread count)
//   --strict            disable the shared (OR-composed) gating extension
//   --report FILE       Markdown design report
//   --vhdl PREFIX       PREFIX_datapath.vhd / _controller.vhd / _tb.vhd
//   --dot FILE          Graphviz rendering of the transformed CDFG
//   --save FILE         serialized CDFG (with control edges)
//   --power-sim N       gate-level power comparison over N random vectors
//   --calibration       measure (or read) the speculation calibration and
//                       print it as a PMSCHED_CALIBRATION=... line, then
//                       exit — export that line to pin auto-mode decisions
//                       across runs and machines
//
// Without artifact options it prints the summary to stdout.

#include <fstream>
#include <iostream>
#include <sstream>

#include "alloc/binding.hpp"
#include "analysis/report.hpp"
#include "cdfg/textio.hpp"
#include "lang/elaborate.hpp"
#include "rtl/power_harness.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/probe_farm.hpp"
#include "sched/shared_gating.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "vhdl/emit.hpp"

namespace {

using namespace pmsched;

struct Options {
  std::string inputPath;
  int steps = 0;
  int threads = 0;  ///< 0 = automatic (PMSCHED_THREADS / hardware)
  MuxOrdering ordering = MuxOrdering::OutputFirst;
  bool shared = true;
  bool calibration = false;
  std::string reportPath;
  std::string vhdlPrefix;
  std::string dotPath;
  std::string savePath;
  int powerSim = 0;
};

[[noreturn]] void usage(const std::string& error) {
  if (!error.empty()) std::cerr << "error: " << error << "\n";
  std::cerr << "usage: pmsched INPUT --steps N [--ordering output|input|savings] [--strict]\n"
               "               [--threads N] [--report FILE] [--vhdl PREFIX] [--dot FILE]\n"
               "               [--save FILE] [--power-sim N]\n"
               "       pmsched --calibration [--threads N]\n";
  std::exit(error.empty() ? 0 : 2);
}

Options parseArgs(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) usage(std::string("missing value for ") + what);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") usage("");
    else if (arg == "--steps") opts.steps = std::stoi(next("--steps"));
    else if (arg == "--threads") opts.threads = std::stoi(next("--threads"));
    else if (arg == "--ordering") {
      const std::string mode = next("--ordering");
      if (mode == "output") opts.ordering = MuxOrdering::OutputFirst;
      else if (mode == "input") opts.ordering = MuxOrdering::InputFirst;
      else if (mode == "savings") opts.ordering = MuxOrdering::BySavings;
      else usage("unknown ordering '" + mode + "'");
    } else if (arg == "--strict") opts.shared = false;
    else if (arg == "--report") opts.reportPath = next("--report");
    else if (arg == "--vhdl") opts.vhdlPrefix = next("--vhdl");
    else if (arg == "--dot") opts.dotPath = next("--dot");
    else if (arg == "--save") opts.savePath = next("--save");
    else if (arg == "--power-sim") opts.powerSim = std::stoi(next("--power-sim"));
    else if (arg == "--calibration") opts.calibration = true;
    else if (!arg.empty() && arg[0] == '-') usage("unknown option '" + arg + "'");
    else if (opts.inputPath.empty()) opts.inputPath = arg;
    else usage("multiple inputs given");
  }
  if (opts.threads < 0) usage("--threads must be positive (or omitted for automatic)");
  if (opts.calibration) {
    if (!opts.inputPath.empty() || opts.steps != 0) usage("--calibration takes no input");
    return opts;
  }
  if (opts.inputPath.empty()) usage("no input file");
  if (opts.steps <= 0) usage("--steps is required and must be positive");
  return opts;
}

/// --calibration: print the speculation calibration in the exact format the
/// PMSCHED_CALIBRATION environment variable accepts, so runs can be pinned.
int printCalibration(const Options& opts) {
  if (opts.threads > 0) setThreadCount(static_cast<std::size_t>(opts.threads));
  const SpeculationCalibration cal = speculationCalibration();
  std::cout << "PMSCHED_CALIBRATION=" << cal.handoffNs << "," << cal.repairNsPerNode << "\n"
            << "# source: " << (cal.measured ? "measured on this machine" : "environment")
            << "\n"
            << "# wave-amortized handoff: " << fixed(cal.handoffNs, 0) << " ns/probe\n"
            << "# median repair: " << fixed(cal.repairNsPerNode, 2) << " ns/node\n"
            << "# auto-mode speculation crossover: " << cal.crossoverNodes() << " nodes\n";
  return 0;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write '" + path + "'");
  out << text;
  std::cout << "wrote " << path << " (" << text.size() << " bytes)\n";
}

int run(const Options& opts) {
  // Configure the transform's speculative-probing parallelism before the
  // first pool use; every downstream pass (greedy transform, shared
  // gating, exact search, activation analysis) picks it up from here.
  if (opts.threads > 0) setThreadCount(static_cast<std::size_t>(opts.threads));

  const std::string source = readFile(opts.inputPath);
  const bool isSil = opts.inputPath.size() >= 4 &&
                     opts.inputPath.substr(opts.inputPath.size() - 4) == ".sil";
  Graph g = isSil ? lang::compile(source) : loadGraphText(source);

  std::cout << "circuit '" << g.name() << "': " << countOps(g).totalUnits()
            << " operations, critical path " << criticalPathLength(g) << ", budget "
            << opts.steps << " steps\n";

  PowerManagedDesign design = applyPowerManagement(g, opts.steps, opts.ordering);
  int sharedGated = 0;
  if (opts.shared) sharedGated = applySharedGating(design);

  const ResourceVector units = minimizeResources(design.graph, opts.steps);
  const ListScheduleResult scheduled = listSchedule(design.graph, opts.steps, units);
  if (!scheduled.schedule) {
    std::cerr << "scheduling failed: " << scheduled.message << "\n";
    return 1;
  }
  const Schedule& sched = *scheduled.schedule;
  const Binding binding = bindDesign(design.graph, sched);
  const ActivationResult activation = analyzeActivation(design);
  const ControllerSpec ctrl = synthesizeController(design, sched, binding, activation);

  const OpPowerModel model = OpPowerModel::paperWeights();
  std::cout << "power-managed muxes: " << design.managedCount()
            << ", shared-gated ops: " << sharedGated
            << ", units: " << units.toString() << "\n"
            << "expected datapath power reduction: "
            << fixed(activation.reductionPercent(model), 2) << "%\n";

  if (!opts.reportPath.empty()) {
    writeFile(opts.reportPath, analysis::renderDesignReport(
                                   {design, sched, binding, activation, ctrl}));
  }
  if (!opts.vhdlPrefix.empty()) {
    writeFile(opts.vhdlPrefix + "_datapath.vhd", vhdl::emitDatapath(design, sched, ctrl));
    writeFile(opts.vhdlPrefix + "_controller.vhd",
              vhdl::emitController(design, sched, ctrl));
    writeFile(opts.vhdlPrefix + "_tb.vhd",
              vhdl::emitTestbench(design, sched, ctrl, 8, 0xDAC1996));
  }
  if (!opts.dotPath.empty()) writeFile(opts.dotPath, toDot(design.graph));
  if (!opts.savePath.empty()) writeFile(opts.savePath, saveGraphText(design.graph));

  if (opts.powerSim > 0) {
    const PowerManagedDesign baseline = unmanagedDesign(g, opts.steps);
    const ResourceVector baseUnits = minimizeResources(baseline.graph, opts.steps);
    const Schedule baseSched = *listSchedule(baseline.graph, opts.steps, baseUnits).schedule;
    const Binding baseBinding = bindDesign(baseline.graph, baseSched);
    const ActivationResult baseAct = analyzeActivation(baseline);

    Rng rngA(0xDAC1996);
    Rng rngB(0xDAC1996);
    const RtlPowerResult orig = measurePower(
        mapDesign(baseline, baseSched, baseBinding, baseAct, RtlOptions{false}), g,
        opts.powerSim, rngA, true);
    const RtlPowerResult pm =
        measurePower(mapDesign(design, sched, binding, activation, RtlOptions{true}),
                     design.graph, opts.powerSim, rngB, true);

    std::cout << "gate-level (" << opts.powerSim << " vectors): baseline "
              << fixed(orig.energyPerSample(), 0) << " -> power-managed "
              << fixed(pm.energyPerSample(), 0) << " ("
              << fixed((orig.energyPerSample() - pm.energyPerSample()) /
                           orig.energyPerSample() * 100.0,
                       1)
              << "% lower), functional mismatches: "
              << orig.functionalMismatches + pm.functionalMismatches << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts = parseArgs(argc, argv);
    return opts.calibration ? printCalibration(opts) : run(opts);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
