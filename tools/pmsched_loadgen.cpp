// pmsched_loadgen — throughput / tail-latency driver for `pmsched --serve`.
//
// Connects C client threads to a running server's Unix socket (--socket), or
// spawns a fresh server itself (--server BIN), and fires N design requests
// over a rotating pool of pregenerated random CDFGs, mixing small and large
// graphs. Each request is synchronous per connection, so per-request wall
// latency is exact; the tool reports requests/sec, p50 and p99 latency, and
// the server's cache-hit count as one JSON object on stdout.
//
//   pmsched_loadgen --server build/pmsched --requests 400 --clients 4
//   pmsched_loadgen --socket /tmp/pm.sock --unique 1            # all repeats
//   pmsched_loadgen --server build/pmsched --check              # differential
//
// --check pins the determinism contract: every request is sent with id 0 and
// no session, so identical requests are byte-identical frames — and every
// response to the same frame must be byte-identical too (cache hits
// included), across clients and across the whole run. Any mismatch is a
// non-zero exit.
//
// When the tool spawned the server it also shuts it down at the end and
// fails if the server leaked sessions or exited non-zero, so a CI smoke run
// is a single command.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cdfg/analysis.hpp"
#include "cdfg/textio.hpp"
#include "support/json.hpp"
#include "support/random_dfg.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>
#define PMSCHED_LOADGEN_POSIX 1
#endif

namespace {

using namespace pmsched;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string serverBin;    // spawn `BIN --serve --socket ...` ourselves
  std::string socketPath;   // or connect to an already-running server
  int requests = 200;
  int clients = 4;
  int steps = 8;
  int unique = 8;           // distinct graphs rotated through
  int largeEvery = 4;       // every Nth request uses a large graph
  int largeLayers = 8;      // --large LxP: shape of the large graphs
  int largePerLayer = 6;
  int serveWorkers = 2;     // --serve-workers for a spawned server
  bool noCache = false;     // send "cache":false on every request
  bool noDesign = false;    // send "emit_design":false (summary-only)
  bool optimal = false;     // send "optimal":true (exhaustive timeframe search)
  bool check = false;       // differential mode (see file comment)
};

[[noreturn]] void usageError(const std::string& msg) {
  std::cerr << "pmsched_loadgen: " << msg << "\n"
            << "usage: pmsched_loadgen (--server BIN | --socket PATH)\n"
            << "         [--requests N] [--clients C] [--steps K] [--unique U]\n"
            << "         [--large-every M] [--serve-workers W] [--no-cache] [--check]\n";
  std::exit(2);
}

int parseInt(const std::string& flag, const char* value, int lo, int hi) {
  int v = 0;
  try {
    v = std::stoi(value);
  } catch (...) {
    usageError(flag + " expects an integer");
  }
  if (v < lo || v > hi) usageError(flag + " out of range");
  return v;
}

Options parseArgs(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usageError(a + " expects a value");
      return argv[++i];
    };
    if (a == "--server") o.serverBin = next();
    else if (a == "--socket") o.socketPath = next();
    else if (a == "--requests") o.requests = parseInt(a, next(), 1, 1 << 20);
    else if (a == "--clients") o.clients = parseInt(a, next(), 1, 256);
    else if (a == "--steps") o.steps = parseInt(a, next(), 1, 4096);
    else if (a == "--unique") o.unique = parseInt(a, next(), 1, 1 << 16);
    else if (a == "--large-every") o.largeEvery = parseInt(a, next(), 1, 1 << 20);
    else if (a == "--large") {
      const std::string spec = next();
      const std::size_t x = spec.find('x');
      if (x == std::string::npos) usageError("--large expects LxP (e.g. 16x8)");
      o.largeLayers = parseInt(a, spec.substr(0, x).c_str(), 1, 256);
      o.largePerLayer = parseInt(a, spec.substr(x + 1).c_str(), 1, 64);
    }
    else if (a == "--serve-workers") o.serveWorkers = parseInt(a, next(), 1, 4096);
    else if (a == "--no-cache") o.noCache = true;
    else if (a == "--no-design") o.noDesign = true;
    else if (a == "--optimal") o.optimal = true;
    else if (a == "--check") o.check = true;
    else usageError("unknown option '" + a + "'");
  }
  if (o.serverBin.empty() == o.socketPath.empty())
    usageError("exactly one of --server or --socket is required");
  return o;
}

/// JSON-escape via the writer (one string value, strip the quotes later is
/// not needed — we embed the quoted form directly).
std::string quoted(const std::string& s) {
  JsonWriter w;
  w.value(s);
  return w.str();
}

#ifdef PMSCHED_LOADGEN_POSIX

/// Line-framed client connection to the server's Unix socket.
class LineConn {
 public:
  explicit LineConn(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~LineConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineConn(const LineConn&) = delete;
  LineConn& operator=(const LineConn&) = delete;

  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  bool sendLine(const std::string& line) {
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool recvLine(std::string& line) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

struct RunResult {
  std::vector<double> latenciesMs;  // per completed request
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t cacheHits = 0;
  double wallMs = 0;
};

struct CheckState {
  std::mutex mutex;
  std::map<std::string, std::string> firstResponse;  // frame -> response
  std::uint64_t mismatches = 0;
};

bool responseOk(const std::string& line) {
  return line.find("\"ok\":true") != std::string::npos;
}

/// For --check comparisons: the cache_hit flag legitimately differs between
/// the first (miss) and later (hit) responses to the same frame — the
/// determinism contract is over everything else, the design text included.
std::string stripCacheHit(std::string line) {
  for (const char* marker : {",\"cache_hit\":true", ",\"cache_hit\":false"}) {
    const std::size_t at = line.find(marker);
    if (at != std::string::npos) line.erase(at, std::strlen(marker));
  }
  return line;
}

RunResult runClients(const Options& o, const std::vector<std::string>& frames,
                     CheckState& check) {
  RunResult total;
  std::mutex mergeMutex;
  std::atomic<bool> connectFailed{false};
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(o.clients));
  for (int c = 0; c < o.clients; ++c) {
    threads.emplace_back([&, c] {
      LineConn conn(o.socketPath);
      if (!conn.ok()) {
        connectFailed = true;
        return;
      }
      RunResult local;
      std::string response;
      if (!o.check) {
        // Each benchmark client works inside its own session; --check mode
        // skips sessions so identical requests are identical frames.
        const std::string session = "client-" + std::to_string(c);
        if (!conn.sendLine(R"({"id":0,"op":"open_session","session":)" +
                           quoted(session) + "}") ||
            !conn.recvLine(response))
          return;
      }
      for (std::size_t j = static_cast<std::size_t>(c); j < frames.size();
           j += static_cast<std::size_t>(o.clients)) {
        std::string frame = frames[j];
        if (!o.check) {
          // Route through this client's session (insert before the brace).
          frame.insert(frame.size() - 1,
                       ",\"session\":" + quoted("client-" + std::to_string(c)));
        }
        const auto t0 = Clock::now();
        if (!conn.sendLine(frame) || !conn.recvLine(response)) {
          ++local.errors;
          break;
        }
        const auto t1 = Clock::now();
        local.latenciesMs.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        if (responseOk(response)) {
          ++local.completed;
          if (response.find("\"cache_hit\":true") != std::string::npos)
            ++local.cacheHits;
        } else {
          ++local.errors;
        }
        if (o.check) {
          const std::string normalized = stripCacheHit(response);
          const std::lock_guard<std::mutex> lock(check.mutex);
          const auto [it, inserted] = check.firstResponse.emplace(frames[j], normalized);
          if (!inserted && it->second != normalized) {
            ++check.mismatches;
            std::cerr << "loadgen: MISMATCH for frame " << frames[j] << "\n  first: "
                      << it->second << "\n  later: " << normalized << "\n";
          }
        }
      }
      if (!o.check) {
        conn.sendLine(R"({"id":0,"op":"close_session","session":)" +
                      quoted("client-" + std::to_string(c)) + "}");
        conn.recvLine(response);
      }
      const std::lock_guard<std::mutex> lock(mergeMutex);
      total.completed += local.completed;
      total.errors += local.errors;
      total.cacheHits += local.cacheHits;
      total.latenciesMs.insert(total.latenciesMs.end(), local.latenciesMs.begin(),
                               local.latenciesMs.end());
    });
  }
  for (std::thread& t : threads) t.join();
  total.wallMs =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  if (connectFailed) {
    std::cerr << "loadgen: could not connect to " << o.socketPath << "\n";
    std::exit(3);
  }
  return total;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

int runLoadgen(const Options& optsIn) {
  Options o = optsIn;
  pid_t serverPid = -1;
  if (!o.serverBin.empty()) {
    o.socketPath = "/tmp/pmsched_loadgen_" + std::to_string(::getpid()) + ".sock";
    const std::string workers = std::to_string(o.serveWorkers);
    serverPid = ::fork();
    if (serverPid == 0) {
      ::execlp(o.serverBin.c_str(), o.serverBin.c_str(), "--serve",
               "--serve-socket", o.socketPath.c_str(), "--serve-workers",
               workers.c_str(), static_cast<char*>(nullptr));
      std::perror("pmsched_loadgen: exec");
      std::_Exit(127);
    }
    if (serverPid < 0) {
      std::cerr << "loadgen: fork failed\n";
      return 3;
    }
    // Wait for the socket to accept connections (up to ~10s).
    bool up = false;
    for (int i = 0; i < 1000 && !up; ++i) {
      LineConn probe(o.socketPath);
      up = probe.ok();
      if (!up) std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!up) {
      std::cerr << "loadgen: spawned server never came up at " << o.socketPath << "\n";
      ::kill(serverPid, SIGKILL);
      return 3;
    }
  }

  // Pregenerate the request pool: small graphs by default, a large one
  // every --large-every requests, --unique distinct seeds rotated through.
  // Steps are clamped to each graph's critical path so every request is
  // feasible regardless of the --large shape.
  std::vector<std::pair<std::string, int>> smallGraphs, largeGraphs;  // text, steps
  for (int u = 0; u < o.unique; ++u) {
    const Graph small = randomLayeredDfg(3, 4, 100 + static_cast<std::uint64_t>(u));
    smallGraphs.emplace_back(saveGraphText(small),
                             std::max(o.steps, criticalPathLength(small) + 2));
    const Graph large = randomLayeredDfg(o.largeLayers, o.largePerLayer,
                                         900 + static_cast<std::uint64_t>(u));
    largeGraphs.emplace_back(saveGraphText(large),
                             std::max(o.steps, criticalPathLength(large) + 2));
  }
  std::vector<std::string> frames;
  frames.reserve(static_cast<std::size_t>(o.requests));
  for (int j = 0; j < o.requests; ++j) {
    const bool large = (j % o.largeEvery) == (o.largeEvery - 1);
    const auto& [graph, steps] =
        (large ? largeGraphs : smallGraphs)[static_cast<std::size_t>(j % o.unique)];
    std::ostringstream f;
    f << R"({"id":0,"op":"design","graph":)" << quoted(graph)
      << ",\"steps\":" << steps;
    if (o.noCache) f << ",\"cache\":false";
    if (o.noDesign) f << ",\"emit_design\":false";
    if (o.optimal) f << ",\"optimal\":true";
    f << "}";
    frames.push_back(f.str());
  }

  CheckState check;
  RunResult r = runClients(o, frames, check);

  // If we own the server, shut it down and pin the leak + exit contracts.
  std::int64_t leaked = -1;
  int serverExit = 0;
  if (serverPid > 0) {
    {
      LineConn ctl(o.socketPath);
      std::string response;
      if (ctl.ok() && ctl.sendLine(R"({"id":0,"op":"shutdown"})") &&
          ctl.recvLine(response)) {
        const JsonValue v = parseJson(response);
        if (const JsonValue* result = v.find("result"))
          if (const JsonValue* l = result->find("leaked_sessions")) leaked = l->asInt();
      }
    }
    int status = 0;
    ::waitpid(serverPid, &status, 0);
    serverExit = WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
  }

  std::sort(r.latenciesMs.begin(), r.latenciesMs.end());
  JsonWriter w;
  w.beginObject()
      .key("requests").value(static_cast<std::int64_t>(o.requests))
      .key("clients").value(static_cast<std::int64_t>(o.clients))
      .key("completed").value(static_cast<std::int64_t>(r.completed))
      .key("errors").value(static_cast<std::int64_t>(r.errors))
      .key("cache_hits").value(static_cast<std::int64_t>(r.cacheHits))
      .key("wall_ms").value(r.wallMs)
      .key("requests_per_sec")
      .value(r.wallMs > 0 ? 1000.0 * static_cast<double>(r.completed) / r.wallMs : 0.0)
      .key("p50_ms").value(percentile(r.latenciesMs, 0.50))
      .key("p99_ms").value(percentile(r.latenciesMs, 0.99))
      .key("check").value(o.check)
      .key("mismatches").value(static_cast<std::int64_t>(check.mismatches));
  if (serverPid > 0) {
    w.key("leaked_sessions").value(leaked)
        .key("server_exit").value(static_cast<std::int64_t>(serverExit));
  }
  w.endObject();
  std::cout << w.str() << "\n";

  if (r.errors != 0 || check.mismatches != 0) return 1;
  if (r.completed != static_cast<std::uint64_t>(o.requests)) return 1;
  if (serverPid > 0 && (leaked != 0 || serverExit != 0)) return 1;
  return 0;
}

#endif  // PMSCHED_LOADGEN_POSIX

}  // namespace

int main(int argc, char** argv) {
  const Options o = parseArgs(argc, argv);
#ifdef PMSCHED_LOADGEN_POSIX
  return runLoadgen(o);
#else
  (void)o;
  std::cerr << "pmsched_loadgen: Unix sockets unavailable on this platform\n";
  return 2;
#endif
}
