// pmsched_loadgen — throughput / tail-latency driver for `pmsched --serve`.
//
// Connects C client threads to a running server's Unix socket (--socket), or
// spawns a fresh server itself (--server BIN), and fires N design requests
// over a rotating pool of pregenerated random CDFGs, mixing small and large
// graphs. Each request is synchronous per connection, so per-request wall
// latency is exact; the tool reports requests/sec, p50 and p99 latency, and
// the server's cache-hit count as one JSON object on stdout.
//
//   pmsched_loadgen --server build/pmsched --requests 400 --clients 4
//   pmsched_loadgen --socket /tmp/pm.sock --unique 1            # all repeats
//   pmsched_loadgen --server build/pmsched --check              # differential
//
// --check pins the determinism contract: every request is sent with id 0 and
// no session, so identical requests are byte-identical frames — and every
// response to the same frame must be byte-identical too (cache hits
// included), across clients and across the whole run. Any mismatch is a
// non-zero exit.
//
// When the tool spawned the server it also shuts it down at the end and
// fails if the server leaked sessions or exited non-zero, so a CI smoke run
// is a single command.
//
// --chaos is the soak harness (requires --server BIN): each round spawns a
// fresh server with a RANDOM fault schedule over the full fault-site
// registry (PMSCHED_FAULT="site:nth,site:nth,..."), drives session traffic,
// and asserts the crash-resilience contract: the server keeps serving (ping
// after the burst), every response is either byte-identical to the
// in-process one-shot run of the same request or a TYPED error, zero
// sessions leak, and the process exits 0. A final round SIGKILLs the server
// mid-load and restarts it with the same --cache-persist path, asserting the
// journal's valid prefix replays and responses stay byte-identical with the
// cache warm.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <cerrno>
#include <map>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cdfg/analysis.hpp"
#include "cdfg/textio.hpp"
#include "server/protocol.hpp"
#include "server/service.hpp"
#include "support/fault_injector.hpp"
#include "support/json.hpp"
#include "support/random_dfg.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>
#define PMSCHED_LOADGEN_POSIX 1
#endif

namespace {

using namespace pmsched;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string serverBin;    // spawn `BIN --serve --socket ...` ourselves
  std::string socketPath;   // or connect to an already-running server
  int requests = 200;
  int clients = 4;
  int steps = 8;
  int unique = 8;           // distinct graphs rotated through
  int largeEvery = 4;       // every Nth request uses a large graph
  int largeLayers = 8;      // --large LxP: shape of the large graphs
  int largePerLayer = 6;
  int serveWorkers = 2;     // --serve-workers for a spawned server
  bool noCache = false;     // send "cache":false on every request
  bool noDesign = false;    // send "emit_design":false (summary-only)
  bool optimal = false;     // send "optimal":true (exhaustive timeframe search)
  bool check = false;       // differential mode (see file comment)
  bool chaos = false;       // randomized fault-schedule soak (see file comment)
  int chaosRounds = 5;      // fault rounds before the kill-restart round
  std::uint64_t chaosSeed = 1;
  std::string cachePersistPath;  // --cache-persist for the spawned server
  long long defaultDeadlineMs = 0;  // --default-deadline-ms for the server
};

[[noreturn]] void usageError(const std::string& msg) {
  std::cerr << "pmsched_loadgen: " << msg << "\n"
            << "usage: pmsched_loadgen (--server BIN | --socket PATH)\n"
            << "         [--requests N] [--clients C] [--steps K] [--unique U]\n"
            << "         [--large-every M] [--serve-workers W] [--no-cache] [--check]\n"
            << "         [--chaos] [--chaos-rounds R] [--chaos-seed S]\n"
            << "         [--cache-persist PATH] [--default-deadline-ms N]\n";
  std::exit(2);
}

int parseInt(const std::string& flag, const char* value, int lo, int hi) {
  int v = 0;
  try {
    v = std::stoi(value);
  } catch (...) {
    usageError(flag + " expects an integer");
  }
  if (v < lo || v > hi) usageError(flag + " out of range");
  return v;
}

Options parseArgs(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usageError(a + " expects a value");
      return argv[++i];
    };
    if (a == "--server") o.serverBin = next();
    else if (a == "--socket") o.socketPath = next();
    else if (a == "--requests") o.requests = parseInt(a, next(), 1, 1 << 20);
    else if (a == "--clients") o.clients = parseInt(a, next(), 1, 256);
    else if (a == "--steps") o.steps = parseInt(a, next(), 1, 4096);
    else if (a == "--unique") o.unique = parseInt(a, next(), 1, 1 << 16);
    else if (a == "--large-every") o.largeEvery = parseInt(a, next(), 1, 1 << 20);
    else if (a == "--large") {
      const std::string spec = next();
      const std::size_t x = spec.find('x');
      if (x == std::string::npos) usageError("--large expects LxP (e.g. 16x8)");
      o.largeLayers = parseInt(a, spec.substr(0, x).c_str(), 1, 256);
      o.largePerLayer = parseInt(a, spec.substr(x + 1).c_str(), 1, 64);
    }
    else if (a == "--serve-workers") o.serveWorkers = parseInt(a, next(), 1, 4096);
    else if (a == "--no-cache") o.noCache = true;
    else if (a == "--no-design") o.noDesign = true;
    else if (a == "--optimal") o.optimal = true;
    else if (a == "--check") o.check = true;
    else if (a == "--chaos") o.chaos = true;
    else if (a == "--chaos-rounds") o.chaosRounds = parseInt(a, next(), 1, 1 << 12);
    else if (a == "--chaos-seed")
      o.chaosSeed = static_cast<std::uint64_t>(parseInt(a, next(), 0, INT32_MAX));
    else if (a == "--cache-persist") o.cachePersistPath = next();
    else if (a == "--default-deadline-ms")
      o.defaultDeadlineMs = parseInt(a, next(), 0, INT32_MAX);
    else usageError("unknown option '" + a + "'");
  }
  if (o.serverBin.empty() == o.socketPath.empty())
    usageError("exactly one of --server or --socket is required");
  if (o.chaos && o.serverBin.empty())
    usageError("--chaos spawns and kills servers itself; it requires --server BIN");
  return o;
}

/// JSON-escape via the writer (one string value, strip the quotes later is
/// not needed — we embed the quoted form directly).
std::string quoted(const std::string& s) {
  JsonWriter w;
  w.value(s);
  return w.str();
}

#ifdef PMSCHED_LOADGEN_POSIX

/// Line-framed client connection to the server's Unix socket.
///
/// `retryBudgetMs` > 0 retries TRANSIENT connect failures (ECONNREFUSED
/// while the listener's backlog is momentarily full, ENOENT while the
/// socket file is still being bound) with exponential backoff — 1 ms
/// doubling to a 200 ms cap — plus up to 25% random jitter so simultaneous
/// clients do not retry in lockstep. Non-transient errors fail immediately.
class LineConn {
 public:
  explicit LineConn(const std::string& path, int retryBudgetMs = 0) {
    std::mt19937 jitterRng(
        static_cast<std::uint32_t>(::getpid()) ^
        static_cast<std::uint32_t>(std::chrono::steady_clock::now().time_since_epoch().count()));
    double delayMs = 1.0;
    const auto giveUp =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(retryBudgetMs);
    for (;;) {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd_ < 0) return;
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) return;
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      const bool transient = err == ECONNREFUSED || err == ENOENT || err == EAGAIN;
      if (!transient || retryBudgetMs <= 0 || std::chrono::steady_clock::now() >= giveUp)
        return;
      const double jitter =
          1.0 + 0.25 * std::uniform_real_distribution<double>(0.0, 1.0)(jitterRng);
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delayMs * jitter));
      delayMs = std::min(delayMs * 2.0, 200.0);
    }
  }
  ~LineConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineConn(const LineConn&) = delete;
  LineConn& operator=(const LineConn&) = delete;

  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  bool sendLine(const std::string& line) {
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool recvLine(std::string& line) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

struct RunResult {
  std::vector<double> latenciesMs;  // per completed request
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t cacheHits = 0;
  double wallMs = 0;
};

struct CheckState {
  std::mutex mutex;
  std::map<std::string, std::string> firstResponse;  // frame -> response
  std::uint64_t mismatches = 0;
};

bool responseOk(const std::string& line) {
  return line.find("\"ok\":true") != std::string::npos;
}

/// For --check comparisons: the cache_hit flag legitimately differs between
/// the first (miss) and later (hit) responses to the same frame — the
/// determinism contract is over everything else, the design text included.
std::string stripCacheHit(std::string line) {
  for (const char* marker : {",\"cache_hit\":true", ",\"cache_hit\":false"}) {
    const std::size_t at = line.find(marker);
    if (at != std::string::npos) line.erase(at, std::strlen(marker));
  }
  return line;
}

RunResult runClients(const Options& o, const std::vector<std::string>& frames,
                     CheckState& check) {
  RunResult total;
  std::mutex mergeMutex;
  std::atomic<bool> connectFailed{false};
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(o.clients));
  for (int c = 0; c < o.clients; ++c) {
    threads.emplace_back([&, c] {
      // A 2s retry budget rides out transient ECONNREFUSED while many
      // clients pile onto a freshly-bound listener.
      LineConn conn(o.socketPath, /*retryBudgetMs=*/2000);
      if (!conn.ok()) {
        connectFailed = true;
        return;
      }
      RunResult local;
      std::string response;
      if (!o.check) {
        // Each benchmark client works inside its own session; --check mode
        // skips sessions so identical requests are identical frames.
        const std::string session = "client-" + std::to_string(c);
        if (!conn.sendLine(R"({"id":0,"op":"open_session","session":)" +
                           quoted(session) + "}") ||
            !conn.recvLine(response))
          return;
      }
      for (std::size_t j = static_cast<std::size_t>(c); j < frames.size();
           j += static_cast<std::size_t>(o.clients)) {
        std::string frame = frames[j];
        if (!o.check) {
          // Route through this client's session (insert before the brace).
          frame.insert(frame.size() - 1,
                       ",\"session\":" + quoted("client-" + std::to_string(c)));
        }
        const auto t0 = Clock::now();
        if (!conn.sendLine(frame) || !conn.recvLine(response)) {
          ++local.errors;
          break;
        }
        const auto t1 = Clock::now();
        local.latenciesMs.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        if (responseOk(response)) {
          ++local.completed;
          if (response.find("\"cache_hit\":true") != std::string::npos)
            ++local.cacheHits;
        } else {
          ++local.errors;
        }
        if (o.check) {
          const std::string normalized = stripCacheHit(response);
          const std::lock_guard<std::mutex> lock(check.mutex);
          const auto [it, inserted] = check.firstResponse.emplace(frames[j], normalized);
          if (!inserted && it->second != normalized) {
            ++check.mismatches;
            std::cerr << "loadgen: MISMATCH for frame " << frames[j] << "\n  first: "
                      << it->second << "\n  later: " << normalized << "\n";
          }
        }
      }
      if (!o.check) {
        conn.sendLine(R"({"id":0,"op":"close_session","session":)" +
                      quoted("client-" + std::to_string(c)) + "}");
        conn.recvLine(response);
      }
      const std::lock_guard<std::mutex> lock(mergeMutex);
      total.completed += local.completed;
      total.errors += local.errors;
      total.cacheHits += local.cacheHits;
      total.latenciesMs.insert(total.latenciesMs.end(), local.latenciesMs.begin(),
                               local.latenciesMs.end());
    });
  }
  for (std::thread& t : threads) t.join();
  total.wallMs =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  if (connectFailed) {
    std::cerr << "loadgen: could not connect to " << o.socketPath << "\n";
    std::exit(3);
  }
  return total;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Fork + exec `BIN --serve --serve-socket PATH ...`, arming PMSCHED_FAULT
/// in the child when `faultSpec` is non-empty. Returns the child pid (< 0 on
/// fork failure).
pid_t spawnServer(const Options& o, const std::string& socketPath,
                  const std::string& faultSpec) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  if (!faultSpec.empty())
    ::setenv("PMSCHED_FAULT", faultSpec.c_str(), 1);
  else
    ::unsetenv("PMSCHED_FAULT");
  std::vector<std::string> args = {o.serverBin,       "--serve",
                                   "--serve-socket",  socketPath,
                                   "--serve-workers", std::to_string(o.serveWorkers)};
  if (!o.cachePersistPath.empty()) {
    args.emplace_back("--cache-persist");
    args.push_back(o.cachePersistPath);
  }
  if (o.defaultDeadlineMs > 0) {
    args.emplace_back("--default-deadline-ms");
    args.push_back(std::to_string(o.defaultDeadlineMs));
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& s : args) argv.push_back(s.data());
  argv.push_back(nullptr);
  ::execvp(argv[0], argv.data());
  std::perror("pmsched_loadgen: exec");
  std::_Exit(127);
}

/// Poll until the socket accepts a connection (the spawned server is up).
bool waitSocketUp(const std::string& path, int budgetMs) {
  for (int waited = 0; waited < budgetMs; waited += 10) {
    LineConn probe(path);
    if (probe.ok()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

/// Pregenerate the request pool: small graphs by default, a large one every
/// --large-every requests, --unique distinct seeds rotated through. Steps
/// are clamped to each graph's critical path so every request is feasible
/// regardless of the --large shape.
std::vector<std::string> buildFrames(const Options& o) {
  std::vector<std::pair<std::string, int>> smallGraphs, largeGraphs;  // text, steps
  for (int u = 0; u < o.unique; ++u) {
    const Graph small = randomLayeredDfg(3, 4, 100 + static_cast<std::uint64_t>(u));
    smallGraphs.emplace_back(saveGraphText(small),
                             std::max(o.steps, criticalPathLength(small) + 2));
    const Graph large = randomLayeredDfg(o.largeLayers, o.largePerLayer,
                                         900 + static_cast<std::uint64_t>(u));
    largeGraphs.emplace_back(saveGraphText(large),
                             std::max(o.steps, criticalPathLength(large) + 2));
  }
  std::vector<std::string> frames;
  frames.reserve(static_cast<std::size_t>(o.requests));
  for (int j = 0; j < o.requests; ++j) {
    const bool large = (j % o.largeEvery) == (o.largeEvery - 1);
    const auto& [graph, steps] =
        (large ? largeGraphs : smallGraphs)[static_cast<std::size_t>(j % o.unique)];
    std::ostringstream f;
    f << R"({"id":0,"op":"design","graph":)" << quoted(graph)
      << ",\"steps\":" << steps;
    if (o.noCache) f << ",\"cache\":false";
    if (o.noDesign) f << ",\"emit_design\":false";
    if (o.optimal) f << ",\"optimal\":true";
    f << "}";
    frames.push_back(f.str());
  }
  return frames;
}

int runLoadgen(const Options& optsIn) {
  Options o = optsIn;
  pid_t serverPid = -1;
  if (!o.serverBin.empty()) {
    o.socketPath = "/tmp/pmsched_loadgen_" + std::to_string(::getpid()) + ".sock";
    serverPid = spawnServer(o, o.socketPath, /*faultSpec=*/"");
    if (serverPid < 0) {
      std::cerr << "loadgen: fork failed\n";
      return 3;
    }
    if (!waitSocketUp(o.socketPath, 10000)) {
      std::cerr << "loadgen: spawned server never came up at " << o.socketPath << "\n";
      ::kill(serverPid, SIGKILL);
      return 3;
    }
  }

  const std::vector<std::string> frames = buildFrames(o);

  CheckState check;
  RunResult r = runClients(o, frames, check);

  // If we own the server, shut it down and pin the leak + exit contracts.
  std::int64_t leaked = -1;
  int serverExit = 0;
  if (serverPid > 0) {
    {
      LineConn ctl(o.socketPath);
      std::string response;
      if (ctl.ok() && ctl.sendLine(R"({"id":0,"op":"shutdown"})") &&
          ctl.recvLine(response)) {
        const JsonValue v = parseJson(response);
        if (const JsonValue* result = v.find("result"))
          if (const JsonValue* l = result->find("leaked_sessions")) leaked = l->asInt();
      }
    }
    int status = 0;
    ::waitpid(serverPid, &status, 0);
    serverExit = WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
  }

  std::sort(r.latenciesMs.begin(), r.latenciesMs.end());
  JsonWriter w;
  w.beginObject()
      .key("requests").value(static_cast<std::int64_t>(o.requests))
      .key("clients").value(static_cast<std::int64_t>(o.clients))
      .key("completed").value(static_cast<std::int64_t>(r.completed))
      .key("errors").value(static_cast<std::int64_t>(r.errors))
      .key("cache_hits").value(static_cast<std::int64_t>(r.cacheHits))
      .key("wall_ms").value(r.wallMs)
      .key("requests_per_sec")
      .value(r.wallMs > 0 ? 1000.0 * static_cast<double>(r.completed) / r.wallMs : 0.0)
      .key("p50_ms").value(percentile(r.latenciesMs, 0.50))
      .key("p99_ms").value(percentile(r.latenciesMs, 0.99))
      .key("check").value(o.check)
      .key("mismatches").value(static_cast<std::int64_t>(check.mismatches));
  if (serverPid > 0) {
    w.key("leaked_sessions").value(leaked)
        .key("server_exit").value(static_cast<std::int64_t>(serverExit));
  }
  w.endObject();
  std::cout << w.str() << "\n";

  if (r.errors != 0 || check.mismatches != 0) return 1;
  if (r.completed != static_cast<std::uint64_t>(o.requests)) return 1;
  if (serverPid > 0 && (leaked != 0 || serverExit != 0)) return 1;
  return 0;
}

// ---- chaos soak harness ----------------------------------------------------

struct ChaosStats {
  std::uint64_t okMatched = 0;       ///< ok responses byte-identical to one-shot
  std::uint64_t okMismatched = 0;    ///< ok responses that differ — a failure
  std::uint64_t typedErrors = 0;     ///< faulted requests that degraded cleanly
  std::uint64_t untypedFailures = 0; ///< error responses without a category — a failure
  std::uint64_t transportErrors = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t workerRestarts = 0;  ///< accumulated from the stats op
  std::uint64_t retries = 0;
  std::uint64_t deadlineTrips = 0;
  std::uint64_t journalReplayed = 0;
  std::uint64_t journalSkipped = 0;
};

bool isTypedError(const std::string& response) {
  for (const char* category :
       {"protocol", "parse", "usage", "admission", "infeasible", "budget", "internal"}) {
    if (response.find("\"category\":\"" + std::string(category) + "\"") != std::string::npos)
      return true;
  }
  return false;
}

/// One-shot expected response per distinct frame, computed IN-PROCESS with
/// the same runDesignJob() the CLI executes — this is the byte-identity
/// oracle the chaos assertions compare against (modulo the cache_hit flag).
std::map<std::string, std::string> computeExpected(const std::vector<std::string>& frames) {
  std::map<std::string, std::string> expected;
  for (const std::string& frame : frames) {
    if (expected.count(frame) != 0) continue;
    const RequestFrame rf = parseRequestFrame(frame, /*maxFrameBytes=*/0);
    DesignJob dj;
    dj.graph = loadGraphText(rf.design.graphText);
    dj.steps = rf.design.steps;
    dj.ordering = rf.design.ordering;
    dj.optimal = rf.design.optimal;
    dj.shared = rf.design.shared;
    const DesignOutcome outcome = runDesignJob(dj);
    const std::string text =
        rf.design.emitDesign ? saveGraphText(outcome.design.graph) : std::string();
    expected.emplace(
        frame, stripCacheHit(makeDesignResponse(rf.idJson, outcome.summary, text, false)));
  }
  return expected;
}

/// Drive one round of session traffic and score every response against the
/// chaos contract. Transport errors are counted, not fatal (the kill round
/// expects them); the caller decides what is acceptable.
void chaosTraffic(const Options& o, const std::vector<std::string>& frames,
                  const std::map<std::string, std::string>& expected, int clients,
                  ChaosStats& stats) {
  std::mutex mergeMutex;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ChaosStats local;
      LineConn conn(o.socketPath, /*retryBudgetMs=*/2000);
      std::string response;
      const std::string session = "chaos-" + std::to_string(c);
      bool sessionOpen = false;
      if (conn.ok() &&
          conn.sendLine(R"({"id":0,"op":"open_session","session":)" + quoted(session) +
                        "}") &&
          conn.recvLine(response)) {
        sessionOpen = responseOk(response);
      } else {
        ++local.transportErrors;
      }
      if (conn.ok()) {
        for (std::size_t j = static_cast<std::size_t>(c); j < frames.size();
             j += static_cast<std::size_t>(clients)) {
          std::string frame = frames[j];
          if (sessionOpen)
            frame.insert(frame.size() - 1, ",\"session\":" + quoted(session));
          if (!conn.sendLine(frame) || !conn.recvLine(response)) {
            ++local.transportErrors;
            break;
          }
          if (responseOk(response)) {
            if (response.find("\"cache_hit\":true") != std::string::npos) ++local.cacheHits;
            if (stripCacheHit(response) == expected.at(frames[j])) {
              ++local.okMatched;
            } else {
              ++local.okMismatched;
              std::cerr << "chaos: MISMATCH\n  frame:    " << frames[j]
                        << "\n  expected: " << expected.at(frames[j])
                        << "\n  got:      " << stripCacheHit(response) << "\n";
            }
          } else if (isTypedError(response)) {
            ++local.typedErrors;
          } else {
            ++local.untypedFailures;
            std::cerr << "chaos: UNTYPED failure response: " << response << "\n";
          }
        }
        if (sessionOpen) {
          if (!conn.sendLine(R"({"id":0,"op":"close_session","session":)" + quoted(session) +
                             "}") ||
              !conn.recvLine(response))
            ++local.transportErrors;
        }
      }
      const std::lock_guard<std::mutex> lock(mergeMutex);
      stats.okMatched += local.okMatched;
      stats.okMismatched += local.okMismatched;
      stats.typedErrors += local.typedErrors;
      stats.untypedFailures += local.untypedFailures;
      stats.transportErrors += local.transportErrors;
      stats.cacheHits += local.cacheHits;
    });
  }
  for (std::thread& t : threads) t.join();
}

/// Read one int field out of a stats-op response ("result" scope), -1 if absent.
std::int64_t statsField(const JsonValue& response, const char* group, const char* field) {
  if (const JsonValue* result = response.find("result"))
    if (const JsonValue* g = result->find(group))
      if (const JsonValue* f = g->find(field)) return f->asInt();
  return -1;
}

/// Graceful end-of-round: ping (the server must still serve), harvest the
/// supervision counters, shut down, and reap. Returns false on any contract
/// violation (leaked sessions, non-zero exit, unreachable server).
bool endRound(const Options& o, pid_t pid, ChaosStats& stats, std::int64_t& leaked,
              int& serverExit) {
  bool ok = true;
  LineConn ctl(o.socketPath, /*retryBudgetMs=*/2000);
  std::string response;
  if (ctl.ok() && ctl.sendLine(R"({"id":0,"op":"ping"})") && ctl.recvLine(response) &&
      response.find("\"pong\":true") != std::string::npos) {
    // still serving after the fault burst — the tentpole property
  } else {
    std::cerr << "chaos: server stopped serving (ping failed)\n";
    ok = false;
  }
  if (ctl.ok() && ctl.sendLine(R"({"id":0,"op":"stats"})") && ctl.recvLine(response)) {
    const JsonValue v = parseJson(response);
    const auto add = [&](std::uint64_t& acc, const char* group, const char* field) {
      const std::int64_t value = statsField(v, group, field);
      if (value > 0) acc += static_cast<std::uint64_t>(value);
    };
    add(stats.workerRestarts, "supervision", "worker_restarts");
    add(stats.retries, "supervision", "retries");
    add(stats.deadlineTrips, "supervision", "deadline_trips");
    add(stats.journalReplayed, "cache", "journal_replayed");
    add(stats.journalSkipped, "cache", "journal_skipped");
  }
  leaked = -1;
  if (ctl.ok() && ctl.sendLine(R"({"id":0,"op":"shutdown"})") && ctl.recvLine(response)) {
    const JsonValue v = parseJson(response);
    if (const JsonValue* result = v.find("result"))
      if (const JsonValue* l = result->find("leaked_sessions")) leaked = l->asInt();
  }
  if (leaked != 0) {
    std::cerr << "chaos: leaked_sessions = " << leaked << "\n";
    ok = false;
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  serverExit = WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
  if (serverExit != 0) {
    std::cerr << "chaos: server exited " << serverExit << "\n";
    ok = false;
  }
  return ok;
}

int runChaos(Options o) {
  const std::string tag = std::to_string(::getpid());
  o.socketPath = "/tmp/pmsched_chaos_" + tag + ".sock";
  if (o.cachePersistPath.empty())
    o.cachePersistPath = "/tmp/pmsched_chaos_" + tag + ".cache";
  std::remove(o.cachePersistPath.c_str());
  std::remove((o.cachePersistPath + ".journal").c_str());

  const std::vector<std::string> frames = buildFrames(o);
  const std::map<std::string, std::string> expected = computeExpected(frames);
  const auto sites = fault::sites();
  std::mt19937_64 rng(o.chaosSeed);

  ChaosStats total;
  bool failed = false;
  int rounds = 0;
  for (int round = 0; round < o.chaosRounds && !failed; ++round, ++rounds) {
    // Random schedule: 1–3 site:nth entries over the WHOLE registry, nth in
    // [1, 40] so faults land across the request stream, not only at warmup.
    const int entries = 1 + static_cast<int>(rng() % 3);
    std::string spec;
    for (int e = 0; e < entries; ++e) {
      if (e > 0) spec += ',';
      spec += std::string(sites[rng() % sites.size()]);
      spec += ':';
      spec += std::to_string(1 + rng() % 40);
    }
    std::cerr << "chaos: round " << round << " PMSCHED_FAULT=" << spec << "\n";
    const pid_t pid = spawnServer(o, o.socketPath, spec);
    if (pid < 0 || !waitSocketUp(o.socketPath, 10000)) {
      std::cerr << "chaos: server never came up (round " << round << ")\n";
      if (pid > 0) ::kill(pid, SIGKILL);
      failed = true;
      break;
    }
    ChaosStats roundStats;
    chaosTraffic(o, frames, expected, o.clients, roundStats);
    std::int64_t leaked = -1;
    int serverExit = 0;
    if (!endRound(o, pid, roundStats, leaked, serverExit)) failed = true;
    if (roundStats.okMismatched != 0 || roundStats.untypedFailures != 0 ||
        roundStats.transportErrors != 0)
      failed = true;
    total.okMatched += roundStats.okMatched;
    total.okMismatched += roundStats.okMismatched;
    total.typedErrors += roundStats.typedErrors;
    total.untypedFailures += roundStats.untypedFailures;
    total.transportErrors += roundStats.transportErrors;
    total.cacheHits += roundStats.cacheHits;
    total.workerRestarts += roundStats.workerRestarts;
    total.retries += roundStats.retries;
    total.deadlineTrips += roundStats.deadlineTrips;
    total.journalReplayed += roundStats.journalReplayed;
    total.journalSkipped += roundStats.journalSkipped;
  }

  // Kill-restart round: (1) a clean pass so every design is journaled, then
  // (2) SIGKILL mid-load — no drain, no snapshot flush — plus a garbage tail
  // appended to the journal, then (3) restart on the same persist path and
  // replay everything: responses must still match the one-shot oracle, the
  // valid journal prefix must be warm (cache hits), the garbage tolerated.
  std::uint64_t restartReplayed = 0, restartSkipped = 0, restartCacheHits = 0;
  if (!failed) {
    pid_t pid = spawnServer(o, o.socketPath, "");
    if (pid < 0 || !waitSocketUp(o.socketPath, 10000)) {
      if (pid > 0) ::kill(pid, SIGKILL);
      failed = true;
    } else {
      ChaosStats warm;
      chaosTraffic(o, frames, expected, 1, warm);
      if (warm.okMismatched != 0 || warm.untypedFailures != 0 || warm.typedErrors != 0 ||
          warm.transportErrors != 0)
        failed = true;
      // Mid-load kill: fire a burst without waiting for the answers.
      {
        LineConn burst(o.socketPath, 2000);
        for (const std::string& frame : frames)
          if (!burst.ok() || !burst.sendLine(frame)) break;
        ::kill(pid, SIGKILL);
      }
      int status = 0;
      ::waitpid(pid, &status, 0);
      {  // corrupt the journal tail; restart must stop at the garbage
        std::FILE* journal = std::fopen((o.cachePersistPath + ".journal").c_str(), "ab");
        if (journal != nullptr) {
          std::fputs("GARBAGE-TAIL", journal);
          std::fclose(journal);
        }
      }
      pid = spawnServer(o, o.socketPath, "");
      if (pid < 0 || !waitSocketUp(o.socketPath, 10000)) {
        if (pid > 0) ::kill(pid, SIGKILL);
        failed = true;
      } else {
        ChaosStats replay;
        chaosTraffic(o, frames, expected, 1, replay);
        restartCacheHits = replay.cacheHits;
        if (replay.okMismatched != 0 || replay.untypedFailures != 0 ||
            replay.typedErrors != 0 || replay.transportErrors != 0)
          failed = true;
        if (replay.cacheHits == 0) {
          std::cerr << "chaos: restarted server had ZERO cache hits — journal not warm\n";
          failed = true;
        }
        std::int64_t leaked = -1;
        int serverExit = 0;
        ChaosStats restartStats;
        if (!endRound(o, pid, restartStats, leaked, serverExit)) failed = true;
        restartReplayed = restartStats.journalReplayed;
        restartSkipped = restartStats.journalSkipped;
        if (restartReplayed == 0) {
          std::cerr << "chaos: restart replayed no journal records\n";
          failed = true;
        }
        if (restartSkipped == 0) {
          std::cerr << "chaos: corrupt journal tail was not counted as skipped\n";
          failed = true;
        }
      }
    }
  }

  std::remove(o.cachePersistPath.c_str());
  std::remove((o.cachePersistPath + ".journal").c_str());

  JsonWriter w;
  w.beginObject()
      .key("chaos_rounds").value(static_cast<std::int64_t>(rounds))
      .key("ok_matched").value(static_cast<std::int64_t>(total.okMatched))
      .key("ok_mismatched").value(static_cast<std::int64_t>(total.okMismatched))
      .key("typed_errors").value(static_cast<std::int64_t>(total.typedErrors))
      .key("untyped_failures").value(static_cast<std::int64_t>(total.untypedFailures))
      .key("transport_errors").value(static_cast<std::int64_t>(total.transportErrors))
      .key("worker_restarts").value(static_cast<std::int64_t>(total.workerRestarts))
      .key("retries").value(static_cast<std::int64_t>(total.retries))
      .key("deadline_trips").value(static_cast<std::int64_t>(total.deadlineTrips))
      .key("restart_journal_replayed").value(static_cast<std::int64_t>(restartReplayed))
      .key("restart_journal_skipped").value(static_cast<std::int64_t>(restartSkipped))
      .key("restart_cache_hits").value(static_cast<std::int64_t>(restartCacheHits))
      .key("failed").value(failed)
      .endObject();
  std::cout << w.str() << "\n";
  return failed ? 1 : 0;
}

#endif  // PMSCHED_LOADGEN_POSIX

}  // namespace

int main(int argc, char** argv) {
  const Options o = parseArgs(argc, argv);
#ifdef PMSCHED_LOADGEN_POSIX
  if (o.chaos) return runChaos(o);
  return runLoadgen(o);
#else
  (void)o;
  std::cerr << "pmsched_loadgen: Unix sockets unavailable on this platform\n";
  return 2;
#endif
}
