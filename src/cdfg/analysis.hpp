#pragma once
// Structural analyses over a CDFG: levels, critical path, output distance,
// and the operation statistics reported in the paper's Table I.

#include <array>
#include <string>
#include <vector>

#include "cdfg/graph.hpp"

namespace pmsched {

/// Longest-path depth of every node counting only scheduled (unit-consuming)
/// nodes, over data + control edges.
///
/// depth[n] is the earliest control step node n could occupy (1-based) with
/// unlimited resources; transparent nodes (inputs, constants, wires, outputs)
/// get the step after which their value is available (0 = available before
/// step 1).
[[nodiscard]] std::vector<int> nodeDepths(const Graph& g);

/// Minimum number of control steps to execute the graph with unlimited
/// resources — the paper's Table I "Critical Path" column.
[[nodiscard]] int criticalPathLength(const Graph& g);

/// Longest downstream distance (in scheduled nodes) from each node to any
/// graph output; used to order multiplexors "closer to the outputs first".
[[nodiscard]] std::vector<int> distanceToOutput(const Graph& g);

/// Per-node backward data cone: masks[n] = {n} ∪ transitive data fanin of n
/// (control edges excluded), i.e. operandCone() of any consumer reading n.
/// One word-parallel ascending-id pass (operands always have smaller ids
/// than their consumers) computes all V masks in O(E·V/64) — far cheaper
/// than one BFS per queried cone when a pass asks for many (the
/// power-management transform needs three per multiplexor).
[[nodiscard]] std::vector<NodeMask> faninConeMasks(const Graph& g);

/// Counts of operations per display class, Table I style.
struct OpStats {
  int mux = 0;
  int comp = 0;
  int add = 0;
  int sub = 0;
  int mul = 0;
  int logic = 0;
  int shift = 0;

  [[nodiscard]] int totalUnits() const { return mux + comp + add + sub + mul + logic + shift; }
};

[[nodiscard]] OpStats countOps(const Graph& g);

/// Per-unit-class counts as a dense array indexed by unitIndex().
[[nodiscard]] std::array<int, kNumUnitClasses> countByClass(const Graph& g);

/// Graphviz DOT rendering (control edges dashed), for debugging/docs.
[[nodiscard]] std::string toDot(const Graph& g);

// ---------------------------------------------------------------------------
// Canonical form — identity of a CDFG modulo node naming and insertion order.
//
// The server's design cache (src/server/design_cache.hpp) keys finished
// results on this: two requests whose graphs differ only in node names (or
// in the order producers-first statements were emitted) canonicalize to the
// same text and hash, so the second request is served from the cache.
//
// Construction: two refinement passes assign every node a structural
// signature — an "up" hash over its fanin cone (kind, width, constant
// value / wire shift, ordered operand signatures, control predecessors) and
// a "down" hash over its consumer context (which operand slot of which
// consumer it feeds) — then a Kahn traversal over data + control edges picks
// ready nodes in ascending priority order and assigns canonical indices.
// The pop priority folds the already-assigned canonical indices of the
// node's predecessors into its static signature: static signatures alone
// can tie for locally-isomorphic but non-automorphic nodes (two
// sub(input, input) nodes sharing an operand, say), and the predecessor
// indices — pure pop history — separate any such pair whose operand tuples
// differ, independent of insertion order. Residual exact ties require equal
// signatures AND equal operand index tuples, i.e. nodes the refinement
// cannot tell apart from either direction; either pop order serializes
// identically for those. The cache never trusts the hash alone: entries
// store the full canonical text and compare it on every hit, so a
// coincidence costs a cache miss, never a wrong result.
// ---------------------------------------------------------------------------

struct CanonicalForm {
  std::string text;    ///< name-free canonical serialization
  std::uint64_t hash;  ///< 64-bit FNV-1a of `text`
  std::vector<NodeId> order;           ///< canonical index -> original NodeId
  std::vector<std::uint32_t> indexOf;  ///< original NodeId -> canonical index
};

/// Canonicalize `g` (data + control edges both participate).
[[nodiscard]] CanonicalForm canonicalizeGraph(const Graph& g);

/// Just the hash — equal for graphs that are isomorphic under node
/// renaming / reordering, different (up to hash collision) for any
/// structural edit. Cache keys must pair it with the full canonical text.
[[nodiscard]] std::uint64_t canonicalHash(const Graph& g);

}  // namespace pmsched
