#pragma once
// Structural analyses over a CDFG: levels, critical path, output distance,
// and the operation statistics reported in the paper's Table I.

#include <array>
#include <string>
#include <vector>

#include "cdfg/graph.hpp"

namespace pmsched {

/// Longest-path depth of every node counting only scheduled (unit-consuming)
/// nodes, over data + control edges.
///
/// depth[n] is the earliest control step node n could occupy (1-based) with
/// unlimited resources; transparent nodes (inputs, constants, wires, outputs)
/// get the step after which their value is available (0 = available before
/// step 1).
[[nodiscard]] std::vector<int> nodeDepths(const Graph& g);

/// Minimum number of control steps to execute the graph with unlimited
/// resources — the paper's Table I "Critical Path" column.
[[nodiscard]] int criticalPathLength(const Graph& g);

/// Longest downstream distance (in scheduled nodes) from each node to any
/// graph output; used to order multiplexors "closer to the outputs first".
[[nodiscard]] std::vector<int> distanceToOutput(const Graph& g);

/// Per-node backward data cone: masks[n] = {n} ∪ transitive data fanin of n
/// (control edges excluded), i.e. operandCone() of any consumer reading n.
/// One word-parallel ascending-id pass (operands always have smaller ids
/// than their consumers) computes all V masks in O(E·V/64) — far cheaper
/// than one BFS per queried cone when a pass asks for many (the
/// power-management transform needs three per multiplexor).
[[nodiscard]] std::vector<NodeMask> faninConeMasks(const Graph& g);

/// Counts of operations per display class, Table I style.
struct OpStats {
  int mux = 0;
  int comp = 0;
  int add = 0;
  int sub = 0;
  int mul = 0;
  int logic = 0;
  int shift = 0;

  [[nodiscard]] int totalUnits() const { return mux + comp + add + sub + mul + logic + shift; }
};

[[nodiscard]] OpStats countOps(const Graph& g);

/// Per-unit-class counts as a dense array indexed by unitIndex().
[[nodiscard]] std::array<int, kNumUnitClasses> countByClass(const Graph& g);

/// Graphviz DOT rendering (control edges dashed), for debugging/docs.
[[nodiscard]] std::string toDot(const Graph& g);

}  // namespace pmsched
