#include "cdfg/interpreter.hpp"

namespace pmsched {

std::int64_t truncateToWidth(std::int64_t value, int width) {
  if (width >= 64) return value;
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  std::uint64_t v = static_cast<std::uint64_t>(value) & mask;
  // Sign extend from bit width-1.
  if ((v >> (width - 1)) & 1U) v |= ~mask;
  return static_cast<std::int64_t>(v);
}

std::vector<std::int64_t> evaluateNodes(const Graph& g,
                                        const std::map<std::string, std::int64_t>& inputs) {
  std::vector<std::int64_t> value(g.size(), 0);
  for (const NodeId n : g.topoOrder()) {
    const Node& node = g.node(n);
    auto in = [&](std::size_t i) { return value[node.operands[i]]; };
    std::int64_t v = 0;
    switch (node.kind) {
      case OpKind::Input: {
        const auto it = inputs.find(node.name);
        v = it == inputs.end() ? 0 : it->second;
        break;
      }
      case OpKind::Const: v = node.constValue; break;
      case OpKind::Output: v = in(0); break;
      case OpKind::Wire:
        v = node.shift >= 0 ? (in(0) >> node.shift) : (in(0) << -node.shift);
        break;
      case OpKind::Add: v = in(0) + in(1); break;
      case OpKind::Sub: v = in(0) - in(1); break;
      case OpKind::Mul: v = in(0) * in(1); break;
      case OpKind::CmpGt: v = in(0) > in(1) ? 1 : 0; break;
      case OpKind::CmpGe: v = in(0) >= in(1) ? 1 : 0; break;
      case OpKind::CmpLt: v = in(0) < in(1) ? 1 : 0; break;
      case OpKind::CmpLe: v = in(0) <= in(1) ? 1 : 0; break;
      case OpKind::CmpEq: v = in(0) == in(1) ? 1 : 0; break;
      case OpKind::CmpNe: v = in(0) != in(1) ? 1 : 0; break;
      case OpKind::Mux: v = in(0) != 0 ? in(1) : in(2); break;
      case OpKind::And: v = in(0) & in(1); break;
      case OpKind::Or: v = in(0) | in(1); break;
      case OpKind::Xor: v = in(0) ^ in(1); break;
      case OpKind::Not: v = ~in(0); break;
      case OpKind::Shl: v = in(0) << (in(1) & 63); break;
      case OpKind::Shr: v = in(0) >> (in(1) & 63); break;
    }
    value[n] = truncateToWidth(v, node.width);
  }
  return value;
}

std::map<std::string, std::int64_t> evaluateGraph(
    const Graph& g, const std::map<std::string, std::int64_t>& inputs) {
  const std::vector<std::int64_t> value = evaluateNodes(g, inputs);
  std::map<std::string, std::int64_t> out;
  for (const NodeId n : g.nodesOfKind(OpKind::Output)) out[g.node(n).name] = value[n];
  return out;
}

}  // namespace pmsched
