#pragma once
// NodeMask: a fixed-size bitset over the nodes of one Graph, stored as
// 64-bit words so that set algebra (cone unions/intersections/differences)
// runs word-parallel instead of bit-at-a-time like std::vector<bool>.
//
// All binary operators require both operands to cover the same node count;
// this is asserted in debug builds (masks from different graphs are a bug).

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace pmsched {

class NodeMask {
 public:
  NodeMask() = default;
  explicit NodeMask(std::size_t size) : size_(size), words_(wordCount(size), 0) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] bool test(std::size_t i) const {
    assert(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1U;
  }
  /// vector<bool>-style read access, so masks drop into existing call sites.
  [[nodiscard]] bool operator[](std::size_t i) const { return test(i); }

  void set(std::size_t i) {
    assert(i < size_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void reset(std::size_t i) {
    assert(i < size_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void clear() { words_.assign(words_.size(), 0); }

  [[nodiscard]] bool any() const {
    for (const std::uint64_t w : words_)
      if (w != 0) return true;
    return false;
  }
  [[nodiscard]] bool none() const { return !any(); }

  [[nodiscard]] std::size_t count() const {
    std::size_t c = 0;
    for (const std::uint64_t w : words_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  // ---- word-parallel set algebra -------------------------------------------

  NodeMask& operator|=(const NodeMask& o) {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }
  NodeMask& operator&=(const NodeMask& o) {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }
  NodeMask& operator^=(const NodeMask& o) {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
    return *this;
  }
  /// this := this \ o (word-parallel AND-NOT).
  NodeMask& subtract(const NodeMask& o) {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }

  [[nodiscard]] friend NodeMask operator|(NodeMask a, const NodeMask& b) { return a |= b; }
  [[nodiscard]] friend NodeMask operator&(NodeMask a, const NodeMask& b) { return a &= b; }
  [[nodiscard]] friend NodeMask operator^(NodeMask a, const NodeMask& b) { return a ^= b; }

  [[nodiscard]] bool intersects(const NodeMask& o) const {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & o.words_[i]) return true;
    return false;
  }

  [[nodiscard]] bool operator==(const NodeMask& o) const {
    return size_ == o.size_ && words_ == o.words_;
  }

  /// Calls f(index) for every set bit, ascending. Word-at-a-time with
  /// countr_zero, so sparse masks cost O(words + popcount).
  template <typename F>
  void forEachSet(F&& f) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const unsigned bit = static_cast<unsigned>(std::countr_zero(w));
        f((wi << 6) + bit);
        w &= w - 1;  // clear lowest set bit
      }
    }
  }

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<std::uint32_t> toVector() const {
    std::vector<std::uint32_t> out;
    out.reserve(count());
    forEachSet([&](std::size_t i) { out.push_back(static_cast<std::uint32_t>(i)); });
    return out;
  }

 private:
  static std::size_t wordCount(std::size_t bits) { return (bits + 63) / 64; }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace pmsched
