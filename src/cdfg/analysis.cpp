#include "cdfg/analysis.hpp"

#include <algorithm>
#include <sstream>

namespace pmsched {

std::vector<int> nodeDepths(const Graph& g) {
  std::vector<int> depth(g.size(), 0);
  for (const NodeId n : g.topoOrder()) {
    int before = 0;  // step after which all inputs are available
    for (const NodeId p : g.fanins(n)) before = std::max(before, depth[p]);
    for (const NodeId p : g.controlPredecessors(n)) before = std::max(before, depth[p]);
    // A scheduled node occupies step before+1; its value is ready after it.
    depth[n] = isScheduled(g.kind(n)) ? before + 1 : before;
  }
  return depth;
}

int criticalPathLength(const Graph& g) {
  int cp = 0;
  for (const int d : nodeDepths(g)) cp = std::max(cp, d);
  return cp;
}

std::vector<int> distanceToOutput(const Graph& g) {
  const std::vector<NodeId> order = g.topoOrder();
  std::vector<int> dist(g.size(), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    int below = 0;
    for (const NodeId s : g.fanouts(n)) {
      const int through = dist[s] + (isScheduled(g.kind(s)) ? 1 : 0);
      below = std::max(below, through);
    }
    dist[n] = below;
  }
  return dist;
}

std::vector<NodeMask> faninConeMasks(const Graph& g) {
  std::vector<NodeMask> masks(g.size(), NodeMask(g.size()));
  for (NodeId n = 0; n < g.size(); ++n) {  // ascending id = data-topological
    NodeMask& m = masks[n];
    m.set(n);
    for (const NodeId p : g.fanins(n)) m |= masks[p];
  }
  return masks;
}

OpStats countOps(const Graph& g) {
  OpStats s;
  for (NodeId i = 0; i < g.size(); ++i) {
    switch (resourceClassOf(g.kind(i))) {
      case ResourceClass::Mux: ++s.mux; break;
      case ResourceClass::Comparator: ++s.comp; break;
      case ResourceClass::Adder: ++s.add; break;
      case ResourceClass::Subtractor: ++s.sub; break;
      case ResourceClass::Multiplier: ++s.mul; break;
      case ResourceClass::Logic: ++s.logic; break;
      case ResourceClass::Shifter: ++s.shift; break;
      case ResourceClass::None: break;
    }
  }
  return s;
}

std::array<int, kNumUnitClasses> countByClass(const Graph& g) {
  std::array<int, kNumUnitClasses> counts{};
  for (NodeId i = 0; i < g.size(); ++i) {
    const ResourceClass rc = resourceClassOf(g.kind(i));
    if (rc != ResourceClass::None) ++counts[unitIndex(rc)];
  }
  return counts;
}

std::string toDot(const Graph& g) {
  std::ostringstream os;
  os << "digraph \"" << g.name() << "\" {\n  rankdir=TB;\n";
  for (NodeId i = 0; i < g.size(); ++i) {
    const Node& n = g.node(i);
    std::string shape = "box";
    if (n.kind == OpKind::Mux) shape = "trapezium";
    if (n.kind == OpKind::Input || n.kind == OpKind::Const) shape = "ellipse";
    if (n.kind == OpKind::Output) shape = "doublecircle";
    os << "  n" << i << " [label=\"" << n.name << "\\n" << opName(n.kind)
       << "\" shape=" << shape << "];\n";
  }
  for (NodeId i = 0; i < g.size(); ++i) {
    const Node& n = g.node(i);
    for (std::size_t k = 0; k < n.operands.size(); ++k) {
      os << "  n" << n.operands[k] << " -> n" << i;
      if (n.kind == OpKind::Mux) {
        static constexpr const char* kPort[] = {"sel", "1", "0"};
        os << " [label=\"" << kPort[k] << "\"]";
      }
      os << ";\n";
    }
    for (const NodeId p : g.controlPredecessors(i))
      os << "  n" << p << " -> n" << i << " [style=dashed color=red];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace pmsched
