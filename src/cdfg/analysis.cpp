#include "cdfg/analysis.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <string_view>
#include <utility>

namespace pmsched {

std::vector<int> nodeDepths(const Graph& g) {
  std::vector<int> depth(g.size(), 0);
  for (const NodeId n : g.topoOrder()) {
    int before = 0;  // step after which all inputs are available
    for (const NodeId p : g.fanins(n)) before = std::max(before, depth[p]);
    for (const NodeId p : g.controlPredecessors(n)) before = std::max(before, depth[p]);
    // A scheduled node occupies step before+1; its value is ready after it.
    depth[n] = isScheduled(g.kind(n)) ? before + 1 : before;
  }
  return depth;
}

int criticalPathLength(const Graph& g) {
  int cp = 0;
  for (const int d : nodeDepths(g)) cp = std::max(cp, d);
  return cp;
}

std::vector<int> distanceToOutput(const Graph& g) {
  const std::vector<NodeId> order = g.topoOrder();
  std::vector<int> dist(g.size(), 0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    int below = 0;
    for (const NodeId s : g.fanouts(n)) {
      const int through = dist[s] + (isScheduled(g.kind(s)) ? 1 : 0);
      below = std::max(below, through);
    }
    dist[n] = below;
  }
  return dist;
}

std::vector<NodeMask> faninConeMasks(const Graph& g) {
  std::vector<NodeMask> masks(g.size(), NodeMask(g.size()));
  for (NodeId n = 0; n < g.size(); ++n) {  // ascending id = data-topological
    NodeMask& m = masks[n];
    m.set(n);
    for (const NodeId p : g.fanins(n)) m |= masks[p];
  }
  return masks;
}

OpStats countOps(const Graph& g) {
  OpStats s;
  for (NodeId i = 0; i < g.size(); ++i) {
    switch (resourceClassOf(g.kind(i))) {
      case ResourceClass::Mux: ++s.mux; break;
      case ResourceClass::Comparator: ++s.comp; break;
      case ResourceClass::Adder: ++s.add; break;
      case ResourceClass::Subtractor: ++s.sub; break;
      case ResourceClass::Multiplier: ++s.mul; break;
      case ResourceClass::Logic: ++s.logic; break;
      case ResourceClass::Shifter: ++s.shift; break;
      case ResourceClass::None: break;
    }
  }
  return s;
}

std::array<int, kNumUnitClasses> countByClass(const Graph& g) {
  std::array<int, kNumUnitClasses> counts{};
  for (NodeId i = 0; i < g.size(); ++i) {
    const ResourceClass rc = resourceClassOf(g.kind(i));
    if (rc != ResourceClass::None) ++counts[unitIndex(rc)];
  }
  return counts;
}

std::string toDot(const Graph& g) {
  std::ostringstream os;
  os << "digraph \"" << g.name() << "\" {\n  rankdir=TB;\n";
  for (NodeId i = 0; i < g.size(); ++i) {
    const Node& n = g.node(i);
    std::string shape = "box";
    if (n.kind == OpKind::Mux) shape = "trapezium";
    if (n.kind == OpKind::Input || n.kind == OpKind::Const) shape = "ellipse";
    if (n.kind == OpKind::Output) shape = "doublecircle";
    os << "  n" << i << " [label=\"" << n.name << "\\n" << opName(n.kind)
       << "\" shape=" << shape << "];\n";
  }
  for (NodeId i = 0; i < g.size(); ++i) {
    const Node& n = g.node(i);
    for (std::size_t k = 0; k < n.operands.size(); ++k) {
      os << "  n" << n.operands[k] << " -> n" << i;
      if (n.kind == OpKind::Mux) {
        static constexpr const char* kPort[] = {"sel", "1", "0"};
        os << " [label=\"" << kPort[k] << "\"]";
      }
      os << ";\n";
    }
    for (const NodeId p : g.controlPredecessors(i))
      os << "  n" << p << " -> n" << i << " [style=dashed color=red];\n";
  }
  os << "}\n";
  return os.str();
}

// ---- canonical form --------------------------------------------------------

namespace {

/// splitmix64 finalizer: the avalanche step every signature goes through.
constexpr std::uint64_t avalanche(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-sensitive combine (mix(a, b) != mix(b, a)).
constexpr std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return avalanche(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

/// Structural base signature: everything about a node except its wiring.
/// Names deliberately excluded — that is the whole point.
std::uint64_t baseSignature(const Node& n) {
  std::uint64_t h = avalanche(static_cast<std::uint64_t>(n.kind) + 1);
  h = mix(h, static_cast<std::uint64_t>(n.width));
  if (n.kind == OpKind::Const) h = mix(h, static_cast<std::uint64_t>(n.constValue) ^ 0x5c5cULL);
  if (n.kind == OpKind::Wire) h = mix(h, static_cast<std::uint64_t>(n.shift) ^ 0xa3a3ULL);
  return h;
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

CanonicalForm canonicalizeGraph(const Graph& g) {
  const std::size_t n = g.size();
  const std::span<const NodeId> topo = g.topoOrderView();

  // Pass 1 (up): fanin-cone signatures, operand order preserved, control
  // predecessors folded in as a sorted (unordered) set.
  std::vector<std::uint64_t> up(n, 0);
  std::vector<std::uint64_t> scratch;
  for (const NodeId id : topo) {
    std::uint64_t h = baseSignature(g.node(id));
    std::size_t slot = 0;
    for (const NodeId p : g.fanins(id)) h = mix(h, mix(up[p], 0x10 + slot++));
    scratch.clear();
    for (const NodeId p : g.controlPredecessors(id)) scratch.push_back(up[p]);
    std::sort(scratch.begin(), scratch.end());
    for (const std::uint64_t v : scratch) h = mix(h, v ^ 0xc0117Ead5ULL);
    up[id] = h;
  }

  // Pass 2 (down): consumer-context signatures in reverse topological
  // order. A node's contribution to its operand records WHICH slot of which
  // consumer it feeds, so sub(a, b) and sub(b, a) refine differently.
  std::vector<std::uint64_t> down(n, 0);
  std::vector<std::vector<std::uint64_t>> incoming(n);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId id = *it;
    std::vector<std::uint64_t>& contrib = incoming[id];
    std::sort(contrib.begin(), contrib.end());
    std::uint64_t h = mix(up[id], 0xd0d0ULL);
    for (const std::uint64_t v : contrib) h = mix(h, v);
    down[id] = h;
    std::size_t slot = 0;
    for (const NodeId p : g.fanins(id)) incoming[p].push_back(mix(down[id], 0x20 + slot++));
    for (const NodeId p : g.controlPredecessors(id))
      incoming[p].push_back(mix(down[id], 0xc791ULL));
  }

  // Kahn traversal: ready nodes picked in ascending priority order. The
  // static (up, down) signature alone can tie for nodes whose cones and
  // contexts are locally isomorphic without the nodes being automorphic
  // (e.g. two sub(input, input) nodes sharing one operand) — and a heap
  // tie resolves by push order, which tracks insertion order. So the pop
  // priority additionally folds in the CANONICAL INDICES of the node's
  // predecessors: a node only becomes ready once every predecessor is
  // assigned, those indices are pure pop-history (insertion-independent),
  // and any two candidates with different operand tuples now separate
  // deterministically. The pending heap never holds two entries for one
  // node, so the loop runs exactly n times on any DAG.
  std::vector<std::uint64_t> sig(n);
  for (std::size_t i = 0; i < n; ++i) sig[i] = mix(up[i], down[i]);

  std::vector<std::uint32_t> missing(n, 0);
  for (NodeId id = 0; id < n; ++id) {
    missing[id] = static_cast<std::uint32_t>(g.fanins(id).size() +
                                             g.controlPredecessors(id).size());
  }

  CanonicalForm form;
  form.order.reserve(n);
  form.indexOf.assign(n, 0);

  std::vector<std::uint32_t> ctrlIdx;
  auto readyPriority = [&](NodeId id) {
    std::uint64_t h = sig[id];
    std::size_t slot = 0;
    for (const NodeId p : g.fanins(id))
      h = mix(h, mix(form.indexOf[p] + 1, 0x40 + slot++));
    ctrlIdx.clear();
    for (const NodeId p : g.controlPredecessors(id)) ctrlIdx.push_back(form.indexOf[p]);
    std::sort(ctrlIdx.begin(), ctrlIdx.end());
    for (const std::uint32_t v : ctrlIdx) h = mix(h, v ^ 0x51edeULL);
    return h;
  };

  using Entry = std::pair<std::uint64_t, NodeId>;  // (priority, id)
  auto later = [&](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first > b.first;
    if (sig[a.second] != sig[b.second]) return sig[a.second] > sig[b.second];
    return up[a.second] > up[b.second];
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(later)> ready(later);
  for (NodeId id = 0; id < n; ++id)
    if (missing[id] == 0) ready.push({readyPriority(id), id});

  while (!ready.empty()) {
    const NodeId id = ready.top().second;
    ready.pop();
    form.indexOf[id] = static_cast<std::uint32_t>(form.order.size());
    form.order.push_back(id);
    for (const NodeId s : g.fanoutCsr().row(id))
      if (--missing[s] == 0) ready.push({readyPriority(s), s});
    for (const NodeId s : g.controlSuccessors(id))
      if (--missing[s] == 0) ready.push({readyPriority(s), s});
  }

  // Serialize in canonical order, operands/edges by canonical index. The
  // text is the collision guard the cache compares on every hit.
  std::ostringstream os;
  os << "cform1 " << n << "\n";
  std::vector<std::uint32_t> ctrl;
  for (const NodeId id : form.order) {
    const Node& node = g.node(id);
    os << opName(node.kind) << " w" << node.width;
    if (node.kind == OpKind::Const) os << " c" << node.constValue;
    if (node.kind == OpKind::Wire) os << " s" << node.shift;
    for (const NodeId p : node.operands) os << " " << form.indexOf[p];
    ctrl.clear();
    for (const NodeId p : g.controlPredecessors(id)) ctrl.push_back(form.indexOf[p]);
    std::sort(ctrl.begin(), ctrl.end());
    for (const std::uint32_t p : ctrl) os << " ^" << p;
    os << "\n";
  }
  form.text = os.str();
  form.hash = fnv1a(form.text);
  return form;
}

std::uint64_t canonicalHash(const Graph& g) { return canonicalizeGraph(g).hash; }

}  // namespace pmsched
