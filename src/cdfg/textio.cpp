#include "cdfg/textio.hpp"

#include <map>
#include <sstream>

#include "support/fault_injector.hpp"
#include "support/strings.hpp"

namespace pmsched {

namespace {

OpKind kindFromName(std::string_view name, SourceLoc loc) {
  for (const OpKind kind :
       {OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::CmpGt, OpKind::CmpGe, OpKind::CmpLt,
        OpKind::CmpLe, OpKind::CmpEq, OpKind::CmpNe, OpKind::Mux, OpKind::And, OpKind::Or,
        OpKind::Xor, OpKind::Not, OpKind::Shl, OpKind::Shr}) {
    if (opName(kind) == name) return kind;
  }
  throw ParseError(loc, "unknown operation kind '" + std::string(name) + "'");
}

}  // namespace

std::string saveGraphText(const Graph& g) {
  std::ostringstream os;
  os << "graph " << g.name() << "\n";
  for (NodeId n = 0; n < g.size(); ++n) {
    const Node& node = g.node(n);
    switch (node.kind) {
      case OpKind::Input: os << "input " << node.name << " " << node.width << "\n"; break;
      case OpKind::Const:
        os << "const " << node.name << " " << node.width << " " << node.constValue << "\n";
        break;
      case OpKind::Wire:
        os << "wire " << node.name << " " << g.node(node.operands[0]).name << " "
           << node.shift << "\n";
        break;
      case OpKind::Output:
        os << "output " << node.name << " " << g.node(node.operands[0]).name << "\n";
        break;
      default: {
        os << "node " << opName(node.kind) << " " << node.name << " " << node.width;
        for (const NodeId op : node.operands) os << " " << g.node(op).name;
        os << "\n";
      }
    }
  }
  for (NodeId n = 0; n < g.size(); ++n)
    for (const NodeId succ : g.controlSuccessors(n))
      os << "ctrl " << g.node(n).name << " " << g.node(succ).name << "\n";
  return os.str();
}

Graph loadGraphText(std::string_view text) {
  Graph g;
  std::map<std::string, NodeId, std::less<>> byName;

  auto resolve = [&](const std::string& name, SourceLoc loc) {
    const auto it = byName.find(name);
    if (it == byName.end()) throw ParseError(loc, "unknown node '" + name + "'");
    return it->second;
  };
  // Catch duplicates at the defining line: silently overwriting the map
  // entry would leave the earlier node unreachable by name and surface much
  // later as a confusing validate() failure with no line information.
  auto define = [&](const std::string& name, NodeId id, SourceLoc loc) {
    if (!byName.emplace(name, id).second)
      throw ParseError(loc, "duplicate node name '" + name + "'");
  };

  std::size_t lineNo = 0;
  std::istringstream stream{std::string(text)};
  std::string line;
  bool sawGraph = false;
  while (std::getline(stream, line)) {
    ++lineNo;
    const SourceLoc loc{lineNo, 1};
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;

    std::istringstream fields{std::string(trimmed)};
    std::string keyword;
    fields >> keyword;
    auto want = [&](auto& value, const char* what) {
      if (!(fields >> value))
        throw ParseError(loc, std::string("expected ") + what + " after '" + keyword + "'");
    };

    // Outside the rewrap below: an injected fault must surface as itself
    // (the matrix asserts the internal-error path), not as a parse error.
    fault::point("parse-stmt");
    try {
    if (keyword == "graph") {
      std::string name;
      want(name, "graph name");
      g.setName(name);
      sawGraph = true;
    } else if (keyword == "input") {
      std::string name;
      int width = 0;
      want(name, "input name");
      want(width, "width");
      define(name, g.addInput(name, width), loc);
    } else if (keyword == "const") {
      std::string name;
      int width = 0;
      std::int64_t value = 0;
      want(name, "const name");
      want(width, "width");
      want(value, "value");
      define(name, g.addConst(value, width, name), loc);
    } else if (keyword == "wire") {
      std::string name, src;
      int shift = 0;
      want(name, "wire name");
      want(src, "source");
      want(shift, "shift");
      define(name, g.addWire(resolve(src, loc), shift, name), loc);
    } else if (keyword == "output") {
      std::string name, src;
      want(name, "output name");
      want(src, "source");
      define(name, g.addOutput(resolve(src, loc), name), loc);
    } else if (keyword == "node") {
      std::string kindName, name;
      int width = 0;
      want(kindName, "operation kind");
      want(name, "node name");
      want(width, "width");
      const OpKind kind = kindFromName(kindName, loc);
      std::vector<NodeId> operands;
      std::string operand;
      while (fields >> operand) operands.push_back(resolve(operand, loc));
      define(name, g.addOp(kind, std::move(operands), name, width), loc);
    } else if (keyword == "ctrl") {
      std::string from, to;
      want(from, "source node");
      want(to, "target node");
      g.addControlEdge(resolve(from, loc), resolve(to, loc));
    } else {
      throw ParseError(loc, "unknown statement '" + keyword + "'");
    }
    } catch (const ParseError&) {
      throw;
    } catch (const SynthesisError& e) {
      // Structural rejections from the Graph builders (mux arity, width
      // mismatch, self-edge, ...) happen while THIS statement is being
      // applied — surface them as parse errors with its location.
      throw ParseError(loc, e.what());
    }
  }
  if (!sawGraph) throw ParseError(SourceLoc{1, 1}, "missing 'graph NAME' header");
  try {
    g.validate();
  } catch (const SynthesisError& e) {
    // Whole-graph problems (cycles, dangling outputs) have no single line;
    // report them as a parse error at an unknown location so every rejection
    // of malformed text is one exception family.
    throw ParseError(SourceLoc{0, 0}, std::string("invalid graph: ") + e.what());
  }
  return g;
}

}  // namespace pmsched
