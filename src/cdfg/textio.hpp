#pragma once
// Plain-text serialization of CDFGs: a stable, diff-friendly format so
// graphs can be saved from one tool invocation and reloaded by another
// (the CLI uses it; tests round-trip every benchmark).
//
// Format, one statement per line ('#' comments allowed):
//   graph  NAME
//   input  NAME WIDTH
//   const  NAME WIDTH VALUE
//   wire   NAME SRC SHIFT
//   node   KIND NAME WIDTH OPERAND...
//   output NAME SRC
//   ctrl   FROM TO
// Operands are node names; statements must appear producers-first.

#include <string>

#include "cdfg/graph.hpp"

namespace pmsched {

/// Serialize; the output parses back to an identical graph (names, widths,
/// kinds, operand order, control edges).
[[nodiscard]] std::string saveGraphText(const Graph& g);

/// Parse the format above. Throws ParseError with a line number on
/// malformed input, SynthesisError on semantic violations.
[[nodiscard]] Graph loadGraphText(std::string_view text);

}  // namespace pmsched
