#pragma once
// Reference interpreter for CDFGs: evaluates every node on concrete values.
//
// This is the functional golden model: the gate-level netlist produced by
// src/rtl must compute exactly these outputs (with and without power
// management), which is how the whole synthesis pipeline is validated.
//
// Semantics: two's-complement arithmetic truncated to each node's width,
// signed comparisons, mux selects true on nonzero. Values are carried
// sign-extended in int64.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cdfg/graph.hpp"

namespace pmsched {

/// Truncate to `width` bits and sign-extend.
[[nodiscard]] std::int64_t truncateToWidth(std::int64_t value, int width);

/// Evaluate every node; `inputs` maps input-node names to values (missing
/// inputs default to 0). Returns the value of each node by id.
[[nodiscard]] std::vector<std::int64_t> evaluateNodes(
    const Graph& g, const std::map<std::string, std::int64_t>& inputs);

/// Evaluate and return just the outputs, keyed by output-node name.
[[nodiscard]] std::map<std::string, std::int64_t> evaluateGraph(
    const Graph& g, const std::map<std::string, std::int64_t>& inputs);

}  // namespace pmsched
