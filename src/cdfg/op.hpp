#pragma once
// Operation kinds for CDFG nodes and their mapping to datapath resources.
//
// The paper's Tables I/II classify operations into five columns:
// MUX, COMP, +, -, and *. We keep a finer operation set (all comparison
// flavours, logic ops, shifts) and map each kind onto a ResourceClass,
// which is the unit a scheduler allocates and the paper's column key.

#include <cstdint>
#include <string_view>

namespace pmsched {

/// Every operation a CDFG node can perform.
///
/// `Input`, `Const` and `Output` are interface markers; `Wire` is a free
/// pass-through (constant shift / alias) realized as wiring in hardware.
/// None of those four consume a control step or an execution unit.
enum class OpKind : std::uint8_t {
  Input,
  Const,
  Output,
  Wire,
  Add,
  Sub,
  Mul,
  CmpGt,
  CmpGe,
  CmpLt,
  CmpLe,
  CmpEq,
  CmpNe,
  Mux,
  And,
  Or,
  Xor,
  Not,
  Shl,
  Shr,
};

/// Datapath unit types; these are the columns of the paper's tables plus
/// the extra unit classes our DSL can express.
enum class ResourceClass : std::uint8_t {
  None,        ///< free: inputs, constants, outputs, wiring
  Mux,         ///< 2:1 word multiplexor      (paper column "MUX")
  Comparator,  ///< magnitude/equality compare (paper column "COMP")
  Adder,       ///< paper column "+"
  Subtractor,  ///< paper column "-"
  Multiplier,  ///< paper column "*"
  Logic,       ///< bitwise and/or/xor/not
  Shifter,     ///< variable-amount shifter
};

[[nodiscard]] constexpr ResourceClass resourceClassOf(OpKind kind) {
  switch (kind) {
    case OpKind::Input:
    case OpKind::Const:
    case OpKind::Output:
    case OpKind::Wire: return ResourceClass::None;
    case OpKind::Add: return ResourceClass::Adder;
    case OpKind::Sub: return ResourceClass::Subtractor;
    case OpKind::Mul: return ResourceClass::Multiplier;
    case OpKind::CmpGt:
    case OpKind::CmpGe:
    case OpKind::CmpLt:
    case OpKind::CmpLe:
    case OpKind::CmpEq:
    case OpKind::CmpNe: return ResourceClass::Comparator;
    case OpKind::Mux: return ResourceClass::Mux;
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor:
    case OpKind::Not: return ResourceClass::Logic;
    case OpKind::Shl:
    case OpKind::Shr: return ResourceClass::Shifter;
  }
  return ResourceClass::None;
}

/// True for nodes that occupy a control step (everything that needs a unit).
[[nodiscard]] constexpr bool isScheduled(OpKind kind) {
  return resourceClassOf(kind) != ResourceClass::None;
}

[[nodiscard]] constexpr bool isComparison(OpKind kind) {
  return resourceClassOf(kind) == ResourceClass::Comparator;
}

/// Expected operand count; 0 for Input/Const, 3 for Mux (sel, in1, in0).
[[nodiscard]] constexpr int operandCount(OpKind kind) {
  switch (kind) {
    case OpKind::Input:
    case OpKind::Const: return 0;
    case OpKind::Output:
    case OpKind::Wire:
    case OpKind::Not: return 1;
    case OpKind::Mux: return 3;
    default: return 2;
  }
}

[[nodiscard]] constexpr std::string_view opName(OpKind kind) {
  switch (kind) {
    case OpKind::Input: return "input";
    case OpKind::Const: return "const";
    case OpKind::Output: return "output";
    case OpKind::Wire: return "wire";
    case OpKind::Add: return "add";
    case OpKind::Sub: return "sub";
    case OpKind::Mul: return "mul";
    case OpKind::CmpGt: return "gt";
    case OpKind::CmpGe: return "ge";
    case OpKind::CmpLt: return "lt";
    case OpKind::CmpLe: return "le";
    case OpKind::CmpEq: return "eq";
    case OpKind::CmpNe: return "ne";
    case OpKind::Mux: return "mux";
    case OpKind::And: return "and";
    case OpKind::Or: return "or";
    case OpKind::Xor: return "xor";
    case OpKind::Not: return "not";
    case OpKind::Shl: return "shl";
    case OpKind::Shr: return "shr";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view resourceName(ResourceClass rc) {
  switch (rc) {
    case ResourceClass::None: return "none";
    case ResourceClass::Mux: return "MUX";
    case ResourceClass::Comparator: return "COMP";
    case ResourceClass::Adder: return "+";
    case ResourceClass::Subtractor: return "-";
    case ResourceClass::Multiplier: return "*";
    case ResourceClass::Logic: return "logic";
    case ResourceClass::Shifter: return "shift";
  }
  return "?";
}

/// All resource classes that occupy units, in the paper's column order.
inline constexpr ResourceClass kUnitClasses[] = {
    ResourceClass::Mux,        ResourceClass::Comparator, ResourceClass::Adder,
    ResourceClass::Subtractor, ResourceClass::Multiplier, ResourceClass::Logic,
    ResourceClass::Shifter,
};

inline constexpr std::size_t kNumUnitClasses = sizeof(kUnitClasses) / sizeof(kUnitClasses[0]);

/// Dense index for a unit class (Mux=0 ... Shifter=6); None is not indexable.
[[nodiscard]] constexpr std::size_t unitIndex(ResourceClass rc) {
  return static_cast<std::size_t>(rc) - 1;
}

}  // namespace pmsched
