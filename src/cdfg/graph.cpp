#include "cdfg/graph.hpp"

#include <algorithm>
#include <unordered_set>

namespace pmsched {

CsrAdjacency CsrAdjacency::fromRagged(const std::vector<std::vector<NodeId>>& rows) {
  CsrAdjacency csr;
  csr.offsets_.resize(rows.size() + 1);
  std::size_t total = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    csr.offsets_[i] = static_cast<std::uint32_t>(total);
    total += rows[i].size();
  }
  csr.offsets_[rows.size()] = static_cast<std::uint32_t>(total);
  csr.targets_.reserve(total);
  for (const auto& row : rows) csr.targets_.insert(csr.targets_.end(), row.begin(), row.end());
  return csr;
}

void Graph::invalidateCaches() {
  csrValid_ = false;
  topoValid_ = false;
}

NodeId Graph::addNode(Node node) {
  if (node.name.empty()) node.name = freshName(opName(node.kind));
  const auto id = static_cast<NodeId>(nodes_.size());
  for (const NodeId op : node.operands) {
    if (op >= id) throw SynthesisError("operand " + std::to_string(op) + " of node '" +
                                       node.name + "' does not exist yet");
  }
  nodes_.push_back(std::move(node));
  fanouts_.emplace_back();
  ctrlSucc_.emplace_back();
  ctrlPred_.emplace_back();
  for (const NodeId op : nodes_.back().operands) fanouts_[op].push_back(id);
  invalidateCaches();
  return id;
}

std::string Graph::freshName(std::string_view stem) {
  return std::string(stem) + "_" + std::to_string(nameCounter_++);
}

NodeId Graph::addInput(std::string name, int width) {
  Node n;
  n.kind = OpKind::Input;
  n.name = std::move(name);
  n.width = width;
  return addNode(std::move(n));
}

NodeId Graph::addConst(std::int64_t value, int width, std::string name) {
  Node n;
  n.kind = OpKind::Const;
  n.name = std::move(name);
  n.width = width;
  n.constValue = value;
  return addNode(std::move(n));
}

NodeId Graph::addOutput(NodeId source, std::string name) {
  Node n;
  n.kind = OpKind::Output;
  n.name = std::move(name);
  n.operands = {source};
  n.width = nodes_.at(source).width;
  return addNode(std::move(n));
}

NodeId Graph::addOp(OpKind kind, std::vector<NodeId> operands, std::string name, int width) {
  if (static_cast<int>(operands.size()) != operandCount(kind))
    throw SynthesisError(std::string("addOp(") + std::string(opName(kind)) + "): expected " +
                         std::to_string(operandCount(kind)) + " operands, got " +
                         std::to_string(operands.size()));
  for (const NodeId op : operands)
    if (op >= size())
      throw SynthesisError(std::string("addOp(") + std::string(opName(kind)) +
                           "): operand does not exist yet");
  Node n;
  n.kind = kind;
  n.name = std::move(name);
  n.operands = std::move(operands);
  if (width >= 0) {
    n.width = width;
  } else if (isComparison(kind)) {
    n.width = 1;
  } else if (!n.operands.empty()) {
    // Result width defaults to the widest data operand (mux skips the select).
    int w = 0;
    const std::size_t first = kind == OpKind::Mux ? 1 : 0;
    for (std::size_t i = first; i < n.operands.size(); ++i)
      w = std::max(w, nodes_.at(n.operands[i]).width);
    n.width = w;
  }
  return addNode(std::move(n));
}

NodeId Graph::addMux(NodeId sel, NodeId whenTrue, NodeId whenFalse, std::string name) {
  return addOp(OpKind::Mux, {sel, whenTrue, whenFalse}, std::move(name));
}

NodeId Graph::addWire(NodeId source, int shift, std::string name) {
  Node n;
  n.kind = OpKind::Wire;
  n.name = std::move(name);
  n.operands = {source};
  n.width = nodes_.at(source).width;
  n.shift = shift;
  return addNode(std::move(n));
}

void Graph::addControlEdge(NodeId before, NodeId after) {
  if (before >= size() || after >= size())
    throw SynthesisError("addControlEdge: node id out of range");
  if (before == after) throw SynthesisError("addControlEdge: self edge");
  // Ignore duplicates so transforms can be idempotent.
  const auto& succ = ctrlSucc_[before];
  if (std::find(succ.begin(), succ.end(), after) != succ.end()) return;
  ctrlSucc_[before].push_back(after);
  ctrlPred_[after].push_back(before);
  ++ctrlEdgeCount_;
  invalidateCaches();
}

void Graph::clearControlEdges() {
  for (auto& v : ctrlSucc_) v.clear();
  for (auto& v : ctrlPred_) v.clear();
  ctrlEdgeCount_ = 0;
  invalidateCaches();
}

const CsrAdjacency& Graph::fanoutCsr() const {
  if (!csrValid_) {
    fanoutCsr_ = CsrAdjacency::fromRagged(fanouts_);
    ctrlSuccCsr_ = CsrAdjacency::fromRagged(ctrlSucc_);
    ctrlPredCsr_ = CsrAdjacency::fromRagged(ctrlPred_);
    csrValid_ = true;
  }
  return fanoutCsr_;
}

const CsrAdjacency& Graph::controlSuccCsr() const {
  (void)fanoutCsr();  // builds all three snapshots together
  return ctrlSuccCsr_;
}

const CsrAdjacency& Graph::controlPredCsr() const {
  (void)fanoutCsr();
  return ctrlPredCsr_;
}

std::vector<NodeId> Graph::allNodes() const {
  std::vector<NodeId> out(size());
  for (NodeId i = 0; i < size(); ++i) out[i] = i;
  return out;
}

std::vector<NodeId> Graph::nodesOfKind(OpKind kind) const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < size(); ++i)
    if (nodes_[i].kind == kind) out.push_back(i);
  return out;
}

std::vector<NodeId> Graph::scheduledNodes() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < size(); ++i)
    if (isScheduled(nodes_[i].kind)) out.push_back(i);
  return out;
}

std::optional<NodeId> Graph::findByName(std::string_view name) const {
  for (NodeId i = 0; i < size(); ++i)
    if (nodes_[i].name == name) return i;
  return std::nullopt;
}

std::span<const NodeId> Graph::topoOrderView() const {
  if (topoValid_) return topoCache_;

  std::vector<int> indegree(size(), 0);
  for (NodeId i = 0; i < size(); ++i) {
    indegree[i] += static_cast<int>(nodes_[i].operands.size());
    indegree[i] += static_cast<int>(ctrlPred_[i].size());
  }
  std::vector<NodeId> ready;
  for (NodeId i = 0; i < size(); ++i)
    if (indegree[i] == 0) ready.push_back(i);

  std::vector<NodeId> order;
  order.reserve(size());
  // Process smallest id first for deterministic order.
  std::make_heap(ready.begin(), ready.end(), std::greater<>{});
  while (!ready.empty()) {
    std::pop_heap(ready.begin(), ready.end(), std::greater<>{});
    const NodeId n = ready.back();
    ready.pop_back();
    order.push_back(n);
    auto relax = [&](NodeId succ) {
      if (--indegree[succ] == 0) {
        ready.push_back(succ);
        std::push_heap(ready.begin(), ready.end(), std::greater<>{});
      }
    };
    for (const NodeId succ : fanouts_[n]) relax(succ);
    for (const NodeId succ : ctrlSucc_[n]) relax(succ);
  }
  if (order.size() != size())
    throw SynthesisError("graph '" + name_ + "' contains a cycle (data+control edges)");
  topoCache_ = std::move(order);
  topoValid_ = true;
  return topoCache_;
}

std::vector<NodeId> Graph::topoOrder() const {
  const std::span<const NodeId> view = topoOrderView();
  return std::vector<NodeId>(view.begin(), view.end());
}

NodeMask Graph::backwardReach(std::span<const NodeId> roots) const {
  NodeMask seen(size());
  std::vector<NodeId> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (seen.test(n)) continue;
    seen.set(n);
    for (const NodeId p : nodes_[n].operands)
      if (!seen.test(p)) stack.push_back(p);
  }
  return seen;
}

NodeMask Graph::transitiveFanin(NodeId id) const {
  return backwardReach(nodes_.at(id).operands);
}

NodeMask Graph::operandCone(NodeId id, std::size_t opIndex) const {
  const NodeId root = nodes_.at(id).operands.at(opIndex);
  return backwardReach(std::span<const NodeId>(&root, 1));
}

void Graph::validate() const {
  std::unordered_set<std::string_view> names;
  for (NodeId i = 0; i < size(); ++i) {
    const Node& n = nodes_[i];
    if (!names.insert(n.name).second)
      throw SynthesisError("duplicate node name '" + n.name + "'");
    if (static_cast<int>(n.operands.size()) != operandCount(n.kind))
      throw SynthesisError("node '" + n.name + "': wrong operand count");
    for (const NodeId op : n.operands)
      if (op >= size()) throw SynthesisError("node '" + n.name + "': dangling operand");
    if (n.width <= 0 || n.width > 64)
      throw SynthesisError("node '" + n.name + "': width out of range");
    if (isComparison(n.kind) && n.width != 1)
      throw SynthesisError("node '" + n.name + "': comparison width must be 1");
    if (n.kind == OpKind::Mux && nodes_[n.operands[0]].width != 1)
      throw SynthesisError("node '" + n.name + "': mux select must be 1 bit wide");
    if (n.kind == OpKind::Output && !fanouts_[i].empty())
      throw SynthesisError("node '" + n.name + "': output has consumers");
  }
  (void)topoOrderView();  // throws on cycles
}

}  // namespace pmsched
