#pragma once
// The Control Data Flow Graph: the input to every synthesis pass.
//
// A Graph is a DAG of operation nodes. Data edges carry values; control
// edges (added by the power-management transform) carry pure precedence:
// "the gated node must be scheduled strictly after the controlling node".
//
// Multiplexor convention, used consistently everywhere:
//   operand 0 = select signal ("control input" in the paper),
//   operand 1 = value when select is true  (the paper's "1 input"),
//   operand 2 = value when select is false (the paper's "0 input").
//
// Hot-path views: the schedulers and the power transform traverse the graph
// many times per run, so the Graph keeps lazily-built, mutation-invalidated
// caches — CSR (compressed sparse row) copies of the fanout/control
// adjacency and a topological order. The caches are rebuilt at most once per
// mutation epoch; any mutation (addNode/addControlEdge/clearControlEdges)
// invalidates all previously returned CSR references and topo spans. Lazy
// rebuilding mutates `mutable` members, so concurrent const access from
// multiple threads is not safe without external synchronization.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cdfg/node_mask.hpp"
#include "cdfg/op.hpp"
#include "support/diagnostics.hpp"

namespace pmsched {

/// Index of a node within its Graph. Stable for the Graph's lifetime.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Which data input of a mux a value feeds (paper's "0 input"/"1 input").
enum class MuxSide : std::uint8_t { False = 0, True = 1 };

[[nodiscard]] constexpr MuxSide oppositeSide(MuxSide s) {
  return s == MuxSide::True ? MuxSide::False : MuxSide::True;
}

/// One CDFG operation.
struct Node {
  OpKind kind = OpKind::Input;
  std::string name;                ///< user-visible name; unique per graph
  std::vector<NodeId> operands;    ///< data inputs, ordered
  int width = 8;                   ///< result width in bits (cmp results are 1)
  std::int64_t constValue = 0;     ///< for OpKind::Const
  int shift = 0;                   ///< for OpKind::Wire: >0 right, <0 left
};

/// One adjacency relation in compressed-sparse-row form: all rows share two
/// flat arrays, so iterating a row is a pointer walk with no per-node heap
/// indirection. Snapshots are owned by the Graph and rebuilt lazily.
class CsrAdjacency {
 public:
  [[nodiscard]] std::span<const NodeId> row(NodeId n) const {
    return std::span<const NodeId>(targets_.data() + offsets_[n],
                                   targets_.data() + offsets_[n + 1]);
  }
  [[nodiscard]] std::size_t rowCount() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  [[nodiscard]] std::size_t edgeCount() const { return targets_.size(); }

  /// Build from ragged per-node adjacency.
  static CsrAdjacency fromRagged(const std::vector<std::vector<NodeId>>& rows);

 private:
  std::vector<std::uint32_t> offsets_;  ///< size N+1; row n is [offsets_[n], offsets_[n+1])
  std::vector<NodeId> targets_;
};

/// The CDFG plus control (precedence-only) edges.
class Graph {
 public:
  explicit Graph(std::string name = "cdfg") : name_(std::move(name)) {}

  // ---- construction -------------------------------------------------------

  NodeId addInput(std::string name, int width = 8);
  NodeId addConst(std::int64_t value, int width = 8, std::string name = {});
  NodeId addOutput(NodeId source, std::string name);
  /// Generic operation; checks operand count for `kind`.
  NodeId addOp(OpKind kind, std::vector<NodeId> operands, std::string name = {}, int width = -1);
  /// Mux with the (sel, whenTrue, whenFalse) convention above.
  NodeId addMux(NodeId sel, NodeId whenTrue, NodeId whenFalse, std::string name = {});
  /// Free pass-through (realized as wiring); `shift` > 0 shifts right.
  NodeId addWire(NodeId source, int shift = 0, std::string name = {});

  /// Pure precedence edge: `after` must be scheduled strictly after `before`.
  void addControlEdge(NodeId before, NodeId after);

  // ---- queries -------------------------------------------------------------

  [[nodiscard]] const std::string& name() const { return name_; }
  void setName(std::string n) { name_ = std::move(n); }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] OpKind kind(NodeId id) const { return nodes_.at(id).kind; }

  /// Data operands of `id`.
  [[nodiscard]] std::span<const NodeId> fanins(NodeId id) const {
    return nodes_.at(id).operands;
  }
  /// Data consumers of `id` (each consumer listed once per operand use).
  [[nodiscard]] const std::vector<NodeId>& fanouts(NodeId id) const {
    return fanouts_.at(id);
  }
  [[nodiscard]] const std::vector<NodeId>& controlSuccessors(NodeId id) const {
    return ctrlSucc_.at(id);
  }
  [[nodiscard]] const std::vector<NodeId>& controlPredecessors(NodeId id) const {
    return ctrlPred_.at(id);
  }
  [[nodiscard]] std::size_t controlEdgeCount() const { return ctrlEdgeCount_; }

  // ---- flat views (hot paths) ---------------------------------------------
  // References stay valid until the next mutation. Built on first use.

  /// CSR snapshot of data fanouts.
  [[nodiscard]] const CsrAdjacency& fanoutCsr() const;
  /// CSR snapshot of control-edge successors.
  [[nodiscard]] const CsrAdjacency& controlSuccCsr() const;
  /// CSR snapshot of control-edge predecessors.
  [[nodiscard]] const CsrAdjacency& controlPredCsr() const;

  /// Cached topological order over data + control edges; same order as
  /// topoOrder() but without the per-call allocation. Throws on a cycle.
  [[nodiscard]] std::span<const NodeId> topoOrderView() const;

  /// All node ids, in insertion order.
  [[nodiscard]] std::vector<NodeId> allNodes() const;
  /// Ids of every node with the given kind.
  [[nodiscard]] std::vector<NodeId> nodesOfKind(OpKind kind) const;
  /// Ids of every scheduled (unit-consuming) node.
  [[nodiscard]] std::vector<NodeId> scheduledNodes() const;

  /// Find a node by name; nullopt if absent.
  [[nodiscard]] std::optional<NodeId> findByName(std::string_view name) const;

  // ---- structure -----------------------------------------------------------

  /// Topological order over data + control edges. Throws SynthesisError on a
  /// cycle (control edges can create one if a transform misbehaves).
  [[nodiscard]] std::vector<NodeId> topoOrder() const;

  /// Transitive data fanin of `id` (excluding `id` itself) as a node mask.
  [[nodiscard]] NodeMask transitiveFanin(NodeId id) const;
  /// Transitive fanin of one operand subtree: everything reachable backwards
  /// from operand `opIndex` of `id` (including that operand node).
  [[nodiscard]] NodeMask operandCone(NodeId id, std::size_t opIndex) const;

  /// Structural checks: operand counts, widths, acyclicity, name uniqueness.
  /// Throws SynthesisError describing the first violation.
  void validate() const;

  /// Remove all control edges (used to re-run transforms from scratch).
  void clearControlEdges();

  /// Deep copy with identical node ids.
  [[nodiscard]] Graph clone() const { return *this; }

 private:
  NodeId addNode(Node node);
  [[nodiscard]] std::string freshName(std::string_view stem);
  void invalidateCaches();
  [[nodiscard]] NodeMask backwardReach(std::span<const NodeId> roots) const;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> fanouts_;
  std::vector<std::vector<NodeId>> ctrlSucc_;
  std::vector<std::vector<NodeId>> ctrlPred_;
  std::size_t ctrlEdgeCount_ = 0;
  std::size_t nameCounter_ = 0;

  // Lazily-built caches (see the header comment for the invalidation rules).
  mutable CsrAdjacency fanoutCsr_;
  mutable CsrAdjacency ctrlSuccCsr_;
  mutable CsrAdjacency ctrlPredCsr_;
  mutable bool csrValid_ = false;
  mutable std::vector<NodeId> topoCache_;
  mutable bool topoValid_ = false;
};

}  // namespace pmsched
