#include "rtl/mapper.hpp"

#include <algorithm>

namespace pmsched {

namespace {

class Mapper {
 public:
  Mapper(const PowerManagedDesign& design, const Schedule& sched, const Binding& binding,
         const ActivationResult& activation, const RtlOptions& opts)
      : design_(design),
        g_(design.graph),
        sched_(sched),
        binding_(binding),
        activation_(activation),
        opts_(opts),
        rtl_{} {
    rtl_.netlist = Netlist(design.graph.name() + (opts.latchGating ? "_pm" : "_orig"));
  }

  RtlDesign run() {
    rtl_.steps = sched_.steps();
    buildStateRing();
    buildPrimaryInputs();
    buildPortLatches();   // pass A: latches with placeholder data/enable
    buildUnitCores();     // pass B: combinational units + result/status regs
    patchRouting();       // pass C: real source networks and gated enables
    buildOutputs();
    return std::move(rtl_);
  }

 private:
  Netlist& nl() { return rtl_.netlist; }

  // ---- state ring -----------------------------------------------------------
  // One-hot ring with steps+1 states (state 0 loads the primary inputs).
  // state 0's recurrence closes the ring, which is expressed with a
  // patched DFF data input (the only backward edge, legal through the
  // register boundary).
  void buildStateRing() {
    const int states = sched_.steps() + 1;
    state_.resize(static_cast<std::size_t>(states));
    const SignalId placeholder = nl().constant(false);
    state_[0] = nl().addDff(placeholder, kNoSignal, true);
    for (int i = 1; i < states; ++i)
      state_[static_cast<std::size_t>(i)] =
          nl().addDff(state_[static_cast<std::size_t>(i - 1)], kNoSignal, false);
    nl().patchDffData(state_[0], state_.back());
  }

  SignalId stateBit(int state) const { return state_.at(static_cast<std::size_t>(state)); }

  // ---- primary inputs -------------------------------------------------------
  void buildPrimaryInputs() {
    for (const NodeId n : g_.nodesOfKind(OpKind::Input)) {
      const Node& node = g_.node(n);
      Word ext = inputWord(nl(), node.name, node.width);
      rtl_.inputPorts[node.name] = ext;
      rtl_.inputWidths[node.name] = node.width;
      extWord_[n] = ext;
      piReg_[n] = registerWord(nl(), ext, stateBit(0));
    }
    for (const NodeId n : g_.nodesOfKind(OpKind::Const))
      constWord_[n] = constWord(nl(), g_.node(n).constValue, g_.node(n).width);
  }

  // ---- unit structure -------------------------------------------------------
  struct UnitRtl {
    std::vector<Word> portLatch;        ///< operand latches (mux: sel,t,f)
    std::vector<Word> portPlaceholder;  ///< Buf words to patch in pass C
    std::vector<SignalId> enablePlaceholder;  ///< Buf per port, patched too
    Word out;                           ///< combinational result
    SignalId outGt = kNoSignal, outGe = kNoSignal, outEq = kNoSignal;
    SignalId outNe = kNoSignal, outLt = kNoSignal, outLe = kNoSignal;
    Word outAnd, outOr, outXor, outNot;  ///< logic-unit flavours
  };

  static std::size_t portCount(const FunctionalUnit& unit) {
    return unit.cls == ResourceClass::Mux ? 3 : 2;
  }
  static int portWidth(const FunctionalUnit& unit, std::size_t port) {
    return (unit.cls == ResourceClass::Mux && port == 0) ? 1 : unit.width;
  }

  void buildPortLatches() {
    unitRtl_.resize(binding_.units.size());
    for (std::size_t u = 0; u < binding_.units.size(); ++u) {
      const FunctionalUnit& unit = binding_.units[u];
      UnitRtl& r = unitRtl_[u];
      const std::size_t ports = portCount(unit);
      r.portLatch.resize(ports);
      r.portPlaceholder.resize(ports);
      r.enablePlaceholder.resize(ports, kNoSignal);
      for (std::size_t p = 0; p < ports; ++p) {
        const int width = portWidth(unit, p);
        Word placeholder;
        for (int i = 0; i < width; ++i)
          placeholder.push_back(nl().addGate(GateKind::Buf, nl().constant(false)));
        const SignalId enable = nl().addGate(GateKind::Buf, nl().constant(false));
        r.portPlaceholder[p] = placeholder;
        r.enablePlaceholder[p] = enable;
        r.portLatch[p] = registerWord(nl(), placeholder, enable);
      }
    }
  }

  void buildUnitCores() {
    for (std::size_t u = 0; u < binding_.units.size(); ++u) {
      const FunctionalUnit& unit = binding_.units[u];
      UnitRtl& r = unitRtl_[u];
      switch (unit.cls) {
        case ResourceClass::Adder:
          r.out = adderWord(nl(), r.portLatch[0], r.portLatch[1]);
          break;
        case ResourceClass::Subtractor:
          r.out = subtractorWord(nl(), r.portLatch[0], r.portLatch[1]);
          break;
        case ResourceClass::Multiplier:
          r.out = multiplierWord(nl(), r.portLatch[0], r.portLatch[1]);
          break;
        case ResourceClass::Comparator: {
          // One subtract core + equality reduction yields every flavour.
          const SignalId lt = compareGtWord(nl(), r.portLatch[1], r.portLatch[0]);
          const SignalId eq = compareEqWord(nl(), r.portLatch[0], r.portLatch[1]);
          r.outLt = lt;
          r.outEq = eq;
          r.outNe = nl().addGate(GateKind::Inv, eq);
          r.outGe = nl().addGate(GateKind::Inv, lt);
          r.outGt = nl().addGate(GateKind::And2, r.outGe, r.outNe);
          r.outLe = nl().addGate(GateKind::Or2, lt, eq);
          r.out = {r.outGt};
          break;
        }
        case ResourceClass::Mux:
          r.out = mux2Word(nl(), r.portLatch[0].at(0), r.portLatch[1], r.portLatch[2]);
          break;
        case ResourceClass::Logic:
          // One ALU-style unit provides every bitwise flavour; each op picks
          // its output (mirrors the comparator treatment).
          r.outAnd = andWord(nl(), r.portLatch[0], r.portLatch[1]);
          r.outOr = orWord(nl(), r.portLatch[0], r.portLatch[1]);
          r.outXor = xorWord(nl(), r.portLatch[0], r.portLatch[1]);
          r.outNot = notWord(nl(), r.portLatch[0]);
          r.out = r.outAnd;
          break;
        case ResourceClass::Shifter:
          r.out = xorWord(nl(), r.portLatch[0], r.portLatch[1]);  // unused by paper circuits
          break;
        case ResourceClass::None: break;
      }
    }

    // Value registers: one per binder register; AND-OR capture network over
    // the values it stores, enable gated by each value's condition.
    valueReg_.resize(binding_.registers.size());
    for (std::size_t reg = 0; reg < binding_.registers.size(); ++reg) {
      const RegisterInfo& info = binding_.registers[reg];
      Word dWord;
      SignalId enable = kNoSignal;
      for (const NodeId v : info.values) {
        const Word out = unitOutputOf(v);
        const SignalId stateSel = stateBit(sched_.stepOf(v));
        Word masked;
        for (int i = 0; i < info.width; ++i) {
          const SignalId bit = i < static_cast<int>(out.size())
                                   ? out[static_cast<std::size_t>(i)]
                                   : out.back();
          masked.push_back(nl().addGate(GateKind::And2, stateSel, bit));
        }
        if (dWord.empty()) {
          dWord = masked;
        } else {
          for (int i = 0; i < info.width; ++i)
            dWord[static_cast<std::size_t>(i)] =
                nl().addGate(GateKind::Or2, dWord[static_cast<std::size_t>(i)],
                             masked[static_cast<std::size_t>(i)]);
        }
        SignalId term = stateSel;
        const SignalId cond = conditionSignal(v, sched_.stepOf(v));
        if (cond != kNoSignal) term = nl().addGate(GateKind::And2, term, cond);
        enable = enable == kNoSignal ? term : nl().addGate(GateKind::Or2, enable, term);
      }
      valueReg_[reg] = registerWord(nl(), dWord, enable);
    }
  }

  void patchRouting() {
    for (std::size_t u = 0; u < binding_.units.size(); ++u) {
      const FunctionalUnit& unit = binding_.units[u];
      UnitRtl& r = unitRtl_[u];
      const std::size_t ports = portCount(unit);
      for (std::size_t p = 0; p < ports; ++p) {
        const int width = portWidth(unit, p);

        // Data: AND-OR network over the sources, selected by the state bit
        // of the cycle before each op's step.
        Word net;
        SignalId enable = kNoSignal;
        for (const NodeId op : unit.ops) {
          const auto operands = g_.fanins(op);
          if (p >= operands.size()) continue;
          const int cycle = sched_.stepOf(op) - 1;

          Word src;
          if (unit.cls == ResourceClass::Mux && p == 0) {
            src = {selectValueDuring(traceSelectProducer(g_, op), cycle)};
          } else {
            src = sourceWordDuring(operands[p], width, cycle);
          }
          const SignalId sel = stateBit(cycle);
          Word masked;
          for (int i = 0; i < width; ++i)
            masked.push_back(
                nl().addGate(GateKind::And2, sel, src[static_cast<std::size_t>(i)]));
          if (net.empty()) {
            net = masked;
          } else {
            for (int i = 0; i < width; ++i)
              net[static_cast<std::size_t>(i)] =
                  nl().addGate(GateKind::Or2, net[static_cast<std::size_t>(i)],
                               masked[static_cast<std::size_t>(i)]);
          }

          // Enable: state AND (activation condition when gating).
          SignalId term = sel;
          const SignalId cond = conditionSignal(op, cycle);
          if (cond != kNoSignal) term = nl().addGate(GateKind::And2, term, cond);
          enable = enable == kNoSignal ? term : nl().addGate(GateKind::Or2, enable, term);
        }
        if (net.empty()) net = constWord(nl(), 0, width);
        if (enable == kNoSignal) enable = nl().constant(false);

        for (int i = 0; i < width; ++i)
          nl().patchBufData(r.portPlaceholder[p][static_cast<std::size_t>(i)],
                            net[static_cast<std::size_t>(i)]);
        nl().patchBufData(r.enablePlaceholder[p], enable);
      }
    }
  }

  // ---- value routing helpers ------------------------------------------------

  /// Combinational output of the unit executing `op` (comparators: the
  /// flavour this op needs).
  Word unitOutputOf(NodeId op) {
    const int u = binding_.unitOf[op];
    if (u < 0) throw SynthesisError("rtl: node has no unit: " + g_.node(op).name);
    const UnitRtl& r = unitRtl_[static_cast<std::size_t>(u)];
    if (isComparison(g_.kind(op))) {
      switch (g_.kind(op)) {
        case OpKind::CmpGt: return {r.outGt};
        case OpKind::CmpGe: return {r.outGe};
        case OpKind::CmpLt: return {r.outLt};
        case OpKind::CmpLe: return {r.outLe};
        case OpKind::CmpEq: return {r.outEq};
        case OpKind::CmpNe: return {r.outNe};
        default: break;
      }
    }
    switch (g_.kind(op)) {
      case OpKind::And: return r.outAnd;
      case OpKind::Or: return r.outOr;
      case OpKind::Xor: return r.outXor;
      case OpKind::Not: return r.outNot;
      default: break;
    }
    if (r.out.empty())
      throw SynthesisError("rtl: unit output queried before construction for '" +
                           g_.node(op).name + "'");
    return r.out;
  }

  /// Word carrying `source`'s value during `cycle`:
  ///   * inputs: the external port in cycle 0 (the input register captures
  ///     on the same edge), the input register afterwards;
  ///   * constants: constant word;
  ///   * a value produced exactly in `cycle`: live unit output (its
  ///     register captures on the same edge);
  ///   * otherwise: the value's register.
  Word sourceWordDuring(NodeId source, int width, int cycle) {
    int shift = 0;
    NodeId base = source;
    while (g_.kind(base) == OpKind::Wire) {
      shift += g_.node(base).shift;
      base = g_.fanins(base)[0];
    }
    Word word;
    if (g_.kind(base) == OpKind::Input) {
      word = cycle == 0 ? extWord_.at(base) : piReg_.at(base);
    } else if (g_.kind(base) == OpKind::Const) {
      word = constWord_.at(base);
    } else if (sched_.stepOf(base) == cycle) {
      word = unitOutputOf(base);
    } else if (sched_.stepOf(base) < cycle) {
      const int reg = binding_.registerOf[base];
      if (reg < 0)
        throw SynthesisError("rtl: value without register consumed: " + g_.node(base).name);
      word = valueReg_.at(static_cast<std::size_t>(reg));
    } else {
      throw SynthesisError("rtl: value '" + g_.node(base).name + "' needed in cycle " +
                           std::to_string(cycle) + " before its step " +
                           std::to_string(sched_.stepOf(base)));
    }
    word = resizeWord(nl(), word, width);
    if (shift != 0) word = shiftWord(nl(), word, shift);
    return word;
  }

  /// A select signal's value during `cycle` (status register once captured,
  /// live comparator output in the capture cycle itself).
  SignalId selectValueDuring(NodeId select, int cycle) {
    if (!isScheduled(g_.kind(select))) return sourceWordDuring(select, 1, cycle).at(0);
    const int producedAt = sched_.stepOf(select);
    if (producedAt < cycle) return statusReg(select);
    if (producedAt == cycle) return unitOutputOf(select).at(0);
    throw SynthesisError("rtl: select '" + g_.node(select).name + "' needed in cycle " +
                         std::to_string(cycle) + " but computed in step " +
                         std::to_string(producedAt));
  }

  SignalId statusReg(NodeId select) {
    const auto it = statusReg_.find(select);
    if (it != statusReg_.end()) return it->second;
    const SignalId live = unitOutputOf(select).at(0);
    const SignalId reg = nl().addDff(live, stateBit(sched_.stepOf(select)), false);
    statusReg_[select] = reg;
    return reg;
  }

  /// Gated-enable condition of `op` during `cycle`; kNoSignal when the op
  /// is unconditional or gating is disabled. Ops whose conditions are the
  /// same Boolean function (canonical activation BDD ref — degraded nodes
  /// key through the pinned thread-local manager instead) share one decode
  /// network per cycle rather than re-building identical AND-OR trees.
  SignalId conditionSignal(NodeId op, int cycle) {
    if (!opts_.latchGating) return kNoSignal;
    const GateDnf& dnf = activation_.condition[op];
    if (dnfIsTrue(dnf)) return kNoSignal;
    if (dnf.empty()) return nl().constant(false);

    const BddRef ref = op < activation_.bdd.size() ? activation_.bdd[op] : kBddInvalid;
    const std::uint64_t key =
        ref != kBddInvalid ? std::uint64_t{ref}
                           : (std::uint64_t{1} << 32) | condKeys_.fromDnf(dnf);
    const auto memo = condMemo_.find({key, cycle});
    if (memo != condMemo_.end()) return memo->second;

    SignalId orAll = kNoSignal;
    for (const GateTerm& term : dnf) {
      SignalId andAll = kNoSignal;
      for (const GateLiteral& lit : term) {
        SignalId bit = selectValueDuring(lit.select, cycle);
        if (!lit.value) bit = nl().addGate(GateKind::Inv, bit);
        andAll = andAll == kNoSignal ? bit : nl().addGate(GateKind::And2, andAll, bit);
      }
      orAll = orAll == kNoSignal ? andAll : nl().addGate(GateKind::Or2, orAll, andAll);
    }
    condMemo_.emplace(std::make_pair(key, cycle), orAll);
    return orAll;
  }

  void buildOutputs() {
    for (const NodeId n : g_.nodesOfKind(OpKind::Output)) {
      const Node& node = g_.node(n);
      // Outputs are read after the final step: every producer is in a
      // register by then (cycle beyond all steps).
      Word w = sourceWordDuring(node.operands[0], node.width, sched_.steps() + 1);
      for (std::size_t i = 0; i < w.size(); ++i)
        nl().markOutput(w[i], node.name + "[" + std::to_string(i) + "]");
      rtl_.outputPorts[node.name] = w;
    }
  }

  const PowerManagedDesign& design_;
  const Graph& g_;
  const Schedule& sched_;
  const Binding& binding_;
  const ActivationResult& activation_;
  RtlOptions opts_;
  RtlDesign rtl_;

  std::vector<SignalId> state_;
  std::map<NodeId, Word> extWord_;
  std::map<NodeId, Word> piReg_;
  std::map<NodeId, Word> constWord_;
  std::vector<UnitRtl> unitRtl_;
  std::map<NodeId, SignalId> statusReg_;
  std::vector<Word> valueReg_;

  /// Memoized enable decoders, keyed by (condition class, cycle). The
  /// fallback manager is pinned for the mapper's lifetime so its periodic
  /// trim cannot recycle refs that serve as memo keys.
  std::map<std::pair<std::uint64_t, int>, SignalId> condMemo_;
  BddManager& condKeys_ = dnfProbabilityManager();
  BddPin condKeysPin_{condKeys_};
};

}  // namespace

RtlDesign mapDesign(const PowerManagedDesign& design, const Schedule& sched,
                    const Binding& binding, const ActivationResult& activation,
                    const RtlOptions& opts) {
  Mapper mapper(design, sched, binding, activation, opts);
  return mapper.run();
}

}  // namespace pmsched
