#pragma once
// Random-vector power measurement over a mapped RTL design, with optional
// functional checking against the CDFG interpreter. This is the experiment
// the paper ran through Synopsys DesignPower (Table III), reproduced on our
// own netlist simulator.

#include <cstdint>

#include "cdfg/interpreter.hpp"
#include "rtl/mapper.hpp"
#include "support/rng.hpp"

namespace pmsched {

struct RtlPowerResult {
  double area = 0;             ///< NAND2-equivalent netlist area
  std::size_t combGates = 0;
  std::size_t dffs = 0;
  std::uint64_t energy = 0;    ///< fanout-weighted toggles over all samples
  int samples = 0;
  int functionalMismatches = 0;  ///< samples whose outputs differ from the
                                 ///< CDFG interpreter (must be 0)

  [[nodiscard]] double energyPerSample() const {
    return samples > 0 ? static_cast<double>(energy) / samples : 0.0;
  }
};

/// Drive `samples` random input vectors through the machine (one warm-up
/// sample excluded from the counters) and report weighted toggle counts.
/// When `checkFunctional` is set, every sample's outputs are compared to
/// evaluateGraph() on the same inputs.
[[nodiscard]] RtlPowerResult measurePower(const RtlDesign& rtl, const Graph& reference,
                                          int samples, Rng& rng, bool checkFunctional = true);

}  // namespace pmsched
