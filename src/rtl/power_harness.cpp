#include "rtl/power_harness.hpp"

namespace pmsched {

RtlPowerResult measurePower(const RtlDesign& rtl, const Graph& reference, int samples,
                            Rng& rng, bool checkFunctional) {
  RtlPowerResult result;
  result.area = rtl.netlist.area();
  result.combGates = rtl.netlist.combGateCount();
  result.dffs = rtl.netlist.dffCount();

  Simulator sim(rtl.netlist);

  auto runSample = [&](bool count) {
    // Draw one random value per input port.
    std::map<std::string, std::int64_t> inputs;
    for (const auto& [name, word] : rtl.inputPorts) {
      const int width = rtl.inputWidths.at(name);
      const auto raw = static_cast<std::int64_t>(rng.bits(static_cast<unsigned>(width)));
      inputs[name] = truncateToWidth(raw, width);
      for (std::size_t i = 0; i < word.size(); ++i)
        sim.setInput(word[i], ((static_cast<std::uint64_t>(raw) >> i) & 1U) != 0);
    }

    for (int cycle = 0; cycle < rtl.cyclesPerSample(); ++cycle) sim.clock();

    if (count && checkFunctional) {
      const auto expected = evaluateGraph(reference, inputs);
      bool ok = true;
      for (const auto& [name, word] : rtl.outputPorts) {
        const auto it = expected.find(name);
        if (it == expected.end()) continue;
        const auto got = truncateToWidth(static_cast<std::int64_t>(sim.wordValue(word)),
                                         static_cast<int>(word.size()));
        if (got != it->second) ok = false;
      }
      if (!ok) ++result.functionalMismatches;
    }
  };

  runSample(false);  // warm-up: flush power-on transients
  sim.resetCounters();
  for (int s = 0; s < samples; ++s) {
    runSample(true);
    ++result.samples;
  }
  result.energy = sim.energy();
  return result;
}

}  // namespace pmsched
