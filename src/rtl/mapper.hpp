#pragma once
// RTL mapping: scheduled + bound + power-managed design -> gate netlist.
//
// The generated machine works exactly like the hardware the paper
// describes:
//   * a free-running one-hot state ring with one state per control step
//     plus a load state (state 0) in which primary inputs are captured;
//   * every execution unit has input latches per operand port; during the
//     cycle before an operation's control step the latch captures the
//     operand — and with power management enabled, ONLY when the
//     operation's activation condition holds. A held latch freezes the
//     unit's inputs, so the unit's combinational logic does not switch:
//     that is the entire power-saving mechanism, reproduced structurally;
//   * comparator select results are captured into 1-bit status registers
//     that feed both datapath mux selects and the controller's gated
//     enables;
//   * values are captured into the shared registers chosen by the binder,
//     gated by the same activation conditions.
//
// mapDesign(..., gating=false) produces the baseline machine (enables
// depend only on the state ring), which is the paper's "Orig" column.

#include <map>

#include "alloc/binding.hpp"
#include "ctrl/controller.hpp"
#include "netlist/wordgen.hpp"
#include "sched/schedule.hpp"

namespace pmsched {

struct RtlOptions {
  bool latchGating = true;  ///< false = baseline ("Orig") machine
};

/// The mapped machine, with enough bookkeeping to drive simulations.
struct RtlDesign {
  Netlist netlist;
  int steps = 0;  ///< control steps (the ring has steps+1 states)

  /// External input words, keyed by Input-node name.
  std::map<std::string, Word> inputPorts;
  /// Output words, keyed by Output-node name.
  std::map<std::string, Word> outputPorts;
  /// Width per input, for stimulus generation.
  std::map<std::string, int> inputWidths;

  /// Cycles from presenting inputs to valid outputs: steps + 1.
  [[nodiscard]] int cyclesPerSample() const { return steps + 1; }
};

[[nodiscard]] RtlDesign mapDesign(const PowerManagedDesign& design, const Schedule& sched,
                                  const Binding& binding, const ActivationResult& activation,
                                  const RtlOptions& opts = {});

}  // namespace pmsched
