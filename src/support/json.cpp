#include "support/json.hpp"

#include <cmath>
#include <stdexcept>

namespace pmsched {

void JsonWriter::beforeValue() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (top() == Ctx::Object) throw std::logic_error("JsonWriter: expected key inside object");
  if (top() == Ctx::Array) {
    if (needComma_.back()) out_ << ',';
    needComma_.back() = true;
  } else if (top() == Ctx::ExpectValue) {
    stack_.pop_back();  // the pending key consumed exactly one value
  }
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  out_ << '{';
  push(Ctx::Object);
  needComma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  if (top() != Ctx::Object) throw std::logic_error("JsonWriter: endObject outside object");
  out_ << '}';
  stack_.pop_back();
  needComma_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  out_ << '[';
  push(Ctx::Array);
  needComma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  if (top() != Ctx::Array) throw std::logic_error("JsonWriter: endArray outside array");
  out_ << ']';
  stack_.pop_back();
  needComma_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (top() != Ctx::Object) throw std::logic_error("JsonWriter: key outside object");
  if (needComma_.back()) out_ << ',';
  needComma_.back() = true;
  out_ << '"' << escape(name) << "\":";
  push(Ctx::ExpectValue);
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  beforeValue();
  out_ << '"' << escape(v) << '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  out_ << v;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  if (!std::isfinite(v)) throw std::domain_error("JsonWriter: non-finite double");
  std::ostringstream tmp;
  tmp.precision(12);
  tmp << v;
  out_ << tmp.str();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  out_ << (v ? "true" : "false");
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!done_ && !stack_.empty()) throw std::logic_error("JsonWriter: document incomplete");
  return out_.str();
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace pmsched
