#include "support/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace pmsched {

void JsonWriter::beforeValue() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (top() == Ctx::Object) throw std::logic_error("JsonWriter: expected key inside object");
  if (top() == Ctx::Array) {
    if (needComma_.back()) out_ << ',';
    needComma_.back() = true;
  } else if (top() == Ctx::ExpectValue) {
    stack_.pop_back();  // the pending key consumed exactly one value
  }
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  out_ << '{';
  push(Ctx::Object);
  needComma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  if (top() != Ctx::Object) throw std::logic_error("JsonWriter: endObject outside object");
  out_ << '}';
  stack_.pop_back();
  needComma_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  out_ << '[';
  push(Ctx::Array);
  needComma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  if (top() != Ctx::Array) throw std::logic_error("JsonWriter: endArray outside array");
  out_ << ']';
  stack_.pop_back();
  needComma_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (top() != Ctx::Object) throw std::logic_error("JsonWriter: key outside object");
  if (needComma_.back()) out_ << ',';
  needComma_.back() = true;
  out_ << '"' << escape(name) << "\":";
  push(Ctx::ExpectValue);
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  beforeValue();
  out_ << '"' << escape(v) << '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  out_ << v;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  if (!std::isfinite(v)) throw std::domain_error("JsonWriter: non-finite double");
  std::ostringstream tmp;
  tmp.precision(12);
  tmp << v;
  out_ << tmp.str();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  out_ << (v ? "true" : "false");
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!done_ && !stack_.empty()) throw std::logic_error("JsonWriter: document incomplete");
  return out_.str();
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---- JsonValue -------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

JsonValue JsonValue::makeBool(bool v) {
  JsonValue out;
  out.kind_ = Kind::Bool;
  out.boolean_ = v;
  return out;
}

JsonValue JsonValue::makeInt(std::int64_t v) {
  JsonValue out;
  out.kind_ = Kind::Number;
  out.integral_ = true;
  out.int_ = v;
  out.double_ = static_cast<double>(v);
  return out;
}

JsonValue JsonValue::makeDouble(double v) {
  JsonValue out;
  out.kind_ = Kind::Number;
  out.double_ = v;
  out.int_ = static_cast<std::int64_t>(v);
  return out;
}

JsonValue JsonValue::makeString(std::string v) {
  JsonValue out;
  out.kind_ = Kind::String;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::makeArray(std::vector<JsonValue> items) {
  JsonValue out;
  out.kind_ = Kind::Array;
  out.items_ = std::move(items);
  return out;
}

JsonValue JsonValue::makeObject(std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue out;
  out.kind_ = Kind::Object;
  out.members_ = std::move(members);
  return out;
}

// ---- parser ----------------------------------------------------------------

namespace {

/// Recursive-descent parser over a string_view. Every throw carries the
/// current byte offset; the depth guard turns adversarial nesting into a
/// diagnostic instead of a stack overflow.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parseDocument() {
    skipWs();
    JsonValue v = parseValue(0);
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after the document");
    return v;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(pos_, message);
  }

  [[nodiscard]] bool atEnd() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  char take() {
    if (atEnd()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    if (atEnd() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void skipWs() {
    while (!atEnd()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  JsonValue parseValue(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    if (atEnd()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parseObject(depth);
      case '[': return parseArray(depth);
      case '"': return JsonValue::makeString(parseString());
      case 't': parseKeyword("true"); return JsonValue::makeBool(true);
      case 'f': parseKeyword("false"); return JsonValue::makeBool(false);
      case 'n': parseKeyword("null"); return JsonValue::makeNull();
      default: return parseNumber();
    }
  }

  void parseKeyword(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) fail("invalid literal");
    pos_ += word.size();
  }

  JsonValue parseObject(std::size_t depth) {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skipWs();
    if (!atEnd() && peek() == '}') {
      ++pos_;
      return JsonValue::makeObject(std::move(members));
    }
    for (;;) {
      skipWs();
      if (atEnd() || peek() != '"') fail("expected object key string");
      std::string key = parseString();
      for (const auto& [k, v] : members)
        if (k == key) fail("duplicate object key '" + key + "'");
      skipWs();
      expect(':');
      skipWs();
      members.emplace_back(std::move(key), parseValue(depth + 1));
      skipWs();
      const char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue::makeObject(std::move(members));
  }

  JsonValue parseArray(std::size_t depth) {
    expect('[');
    std::vector<JsonValue> items;
    skipWs();
    if (!atEnd() && peek() == ']') {
      ++pos_;
      return JsonValue::makeArray(std::move(items));
    }
    for (;;) {
      skipWs();
      items.push_back(parseValue(depth + 1));
      skipWs();
      const char c = take();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue::makeArray(std::move(items));
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      const unsigned char u = static_cast<unsigned char>(c);
      if (c == '"') break;
      if (c == '\\') {
        const char e = take();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': appendEscapedCodepoint(out); break;
          default: fail("invalid escape sequence");
        }
      } else if (u < 0x20) {
        fail("unescaped control character in string");
      } else if (u < 0x80) {
        out += c;
      } else {
        appendUtf8Sequence(out, u);
      }
    }
    return out;
  }

  /// Validate one multi-byte UTF-8 sequence whose lead byte was already
  /// consumed; garbage bytes (stray continuations, overlong forms, lone
  /// 0xFF) are rejected with an offset instead of being passed through.
  void appendUtf8Sequence(std::string& out, unsigned char lead) {
    int extra = 0;
    unsigned cp = 0;
    if ((lead & 0xE0) == 0xC0) { extra = 1; cp = lead & 0x1F; }
    else if ((lead & 0xF0) == 0xE0) { extra = 2; cp = lead & 0x0F; }
    else if ((lead & 0xF8) == 0xF0) { extra = 3; cp = lead & 0x07; }
    else fail("invalid UTF-8 byte in string");
    std::string seq(1, static_cast<char>(lead));
    for (int i = 0; i < extra; ++i) {
      const char c = take();
      if ((static_cast<unsigned char>(c) & 0xC0) != 0x80)
        fail("truncated UTF-8 sequence in string");
      cp = (cp << 6) | (static_cast<unsigned char>(c) & 0x3F);
      seq += c;
    }
    static constexpr unsigned kMinForLen[4] = {0, 0x80, 0x800, 0x10000};
    if (cp < kMinForLen[extra] || cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF))
      fail("invalid UTF-8 codepoint in string");
    out += seq;
  }

  unsigned parseHex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape digit");
    }
    return v;
  }

  void appendEscapedCodepoint(std::string& out) {
    unsigned cp = parseHex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (atEnd() || take() != '\\' || take() != 'u') fail("unpaired high surrogate");
      const unsigned lo = parseHex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (!atEnd() && peek() == '-') ++pos_;
    if (atEnd() || peek() < '0' || peek() > '9') fail("invalid number");
    if (peek() == '0') ++pos_;  // no leading zeros
    else while (!atEnd() && peek() >= '0' && peek() <= '9') ++pos_;
    bool integral = true;
    if (!atEnd() && peek() == '.') {
      integral = false;
      ++pos_;
      if (atEnd() || peek() < '0' || peek() > '9') fail("digits required after '.'");
      while (!atEnd() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!atEnd() && (peek() == '+' || peek() == '-')) ++pos_;
      if (atEnd() || peek() < '0' || peek() > '9') fail("digits required in exponent");
      while (!atEnd() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0')
        return JsonValue::makeInt(static_cast<std::int64_t>(v));
      // int64 overflow: fall through to the double representation.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(d)) fail("number out of range");
    return JsonValue::makeDouble(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parseJson(std::string_view text) { return JsonParser(text).parseDocument(); }

}  // namespace pmsched
