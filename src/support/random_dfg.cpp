#include "support/random_dfg.hpp"

#include <string>
#include <vector>

#include "support/rng.hpp"

namespace pmsched {

Graph randomLayeredDfg(int layers, int perLayer, std::uint64_t seed) {
  Rng rng(seed);
  Graph g("random_" + std::to_string(layers) + "x" + std::to_string(perLayer));
  std::vector<NodeId> previous;
  for (int i = 0; i < perLayer; ++i)
    previous.push_back(g.addInput("in" + std::to_string(i)));

  int counter = 0;
  for (int layer = 0; layer < layers; ++layer) {
    std::vector<NodeId> current;
    for (int i = 0; i < perLayer; ++i) {
      const NodeId a = previous[rng.below(previous.size())];
      const NodeId b = previous[rng.below(previous.size())];
      const std::string name = "n" + std::to_string(counter++);
      if (counter % 3 == 0) {
        const NodeId c = previous[rng.below(previous.size())];
        const NodeId d = previous[rng.below(previous.size())];
        const NodeId cmp = g.addOp(OpKind::CmpGt, {c, d}, name + "_c");
        current.push_back(g.addMux(cmp, a, b, name));
      } else if (counter % 7 == 0) {
        current.push_back(g.addOp(OpKind::Mul, {a, b}, name));
      } else {
        current.push_back(
            g.addOp(counter % 2 == 0 ? OpKind::Add : OpKind::Sub, {a, b}, name));
      }
    }
    previous = current;
  }
  for (std::size_t i = 0; i < previous.size(); ++i)
    g.addOutput(previous[i], "out" + std::to_string(i));
  return g;
}

}  // namespace pmsched
