#pragma once
// Small string helpers shared across modules.

#include <string>
#include <string_view>
#include <vector>

namespace pmsched {

/// Format a double like the paper's tables: fixed `places` decimals.
[[nodiscard]] std::string fixed(double v, int places);

/// Join the elements of `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Split `text` at `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
[[nodiscard]] bool startsWith(std::string_view text, std::string_view prefix);

/// Lower-case ASCII copy.
[[nodiscard]] std::string toLower(std::string_view text);

/// A legal VHDL identifier derived from an arbitrary node name.
[[nodiscard]] std::string sanitizeIdentifier(std::string_view name);

}  // namespace pmsched
