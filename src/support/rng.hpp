#pragma once
// Deterministic pseudo-random number generation.
//
// Everything that consumes randomness in this project (random input vectors
// for the netlist power simulation, random DFGs for scheduler stress tests)
// takes an explicit Rng so experiments are reproducible from a seed printed
// in the bench output.

#include <cstdint>
#include <limits>

namespace pmsched {

/// xorshift128+ generator: fast, decent quality, fully deterministic across
/// platforms (unlike std::mt19937 distributions, whose mapping is
/// implementation-defined through std::uniform_int_distribution).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding, as recommended by Vigna, so nearby seeds diverge.
    auto next = [&seed]() {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  std::uint64_t next() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, bound). bound == 0 yields 0.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                                std::numeric_limits<std::uint64_t>::max() % bound;
    std::uint64_t v = next();
    while (v >= limit) v = next();
    return v % bound;
  }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool coin() { return (next() & 1U) != 0; }

  /// n-bit random word, n in [0, 64].
  std::uint64_t bits(unsigned n) {
    if (n == 0) return 0;
    if (n >= 64) return next();
    return next() >> (64 - n);
  }

  double unit() {  // uniform in [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t s0_ = 0;
  std::uint64_t s1_ = 0;
};

}  // namespace pmsched
