#include "support/strings.hpp"

#include <cctype>
#include <cstdio>

namespace pmsched {

std::string fixed(double v, int places) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", places, v);
  return buf;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])) != 0) --e;
  return text.substr(b, e - b);
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string toLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string sanitizeIdentifier(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front())) != 0)
    out.insert(out.begin(), 'n');
  // VHDL forbids trailing/double underscores; collapse them.
  std::string collapsed;
  for (const char c : out) {
    if (c == '_' && (collapsed.empty() || collapsed.back() == '_')) continue;
    collapsed += c;
  }
  if (!collapsed.empty() && collapsed.back() == '_') collapsed.pop_back();
  return collapsed.empty() ? "n" : collapsed;
}

}  // namespace pmsched
