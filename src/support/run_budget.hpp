#pragma once
// RunBudget — cooperative bounds for one pipeline run.
//
// Every long-running stage (the power-management transform, the exact DFS,
// shared gating, activation analysis, force-directed scheduling, ProbeFarm
// lanes) accepts an optional `const RunBudget*` and polls it at its natural
// decision points: once per candidate, per DFS node, per wave slice. The
// budget never interrupts anything — when it reports exhaustion the stage
// finishes its current unit of work and degrades to a defined, still-correct
// result (see docs/ROBUSTNESS.md for the per-stage contract).
//
// Thread-safety: exhaustion queries and probe charging are lock-free and may
// run on any lane; the degradation log takes a mutex (cold path — it is
// written at most once per stage). Configuration (deadline, caps) must
// happen before the run starts. Polling is read-only with respect to the
// algorithms themselves, so a run that never exhausts its budget is
// bit-identical to a run with no budget at all — the differential suites
// rely on that.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace pmsched {

/// Cooperative cancellation flag. cancel() may be called from any thread
/// (the whole point); polling is one acquire load.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return flag_.load(std::memory_order_acquire);
  }
  void reset() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// One "stage stopped early" record: which stage, which budget ran out, and
/// a human-readable note about what the degraded result still guarantees.
struct DegradeEvent {
  std::string stage;
  BudgetKind kind = BudgetKind::Deadline;
  std::string detail;
};

class RunBudget {
 public:
  RunBudget() = default;  // unlimited: exhausted() is always false
  RunBudget(const RunBudget&) = delete;
  RunBudget& operator=(const RunBudget&) = delete;

  // ---- configuration (before the run) ------------------------------------

  /// Wall-clock deadline `fromNow` into the future (steady clock).
  void setDeadline(std::chrono::milliseconds fromNow) {
    deadline_ = Clock::now() + fromNow;
    hasDeadline_ = true;
  }
  /// Total oracle probes across all consumer-side loops (0 = unlimited).
  void setProbeCap(std::uint64_t cap) { probeCap_ = cap; }
  /// BddManager node-arena cap per manager (0 = unlimited).
  void setBddNodeCap(std::size_t cap) { bddNodeCap_ = cap; }
  /// DnfEngine literal-arena cap (0 = unlimited).
  void setDnfTermCap(std::size_t cap) { dnfTermCap_ = cap; }

  [[nodiscard]] std::size_t bddNodeCap() const noexcept { return bddNodeCap_; }
  [[nodiscard]] std::size_t dnfTermCap() const noexcept { return dnfTermCap_; }

  // ---- cancellation -------------------------------------------------------

  [[nodiscard]] CancelToken& token() noexcept { return token_; }
  void cancel() noexcept { token_.cancel(); }
  [[nodiscard]] bool cancelled() const noexcept { return token_.cancelled(); }

  // ---- polling (any thread) -----------------------------------------------

  /// True once any bound is hit; sticky (later polls are one relaxed load).
  [[nodiscard]] bool exhausted() const noexcept {
    if (state_.load(std::memory_order_relaxed) >= 0) return true;
    if (token_.cancelled()) {
      trip(BudgetKind::Cancelled);
      return true;
    }
    if (hasDeadline_ && Clock::now() >= deadline_) {
      trip(BudgetKind::Deadline);
      return true;
    }
    return false;
  }

  /// The bound that tripped first, if any.
  [[nodiscard]] std::optional<BudgetKind> exhaustedWhy() const noexcept {
    const int s = state_.load(std::memory_order_relaxed);
    if (s < 0) return std::nullopt;
    return static_cast<BudgetKind>(s);
  }

  /// Count consumer-side oracle probes against the probe cap. Charged only
  /// on the consumer thread, so WHEN the cap trips is deterministic. Const
  /// for the same reason as noteDegraded.
  void chargeProbes(std::uint64_t n = 1) const noexcept {
    if (probeCap_ == 0) return;
    if (probes_.fetch_add(n, std::memory_order_relaxed) + n > probeCap_)
      trip(BudgetKind::Probes);
  }
  [[nodiscard]] std::uint64_t probesCharged() const noexcept {
    return probes_.load(std::memory_order_relaxed);
  }

  // ---- degradation log ----------------------------------------------------

  /// Record that `stage` returned a degraded (but still correct) result.
  /// Deliberately does NOT trip the exhaustion flag: a stage-local cap (a
  /// full BDD arena, a too-wide probability) says nothing about the global
  /// bounds, and later stages should still run at full quality. Global
  /// bounds trip themselves via exhausted()/chargeProbes.
  /// Const because stages receive `const RunBudget*`: the log is
  /// observational metadata, like the sticky trip state.
  void noteDegraded(std::string stage, BudgetKind kind, std::string detail) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(DegradeEvent{std::move(stage), kind, std::move(detail)});
  }
  [[nodiscard]] bool degraded() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return !events_.empty();
  }
  [[nodiscard]] std::vector<DegradeEvent> events() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// First-trip wins: the recorded kind is the bound that fired first.
  void trip(BudgetKind kind) const noexcept {
    int expected = -1;
    state_.compare_exchange_strong(expected, static_cast<int>(kind),
                                   std::memory_order_relaxed);
  }

  CancelToken token_;
  Clock::time_point deadline_{};
  bool hasDeadline_ = false;
  std::uint64_t probeCap_ = 0;
  std::size_t bddNodeCap_ = 0;
  std::size_t dnfTermCap_ = 0;

  mutable std::atomic<int> state_{-1};  ///< -1 = fine, else BudgetKind
  mutable std::atomic<std::uint64_t> probes_{0};

  mutable std::mutex mutex_;
  mutable std::vector<DegradeEvent> events_;
};

}  // namespace pmsched
