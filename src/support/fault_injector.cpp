#include "support/fault_injector.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace pmsched {

namespace fault {

namespace {

// The registry of every point() call compiled into the library. Kept here
// (not distributed) so the CI fault matrix and docs/ROBUSTNESS.md have one
// authoritative list to iterate.
constexpr std::array<std::string_view, 16> kSites = {
    "parse-stmt",      // textio: per accepted statement (input path)
    "bdd-node",        // BddManager::makeNode (allocation)
    "bdd-sift",        // BddManager::swapLevels (pre-mutation, reordering)
    "dnf-intern",      // DnfEngine term interning (allocation)
    "farm-stage",      // ProbeFarm::stage (consumer-side handoff)
    "farm-run",        // ProbeFarm lane job execution (lane-side handoff)
    "oracle-commit",   // TimeFrameOracle::commit (commit)
    "gating-commit",   // shared-gating acceptance (commit)
    "serve-accept",    // server admission (clean: typed rejection, keeps serving)
    "serve-frame",     // server frame decode (clean: typed error, keeps serving)
    "cache-insert",    // design-cache insert (clean: result served, not cached)
    "worker-crash",    // server worker, outside the per-job catch (clean:
                       // supervised — arenas rebuilt, request retried once)
    "cache-journal-write",   // cache persistence append (clean: not journaled)
    "cache-snapshot-load",   // cache persistence load (clean: cold start)
    "drain-deadline",  // drain entry (clean: queued work failed out typed)
    "explore-point",   // explore sweep, per point (clean: point skipped
                       // typed, the rest of the front still emits)
};

/// One armed "site:nth" entry. Several entries may name the same site (a
/// chaos schedule like "worker-crash:1,worker-crash:3" fires on the 1st AND
/// 3rd hit); all entries for one site share that site's hit counter.
struct ArmedEntry {
  std::size_t siteIndex;
  std::uint64_t targetHit;
};

std::atomic<bool> armed{false};
std::array<std::atomic<std::uint64_t>, kSites.size()> hitsBySite{};
std::vector<ArmedEntry> armedEntries;  // written only while disarmed (see arm())
std::once_flag envOnce;

std::size_t siteIndex(std::string_view site) {
  for (std::size_t i = 0; i < kSites.size(); ++i)
    if (kSites[i] == site) return i;
  return kSites.size();  // unknown site: armed entry that can never fire
}

void armLocked(std::string_view spec) {
  armed.store(false, std::memory_order_release);
  for (auto& h : hitsBySite) h.store(0, std::memory_order_relaxed);
  armedEntries.clear();
  if (spec.empty()) return;
  // Comma-separated schedule of site[:nth] entries (a single entry is the
  // original PMSCHED_FAULT grammar unchanged).
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t comma = spec.find(',', begin);
    const std::string_view one =
        spec.substr(begin, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - begin);
    begin = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (one.empty()) continue;
    const std::size_t colon = one.find(':');
    ArmedEntry entry{siteIndex(one.substr(0, colon)), 1};
    if (colon != std::string_view::npos) {
      const std::string n(one.substr(colon + 1));
      char* end = nullptr;
      const unsigned long long v = std::strtoull(n.c_str(), &end, 10);
      entry.targetHit = (end && *end == '\0' && v > 0) ? v : 1;
    }
    armedEntries.push_back(entry);
  }
  if (!armedEntries.empty()) armed.store(true, std::memory_order_release);
}

void parseEnvOnce() {
  std::call_once(envOnce, [] {
    if (const char* env = std::getenv("PMSCHED_FAULT")) armLocked(env);
  });
}

}  // namespace

std::span<const std::string_view> sites() { return kSites; }

void arm(std::string_view spec) {
  // Suppress a later (first-point) env parse from clobbering the test's arm.
  std::call_once(envOnce, [] {});
  armLocked(spec);
}

void point(const char* site) {
  if (!armed.load(std::memory_order_acquire)) {
    // The env variable must be honored even when the first point() is the
    // first fault-aware code to run; call_once makes the parse race-free.
    parseEnvOnce();
    if (!armed.load(std::memory_order_acquire)) return;
  }
  const std::string_view name(site);
  std::size_t index = kSites.size();
  for (const ArmedEntry& entry : armedEntries) {
    if (entry.siteIndex < kSites.size() && kSites[entry.siteIndex] == name) {
      index = entry.siteIndex;
      break;
    }
  }
  if (index == kSites.size()) return;  // this site is not in the schedule
  const std::uint64_t hit = hitsBySite[index].fetch_add(1, std::memory_order_relaxed) + 1;
  for (const ArmedEntry& entry : armedEntries)
    if (entry.siteIndex == index && entry.targetHit == hit)
      throw FaultInjectedError(site, hit);
}

}  // namespace fault

}  // namespace pmsched
