#include "support/fault_injector.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <mutex>

namespace pmsched {

namespace fault {

namespace {

// The registry of every point() call compiled into the library. Kept here
// (not distributed) so the CI fault matrix and docs/ROBUSTNESS.md have one
// authoritative list to iterate.
constexpr std::array<std::string_view, 11> kSites = {
    "parse-stmt",      // textio: per accepted statement (input path)
    "bdd-node",        // BddManager::makeNode (allocation)
    "bdd-sift",        // BddManager::swapLevels (pre-mutation, reordering)
    "dnf-intern",      // DnfEngine term interning (allocation)
    "farm-stage",      // ProbeFarm::stage (consumer-side handoff)
    "farm-run",        // ProbeFarm lane job execution (lane-side handoff)
    "oracle-commit",   // TimeFrameOracle::commit (commit)
    "gating-commit",   // shared-gating acceptance (commit)
    "serve-accept",    // server admission (clean: typed rejection, keeps serving)
    "serve-frame",     // server frame decode (clean: typed error, keeps serving)
    "cache-insert",    // design-cache insert (clean: result served, not cached)
};

std::atomic<bool> armed{false};
std::atomic<std::uint64_t> hits{0};
std::uint64_t targetHit = 1;
std::string armedSite;  // written only while disarmed (see arm())
std::once_flag envOnce;

void armLocked(std::string_view spec) {
  armed.store(false, std::memory_order_release);
  hits.store(0, std::memory_order_relaxed);
  armedSite.clear();
  targetHit = 1;
  if (spec.empty()) return;
  const std::size_t colon = spec.find(':');
  armedSite = std::string(spec.substr(0, colon));
  if (colon != std::string_view::npos) {
    const std::string n(spec.substr(colon + 1));
    char* end = nullptr;
    const unsigned long long v = std::strtoull(n.c_str(), &end, 10);
    targetHit = (end && *end == '\0' && v > 0) ? v : 1;
  }
  armed.store(true, std::memory_order_release);
}

void parseEnvOnce() {
  std::call_once(envOnce, [] {
    if (const char* env = std::getenv("PMSCHED_FAULT")) armLocked(env);
  });
}

}  // namespace

std::span<const std::string_view> sites() { return kSites; }

void arm(std::string_view spec) {
  // Suppress a later (first-point) env parse from clobbering the test's arm.
  std::call_once(envOnce, [] {});
  armLocked(spec);
}

void point(const char* site) {
  if (!armed.load(std::memory_order_acquire)) {
    // The env variable must be honored even when the first point() is the
    // first fault-aware code to run; call_once makes the parse race-free.
    parseEnvOnce();
    if (!armed.load(std::memory_order_acquire)) return;
  }
  if (armedSite != site) return;
  if (hits.fetch_add(1, std::memory_order_relaxed) + 1 == targetHit)
    throw FaultInjectedError(site, targetHit);
}

}  // namespace fault

}  // namespace pmsched
