#include "support/rational.hpp"

#include <cmath>
#include <cstdlib>

namespace pmsched {

std::string Rational::toFixed(int places) const {
  if (places < 0 || places > 15) throw std::domain_error("Rational::toFixed: places out of range");
  std::int64_t scale = 1;
  for (int i = 0; i < places; ++i) scale = mulChecked(scale, 10);

  const bool negative = num_ < 0;
  const auto absNum = static_cast<unsigned __int128>(negative ? -static_cast<__int128>(num_)
                                                              : static_cast<__int128>(num_));
  const auto scaled = absNum * static_cast<unsigned __int128>(scale);
  const auto den = static_cast<unsigned __int128>(den_);
  unsigned __int128 q = scaled / den;
  const unsigned __int128 rem = scaled % den;
  if (rem * 2 >= den) ++q;  // round half away from zero

  const auto whole = static_cast<std::uint64_t>(q / static_cast<unsigned __int128>(scale));
  const auto frac = static_cast<std::uint64_t>(q % static_cast<unsigned __int128>(scale));

  std::string out = negative && (whole != 0 || frac != 0) ? "-" : "";
  out += std::to_string(whole);
  if (places > 0) {
    std::string f = std::to_string(frac);
    out += '.';
    out += std::string(static_cast<std::size_t>(places) - f.size(), '0');
    out += f;
  }
  return out;
}

std::string Rational::toString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

}  // namespace pmsched
