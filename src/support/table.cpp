#include "support/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pmsched {

AsciiTable::AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("AsciiTable: empty header");
  alignments_.assign(header_.size(), Align::Right);
  alignments_.front() = Align::Left;
}

void AsciiTable::setAlignments(std::vector<Align> alignments) {
  if (alignments.size() != header_.size())
    throw std::invalid_argument("AsciiTable: alignment count mismatch");
  alignments_ = std::move(alignments);
}

void AsciiTable::addRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("AsciiTable: cell count mismatch");
  rows_.push_back(Row{std::move(cells), false});
}

void AsciiTable::addSeparator() { rows_.push_back(Row{{}, true}); }

std::string AsciiTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      width[c] = std::max(width[c], row.cells[c].size());
  }

  auto pad = [&](const std::string& s, std::size_t c) {
    const std::size_t fill = width[c] - s.size();
    if (alignments_[c] == Align::Left) return s + std::string(fill, ' ');
    return std::string(fill, ' ') + s;
  };

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };

  rule();
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) os << ' ' << pad(header_[c], c) << " |";
  os << '\n';
  rule();
  for (const Row& row : rows_) {
    if (row.separator) {
      rule();
      continue;
    }
    os << '|';
    for (std::size_t c = 0; c < row.cells.size(); ++c) os << ' ' << pad(row.cells[c], c) << " |";
    os << '\n';
  }
  rule();
  return os.str();
}

}  // namespace pmsched
