#pragma once
// Seeded random layered DFGs, shared by the scheduler stress tests and the
// perf benchmarks so both exercise identical graph populations.

#include <cstdint>

#include "cdfg/graph.hpp"

namespace pmsched {

/// Random layered DFG with conditionals: `layers` layers of `perLayer`
/// binary ops; every third op is a mux selected by a fresh comparison and
/// every seventh a multiply. Deterministic in (layers, perLayer, seed).
[[nodiscard]] Graph randomLayeredDfg(int layers, int perLayer, std::uint64_t seed);

}  // namespace pmsched
