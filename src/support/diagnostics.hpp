#pragma once
// Error reporting shared by the DSL frontend and the synthesis passes.

#include <cstddef>
#include <stdexcept>
#include <string>

namespace pmsched {

/// A position in DSL source text (1-based line/column, 0 meaning unknown).
struct SourceLoc {
  std::size_t line = 0;
  std::size_t column = 0;

  [[nodiscard]] std::string toString() const {
    if (line == 0) return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

/// Raised by the frontend for malformed source text.
class ParseError : public std::runtime_error {
 public:
  ParseError(SourceLoc loc, const std::string& message)
      : std::runtime_error(loc.toString() + ": " + message), loc_(loc) {}

  [[nodiscard]] SourceLoc loc() const { return loc_; }

 private:
  SourceLoc loc_;
};

/// Raised by synthesis passes when the input violates a structural
/// precondition (cyclic graph, dangling operand, malformed mux, ...).
class SynthesisError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Raised when constraints (steps/resources) admit no schedule.
class InfeasibleError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

}  // namespace pmsched
