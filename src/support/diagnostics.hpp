#pragma once
// Error reporting shared by the DSL frontend and the synthesis passes.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace pmsched {

/// A position in DSL source text (1-based line/column, 0 meaning unknown).
struct SourceLoc {
  std::size_t line = 0;
  std::size_t column = 0;

  [[nodiscard]] std::string toString() const {
    if (line == 0) return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

/// Raised by the frontend for malformed source text.
class ParseError : public std::runtime_error {
 public:
  ParseError(SourceLoc loc, const std::string& message)
      : std::runtime_error(loc.toString() + ": " + message), loc_(loc) {}

  [[nodiscard]] SourceLoc loc() const { return loc_; }

 private:
  SourceLoc loc_;
};

/// Raised by synthesis passes when the input violates a structural
/// precondition (cyclic graph, dangling operand, malformed mux, ...).
class SynthesisError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Raised when constraints (steps/resources) admit no schedule.
class InfeasibleError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Which resource of a RunBudget (or a hard engine limit) ran out.
enum class BudgetKind {
  Deadline,       ///< wall-clock deadline passed
  Cancelled,      ///< cooperative CancelToken fired
  Probes,         ///< oracle probe cap reached
  BddNodes,       ///< BddManager arena node cap reached
  DnfTerms,       ///< DnfEngine literal-arena cap reached
  RationalWidth,  ///< exact probability exceeds Rational's 62-bit denominator
  Fault,          ///< injected fault (tests / PMSCHED_FAULT)
};

[[nodiscard]] constexpr const char* budgetKindName(BudgetKind k) {
  switch (k) {
    case BudgetKind::Deadline: return "deadline";
    case BudgetKind::Cancelled: return "cancelled";
    case BudgetKind::Probes: return "probe-cap";
    case BudgetKind::BddNodes: return "bdd-node-cap";
    case BudgetKind::DnfTerms: return "dnf-term-cap";
    case BudgetKind::RationalWidth: return "rational-width";
    case BudgetKind::Fault: return "fault";
  }
  return "unknown";
}

/// Typed error for hard budget violations — the BudgetExceeded family the
/// CLI maps to its own exit code. Stages that can degrade catch it and
/// return a best-so-far result instead of letting it escape; `detail`
/// carries the kind-specific magnitude (support width for RationalWidth,
/// node count for BddNodes, ...).
class BudgetExceededError : public std::runtime_error {
 public:
  BudgetExceededError(BudgetKind kind, const std::string& message, std::uint64_t detail = 0)
      : std::runtime_error(std::string(budgetKindName(kind)) + ": " + message),
        kind_(kind),
        detail_(detail) {}

  [[nodiscard]] BudgetKind kind() const { return kind_; }
  [[nodiscard]] std::uint64_t detail() const { return detail_; }

 private:
  BudgetKind kind_;
  std::uint64_t detail_;
};

/// One structured diagnostic record: what the CLI prints (one line per
/// record, machine-grepped by the corpus/fault-matrix scripts) instead of a
/// raw what() string or an abort.
struct Diagnostic {
  std::string category;  ///< "usage" | "parse" | "budget" | "infeasible" | "internal"
  SourceLoc loc;         ///< 0/0 when not tied to source text
  std::string message;

  [[nodiscard]] std::string toString() const {
    std::string out = "error[" + category + "]";
    if (loc.line != 0) out += " " + loc.toString();
    return out + ": " + message;
  }
};

}  // namespace pmsched
