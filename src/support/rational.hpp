#pragma once
// Exact rational arithmetic for activation probabilities.
//
// The power-management analysis of Monteiro et al. (DAC'96) assumes every
// multiplexor selects each input with probability 1/2, so all execution
// probabilities are dyadic rationals. Floating point would accumulate error
// across the inclusion-exclusion sums used for shared cones; this class keeps
// every probability exact so Table II averages reproduce to the last digit.

#include <cstdint>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>

namespace pmsched {

/// Exact rational number with 64-bit numerator/denominator.
///
/// Invariants: den > 0; gcd(|num|, den) == 1. All arithmetic throws
/// std::overflow_error on overflow rather than silently wrapping.
class Rational {
 public:
  constexpr Rational() = default;
  constexpr Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT(google-explicit-constructor)

  Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
    if (den_ == 0) throw std::domain_error("Rational: zero denominator");
    normalize();
  }

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }

  [[nodiscard]] static Rational zero() { return Rational{0}; }
  [[nodiscard]] static Rational one() { return Rational{1}; }
  /// 2^-k, the probability of one outcome of k fair coins.
  [[nodiscard]] static Rational dyadic(unsigned k) {
    if (k > 62) throw std::overflow_error("Rational::dyadic: exponent too large");
    return Rational{1, std::int64_t{1} << k};
  }

  friend Rational operator+(const Rational& a, const Rational& b) {
    const std::int64_t g = std::gcd(a.den_, b.den_);
    const std::int64_t lhs = mulChecked(a.num_, b.den_ / g);
    const std::int64_t rhs = mulChecked(b.num_, a.den_ / g);
    return Rational{addChecked(lhs, rhs), mulChecked(a.den_, b.den_ / g)};
  }
  friend Rational operator-(const Rational& a, const Rational& b) { return a + (-b); }
  friend Rational operator*(const Rational& a, const Rational& b) {
    const std::int64_t g1 = std::gcd(std::abs(a.num_), b.den_);
    const std::int64_t g2 = std::gcd(std::abs(b.num_), a.den_);
    return Rational{mulChecked(a.num_ / g1, b.num_ / g2),
                    mulChecked(a.den_ / g2, b.den_ / g1)};
  }
  friend Rational operator/(const Rational& a, const Rational& b) {
    if (b.num_ == 0) throw std::domain_error("Rational: division by zero");
    return a * Rational{b.den_, b.num_};
  }
  Rational operator-() const {
    Rational r;
    r.num_ = -num_;
    r.den_ = den_;
    return r;
  }

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) { return !(a == b); }
  friend bool operator<(const Rational& a, const Rational& b) {
    // Compare via cross multiplication in 128-bit to avoid overflow.
    return static_cast<__int128>(a.num_) * b.den_ < static_cast<__int128>(b.num_) * a.den_;
  }
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator<=(const Rational& a, const Rational& b) { return !(b < a); }
  friend bool operator>=(const Rational& a, const Rational& b) { return !(a < b); }

  [[nodiscard]] double toDouble() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// Render with fixed decimal places (round half away from zero), e.g. "5.50".
  [[nodiscard]] std::string toFixed(int places) const;

  /// "num/den" (or just "num" when integral).
  [[nodiscard]] std::string toString() const;

  friend std::ostream& operator<<(std::ostream& os, const Rational& r) {
    return os << r.toString();
  }

 private:
  void normalize() {
    if (den_ < 0) {
      num_ = -num_;
      den_ = -den_;
    }
    const std::int64_t g = std::gcd(std::abs(num_), den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
  }

  static std::int64_t addChecked(std::int64_t a, std::int64_t b) {
    std::int64_t out = 0;
    if (__builtin_add_overflow(a, b, &out)) throw std::overflow_error("Rational: add overflow");
    return out;
  }
  static std::int64_t mulChecked(std::int64_t a, std::int64_t b) {
    std::int64_t out = 0;
    if (__builtin_mul_overflow(a, b, &out)) throw std::overflow_error("Rational: mul overflow");
    return out;
  }

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

}  // namespace pmsched
