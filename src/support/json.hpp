#pragma once
// Minimal JSON writer used by benches to emit machine-readable results next
// to the human-readable tables (so EXPERIMENTS.md numbers can be regenerated
// by a script rather than transcribed).

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace pmsched {

/// Streaming JSON writer; produces compact, valid JSON.
///
/// The writer enforces well-formedness dynamically (keys only inside
/// objects, values only where a value is expected) and throws
/// std::logic_error on misuse, which keeps the bench emitters honest.
class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::size_t v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  [[nodiscard]] std::string str() const;

 private:
  enum class Ctx { Top, Object, Array, ExpectValue };

  void beforeValue();
  void push(Ctx c) { stack_.push_back(c); }
  [[nodiscard]] Ctx top() const { return stack_.empty() ? Ctx::Top : stack_.back(); }

  static std::string escape(const std::string& s);

  std::ostringstream out_;
  std::vector<Ctx> stack_;
  std::vector<bool> needComma_{false};
  bool done_ = false;
};

}  // namespace pmsched
