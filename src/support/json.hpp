#pragma once
// Minimal JSON support: a streaming writer (benches emit machine-readable
// results next to the human-readable tables) and a strict recursive-descent
// parser (the server's JSONL request framing — see docs/SERVER.md).

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pmsched {

/// Streaming JSON writer; produces compact, valid JSON.
///
/// The writer enforces well-formedness dynamically (keys only inside
/// objects, values only where a value is expected) and throws
/// std::logic_error on misuse, which keeps the bench emitters honest.
class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::size_t v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  [[nodiscard]] std::string str() const;

 private:
  enum class Ctx { Top, Object, Array, ExpectValue };

  void beforeValue();
  void push(Ctx c) { stack_.push_back(c); }
  [[nodiscard]] Ctx top() const { return stack_.empty() ? Ctx::Top : stack_.back(); }

  static std::string escape(const std::string& s);

  std::ostringstream out_;
  std::vector<Ctx> stack_;
  std::vector<bool> needComma_{false};
  bool done_ = false;
};

/// Malformed JSON text (byte offset included in the message). Deliberately
/// its own family: the server maps it to a typed "protocol" error response,
/// never to the graph-level ParseError.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(std::size_t offset, const std::string& message)
      : std::runtime_error("offset " + std::to_string(offset) + ": " + message),
        offset_(offset) {}

  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// One parsed JSON value. Numbers keep both views: integral when the text
/// was a pure integer in int64 range, double always.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isNull() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool isBool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool isNumber() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool isInteger() const { return kind_ == Kind::Number && integral_; }
  [[nodiscard]] bool isString() const { return kind_ == Kind::String; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool isObject() const { return kind_ == Kind::Object; }

  [[nodiscard]] bool asBool() const { return boolean_; }
  [[nodiscard]] std::int64_t asInt() const { return int_; }
  [[nodiscard]] double asDouble() const { return double_; }
  [[nodiscard]] const std::string& asString() const { return string_; }
  [[nodiscard]] const std::vector<JsonValue>& items() const { return items_; }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool v);
  static JsonValue makeInt(std::int64_t v);
  static JsonValue makeDouble(double v);
  static JsonValue makeString(std::string v);
  static JsonValue makeArray(std::vector<JsonValue> items);
  static JsonValue makeObject(std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::Null;
  bool boolean_ = false;
  bool integral_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Strict parse of exactly one JSON document (trailing non-whitespace is an
/// error). Rejects invalid UTF-8 in strings, unpaired surrogates, duplicate
/// object keys, and nesting deeper than 64 levels — every rejection is a
/// JsonParseError with a byte offset, never a crash or an accepted garbage
/// value (the malformed-frame corpus replays on this contract).
[[nodiscard]] JsonValue parseJson(std::string_view text);

}  // namespace pmsched
