#include "support/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pmsched {

ThreadPool::ThreadPool(std::size_t threads) : lanes_(threads == 0 ? 1 : threads) {
  queues_.reserve(lanes_ > 0 ? lanes_ - 1 : 0);
  for (std::size_t i = 1; i < lanes_; ++i) queues_.push_back(std::make_unique<Lane>());
  workers_.reserve(queues_.size());
  for (std::size_t i = 1; i < lanes_; ++i)
    workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleepMutex_);
    closing_ = true;
  }
  sleepCv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(Task task) {
  if (workers_.empty()) {  // single-lane pool: run inline on the caller
    task(0);
    return;
  }
  {
    Lane& lane = *queues_[rr_];
    std::lock_guard<std::mutex> lock(lane.mutex);
    lane.deque.push_back(std::move(task));
  }
  rr_ = (rr_ + 1) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(sleepMutex_);
    ++pendingTasks_;
  }
  sleepCv_.notify_one();
}

bool ThreadPool::popTask(std::size_t lane, Task& out) {
  // Own deque from the back (newest, cache-hot)...
  {
    Lane& own = *queues_[lane - 1];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.deque.empty()) {
      out = std::move(own.deque.back());
      own.deque.pop_back();
      return true;
    }
  }
  // ...then steal the oldest task from any other lane.
  for (std::size_t k = 1; k < queues_.size() + 1; ++k) {
    if (k == lane) continue;
    Lane& other = *queues_[k - 1];
    std::lock_guard<std::mutex> lock(other.mutex);
    if (!other.deque.empty()) {
      out = std::move(other.deque.front());
      other.deque.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(std::size_t lane) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(sleepMutex_);
      sleepCv_.wait(lock, [this] { return pendingTasks_ > 0 || closing_; });
      if (pendingTasks_ == 0) {
        if (closing_) return;
        continue;
      }
      --pendingTasks_;
    }
    Task task;
    if (popTask(lane, task)) {
      task(lane);
    } else {
      // The counted task was stolen between the counter decrement and the
      // pop; give the slot back so its real owner wakes up.
      std::lock_guard<std::mutex> lock(sleepMutex_);
      ++pendingTasks_;
      sleepCv_.notify_one();
    }
  }
}

void ThreadPool::parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                             const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t count = end - begin;
  const std::size_t chunks = (count + grain - 1) / grain;
  if (lanes_ == 1 || chunks == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(0, i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> nextChunk{0};
    std::atomic<std::size_t> doneChunks{0};
    std::mutex mutex;  // guards firstError*; also the completion cv
    std::condition_variable cv;
    std::size_t firstErrorChunk = static_cast<std::size_t>(-1);
    std::exception_ptr firstError;
  };
  auto shared = std::make_shared<Shared>();

  auto runChunks = [this, shared, begin, end, grain, chunks, &fn](std::size_t lane) {
    for (;;) {
      const std::size_t c = shared->nextChunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(lane, i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->mutex);
        // Keep the lowest-index failure so rethrow order is deterministic.
        if (c < shared->firstErrorChunk) {
          shared->firstErrorChunk = c;
          shared->firstError = std::current_exception();
        }
      }
      if (shared->doneChunks.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        std::lock_guard<std::mutex> lock(shared->mutex);
        shared->cv.notify_all();
      }
    }
  };

  // One driver task per pool lane; each claims chunks off the shared
  // cursor, which is what balances the load (stealing handles the case
  // where other submitted work occupies some lanes). Drivers beyond the
  // physical core count only thrash the scheduler — configured lane
  // counts above hardware_concurrency (determinism/stress tests) keep
  // their lane semantics, but the fan-out is capped at the hardware.
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t hwDrivers = hw > 1 ? hw - 1 : 1;
  const std::size_t drivers = std::min({lanes_ - 1, chunks - 1, hwDrivers});
  for (std::size_t d = 0; d < drivers; ++d)
    submit([runChunks](std::size_t lane) { runChunks(lane); });
  runChunks(0);  // caller participates as lane 0

  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(shared->mutex);
    shared->cv.wait(lock, [&] {
      return shared->doneChunks.load(std::memory_order_acquire) == chunks;
    });
    // Move the exception out so the last reference is always released on
    // this thread: a queued driver task may destroy its copy of `shared`
    // long after we return, and exception lifetimes must not cross that.
    err = std::move(shared->firstError);
    shared->firstError = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

namespace {

std::size_t resolveAutoThreads() {
  if (const char* env = std::getenv("PMSCHED_THREADS")) {
    char* endp = nullptr;
    const long v = std::strtol(env, &endp, 10);
    if (endp != env && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t& overrideSlot() {
  static std::size_t value = 0;  // 0 = automatic
  return value;
}

std::optional<SpeculationMode>& speculationOverrideSlot() {
  static std::optional<SpeculationMode> value;
  return value;
}

SpeculationMode resolveAutoSpeculation() {
  if (const char* env = std::getenv("PMSCHED_SPECULATE")) {
    const std::string_view v(env);
    if (v == "force") return SpeculationMode::Force;
    if (v == "off") return SpeculationMode::Off;
  }
  return SpeculationMode::Auto;
}

std::unique_ptr<ThreadPool>& poolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& poolMutex() {
  static std::mutex m;
  return m;
}

}  // namespace

namespace {

/// Per-thread pool override installed by ScopedComputePool. Plain
/// thread_local pointer: reads are uncontended and never touch poolMutex(),
/// so a worker inside a scope cannot deadlock against global pool rebuilds.
thread_local ThreadPool* tlsComputePool = nullptr;

}  // namespace

ScopedComputePool::ScopedComputePool(std::size_t threads)
    : pool_(threads != 0 ? threads : threadCount()), previous_(tlsComputePool) {
  tlsComputePool = &pool_;
}

ScopedComputePool::~ScopedComputePool() { tlsComputePool = previous_; }

std::size_t threadCount() {
  if (tlsComputePool != nullptr) return tlsComputePool->threadCount();
  std::lock_guard<std::mutex> lock(poolMutex());
  const std::size_t o = overrideSlot();
  return o != 0 ? o : resolveAutoThreads();
}

void setThreadCount(std::size_t n) {
  std::lock_guard<std::mutex> lock(poolMutex());
  overrideSlot() = n;
  poolSlot().reset();  // rebuilt at the new count on next access
}

SpeculationMode speculationMode() {
  std::lock_guard<std::mutex> lock(poolMutex());
  const std::optional<SpeculationMode>& o = speculationOverrideSlot();
  return o ? *o : resolveAutoSpeculation();
}

void setSpeculationMode(SpeculationMode mode) {
  std::lock_guard<std::mutex> lock(poolMutex());
  speculationOverrideSlot() = mode;
}

ThreadPool& globalThreadPool() {
  if (tlsComputePool != nullptr) return *tlsComputePool;
  std::lock_guard<std::mutex> lock(poolMutex());
  std::unique_ptr<ThreadPool>& pool = poolSlot();
  const std::size_t o = overrideSlot();
  const std::size_t want = o != 0 ? o : resolveAutoThreads();
  if (!pool || pool->threadCount() != want) pool = std::make_unique<ThreadPool>(want);
  return *pool;
}

}  // namespace pmsched
