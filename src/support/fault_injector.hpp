#pragma once
// FaultInjector — deterministic fault injection for the robustness tests.
//
// Sites are named fault::point("...") calls at allocation, handoff, and
// commit boundaries across the pipeline (the list lives in
// docs/ROBUSTNESS.md and kFaultSites below; the CI fault matrix fires each
// one once). Arming is either the PMSCHED_FAULT=<site>:<nth> environment
// variable (parsed once, on the first point() hit) or fault::arm() from
// tests. A disarmed point costs one relaxed atomic load, so sites may sit
// on hot paths.
//
// An armed site's nth hit (1-based, counted process-wide across threads)
// throws FaultInjectedError. Every site is placed where an exception
// already has a defined propagation path — lane-side sites are captured
// into ProbeFarm results and rethrown on the consumer in candidate order —
// so firing one must produce a structured diagnostic, never a crash.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pmsched {

class FaultInjectedError : public std::runtime_error {
 public:
  FaultInjectedError(std::string_view site, std::uint64_t hit)
      : std::runtime_error("fault injected at site '" + std::string(site) + "' (hit " +
                           std::to_string(hit) + ")"),
        site_(site) {}

  [[nodiscard]] const std::string& site() const { return site_; }

 private:
  std::string site_;
};

namespace fault {

/// Every compiled-in injection site (docs + the CI fault matrix iterate it).
[[nodiscard]] std::span<const std::string_view> sites();

/// Arm a comma-separated schedule of "site[:nth]" entries (nth is 1-based,
/// default 1; entries naming the same site share its hit counter, so
/// "worker-crash:1,worker-crash:3" fires on the 1st AND 3rd hit — this is
/// what the chaos harness arms). Disarm with an empty spec. Overrides
/// PMSCHED_FAULT (same grammar). Not thread-safe against concurrent point()
/// calls — arm before the run starts (tests do; the env variable is parsed
/// before any thread can hit a point).
void arm(std::string_view spec);

/// Fire-check for one site. Cheap when disarmed.
void point(const char* site);

}  // namespace fault

}  // namespace pmsched
