#pragma once
// Small work-stealing thread pool for the parallel speculative-probing
// subsystem (ProbeFarm) and the data-parallel helpers below.
//
// Design constraints, in order:
//  * no external dependencies — std::thread + mutex + condition_variable;
//  * a stable *worker index* for every participating thread, so consumers
//    (the ProbeFarm's per-worker oracle replicas, the activation analysis's
//    per-worker BDD managers) can own one scratch replica per lane with no
//    sharing and no locking on the hot path;
//  * the calling thread participates: it always owns lane 0, pool threads
//    own lanes 1..threadCount()-1. With threadCount() == 1 nothing is ever
//    spawned and every helper degenerates to the plain sequential loop —
//    the PMSCHED_THREADS=1 configuration is bit-for-bit the sequential
//    code path.
//
// Tasks are distributed over per-worker deques: submit() round-robins,
// workers pop their own deque from the back (LIFO, cache-hot) and steal
// from other deques' front (FIFO, oldest first) when theirs drains. The
// pool never detaches work: parallelFor/parallelMap block until every
// iteration ran, and rethrow the first (lowest-index) exception on the
// calling thread, so callers observe sequential error semantics.
//
// Thread count resolution: setThreadCount(n) wins; otherwise the
// PMSCHED_THREADS environment variable; otherwise hardware_concurrency().
// The global pool is created lazily and rebuilt when the count changes;
// rebuilding while work is in flight is the caller's bug (tests switch
// counts only between runs).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pmsched {

class ThreadPool {
 public:
  /// A unit of work; receives the executing worker's lane index
  /// (1..threadCount()-1 for pool threads; lane 0 is the caller's and is
  /// only used by the parallel helpers and inline farm execution).
  using Task = std::function<void(std::size_t lane)>;

  /// `threads` is the TOTAL parallelism (caller lane included); the pool
  /// spawns threads-1 workers. threads == 0 is clamped to 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes, caller included (>= 1).
  [[nodiscard]] std::size_t threadCount() const { return lanes_; }

  /// Enqueue one task. The task may run on any pool lane; submit() from
  /// lane 0 only (the pool is driven by one coordinating thread at a time).
  void submit(Task task);

  /// Run fn(lane, i) for every i in [begin, end), split into `grain`-sized
  /// chunks over all lanes, caller participating. Blocks until done;
  /// rethrows the first (lowest chunk index) exception.
  void parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& fn);

  /// items.size() calls fn(lane, item) collected into a result vector.
  template <typename T, typename F>
  auto parallelMap(const std::vector<T>& items, F&& fn)
      -> std::vector<decltype(fn(std::size_t{0}, items[0]))> {
    using R = decltype(fn(std::size_t{0}, items[0]));
    std::vector<R> out(items.size());
    parallelFor(0, items.size(), 1,
                [&](std::size_t lane, std::size_t i) { out[i] = fn(lane, items[i]); });
    return out;
  }

 private:
  struct Lane {
    std::mutex mutex;
    std::deque<Task> deque;
  };

  void workerLoop(std::size_t lane);
  /// Pop a task for `lane`: own deque back first, then steal oldest from
  /// the others. Returns false when nothing is runnable.
  bool popTask(std::size_t lane, Task& out);

  std::size_t lanes_;                         ///< total, caller included
  std::vector<std::unique_ptr<Lane>> queues_;  ///< one per pool lane (1..)
  std::vector<std::thread> workers_;
  std::mutex sleepMutex_;
  std::condition_variable sleepCv_;
  std::size_t pendingTasks_ = 0;  ///< queued, not yet claimed (under sleepMutex_)
  bool closing_ = false;
  std::size_t rr_ = 0;  ///< round-robin submit cursor
};

/// Configured total parallelism: setThreadCount() override, else
/// PMSCHED_THREADS, else hardware_concurrency(); always >= 1.
[[nodiscard]] std::size_t threadCount();

/// Override the thread count (0 = back to automatic). Takes effect on the
/// next globalThreadPool() access; must not be called with work in flight.
void setThreadCount(std::size_t n);

/// The lazily-created process-wide pool at the configured thread count —
/// or, when the calling thread is inside a ScopedComputePool, that thread's
/// private pool (see below).
[[nodiscard]] ThreadPool& globalThreadPool();

/// Route THIS thread's globalThreadPool()/threadCount() to a private pool.
///
/// The process-wide pool is single-coordinator by design: exactly one
/// thread may drive submit()/parallelFor at a time. The server multiplexes
/// many concurrent design requests, each of which runs the full parallel
/// pipeline (speculative probing, partitioned activation) — so every server
/// worker wraps its request loop in a ScopedComputePool and gets its own
/// lanes. Everything downstream (ProbeFarm construction, parallelFor
/// helpers, speculation gates) resolves the pool through globalThreadPool()
/// and transparently lands on the worker's private pool. Results are
/// unaffected: the engine is bit-identical at every thread count.
///
/// Scopes nest (the previous override is restored on destruction); the
/// override never leaks to other threads.
class ScopedComputePool {
 public:
  /// `threads` = total lanes for this thread's private pool (0 = the
  /// configured threadCount()).
  explicit ScopedComputePool(std::size_t threads = 0);
  ~ScopedComputePool();
  ScopedComputePool(const ScopedComputePool&) = delete;
  ScopedComputePool& operator=(const ScopedComputePool&) = delete;

  [[nodiscard]] ThreadPool& pool() { return pool_; }

 private:
  ThreadPool pool_;
  ThreadPool* previous_;
};

/// When the transform consumers hand probes to the ProbeFarm.
///
/// A farmed probe costs one cross-thread handoff — amortized over a whole
/// wave since PR 5, but still nonzero — so speculation only pays when the
/// probe itself is at least that big; probe cost scales with the graph.
/// `Auto` compares the graph against the self-calibrated crossover
/// (speculationCalibration() in probe_farm.hpp: one measured wave
/// round-trip vs one median oracle repair on THIS machine, overridable via
/// PMSCHED_CALIBRATION). `Force` farms whenever more than one thread is
/// configured (the determinism tests pin this so small differential graphs
/// exercise the full machinery), `Off` keeps every probe on the consumer's
/// oracle (coarse-grained parallelism — precompute, activation partitions,
/// DFS root splitting — is unaffected). Results are bit-identical in every
/// mode; this steers only where probes run.
enum class SpeculationMode { Auto, Force, Off };

/// setSpeculationMode() override, else PMSCHED_SPECULATE (auto|force|off),
/// else Auto.
[[nodiscard]] SpeculationMode speculationMode();
void setSpeculationMode(SpeculationMode mode);

}  // namespace pmsched
