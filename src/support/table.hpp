#pragma once
// ASCII table rendering for bench output.
//
// Every bench binary reproduces one of the paper's tables; this formatter
// renders rows the same way the paper prints them (fixed-point numbers,
// right-aligned columns) so the output can be compared side by side.

#include <string>
#include <vector>

namespace pmsched {

/// Column alignment within an AsciiTable.
enum class Align { Left, Right };

/// Minimal monospace table builder.
///
/// Usage:
///   AsciiTable t({"Circuit", "Steps", "Power Red.(%)"});
///   t.addRow({"gcd", "5", "11.76"});
///   std::cout << t.render();
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Per-column alignment; defaults to Right for all but the first column.
  void setAlignments(std::vector<Align> alignments);

  void addRow(std::vector<std::string> cells);
  /// A horizontal rule between row groups (e.g. between circuits in Table II).
  void addSeparator();

  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
};

}  // namespace pmsched
