#include "ctrl/controller.hpp"

#include <algorithm>
#include <unordered_map>

#include "sched/condition.hpp"

namespace pmsched {

int ControllerSpec::gatedLoadCount() const {
  return static_cast<int>(std::count_if(loads.begin(), loads.end(),
                                        [](const LoadAction& l) { return l.isGated(); }));
}

int ControllerSpec::conditionLiterals() const {
  int total = 0;
  for (const LoadAction& l : loads)
    for (const GateTerm& term : l.condition) total += static_cast<int>(term.size());
  return total;
}

double ControllerSpec::estimatedArea() const {
  // One-hot state register: one DFF (~4 gates) per state plus shift wiring.
  double area = 4.0 * steps;
  // One DFF per status bit.
  area += 4.0 * static_cast<double>(statusCaptures.size());
  // Enable decode: one AND input per literal, one OR input per extra term —
  // paid once per condition class, since loads in the same class share the
  // decoder — plus one final AND with the state line per gated load.
  std::vector<bool> counted(static_cast<std::size_t>(std::max(conditionClasses, 0)), false);
  for (const LoadAction& l : loads) {
    if (!l.isGated()) continue;
    area += 1.0;  // state-line AND
    const bool shared = l.conditionClass >= 0 &&
                        l.conditionClass < static_cast<int>(counted.size());
    if (shared && counted[static_cast<std::size_t>(l.conditionClass)]) continue;
    if (shared) counted[static_cast<std::size_t>(l.conditionClass)] = true;
    int literals = 0;
    for (const GateTerm& term : l.condition) literals += static_cast<int>(term.size());
    area += literals + static_cast<double>(l.condition.size()) - 1;
  }
  return area;
}

ControllerSpec synthesizeController(const PowerManagedDesign& design, const Schedule& sched,
                                    const Binding& binding,
                                    const ActivationResult& activation) {
  const Graph& g = design.graph;
  sched.validate(g);

  ControllerSpec spec;
  spec.steps = sched.steps();

  // Status bits: every select signal referenced by some activation
  // condition, plus every select feeding a datapath mux (its select line
  // must persist until the mux's step). Scheduled selects are captured when
  // produced; PI selects need no capture (they are stable inputs).
  std::vector<NodeId> statusSignals;
  std::vector<bool> seenStatus(g.size(), false);
  auto noteStatus = [&](NodeId sel) {
    if (!isScheduled(g.kind(sel))) return;
    if (seenStatus[sel]) return;
    seenStatus[sel] = true;
    statusSignals.push_back(sel);
  };
  for (NodeId n = 0; n < g.size(); ++n) {
    for (const GateTerm& term : activation.condition[n])
      for (const GateLiteral& lit : term) noteStatus(lit.select);
    if (g.kind(n) == OpKind::Mux) noteStatus(traceSelectProducer(g, n));
  }
  for (const NodeId sel : statusSignals)
    spec.statusCaptures.emplace_back(sel, sched.stepOf(sel));

  // Condition classes: the activation pass already hash-conses every
  // condition into a canonical BDD, so "same enable function" is one ref
  // compare instead of a DNF term-set comparison. Nodes whose BDD build
  // degraded (bdd[n] == kBddInvalid) fall back to the thread-local
  // probability manager — pinned, so its periodic trim cannot invalidate
  // the keys mid-generation. The two key spaces are kept disjoint by tag.
  BddManager& fallback = dnfProbabilityManager();
  const BddPin holdFallback(fallback);
  std::unordered_map<std::uint64_t, int> classOf;
  auto conditionClassOf = [&](NodeId n) {
    const BddRef ref = n < activation.bdd.size() ? activation.bdd[n] : kBddInvalid;
    const std::uint64_t key =
        ref != kBddInvalid ? std::uint64_t{ref}
                           : (std::uint64_t{1} << 32) | fallback.fromDnf(activation.condition[n]);
    return classOf.emplace(key, static_cast<int>(classOf.size())).first->second;
  };

  // Load actions: one per registered value.
  for (NodeId n = 0; n < g.size(); ++n) {
    if (!isScheduled(g.kind(n)) || binding.registerOf[n] < 0) continue;
    LoadAction load;
    load.step = sched.stepOf(n);
    load.reg = binding.registerOf[n];
    load.value = n;
    load.condition = activation.condition[n];
    if (load.isGated()) load.conditionClass = conditionClassOf(n);

    // Sanity: every status bit a condition reads must be captured strictly
    // before this load fires.
    for (const GateTerm& term : load.condition) {
      for (const GateLiteral& lit : term) {
        if (!isScheduled(g.kind(lit.select))) continue;
        if (sched.stepOf(lit.select) >= load.step)
          throw SynthesisError("controller: condition on '" + g.node(lit.select).name +
                               "' (step " + std::to_string(sched.stepOf(lit.select)) +
                               ") not resolved before load of '" + g.node(n).name +
                               "' (step " + std::to_string(load.step) + ")");
      }
    }
    spec.loads.push_back(std::move(load));
  }

  spec.conditionClasses = static_cast<int>(classOf.size());

  std::sort(spec.loads.begin(), spec.loads.end(), [](const LoadAction& a, const LoadAction& b) {
    if (a.step != b.step) return a.step < b.step;
    return a.value < b.value;
  });
  return spec;
}

}  // namespace pmsched
