#include "analysis/experiments.hpp"

namespace pmsched {
namespace analysis {

Table1Row table1Row(const std::string& name, const Graph& g) {
  Table1Row row;
  row.circuit = name;
  row.criticalPath = criticalPathLength(g);
  row.ops = countOps(g);
  return row;
}

std::vector<Table1Row> table1() {
  std::vector<Table1Row> rows;
  for (const auto& c : circuits::paperCircuits()) rows.push_back(table1Row(c.name, c.build()));
  return rows;
}

PowerManagedDesign buildDesign(const Graph& g, int steps, const Table2Options& opts) {
  PowerManagedDesign design = applyPowerManagement(g, steps, opts.ordering);
  if (opts.mode == GatingMode::Shared) applySharedGating(design);
  return design;
}

Table2Row table2Row(const std::string& name, const Graph& g, int steps,
                    const Table2Options& opts) {
  PowerManagedDesign design = buildDesign(g, steps, opts);
  const ActivationResult activation = analyzeActivation(design);
  const OpPowerModel model = OpPowerModel::paperWeights();
  const UnitCosts costs = UnitCosts::defaults();

  Table2Row row;
  row.circuit = name;
  row.steps = steps;
  row.pmMuxes = design.managedCount();
  row.sharedGated = design.sharedGatedCount();
  row.avgMux = activation.averageOf(ResourceClass::Mux);
  row.avgComp = activation.averageOf(ResourceClass::Comparator);
  row.avgAdd = activation.averageOf(ResourceClass::Adder);
  row.avgSub = activation.averageOf(ResourceClass::Subtractor);
  row.avgMul = activation.averageOf(ResourceClass::Multiplier);
  row.powerReductionPct = activation.reductionPercent(model);

  const ResourceVector unitsBase = minimizeResources(g, steps, costs);
  const ResourceVector unitsPm = minimizeResources(design.graph, steps, costs);
  const double baseCost = costs.costOf(unitsBase);
  row.areaIncrease = baseCost > 0 ? costs.costOf(unitsPm) / baseCost : 1.0;
  return row;
}

std::vector<Table2Row> table2(const Table2Options& opts) {
  std::vector<Table2Row> rows;
  for (const auto& c : circuits::paperCircuits()) {
    const Graph g = c.build();
    for (const int steps : circuits::tableIISteps(c.name))
      rows.push_back(table2Row(c.name, g, steps, opts));
  }
  return rows;
}

namespace {

/// Schedule, bind, map and measure one machine (baseline or PM).
struct MappedMachine {
  RtlPowerResult power;
  double controllerArea = 0;
  int gatedLoads = 0;
};

MappedMachine buildAndMeasure(const PowerManagedDesign& design, bool gating, int samples,
                              Rng& rng) {
  const ResourceVector units =
      minimizeResources(design.graph, design.steps, UnitCosts::defaults());
  const ListScheduleResult scheduled = listSchedule(design.graph, design.steps, units);
  if (!scheduled.schedule)
    throw InfeasibleError("table3: scheduling failed: " + scheduled.message);
  const Schedule& sched = *scheduled.schedule;

  const Binding binding = bindDesign(design.graph, sched);
  const ActivationResult activation = analyzeActivation(design);
  const ControllerSpec ctrl = synthesizeController(design, sched, binding, activation);

  MappedMachine machine;
  machine.controllerArea = ctrl.estimatedArea();
  machine.gatedLoads = gating ? ctrl.gatedLoadCount() : 0;

  const RtlDesign rtl =
      mapDesign(design, sched, binding, activation, RtlOptions{gating});
  machine.power = measurePower(rtl, design.graph, samples, rng, /*checkFunctional=*/true);
  return machine;
}

}  // namespace

Table3Row table3Row(const std::string& name, const Graph& g, int steps,
                    const Table3Options& opts) {
  Table3Row row;
  row.circuit = name;
  row.steps = steps;

  Rng rngBase(opts.seed);
  Rng rngPm(opts.seed);  // identical vectors for both machines

  const PowerManagedDesign baseline = unmanagedDesign(g, steps);
  const MappedMachine orig = buildAndMeasure(baseline, false, opts.samples, rngBase);

  const PowerManagedDesign managed = buildDesign(g, steps, opts.schedule);
  const MappedMachine pm = buildAndMeasure(managed, true, opts.samples, rngPm);

  row.areaOrig = orig.power.area;
  row.areaNew = pm.power.area;
  row.areaRatio = orig.power.area > 0 ? pm.power.area / orig.power.area : 1.0;
  row.powerOrig = orig.power.energyPerSample();
  row.powerNew = pm.power.energyPerSample();
  row.reductionPct =
      row.powerOrig > 0 ? (row.powerOrig - row.powerNew) / row.powerOrig * 100.0 : 0.0;
  row.functionalMismatches =
      orig.power.functionalMismatches + pm.power.functionalMismatches;
  row.controllerGatedLoads = pm.gatedLoads;
  row.controllerAreaOrig = orig.controllerArea;
  row.controllerAreaNew = pm.controllerArea;
  return row;
}

std::vector<Table3Row> table3(const Table3Options& opts) {
  // The paper validates dealer at 6 steps, gcd at 7 and vender at 6.
  std::vector<Table3Row> rows;
  rows.push_back(table3Row("dealer", circuits::dealer(), 6, opts));
  rows.push_back(table3Row("gcd", circuits::gcd(), 7, opts));
  rows.push_back(table3Row("vender", circuits::vender(), 6, opts));
  return rows;
}

std::vector<AbsdiffFigure> absdiffFigures() {
  const Graph g = circuits::absdiff();
  const OpPowerModel model = OpPowerModel::paperWeights();

  std::vector<AbsdiffFigure> figures;
  for (const int steps : {2, 3}) {
    for (const bool pm : {false, true}) {
      AbsdiffFigure fig;
      fig.steps = steps;
      fig.powerManaged = pm;

      PowerManagedDesign design =
          pm ? applyPowerManagement(g, steps) : unmanagedDesign(g, steps);
      fig.pmMuxes = design.managedCount();

      const ResourceVector units =
          minimizeResources(design.graph, steps, UnitCosts::defaults());
      fig.subtractors = units.of(ResourceClass::Subtractor);
      const ListScheduleResult sched = listSchedule(design.graph, steps, units);
      if (sched.schedule) fig.scheduleText = sched.schedule->render(design.graph);

      const ActivationResult activation = analyzeActivation(design);
      fig.powerReductionPct = activation.reductionPercent(model);
      figures.push_back(std::move(fig));
    }
  }
  return figures;
}

}  // namespace analysis
}  // namespace pmsched
