#pragma once
// Human-readable design reports: everything a designer would want to see
// about one power-managed design, rendered as Markdown. Used by the CLI
// driver and handy from tests/examples.

#include <string>

#include "alloc/binding.hpp"
#include "ctrl/controller.hpp"
#include "power/activation.hpp"
#include "sched/schedule.hpp"

namespace pmsched {
namespace analysis {

struct DesignReportInputs {
  const PowerManagedDesign& design;
  const Schedule& schedule;
  const Binding& binding;
  const ActivationResult& activation;
  const ControllerSpec& controller;
};

/// Full Markdown report: circuit statistics, power-management decisions
/// (per mux, with reasons), gated conditions, the schedule, unit/register
/// allocation, and the power summary under the paper's weights.
[[nodiscard]] std::string renderDesignReport(const DesignReportInputs& in);

}  // namespace analysis
}  // namespace pmsched
