#pragma once
// Experiment drivers shared by the bench binaries and the reproduction
// tests: one function per table/figure of the paper, returning structured
// data (benches render it, tests assert on it).

#include <string>
#include <vector>

#include "cdfg/analysis.hpp"
#include "circuits/circuits.hpp"
#include "ctrl/controller.hpp"
#include "power/activation.hpp"
#include "rtl/power_harness.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/power_transform.hpp"
#include "sched/shared_gating.hpp"

namespace pmsched {
namespace analysis {

// ---- Table I ---------------------------------------------------------------

struct Table1Row {
  std::string circuit;
  int criticalPath = 0;
  OpStats ops;
};

[[nodiscard]] Table1Row table1Row(const std::string& name, const Graph& g);
[[nodiscard]] std::vector<Table1Row> table1();

// ---- Table II --------------------------------------------------------------

struct Table2Row {
  std::string circuit;
  int steps = 0;
  int pmMuxes = 0;      ///< paper's "P.Man. Muxs"
  int sharedGated = 0;  ///< extension: ops gated by OR-composed conditions
  double areaIncrease = 1.0;
  Rational avgMux, avgComp, avgAdd, avgSub, avgMul;
  double powerReductionPct = 0.0;
};

struct Table2Options {
  GatingMode mode = GatingMode::Shared;
  MuxOrdering ordering = MuxOrdering::OutputFirst;
};

/// Evaluate one circuit at one step budget: run the PM transform (plus the
/// shared pass when enabled), the activation analysis, and the
/// minimum-resource comparison for the area column.
[[nodiscard]] Table2Row table2Row(const std::string& name, const Graph& g, int steps,
                                  const Table2Options& opts = {});

/// The full Table II sweep over the paper's circuits and step budgets.
[[nodiscard]] std::vector<Table2Row> table2(const Table2Options& opts = {});

/// Build the power-managed design a Table II row is based on (exposed for
/// benches that want to inspect schedules or emit VHDL).
[[nodiscard]] PowerManagedDesign buildDesign(const Graph& g, int steps,
                                             const Table2Options& opts = {});

// ---- Table III -------------------------------------------------------------

struct Table3Row {
  std::string circuit;
  int steps = 0;
  double areaOrig = 0;   ///< NAND2-equivalents, baseline machine
  double areaNew = 0;    ///< NAND2-equivalents, power-managed machine
  double areaRatio = 1;  ///< paper's "Incr." column
  double powerOrig = 0;  ///< weighted toggles per sample, baseline
  double powerNew = 0;   ///< weighted toggles per sample, power-managed
  double reductionPct = 0;
  int functionalMismatches = 0;  ///< must be 0: both machines checked
                                 ///< against the CDFG interpreter
  int controllerGatedLoads = 0;  ///< "controller more complex" evidence
  double controllerAreaOrig = 0;
  double controllerAreaNew = 0;
};

struct Table3Options {
  int samples = 200;
  std::uint64_t seed = 0xDAC1996;
  Table2Options schedule;  ///< gating mode / ordering for the PM machine
};

/// Gate-level comparison of the baseline vs power-managed machine for one
/// circuit (the paper ran dealer@6, gcd@7, vender@6 through Synopsys).
[[nodiscard]] Table3Row table3Row(const std::string& name, const Graph& g, int steps,
                                  const Table3Options& opts = {});

/// The paper's Table III set: dealer@6, gcd@7, vender@6.
[[nodiscard]] std::vector<Table3Row> table3(const Table3Options& opts = {});

// ---- Figures 1 & 2 ---------------------------------------------------------

struct AbsdiffFigure {
  int steps = 0;
  bool powerManaged = false;
  int pmMuxes = 0;
  int subtractors = 0;
  std::string scheduleText;      ///< step-by-step rendering
  double powerReductionPct = 0;  ///< datapath power model
};

/// Reproduce the paper's Figures 1 and 2: |a-b| at 2 and 3 control steps,
/// with and without power management.
[[nodiscard]] std::vector<AbsdiffFigure> absdiffFigures();

}  // namespace analysis
}  // namespace pmsched
