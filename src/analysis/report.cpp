#include "analysis/report.hpp"

#include <sstream>

#include "cdfg/analysis.hpp"
#include "support/strings.hpp"

namespace pmsched {
namespace analysis {

std::string renderDesignReport(const DesignReportInputs& in) {
  const Graph& g = in.design.graph;
  const OpPowerModel model = OpPowerModel::paperWeights();
  std::ostringstream os;

  os << "# Design report: " << g.name() << "\n\n";

  // ---- statistics -----------------------------------------------------------
  const OpStats stats = countOps(g);
  os << "## Circuit\n\n"
     << "| metric | value |\n|---|---|\n"
     << "| operations | " << stats.totalUnits() << " (MUX " << stats.mux << ", COMP "
     << stats.comp << ", + " << stats.add << ", - " << stats.sub << ", * " << stats.mul
     << ") |\n"
     << "| critical path (incl. control edges) | " << criticalPathLength(g) << " steps |\n"
     << "| scheduled at | " << in.schedule.steps() << " steps |\n"
     << "| control edges added | " << g.controlEdgeCount() << " |\n\n";

  // ---- power management decisions -------------------------------------------
  os << "## Power management\n\n"
     << "| mux | managed | gated (true side) | gated (false side) | reason |\n"
     << "|---|---|---|---|---|\n";
  for (const MuxPmInfo& info : in.design.muxes) {
    auto names = [&](const std::vector<NodeId>& nodes) {
      std::vector<std::string> out;
      for (const NodeId n : nodes)
        if (isScheduled(g.kind(n))) out.push_back(g.node(n).name);
      return out.empty() ? std::string("—") : join(out, ", ");
    };
    os << "| " << g.node(info.mux).name << " | " << (info.managed ? "yes" : "no") << " | "
       << names(info.gatedTrue) << " | " << names(info.gatedFalse) << " | "
       << (info.reason.empty() ? "—" : info.reason) << " |\n";
  }
  os << "\n";

  // ---- activation conditions -------------------------------------------------
  os << "## Gated operations\n\n"
     << "| operation | activation condition | p(execute) |\n|---|---|---|\n";
  bool anyGated = false;
  for (NodeId n = 0; n < g.size(); ++n) {
    if (!isScheduled(g.kind(n))) continue;
    if (dnfIsTrue(in.activation.condition[n])) continue;
    anyGated = true;
    os << "| " << g.node(n).name << " | `"
       << dnfToString(in.activation.condition[n], g) << "` | "
       << in.activation.probability[n].toFixed(4) << " |\n";
  }
  if (!anyGated) os << "| — | (nothing gated) | |\n";
  os << "\n";

  // ---- schedule ---------------------------------------------------------------
  os << "## Schedule\n\n```\n" << in.schedule.render(g) << "```\n\n";

  // ---- allocation --------------------------------------------------------------
  os << "## Allocation\n\n";
  os << "Units:\n\n| unit | operations |\n|---|---|\n";
  for (const FunctionalUnit& unit : in.binding.units) {
    std::vector<std::string> ops;
    for (const NodeId n : unit.ops) ops.push_back(g.node(n).name);
    os << "| " << resourceName(unit.cls) << unit.index << " | " << join(ops, ", ") << " |\n";
  }
  os << "\nRegisters: " << in.binding.registers.size() << ", interconnect 2:1 muxes: "
     << in.binding.interconnectMuxes << "\n";
  const AreaModel area = estimateArea(in.binding);
  os << "Datapath area estimate: " << fixed(area.total(), 0) << " NAND2-eq (units "
     << fixed(area.unitArea, 0) << ", registers " << fixed(area.registerArea, 0)
     << ", interconnect " << fixed(area.interconnectArea, 0) << ")\n\n";

  // ---- controller ---------------------------------------------------------------
  os << "## Controller\n\n"
     << "| metric | value |\n|---|---|\n"
     << "| states | " << in.controller.stateCount() << " |\n"
     << "| register loads | " << in.controller.loads.size() << " |\n"
     << "| gated loads | " << in.controller.gatedLoadCount() << " |\n"
     << "| condition literals | " << in.controller.conditionLiterals() << " |\n"
     << "| status bits | " << in.controller.statusCaptures.size() << " |\n"
     << "| area estimate | " << fixed(in.controller.estimatedArea(), 0) << " NAND2-eq |\n\n";

  // ---- power summary --------------------------------------------------------------
  os << "## Power (paper weights, datapath)\n\n"
     << "| | value |\n|---|---|\n"
     << "| without PM | " << fixed(in.activation.fullPower(model), 2) << " |\n"
     << "| with PM (expected) | " << fixed(in.activation.expectedPower(model), 2) << " |\n"
     << "| reduction | " << fixed(in.activation.reductionPercent(model), 2) << "% |\n";
  return os.str();
}

}  // namespace analysis
}  // namespace pmsched
