#include "circuits/circuits.hpp"

#include <array>
#include <stdexcept>
#include <string>

namespace pmsched {
namespace circuits {

Graph absdiff() {
  Graph g("absdiff");
  const NodeId a = g.addInput("a");
  const NodeId b = g.addInput("b");
  const NodeId t = g.addOp(OpKind::CmpGt, {a, b}, "a_gt_b");
  const NodeId d1 = g.addOp(OpKind::Sub, {a, b}, "a_minus_b");
  const NodeId d2 = g.addOp(OpKind::Sub, {b, a}, "b_minus_a");
  const NodeId m = g.addMux(t, d1, d2, "abs_mux");
  g.addOutput(m, "abs_out");
  g.validate();
  return g;
}

Graph dealer() {
  // A dealer picks a payout from one of two hands. The comparison c1
  // decides the hand; each hand has its own comparison-driven selection.
  // The running total s1 is always reported; s2 is shared between the two
  // hands (it feeds mA's data input and the False-branch compare/subtract),
  // which is what makes the paper's "+ = 1.75" row reachable only with
  // OR-composed (shared) gating at 6 steps.
  Graph g("dealer");
  const NodeId p = g.addInput("p");
  const NodeId q = g.addInput("q");
  const NodeId r = g.addInput("r");
  const NodeId s = g.addInput("s");

  const NodeId s1 = g.addOp(OpKind::Add, {p, q}, "s1");  // hand 1 total
  const NodeId s2 = g.addOp(OpKind::Add, {r, s}, "s2");  // hand 2 total
  const NodeId c1 = g.addOp(OpKind::CmpGt, {p, q}, "c1");
  const NodeId c2 = g.addOp(OpKind::CmpGt, {p, r}, "c2");

  // True branch: pick hand-1 total or the shared total.
  const NodeId mA = g.addMux(c2, s1, s2, "mA");

  // False branch: pay the margin over q, or the shared total as-is.
  const NodeId c3 = g.addOp(OpKind::CmpGt, {r, q}, "c3");
  const NodeId d = g.addOp(OpKind::Sub, {s2, q}, "d");
  const NodeId mB = g.addMux(c3, d, s2, "mB");

  const NodeId m3 = g.addMux(c1, mA, mB, "M3");
  g.addOutput(m3, "deal");
  g.addOutput(s1, "total");  // always visible, so s1 is never gated
  g.validate();
  return g;
}

Graph gcd() {
  // One iteration of subtractive GCD with operand-selection (one shared
  // subtractor, as in the mutually-exclusive-operations literature the
  // paper cites) plus done-detection and start/writeback selection.
  Graph g("gcd");
  const NodeId a = g.addInput("a");
  const NodeId b = g.addInput("b");
  const NodeId aInit = g.addInput("a_init");
  const NodeId bInit = g.addInput("b_init");
  const NodeId start = g.addInput("start", 1);

  const NodeId t = g.addOp(OpKind::CmpGt, {a, b}, "t");
  const NodeId big = g.addMux(t, a, b, "big");
  const NodeId small = g.addMux(t, b, a, "small");
  const NodeId eq = g.addOp(OpKind::CmpEq, {big, small}, "eq");  // a==b
  const NodeId d = g.addOp(OpKind::Sub, {big, small}, "d");

  const NodeId aNext = g.addMux(eq, a, small, "a_next");  // min when not done
  const NodeId bInner = g.addMux(eq, b, d, "b_inner");    // diff when not done
  const NodeId bWb = g.addMux(start, bInit, bInner, "b_wb");
  const NodeId aWb = g.addMux(start, aInit, aNext, "a_wb");

  g.addOutput(aWb, "a_out");
  g.addOutput(bWb, "b_out");
  g.addOutput(aNext, "gcd_out");  // converged value is visible every cycle
  g.validate();
  return g;
}

Graph vender() {
  // Vending machine: coin valuation (two multipliers selected by coin
  // type), price check with change computation, and a display path with a
  // nested compare/select tree.
  Graph g("vender");
  const NodeId coin = g.addInput("coin", 1);
  const NodeId n = g.addInput("n_coins");
  const NodeId r5 = g.addInput("rate5");
  const NodeId r10 = g.addInput("rate10");
  const NodeId credit = g.addInput("credit");
  const NodeId price = g.addInput("price");
  const NodeId u = g.addInput("u");
  const NodeId v = g.addInput("v");
  const NodeId w = g.addInput("w");
  const NodeId z = g.addInput("z");

  // Coin value path (critical): v5/v10 -> vm -> tot -> ok -> out.
  const NodeId v5 = g.addOp(OpKind::Mul, {n, r5}, "v5");
  const NodeId v10 = g.addOp(OpKind::Mul, {n, r10}, "v10");
  const NodeId vm = g.addMux(coin, v5, v10, "vm");
  const NodeId tot = g.addOp(OpKind::Add, {vm, credit}, "tot");
  const NodeId ok = g.addOp(OpKind::CmpGt, {tot, price}, "ok");
  const NodeId ch = g.addOp(OpKind::Sub, {vm, price}, "ch");
  const NodeId mp = g.addMux(coin, w, z, "Mp");
  const NodeId out = g.addMux(ok, ch, mp, "dispense");

  // Display path: nested selection between two derived quantities.
  const NodeId c4 = g.addOp(OpKind::CmpGt, {u, v}, "c4");
  const NodeId c2 = g.addOp(OpKind::CmpGt, {w, z}, "c2");
  const NodeId aB = g.addOp(OpKind::Add, {w, z}, "a_b");
  const NodeId aC = g.addOp(OpKind::Add, {u, v}, "a_c");
  const NodeId sA = g.addOp(OpKind::Sub, {aB, u}, "s_a");
  const NodeId sB = g.addOp(OpKind::Sub, {aC, w}, "s_b");
  const NodeId mi = g.addMux(c2, sA, sB, "Mi");
  const NodeId mq = g.addMux(coin, z, w, "Mq");
  const NodeId o2 = g.addMux(c4, mi, mq, "display");

  g.addOutput(out, "dispense_out");
  g.addOutput(o2, "display_out");
  g.addOutput(tot, "credit_out");
  g.validate();
  return g;
}

Graph cordic() {
  // 16 rotation iterations. Update styles are mixed exactly so the op
  // inventory lands on Table I (47 MUX / 16 COMP / 43 + / 46 -):
  //   * z-updates, iterations 1-5: const-select (mux over pre-negated angle
  //     constants, then one adder);
  //   * z-updates, iterations 6-15: result-select (z+a and z-a, then mux);
  //   * x/y-updates: result-select, except iterations 1-2 which use
  //     operand-select through a negation subtractor (two SUBs, no ADD);
  //   * iterations 10-14 couple x to the freshly computed y (a serialized
  //     variant the authors' fixed-point code plausibly used), which is
  //     what stretches the critical path to 48 steps.
  // Shifts are compile-time constants, realized as free Wire nodes.
  constexpr int kIters = 16;
  Graph g("cordic");
  NodeId x = g.addInput("x0");
  NodeId y = g.addInput("y0");
  NodeId z = g.addInput("z0");
  const NodeId zero = g.addConst(0, 8, "zero");

  for (int i = 1; i <= kIters; ++i) {
    const std::string tag = "_" + std::to_string(i);
    const NodeId d = g.addOp(OpKind::CmpGe, {z, zero}, "d" + tag);

    const NodeId xs = g.addWire(x, i, "xs" + tag);
    const NodeId ys = g.addWire(y, i, "ys" + tag);

    NodeId xNew = kInvalidNode;
    NodeId yNew = kInvalidNode;
    if (i == 9 || i == kIters) {
      // Operand-select: negate the shifted operand, pick sign, apply.
      const NodeId negYs = g.addOp(OpKind::Sub, {zero, ys}, "neg_ys" + tag);
      const NodeId selX = g.addMux(d, negYs, ys, "selx" + tag);
      xNew = g.addOp(OpKind::Sub, {x, selX}, "x" + tag);
      const NodeId negXs = g.addOp(OpKind::Sub, {zero, xs}, "neg_xs" + tag);
      const NodeId selY = g.addMux(d, xs, negXs, "sely" + tag);
      yNew = g.addOp(OpKind::Sub, {y, selY}, "y" + tag);
    } else if (i >= 3 && i <= 8) {
      // Coupled result-select: x consumes the freshly updated y.
      const NodeId yp = g.addOp(OpKind::Add, {y, xs}, "yp" + tag);
      const NodeId ym = g.addOp(OpKind::Sub, {y, xs}, "ym" + tag);
      yNew = g.addMux(d, yp, ym, "y" + tag);
      const NodeId ysNew = g.addWire(yNew, i, "ysn" + tag);
      const NodeId xp = g.addOp(OpKind::Add, {x, ysNew}, "xp" + tag);
      const NodeId xm = g.addOp(OpKind::Sub, {x, ysNew}, "xm" + tag);
      xNew = g.addMux(d, xm, xp, "x" + tag);
    } else {
      // Plain result-select on the old state.
      const NodeId xp = g.addOp(OpKind::Add, {x, ys}, "xp" + tag);
      const NodeId xm = g.addOp(OpKind::Sub, {x, ys}, "xm" + tag);
      xNew = g.addMux(d, xm, xp, "x" + tag);
      const NodeId yp = g.addOp(OpKind::Add, {y, xs}, "yp" + tag);
      const NodeId ym = g.addOp(OpKind::Sub, {y, xs}, "ym" + tag);
      yNew = g.addMux(d, yp, ym, "y" + tag);
    }

    if (i <= kIters - 1) {  // iteration 16 does not update the angle
      NodeId zNew = kInvalidNode;
      if (i <= 5) {
        const NodeId aPos = g.addConst(64 >> i, 8, "ap" + tag);
        const NodeId aNeg = g.addConst(-(64 >> i), 8, "an" + tag);
        const NodeId sel = g.addMux(d, aNeg, aPos, "selz" + tag);
        zNew = g.addOp(OpKind::Add, {z, sel}, "z" + tag);
      } else {
        const NodeId aPos = g.addConst(64 >> (i % 7), 8, "ap" + tag);
        const NodeId zp = g.addOp(OpKind::Add, {z, aPos}, "zp" + tag);
        const NodeId zm = g.addOp(OpKind::Sub, {z, aPos}, "zm" + tag);
        zNew = g.addMux(d, zm, zp, "z" + tag);
      }
      z = zNew;
    }
    x = xNew;
    y = yNew;
  }

  g.addOutput(x, "cos_out");
  g.addOutput(y, "sin_out");
  g.validate();
  return g;
}

Graph diffeq() {
  // HAL benchmark: inner loop of y'' + 3xy' + 3y = 0 (Paulin & Knight).
  Graph g("diffeq");
  const NodeId x = g.addInput("x");
  const NodeId y = g.addInput("y");
  const NodeId u = g.addInput("u");
  const NodeId dx = g.addInput("dx");
  const NodeId a = g.addInput("a");
  const NodeId three = g.addConst(3, 8, "three");

  const NodeId m1 = g.addOp(OpKind::Mul, {three, x}, "m1");
  const NodeId m2 = g.addOp(OpKind::Mul, {u, dx}, "m2");
  const NodeId m3 = g.addOp(OpKind::Mul, {three, y}, "m3");
  const NodeId m4 = g.addOp(OpKind::Mul, {m1, m2}, "m4");   // 3x*u*dx
  const NodeId m5 = g.addOp(OpKind::Mul, {m3, dx}, "m5");   // 3y*dx
  const NodeId m6 = g.addOp(OpKind::Mul, {u, dx}, "m6");
  const NodeId s1 = g.addOp(OpKind::Sub, {u, m4}, "s1");
  const NodeId u1 = g.addOp(OpKind::Sub, {s1, m5}, "u1");   // next u
  const NodeId y1 = g.addOp(OpKind::Add, {y, m6}, "y1");    // next y
  const NodeId x1 = g.addOp(OpKind::Add, {x, dx}, "x1");    // next x
  const NodeId c = g.addOp(OpKind::CmpLt, {x1, a}, "c");    // loop test

  g.addOutput(u1, "u_out");
  g.addOutput(y1, "y_out");
  g.addOutput(x1, "x_out");
  g.addOutput(c, "continue");
  g.validate();
  return g;
}

Graph fir8() {
  // y = sum(c_i * x_i) over an 8-deep delay line; coefficients folded into
  // constant multiplier operands. Balanced adder-tree reduction.
  Graph g("fir8");
  std::vector<NodeId> taps;
  for (int i = 0; i < 8; ++i) taps.push_back(g.addInput("x" + std::to_string(i)));
  std::vector<NodeId> products;
  for (int i = 0; i < 8; ++i) {
    const NodeId c = g.addConst(1 + 2 * i, 8, "c" + std::to_string(i));
    products.push_back(
        g.addOp(OpKind::Mul, {taps[static_cast<std::size_t>(i)], c},
                "p" + std::to_string(i)));
  }
  // Tree reduction keeps the critical path logarithmic.
  std::vector<NodeId> level = products;
  int stage = 0;
  while (level.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(g.addOp(OpKind::Add, {level[i], level[i + 1]},
                             "s" + std::to_string(stage) + "_" + std::to_string(i / 2)));
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
    ++stage;
  }
  g.addOutput(level.front(), "y");
  g.validate();
  return g;
}

Graph arf() {
  // Auto-regressive lattice filter: the multiplier-dominated HLS benchmark
  // (16 multiplications, 12 additions in the classic formulation).
  Graph g("arf");
  std::vector<NodeId> in;
  for (int i = 0; i < 4; ++i) in.push_back(g.addInput("in" + std::to_string(i)));
  auto k = [&](int i) { return g.addConst(3 + i, 8, "k" + std::to_string(i)); };
  auto mul = [&](NodeId a, NodeId b, const char* name) {
    return g.addOp(OpKind::Mul, {a, b}, name);
  };
  auto add = [&](NodeId a, NodeId b, const char* name) {
    return g.addOp(OpKind::Add, {a, b}, name);
  };

  const NodeId m1 = mul(in[0], k(0), "m1");
  const NodeId m2 = mul(in[1], k(1), "m2");
  const NodeId m3 = mul(in[2], k(2), "m3");
  const NodeId m4 = mul(in[3], k(3), "m4");
  const NodeId a1 = add(m1, m2, "a1");
  const NodeId a2 = add(m3, m4, "a2");
  const NodeId m5 = mul(a1, k(4), "m5");
  const NodeId m6 = mul(a1, k(5), "m6");
  const NodeId m7 = mul(a2, k(6), "m7");
  const NodeId m8 = mul(a2, k(7), "m8");
  const NodeId a3 = add(m5, m7, "a3");
  const NodeId a4 = add(m6, m8, "a4");
  const NodeId m9 = mul(a3, k(8), "m9");
  const NodeId m10 = mul(a3, k(9), "m10");
  const NodeId m11 = mul(a4, k(10), "m11");
  const NodeId m12 = mul(a4, k(11), "m12");
  const NodeId a5 = add(m9, m11, "a5");
  const NodeId a6 = add(m10, m12, "a6");
  const NodeId m13 = mul(a5, k(12), "m13");
  const NodeId m14 = mul(a5, k(13), "m14");
  const NodeId m15 = mul(a6, k(14), "m15");
  const NodeId m16 = mul(a6, k(15), "m16");
  const NodeId a7 = add(m13, m15, "a7");
  const NodeId a8 = add(m14, m16, "a8");
  g.addOutput(a7, "out0");
  g.addOutput(a8, "out1");
  g.validate();
  return g;
}

Graph ewf() {
  // Fifth-order elliptic wave filter (34 add, 8 mul). This follows the
  // serial feedback formulation, so its critical path (42) is deeper than
  // the classic parallel EWF graph; as a scheduler workload that is the
  // point — a long, skinny dependence chain. Pure dataflow, no
  // conditionals.
  Graph g("ewf");
  const NodeId in = g.addInput("in");
  std::array<NodeId, 9> sv{};
  for (int i = 0; i < 9; ++i) sv[static_cast<std::size_t>(i)] =
      g.addInput("sv" + std::to_string(i));
  auto add = [&](NodeId l, NodeId r) { return g.addOp(OpKind::Add, {l, r}); };
  auto mul = [&](NodeId l) {
    const NodeId k = g.addConst(3, 8);
    return g.addOp(OpKind::Mul, {l, k});
  };

  // Topology after Kung/Whitehouse; constant coefficients folded into mul
  // nodes. Node naming follows the usual n1..n34 numbering loosely.
  const NodeId n1 = add(in, sv[0]);
  const NodeId n2 = add(n1, sv[1]);
  const NodeId n3 = add(n2, sv[2]);
  const NodeId m1 = mul(n3);
  const NodeId n4 = add(m1, sv[3]);
  const NodeId n5 = add(n4, sv[4]);
  const NodeId m2 = mul(n5);
  const NodeId n6 = add(m2, n2);
  const NodeId n7 = add(n6, sv[5]);
  const NodeId m3 = mul(n7);
  const NodeId n8 = add(m3, n4);
  const NodeId n9 = add(n8, n6);
  const NodeId m4 = mul(n9);
  const NodeId n10 = add(m4, sv[6]);
  const NodeId n11 = add(n10, n8);
  const NodeId m5 = mul(n11);
  const NodeId n12 = add(m5, n10);
  const NodeId n13 = add(n12, sv[7]);
  const NodeId m6 = mul(n13);
  const NodeId n14 = add(m6, n12);
  const NodeId n15 = add(n14, sv[8]);
  const NodeId m7 = mul(n15);
  const NodeId n16 = add(m7, n14);
  const NodeId n17 = add(n16, n13);
  const NodeId m8 = mul(n17);
  const NodeId n18 = add(m8, n16);
  const NodeId n19 = add(n18, n15);
  const NodeId n20 = add(n19, n17);
  const NodeId n21 = add(n20, n11);
  const NodeId n22 = add(n21, n9);
  const NodeId n23 = add(n22, n7);
  const NodeId n24 = add(n23, n5);
  const NodeId n25 = add(n24, n3);
  const NodeId n26 = add(n25, n1);
  const NodeId n27 = add(n26, in);
  const NodeId n28 = add(n27, n19);
  const NodeId n29 = add(n28, n21);
  const NodeId n30 = add(n29, n23);
  const NodeId n31 = add(n30, n25);
  const NodeId n32 = add(n31, n27);
  const NodeId n33 = add(n32, n28);
  const NodeId n34 = add(n33, n30);

  g.addOutput(n34, "out");
  g.addOutput(n26, "sv_fb0");
  g.addOutput(n33, "sv_fb1");
  g.validate();
  return g;
}

const std::vector<NamedCircuit>& paperCircuits() {
  static const std::vector<NamedCircuit> kCircuits = {
      {"dealer", dealer},
      {"gcd", gcd},
      {"vender", vender},
      {"cordic", cordic},
  };
  return kCircuits;
}

std::vector<int> tableIISteps(std::string_view circuitName) {
  if (circuitName == "dealer") return {4, 5, 6};
  if (circuitName == "gcd") return {5, 6, 7};
  if (circuitName == "vender") return {5, 6};
  if (circuitName == "cordic") return {48, 52};
  throw std::invalid_argument("tableIISteps: unknown circuit '" + std::string(circuitName) +
                              "'");
}

}  // namespace circuits
}  // namespace pmsched
