#pragma once
// The paper's benchmark circuits, reconstructed.
//
// The DAC'96 paper evaluates four Silage programs — dealer, gcd, vender,
// cordic — whose sources were never published. Each builder below
// reconstructs a CDFG that matches Table I exactly (critical path and the
// MUX/COMP/+/-/* operation counts) and whose power-management behaviour
// reproduces Table II as closely as the published numbers allow; the
// remaining differences are catalogued in EXPERIMENTS.md.
//
// absdiff is the |a-b| example of the paper's Figures 1 and 2. The final
// two builders (diffeq, ewf) are classic HLS benchmarks *without*
// conditionals; they act as negative controls — power management must
// find nothing to gate — and as workloads for scheduler tests.

#include <string_view>
#include <vector>

#include "cdfg/graph.hpp"

namespace pmsched {
namespace circuits {

/// |a-b| from Figures 1-2: one comparison, two subtractions, one mux.
[[nodiscard]] Graph absdiff();

/// Card dealer: two-branch comparison tree with a shared total.
/// Table I row: CP 4, MUX 3, COMP 3, + 2, - 1, * 0.
[[nodiscard]] Graph dealer();

/// Subtractive GCD iteration with done-detection and writeback selects.
/// Table I row: CP 5, MUX 6, COMP 2, + 0, - 1, * 0.
[[nodiscard]] Graph gcd();

/// Vending machine: coin valuation, price check, change, display path.
/// Table I row: CP 5, MUX 6, COMP 3, + 3, - 3, * 2.
[[nodiscard]] Graph vender();

/// 16-iteration CORDIC rotation with mixed update styles.
/// Table I row: CP 48, MUX 47, COMP 16, + 43, - 46, * 0.
[[nodiscard]] Graph cordic();

/// HAL differential-equation solver (no conditionals; negative control).
[[nodiscard]] Graph diffeq();

/// 8-tap FIR filter (pure dataflow; adder/multiplier balance workload).
[[nodiscard]] Graph fir8();

/// Auto-regressive lattice filter (ARF), the multiplier-heavy HLS classic.
[[nodiscard]] Graph arf();

/// Elliptic wave filter (no conditionals; scheduler stress workload).
[[nodiscard]] Graph ewf();

/// All four paper circuits in Table I order.
struct NamedCircuit {
  const char* name;
  Graph (*build)();
};
[[nodiscard]] const std::vector<NamedCircuit>& paperCircuits();

/// The control-step budgets evaluated in Table II, per circuit.
[[nodiscard]] std::vector<int> tableIISteps(std::string_view circuitName);

}  // namespace circuits
}  // namespace pmsched
