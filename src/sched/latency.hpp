#pragma once
// Operation latency model (extension beyond the paper).
//
// The paper assumes every operation fits one control step ("Assume that one
// control step is required for each of the three operations"). Real
// datapaths often give the multiplier two or more cycles; that changes both
// time frames and — more interestingly — power-management feasibility,
// because a multi-cycle consumer pushes its operand deadlines apart. The
// model defaults to unit latency everywhere, so the paper's behaviour is
// untouched unless a caller opts in.

#include <array>

#include "cdfg/op.hpp"

namespace pmsched {

struct LatencyModel {
  /// Control steps occupied by one operation of each unit class.
  std::array<int, kNumUnitClasses> cycles{};

  [[nodiscard]] static LatencyModel unit() {
    LatencyModel m;
    m.cycles.fill(1);
    return m;
  }

  /// The common realistic variant: everything single-cycle except the
  /// multiplier.
  [[nodiscard]] static LatencyModel multiCycleMultiplier(int mulCycles = 2) {
    LatencyModel m = unit();
    m.cycles[unitIndex(ResourceClass::Multiplier)] = mulCycles;
    return m;
  }

  /// Latency of an operation; transparent kinds take zero steps.
  [[nodiscard]] int latencyOf(OpKind kind) const {
    const ResourceClass rc = resourceClassOf(kind);
    return rc == ResourceClass::None ? 0 : cycles[unitIndex(rc)];
  }

  [[nodiscard]] bool isUnit() const {
    for (const int c : cycles)
      if (c != 1) return false;
    return true;
  }

  friend bool operator==(const LatencyModel&, const LatencyModel&) = default;
};

}  // namespace pmsched
