#pragma once
// Shared (OR-composed) gating — an extension beyond the paper's per-mux rule.
//
// The paper's transform skips any operation whose result fans out "to other
// nodes besides the current multiplexor". Yet the paper's own dealer row
// (+ = 1.75 at 6 control steps) implies an adder that runs 3 cycles in 4 —
// a probability only reachable when a unit shared by several conditional
// consumers is activated under the OR of their conditions. This pass
// implements exactly that:
//
//   For every operation not already gated, if EVERY data use of its result
//   is conditional (an input of a managed mux's gated side, or a gated /
//   shared-gated consumer), the union of the consumers' activation
//   conditions — a DNF over select literals — becomes the operation's
//   latch-enable, provided the schedule can place the operation after all
//   selects in the (simplified) union's support.
//
// Consumers are processed before producers (reverse topological order), so
// shared conditions cascade upstream.

#include "sched/power_transform.hpp"

namespace pmsched {

/// Which gating rule the evaluation flow applies.
enum class GatingMode {
  Strict,  ///< paper's rule only (per-mux exclusive cones)
  Shared,  ///< paper's rule + OR-composed gating of shared operations
};

/// Run the shared-gating pass over an already-transformed design.
/// Inserts the required control edges into design.graph and fills
/// design.sharedGating. Returns the number of newly gated operations.
/// Per-candidate schedulability runs incrementally on a TimeFrameOracle.
/// With a budget, the pass stops at the last accepted gate once the budget
/// is exhausted or the DNF arena outgrows the term cap (the pass holds
/// interned handles, so it cannot trim — it stops gating instead); the
/// design stays valid and the degraded flag is set.
///
/// `slackRejects`, when given, receives the number of probeworthy candidates
/// the oracle rejected for schedulability (structural rejections are not
/// counted). Zero means every candidate that could be gated was gated — the
/// saturation half of the explore driver's certificate (docs/EXPLORE.md):
/// the same pass at a looser step budget makes identical decisions.
int applySharedGating(PowerManagedDesign& design, const RunBudget* budget = nullptr,
                      int* slackRejects = nullptr);

/// From-scratch variant (frames recomputed per candidate); retained as the
/// differential-test reference for applySharedGating.
int applySharedGatingReference(PowerManagedDesign& design);

}  // namespace pmsched
