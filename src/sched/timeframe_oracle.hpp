#pragma once
// Incremental ASAP/ALAP time-frame oracle.
//
// The paper's transform (Fig. 3, steps 5-9) and its extensions all share the
// same inner loop: tentatively add a batch of control-precedence edges, ask
// "does every node still have ASAP <= ALAP within the step budget?", then
// commit or revert. computeTimeFrames() answers that from scratch — a fresh
// topological order plus two O(V+E) sweeps per query. The oracle instead
// owns the frames and *repairs* them per batch with the same topo-ordered
// worklist machinery the incremental force-directed scheduler introduced
// (PR 1), generalized to edge batches with undo:
//
//   push(edges)  tentatively add a batch; frames repaired incrementally
//   pop()        revert the innermost batch; frames restored exactly
//   commit()     keep the innermost batch (allowed at depth 1 only)
//   pin(n, s)    permanently fix a scheduled node's start step (the
//                force-directed scheduler's pinning decisions)
//
// Invariant: after every operation, the live ASAP values equal what
// computeTimeFrames(g, steps, <all live edges>, model) — respectively
// framesWithPins for pinned use — would compute from scratch. The frame
// recurrences have a unique fixed point on a DAG, so repairing only the
// nodes whose value actually changes reaches the same integers, and pop()
// restores the previous fixed point from an undo log instead of
// recomputing.
//
// Two structural shortcuts keep probe batches cheap; neither changes any
// observable value:
//
//  * Lazy ALAP. Feasibility is equivalent to "no scheduled node's finish
//    exceeds the budget": if asap[n] > alap[n] anywhere, following n's
//    binding consumer chain to its terminal node m (whose alap is the
//    budget cap steps - lat(m) + 1) accumulates the same latencies on both
//    sides, giving asap[m] + lat(m) - 1 > steps. The forward pass alone
//    therefore answers feasible(); the backward pass runs at commit() or
//    on the first ALAP read (frames()/alap()/firstInfeasible()), and probe
//    batches that are pushed, tested and popped never pay for it.
//  * Infeasible probes may abort. push(edges, /*probe=*/true) stops
//    repairing at the first over-budget node and poisons the batch:
//    feasible() is false, commit()/push() are refused, and pop() restores
//    the exact pre-push state from the undo log. Probe mode is for
//    callers that only branch on feasibility (the optimal-search DFS,
//    shared gating); the default mode repairs to the fixed point so
//    firstInfeasible() can name the same node the reference would.
//
// Differential tests (tests/test_timeframe_oracle.cpp) assert frame
// equality against computeTimeFrames under randomized batch sequences.
//
// The oracle snapshots the graph's CSR views at construction; the graph
// must not be mutated while the oracle is alive. Batches and pins must not
// be mixed (pin() requires depth() == 0): the transform consumers only
// push/pop/commit, the scheduler only pins.

#include <optional>
#include <queue>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cdfg/graph.hpp"
#include "sched/latency.hpp"
#include "sched/timeframe.hpp"

namespace pmsched {

class TimeFrameOracle {
 public:
  /// (before, after): `after` must be scheduled strictly after `before`.
  using Edge = std::pair<NodeId, NodeId>;

  /// Computes the initial frames (no extra edges, no pins). `errorContext`
  /// prefixes thrown messages so callers keep their historical diagnostics.
  TimeFrameOracle(const Graph& g, int steps, const LatencyModel& model = LatencyModel::unit(),
                  std::string errorContext = "TimeFrameOracle");

  // ---- tentative edge batches ---------------------------------------------

  /// Add a batch of tentative edges and repair the frames. Throws
  /// SynthesisError (and leaves the oracle unchanged) if the batch creates
  /// a cycle. An empty batch is valid and costs nothing. With `probe` the
  /// repair may stop at the first infeasibility (see header comment);
  /// a poisoned probe batch only supports pop().
  void push(std::span<const Edge> edges, bool probe = false);
  /// Revert the innermost batch, restoring the previous frames exactly.
  void pop();
  /// Make the innermost batch permanent. Only valid at depth() == 1 and on
  /// a feasible (non-poisoned) batch.
  void commit();
  /// Number of open (uncommitted) batches.
  [[nodiscard]] std::size_t depth() const { return depth_; }

  // ---- pins (force-directed scheduler) ------------------------------------

  /// Permanently fix scheduled node `n` to start step `step` and repair
  /// both directions eagerly. Throws InfeasibleError when a repaired value
  /// violates any pin, with the same "<context>: pin below ASAP/above ALAP
  /// for '<name>'" messages the reference scheduler produces. Requires
  /// depth() == 0.
  void pin(NodeId n, int step);

  // ---- queries -------------------------------------------------------------

  [[nodiscard]] int asap(NodeId n) const { return asap_[n]; }
  /// Reading an ALAP value flushes the lazy backward repair of every open
  /// batch (any depth; ProbeFarm replicas stack committed batches and read
  /// diagnostics on top of them). Throws on an aborted probe batch.
  [[nodiscard]] int alap(NodeId n) {
    ensureAlap();
    return alap_[n];
  }
  /// Stable views into the frame arrays (valid for the oracle's lifetime;
  /// contents change as batches and pins are applied). alapView() flushes
  /// the lazy backward repair; with pins only (no batches) both views are
  /// always current.
  [[nodiscard]] std::span<const int> asapView() const { return asap_; }
  [[nodiscard]] std::span<const int> alapView() {
    ensureAlap();
    return alap_;
  }

  /// O(1): true iff every scheduled node still fits the budget — equivalent
  /// to "every scheduled node has ASAP <= ALAP" at the frame fixed point.
  [[nodiscard]] bool feasible() const { return overEnd_ == 0; }
  /// First infeasible node in id order (flushes ALAP; diagnostics only).
  [[nodiscard]] std::optional<NodeId> firstInfeasible();

  /// Materialize the current frames as a TimeFrames value (flushes ALAP).
  [[nodiscard]] TimeFrames frames();

  // ---- committed-state snapshots (ProbeFarm replicas) ----------------------

  /// A committed frame state: the fixed-point frames plus the live extra
  /// edges that produced them. O(V + E) to capture or restore — the
  /// ProbeFarm shares one per committed version so replicas jump between
  /// versions instead of replaying every batch repair.
  struct FrameSnapshot {
    std::vector<int> asap;
    std::vector<int> alap;
    std::vector<Edge> extraEdges;
    int overEnd = 0;
  };

  /// Capture the current committed state. Requires depth() == 0 (commit()
  /// flushed the lazy ALAP, so the arrays are exact) and no pins.
  [[nodiscard]] FrameSnapshot snapshot() const;

  /// Replace the committed state with a snapshot taken from an oracle over
  /// the SAME graph, budget and model. Requires depth() == 0 and no pins;
  /// changedNodes() is reset, not populated.
  void restore(const FrameSnapshot& s);

  /// Restore the construction-time state (no extra edges, no pins).
  void restoreInitial() { restore(initial_); }

  /// Nodes whose asap or alap changed in the last push()/pop()/pin(),
  /// each listed once. Used by the force-directed force-cache invalidation.
  [[nodiscard]] std::span<const NodeId> changedNodes() const { return changed_; }

 private:
  struct Batch {
    std::vector<Edge> edges;
    std::vector<std::pair<NodeId, int>> asapUndo;  ///< (node, previous value)
    std::vector<std::pair<NodeId, int>> alapUndo;
    bool bwdDone = false;   ///< backward repair ran for this batch
    bool poisoned = false;  ///< probe stopped at the first infeasibility
  };

  enum class RepairResult { Ok, Cycle, Infeasible };

  [[nodiscard]] int recomputeAsap(NodeId v) const;
  [[nodiscard]] int recomputeAlap(NodeId v) const;
  void setAsap(NodeId v, int value);
  void setAlap(NodeId v, int value);
  void beginChangeEpoch();
  void markChanged(NodeId v);
  RepairResult repairForward(std::span<const NodeId> seeds, Batch* undo, bool abortOnInfeasible);
  void repairBackward(std::span<const NodeId> seeds, Batch* undo);
  /// Run the deferred backward repair of the innermost batch, if any.
  void ensureAlap();
  /// Restore frames from a batch's undo log and detach its edges.
  void undoBatch(Batch& batch);

  template <typename Queue>
  void enqueue(Queue& q, NodeId v) {
    if (inQueue_[v]) return;
    inQueue_[v] = 1;
    q.emplace(topoPos_[v], v);
  }

  const Graph& g_;
  const int steps_;
  const LatencyModel model_;
  const std::string ctx_;
  const CsrAdjacency& fanoutCsr_;
  const CsrAdjacency& ctrlSuccCsr_;
  const CsrAdjacency& ctrlPredCsr_;

  std::vector<char> sched_;
  std::vector<int> lat_;                 ///< latency (0 for transparent nodes)
  std::vector<int> latestStart_;         ///< steps - lat + 1 (scheduled), else steps
  std::vector<std::uint32_t> topoPos_;   ///< position in the cached topo order
  int bound_ = 0;                        ///< asap values beyond this imply a cycle

  std::vector<int> asap_;
  std::vector<int> alap_;
  std::vector<int> pin_;                 ///< 0 = unpinned
  int overEnd_ = 0;                      ///< scheduled nodes with asap > latestStart

  std::vector<std::vector<NodeId>> xSucc_;  ///< live extra edges (all batches)
  std::vector<std::vector<NodeId>> xPred_;
  /// Pooled batch records: slots [0, depth_) are open; slots keep their
  /// vector capacity across pushes (the DFS consumers push/pop thousands of
  /// times, so per-push allocation is off the hot path).
  std::vector<Batch> batchPool_;
  std::size_t depth_ = 0;

  std::vector<NodeId> changed_;
  std::vector<char> changedFlag_;
  std::vector<char> inQueue_;

  FrameSnapshot initial_;  ///< construction-time frames (restoreInitial)

  // Pooled repair scratch (drained after every repair; capacity persists).
  using MinItem = std::pair<std::uint32_t, NodeId>;
  std::priority_queue<MinItem, std::vector<MinItem>, std::greater<MinItem>> fwdQueue_;
  std::priority_queue<MinItem> bwdQueue_;
  std::vector<NodeId> seedsF_;
  std::vector<NodeId> seedsB_;
};

/// `count` seeded random acyclic edge batches on `g` (`edgesPerBatch`
/// edges each, oriented along the cached topological order so any union
/// with other such batches stays acyclic). One recipe shared by
/// measureMedianProbeNs and the crossover benchmarks (BM_OracleProbeInline)
/// so both sides of the speculation calibration probe the same shape.
[[nodiscard]] std::vector<std::vector<TimeFrameOracle::Edge>> seededProbeBatches(
    const Graph& g, int count, int edgesPerBatch = 2);

/// Median wall-clock nanoseconds of one full incremental probe (push of a
/// small random acyclic edge batch, feasibility, pop) on `g`, over `rounds`
/// seeded batches. The speculation self-calibration (probe_farm.hpp)
/// divides this by g.size() to estimate probe cost on arbitrary graphs.
[[nodiscard]] double measureMedianProbeNs(const Graph& g, int steps, int rounds = 33);

}  // namespace pmsched
