#pragma once
// ASAP/ALAP time frames ("slack") for a CDFG under a control-step budget.
//
// Frames are the paper's working state: its algorithm (Fig. 3) repeatedly
// *tightens* ASAP/ALAP values per multiplexor and commits or reverts the
// tightening depending on feasibility (ASAP <= ALAP for every node).

#include <vector>

#include "cdfg/graph.hpp"
#include "sched/latency.hpp"

namespace pmsched {

/// ASAP/ALAP step for every node (1-based control steps).
///
/// For scheduled nodes, asap/alap bound the step the node may occupy.
/// For transparent nodes (inputs, constants, wires, outputs) the values are
/// availability times: the step after which the value exists (0 = before
/// step 1). Those nodes are never placed, but carrying their times makes
/// forward/backward propagation uniform.
struct TimeFrames {
  int steps = 0;
  std::vector<int> asap;
  std::vector<int> alap;

  /// True iff every scheduled node has a non-empty frame.
  [[nodiscard]] bool feasible(const Graph& g) const;

  /// alap - asap of a node (only meaningful for scheduled nodes).
  [[nodiscard]] int mobility(NodeId n) const { return alap[n] - asap[n]; }

  /// First infeasible node if any, for diagnostics.
  [[nodiscard]] std::optional<NodeId> firstInfeasible(const Graph& g) const;
};

/// Compute frames for `steps` control steps over data + control edges.
///
/// Additional precedence constraints can be supplied as `extraEdges`
/// (before, after) pairs — the paper's tentative per-mux constraints —
/// without mutating the graph. asap/alap are *start* steps; an operation
/// with latency L occupies [start, start+L-1] under `model`.
[[nodiscard]] TimeFrames computeTimeFrames(
    const Graph& g, int steps,
    const std::vector<std::pair<NodeId, NodeId>>& extraEdges = {},
    const LatencyModel& model = LatencyModel::unit());

}  // namespace pmsched
