#pragma once
// Reduced ordered binary decision diagrams (ROBDDs) over select signals.
//
// The activation analysis needs the exact probability that a DNF over
// independent fair selects holds. Enumerating assignments costs 2^support
// and capped the analysis at 24 variables; an ROBDD represents the same
// function in a number of nodes that is usually far smaller than 2^support,
// and the probability falls out of ONE bottom-up weighted pass over the
// reachable nodes:
//
//   P(false) = 0,  P(true) = 1,  P(node) = (P(lo) + P(hi)) / 2
//
// (variables skipped between a node and its children contribute 1/2 to each
// branch and cancel, so no level correction is needed). All arithmetic is
// exact Rational, so the result is bit-identical to the enumeration path on
// any support it can handle.
//
// Design notes (see docs/CONDITIONS.md):
//  * nodes are hash-consed in a per-manager unique table, so structurally
//    equal functions share one node id — semantic equality is `a == b` on
//    refs, and every memo cache keyed by ref stays valid for the manager's
//    lifetime;
//  * `ite` is the single connective; AND/OR/NOT are one-line wrappers. A
//    computed table memoizes (f, g, h) triples for the manager's lifetime;
//  * the variable order is first-registration order. fromDnf() registers a
//    DNF's support in ascending select-id order before building, which
//    makes conversion deterministic and keeps the per-term chains sorted.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sched/condition.hpp"
#include "support/rational.hpp"

namespace pmsched {

/// Handle to a BDD node inside one BddManager. Refs from different
/// managers must never be mixed (unchecked).
using BddRef = std::uint32_t;

inline constexpr BddRef kBddFalse = 0;
inline constexpr BddRef kBddTrue = 1;
/// Sentinel for "no ref" (importFrom memo tables).
inline constexpr BddRef kBddInvalid = static_cast<BddRef>(-1);

class BddManager {
 public:
  BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  /// The single-variable function "select == value".
  [[nodiscard]] BddRef literal(NodeId select, bool value);

  /// Shannon if-then-else: f ? g : h. The universal connective.
  [[nodiscard]] BddRef ite(BddRef f, BddRef g, BddRef h);

  [[nodiscard]] BddRef bddAnd(BddRef a, BddRef b) { return ite(a, b, kBddFalse); }
  [[nodiscard]] BddRef bddOr(BddRef a, BddRef b) { return ite(a, kBddTrue, b); }
  [[nodiscard]] BddRef bddNot(BddRef a) { return ite(a, kBddFalse, kBddTrue); }

  /// Convert a DNF (terms need not be normalized: duplicate literals are
  /// collapsed, contradictory terms contribute FALSE). Hash-consing makes
  /// the conversion canonical: equivalent DNFs yield the same ref.
  [[nodiscard]] BddRef fromDnf(const GateDnf& dnf);

  /// Register selects as variables in the given order (no-op for already
  /// known ones). The parallel activation analysis uses this to give every
  /// partition manager — and the final merge manager — one identical
  /// variable order, so partition BDDs are structural copies of what the
  /// merge manager builds.
  void registerVariables(std::span<const NodeId> selects);

  /// Recursively copy `f` (a ref of `src`) into this manager, mapping
  /// variables by select id. Requires this manager's variable order to be
  /// consistent with src's on src's variables (see registerVariables);
  /// hash-consing dedups against everything already built here. `memo`
  /// carries src-ref -> dst-ref mappings across calls for one src; size it
  /// to src.nodeCount() filled with kBddInvalid.
  [[nodiscard]] BddRef importFrom(const BddManager& src, BddRef f, std::vector<BddRef>& memo);

  /// Exact P(f) under independent fair selects. Memoized per node for the
  /// manager's lifetime, so repeated queries over a family of conditions
  /// that share structure (e.g. nested gating) cost only the new nodes.
  /// The accumulation runs in 128-bit dyadic arithmetic, so supports far
  /// beyond Rational's 62-bit denominators cannot overflow mid-recursion;
  /// only a FINAL value whose reduced denominator exceeds 2^62 throws —
  /// BudgetExceededError(RationalWidth) carrying the support width, so the
  /// activation analysis can degrade to probabilityApprox() instead of
  /// letting the run die.
  [[nodiscard]] Rational probability(BddRef f);

  /// Bounded-error double estimate of P(f): one bottom-up pass in IEEE
  /// doubles. `error` bounds |value - P(f)| (each node adds at most one
  /// half-ulp rounding; halving is exact), so it grows with the node count,
  /// not the support width — the degradation target for conditions past
  /// probability()'s exact range. Never throws.
  struct ApproxProbability {
    double value = 0;
    double error = 0;
  };
  [[nodiscard]] ApproxProbability probabilityApprox(BddRef f);

  /// Distinct selects the function actually depends on, ascending id.
  [[nodiscard]] std::vector<NodeId> support(BddRef f) const;

  /// Live node count including the two terminals (diagnostics/tests).
  [[nodiscard]] std::size_t nodeCount() const { return nodes_.size(); }

  /// Cap the node arena (0 = unlimited, the default). Once nodeCount()
  /// would exceed the cap, makeNode throws BudgetExceededError(BddNodes);
  /// consumers catch it at the per-condition boundary and degrade (the
  /// manager stays valid — only the new node is refused).
  void setNodeLimit(std::size_t maxNodes) { nodeLimit_ = maxNodes; }

  /// Drop every node and cache, keeping only the terminals. Invalidates
  /// all outstanding refs — only callers that hold none may use it (the
  /// thread-local manager behind dnfProbability does, between queries).
  void clear();

 private:
  static constexpr std::uint32_t kTermVar = static_cast<std::uint32_t>(-1);

  struct Node {
    std::uint32_t var;  // index into order_, kTermVar for terminals
    BddRef lo;
    BddRef hi;
  };

  struct IteKey {
    BddRef f, g, h;
    friend bool operator==(const IteKey&, const IteKey&) = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      std::uint64_t x = (static_cast<std::uint64_t>(k.f) << 32) | k.g;
      x ^= static_cast<std::uint64_t>(k.h) * 0x9E3779B97F4A7C15ULL;
      x ^= x >> 29;
      x *= 0xBF58476D1CE4E5B9ULL;
      x ^= x >> 32;
      return static_cast<std::size_t>(x);
    }
  };

  /// Probabilities are accumulated as exact dyadics num / 2^exp with a
  /// 128-bit numerator (num <= 2^exp since P <= 1, and num is kept odd, so
  /// exp is the reduced denominator width). This is what lifts the old
  /// 62-variable ceiling: only results whose REDUCED denominator exceeds
  /// Rational's 2^62 fail, with a clear diagnostic instead of an
  /// "add/mul overflow" from the middle of the recursion.
  struct Dyadic {
    unsigned __int128 num = 0;
    unsigned exp = 0;
  };
  [[nodiscard]] Dyadic probabilityWide(BddRef f);

  /// Hash-consed node constructor; maintains the ROBDD invariants
  /// (lo != hi, child vars strictly below — i.e. numerically above — var).
  [[nodiscard]] BddRef makeNode(std::uint32_t var, BddRef lo, BddRef hi);

  /// Variable index of a select, registering it at the end of the order on
  /// first sight.
  [[nodiscard]] std::uint32_t varIndex(NodeId select);

  /// Cofactor of f with respect to variable v (f unchanged when its top
  /// variable is below v).
  [[nodiscard]] BddRef cofactor(BddRef f, std::uint32_t v, bool value) const {
    const Node& n = nodes_[f];
    if (n.var != v) return f;
    return value ? n.hi : n.lo;
  }

  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, std::vector<BddRef>> unique_;
  std::unordered_map<IteKey, BddRef, IteKeyHash> computed_;
  std::unordered_map<BddRef, Dyadic> probCache_;
  std::unordered_map<BddRef, ApproxProbability> approxCache_;
  std::unordered_map<NodeId, std::uint32_t> varOf_;
  std::vector<NodeId> order_;  // var index -> select id
  std::size_t nodeLimit_ = 0;  // 0 = unlimited
};

}  // namespace pmsched
