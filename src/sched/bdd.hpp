#pragma once
// Reduced ordered binary decision diagrams (ROBDDs) over select signals.
//
// The activation analysis needs the exact probability that a DNF over
// independent fair selects holds. Enumerating assignments costs 2^support
// and capped the analysis at 24 variables; an ROBDD represents the same
// function in a number of nodes that is usually far smaller than 2^support,
// and the probability falls out of ONE bottom-up weighted pass over the
// reachable nodes:
//
//   P(false) = 0,  P(true) = 1,  P(node) = (P(lo) + P(hi)) / 2
//
// (variables skipped between a node and its children contribute 1/2 to each
// branch and cancel, so no level correction is needed). All arithmetic is
// exact Rational, so the result is bit-identical to the enumeration path on
// any support it can handle.
//
// Design notes (see docs/CONDITIONS.md):
//  * nodes live in one contiguous arena (std::vector) addressed by 32-bit
//    index refs, hash-consed through per-level open-addressing unique
//    subtables (power-of-two, linear probing) — no pointer-chasing buckets
//    on the makeNode/ite hot path, and the per-level split is exactly what
//    sifting needs to swap adjacent levels in place;
//  * `ite` is the single connective; AND/OR/NOT are one-line wrappers. A
//    direct-mapped lossy computed table memoizes (f, g, h) triples; losing
//    an entry only costs a recomputation that re-finds existing nodes, so
//    node numbering stays deterministic;
//  * the variable order is first-registration order until sifting moves it.
//    fromDnf() registers a DNF's support in ascending select-id order
//    before building, which makes conversion deterministic;
//  * dynamic reordering (Rudell-style sifting) swaps adjacent levels IN
//    PLACE: every live ref keeps denoting the same function, so refs,
//    probability caches and importFrom memos held by callers stay valid
//    across a sift. Liveness is "reachable from any ref a public call ever
//    returned"; everything else is garbage the sift may drop from the
//    unique tables (the arena itself never shrinks, so refs are never
//    reused).

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "sched/condition.hpp"
#include "support/rational.hpp"

namespace pmsched {

/// Handle to a BDD node inside one BddManager. Refs from different
/// managers must never be mixed (unchecked).
using BddRef = std::uint32_t;

inline constexpr BddRef kBddFalse = 0;
inline constexpr BddRef kBddTrue = 1;
/// Sentinel for "no ref" (importFrom memo tables, empty unique-table slots).
inline constexpr BddRef kBddInvalid = static_cast<BddRef>(-1);

/// Dynamic-reordering policy for every BddManager in the process.
enum class BddReorderMode {
  Auto,  ///< sift when a manager's arena crosses its growth watermark
  Off,   ///< never reorder (variable order = first-registration order)
};

/// Effective mode: programmatic override if set, else PMSCHED_BDD_REORDER
/// (off|auto), else Auto.
[[nodiscard]] BddReorderMode bddReorderMode();
/// Override the mode for this process (tests, --bdd-reorder).
void setBddReorderMode(BddReorderMode mode);

/// Initial node-count watermark that arms the Auto trigger: programmatic
/// override if set, else PMSCHED_BDD_REORDER_WATERMARK, else 4096.
[[nodiscard]] std::size_t bddReorderWatermark();
/// Override the initial watermark (0 = back to env/default).
void setBddReorderWatermark(std::size_t nodes);

class BddManager {
 public:
  BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  /// The single-variable function "select == value".
  [[nodiscard]] BddRef literal(NodeId select, bool value);

  /// Shannon if-then-else: f ? g : h. The universal connective.
  [[nodiscard]] BddRef ite(BddRef f, BddRef g, BddRef h);

  [[nodiscard]] BddRef bddAnd(BddRef a, BddRef b) { return ite(a, b, kBddFalse); }
  [[nodiscard]] BddRef bddOr(BddRef a, BddRef b) { return ite(a, kBddTrue, b); }
  [[nodiscard]] BddRef bddNot(BddRef a) { return ite(a, kBddFalse, kBddTrue); }

  /// Convert a DNF (terms need not be normalized: duplicate literals are
  /// collapsed, contradictory terms contribute FALSE). Hash-consing makes
  /// the conversion canonical: equivalent DNFs yield the same ref — and
  /// in-place sifting preserves that, so the guarantee survives reordering.
  /// Under BddReorderMode::Auto this is the one entry point that may
  /// trigger a sift (never mid-build, never inside ite or importFrom).
  [[nodiscard]] BddRef fromDnf(const GateDnf& dnf);

  /// Register selects as variables in the given order (no-op for already
  /// known ones). The parallel activation analysis uses this to give every
  /// partition manager — and the final merge manager — one identical
  /// variable order, so partition BDDs are structural copies of what the
  /// merge manager builds.
  void registerVariables(std::span<const NodeId> selects);

  /// Recursively copy `f` (a ref of `src`) into this manager, mapping
  /// variables by select id. When this manager's variable order is
  /// consistent with src's on src's variables the copy is a cheap
  /// structural walk; otherwise (either side reordered) it falls back to a
  /// memoized ite-based transfer that is correct under any order pair.
  /// `memo` carries src-ref -> dst-ref mappings across calls for one src;
  /// size it to src.nodeCount() filled with kBddInvalid.
  [[nodiscard]] BddRef importFrom(const BddManager& src, BddRef f, std::vector<BddRef>& memo);

  /// Exact P(f) under independent fair selects. Memoized per node for the
  /// manager's lifetime, so repeated queries over a family of conditions
  /// that share structure (e.g. nested gating) cost only the new nodes.
  /// The accumulation runs in 128-bit dyadic arithmetic, so supports far
  /// beyond Rational's 62-bit denominators cannot overflow mid-recursion;
  /// only a FINAL value whose reduced denominator exceeds 2^62 throws —
  /// BudgetExceededError(RationalWidth) carrying the support width, so the
  /// activation analysis can degrade to probabilityApprox() instead of
  /// letting the run die. Order-independent: a sift never changes it.
  [[nodiscard]] Rational probability(BddRef f);

  /// Bounded-error double estimate of P(f): one bottom-up pass in IEEE
  /// doubles. `error` bounds |value - P(f)| (each node adds at most one
  /// half-ulp rounding; halving is exact), so it grows with the node count,
  /// not the support width — the degradation target for conditions past
  /// probability()'s exact range. Never throws. The value/error pair
  /// depends on the node structure, so it is deterministic for a fixed
  /// variable order but may differ across orders (the exact path doesn't).
  struct ApproxProbability {
    double value = 0;
    double error = 0;
  };
  [[nodiscard]] ApproxProbability probabilityApprox(BddRef f);

  /// Distinct selects the function actually depends on, ascending id.
  [[nodiscard]] std::vector<NodeId> support(BddRef f) const;

  /// One full Rudell sifting pass: each variable (most populated level
  /// first) is moved through the order by in-place adjacent-level swaps and
  /// parked at its best position. Refs keep their functions, so handles,
  /// probability caches and import memos stay valid. A node-cap trip or an
  /// injected fault ("bdd-sift") between swaps aborts cleanly: the manager
  /// stays canonical for whatever order it reached. No-op under pressure of
  /// fewer than two variables.
  void sift();

  /// Auto-trigger used by fromDnf: sift when the arena has crossed the
  /// watermark, then rearm the watermark at 2x the post-sift size.
  void maybeReorder();

  /// Sifting passes completed (including aborted ones) / aborted mid-pass.
  [[nodiscard]] std::size_t reorderCount() const { return reorders_; }
  [[nodiscard]] std::size_t reorderAborts() const { return reorderAborts_; }

  /// Pin/unpin: while pinned() the owner promises there are outstanding
  /// refs, and maintenance that would invalidate them (the thread-local
  /// dnfProbability manager's periodic clear) must be skipped. sift() needs
  /// no pin — it preserves refs.
  void pin() { ++pins_; }
  void unpin() { --pins_; }
  [[nodiscard]] bool pinned() const { return pins_ > 0; }

  /// Bumped by every clear(); lets holders assert their refs' generation.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Live node count including the two terminals (diagnostics/tests).
  /// Counts every arena slot; sifting may leave unreferenced slots behind.
  [[nodiscard]] std::size_t nodeCount() const { return nodes_.size(); }

  /// Cap the node arena (0 = unlimited, the default). Once nodeCount()
  /// would exceed the cap, makeNode throws BudgetExceededError(BddNodes);
  /// consumers catch it at the per-condition boundary and degrade (the
  /// manager stays valid — only the new node is refused). sift() checks the
  /// cap BEFORE mutating a level pair, so a trip aborts the pass cleanly.
  void setNodeLimit(std::size_t maxNodes) { nodeLimit_ = maxNodes; }

  /// Drop every node and cache, keeping only the terminals. Invalidates
  /// all outstanding refs — only callers that hold none may use it (the
  /// thread-local manager behind dnfProbability does, between queries,
  /// unless a holder pinned it). Bumps epoch().
  void clear();

 private:
  static constexpr std::uint32_t kTermVar = static_cast<std::uint32_t>(-1);

  struct Node {
    std::uint32_t var;  // index into order_, kTermVar for terminals
    BddRef lo;
    BddRef hi;
  };

  /// Open-addressing unique subtable for one level (variable position).
  /// Slots hold refs (kBddInvalid = empty), keyed by the node's (lo, hi) —
  /// the var is implied by the level. Power-of-two capacity, linear
  /// probing, grown at ~70% load. Entries are only removed wholesale
  /// (clear / sift rebuild), so no tombstones are needed.
  struct Level {
    std::vector<BddRef> slots;
    std::size_t count = 0;
  };

  /// Direct-mapped lossy computed-table entry for ite(f, g, h) -> r.
  /// f == kBddInvalid marks an empty entry.
  struct IteEntry {
    BddRef f = kBddInvalid;
    BddRef g = kBddFalse;
    BddRef h = kBddFalse;
    BddRef r = kBddFalse;
  };

  /// Probabilities are accumulated as exact dyadics num / 2^exp with a
  /// 128-bit numerator (num <= 2^exp since P <= 1, and num is kept odd, so
  /// exp is the reduced denominator width). This is what lifts the old
  /// 62-variable ceiling: only results whose REDUCED denominator exceeds
  /// Rational's 2^62 fail, with a clear diagnostic instead of an
  /// "add/mul overflow" from the middle of the recursion.
  /// exp == kDyadicUnset marks an empty flat-cache slot.
  static constexpr unsigned kDyadicUnset = static_cast<unsigned>(-1);
  struct Dyadic {
    unsigned __int128 num = 0;
    unsigned exp = kDyadicUnset;
  };
  [[nodiscard]] Dyadic probabilityWide(BddRef f);

  /// Hash-consed node constructor; maintains the ROBDD invariants
  /// (lo != hi, child vars strictly below — i.e. numerically above — var).
  [[nodiscard]] BddRef makeNode(std::uint32_t var, BddRef lo, BddRef hi);
  /// Hash-cons lookup/insert without the fault point or cap check — used
  /// inside a level swap after the cap was pre-checked (swaps are atomic).
  [[nodiscard]] BddRef makeNodeRaw(std::uint32_t var, BddRef lo, BddRef hi);
  /// Insert r (known absent) into its level's subtable.
  void insertUnique(BddRef r);
  void growLevel(Level& lv, std::uint32_t var);

  /// Internal ite recursion; public ite() additionally registers the
  /// result as a root for sift()'s liveness marking.
  [[nodiscard]] BddRef iteRec(BddRef f, BddRef g, BddRef h);

  /// Remember r as externally held: every ref a public call returns is a
  /// liveness root for sift(). Deduped via a stamp vector.
  void noteRoot(BddRef r);

  /// importFrom's two strategies (see importFrom).
  [[nodiscard]] BddRef importStructural(const BddManager& src, BddRef f, std::vector<BddRef>& memo);
  [[nodiscard]] BddRef importByIte(const BddManager& src, BddRef f, std::vector<BddRef>& memo);

  /// The one shared bottom-up traversal (satellite of PR 7): append to
  /// `out` every node reachable from `roots` (nonterminals only), children
  /// strictly before parents, skipping subgraphs rooted at nodes for which
  /// `done(r)` is true (their value is already cached). Used by
  /// probabilityWide, probabilityApprox and sift()'s live marking.
  /// Stamp-based visited marks, so no per-call O(arena) reset.
  template <class Done>
  void collectBottomUp(std::span<const BddRef> roots, Done done, std::vector<BddRef>& out);

  /// Swap order positions i and i+1 in place. All refs keep their
  /// functions; only nodes in the two levels' subtables are touched. May
  /// create nodes at level i+1. Throws (before any mutation) on a node-cap
  /// trip or an armed "bdd-sift" fault.
  void swapLevels(std::uint32_t i);

  /// Variable index of a select, registering it at the end of the order on
  /// first sight.
  [[nodiscard]] std::uint32_t varIndex(NodeId select);

  /// Cofactor of f with respect to variable v (f unchanged when its top
  /// variable is below v).
  [[nodiscard]] BddRef cofactor(BddRef f, std::uint32_t v, bool value) const {
    const Node& n = nodes_[f];
    if (n.var != v) return f;
    return value ? n.hi : n.lo;
  }

  /// Sum of live subtable entries (excludes terminals and dropped garbage).
  [[nodiscard]] std::size_t tableSize() const;

  std::vector<Node> nodes_;               // the arena; never shrinks except clear()
  std::vector<Level> levels_;             // one unique subtable per order position
  std::vector<IteEntry> computed_;        // direct-mapped, lossy
  std::vector<Dyadic> probCache_;         // flat, ref-indexed
  std::vector<ApproxProbability> approxCache_;  // flat, ref-indexed; error < 0 = empty
  std::unordered_map<NodeId, std::uint32_t> varOf_;
  std::vector<NodeId> order_;             // var index -> select id

  std::vector<BddRef> roots_;             // refs returned by public calls (deduped)
  std::vector<std::uint8_t> isRoot_;      // ref-indexed dedup mask for roots_

  std::vector<std::uint32_t> visitStamp_;  // collectBottomUp marks (stamped)
  std::uint32_t visitTick_ = 0;

  std::size_t computedMisses_ = 0;  // since the last computed_ resize

  std::size_t nodeLimit_ = 0;   // 0 = unlimited
  std::size_t watermark_ = 0;   // 0 = not yet armed from bddReorderWatermark()
  std::size_t reorders_ = 0;
  std::size_t reorderAborts_ = 0;
  int pins_ = 0;
  std::uint64_t epoch_ = 0;
};

/// RAII pin on a BddManager (see BddManager::pin).
class BddPin {
 public:
  explicit BddPin(BddManager& m) : m_(&m) { m.pin(); }
  ~BddPin() {
    if (m_ != nullptr) m_->unpin();
  }
  BddPin(BddPin&& o) noexcept : m_(o.m_) { o.m_ = nullptr; }
  BddPin(const BddPin&) = delete;
  BddPin& operator=(const BddPin&) = delete;
  BddPin& operator=(BddPin&&) = delete;

 private:
  BddManager* m_;
};

}  // namespace pmsched
