#pragma once
// ProbeFarm — parallel speculative probing for the power-management
// transform family.
//
// Every transform hot path shares one inner loop: "tentatively add this
// candidate's control edges to the committed set, ask the TimeFrameOracle
// whether the frames stay feasible, then accept or reject". The loop is
// inherently sequential in its *decisions* (a candidate's verdict depends
// on every earlier acceptance), but almost all of its *work* is probes that
// end in rejection — and a probe is a pure function of (committed edge set,
// candidate edges). The farm exploits that: it owns one TimeFrameOracle
// replica per ThreadPool lane and probes a wave of upcoming candidates
// concurrently against the current committed state, while the consuming
// thread walks candidates strictly in the original order and commits
// winners on its own oracle.
//
// Versioned committed state. version() = number of committed batches. Each
// commitBatch() stores a FrameSnapshot of the consumer's oracle — the
// fixed-point frames plus the live extra edges — so a replica serves a job
// at ANY version (newer or older than its last one) by restoring that
// snapshot: an O(V) array copy, not a replay of every batch repair. A
// candidate probe is then a single push/pop on top of the restored state.
//
// Determinism contract (enforced by tests/test_pm_differential.cpp at 1, 2
// and 8 threads): results consumed from the farm are BIT-IDENTICAL to the
// sequential sweep, because
//  * every job's Result carries the version it ran against; the consumer
//    accepts a verdict only under the staleness rules below, all of which
//    reproduce exactly what a fresh probe at the candidate's turn returns;
//  * a STALE INFEASIBLE verdict stays valid: committed batches only grow
//    within a sweep and adding precedence edges can only raise ASAP values,
//    so a batch infeasible against a subset of the committed set is
//    infeasible against the full set (monotonicity);
//  * a STALE FEASIBLE verdict proves nothing; consumers re-validate those
//    on their own oracle (or re-enqueue), paying exactly the sequential
//    cost for that one candidate;
//  * `exact` jobs re-sync the replica to the captured version (up OR down
//    the stack), which is how rejection *reason* diagnostics are produced
//    against precisely the committed set of the candidate's turn even when
//    the consumer has committed further in the meantime.
//
// Thread-safety: enqueue/await/commitBatch are single-consumer (the thread
// that owns the sweep); lanes only claim jobs and fill results. The Graph
// is shared read-only; the farm constructor warms its lazy caches (CSR
// views, topo order) before any lane can touch it.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cdfg/graph.hpp"
#include "sched/latency.hpp"
#include "sched/timeframe_oracle.hpp"
#include "support/thread_pool.hpp"

namespace pmsched {

/// Central auto-mode policy for handing probes to the farm: Force always,
/// Off never; Auto requires more than one configured thread, at least four
/// physical cores (cross-thread wakes on small/oversubscribed machines
/// cost more than a typical repair), and a graph big enough that one probe
/// outweighs one handoff.
[[nodiscard]] bool farmProbesWorthwhile(std::size_t graphSize);

class ProbeFarm {
 public:
  using Edge = TimeFrameOracle::Edge;

  struct Result {
    std::uint64_t version = 0;  ///< committed version the job ran against
    bool ran = false;           ///< false: skipped (stale speculative job)
    bool feasible = false;
    /// Diagnose jobs only: the reference's firstInfeasible() node.
    std::optional<NodeId> firstInfeasible;
    /// A SynthesisError (cycle) raised by the probe, captured on the lane;
    /// the consumer rethrows it at the candidate's turn, in order.
    std::exception_ptr error;
  };

  /// Cheap: the drain tasks (one per pool lane beyond the caller's lane 0)
  /// start on the first enqueue, and replicas are built lazily on their
  /// lanes — an unprobed farm costs nothing, so consumers construct one
  /// unconditionally and let the candidate stream decide.
  ProbeFarm(const Graph& g, int steps, const LatencyModel& model, std::string errorContext);
  ~ProbeFarm();

  ProbeFarm(const ProbeFarm&) = delete;
  ProbeFarm& operator=(const ProbeFarm&) = delete;

  /// Total lanes (caller included) — the configured thread count.
  [[nodiscard]] std::size_t lanes() const { return lanes_; }

  /// Number of committed batches (the version speculative jobs race with).
  [[nodiscard]] std::uint64_t version() const;

  /// Advance the committed state to version()+1. `committedState` is the
  /// consumer's oracle AFTER pushing and committing the accepted batch:
  /// its snapshot (frames plus the full live edge set) is what replicas
  /// restore to serve jobs at the new version — an O(V) copy instead of
  /// replaying every batch repair per lane.
  void commitBatch(const TimeFrameOracle& committedState);

  /// Enqueue a probe of `edges` against the current committed state.
  /// `diagnose` runs the repair to the fixed point and fills
  /// firstInfeasible on rejection (reason strings); otherwise the probe
  /// may abort at the first infeasibility. `exact` forces the job to run
  /// at the captured version even if the state moved on. Returns a ticket.
  std::size_t enqueue(std::vector<Edge> edges, bool diagnose, bool exact = false);

  /// Block until the ticket resolves. The caller participates: an
  /// unclaimed job runs inline on the caller's replica (lane 0).
  [[nodiscard]] Result await(std::size_t ticket);

 private:
  enum class JobState : std::uint8_t { Queued, Claimed, Done };

  struct Job {
    std::vector<Edge> edges;
    std::uint64_t version = 0;
    bool diagnose = false;
    bool exact = false;
    JobState state = JobState::Queued;
    Result result;
  };

  struct Replica {
    std::unique_ptr<TimeFrameOracle> oracle;
    std::uint64_t version = 0;  ///< committed version currently restored
  };

  /// Submit the drain tasks (called on the first enqueue; an unused farm
  /// never touches the pool).
  void startLanes();
  void laneLoop(std::size_t lane);
  Result runJob(Replica& rep, const Job& job);
  void syncReplica(Replica& rep, std::uint64_t target);

  const Graph& g_;
  const int steps_;
  const LatencyModel model_;
  const std::string ctx_;
  const std::size_t lanes_;

  mutable std::mutex mutex_;
  std::condition_variable workCv_;  ///< lanes: "a job is queued" / closing
  std::condition_variable doneCv_;  ///< consumer: "a result landed"
  std::deque<Job> jobs_;            ///< deque: stable refs while appending
  std::size_t nextUnclaimed_ = 0;
  bool closing_ = false;
  std::size_t submittedLanes_ = 0;  ///< drain tasks handed to the pool
  std::size_t exitedLanes_ = 0;     ///< drain tasks that have returned

  std::uint64_t versionLocked_ = 0;  ///< committed batches (under mutex_)
  /// Per committed version (1-based): the consumer's committed frame
  /// state. Deque: stable refs while appending; entries immutable.
  std::deque<TimeFrameOracle::FrameSnapshot> snapshots_;

  std::vector<Replica> replicas_;  ///< one per lane; [0] is the caller's
};

}  // namespace pmsched
