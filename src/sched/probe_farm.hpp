#pragma once
// ProbeFarm — parallel speculative probing for the power-management
// transform family, with a BATCHED WAVE handoff (PR 5).
//
// Every transform hot path shares one inner loop: "tentatively add this
// candidate's control edges to the committed set, ask the TimeFrameOracle
// whether the frames stay feasible, then accept or reject". The loop is
// inherently sequential in its *decisions* (a candidate's verdict depends
// on every earlier acceptance), but almost all of its *work* is probes that
// end in rejection — and a probe is a pure function of (committed edge set,
// candidate edges). The farm exploits that: it owns one TimeFrameOracle
// replica per ThreadPool lane and probes a wave of upcoming candidates
// concurrently against the current committed state, while the consuming
// thread walks candidates strictly in the original order and commits
// winners on its own oracle.
//
// Wave handoff. PR 4 paid one cross-thread handoff PER PROBE: every
// enqueue took the farm mutex and rang a condition variable, every claim
// took the mutex, every result took the mutex and rang back. A handoff
// round-trip costs ~5-10 µs on bare metal and >100 µs on oversubscribed
// VMs — more than a typical incremental repair — which is why PR 4's auto
// mode left paper-scale graphs sequential. PR 5 amortizes the handoff over
// whole waves:
//
//   stage(edges, ...) -> ticket   collect a candidate on the consumer
//                                 thread; no lock, no wake
//   ring()                        publish every staged job as ONE wave:
//                                 one mutex acquisition, one notify_all —
//                                 one cv round per wave, not per probe
//   await(ticket) / tryResult()   consume verdicts in candidate order
//
// A published wave is a fixed block: a job array, a lock-free claim cursor
// (lanes grab SLICES of consecutive jobs with one fetch_add) and a
// lock-free per-job state/result array. Lanes publish a result with one
// release store; they touch the mutex only to discover new waves and to
// wake a consumer that has declared itself blocked (a Dekker-style
// seq_cst flag, so the wake is never lost and never paid when the
// consumer is still ahead of the lanes). enqueue() remains as
// stage()+ring() — a wave of one, which is exactly the PR-4 per-probe
// handoff and is what BM_ProbeFarmHandoffPerProbe measures against
// BM_ProbeFarmHandoffWave.
//
// Versioned committed state. version() = number of committed batches. Each
// commitBatch() stores a FrameSnapshot of the consumer's oracle — the
// fixed-point frames plus the live extra edges — so a replica serves a job
// at ANY version (newer or older than its last one) by restoring that
// snapshot: an O(V) array copy, not a replay of every batch repair. A
// candidate probe is then a single push/pop on top of the restored state.
//
// Determinism contract (enforced by tests/test_pm_differential.cpp at 1, 2
// and 8 threads): results consumed from the farm are BIT-IDENTICAL to the
// sequential sweep, because
//  * every job's Result carries the version it ran against (captured at
//    stage() time — the staging thread is the committing thread, so the
//    version cannot move between stage() and ring()); the consumer
//    accepts a verdict only under the staleness rules below, all of which
//    reproduce exactly what a fresh probe at the candidate's turn returns;
//  * a STALE INFEASIBLE verdict stays valid: committed batches only grow
//    within a sweep and adding precedence edges can only raise ASAP values,
//    so a batch infeasible against a subset of the committed set is
//    infeasible against the full set (monotonicity);
//  * a STALE FEASIBLE verdict proves nothing; consumers re-validate those
//    on their own oracle (or re-enqueue), paying exactly the sequential
//    cost for that one candidate;
//  * `exact` jobs re-sync the replica to the captured version (up OR down
//    the stack), which is how rejection *reason* diagnostics are produced
//    against precisely the committed set of the candidate's turn even when
//    the consumer has committed further in the meantime.
//
// Thread-safety: stage/ring/enqueue/await/tryResult/commitBatch are
// single-consumer (the thread that owns the sweep); lanes only claim jobs
// and fill results. The Graph is shared read-only; the farm constructor
// warms its lazy caches (CSR views, topo order) before any lane can touch
// it.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cdfg/graph.hpp"
#include "sched/latency.hpp"
#include "sched/timeframe_oracle.hpp"
#include "support/thread_pool.hpp"

namespace pmsched {

class RunBudget;

// ---- speculation self-calibration ------------------------------------------

/// Machine-specific costs that decide when farming a probe beats running it
/// inline. Measured once per process on first use (a wave of empty probes
/// through the real farm for the handoff; a median incremental repair on a
/// synthetic graph for the probe cost), or parsed from the
/// PMSCHED_CALIBRATION environment variable ("<handoffNs>,<repairNsPerNode>")
/// for reproducible runs — `pmsched --calibration` prints the measured pair
/// in exactly that format so it can be persisted.
struct SpeculationCalibration {
  /// Wave-amortized cost of handing one probe to a lane and reading its
  /// result back, in nanoseconds. Effectively infinite when the farm
  /// cannot keep a second lane (single thread / single core), which is
  /// what makes auto mode decline on such machines without a special case.
  double handoffNs = 0;
  /// Median incremental frame repair cost per graph node, in nanoseconds:
  /// a probe on an N-node graph is estimated at N * repairNsPerNode.
  double repairNsPerNode = 0;
  /// False when the values came from PMSCHED_CALIBRATION.
  bool measured = false;

  /// Smallest graph (node count) for which one probe's estimated repair
  /// outweighs the amortized handoff, clamped to [64, 1<<22].
  [[nodiscard]] std::size_t crossoverNodes() const;
};

/// Parse a PMSCHED_CALIBRATION value. Accepts two positive finite decimal
/// numbers separated by a comma; values are clamped to sane ranges
/// (handoff to [1, 1e9] ns, per-node repair to [1e-3, 1e6] ns). Returns
/// nullopt on malformed input (wrong arity, trailing garbage, NaN/inf,
/// non-positive values), which falls back to measurement.
[[nodiscard]] std::optional<SpeculationCalibration> parseCalibration(std::string_view text);

/// The process-wide calibration: setSpeculationCalibration() override, else
/// PMSCHED_CALIBRATION, else measured once on first call (a few ms).
/// Returned by value: the memoized slot can be reassigned by
/// setSpeculationCalibration(), so references into it must not escape.
[[nodiscard]] SpeculationCalibration speculationCalibration();

/// Inject a calibration (tests) or reset to automatic (nullopt).
void setSpeculationCalibration(std::optional<SpeculationCalibration> c);

/// Central auto-mode policy for handing probes to the farm: Force always,
/// Off never; Auto requires more than one configured thread and a graph at
/// or above the calibrated crossover — the size where one probe's repair
/// outweighs one wave-amortized handoff on THIS machine.
[[nodiscard]] bool farmProbesWorthwhile(std::size_t graphSize);

class ProbeFarm {
 public:
  using Edge = TimeFrameOracle::Edge;

  struct Result {
    std::uint64_t version = 0;  ///< committed version the job ran against
    bool ran = false;           ///< false: skipped (stale speculative job)
    bool feasible = false;
    /// Diagnose jobs only: the reference's firstInfeasible() node.
    std::optional<NodeId> firstInfeasible;
    /// A SynthesisError (cycle) raised by the probe, captured on the lane;
    /// the consumer rethrows it at the candidate's turn, in order.
    std::exception_ptr error;
  };

  /// Cheap: the drain tasks (one per pool lane beyond the caller's lane 0)
  /// start on the first ring, and replicas are built lazily on their
  /// lanes — an unprobed farm costs nothing, so consumers construct one
  /// unconditionally and let the candidate stream decide.
  ///
  /// With a `budget`, lanes poll it between slice jobs exactly like the
  /// closing flag: an exhausted budget (or a cancelled token) makes every
  /// lane stop claiming, so a cancelled request drains within one
  /// slice-quantum. Jobs a lane has already claimed still publish — a
  /// claimed-but-silent slot would deadlock the consumer's await.
  ProbeFarm(const Graph& g, int steps, const LatencyModel& model, std::string errorContext,
            const RunBudget* budget = nullptr);
  ~ProbeFarm();

  ProbeFarm(const ProbeFarm&) = delete;
  ProbeFarm& operator=(const ProbeFarm&) = delete;

  /// Total lanes (caller included) — the configured thread count.
  [[nodiscard]] std::size_t lanes() const { return lanes_; }

  /// Number of committed batches (the version speculative jobs race with).
  [[nodiscard]] std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Advance the committed state to version()+1. `committedState` is the
  /// consumer's oracle AFTER pushing and committing the accepted batch:
  /// its snapshot (frames plus the full live edge set) is what replicas
  /// restore to serve jobs at the new version — an O(V) copy instead of
  /// replaying every batch repair per lane.
  void commitBatch(const TimeFrameOracle& committedState);

  /// Collect a probe of `edges` into the pending wave: no lock, no wake.
  /// The job's version is captured NOW (stage and commit share a thread,
  /// so it equals the version at ring() time unless the caller commits in
  /// between — which `exact` reason jobs rely on). `diagnose` runs the
  /// repair to the fixed point and fills firstInfeasible on rejection
  /// (reason strings); otherwise the probe may abort at the first
  /// infeasibility. `exact` forces the job to run at the captured version
  /// even if the state moved on. Returns a ticket.
  std::size_t stage(std::vector<Edge> edges, bool diagnose, bool exact = false);

  /// Publish the pending wave: one mutex acquisition, one notify_all.
  /// No-op when nothing is staged.
  void ring();

  /// stage() + ring(): a wave of one — the PR-4 per-probe handoff. Kept
  /// for one-off jobs (exact rejection reasons) and as the benchmark
  /// baseline the wave handoff is measured against.
  std::size_t enqueue(std::vector<Edge> edges, bool diagnose, bool exact = false) {
    const std::size_t ticket = stage(std::move(edges), diagnose, exact);
    ring();
    return ticket;
  }

  /// Block until the ticket resolves. The caller participates: an
  /// unclaimed job runs inline on the caller's replica (lane 0); a claimed
  /// job is spun on briefly, then slept on (the consumer declares itself
  /// blocked so exactly one lane wake is paid). Rings the pending wave
  /// first if the ticket has not been published yet.
  [[nodiscard]] Result await(std::size_t ticket);

  /// Non-blocking: the result if the job already resolved, else nullopt.
  /// Never claims work (used to poll a wave the lanes are draining).
  [[nodiscard]] std::optional<Result> tryResult(std::size_t ticket);

 private:
  /// Per-job lifecycle in a published wave's state array.
  enum JobState : std::uint8_t { kQueued = 0, kClaimed = 1, kDone = 2 };

  struct Job {
    std::vector<Edge> edges;
    std::uint64_t version = 0;
    bool diagnose = false;
    bool exact = false;
    Result result;  ///< written by the claimer, then state -> kDone
  };

  /// One published wave: a fixed job block with a lock-free claim cursor
  /// and per-job state. Lanes claim `slice` consecutive jobs per
  /// fetch_add; the consumer claims single jobs by CAS when it is blocked
  /// on exactly that verdict.
  struct Wave {
    std::vector<Job> jobs;
    std::unique_ptr<std::atomic<std::uint8_t>[]> state;
    std::atomic<std::uint32_t> cursor{0};
    std::uint32_t slice = 1;

    [[nodiscard]] bool exhausted() const {
      return cursor.load(std::memory_order_relaxed) >= jobs.size();
    }
  };

  struct Replica {
    std::unique_ptr<TimeFrameOracle> oracle;
    std::uint64_t version = 0;  ///< committed version currently restored
  };

  /// Submit the drain tasks (called on the first ring; an unused farm
  /// never touches the pool).
  void startLanes();
  void laneLoop(std::size_t lane);
  /// Claim and run slices of `wave` until its cursor is exhausted.
  void drainWave(Wave& wave, std::size_t lane);
  Result runJob(Replica& rep, const Job& job);
  void syncReplica(Replica& rep, std::uint64_t target);
  /// Lane-side result publication: release the result slot, then wake the
  /// consumer only if it declared itself blocked.
  void publishResult(Wave& wave, std::uint32_t slot, Result r);

  const Graph& g_;
  const int steps_;
  const LatencyModel model_;
  const std::string ctx_;
  const std::size_t lanes_;
  const RunBudget* budget_ = nullptr;  ///< optional; lanes poll between slices

  mutable std::mutex mutex_;
  std::condition_variable workCv_;  ///< lanes: "a wave is published" / closing
  std::condition_variable doneCv_;  ///< consumer: "a result landed" / lane exit
  /// Published waves, in ring order. Guarded by mutex_ for structure; the
  /// Wave blocks themselves are accessed lock-free once discovered.
  std::vector<std::unique_ptr<Wave>> waves_;
  std::size_t firstOpenWave_ = 0;  ///< earliest wave that may have unclaimed jobs
  bool closing_ = false;
  std::atomic<bool> closingFlag_{false};  ///< lanes poll between slice jobs
  std::size_t submittedLanes_ = 0;        ///< drain tasks handed to the pool
  std::size_t exitedLanes_ = 0;           ///< drain tasks that have returned

  /// Dekker-style blocked-consumer flag: the consumer sets it (seq_cst,
  /// under mutex_) before sleeping on doneCv_; lanes load it (seq_cst)
  /// after the kDone store and only then pay the lock+notify.
  std::atomic<bool> consumerWaiting_{false};

  std::atomic<std::uint64_t> version_{0};  ///< committed batches
  /// Per committed version (1-based): the consumer's committed frame
  /// state. Deque: stable refs while appending; entries immutable.
  std::deque<TimeFrameOracle::FrameSnapshot> snapshots_;

  // ---- consumer-thread-only state (never touched by lanes) ----------------
  std::vector<Job> pendingWave_;  ///< staged, not yet published
  /// ticket -> (wave, slot) for every published job, appended by ring().
  std::vector<std::pair<Wave*, std::uint32_t>> published_;

  std::vector<Replica> replicas_;  ///< one per lane; [0] is the caller's
};

}  // namespace pmsched
