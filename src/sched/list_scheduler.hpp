#pragma once
// Resource-constrained list scheduling, standing in for HYPER's scheduler.
//
// Priority function: smallest ALAP first (least slack), then smallest
// mobility, then node id for determinism. Handles the control edges the
// power-management transform inserts exactly like data precedence.

#include <optional>

#include "cdfg/graph.hpp"
#include "sched/resources.hpp"
#include "sched/schedule.hpp"
#include "sched/timeframe.hpp"

namespace pmsched {

/// Outcome of a list-scheduling attempt.
struct ListScheduleResult {
  std::optional<Schedule> schedule;  ///< empty on failure
  /// On failure: the resource class whose shortage blocked a zero-slack
  /// operation (useful to drive the minimum-resource search).
  ResourceClass blockedOn = ResourceClass::None;
  std::string message;
};

/// Schedule `g` into `steps` control steps using at most `limits` units per
/// class. Optionally fold resource usage modulo `ii` (pipelining with
/// initiation interval `ii`; 0 = no folding). Multi-cycle operations (per
/// `model`) occupy their unit for consecutive steps.
[[nodiscard]] ListScheduleResult listSchedule(const Graph& g, int steps,
                                              const ResourceVector& limits, int ii = 0,
                                              const LatencyModel& model = LatencyModel::unit());

/// Smallest-cost resource vector for which list scheduling succeeds at the
/// given step budget, found by demand-driven growth from the usage lower
/// bound. Throws InfeasibleError when even unlimited units fail (i.e. the
/// precedence constraints alone exceed the step budget).
[[nodiscard]] ResourceVector minimizeResources(const Graph& g, int steps,
                                               const UnitCosts& costs = UnitCosts::defaults(),
                                               int ii = 0,
                                               const LatencyModel& model = LatencyModel::unit());

}  // namespace pmsched
