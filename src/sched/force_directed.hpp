#pragma once
// Force-directed scheduling (Paulin & Knight), the latency-constrained
// minimum-resource scheduler HYPER-style flows use. We provide it alongside
// the list scheduler so the power-management transform can be validated
// against two independent scheduling engines.

#include "cdfg/graph.hpp"
#include "sched/schedule.hpp"

namespace pmsched {

/// Schedule `g` into `steps` control steps, choosing placements that balance
/// per-class concurrency (and therefore minimize execution units).
///
/// Respects data and control edges. Throws InfeasibleError when the step
/// budget is below the critical path.
[[nodiscard]] Schedule forceDirectedSchedule(const Graph& g, int steps);

}  // namespace pmsched
