#pragma once
// Force-directed scheduling (Paulin & Knight), the latency-constrained
// minimum-resource scheduler HYPER-style flows use. We provide it alongside
// the list scheduler so the power-management transform can be validated
// against two independent scheduling engines.
//
// Two implementations with identical output:
//
//  * forceDirectedSchedule — incremental. After each pinning decision the
//    ASAP/ALAP frames are repaired through an affected-node worklist (instead
//    of re-running the full longest-path recurrences), and per-node candidate
//    forces are cached and recomputed only when an input that feeds them (own
//    frame, a neighbour's frame or pin state, or a distribution-graph cell in
//    a read interval) actually changed.
//
//  * forceDirectedScheduleReference — the original O(iters * V * frame^2)
//    from-scratch algorithm, retained as the executable specification. The
//    incremental scheduler is tested to produce bit-identical schedules.

#include "cdfg/graph.hpp"
#include "sched/schedule.hpp"

namespace pmsched {

class RunBudget;

/// Schedule `g` into `steps` control steps, choosing placements that balance
/// per-class concurrency (and therefore minimize execution units).
///
/// Respects data and control edges. Throws InfeasibleError when the step
/// budget is below the critical path.
/// With a budget, exhaustion mid-run degrades gracefully: the remaining
/// unpinned operations are placed at their current ASAP steps (a consistent
/// placement under the committed pins), so the returned schedule always
/// validates — it just stops optimizing for resource balance early.
[[nodiscard]] Schedule forceDirectedSchedule(const Graph& g, int steps,
                                             const RunBudget* budget = nullptr);

/// From-scratch reference implementation; same results, asymptotically
/// slower. Kept for differential tests and perf-trajectory benchmarks.
[[nodiscard]] Schedule forceDirectedScheduleReference(const Graph& g, int steps);

}  // namespace pmsched
