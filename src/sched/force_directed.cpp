#include "sched/force_directed.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "sched/timeframe.hpp"
#include "sched/timeframe_oracle.hpp"
#include "support/run_budget.hpp"

namespace pmsched {

namespace {

/// Time frames with some nodes pinned to fixed steps; pins propagate to
/// predecessors/successors through the usual longest-path recurrences.
struct PinnedFrames {
  std::vector<int> asap;
  std::vector<int> alap;
};

PinnedFrames framesWithPins(const Graph& g, int steps, const std::vector<int>& pin) {
  const std::vector<NodeId> order = g.topoOrder();
  PinnedFrames f;
  f.asap.assign(g.size(), 0);
  f.alap.assign(g.size(), steps);

  for (const NodeId n : order) {
    int avail = 0;
    for (const NodeId p : g.fanins(n)) avail = std::max(avail, f.asap[p]);
    for (const NodeId p : g.controlPredecessors(n)) avail = std::max(avail, f.asap[p]);
    if (isScheduled(g.kind(n))) {
      f.asap[n] = avail + 1;
      if (pin[n] != 0) {
        if (pin[n] < f.asap[n])
          throw InfeasibleError("force-directed: pin below ASAP for '" + g.node(n).name + "'");
        f.asap[n] = pin[n];
      }
    } else {
      f.asap[n] = avail;
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    int latest = steps;
    auto relax = [&](NodeId s) {
      latest = std::min(latest, isScheduled(g.kind(s)) ? f.alap[s] - 1 : f.alap[s]);
    };
    for (const NodeId s : g.fanouts(n)) relax(s);
    for (const NodeId s : g.controlSuccessors(n)) relax(s);
    if (isScheduled(g.kind(n))) {
      f.alap[n] = latest;
      if (pin[n] != 0) {
        if (pin[n] > f.alap[n])
          throw InfeasibleError("force-directed: pin above ALAP for '" + g.node(n).name + "'");
        f.alap[n] = pin[n];
      }
    } else {
      f.alap[n] = latest;
    }
  }
  return f;
}

// ---------------------------------------------------------------------------
// Incremental engine.
//
// Invariant: after every pinning decision, (asap, alap) equal what
// framesWithPins(g, steps, pin) would compute from scratch — the frame
// recurrences have a unique solution on a DAG, so repairing only the nodes
// whose value actually changes (through a topo-ordered worklist) reaches the
// same fixed point. The repair machinery itself lives in TimeFrameOracle
// (src/sched/timeframe_oracle.*), which the power-management transform
// shares for its tentative-edge feasibility checks; this scheduler drives
// it through pin() and consumes its changed-node list for cache
// invalidation.
//
// The per-candidate forces are pure functions of: the node's own frame, the
// frames and pin states of its scheduled data neighbours, and the
// distribution-graph cells inside those frames. We cache each unpinned
// node's best (force, step) candidate and recompute it only when one of
// those inputs changed. Recomputation runs the exact floating-point
// expression sequence of the reference implementation, and the distribution
// graph itself is rebuilt in reference summation order every iteration
// (O(V * avgFrame), far off the critical path), so unchanged inputs are
// bitwise-unchanged and every recomputed force is bit-identical to the
// reference — incremental and reference schedules match exactly, which
// tests/test_force_directed_incremental.cpp asserts.
// ---------------------------------------------------------------------------

class IncrementalForceDirected {
 public:
  IncrementalForceDirected(const Graph& g, int steps, const RunBudget* budget = nullptr)
      : g_(g),
        steps_(steps),
        fanoutCsr_(g.fanoutCsr()),
        ctrlSuccCsr_(g.controlSuccCsr()),
        ctrlPredCsr_(g.controlPredCsr()),
        ops_(g.scheduledNodes()),
        budget_(budget) {}

  Schedule run() {
    if (steps_ <= 0) throw InfeasibleError("force-directed: steps must be positive");

    const std::size_t n = g_.size();
    pin_.assign(n, 0);
    rc_.resize(n);
    scheduled_.resize(n);
    for (NodeId i = 0; i < n; ++i) {
      scheduled_[i] = isScheduled(g_.kind(i));
      rc_[i] = scheduled_[i] ? unitIndex(resourceClassOf(g_.kind(i))) : 0;
    }

    // Static per-node bitmask of the unit classes its force expression can
    // read (own class plus scheduled data neighbours'); pinning only shrinks
    // the true read set, so this stays a sound over-approximation.
    readsMask_.assign(n, 0);
    for (const NodeId v : ops_) {
      std::uint8_t mask = static_cast<std::uint8_t>(1U << rc_[v]);
      for (const NodeId p : g_.fanins(v))
        if (scheduled_[p]) mask |= static_cast<std::uint8_t>(1U << rc_[p]);
      for (const NodeId q : fanoutCsr_.row(v))
        if (scheduled_[q]) mask |= static_cast<std::uint8_t>(1U << rc_[q]);
      readsMask_[v] = mask;
    }

    // The oracle owns the frames; with unit latencies its initial fixed
    // point equals computeTimeFrames() and framesWithPins(pin == 0).
    oracle_.emplace(g_, steps_, LatencyModel::unit(), "force-directed");
    asap_ = oracle_->asapView();
    alap_ = oracle_->alapView();
    // Feasibility pre-check straight off the initial frames: this matches
    // the reference's check (first infeasible node in id order) without
    // paying for a second full frame computation.
    for (NodeId v = 0; v < n; ++v)
      if (scheduled_[v] && asap_[v] > alap_[v])
        throw InfeasibleError("force-directed: node '" + g_.node(v).name +
                              "' cannot meet " + std::to_string(steps_) + " steps");

    const std::size_t cells = (static_cast<std::size_t>(steps_) + 1) * kNumUnitClasses;
    dg_.assign(cells, 0.0);
    prevDg_.assign(cells, 0.0);

    candForce_.assign(n, 0.0);
    candStep_.assign(n, 0);
    candValid_.assign(n, 0);

    std::size_t pinned = 0;
    for (std::size_t iter = 0; iter < ops_.size(); ++iter) {
      if (budget_ != nullptr && budget_->exhausted()) {
        // Degrade: place every remaining unpinned op at its current ASAP.
        // The ASAP fixed point already respects the committed pins and all
        // edges (asap[succ] >= asap[pred] + latency), so the completed
        // schedule validates — it just stops balancing resources here.
        for (const NodeId op : ops_)
          if (pin_[op] == 0) pin_[op] = asap_[op];
        budget_->noteDegraded("force-directed", budget_->exhaustedWhy().value_or(
                                                     BudgetKind::Deadline),
                              "remaining operations placed at ASAP; schedule stays valid");
        break;
      }
      // The distribution graph depends only on the frames of scheduled
      // nodes; when a pin moved none of them (forced placements on the
      // critical path), the previous dg and every force cache stay exact.
      if (dgStale_) {
        rebuildDistribution(iter > 0);
        if (iter > 0) invalidateByDgDelta();
        dgStale_ = false;
      }

      // Global argmin over candidate (node, step) pairs, ops in id order,
      // strict < so the earliest minimum wins exactly as in the reference.
      double bestForce = std::numeric_limits<double>::infinity();
      NodeId bestNode = kInvalidNode;
      int bestStep = 0;
      for (const NodeId op : ops_) {
        if (pin_[op] != 0) continue;
        if (!candValid_[op]) recomputeCandidate(op);
        if (candForce_[op] < bestForce) {
          bestForce = candForce_[op];
          bestNode = op;
          bestStep = candStep_[op];
        }
      }

      if (bestNode == kInvalidNode) break;  // everything pinned
      pin_[bestNode] = bestStep;
      ++pinned;
      // The reference validates pin k while recomputing frames at iteration
      // k+1 and never revisits the final pin; mirror that by repairing
      // frames only while unpinned work remains.
      if (pinned == ops_.size()) break;
      repairFrames(bestNode, bestStep);
    }

    Schedule sched(g_, steps_);
    for (const NodeId op : ops_) sched.place(op, pin_[op]);
    sched.validate(g_);
    return sched;
  }

 private:
  [[nodiscard]] double& dgAt(std::vector<double>& dg, int step, std::size_t rc) const {
    return dg[static_cast<std::size_t>(step) * kNumUnitClasses + rc];
  }

  /// Rebuild the per-class distribution graph in the reference's summation
  /// order; when `diff` is set, record the per-class step hull of cells whose
  /// value changed since the previous iteration.
  void rebuildDistribution(bool diff) {
    std::swap(dg_, prevDg_);
    std::fill(dg_.begin(), dg_.end(), 0.0);
    for (const NodeId v : ops_) {
      const int lo = asap_[v];
      const int hi = alap_[v];
      const double p = 1.0 / (hi - lo + 1);
      for (int s = lo; s <= hi; ++s) dgAt(dg_, s, rc_[v]) += p;
    }
    for (auto& hull : dgChanged_) hull = {1, 0};  // empty
    if (!diff) return;
    for (int s = 0; s <= steps_; ++s)
      for (std::size_t rc = 0; rc < kNumUnitClasses; ++rc)
        if (dgAt(dg_, s, rc) != dgAt(prevDg_, s, rc)) {
          auto& hull = dgChanged_[rc];
          if (hull.first > hull.second) hull = {s, s};
          else hull.second = s;
        }
  }

  [[nodiscard]] bool dgTouched(std::size_t rc, int lo, int hi) const {
    const auto& hull = dgChanged_[rc];
    return hull.first <= hull.second && lo <= hull.second && hi >= hull.first;
  }

  /// Drop cached candidates whose force reads a distribution-graph cell that
  /// changed this iteration — either directly (own frame) or through the
  /// neighbour terms (a scheduled unpinned neighbour's frame).
  void invalidateByDgDelta() {
    std::uint8_t changedClasses = 0;
    for (std::size_t rc = 0; rc < kNumUnitClasses; ++rc)
      if (dgChanged_[rc].first <= dgChanged_[rc].second)
        changedClasses |= static_cast<std::uint8_t>(1U << rc);
    if (changedClasses == 0) return;
    for (const NodeId v : ops_) {
      if (pin_[v] != 0 || !candValid_[v]) continue;
      if ((readsMask_[v] & changedClasses) == 0) continue;
      if (dgTouched(rc_[v], asap_[v], alap_[v])) {
        candValid_[v] = 0;
        continue;
      }
      bool dirty = false;
      for (const NodeId p : g_.fanins(v)) {
        if (scheduled_[p] && pin_[p] == 0 && dgTouched(rc_[p], asap_[p], alap_[p])) {
          dirty = true;
          break;
        }
      }
      if (!dirty) {
        for (const NodeId q : fanoutCsr_.row(v)) {
          if (scheduled_[q] && pin_[q] == 0 && dgTouched(rc_[q], asap_[q], alap_[q])) {
            dirty = true;
            break;
          }
        }
      }
      if (dirty) candValid_[v] = 0;
    }
  }

  /// Best (force, step) for an unpinned node; the exact inner loops of the
  /// reference implementation, evaluated in the same order.
  void recomputeCandidate(NodeId v) {
    const std::size_t rc = rc_[v];
    const int lo = asap_[v];
    const int hi = alap_[v];
    if (lo == hi) {
      // Forced placement; treat as zero-force so it is pinned first.
      candForce_[v] = -1e30;
      candStep_[v] = lo;
      candValid_[v] = 1;
      return;
    }

    double bestForce = std::numeric_limits<double>::infinity();
    int bestStep = 0;
    const double pOld = 1.0 / (hi - lo + 1);
    for (int s = lo; s <= hi; ++s) {
      // Self force of assigning v to s: sum_t DG(t) * (delta(s,t) - pOld).
      double force = 0;
      for (int t = lo; t <= hi; ++t) {
        const double dp = (t == s ? 1.0 : 0.0) - pOld;
        force += dg_[static_cast<std::size_t>(t) * kNumUnitClasses + rc] * dp;
      }
      // Predecessor/successor forces: restricting v to s truncates
      // neighbouring frames; approximate with the same-class DG change of
      // direct scheduled neighbours (standard first-order approximation).
      auto neighbourForce = [&](NodeId m, int newLo, int newHi) {
        const int mLo = asap_[m];
        const int mHi = alap_[m];
        const int cLo = std::max(mLo, newLo);
        const int cHi = std::min(mHi, newHi);
        if (cLo > cHi || (cLo == mLo && cHi == mHi)) return 0.0;
        const std::size_t mrc = rc_[m];
        const double was = 1.0 / (mHi - mLo + 1);
        const double now = 1.0 / (cHi - cLo + 1);
        double nf = 0;
        for (int t = mLo; t <= mHi; ++t) {
          const double dp = (t >= cLo && t <= cHi ? now : 0.0) - was;
          nf += dg_[static_cast<std::size_t>(t) * kNumUnitClasses + mrc] * dp;
        }
        return nf;
      };
      for (const NodeId p : g_.fanins(v))
        if (scheduled_[p] && pin_[p] == 0) force += neighbourForce(p, 1, s - 1);
      for (const NodeId q : fanoutCsr_.row(v))
        if (scheduled_[q] && pin_[q] == 0) force += neighbourForce(q, s + 1, steps_);

      if (force < bestForce) {
        bestForce = force;
        bestStep = s;
      }
    }
    candForce_[v] = bestForce;
    candStep_[v] = bestStep;
    candValid_[v] = 1;
  }

  /// Repair asap/alap after pinning `b` to `step` (the oracle touches only
  /// nodes whose value changes); then invalidate the force caches that
  /// depended on the changed frames or on b's pin state.
  void repairFrames(NodeId b, int step) {
    oracle_->pin(b, step);

    // A changed frame dirties the node's own candidate and every scheduled
    // data neighbour's (their neighbour terms read it). Forces never read a
    // transparent node's frame, so those only matter as propagation relays.
    // The new pin dirties b's neighbours even when no frame moved (they
    // drop b's term).
    auto invalidateAround = [&](NodeId v) {
      candValid_[v] = 0;
      for (const NodeId p : g_.fanins(v))
        if (scheduled_[p]) candValid_[p] = 0;
      for (const NodeId q : fanoutCsr_.row(v))
        if (scheduled_[q]) candValid_[q] = 0;
    };
    bool scheduledFrameMoved = false;
    for (const NodeId v : oracle_->changedNodes()) {
      if (!scheduled_[v]) continue;
      scheduledFrameMoved = true;
      invalidateAround(v);
    }
    invalidateAround(b);
    if (scheduledFrameMoved) dgStale_ = true;
  }

  const Graph& g_;
  const int steps_;
  const CsrAdjacency& fanoutCsr_;
  const CsrAdjacency& ctrlSuccCsr_;
  const CsrAdjacency& ctrlPredCsr_;
  const std::vector<NodeId> ops_;

  std::vector<int> pin_;
  std::optional<TimeFrameOracle> oracle_;
  std::span<const int> asap_;  ///< views into the oracle's frame arrays
  std::span<const int> alap_;
  std::vector<std::size_t> rc_;
  std::vector<char> scheduled_;

  std::vector<double> dg_;
  std::vector<double> prevDg_;
  std::array<std::pair<int, int>, kNumUnitClasses> dgChanged_{};
  std::vector<std::uint8_t> readsMask_;
  bool dgStale_ = true;

  std::vector<double> candForce_;
  std::vector<int> candStep_;
  std::vector<char> candValid_;

  const RunBudget* budget_ = nullptr;
};

}  // namespace

Schedule forceDirectedSchedule(const Graph& g, int steps, const RunBudget* budget) {
  return IncrementalForceDirected(g, steps, budget).run();
}

Schedule forceDirectedScheduleReference(const Graph& g, int steps) {
  const std::vector<NodeId> ops = g.scheduledNodes();
  std::vector<int> pin(g.size(), 0);

  {
    const TimeFrames tf = computeTimeFrames(g, steps);
    if (const auto bad = tf.firstInfeasible(g))
      throw InfeasibleError("force-directed: node '" + g.node(*bad).name +
                            "' cannot meet " + std::to_string(steps) + " steps");
  }

  // Iteratively pin the (node, step) pair of minimum force.
  for (std::size_t iter = 0; iter < ops.size(); ++iter) {
    const PinnedFrames f = framesWithPins(g, steps, pin);

    // Distribution graphs: expected concurrency per class and step under
    // uniform placement within each node's frame.
    std::vector<std::array<double, kNumUnitClasses>> dg(static_cast<std::size_t>(steps) + 1);
    for (auto& row : dg) row.fill(0.0);
    for (const NodeId n : ops) {
      const auto rc = unitIndex(resourceClassOf(g.kind(n)));
      const int lo = f.asap[n];
      const int hi = f.alap[n];
      const double p = 1.0 / (hi - lo + 1);
      for (int s = lo; s <= hi; ++s) dg[static_cast<std::size_t>(s)][rc] += p;
    }

    double bestForce = std::numeric_limits<double>::infinity();
    NodeId bestNode = kInvalidNode;
    int bestStep = 0;

    for (const NodeId n : ops) {
      if (pin[n] != 0) continue;
      const auto rc = unitIndex(resourceClassOf(g.kind(n)));
      const int lo = f.asap[n];
      const int hi = f.alap[n];
      if (lo == hi) {
        // Forced placement; treat as zero-force so it is pinned first.
        if (bestForce > -1e30) {
          bestForce = -1e30;
          bestNode = n;
          bestStep = lo;
        }
        continue;
      }
      const double pOld = 1.0 / (hi - lo + 1);
      for (int s = lo; s <= hi; ++s) {
        // Self force of assigning n to s: sum_t DG(t) * (delta(s,t) - pOld).
        double force = 0;
        for (int t = lo; t <= hi; ++t) {
          const double dp = (t == s ? 1.0 : 0.0) - pOld;
          force += dg[static_cast<std::size_t>(t)][rc] * dp;
        }
        // Predecessor/successor forces: restricting n to s truncates
        // neighbouring frames; approximate with the same-class DG change of
        // direct scheduled neighbours (standard first-order approximation).
        auto neighbourForce = [&](NodeId m, int newLo, int newHi) {
          const int mLo = f.asap[m];
          const int mHi = f.alap[m];
          const int cLo = std::max(mLo, newLo);
          const int cHi = std::min(mHi, newHi);
          if (cLo > cHi || (cLo == mLo && cHi == mHi)) return 0.0;
          const auto mrc = unitIndex(resourceClassOf(g.kind(m)));
          const double was = 1.0 / (mHi - mLo + 1);
          const double now = 1.0 / (cHi - cLo + 1);
          double nf = 0;
          for (int t = mLo; t <= mHi; ++t) {
            const double dp = (t >= cLo && t <= cHi ? now : 0.0) - was;
            nf += dg[static_cast<std::size_t>(t)][mrc] * dp;
          }
          return nf;
        };
        for (const NodeId p : g.fanins(n))
          if (isScheduled(g.kind(p)) && pin[p] == 0) force += neighbourForce(p, 1, s - 1);
        for (const NodeId q : g.fanouts(n))
          if (isScheduled(g.kind(q)) && pin[q] == 0) force += neighbourForce(q, s + 1, steps);

        if (force < bestForce) {
          bestForce = force;
          bestNode = n;
          bestStep = s;
        }
      }
    }

    if (bestNode == kInvalidNode) break;  // everything pinned
    pin[bestNode] = bestStep;
  }

  Schedule sched(g, steps);
  for (const NodeId n : ops) sched.place(n, pin[n]);
  sched.validate(g);
  return sched;
}

}  // namespace pmsched
