#include "sched/force_directed.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sched/timeframe.hpp"

namespace pmsched {

namespace {

/// Time frames with some nodes pinned to fixed steps; pins propagate to
/// predecessors/successors through the usual longest-path recurrences.
struct PinnedFrames {
  std::vector<int> asap;
  std::vector<int> alap;
};

PinnedFrames framesWithPins(const Graph& g, int steps, const std::vector<int>& pin) {
  const std::vector<NodeId> order = g.topoOrder();
  PinnedFrames f;
  f.asap.assign(g.size(), 0);
  f.alap.assign(g.size(), steps);

  for (const NodeId n : order) {
    int avail = 0;
    for (const NodeId p : g.fanins(n)) avail = std::max(avail, f.asap[p]);
    for (const NodeId p : g.controlPredecessors(n)) avail = std::max(avail, f.asap[p]);
    if (isScheduled(g.kind(n))) {
      f.asap[n] = avail + 1;
      if (pin[n] != 0) {
        if (pin[n] < f.asap[n])
          throw InfeasibleError("force-directed: pin below ASAP for '" + g.node(n).name + "'");
        f.asap[n] = pin[n];
      }
    } else {
      f.asap[n] = avail;
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    int latest = steps;
    auto relax = [&](NodeId s) {
      latest = std::min(latest, isScheduled(g.kind(s)) ? f.alap[s] - 1 : f.alap[s]);
    };
    for (const NodeId s : g.fanouts(n)) relax(s);
    for (const NodeId s : g.controlSuccessors(n)) relax(s);
    if (isScheduled(g.kind(n))) {
      f.alap[n] = latest;
      if (pin[n] != 0) {
        if (pin[n] > f.alap[n])
          throw InfeasibleError("force-directed: pin above ALAP for '" + g.node(n).name + "'");
        f.alap[n] = pin[n];
      }
    } else {
      f.alap[n] = latest;
    }
  }
  return f;
}

}  // namespace

Schedule forceDirectedSchedule(const Graph& g, int steps) {
  const std::vector<NodeId> ops = g.scheduledNodes();
  std::vector<int> pin(g.size(), 0);

  {
    const TimeFrames tf = computeTimeFrames(g, steps);
    if (const auto bad = tf.firstInfeasible(g))
      throw InfeasibleError("force-directed: node '" + g.node(*bad).name +
                            "' cannot meet " + std::to_string(steps) + " steps");
  }

  // Iteratively pin the (node, step) pair of minimum force.
  for (std::size_t iter = 0; iter < ops.size(); ++iter) {
    const PinnedFrames f = framesWithPins(g, steps, pin);

    // Distribution graphs: expected concurrency per class and step under
    // uniform placement within each node's frame.
    std::vector<std::array<double, kNumUnitClasses>> dg(static_cast<std::size_t>(steps) + 1);
    for (auto& row : dg) row.fill(0.0);
    for (const NodeId n : ops) {
      const auto rc = unitIndex(resourceClassOf(g.kind(n)));
      const int lo = f.asap[n];
      const int hi = f.alap[n];
      const double p = 1.0 / (hi - lo + 1);
      for (int s = lo; s <= hi; ++s) dg[static_cast<std::size_t>(s)][rc] += p;
    }

    double bestForce = std::numeric_limits<double>::infinity();
    NodeId bestNode = kInvalidNode;
    int bestStep = 0;

    for (const NodeId n : ops) {
      if (pin[n] != 0) continue;
      const auto rc = unitIndex(resourceClassOf(g.kind(n)));
      const int lo = f.asap[n];
      const int hi = f.alap[n];
      if (lo == hi) {
        // Forced placement; treat as zero-force so it is pinned first.
        if (bestForce > -1e30) {
          bestForce = -1e30;
          bestNode = n;
          bestStep = lo;
        }
        continue;
      }
      const double pOld = 1.0 / (hi - lo + 1);
      for (int s = lo; s <= hi; ++s) {
        // Self force of assigning n to s: sum_t DG(t) * (delta(s,t) - pOld).
        double force = 0;
        for (int t = lo; t <= hi; ++t) {
          const double dp = (t == s ? 1.0 : 0.0) - pOld;
          force += dg[static_cast<std::size_t>(t)][rc] * dp;
        }
        // Predecessor/successor forces: restricting n to s truncates
        // neighbouring frames; approximate with the same-class DG change of
        // direct scheduled neighbours (standard first-order approximation).
        auto neighbourForce = [&](NodeId m, int newLo, int newHi) {
          const int mLo = f.asap[m];
          const int mHi = f.alap[m];
          const int cLo = std::max(mLo, newLo);
          const int cHi = std::min(mHi, newHi);
          if (cLo > cHi || (cLo == mLo && cHi == mHi)) return 0.0;
          const auto mrc = unitIndex(resourceClassOf(g.kind(m)));
          const double was = 1.0 / (mHi - mLo + 1);
          const double now = 1.0 / (cHi - cLo + 1);
          double nf = 0;
          for (int t = mLo; t <= mHi; ++t) {
            const double dp = (t >= cLo && t <= cHi ? now : 0.0) - was;
            nf += dg[static_cast<std::size_t>(t)][mrc] * dp;
          }
          return nf;
        };
        for (const NodeId p : g.fanins(n))
          if (isScheduled(g.kind(p)) && pin[p] == 0) force += neighbourForce(p, 1, s - 1);
        for (const NodeId q : g.fanouts(n))
          if (isScheduled(g.kind(q)) && pin[q] == 0) force += neighbourForce(q, s + 1, steps);

        if (force < bestForce) {
          bestForce = force;
          bestNode = n;
          bestStep = s;
        }
      }
    }

    if (bestNode == kInvalidNode) break;  // everything pinned
    pin[bestNode] = bestStep;
  }

  Schedule sched(g, steps);
  for (const NodeId n : ops) sched.place(n, pin[n]);
  sched.validate(g);
  return sched;
}

}  // namespace pmsched
