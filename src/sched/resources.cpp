#include "sched/resources.hpp"

#include <sstream>

namespace pmsched {

std::string ResourceVector::toString() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const ResourceClass rc : kUnitClasses) {
    const int c = count[unitIndex(rc)];
    if (c == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << resourceName(rc) << ":" << c;
  }
  os << '}';
  return os.str();
}

UnitCosts UnitCosts::defaults() {
  // NAND2-equivalent gate counts for 8-bit units (matching src/netlist
  // generators; the multiplier dominates, as in the paper's power weights).
  UnitCosts c;
  c.area[unitIndex(ResourceClass::Mux)] = 24;          // 8 x (2:1 mux = 3 gates)
  c.area[unitIndex(ResourceClass::Comparator)] = 38;   // magnitude comparator
  c.area[unitIndex(ResourceClass::Adder)] = 44;        // ripple-carry adder
  c.area[unitIndex(ResourceClass::Subtractor)] = 48;   // RCA + operand inverts
  c.area[unitIndex(ResourceClass::Multiplier)] = 340;  // 8x8 array multiplier
  c.area[unitIndex(ResourceClass::Logic)] = 8;
  c.area[unitIndex(ResourceClass::Shifter)] = 56;      // 8-bit barrel shifter
  return c;
}

}  // namespace pmsched
