#include "sched/list_scheduler.hpp"

#include <algorithm>

namespace pmsched {

namespace {
// Sentinel availability for not-yet-placed scheduled nodes: larger than any
// reachable step so consumers are never considered ready prematurely.
constexpr int kNotReady = 1 << 20;
}  // namespace

ListScheduleResult listSchedule(const Graph& g, int steps, const ResourceVector& limits,
                                int ii, const LatencyModel& model) {
  ListScheduleResult result;

  const TimeFrames tf = computeTimeFrames(g, steps, {}, model);
  if (const auto bad = tf.firstInfeasible(g)) {
    result.message = "no schedule in " + std::to_string(steps) + " steps: node '" +
                     g.node(*bad).name + "' has empty time frame";
    return result;
  }

  Schedule sched(g, steps);
  const std::vector<NodeId> order = g.topoOrder();

  // avail[n] = step after which n's value exists; kNotReady until the
  // producing operation is placed (transparent chains propagate it).
  std::vector<int> avail(g.size(), 0);
  for (NodeId n = 0; n < g.size(); ++n)
    if (isScheduled(g.kind(n))) avail[n] = kNotReady;

  auto refreshTransparent = [&] {
    for (const NodeId n : order) {
      if (isScheduled(g.kind(n)) || g.fanins(n).empty()) continue;
      int ready = 0;
      for (const NodeId p : g.fanins(n)) ready = std::max(ready, avail[p]);
      avail[n] = std::min(ready, kNotReady);
    }
  };
  refreshTransparent();

  // usage per step slot and class; folded modulo ii when pipelining.
  const int slots = ii > 0 ? ii : steps;
  std::vector<ResourceVector> usage(static_cast<std::size_t>(slots) + 1);
  auto slotOf = [&](int step) { return ii > 0 ? (step - 1) % ii + 1 : step; };

  // Deferral bookkeeping: when the budget runs out, the class that was
  // actually starved (not the class of whichever op happened to remain)
  // is what the minimum-resource search must grow.
  std::array<int, kNumUnitClasses> deferrals{};

  std::vector<NodeId> todo = g.scheduledNodes();
  // Reused per-step buffers (hoisted out of the loop: the scheduler used to
  // allocate a fresh ready list per step and compact `todo` once per
  // placement instead of once per step).
  std::vector<NodeId> ready;
  ready.reserve(todo.size());
  std::vector<char> placed(g.size(), 0);
  for (int step = 1; step <= steps && !todo.empty(); ++step) {
    ready.clear();
    for (const NodeId n : todo) {
      bool ok = true;
      for (const NodeId p : g.fanins(n))
        if (avail[p] >= step) ok = false;
      for (const NodeId p : g.controlPredecessors(n))
        if (avail[p] >= step) ok = false;
      if (ok) ready.push_back(n);
    }

    std::sort(ready.begin(), ready.end(), [&](NodeId a, NodeId b) {
      if (tf.alap[a] != tf.alap[b]) return tf.alap[a] < tf.alap[b];
      if (tf.asap[a] != tf.asap[b]) return tf.asap[a] < tf.asap[b];
      return a < b;
    });

    bool placedAny = false;
    for (const NodeId n : ready) {
      const ResourceClass rc = resourceClassOf(g.kind(n));
      const int latency = model.latencyOf(g.kind(n));
      // The unit is busy for `latency` consecutive steps (folded when
      // pipelining); all of them must have a free instance.
      bool fits = step + latency - 1 <= steps;
      for (int t = step; fits && t < step + latency; ++t)
        fits = usage[static_cast<std::size_t>(slotOf(t))].of(rc) < limits.of(rc);
      if (fits) {
        for (int t = step; t < step + latency; ++t)
          ++usage[static_cast<std::size_t>(slotOf(t))].of(rc);
        sched.place(n, step);
        avail[n] = step + latency - 1;
        placedAny = true;
        placed[n] = 1;
      } else {
        ++deferrals[unitIndex(rc)];
        if (tf.alap[n] <= step) {
          // A zero-slack operation could not be placed: this resource class
          // is the bottleneck at the current limits.
          result.blockedOn = rc;
          result.message = "resource-blocked at step " + std::to_string(step) + ": node '" +
                           g.node(n).name + "' needs a free " + std::string(resourceName(rc));
          return result;
        }
      }
    }
    if (placedAny) {
      // One order-preserving compaction per step (`todo` order feeds the
      // deterministic blame below, so swap-removal would change messages).
      todo.erase(std::remove_if(todo.begin(), todo.end(),
                                [&](NodeId n) { return placed[n] != 0; }),
                 todo.end());
      refreshTransparent();
    }
  }

  if (!todo.empty()) {
    // Ran out of steps. Blame the class with the most resource deferrals —
    // the unplaced node itself may belong to a class that was never short
    // (it just waited on starved producers).
    const NodeId worst = *std::min_element(todo.begin(), todo.end(), [&](NodeId a, NodeId b) {
      return tf.alap[a] < tf.alap[b];
    });
    result.blockedOn = resourceClassOf(g.kind(worst));
    int most = 0;
    for (std::size_t i = 0; i < kNumUnitClasses; ++i) {
      if (deferrals[i] > most) {
        most = deferrals[i];
        result.blockedOn = kUnitClasses[i];
      }
    }
    result.message = "ran out of steps with " + std::to_string(todo.size()) +
                     " operations unplaced (first: '" + g.node(worst).name + "')";
    return result;
  }

  sched.validate(g, model);
  result.schedule = std::move(sched);
  return result;
}

ResourceVector minimizeResources(const Graph& g, int steps, const UnitCosts& costs, int ii,
                                 const LatencyModel& model) {
  (void)costs;  // growth is demand-driven; costs kept in the API for callers
                // that want to compare vectors (see analysis::areaIncrease).

  // Lower bound: ceil(opsPerClass / effectiveSteps) — with pipelining the
  // folded window has only `ii` slots.
  const int window = ii > 0 ? std::min(ii, steps) : steps;
  ResourceVector limits;
  std::array<int, kNumUnitClasses> opCount{};
  for (NodeId n = 0; n < g.size(); ++n) {
    const ResourceClass rc = resourceClassOf(g.kind(n));
    if (rc != ResourceClass::None) ++opCount[unitIndex(rc)];
  }
  for (std::size_t i = 0; i < kNumUnitClasses; ++i)
    limits.count[i] = (opCount[i] + window - 1) / window;

  // Demand-driven growth: whichever class blocks the schedule grows by one.
  // A class never needs more units than it has operations; when the blamed
  // class is already saturated the demand signal was indirect (a starved
  // producer chain), so every unsaturated class grows instead. Once every
  // class is saturated the scheduler degenerates to ASAP and must succeed
  // whenever the frames are feasible.
  for (;;) {
    ListScheduleResult r = listSchedule(g, steps, limits, ii, model);
    if (r.schedule) {
      // The scheduler may have used fewer units than the limits allow;
      // report what the schedule actually needs.
      return ii > 0 ? r.schedule->unitsRequiredModulo(g, ii, model)
                    : r.schedule->unitsRequired(g, model);
    }
    if (r.blockedOn == ResourceClass::None)
      throw InfeasibleError("minimizeResources: " + r.message);

    const std::size_t blocked = unitIndex(r.blockedOn);
    if (limits.count[blocked] < opCount[blocked]) {
      ++limits.count[blocked];
      continue;
    }
    bool grew = false;
    for (std::size_t i = 0; i < kNumUnitClasses; ++i) {
      if (limits.count[i] < opCount[i]) {
        ++limits.count[i];
        grew = true;
      }
    }
    if (!grew) throw InfeasibleError("minimizeResources (all classes saturated): " + r.message);
  }
}

}  // namespace pmsched
