#pragma once
// The paper's contribution: power-management-aware scheduling (Fig. 3).
//
// For every multiplexor the transform identifies the operations that are
// needed only when the mux selects one particular side (the "gated sets"),
// checks that the select-producing operation can be scheduled before all of
// them within the step budget, and — if so — inserts control precedence
// edges so the downstream scheduler orders control computation first. At
// run time the controller then loads the input latches of a gated unit only
// when the select value actually calls for its result.
//
// Faithful points of the implementation, matching the paper's text:
//  * muxes are processed one at a time, closest-to-the-outputs first (§III);
//  * a node that lies in the fanin cones of BOTH data inputs is never gated;
//  * a node with any data fanout escaping the gated region is never gated
//    (computed to a fixed point, since removing one node can expose another);
//  * ASAP/ALAP tightening is tentative per mux: committed when every node
//    keeps ASAP <= ALAP, reverted otherwise (steps 4-8 of Fig. 3);
//  * control edges run from the last control-fanin node to the top nodes of
//    the gated cones (step 10); scheduling is delegated to the ordinary
//    resource-minimizing scheduler (step 11).

#include <string>
#include <vector>

#include "cdfg/graph.hpp"
#include "sched/condition.hpp"
#include "sched/timeframe.hpp"

namespace pmsched {

class RunBudget;

/// Order in which muxes are offered power management (§III default is
/// OutputFirst; the alternatives implement the §IV-A reordering study).
enum class MuxOrdering {
  OutputFirst,  ///< paper default: closest to the primary outputs first
  InputFirst,   ///< reverse order (ablation)
  BySavings,    ///< largest potential gated power first (§IV-A greedy)
};

/// Per-mux outcome of the transform.
struct MuxPmInfo {
  NodeId mux = kInvalidNode;
  bool managed = false;
  std::string reason;  ///< why not managed (empty when managed)

  /// Select-signal producer (traced through wires); kInvalidNode when the
  /// select comes directly from an input/constant (control needs no step).
  NodeId lastControl = kInvalidNode;

  std::vector<NodeId> gatedTrue;   ///< nodes needed only when select is true
  std::vector<NodeId> gatedFalse;  ///< nodes needed only when select is false
  std::vector<NodeId> topTrue;     ///< control-edge targets, true side
  std::vector<NodeId> topFalse;    ///< control-edge targets, false side

  [[nodiscard]] bool hasGatedWork() const { return !gatedTrue.empty() || !gatedFalse.empty(); }
};

/// One gating applied to a node: "needed only when `mux` selects `side`".
struct NodeGate {
  NodeId mux = kInvalidNode;
  MuxSide side = MuxSide::False;
};

/// Result of the transform: the augmented graph plus everything the
/// activation analysis and the controller generator need.
struct PowerManagedDesign {
  Graph graph;  ///< clone of the input with control edges inserted
  int steps = 0;
  LatencyModel latency = LatencyModel::unit();  ///< model used for feasibility
  std::vector<MuxPmInfo> muxes;              ///< in processing order
  std::vector<std::vector<NodeGate>> gates;  ///< per node: gatings applied
  TimeFrames frames;                         ///< final committed frames

  /// Extension (shared gating): per node, a fully-resolved DNF activation
  /// condition installed by applySharedGating(); empty = not shared-gated.
  /// Nodes with a shared condition have empty `gates`.
  std::vector<GateDnf> sharedGating;

  /// True when a RunBudget ran out before the transform finished: the
  /// design is still valid and differentially checkable, but muxes past
  /// the stopping point were left unmanaged (their `reason` says so) —
  /// see docs/ROBUSTNESS.md for the per-stage contract.
  bool degraded = false;
  std::string degradeReason;  ///< empty unless degraded

  /// Muxes that were selected AND gate at least one operation — the paper's
  /// Table II "P.Man. Muxs" column.
  [[nodiscard]] int managedCount() const;
  /// Nodes gated by the shared extension.
  [[nodiscard]] int sharedGatedCount() const;
};

/// A no-op design wrapper: same graph, no gating. Baselines use it so that
/// every downstream consumer (analysis, controller, RTL) sees one type.
[[nodiscard]] PowerManagedDesign unmanagedDesign(const Graph& g, int steps);

/// Fully-resolved activation condition of every node: per-mux gates and
/// shared gating composed into one DNF over select literals. Ungated nodes
/// get TRUE. Used by the activation analysis and the controller generator.
[[nodiscard]] std::vector<GateDnf> resolveActivationConditions(const PowerManagedDesign& design);

/// Static (schedule-independent) gated-set computation for one mux.
/// Exposed for tests and for the §IV-A savings-ordering heuristic.
struct GatedSets {
  std::vector<NodeId> gatedTrue;
  std::vector<NodeId> gatedFalse;
  std::vector<NodeId> topTrue;
  std::vector<NodeId> topFalse;
};
[[nodiscard]] GatedSets computeGatedSets(const Graph& g, NodeId mux);

/// Same, reading the per-operand fanin cones from a precomputed
/// faninConeMasks(g) table instead of running three backward walks per mux.
/// The transform drivers build the table once per run (the graph is not
/// mutated until their edges are materialized at the end).
[[nodiscard]] GatedSets computeGatedSets(const Graph& g, NodeId mux,
                                         std::span<const NodeMask> cones);

/// Producer of a mux's select signal traced through wires; Input/Const ids
/// are returned as-is (caller decides they need no control step).
[[nodiscard]] NodeId traceSelectProducer(const Graph& g, NodeId mux);

/// The paper's algorithm (Fig. 3, steps 1-10). Does not run the final
/// scheduler; callers combine the result with listSchedule /
/// forceDirectedSchedule on `result.graph` (step 11). The per-mux
/// schedulability test runs incrementally on a TimeFrameOracle.
[[nodiscard]] PowerManagedDesign applyPowerManagement(
    const Graph& g, int steps, MuxOrdering ordering = MuxOrdering::OutputFirst,
    const LatencyModel& model = LatencyModel::unit(), const RunBudget* budget = nullptr);

/// The retained from-scratch variant (frames recomputed per mux). The
/// executable specification: differential tests assert applyPowerManagement
/// produces bit-identical designs.
[[nodiscard]] PowerManagedDesign applyPowerManagementReference(
    const Graph& g, int steps, MuxOrdering ordering = MuxOrdering::OutputFirst,
    const LatencyModel& model = LatencyModel::unit());

/// Extension (beyond the paper's greedy): exact maximum-savings subset of
/// muxes, found by depth-first search with infeasibility pruning. Because a
/// mux's control edges are schedule-independent, joint feasibility depends
/// only on the chosen subset, making exact search well-defined. Practical
/// for the paper-scale circuits (<= ~50 muxes with shallow conflict
/// structure); `maxMuxes` guards runaway search.
[[nodiscard]] PowerManagedDesign applyPowerManagementOptimal(const Graph& g, int steps,
                                                             std::size_t maxMuxes = 24,
                                                             const RunBudget* budget = nullptr);

/// From-scratch variant of the exact search (one full frame computation per
/// DFS node); retained as the differential-test reference.
[[nodiscard]] PowerManagedDesign applyPowerManagementOptimalReference(const Graph& g, int steps,
                                                                      std::size_t maxMuxes = 24);

}  // namespace pmsched
