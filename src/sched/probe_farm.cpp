#include "sched/probe_farm.hpp"

#include <thread>

namespace pmsched {

namespace {

/// Probing from more lanes than physical cores only adds contention; the
/// clamp is skipped in Force mode so the oversubscription stress tests
/// exercise the full configured lane count.
std::size_t effectiveLanes() {
  const std::size_t configured = globalThreadPool().threadCount();
  if (speculationMode() == SpeculationMode::Force) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? configured : std::min<std::size_t>(configured, hw);
}

}  // namespace

bool farmProbesWorthwhile(std::size_t graphSize) {
  switch (speculationMode()) {
    case SpeculationMode::Force: return true;
    case SpeculationMode::Off: return false;
    case SpeculationMode::Auto: break;
  }
  if (threadCount() <= 1) return false;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 4 && graphSize >= kMinNodesForSpeculation;
}

ProbeFarm::ProbeFarm(const Graph& g, int steps, const LatencyModel& model,
                     std::string errorContext)
    : g_(g),
      steps_(steps),
      model_(model),
      ctx_(std::move(errorContext)),
      lanes_(effectiveLanes()) {
  // Everything else is lazy (see startLanes): a farm that never probes —
  // sweeps whose candidates all predecide, waves with no probeworthy
  // candidate — costs two integers, which is what lets the transform
  // construct one unconditionally.
  replicas_.resize(lanes_);
  // Constructing an oracle touches the Graph's lazy CSR/topo caches.
  // Every consumer owns a main oracle on the same graph before it builds
  // the farm, so the caches are warm; touch them here (cheap, idempotent,
  // consumer thread) rather than trusting that forever.
  (void)g_.fanoutCsr();
  (void)g_.controlSuccCsr();
  (void)g_.controlPredCsr();
  (void)g_.topoOrderView();
}

ProbeFarm::~ProbeFarm() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closing_ = true;
  }
  if (submittedLanes_ == 0) return;  // no drain task ever started
  workCv_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  doneCv_.wait(lock, [this] { return exitedLanes_ == submittedLanes_; });
}

void ProbeFarm::startLanes() {
  ThreadPool& pool = globalThreadPool();
  for (std::size_t lane = 1; lane < lanes_; ++lane) {
    // Capture the FARM's replica slot: lanes_ may be clamped below the
    // pool's lane count, so the executing pool worker's own index can
    // exceed replicas_.
    pool.submit([this, lane](std::size_t) {
      laneLoop(lane);
      // Notify while holding the mutex: the destructor owns it while
      // checking the exit predicate, so the farm (and this condition
      // variable) cannot be torn down between the increment and the wake.
      std::lock_guard<std::mutex> lock(mutex_);
      ++exitedLanes_;
      doneCv_.notify_all();
    });
    ++submittedLanes_;
  }
}

std::uint64_t ProbeFarm::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return versionLocked_;
}

void ProbeFarm::commitBatch(const TimeFrameOracle& committedState) {
  TimeFrameOracle::FrameSnapshot snap = committedState.snapshot();
  std::lock_guard<std::mutex> lock(mutex_);
  snapshots_.push_back(std::move(snap));
  ++versionLocked_;
}

std::size_t ProbeFarm::enqueue(std::vector<Edge> edges, bool diagnose, bool exact) {
  if (submittedLanes_ == 0 && lanes_ > 1) startLanes();
  std::size_t ticket;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ticket = jobs_.size();
    Job& job = jobs_.emplace_back();
    job.edges = std::move(edges);
    job.version = versionLocked_;
    job.diagnose = diagnose;
    job.exact = exact;
  }
  workCv_.notify_one();
  return ticket;
}

ProbeFarm::Result ProbeFarm::await(std::size_t ticket) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    Job& job = jobs_[ticket];
    if (job.state == JobState::Done) return job.result;
    if (job.state == JobState::Queued) {
      // Claim it ourselves: the consumer is blocked on this exact verdict,
      // so running it inline (on the caller's replica) beats waiting for a
      // lane to get to it.
      job.state = JobState::Claimed;
      lock.unlock();
      Result r = runJob(replicas_[0], job);
      lock.lock();
      job.result = std::move(r);
      job.state = JobState::Done;
      return job.result;
    }
    doneCv_.wait(lock);
  }
}

void ProbeFarm::laneLoop(std::size_t lane) {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        // Exit before claiming anything else: once the consumer is tearing
        // the farm down, leftover abandoned jobs must not keep a lane (and
        // its reads of the shared Graph) alive — the consumer may mutate
        // the graph as soon as the destructor returns.
        if (closing_) return;
        while (nextUnclaimed_ < jobs_.size() &&
               jobs_[nextUnclaimed_].state != JobState::Queued)
          ++nextUnclaimed_;
        if (nextUnclaimed_ < jobs_.size()) break;
        workCv_.wait(lock);
      }
      // Resolve the element pointer under the lock: deque::push_back keeps
      // element references stable but rewrites its internal chunk map, so
      // unsynchronized operator[] would race the consumer's enqueue.
      job = &jobs_[nextUnclaimed_++];
      job->state = JobState::Claimed;
    }
    Result r = runJob(replicas_[lane], *job);
    {
      // Notify under the mutex (see the drain-task exit path).
      std::lock_guard<std::mutex> lock(mutex_);
      job->result = std::move(r);
      job->state = JobState::Done;
      doneCv_.notify_all();
    }
  }
}

void ProbeFarm::syncReplica(Replica& rep, std::uint64_t target) {
  if (rep.version == target) return;
  if (target == 0) {
    rep.oracle->restoreInitial();
  } else {
    const TimeFrameOracle::FrameSnapshot* snap;
    {
      // Snapshots are immutable once appended (and a deque push_back moves
      // no existing element), so only the pointer read is guarded.
      std::lock_guard<std::mutex> lock(mutex_);
      snap = &snapshots_[target - 1];
    }
    rep.oracle->restore(*snap);
  }
  rep.version = target;
}

ProbeFarm::Result ProbeFarm::runJob(Replica& rep, const Job& job) {
  Result r;
  r.version = job.version;
  if (!job.exact) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (versionLocked_ != job.version) return r;  // stale before it ran: skip
  }
  if (!rep.oracle) rep.oracle = std::make_unique<TimeFrameOracle>(g_, steps_, model_, ctx_);
  r.ran = true;
  try {
    syncReplica(rep, job.version);
    rep.oracle->push(job.edges, /*probe=*/!job.diagnose);
    r.feasible = rep.oracle->feasible();
    if (job.diagnose && !r.feasible) r.firstInfeasible = rep.oracle->firstInfeasible();
    rep.oracle->pop();
  } catch (...) {
    // A cycle throw leaves the oracle unchanged; anything else mid-probe
    // could leave the probe batch open — unwind it so the replica stays
    // at its restored committed state.
    r.error = std::current_exception();
    while (rep.oracle->depth() > 0) rep.oracle->pop();
  }
  return r;
}

}  // namespace pmsched
