#include "sched/probe_farm.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "cdfg/analysis.hpp"
#include "support/fault_injector.hpp"
#include "support/random_dfg.hpp"
#include "support/run_budget.hpp"

namespace pmsched {

namespace {

/// Probing from more lanes than physical cores only adds contention; the
/// clamp is skipped in Force mode so the oversubscription stress tests
/// exercise the full configured lane count.
std::size_t effectiveLanes() {
  const std::size_t configured = globalThreadPool().threadCount();
  if (speculationMode() == SpeculationMode::Force) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? configured : std::min<std::size_t>(configured, hw);
}

// ---- self-calibration ------------------------------------------------------

/// A farm that cannot keep a worker lane busy has no handoff to measure;
/// this sentinel pushes the crossover to its ceiling so auto mode declines.
constexpr double kUnusableHandoffNs = 1e12;

/// Measure the two calibration costs on this machine. A few milliseconds,
/// run once per process (memoized by speculationCalibration()).
SpeculationCalibration measureCalibration() {
  using Clock = std::chrono::steady_clock;
  SpeculationCalibration cal;
  cal.measured = true;

  // Median incremental repair cost per node, on a synthetic layered DFG
  // shaped like the transform's inputs (same generator as the benches).
  {
    const Graph g = randomLayeredDfg(24, 8, 1996);
    const int steps = criticalPathLength(g) + 4;
    const double perProbe = measureMedianProbeNs(g, steps);
    cal.repairNsPerNode = std::max(1e-3, perProbe / static_cast<double>(g.size()));
  }

  // Wave-amortized handoff: rounds of empty-probe waves through the real
  // farm, lanes doing all the work (the consumer only polls — claiming
  // inline would time the wrong path). Empty batches make the probe itself
  // free, so the wave wall-clock IS the handoff cost.
  const Graph g = randomLayeredDfg(6, 4, 1996);
  const int steps = criticalPathLength(g) + 2;
  ProbeFarm farm(g, steps, LatencyModel::unit(), "calibration");
  if (farm.lanes() <= 1) {
    cal.handoffNs = kUnusableHandoffNs;
    return cal;
  }
  constexpr int kWave = 32;
  constexpr int kRounds = 5;  // first round is warm-up (lane spin-up)
  std::vector<double> rounds;
  for (int r = 0; r <= kRounds; ++r) {
    std::vector<std::size_t> tickets;
    tickets.reserve(kWave);
    const Clock::time_point t0 = Clock::now();
    for (int i = 0; i < kWave; ++i) tickets.push_back(farm.stage({}, false));
    farm.ring();
    const Clock::time_point deadline = t0 + std::chrono::milliseconds(200);
    for (const std::size_t t : tickets) {
      while (!farm.tryResult(t)) {
        if (Clock::now() > deadline) {
          // Lanes starved (heavily loaded machine): claim the rest inline
          // so the measurement terminates; the round reads slow, which is
          // the honest verdict for this machine state.
          (void)farm.await(t);
          break;
        }
        std::this_thread::yield();
      }
    }
    const double ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count();
    if (r > 0) rounds.push_back(ns / kWave);
  }
  // The FLOOR round, not the median: the handoff estimate is the machine's
  // capability, and a burst of transient load during the (one-shot)
  // measurement must not permanently disable speculation. Over-farming on
  // a loaded machine costs one amortized handoff per probe; under-farming
  // forfeits every lane forever.
  cal.handoffNs = std::max(1.0, *std::min_element(rounds.begin(), rounds.end()));
  return cal;
}

std::mutex& calibrationMutex() {
  static std::mutex m;
  return m;
}

std::optional<SpeculationCalibration>& calibrationOverrideSlot() {
  static std::optional<SpeculationCalibration> value;
  return value;
}

std::optional<SpeculationCalibration>& calibrationCacheSlot() {
  static std::optional<SpeculationCalibration> value;
  return value;
}

}  // namespace

std::size_t SpeculationCalibration::crossoverNodes() const {
  constexpr double kMin = 64.0;
  constexpr double kMax = static_cast<double>(std::size_t{1} << 22);
  if (!(repairNsPerNode > 0)) return static_cast<std::size_t>(kMax);
  const double x = std::clamp(handoffNs / repairNsPerNode, kMin, kMax);
  return static_cast<std::size_t>(x);
}

std::optional<SpeculationCalibration> parseCalibration(std::string_view text) {
  const std::string s(text);
  const char* first = s.c_str();
  char* end = nullptr;
  errno = 0;
  const double handoff = std::strtod(first, &end);
  if (end == first || *end != ',') return std::nullopt;
  const char* second = end + 1;
  const double repair = std::strtod(second, &end);
  if (end == second || *end != '\0') return std::nullopt;
  if (errno == ERANGE) return std::nullopt;
  if (!std::isfinite(handoff) || !std::isfinite(repair)) return std::nullopt;
  if (handoff <= 0 || repair <= 0) return std::nullopt;
  SpeculationCalibration cal;
  cal.handoffNs = std::clamp(handoff, 1.0, 1e9);
  cal.repairNsPerNode = std::clamp(repair, 1e-3, 1e6);
  cal.measured = false;
  return cal;
}

SpeculationCalibration speculationCalibration() {
  {
    std::lock_guard<std::mutex> lock(calibrationMutex());
    if (calibrationOverrideSlot()) return *calibrationOverrideSlot();
    if (calibrationCacheSlot()) return *calibrationCacheSlot();
    if (const char* env = std::getenv("PMSCHED_CALIBRATION")) {
      if (std::optional<SpeculationCalibration> parsed = parseCalibration(env)) {
        calibrationCacheSlot() = *parsed;
        return *parsed;
      }
    }
  }
  // Measure OUTSIDE the config lock: the measurement drives the thread
  // pool and must not serialize against concurrent mode queries.
  const SpeculationCalibration measured = measureCalibration();
  std::lock_guard<std::mutex> lock(calibrationMutex());
  if (calibrationOverrideSlot()) return *calibrationOverrideSlot();
  if (!calibrationCacheSlot()) calibrationCacheSlot() = measured;  // first writer wins
  return *calibrationCacheSlot();
}

void setSpeculationCalibration(std::optional<SpeculationCalibration> c) {
  std::lock_guard<std::mutex> lock(calibrationMutex());
  calibrationOverrideSlot() = c;
}

bool farmProbesWorthwhile(std::size_t graphSize) {
  switch (speculationMode()) {
    case SpeculationMode::Force: return true;
    case SpeculationMode::Off: return false;
    case SpeculationMode::Auto: break;
  }
  if (threadCount() <= 1) return false;
  return graphSize >= speculationCalibration().crossoverNodes();
}

// ---- ProbeFarm -------------------------------------------------------------

ProbeFarm::ProbeFarm(const Graph& g, int steps, const LatencyModel& model,
                     std::string errorContext, const RunBudget* budget)
    : g_(g),
      steps_(steps),
      model_(model),
      ctx_(std::move(errorContext)),
      lanes_(effectiveLanes()),
      budget_(budget) {
  // Everything else is lazy (see startLanes): a farm that never probes —
  // sweeps whose candidates all predecide, waves with no probeworthy
  // candidate — costs two integers, which is what lets the transform
  // construct one unconditionally.
  replicas_.resize(lanes_);
  // Constructing an oracle touches the Graph's lazy CSR/topo caches.
  // Every consumer owns a main oracle on the same graph before it builds
  // the farm, so the caches are warm; touch them here (cheap, idempotent,
  // consumer thread) rather than trusting that forever.
  (void)g_.fanoutCsr();
  (void)g_.controlSuccCsr();
  (void)g_.controlPredCsr();
  (void)g_.topoOrderView();
}

ProbeFarm::~ProbeFarm() {
  closingFlag_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closing_ = true;
  }
  if (submittedLanes_ == 0) return;  // no drain task ever started
  workCv_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  doneCv_.wait(lock, [this] { return exitedLanes_ == submittedLanes_; });
}

void ProbeFarm::startLanes() {
  ThreadPool& pool = globalThreadPool();
  for (std::size_t lane = 1; lane < lanes_; ++lane) {
    // Capture the FARM's replica slot: lanes_ may be clamped below the
    // pool's lane count, so the executing pool worker's own index can
    // exceed replicas_.
    pool.submit([this, lane](std::size_t) {
      laneLoop(lane);
      // Notify while holding the mutex: the destructor owns it while
      // checking the exit predicate, so the farm (and this condition
      // variable) cannot be torn down between the increment and the wake.
      std::lock_guard<std::mutex> lock(mutex_);
      ++exitedLanes_;
      doneCv_.notify_all();
    });
    ++submittedLanes_;
  }
}

void ProbeFarm::commitBatch(const TimeFrameOracle& committedState) {
  TimeFrameOracle::FrameSnapshot snap = committedState.snapshot();
  std::lock_guard<std::mutex> lock(mutex_);
  snapshots_.push_back(std::move(snap));
  version_.store(version_.load(std::memory_order_relaxed) + 1, std::memory_order_release);
}

std::size_t ProbeFarm::stage(std::vector<Edge> edges, bool diagnose, bool exact) {
  fault::point("farm-stage");
  Job job;
  job.edges = std::move(edges);
  // The staging thread is the committing thread, so this is the version
  // the job would also observe at ring() time — except for exact reason
  // jobs enqueued at their candidate's turn, which is exactly the version
  // they must pin.
  job.version = version_.load(std::memory_order_relaxed);
  job.diagnose = diagnose;
  job.exact = exact;
  const std::size_t ticket = published_.size() + pendingWave_.size();
  pendingWave_.push_back(std::move(job));
  return ticket;
}

void ProbeFarm::ring() {
  if (pendingWave_.empty()) return;
  auto wave = std::make_unique<Wave>();
  wave->jobs = std::move(pendingWave_);
  pendingWave_.clear();
  const std::uint32_t n = static_cast<std::uint32_t>(wave->jobs.size());
  wave->state = std::make_unique<std::atomic<std::uint8_t>[]>(n);
  for (std::uint32_t i = 0; i < n; ++i)
    wave->state[i].store(kQueued, std::memory_order_relaxed);
  // Slices amortize the claim fetch_add without starving lanes: aim for a
  // couple of slices per worker lane, capped so a blocked consumer's
  // inline steal of one hot job stays responsive.
  const std::uint32_t workers = static_cast<std::uint32_t>(lanes_ > 1 ? lanes_ - 1 : 1);
  wave->slice = std::clamp<std::uint32_t>(n / (2 * workers), 1, 16);
  Wave* raw = wave.get();
  for (std::uint32_t i = 0; i < n; ++i) published_.emplace_back(raw, i);
  if (lanes_ > 1 && submittedLanes_ == 0) startLanes();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    waves_.push_back(std::move(wave));
  }
  workCv_.notify_all();  // the one cv round for this wave
}

ProbeFarm::Result ProbeFarm::await(std::size_t ticket) {
  if (ticket >= published_.size()) ring();  // staged but never rung
  const auto [wave, slot] = published_.at(ticket);
  std::atomic<std::uint8_t>& st = wave->state[slot];
  Job& job = wave->jobs[slot];
  for (;;) {
    const std::uint8_t s = st.load(std::memory_order_acquire);
    if (s == kDone) return job.result;
    if (s == kQueued) {
      // Claim it ourselves: the consumer is blocked on this exact verdict,
      // so running it inline (on the caller's replica) beats waiting for a
      // lane to get to it.
      std::uint8_t expected = kQueued;
      if (st.compare_exchange_strong(expected, kClaimed, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        job.result = runJob(replicas_[0], job);
        st.store(kDone, std::memory_order_release);
        return job.result;
      }
      continue;
    }
    // Claimed by a lane: the result lands in about one probe time, so spin
    // briefly before paying a sleep.
    for (int spin = 0; spin < 64; ++spin) {
      if (st.load(std::memory_order_acquire) == kDone) return job.result;
      std::this_thread::yield();
    }
    // Dekker handshake with publishResult(): the flag store and the lane's
    // kDone store are both seq_cst, so either the lane sees the flag and
    // pays the lock+notify, or this predicate sees kDone and never sleeps.
    std::unique_lock<std::mutex> lock(mutex_);
    consumerWaiting_.store(true, std::memory_order_seq_cst);
    doneCv_.wait(lock, [&] { return st.load(std::memory_order_seq_cst) == kDone; });
    consumerWaiting_.store(false, std::memory_order_relaxed);
    return job.result;
  }
}

std::optional<ProbeFarm::Result> ProbeFarm::tryResult(std::size_t ticket) {
  if (ticket >= published_.size()) return std::nullopt;
  const auto [wave, slot] = published_[ticket];
  if (wave->state[slot].load(std::memory_order_acquire) != kDone) return std::nullopt;
  return wave->jobs[slot].result;
}

void ProbeFarm::laneLoop(std::size_t lane) {
  for (;;) {
    Wave* wave = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        // Exit before claiming anything else: once the consumer is tearing
        // the farm down, leftover abandoned jobs must not keep a lane (and
        // its reads of the shared Graph) alive — the consumer may mutate
        // the graph as soon as the destructor returns.
        if (closing_) return;
        while (firstOpenWave_ < waves_.size() && waves_[firstOpenWave_]->exhausted())
          ++firstOpenWave_;
        for (std::size_t k = firstOpenWave_; k < waves_.size(); ++k) {
          if (!waves_[k]->exhausted()) {
            wave = waves_[k].get();
            break;
          }
        }
        if (wave) break;
        workCv_.wait(lock);
      }
    }
    drainWave(*wave, lane);
  }
}

void ProbeFarm::drainWave(Wave& wave, std::size_t lane) {
  const std::uint32_t n = static_cast<std::uint32_t>(wave.jobs.size());
  for (;;) {
    const std::uint32_t base = wave.cursor.fetch_add(wave.slice, std::memory_order_relaxed);
    if (base >= n) return;
    const std::uint32_t end = std::min(n, base + wave.slice);
    for (std::uint32_t i = base; i < end; ++i) {
      // Both polls sit BEFORE the claim: a job this lane has claimed always
      // publishes (publishResult below), so the consumer's await can never
      // hang on a silently dropped slot. An exhausted budget (including a
      // cancelled token) therefore drains the farm within one slice-quantum
      // — the unclaimed remainder is either run inline by the consumer or
      // reaped by the destructor.
      if (closingFlag_.load(std::memory_order_relaxed)) return;  // teardown: stop claiming
      if (budget_ != nullptr && budget_->exhausted()) return;    // cancellation: stop claiming
      std::uint8_t expected = kQueued;
      if (!wave.state[i].compare_exchange_strong(expected, kClaimed,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire))
        continue;  // the blocked consumer stole it
      publishResult(wave, i, runJob(replicas_[lane], wave.jobs[i]));
    }
  }
}

void ProbeFarm::publishResult(Wave& wave, std::uint32_t slot, Result r) {
  wave.jobs[slot].result = std::move(r);
  wave.state[slot].store(kDone, std::memory_order_seq_cst);
  // Wake the consumer only if it declared itself blocked (see await):
  // while the consumer is ahead of the lanes — the throughput case — a
  // result costs one release store and no lock at all. The empty critical
  // section cannot be elided: holding the mutex for the notify pins the
  // consumer either before its predicate check (it will see kDone) or
  // inside the wait (the notify lands).
  if (consumerWaiting_.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(mutex_);
    doneCv_.notify_all();
  }
}

void ProbeFarm::syncReplica(Replica& rep, std::uint64_t target) {
  if (rep.version == target) return;
  if (target == 0) {
    rep.oracle->restoreInitial();
  } else {
    const TimeFrameOracle::FrameSnapshot* snap;
    {
      // Snapshots are immutable once appended (and a deque push_back moves
      // no existing element), so only the pointer read is guarded.
      std::lock_guard<std::mutex> lock(mutex_);
      snap = &snapshots_[target - 1];
    }
    rep.oracle->restore(*snap);
  }
  rep.version = target;
}

ProbeFarm::Result ProbeFarm::runJob(Replica& rep, const Job& job) {
  Result r;
  r.version = job.version;
  if (!job.exact && version_.load(std::memory_order_acquire) != job.version)
    return r;  // stale before it ran: skip
  if (!rep.oracle) rep.oracle = std::make_unique<TimeFrameOracle>(g_, steps_, model_, ctx_);
  r.ran = true;
  try {
    // Inside the try: an injected fault is captured like a cycle error and
    // rethrown by the consumer at the candidate's turn, in order.
    fault::point("farm-run");
    syncReplica(rep, job.version);
    rep.oracle->push(job.edges, /*probe=*/!job.diagnose);
    r.feasible = rep.oracle->feasible();
    if (job.diagnose && !r.feasible) r.firstInfeasible = rep.oracle->firstInfeasible();
    rep.oracle->pop();
  } catch (...) {
    // A cycle throw leaves the oracle unchanged; anything else mid-probe
    // could leave the probe batch open — unwind it so the replica stays
    // at its restored committed state.
    r.error = std::current_exception();
    while (rep.oracle->depth() > 0) rep.oracle->pop();
  }
  return r;
}

}  // namespace pmsched
