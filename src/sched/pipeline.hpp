#pragma once
// Pipelining as a power-management enabler (paper §IV-B).
//
// A k-stage pipeline processes k samples concurrently: the schedule may use
// k * T control steps of latency while a new sample still enters every T
// steps. The extra latency is slack, and slack is exactly what the
// power-management transform needs to schedule control signals first.
// Execution units are shared across overlapping samples, so resource usage
// folds modulo the initiation interval T.

#include <optional>

#include "sched/list_scheduler.hpp"
#include "sched/power_transform.hpp"
#include "sched/schedule.hpp"

namespace pmsched {

struct PipelineOptions {
  int stages = 1;          ///< k: concurrent samples
  int effectiveSteps = 0;  ///< T: control steps between samples (throughput)
  MuxOrdering ordering = MuxOrdering::OutputFirst;
  bool powerManage = true;   ///< false = baseline pipeline without PM
  bool sharedGating = true;  ///< also run the OR-composed gating pass
};

struct PipelineResult {
  PowerManagedDesign design;   ///< PM transform over the widened budget
  Schedule schedule;           ///< latency = stages * effectiveSteps
  ResourceVector units;        ///< folded (modulo T) unit requirement
  int latency = 0;             ///< total control steps for one sample
};

/// Schedule `g` as a `stages`-deep pipeline with throughput
/// `effectiveSteps`. Throws InfeasibleError when even the widened latency
/// cannot hold the critical path.
[[nodiscard]] PipelineResult pipelineSchedule(const Graph& g, const PipelineOptions& opts);

}  // namespace pmsched
