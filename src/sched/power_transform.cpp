#include "sched/power_transform.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "cdfg/analysis.hpp"
#include "sched/timeframe_oracle.hpp"

namespace pmsched {

namespace {

/// Relative power weights used only to order muxes for the BySavings
/// strategy (the paper's §V weights; the real power model lives in
/// src/power and is configurable).
double orderingWeight(ResourceClass rc) {
  switch (rc) {
    case ResourceClass::Mux: return 1;
    case ResourceClass::Comparator: return 4;
    case ResourceClass::Adder: return 3;
    case ResourceClass::Subtractor: return 3;
    case ResourceClass::Multiplier: return 20;
    case ResourceClass::Logic: return 1;
    case ResourceClass::Shifter: return 2;
    case ResourceClass::None: return 0;
  }
  return 0;
}

double potentialSavings(const Graph& g, const GatedSets& sets) {
  double s = 0;
  for (const NodeId n : sets.gatedTrue)
    if (isScheduled(g.kind(n))) s += orderingWeight(resourceClassOf(g.kind(n))) * 0.5;
  for (const NodeId n : sets.gatedFalse)
    if (isScheduled(g.kind(n))) s += orderingWeight(resourceClassOf(g.kind(n))) * 0.5;
  return s;
}

bool anyScheduled(const Graph& g, const std::vector<NodeId>& nodes) {
  return std::any_of(nodes.begin(), nodes.end(),
                     [&](NodeId n) { return isScheduled(g.kind(n)); });
}

/// One side's gated set: start from the exclusive cone and shrink to the
/// nodes whose every data fanout stays inside the set (or is the mux).
std::vector<NodeId> gatedSide(const Graph& g, NodeId mux, const NodeMask& coneSide,
                              const NodeMask& coneOther, const NodeMask& coneSel) {
  // Exclusive cone, word-parallel: side \ other \ select.
  NodeMask in = coneSide;
  in.subtract(coneOther);
  in.subtract(coneSel);
  std::vector<NodeId> members;
  in.forEachSet([&](std::size_t n) {
    const OpKind k = g.kind(static_cast<NodeId>(n));
    if (k == OpKind::Input || k == OpKind::Const || k == OpKind::Output)
      in.reset(n);
    else
      members.push_back(static_cast<NodeId>(n));
  });
  // Greatest fixed point: drop nodes with a fanout escaping (set ∪ {mux});
  // a removal can expose its producers, so recheck them via a worklist.
  const CsrAdjacency& fanouts = g.fanoutCsr();
  std::vector<NodeId> work = members;
  while (!work.empty()) {
    const NodeId n = work.back();
    work.pop_back();
    if (!in.test(n)) continue;
    for (const NodeId f : fanouts.row(n)) {
      if (f == mux || in.test(f)) continue;
      in.reset(n);
      for (const NodeId p : g.fanins(n))
        if (in.test(p)) work.push_back(p);
      break;
    }
  }
  return in.toVector();
}

/// Scheduled members of `set` with no scheduled in-set ancestor (looking
/// through in-set wires): the targets of the paper's control edges.
///
/// Data operands always have smaller ids than their consumers, so ascending
/// id is a topological order for the backward reachability flags — one pass
/// instead of a fresh DFS (with an O(V) visited array) per member.
std::vector<NodeId> topNodes(const Graph& g, const std::vector<NodeId>& set) {
  NodeMask in(g.size());
  for (const NodeId n : set) in.set(n);

  // reach[p] = a scheduled in-set node is backward-reachable from p
  // (inclusive) through in-set nodes.
  NodeMask reach(g.size());
  for (const NodeId n : set) {  // ascending ids = data-topological
    if (isScheduled(g.kind(n))) {
      reach.set(n);
      continue;
    }
    for (const NodeId p : g.fanins(n)) {
      if (in.test(p) && reach.test(p)) {
        reach.set(n);
        break;
      }
    }
  }

  std::vector<NodeId> tops;
  for (const NodeId n : set) {
    if (!isScheduled(g.kind(n))) continue;
    bool hasAncestor = false;
    for (const NodeId p : g.fanins(n)) {
      if (in.test(p) && reach.test(p)) {
        hasAncestor = true;
        break;
      }
    }
    if (!hasAncestor) tops.push_back(n);
  }
  return tops;
}

/// Processing order of the mux list under a strategy. `cones` is the
/// caller's faninConeMasks table (shared with the transform run itself).
std::vector<NodeId> orderMuxes(const Graph& g, MuxOrdering ordering,
                               std::span<const NodeMask> cones) {
  std::vector<NodeId> muxes = g.nodesOfKind(OpKind::Mux);
  switch (ordering) {
    case MuxOrdering::OutputFirst: {
      const std::vector<int> dist = distanceToOutput(g);
      std::stable_sort(muxes.begin(), muxes.end(), [&](NodeId a, NodeId b) {
        if (dist[a] != dist[b]) return dist[a] < dist[b];
        return a < b;
      });
      break;
    }
    case MuxOrdering::InputFirst: {
      const std::vector<int> dist = distanceToOutput(g);
      std::stable_sort(muxes.begin(), muxes.end(), [&](NodeId a, NodeId b) {
        if (dist[a] != dist[b]) return dist[a] > dist[b];
        return a < b;
      });
      break;
    }
    case MuxOrdering::BySavings: {
      std::vector<double> savings(g.size(), 0);
      for (const NodeId m : muxes) savings[m] = potentialSavings(g, computeGatedSets(g, m, cones));
      std::stable_sort(muxes.begin(), muxes.end(), [&](NodeId a, NodeId b) {
        if (savings[a] != savings[b]) return savings[a] > savings[b];
        return a < b;
      });
      break;
    }
  }
  return muxes;
}

}  // namespace

NodeId traceSelectProducer(const Graph& g, NodeId mux) {
  if (g.kind(mux) != OpKind::Mux) throw SynthesisError("traceSelectProducer: not a mux");
  NodeId n = g.fanins(mux)[0];
  while (g.kind(n) == OpKind::Wire) n = g.fanins(n)[0];
  return n;
}

GatedSets computeGatedSets(const Graph& g, NodeId mux) {
  if (g.kind(mux) != OpKind::Mux) throw SynthesisError("computeGatedSets: not a mux");
  const NodeMask coneSel = g.operandCone(mux, 0);
  const NodeMask coneT = g.operandCone(mux, 1);
  const NodeMask coneF = g.operandCone(mux, 2);

  GatedSets sets;
  sets.gatedTrue = gatedSide(g, mux, coneT, coneF, coneSel);
  sets.gatedFalse = gatedSide(g, mux, coneF, coneT, coneSel);
  sets.topTrue = topNodes(g, sets.gatedTrue);
  sets.topFalse = topNodes(g, sets.gatedFalse);
  return sets;
}

GatedSets computeGatedSets(const Graph& g, NodeId mux, std::span<const NodeMask> cones) {
  if (g.kind(mux) != OpKind::Mux) throw SynthesisError("computeGatedSets: not a mux");
  const std::span<const NodeId> ops = g.fanins(mux);
  const NodeMask& coneSel = cones[ops[0]];
  const NodeMask& coneT = cones[ops[1]];
  const NodeMask& coneF = cones[ops[2]];

  GatedSets sets;
  sets.gatedTrue = gatedSide(g, mux, coneT, coneF, coneSel);
  sets.gatedFalse = gatedSide(g, mux, coneF, coneT, coneSel);
  sets.topTrue = topNodes(g, sets.gatedTrue);
  sets.topFalse = topNodes(g, sets.gatedFalse);
  return sets;
}

PowerManagedDesign unmanagedDesign(const Graph& g, int steps) {
  PowerManagedDesign design;
  design.graph = g.clone();
  design.steps = steps;
  design.gates.assign(g.size(), {});
  design.sharedGating.assign(g.size(), {});
  design.frames = computeTimeFrames(design.graph, steps);
  return design;
}

namespace {
PowerManagedDesign runTransformWithModel(const Graph& g, int steps,
                                         const std::vector<NodeId>& candidates,
                                         const LatencyModel& model, bool useOracle,
                                         std::span<const NodeMask> cones);
}  // namespace

std::vector<GateDnf> resolveActivationConditions(const PowerManagedDesign& design) {
  const Graph& g = design.graph;
  std::vector<GateDnf> cond(g.size());

  // A node is gated only by muxes downstream of it, so resolving in reverse
  // topological order guarantees every gating mux is finished first.
  const std::span<const NodeId> order = g.topoOrderView();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    if (!design.sharedGating[n].empty()) {
      cond[n] = simplifyDnf(design.sharedGating[n]);
      continue;
    }
    GateDnf c = dnfTrue();
    for (const NodeGate& gate : design.gates[n]) {
      const GateDnf lit{
          GateTerm{GateLiteral{traceSelectProducer(g, gate.mux), gate.side == MuxSide::True}}};
      c = andDnf(c, lit);
      c = andDnf(c, cond[gate.mux]);
    }
    cond[n] = std::move(c);
  }
  return cond;
}

int PowerManagedDesign::managedCount() const {
  int count = 0;
  for (const MuxPmInfo& info : muxes)
    if (info.managed && info.hasGatedWork()) ++count;
  return count;
}

int PowerManagedDesign::sharedGatedCount() const {
  int count = 0;
  for (const GateDnf& dnf : sharedGating)
    if (!dnf.empty()) ++count;
  return count;
}

namespace {

/// Shared driver: offer power management to `candidates` in order, keeping
/// each mux whose control edges leave the frames feasible. With `useOracle`
/// the per-mux schedulability test is an incremental push → test →
/// pop/commit on a TimeFrameOracle; otherwise frames are recomputed from
/// scratch per mux (the retained reference path differential tests pin the
/// oracle against).
PowerManagedDesign runTransformWithModel(const Graph& g, int steps,
                                         const std::vector<NodeId>& candidates,
                                         const LatencyModel& model, bool useOracle,
                                         std::span<const NodeMask> cones) {
  PowerManagedDesign design;
  design.graph = g.clone();
  design.steps = steps;
  design.latency = model;
  design.gates.assign(g.size(), {});
  design.sharedGating.assign(g.size(), {});

  Graph& work = design.graph;
  std::vector<std::pair<NodeId, NodeId>> committed;
  std::optional<TimeFrameOracle> oracle;
  if (useOracle) oracle.emplace(work, steps, model, "power-transform");
  // `cones` was computed by the caller on a graph with identical nodes and
  // data edges; edges are only materialized after the loop, so it stays
  // valid for the whole sweep (control edges would not affect it anyway).

  for (const NodeId m : candidates) {
    MuxPmInfo info;
    info.mux = m;

    GatedSets sets = computeGatedSets(work, m, cones);
    info.gatedTrue = std::move(sets.gatedTrue);
    info.gatedFalse = std::move(sets.gatedFalse);
    info.topTrue = std::move(sets.topTrue);
    info.topFalse = std::move(sets.topFalse);

    if (!anyScheduled(work, info.gatedTrue) && !anyScheduled(work, info.gatedFalse)) {
      info.reason = "no operations are exclusive to one data input";
      design.muxes.push_back(std::move(info));
      continue;
    }

    const NodeId ctrl = traceSelectProducer(work, m);
    std::vector<std::pair<NodeId, NodeId>> newEdges;
    if (isScheduled(work.kind(ctrl))) {
      info.lastControl = ctrl;
      for (const NodeId t : info.topTrue) newEdges.emplace_back(ctrl, t);
      for (const NodeId t : info.topFalse) newEdges.emplace_back(ctrl, t);
    }
    // A select driven directly by an input or constant needs no control
    // step, so gating it is always feasible (lastControl stays invalid).

    std::optional<NodeId> bad;
    if (oracle) {
      oracle->push(newEdges);
      if (oracle->feasible()) {
        oracle->commit();
      } else {
        bad = oracle->firstInfeasible();
        oracle->pop();  // revert (tentative edges dropped)
      }
    } else {
      std::vector<std::pair<NodeId, NodeId>> tentative = committed;
      tentative.insert(tentative.end(), newEdges.begin(), newEdges.end());
      bad = computeTimeFrames(work, steps, tentative, model).firstInfeasible(work);
    }
    if (bad) {
      info.reason = "insufficient slack: node '" + work.node(*bad).name +
                    "' would need ASAP > ALAP";
      design.muxes.push_back(std::move(info));
      continue;
    }

    committed.insert(committed.end(), newEdges.begin(), newEdges.end());  // commit (steps 8)
    info.managed = true;
    for (const NodeId n : info.gatedTrue) design.gates[n].push_back({m, MuxSide::True});
    for (const NodeId n : info.gatedFalse) design.gates[n].push_back({m, MuxSide::False});
    design.muxes.push_back(std::move(info));
  }

  // Final frames before materializing: the oracle's committed fixed point
  // equals computeTimeFrames over the augmented graph.
  if (oracle) design.frames = oracle->frames();

  // Step 10: materialize the committed precedence as control edges.
  for (const auto& [before, after] : committed) work.addControlEdge(before, after);
  if (!oracle) design.frames = computeTimeFrames(work, steps, {}, model);
  return design;
}

PowerManagedDesign runTransform(const Graph& g, int steps,
                                const std::vector<NodeId>& candidates, bool useOracle,
                                std::span<const NodeMask> cones) {
  return runTransformWithModel(g, steps, candidates, LatencyModel::unit(), useOracle, cones);
}

}  // namespace

PowerManagedDesign applyPowerManagement(const Graph& g, int steps, MuxOrdering ordering,
                                        const LatencyModel& model) {
  g.validate();
  const std::vector<NodeMask> cones = faninConeMasks(g);
  return runTransformWithModel(g, steps, orderMuxes(g, ordering, cones), model,
                               /*useOracle=*/true, cones);
}

PowerManagedDesign applyPowerManagementReference(const Graph& g, int steps, MuxOrdering ordering,
                                                 const LatencyModel& model) {
  g.validate();
  const std::vector<NodeMask> cones = faninConeMasks(g);
  return runTransformWithModel(g, steps, orderMuxes(g, ordering, cones), model,
                               /*useOracle=*/false, cones);
}

namespace {

PowerManagedDesign runOptimal(const Graph& g, int steps, std::size_t maxMuxes, bool useOracle) {
  g.validate();

  // Candidates: muxes with gated work, most promising first. The gated sets
  // feed both the savings estimate and the control edges, so compute them
  // once per mux.
  std::vector<NodeId> candidates;
  std::vector<double> savings(g.size(), 0);
  std::vector<std::vector<std::pair<NodeId, NodeId>>> muxEdges;
  const std::vector<NodeMask> cones = faninConeMasks(g);
  for (const NodeId m : g.nodesOfKind(OpKind::Mux)) {
    const GatedSets sets = computeGatedSets(g, m, cones);
    if (!anyScheduled(g, sets.gatedTrue) && !anyScheduled(g, sets.gatedFalse)) continue;
    savings[m] = potentialSavings(g, sets);
    candidates.push_back(m);
    std::vector<std::pair<NodeId, NodeId>> edges;
    const NodeId ctrl = traceSelectProducer(g, m);
    if (isScheduled(g.kind(ctrl))) {  // else always feasible, no edges
      for (const NodeId t : sets.topTrue) edges.emplace_back(ctrl, t);
      for (const NodeId t : sets.topFalse) edges.emplace_back(ctrl, t);
    }
    muxEdges.push_back(std::move(edges));
  }
  {
    std::vector<std::size_t> perm(candidates.size());
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    std::stable_sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
      return savings[candidates[a]] > savings[candidates[b]];
    });
    std::vector<NodeId> sortedCandidates(candidates.size());
    std::vector<std::vector<std::pair<NodeId, NodeId>>> sortedEdges(candidates.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
      sortedCandidates[i] = candidates[perm[i]];
      sortedEdges[i] = std::move(muxEdges[perm[i]]);
    }
    candidates = std::move(sortedCandidates);
    muxEdges = std::move(sortedEdges);
  }

  // Exact search over the head of the candidate list; anything beyond
  // maxMuxes is handled greedily afterwards (documented in the header).
  const std::size_t exactCount = std::min(candidates.size(), maxMuxes);

  std::optional<TimeFrameOracle> oracle;
  if (useOracle) oracle.emplace(g, steps, LatencyModel::unit(), "power-transform");

  // Reference feasibility: rebuild the whole edge set and recompute frames.
  auto feasibleRef = [&](const std::vector<bool>& chosen) {
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (std::size_t i = 0; i < chosen.size(); ++i)
      if (chosen[i])
        edges.insert(edges.end(), muxEdges[i].begin(), muxEdges[i].end());
    return computeTimeFrames(g, steps, edges).feasible(g);
  };

  std::vector<bool> best(candidates.size(), false);
  double bestValue = -1;
  std::vector<bool> current(candidates.size(), false);

  // Suffix sums of savings for pruning.
  std::vector<double> suffix(exactCount + 1, 0);
  for (std::size_t i = exactCount; i-- > 0;)
    suffix[i] = suffix[i + 1] + savings[candidates[i]];

  // DFS over include/exclude: push the mux's edges on descend, pop on
  // backtrack, so each node of the search tree costs one incremental
  // repair instead of a from-scratch frame computation.
  auto dfs = [&](auto&& self, std::size_t i, double value) -> void {
    if (value + suffix[i] <= bestValue) return;  // cannot beat the best
    if (i == exactCount) {
      if (value > bestValue) {
        bestValue = value;
        best = current;
      }
      return;
    }
    current[i] = true;
    bool ok;
    if (oracle) {
      oracle->push(muxEdges[i], /*probe=*/true);
      ok = oracle->feasible();
    } else {
      ok = feasibleRef(current);
    }
    if (ok) self(self, i + 1, value + savings[candidates[i]]);
    if (oracle) oracle->pop();
    current[i] = false;
    self(self, i + 1, value);
  };
  dfs(dfs, 0, 0);

  // Greedy tail beyond the exact window.
  if (oracle) {
    for (std::size_t i = 0; i < exactCount; ++i)
      if (best[i]) {
        oracle->push(muxEdges[i]);
        oracle->commit();
      }
    for (std::size_t i = exactCount; i < candidates.size(); ++i) {
      oracle->push(muxEdges[i], /*probe=*/true);
      if (oracle->feasible()) {
        best[i] = true;
        oracle->commit();
      } else {
        oracle->pop();
      }
    }
  } else {
    for (std::size_t i = exactCount; i < candidates.size(); ++i) {
      best[i] = true;
      if (!feasibleRef(best)) best[i] = false;
    }
  }

  std::vector<NodeId> chosen;
  for (std::size_t i = 0; i < candidates.size(); ++i)
    if (best[i]) chosen.push_back(candidates[i]);
  return runTransform(g, steps, chosen, useOracle, cones);
}

}  // namespace

PowerManagedDesign applyPowerManagementOptimal(const Graph& g, int steps,
                                               std::size_t maxMuxes) {
  return runOptimal(g, steps, maxMuxes, /*useOracle=*/true);
}

PowerManagedDesign applyPowerManagementOptimalReference(const Graph& g, int steps,
                                                        std::size_t maxMuxes) {
  return runOptimal(g, steps, maxMuxes, /*useOracle=*/false);
}

}  // namespace pmsched
