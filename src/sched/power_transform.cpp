#include "sched/power_transform.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>
#include <thread>

#include "cdfg/analysis.hpp"
#include "sched/probe_farm.hpp"
#include "sched/timeframe_oracle.hpp"
#include "support/run_budget.hpp"
#include "support/thread_pool.hpp"

namespace pmsched {

namespace {

/// Relative power weights used only to order muxes for the BySavings
/// strategy (the paper's §V weights; the real power model lives in
/// src/power and is configurable).
double orderingWeight(ResourceClass rc) {
  switch (rc) {
    case ResourceClass::Mux: return 1;
    case ResourceClass::Comparator: return 4;
    case ResourceClass::Adder: return 3;
    case ResourceClass::Subtractor: return 3;
    case ResourceClass::Multiplier: return 20;
    case ResourceClass::Logic: return 1;
    case ResourceClass::Shifter: return 2;
    case ResourceClass::None: return 0;
  }
  return 0;
}

double potentialSavings(const Graph& g, const GatedSets& sets) {
  double s = 0;
  for (const NodeId n : sets.gatedTrue)
    if (isScheduled(g.kind(n))) s += orderingWeight(resourceClassOf(g.kind(n))) * 0.5;
  for (const NodeId n : sets.gatedFalse)
    if (isScheduled(g.kind(n))) s += orderingWeight(resourceClassOf(g.kind(n))) * 0.5;
  return s;
}

bool anyScheduled(const Graph& g, const std::vector<NodeId>& nodes) {
  return std::any_of(nodes.begin(), nodes.end(),
                     [&](NodeId n) { return isScheduled(g.kind(n)); });
}

/// One side's gated set: start from the exclusive cone and shrink to the
/// nodes whose every data fanout stays inside the set (or is the mux).
std::vector<NodeId> gatedSide(const Graph& g, NodeId mux, const NodeMask& coneSide,
                              const NodeMask& coneOther, const NodeMask& coneSel) {
  // Exclusive cone, word-parallel: side \ other \ select.
  NodeMask in = coneSide;
  in.subtract(coneOther);
  in.subtract(coneSel);
  std::vector<NodeId> members;
  in.forEachSet([&](std::size_t n) {
    const OpKind k = g.kind(static_cast<NodeId>(n));
    if (k == OpKind::Input || k == OpKind::Const || k == OpKind::Output)
      in.reset(n);
    else
      members.push_back(static_cast<NodeId>(n));
  });
  // Greatest fixed point: drop nodes with a fanout escaping (set ∪ {mux});
  // a removal can expose its producers, so recheck them via a worklist.
  const CsrAdjacency& fanouts = g.fanoutCsr();
  std::vector<NodeId> work = members;
  while (!work.empty()) {
    const NodeId n = work.back();
    work.pop_back();
    if (!in.test(n)) continue;
    for (const NodeId f : fanouts.row(n)) {
      if (f == mux || in.test(f)) continue;
      in.reset(n);
      for (const NodeId p : g.fanins(n))
        if (in.test(p)) work.push_back(p);
      break;
    }
  }
  return in.toVector();
}

/// Scheduled members of `set` with no scheduled in-set ancestor (looking
/// through in-set wires): the targets of the paper's control edges.
///
/// Data operands always have smaller ids than their consumers, so ascending
/// id is a topological order for the backward reachability flags — one pass
/// instead of a fresh DFS (with an O(V) visited array) per member.
std::vector<NodeId> topNodes(const Graph& g, const std::vector<NodeId>& set) {
  NodeMask in(g.size());
  for (const NodeId n : set) in.set(n);

  // reach[p] = a scheduled in-set node is backward-reachable from p
  // (inclusive) through in-set nodes.
  NodeMask reach(g.size());
  for (const NodeId n : set) {  // ascending ids = data-topological
    if (isScheduled(g.kind(n))) {
      reach.set(n);
      continue;
    }
    for (const NodeId p : g.fanins(n)) {
      if (in.test(p) && reach.test(p)) {
        reach.set(n);
        break;
      }
    }
  }

  std::vector<NodeId> tops;
  for (const NodeId n : set) {
    if (!isScheduled(g.kind(n))) continue;
    bool hasAncestor = false;
    for (const NodeId p : g.fanins(n)) {
      if (in.test(p) && reach.test(p)) {
        hasAncestor = true;
        break;
      }
    }
    if (!hasAncestor) tops.push_back(n);
  }
  return tops;
}

/// Processing order of the mux list under a strategy. `cones` is the
/// caller's faninConeMasks table (shared with the transform run itself).
std::vector<NodeId> orderMuxes(const Graph& g, MuxOrdering ordering,
                               std::span<const NodeMask> cones) {
  std::vector<NodeId> muxes = g.nodesOfKind(OpKind::Mux);
  switch (ordering) {
    case MuxOrdering::OutputFirst: {
      const std::vector<int> dist = distanceToOutput(g);
      std::stable_sort(muxes.begin(), muxes.end(), [&](NodeId a, NodeId b) {
        if (dist[a] != dist[b]) return dist[a] < dist[b];
        return a < b;
      });
      break;
    }
    case MuxOrdering::InputFirst: {
      const std::vector<int> dist = distanceToOutput(g);
      std::stable_sort(muxes.begin(), muxes.end(), [&](NodeId a, NodeId b) {
        if (dist[a] != dist[b]) return dist[a] > dist[b];
        return a < b;
      });
      break;
    }
    case MuxOrdering::BySavings: {
      std::vector<double> savings(g.size(), 0);
      for (const NodeId m : muxes) savings[m] = potentialSavings(g, computeGatedSets(g, m, cones));
      std::stable_sort(muxes.begin(), muxes.end(), [&](NodeId a, NodeId b) {
        if (savings[a] != savings[b]) return savings[a] > savings[b];
        return a < b;
      });
      break;
    }
  }
  return muxes;
}

}  // namespace

NodeId traceSelectProducer(const Graph& g, NodeId mux) {
  if (g.kind(mux) != OpKind::Mux) throw SynthesisError("traceSelectProducer: not a mux");
  NodeId n = g.fanins(mux)[0];
  while (g.kind(n) == OpKind::Wire) n = g.fanins(n)[0];
  return n;
}

GatedSets computeGatedSets(const Graph& g, NodeId mux) {
  if (g.kind(mux) != OpKind::Mux) throw SynthesisError("computeGatedSets: not a mux");
  const NodeMask coneSel = g.operandCone(mux, 0);
  const NodeMask coneT = g.operandCone(mux, 1);
  const NodeMask coneF = g.operandCone(mux, 2);

  GatedSets sets;
  sets.gatedTrue = gatedSide(g, mux, coneT, coneF, coneSel);
  sets.gatedFalse = gatedSide(g, mux, coneF, coneT, coneSel);
  sets.topTrue = topNodes(g, sets.gatedTrue);
  sets.topFalse = topNodes(g, sets.gatedFalse);
  return sets;
}

GatedSets computeGatedSets(const Graph& g, NodeId mux, std::span<const NodeMask> cones) {
  if (g.kind(mux) != OpKind::Mux) throw SynthesisError("computeGatedSets: not a mux");
  const std::span<const NodeId> ops = g.fanins(mux);
  const NodeMask& coneSel = cones[ops[0]];
  const NodeMask& coneT = cones[ops[1]];
  const NodeMask& coneF = cones[ops[2]];

  GatedSets sets;
  sets.gatedTrue = gatedSide(g, mux, coneT, coneF, coneSel);
  sets.gatedFalse = gatedSide(g, mux, coneF, coneT, coneSel);
  sets.topTrue = topNodes(g, sets.gatedTrue);
  sets.topFalse = topNodes(g, sets.gatedFalse);
  return sets;
}

PowerManagedDesign unmanagedDesign(const Graph& g, int steps) {
  PowerManagedDesign design;
  design.graph = g.clone();
  design.steps = steps;
  design.gates.assign(g.size(), {});
  design.sharedGating.assign(g.size(), {});
  design.frames = computeTimeFrames(design.graph, steps);
  return design;
}

std::vector<GateDnf> resolveActivationConditions(const PowerManagedDesign& design) {
  const Graph& g = design.graph;
  std::vector<GateDnf> cond(g.size());

  // A node is gated only by muxes downstream of it, so resolving in reverse
  // topological order guarantees every gating mux is finished first.
  const std::span<const NodeId> order = g.topoOrderView();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    if (!design.sharedGating[n].empty()) {
      cond[n] = simplifyDnf(design.sharedGating[n]);
      continue;
    }
    GateDnf c = dnfTrue();
    for (const NodeGate& gate : design.gates[n]) {
      const GateDnf lit{
          GateTerm{GateLiteral{traceSelectProducer(g, gate.mux), gate.side == MuxSide::True}}};
      c = andDnf(c, lit);
      c = andDnf(c, cond[gate.mux]);
    }
    cond[n] = std::move(c);
  }
  return cond;
}

int PowerManagedDesign::managedCount() const {
  int count = 0;
  for (const MuxPmInfo& info : muxes)
    if (info.managed && info.hasGatedWork()) ++count;
  return count;
}

int PowerManagedDesign::sharedGatedCount() const {
  int count = 0;
  for (const GateDnf& dnf : sharedGating)
    if (!dnf.empty()) ++count;
  return count;
}

namespace {

using Edge = TimeFrameOracle::Edge;

/// Fewest candidates for which the farm machinery is worth spinning up.
constexpr std::size_t kMinCandidatesForFarm = 4;

// ---------------------------------------------------------------------------
// Speculative accept/reject sweep (the shared consumer of the ProbeFarm).
//
// Walks `edgeSets` strictly in order, keeping a dispatch window of probes in
// flight on the farm while committing winners on the consumer's oracle. The
// staleness rules (see probe_farm.hpp) make the verdict stream bit-identical
// to probing every candidate sequentially at its turn:
//   fresh result            -> verdict and diagnostics used as-is
//   stale INFEASIBLE        -> still infeasible (edge-set monotonicity);
//                              the reason is recovered by an `exact` job at
//                              the candidate's turn version, off the
//                              critical path (lateReason)
//   stale FEASIBLE / skip   -> re-validated on the consumer's own oracle,
//                              which is exactly the sequential cost
//   error (cycle)           -> rethrown at the candidate's turn, in order
// ---------------------------------------------------------------------------

struct SweepHooks {
  /// Consulted before probing (and before enqueueing). Must be MONOTONE:
  /// once it returns a forced verdict for a candidate it must keep
  /// returning it. true = accept without a probe (no edges committed),
  /// false = reject without a probe.
  std::function<std::optional<bool>(std::size_t)> predecide;
  /// Final verdict for candidate i, in order. `bad` is the reference's
  /// firstInfeasible() when it is already known (diagnose mode only).
  std::function<void(std::size_t, bool, const std::optional<NodeId>&)> decided;
  /// Diagnose mode: late reason delivery for stale-rejected candidates
  /// (called after the sweep, in candidate order).
  std::function<void(std::size_t, const std::optional<NodeId>&)> lateReason;
};

/// Returns the number of candidates decided — `n` on a full sweep, less
/// when the budget ran out (the caller marks the undecided tail degraded).
/// On early stop the staged-but-unawaited jobs are abandoned: the lanes
/// poll the same budget before claiming, so the farm drains within one
/// slice-quantum and the farm destructor reaps the rest.
std::size_t speculativeSweep(TimeFrameOracle& oracle, ProbeFarm& farm,
                             const std::vector<std::vector<Edge>>& edgeSets, bool diagnose,
                             const SweepHooks& hooks, const RunBudget* budget = nullptr) {
  const std::size_t n = edgeSets.size();
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  const std::size_t window = std::max<std::size_t>(4 * farm.lanes(), 8);
  // Adaptive engagement. An ACCEPT invalidates every in-flight speculative
  // probe (the committed baseline moved), so speculation only pays during
  // reject streaks — which is also where the work is, since rejects leave
  // the baseline untouched and parallelize perfectly. After an accept the
  // sweep probes the next few candidates on its own oracle (identical
  // verdicts, zero churn) and re-engages the farm once a reject streak
  // shows up again. Decisions are bit-identical either way; the policy
  // only moves probes between lanes and the consumer.
  constexpr std::size_t kCooldownAfterAccept = 4;
  std::size_t cooldown = 0;

  std::vector<std::size_t> ticket(n, kNone);
  std::vector<std::pair<std::size_t, std::size_t>> reasonJobs;  // (candidate, ticket)
  std::size_t horizon = 0;

  // Batched wave handoff: STAGE every probe in the refill block (no lock,
  // no wake), then ring the pool once — one cv round per wave instead of
  // one per probe (see probe_farm.hpp). The consume loop refills only
  // when the dispatched lookahead drops below half a window, so steady
  // reject streaks ring waves of ~window/2 probes rather than degrading
  // to per-candidate waves of one.
  auto dispatchTo = [&](std::size_t lo, std::size_t hi) {
    // An accept rewinds horizon to its own candidate; everything before
    // `lo` is already decided and must not be re-staged as garbage work.
    horizon = std::max(horizon, lo);
    for (; horizon < std::min(hi, n); ++horizon) {
      if (ticket[horizon] != kNone) continue;
      if (hooks.predecide && hooks.predecide(horizon)) continue;  // forced: no probe
      if (edgeSets[horizon].empty()) continue;                    // trivially feasible
      ticket[horizon] = farm.stage(edgeSets[horizon], diagnose);
    }
    farm.ring();
  };

  // Sequential re-validation on the consumer's oracle — exactly what the
  // sequential sweep does at this candidate's turn.
  auto probeInline = [&](std::size_t i, std::optional<NodeId>& bad) {
    if (budget != nullptr) budget->chargeProbes();
    oracle.push(edgeSets[i], /*probe=*/!diagnose);
    if (oracle.feasible()) {
      oracle.commit();
      farm.commitBatch(oracle);
      return true;
    }
    if (diagnose) bad = oracle.firstInfeasible();
    oracle.pop();
    return false;
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (budget != nullptr && budget->exhausted()) return i;  // undecided tail
    if (cooldown == 0 && horizon < std::min(i + window / 2, n)) dispatchTo(i, i + window);

    if (hooks.predecide) {
      if (const std::optional<bool> forced = hooks.predecide(i)) {
        hooks.decided(i, *forced, std::nullopt);
        continue;
      }
    }
    if (edgeSets[i].empty()) {  // no constraint: always feasible, nothing to commit
      hooks.decided(i, true, std::nullopt);
      continue;
    }

    bool accepted = false;
    bool resolved = false;
    std::optional<NodeId> bad;

    if (ticket[i] == kNone && cooldown > 0) {
      --cooldown;
      accepted = probeInline(i, bad);
      resolved = true;
    }
    if (!resolved) {
      if (ticket[i] == kNone) ticket[i] = farm.enqueue(edgeSets[i], diagnose);
      const ProbeFarm::Result r = farm.await(ticket[i]);
      const std::uint64_t cur = farm.version();
      if (r.error && r.version == cur) std::rethrow_exception(r.error);
      if (r.ran && !r.error) {
        if (r.version == cur) {
          accepted = r.feasible;
          bad = r.firstInfeasible;
          resolved = true;
          if (accepted) {
            oracle.push(edgeSets[i]);
            if (!oracle.feasible())
              throw SynthesisError("ProbeFarm: speculative verdict diverged from the oracle");
            oracle.commit();
            farm.commitBatch(oracle);
          }
        } else if (!r.feasible && diagnose) {
          // Stale reject: adding committed edges can only raise ASAPs, so
          // the verdict stands. The reference's diagnostic node — or the
          // SynthesisError the sequential push would raise if the newer
          // committed edges close a cycle through this batch — is
          // recovered by an exact job pinned to this candidate's turn
          // version and surfaced after the sweep. Without diagnose there
          // is no late job to catch the cycle case, so stale rejects fall
          // through to the inline re-validation instead.
          resolved = true;
          reasonJobs.emplace_back(i, farm.enqueue(edgeSets[i], true, /*exact=*/true));
        }
      }
      if (!resolved) {
        // Skipped, stale-feasible or stale-error.
        accepted = probeInline(i, bad);
      }
    }
    if (accepted) {
      // The commit stales every in-flight speculative job; drop their
      // tickets so dispatch re-probes against the new state (claimed stale
      // jobs finish and are discarded unread), and hold off dispatching
      // until a reject streak justifies it again.
      for (std::size_t j = i + 1; j < horizon; ++j) ticket[j] = kNone;
      horizon = i + 1;
      cooldown = kCooldownAfterAccept;
    }
    hooks.decided(i, accepted, bad);
  }

  for (const auto& [idx, t] : reasonJobs) {
    // Reasons are diagnostics only; an exhausted budget leaves the rest
    // blank rather than paying one frame computation each (the verdicts
    // above are already final).
    if (budget != nullptr && budget->exhausted()) break;
    const ProbeFarm::Result r = farm.await(t);
    if (r.error) std::rethrow_exception(r.error);
    if (hooks.lateReason) hooks.lateReason(idx, r.firstInfeasible);
  }
  return n;
}

/// Shared driver: offer power management to `candidates` in order, keeping
/// each mux whose control edges leave the frames feasible. With `useOracle`
/// the per-mux schedulability test is an incremental push → test →
/// pop/commit on a TimeFrameOracle — parallelized over a ProbeFarm when
/// `speculate` and more than one thread is configured; otherwise frames are
/// recomputed from scratch per mux (the retained reference path
/// differential tests pin the oracle against).
constexpr const char* kBudgetReason = "not attempted: run budget exhausted";

/// Mark a transform design degraded (once) and mirror it into the budget's
/// event log so the CLI can report which stage stopped early.
void markTransformDegraded(PowerManagedDesign& design, const RunBudget* budget) {
  if (design.degraded) return;
  design.degraded = true;
  const BudgetKind kind =
      budget->exhaustedWhy().value_or(BudgetKind::Deadline);
  design.degradeReason = std::string("power-management transform stopped early (") +
                         budgetKindName(kind) + "); remaining muxes left unmanaged";
  budget->noteDegraded("power-transform", kind,
                       "remaining muxes left unmanaged; design stays valid");
}

PowerManagedDesign runTransformWithModel(const Graph& g, int steps,
                                         const std::vector<NodeId>& candidates,
                                         const LatencyModel& model, bool useOracle,
                                         std::span<const NodeMask> cones,
                                         bool speculate = true,
                                         const RunBudget* budget = nullptr) {
  PowerManagedDesign design;
  design.graph = g.clone();
  design.steps = steps;
  design.latency = model;
  design.gates.assign(g.size(), {});
  design.sharedGating.assign(g.size(), {});

  Graph& work = design.graph;
  std::vector<std::pair<NodeId, NodeId>> committed;
  std::optional<TimeFrameOracle> oracle;
  if (useOracle) oracle.emplace(work, steps, model, "power-transform");
  // `cones` was computed by the caller on a graph with identical nodes and
  // data edges; edges are only materialized after the loop, so it stays
  // valid for the whole sweep (control edges would not affect it anyway).

  const bool parallel = useOracle && speculate && threadCount() > 1 &&
                        candidates.size() >= kMinCandidatesForFarm;

  if (!parallel) {
    for (const NodeId m : candidates) {
      MuxPmInfo info;
      info.mux = m;

      if (budget != nullptr && budget->exhausted()) {
        // Degrade: stop offering gating. Everything committed so far stays;
        // the design (and its final frames) remains exactly as if the
        // candidate list had ended here, so it is still schedulable.
        info.reason = kBudgetReason;
        markTransformDegraded(design, budget);
        design.muxes.push_back(std::move(info));
        continue;
      }

      GatedSets sets = computeGatedSets(work, m, cones);
      info.gatedTrue = std::move(sets.gatedTrue);
      info.gatedFalse = std::move(sets.gatedFalse);
      info.topTrue = std::move(sets.topTrue);
      info.topFalse = std::move(sets.topFalse);

      if (!anyScheduled(work, info.gatedTrue) && !anyScheduled(work, info.gatedFalse)) {
        info.reason = "no operations are exclusive to one data input";
        design.muxes.push_back(std::move(info));
        continue;
      }

      const NodeId ctrl = traceSelectProducer(work, m);
      std::vector<std::pair<NodeId, NodeId>> newEdges;
      if (isScheduled(work.kind(ctrl))) {
        info.lastControl = ctrl;
        for (const NodeId t : info.topTrue) newEdges.emplace_back(ctrl, t);
        for (const NodeId t : info.topFalse) newEdges.emplace_back(ctrl, t);
      }
      // A select driven directly by an input or constant needs no control
      // step, so gating it is always feasible (lastControl stays invalid).

      std::optional<NodeId> bad;
      if (budget != nullptr && !newEdges.empty()) budget->chargeProbes();
      if (oracle) {
        oracle->push(newEdges);
        if (oracle->feasible()) {
          oracle->commit();
        } else {
          bad = oracle->firstInfeasible();
          oracle->pop();  // revert (tentative edges dropped)
        }
      } else {
        std::vector<std::pair<NodeId, NodeId>> tentative = committed;
        tentative.insert(tentative.end(), newEdges.begin(), newEdges.end());
        bad = computeTimeFrames(work, steps, tentative, model).firstInfeasible(work);
      }
      if (bad) {
        info.reason = "insufficient slack: node '" + work.node(*bad).name +
                      "' would need ASAP > ALAP";
        design.muxes.push_back(std::move(info));
        continue;
      }

      committed.insert(committed.end(), newEdges.begin(), newEdges.end());  // commit (steps 8)
      info.managed = true;
      for (const NodeId n : info.gatedTrue) design.gates[n].push_back({m, MuxSide::True});
      for (const NodeId n : info.gatedFalse) design.gates[n].push_back({m, MuxSide::False});
      design.muxes.push_back(std::move(info));
    }

    // Final frames before materializing: the oracle's committed fixed point
    // equals computeTimeFrames over the augmented graph.
    if (oracle) design.frames = oracle->frames();

    // Step 10: materialize the committed precedence as control edges.
    for (const auto& [before, after] : committed) work.addControlEdge(before, after);
    if (!oracle) design.frames = computeTimeFrames(work, steps, {}, model);
    return design;
  }

  // ---- parallel speculative sweep -----------------------------------------
  // A candidate's gated sets and control edges depend only on the graph (it
  // is not mutated until materialization), so they are precomputed for the
  // whole candidate list in parallel; only the accept/reject verdicts are
  // order-dependent, and the speculative sweep reproduces those exactly.
  const std::size_t n = candidates.size();
  struct Cand {
    GatedSets sets;
    NodeId ctrl = kInvalidNode;
    bool gatedWork = false;
    bool ctrlScheduled = false;
  };
  std::vector<Cand> cand(n);
  std::vector<std::vector<Edge>> edgeSets(n);
  // The oracle constructor above warmed the Graph's lazy caches, so the
  // lanes' const reads of `work` below are race-free.
  auto computeCand = [&](std::size_t, std::size_t i) {
    Cand& c = cand[i];
    const NodeId m = candidates[i];
    c.sets = computeGatedSets(work, m, cones);
    c.gatedWork = anyScheduled(work, c.sets.gatedTrue) || anyScheduled(work, c.sets.gatedFalse);
    if (!c.gatedWork) return;
    c.ctrl = traceSelectProducer(work, m);
    c.ctrlScheduled = isScheduled(work.kind(c.ctrl));
    if (c.ctrlScheduled) {
      for (const NodeId t : c.sets.topTrue) edgeSets[i].emplace_back(c.ctrl, t);
      for (const NodeId t : c.sets.topFalse) edgeSets[i].emplace_back(c.ctrl, t);
    }
  };
  // A candidate's gated sets cost well under a microsecond on small
  // graphs; fan out only when the list is long enough to amortize the
  // chunk handoffs.
  if (n >= 384 || speculationMode() == SpeculationMode::Force) {
    globalThreadPool().parallelFor(0, n, 8, computeCand);
  } else {
    for (std::size_t i = 0; i < n; ++i) computeCand(0, i);
  }

  design.muxes.resize(n);
  std::size_t probeworthy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    MuxPmInfo& info = design.muxes[i];
    info.mux = candidates[i];
    info.gatedTrue = std::move(cand[i].sets.gatedTrue);
    info.gatedFalse = std::move(cand[i].sets.gatedFalse);
    info.topTrue = std::move(cand[i].sets.topTrue);
    info.topFalse = std::move(cand[i].sets.topFalse);
    if (cand[i].gatedWork && cand[i].ctrlScheduled) info.lastControl = cand[i].ctrl;
    if (!edgeSets[i].empty()) ++probeworthy;
  }

  auto slackReason = [&](const std::optional<NodeId>& bad) {
    return "insufficient slack: node '" + work.node(*bad).name + "' would need ASAP > ALAP";
  };
  auto accept = [&](std::size_t i) {
    MuxPmInfo& info = design.muxes[i];
    committed.insert(committed.end(), edgeSets[i].begin(), edgeSets[i].end());
    info.managed = true;
    for (const NodeId nn : info.gatedTrue)
      design.gates[nn].push_back({info.mux, MuxSide::True});
    for (const NodeId nn : info.gatedFalse)
      design.gates[nn].push_back({info.mux, MuxSide::False});
  };

  // The speculative farm pays off when there are enough probes to overlap
  // AND each probe outweighs a cross-thread handoff (probe cost scales
  // with the graph; see SpeculationMode). Most candidates on loose budgets
  // never reach a probe (no gated work or a PI-driven select), and for
  // those the parallel precompute above was the whole win — otherwise
  // finish with the plain sequential verdict loop.
  if (farmProbesWorthwhile(g.size()) &&
      probeworthy >= std::max<std::size_t>(3 * threadCount(), 8)) {
    SweepHooks hooks;
    hooks.predecide = [&](std::size_t i) -> std::optional<bool> {
      if (!cand[i].gatedWork) return false;
      return std::nullopt;  // empty edge sets are force-accepted by the sweep
    };
    hooks.decided = [&](std::size_t i, bool accepted, const std::optional<NodeId>& bad) {
      if (!accepted) {
        design.muxes[i].reason = cand[i].gatedWork
                                     ? (bad ? slackReason(bad) : std::string())
                                     : "no operations are exclusive to one data input";
        return;
      }
      accept(i);
    };
    hooks.lateReason = [&](std::size_t i, const std::optional<NodeId>& bad) {
      design.muxes[i].reason = slackReason(bad);
    };
    // The farm must be torn down (its destructor waits for every lane)
    // before the graph below is mutated: lanes running abandoned stale
    // jobs read the shared graph until then.
    std::size_t decided = n;
    {
      ProbeFarm farm(work, steps, model, "power-transform", budget);
      decided = speculativeSweep(*oracle, farm, edgeSets, /*diagnose=*/true, hooks, budget);
    }
    for (std::size_t i = decided; i < n; ++i) {
      design.muxes[i].reason =
          cand[i].gatedWork ? kBudgetReason
                            : "no operations are exclusive to one data input";
      markTransformDegraded(design, budget);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      if (!cand[i].gatedWork) {
        design.muxes[i].reason = "no operations are exclusive to one data input";
        continue;
      }
      if (budget != nullptr && budget->exhausted()) {
        design.muxes[i].reason = kBudgetReason;
        markTransformDegraded(design, budget);
        continue;
      }
      if (edgeSets[i].empty()) {  // no scheduled control: always feasible
        accept(i);
        continue;
      }
      if (budget != nullptr) budget->chargeProbes();
      oracle->push(edgeSets[i]);
      if (oracle->feasible()) {
        oracle->commit();
        accept(i);
      } else {
        design.muxes[i].reason = slackReason(oracle->firstInfeasible());
        oracle->pop();
      }
    }
  }

  design.frames = oracle->frames();
  for (const auto& [before, after] : committed) work.addControlEdge(before, after);
  return design;
}

PowerManagedDesign runTransform(const Graph& g, int steps,
                                const std::vector<NodeId>& candidates, bool useOracle,
                                std::span<const NodeMask> cones, bool speculate = true) {
  return runTransformWithModel(g, steps, candidates, LatencyModel::unit(), useOracle, cones,
                               speculate);
}

}  // namespace

PowerManagedDesign applyPowerManagement(const Graph& g, int steps, MuxOrdering ordering,
                                        const LatencyModel& model, const RunBudget* budget) {
  g.validate();
  const std::vector<NodeMask> cones = faninConeMasks(g);
  return runTransformWithModel(g, steps, orderMuxes(g, ordering, cones), model,
                               /*useOracle=*/true, cones, /*speculate=*/true, budget);
}

PowerManagedDesign applyPowerManagementReference(const Graph& g, int steps, MuxOrdering ordering,
                                                 const LatencyModel& model) {
  g.validate();
  const std::vector<NodeMask> cones = faninConeMasks(g);
  return runTransformWithModel(g, steps, orderMuxes(g, ordering, cones), model,
                               /*useOracle=*/false, cones);
}

namespace {

// ---------------------------------------------------------------------------
// Exact search (applyPowerManagementOptimal).
//
// The DFS over include/exclude decisions is parallelized at the root: a
// sequential enumeration walks the first K levels on the main oracle and
// records every reachable prefix ("leaf") in DFS visit order; each leaf's
// subtree is then explored independently on its own oracle, and the results
// are merged in visit order with the same strict-improvement rule the
// sequential DFS applies — so the chosen subset is bit-identical (see
// docs/PARALLELISM.md for the argument, including why cross-leaf pruning
// hints are restricted to earlier-in-order leaves).
//
// The infeasibility memo (ROADMAP open item): a probe that fails with at
// most one other mux chosen is a monotone fact — (i) alone infeasible, or
// (i, j) jointly infeasible — valid in every superset context, so sibling
// branches skip the doomed probe entirely. Facts are published with relaxed
// atomic OR; discovering a fact late only costs an extra probe, never a
// different verdict.
// ---------------------------------------------------------------------------

class InfeasMemo {
 public:
  explicit InfeasMemo(std::size_t count)
      : count_(count), words_((count + 63) / 64),
        bits_(std::make_unique<std::atomic<std::uint64_t>[]>(count_ * words_)) {
    for (std::size_t i = 0; i < count_ * words_; ++i)
      bits_[i].store(0, std::memory_order_relaxed);
  }

  /// Row i, bit i: mux i alone infeasible. Row i, bit j: pair (i, j)
  /// jointly infeasible.
  [[nodiscard]] bool blocked(std::size_t i, std::span<const std::uint64_t> chosenMask) const {
    const std::atomic<std::uint64_t>* row = bits_.get() + i * words_;
    if (row[i / 64].load(std::memory_order_relaxed) & (std::uint64_t{1} << (i % 64)))
      return true;
    for (std::size_t w = 0; w < words_; ++w)
      if (row[w].load(std::memory_order_relaxed) & chosenMask[w]) return true;
    return false;
  }

  void learnSelf(std::size_t i) { orBit(i, i); }
  void learnPair(std::size_t i, std::size_t j) {
    orBit(i, j);
    orBit(j, i);
  }

 private:
  void orBit(std::size_t row, std::size_t bit) {
    bits_[row * words_ + bit / 64].fetch_or(std::uint64_t{1} << (bit % 64),
                                            std::memory_order_relaxed);
  }

  std::size_t count_;
  std::size_t words_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> bits_;
};

/// DFS working state over the exact window: the chosen set as both a list
/// (for pair learning) and a bitmask (for memo checks).
struct ChosenSet {
  std::vector<std::size_t> list;
  std::vector<std::uint64_t> mask;

  explicit ChosenSet(std::size_t count) : mask((count + 63) / 64, 0) {}
  void add(std::size_t i) {
    list.push_back(i);
    mask[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  void remove(std::size_t i) {
    list.pop_back();
    mask[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }
};

PowerManagedDesign runOptimal(const Graph& g, int steps, std::size_t maxMuxes, bool useOracle,
                              const RunBudget* budget = nullptr) {
  g.validate();
  // Set once any search phase stops on the budget; the chosen subset at
  // that point is the best COMPLETE assignment found so far (possibly
  // empty), which is always jointly feasible — the final materialization
  // below turns it into a valid, differentially-checkable design.
  std::atomic<bool> stopped{false};

  // Candidates: muxes with gated work, most promising first. The gated sets
  // feed both the savings estimate and the control edges, so compute them
  // once per mux.
  std::vector<NodeId> candidates;
  std::vector<double> savings(g.size(), 0);
  std::vector<std::vector<std::pair<NodeId, NodeId>>> muxEdges;
  const std::vector<NodeMask> cones = faninConeMasks(g);
  for (const NodeId m : g.nodesOfKind(OpKind::Mux)) {
    const GatedSets sets = computeGatedSets(g, m, cones);
    if (!anyScheduled(g, sets.gatedTrue) && !anyScheduled(g, sets.gatedFalse)) continue;
    savings[m] = potentialSavings(g, sets);
    candidates.push_back(m);
    std::vector<std::pair<NodeId, NodeId>> edges;
    const NodeId ctrl = traceSelectProducer(g, m);
    if (isScheduled(g.kind(ctrl))) {  // else always feasible, no edges
      for (const NodeId t : sets.topTrue) edges.emplace_back(ctrl, t);
      for (const NodeId t : sets.topFalse) edges.emplace_back(ctrl, t);
    }
    muxEdges.push_back(std::move(edges));
  }
  {
    std::vector<std::size_t> perm(candidates.size());
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    std::stable_sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
      return savings[candidates[a]] > savings[candidates[b]];
    });
    std::vector<NodeId> sortedCandidates(candidates.size());
    std::vector<std::vector<std::pair<NodeId, NodeId>>> sortedEdges(candidates.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
      sortedCandidates[i] = candidates[perm[i]];
      sortedEdges[i] = std::move(muxEdges[perm[i]]);
    }
    candidates = std::move(sortedCandidates);
    muxEdges = std::move(sortedEdges);
  }

  // Exact search over the head of the candidate list; anything beyond
  // maxMuxes is handled greedily afterwards (documented in the header).
  const std::size_t exactCount = std::min(candidates.size(), maxMuxes);

  std::optional<TimeFrameOracle> oracle;
  if (useOracle) oracle.emplace(g, steps, LatencyModel::unit(), "power-transform");

  // Reference feasibility: rebuild the whole edge set and recompute frames.
  auto feasibleRef = [&](const std::vector<bool>& chosen) {
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (std::size_t i = 0; i < chosen.size(); ++i)
      if (chosen[i])
        edges.insert(edges.end(), muxEdges[i].begin(), muxEdges[i].end());
    return computeTimeFrames(g, steps, edges).feasible(g);
  };

  std::vector<bool> best(candidates.size(), false);
  double bestValue = -1;

  // Suffix sums of savings for pruning.
  std::vector<double> suffix(exactCount + 1, 0);
  for (std::size_t i = exactCount; i-- > 0;)
    suffix[i] = suffix[i + 1] + savings[candidates[i]];

  const std::size_t threads = useOracle ? threadCount() : 1;

  if (!useOracle) {
    std::vector<bool> current(candidates.size(), false);
    auto dfs = [&](auto&& self, std::size_t i, double value) -> void {
      if (value + suffix[i] <= bestValue) return;  // cannot beat the best
      if (i == exactCount) {
        if (value > bestValue) {
          bestValue = value;
          best = current;
        }
        return;
      }
      current[i] = true;
      if (feasibleRef(current)) self(self, i + 1, value + savings[candidates[i]]);
      current[i] = false;
      self(self, i + 1, value);
    };
    dfs(dfs, 0, 0);

    for (std::size_t i = exactCount; i < candidates.size(); ++i) {
      best[i] = true;
      if (!feasibleRef(best)) best[i] = false;
    }
    std::vector<NodeId> chosen;
    for (std::size_t i = 0; i < candidates.size(); ++i)
      if (best[i]) chosen.push_back(candidates[i]);
    return runTransform(g, steps, chosen, useOracle, cones, /*speculate=*/false);
  }

  InfeasMemo memo(exactCount);

  // Sequential-first with a probe-budget escape: most searches are pruned
  // to a few hundred probes and finish here with zero parallel overhead; a
  // search that exhausts the budget is genuinely large, so it restarts on
  // the root-split parallel path below. The budget verdict depends only on
  // the (deterministic) probe count, so the chosen path — and therefore
  // the result — is reproducible at every thread count. Facts the memo
  // learned before the escape stay valid (they are context-free).
  bool escaped = false;
  {
    // Force mode escapes immediately so the differential tests drive the
    // parallel DFS on their small graphs; Auto escapes only where the
    // root-split actually helps (enough physical cores), since a large
    // pruned tree is still better explored in place than fanned out onto
    // two contended cores.
    const bool canEscape =
        threads > 1 && exactCount >= 4 &&
        (speculationMode() == SpeculationMode::Force ||
         (speculationMode() == SpeculationMode::Auto &&
          std::thread::hardware_concurrency() >= 4));
    const std::size_t probeBudget = !canEscape ? std::numeric_limits<std::size_t>::max()
                                   : speculationMode() == SpeculationMode::Force ? 0
                                                                                 : 4096;
    std::size_t probes = 0;
    // Sequential oracle-backed DFS: push the mux's edges on descend, pop on
    // backtrack, so each node of the search tree costs one incremental
    // repair instead of a from-scratch frame computation; the memo skips
    // probes whose failure is already a recorded fact.
    ChosenSet chosen(exactCount);
    std::vector<bool> current(candidates.size(), false);
    auto dfs = [&](auto&& self, std::size_t i, double value) -> void {
      if (escaped) return;
      if (budget != nullptr && budget->exhausted()) {
        stopped.store(true, std::memory_order_relaxed);
        return;  // best-so-far stands
      }
      if (value + suffix[i] <= bestValue) return;
      if (i == exactCount) {
        if (value > bestValue) {
          bestValue = value;
          best = current;
        }
        return;
      }
      if (!memo.blocked(i, chosen.mask)) {
        if (probes++ >= probeBudget) {
          escaped = true;
          return;
        }
        if (budget != nullptr) budget->chargeProbes();
        oracle->push(muxEdges[i], /*probe=*/true);
        if (oracle->feasible()) {
          current[i] = true;
          chosen.add(i);
          self(self, i + 1, value + savings[candidates[i]]);
          chosen.remove(i);
          current[i] = false;
        } else {
          if (chosen.list.empty()) memo.learnSelf(i);
          else if (chosen.list.size() == 1) memo.learnPair(i, chosen.list[0]);
        }
        oracle->pop();
      }
      self(self, i + 1, value);
    };
    dfs(dfs, 0, 0);
    // A budget stop outranks the probe escape: restarting on the parallel
    // path would discard the best-so-far the degradation contract promises.
    if (stopped.load(std::memory_order_relaxed)) escaped = false;
    if (escaped) {
      bestValue = -1;
      best.assign(candidates.size(), false);
    }
  }
  if (escaped) {
    // ---- root-level parallel DFS ----
    // Phase 1: enumerate every reachable prefix of the first K levels in
    // DFS visit order on the main oracle (no bound pruning: at this point
    // the sequential search has no complete assignment either, and a
    // superset of the sequential tree cannot change the first maximum).
    std::size_t splitDepth = 0;
    std::size_t leafTarget = 4 * threads;
    while (splitDepth < exactCount && (std::size_t{1} << splitDepth) < leafTarget &&
           splitDepth < 10)
      ++splitDepth;
    const std::size_t K = splitDepth;

    struct Leaf {
      std::vector<bool> chosenPrefix;  // first K levels
      std::vector<std::size_t> chosenList;
      double value = 0;
    };
    std::vector<Leaf> leaves;
    {
      ChosenSet chosen(exactCount);
      std::vector<bool> prefix(K, false);
      auto enumerate = [&](auto&& self, std::size_t i, double value) -> void {
        if (budget != nullptr && budget->exhausted()) {
          stopped.store(true, std::memory_order_relaxed);
          return;  // the leaves found so far still cover valid prefixes
        }
        if (i == K) {
          leaves.push_back(Leaf{prefix, chosen.list, value});
          return;
        }
        if (!memo.blocked(i, chosen.mask)) {
          if (budget != nullptr) budget->chargeProbes();
          oracle->push(muxEdges[i], /*probe=*/true);
          if (oracle->feasible()) {
            prefix[i] = true;
            chosen.add(i);
            self(self, i + 1, value + savings[candidates[i]]);
            chosen.remove(i);
            prefix[i] = false;
          } else {
            if (chosen.list.empty()) memo.learnSelf(i);
            else if (chosen.list.size() == 1) memo.learnPair(i, chosen.list[0]);
          }
          oracle->pop();
        }
        self(self, i + 1, value);
      };
      enumerate(enumerate, 0, 0);
    }

    // Phase 2: explore every leaf's subtree on its own oracle. Pruning may
    // use the final results of earlier-in-order leaves only (a later
    // leaf's bound could prune this leaf's first maximum, which sequential
    // order would have kept).
    struct LeafResult {
      std::vector<bool> chosen;  // full exact window
      double value = -1;
    };
    const std::size_t leafCount = leaves.size();
    auto published = std::make_unique<std::atomic<double>[]>(leafCount);
    for (std::size_t i = 0; i < leafCount; ++i)
      published[i].store(-1, std::memory_order_relaxed);

    std::vector<LeafResult> results(leafCount);
    globalThreadPool().parallelFor(0, leafCount, 1, [&](std::size_t, std::size_t li) {
      const Leaf& leaf = leaves[li];
      TimeFrameOracle sub(g, steps, LatencyModel::unit(), "power-transform");
      ChosenSet chosen(exactCount);
      for (const std::size_t j : leaf.chosenList) {
        sub.push(muxEdges[j]);  // feasible by construction (phase 1 probed it)
        chosen.add(j);
      }
      auto hint = [&]() {
        double h = -1;
        for (std::size_t jj = 0; jj < li; ++jj)
          h = std::max(h, published[jj].load(std::memory_order_relaxed));
        return h;
      };
      LeafResult& out = results[li];
      std::vector<bool> current(exactCount, false);
      for (std::size_t j = 0; j < K; ++j) current[j] = leaf.chosenPrefix[j];
      auto dfs = [&](auto&& self, std::size_t i, double value) -> void {
        if (budget != nullptr && budget->exhausted()) {
          stopped.store(true, std::memory_order_relaxed);
          return;  // this leaf keeps its best complete assignment so far
        }
        if (value + suffix[i] <= std::max(out.value, hint())) return;
        if (i == exactCount) {
          if (value > out.value) {
            out.value = value;
            out.chosen = current;
          }
          return;
        }
        if (!memo.blocked(i, chosen.mask)) {
          if (budget != nullptr) budget->chargeProbes();
          sub.push(muxEdges[i], /*probe=*/true);
          if (sub.feasible()) {
            current[i] = true;
            chosen.add(i);
            self(self, i + 1, value + savings[candidates[i]]);
            chosen.remove(i);
            current[i] = false;
          } else {
            if (chosen.list.empty()) memo.learnSelf(i);
            else if (chosen.list.size() == 1) memo.learnPair(i, chosen.list[0]);
          }
          sub.pop();
        }
        self(self, i + 1, value);
      };
      dfs(dfs, K, leaf.value);
      published[li].store(out.value, std::memory_order_release);
    });

    // Phase 3: merge in DFS visit order with the sequential strict-> rule.
    for (std::size_t li = 0; li < leafCount; ++li) {
      if (results[li].value > bestValue) {
        bestValue = results[li].value;
        for (std::size_t i = 0; i < exactCount; ++i) best[i] = results[li].chosen[i];
      }
    }
  }

  // Greedy tail beyond the exact window: commit the chosen window on the
  // main oracle (mirrored into the farm's snapshot log when the tail is
  // worth sweeping speculatively), then sweep the remaining candidates.
  std::size_t tailProbeworthy = 0;
  for (std::size_t i = exactCount; i < candidates.size(); ++i)
    if (!muxEdges[i].empty()) ++tailProbeworthy;
  const bool farmTail = farmProbesWorthwhile(g.size()) &&
                        tailProbeworthy >= std::max<std::size_t>(3 * threads, 8);
  std::optional<ProbeFarm> farm;
  if (farmTail) farm.emplace(g, steps, LatencyModel::unit(), "power-transform", budget);
  for (std::size_t i = 0; i < exactCount; ++i)
    if (best[i] && !muxEdges[i].empty()) {
      oracle->push(muxEdges[i]);
      oracle->commit();
      if (farm) farm->commitBatch(*oracle);
    }
  if (exactCount < candidates.size()) {
    if (farm) {
      std::vector<std::vector<Edge>> tailEdges(muxEdges.begin() + exactCount, muxEdges.end());
      SweepHooks hooks;
      hooks.decided = [&](std::size_t i, bool accepted, const std::optional<NodeId>&) {
        best[exactCount + i] = accepted;
      };
      const std::size_t decided =
          speculativeSweep(*oracle, *farm, tailEdges, /*diagnose=*/false, hooks, budget);
      if (decided < tailEdges.size()) stopped.store(true, std::memory_order_relaxed);
    } else {
      for (std::size_t i = exactCount; i < candidates.size(); ++i) {
        if (budget != nullptr && budget->exhausted()) {
          stopped.store(true, std::memory_order_relaxed);
          break;  // remaining tail muxes stay unmanaged
        }
        if (budget != nullptr) budget->chargeProbes();
        oracle->push(muxEdges[i], /*probe=*/true);
        if (oracle->feasible()) {
          best[i] = true;
          oracle->commit();
        } else {
          oracle->pop();
        }
      }
    }
  }

  std::vector<NodeId> chosen;
  for (std::size_t i = 0; i < candidates.size(); ++i)
    if (best[i]) chosen.push_back(candidates[i]);
  // The chosen subset is jointly feasible: replaying it is pure
  // materialization, so the speculative machinery would only add overhead.
  // The replay runs WITHOUT the budget — the committed decisions must be
  // materialized completely for the design to be consistent.
  PowerManagedDesign design = runTransform(g, steps, chosen, useOracle, cones,
                                           /*speculate=*/false);
  if (stopped.load(std::memory_order_relaxed)) {
    design.degraded = true;
    const BudgetKind kind = budget->exhaustedWhy().value_or(BudgetKind::Deadline);
    design.degradeReason = std::string("exact search stopped early (") + budgetKindName(kind) +
                           "); result is the best subset found so far";
    budget->noteDegraded("optimal-search", kind,
                         "best-so-far subset kept; design stays valid");
  }
  return design;
}

}  // namespace

PowerManagedDesign applyPowerManagementOptimal(const Graph& g, int steps, std::size_t maxMuxes,
                                               const RunBudget* budget) {
  return runOptimal(g, steps, maxMuxes, /*useOracle=*/true, budget);
}

PowerManagedDesign applyPowerManagementOptimalReference(const Graph& g, int steps,
                                                        std::size_t maxMuxes) {
  return runOptimal(g, steps, maxMuxes, /*useOracle=*/false);
}

}  // namespace pmsched
