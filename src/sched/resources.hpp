#pragma once
// Resource vectors: how many execution units of each class are available
// (a constraint) or used (a result), plus default per-unit cost weights for
// the "Area Incr." columns of the paper's Table II.

#include <array>
#include <limits>
#include <string>

#include "cdfg/op.hpp"

namespace pmsched {

/// Units per ResourceClass (dense array indexed by unitIndex()).
struct ResourceVector {
  std::array<int, kNumUnitClasses> count{};

  [[nodiscard]] static ResourceVector unlimited() {
    ResourceVector r;
    r.count.fill(std::numeric_limits<int>::max() / 2);
    return r;
  }
  [[nodiscard]] static ResourceVector zero() { return ResourceVector{}; }

  [[nodiscard]] int of(ResourceClass rc) const { return count[unitIndex(rc)]; }
  int& of(ResourceClass rc) { return count[unitIndex(rc)]; }

  /// Component-wise max (used to merge per-step usage into requirements).
  [[nodiscard]] ResourceVector max(const ResourceVector& o) const {
    ResourceVector r;
    for (std::size_t i = 0; i < kNumUnitClasses; ++i)
      r.count[i] = count[i] > o.count[i] ? count[i] : o.count[i];
    return r;
  }

  /// True if every component of *this is <= the corresponding limit.
  [[nodiscard]] bool fitsWithin(const ResourceVector& limit) const {
    for (std::size_t i = 0; i < kNumUnitClasses; ++i)
      if (count[i] > limit.count[i]) return false;
    return true;
  }

  friend bool operator==(const ResourceVector& a, const ResourceVector& b) {
    return a.count == b.count;
  }

  [[nodiscard]] std::string toString() const;
};

/// Relative area cost per unit class at a given datapath width.
///
/// Defaults are NAND2-equivalent gate counts of the generators in
/// src/netlist at 8 bits (see bench_opweights for the measured values);
/// only ratios matter for the paper's "Area Incr." column.
struct UnitCosts {
  std::array<double, kNumUnitClasses> area{};

  [[nodiscard]] static UnitCosts defaults();

  [[nodiscard]] double costOf(const ResourceVector& units) const {
    double total = 0;
    for (std::size_t i = 0; i < kNumUnitClasses; ++i) total += area[i] * units.count[i];
    return total;
  }
};

}  // namespace pmsched
