#include "sched/pipeline.hpp"

#include "sched/shared_gating.hpp"

namespace pmsched {

PipelineResult pipelineSchedule(const Graph& g, const PipelineOptions& opts) {
  if (opts.stages < 1) throw InfeasibleError("pipelineSchedule: stages must be >= 1");
  if (opts.effectiveSteps < 1)
    throw InfeasibleError("pipelineSchedule: effectiveSteps must be >= 1");

  const int latency = opts.stages * opts.effectiveSteps;
  const int ii = opts.stages > 1 ? opts.effectiveSteps : 0;

  PipelineResult result;
  result.latency = latency;

  if (opts.powerManage) {
    result.design = applyPowerManagement(g, latency, opts.ordering);
    if (opts.sharedGating) applySharedGating(result.design);
  } else {
    result.design = unmanagedDesign(g, latency);  // same budget, no gating
  }

  const ResourceVector units = minimizeResources(result.design.graph, latency,
                                                 UnitCosts::defaults(), ii);
  ListScheduleResult sched = listSchedule(result.design.graph, latency, units, ii);
  if (!sched.schedule)
    throw InfeasibleError("pipelineSchedule: final scheduling failed: " + sched.message);
  result.schedule = std::move(*sched.schedule);
  result.units = units;
  return result;
}

}  // namespace pmsched
