#include "sched/schedule.hpp"

#include <algorithm>
#include <sstream>

namespace pmsched {

Schedule::Schedule(const Graph& g, int steps) : steps_(steps), step_(g.size(), 0) {}

std::vector<NodeId> Schedule::nodesInStep(const Graph& g, int step) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < g.size(); ++n)
    if (isScheduled(g.kind(n)) && step_[n] == step) out.push_back(n);
  return out;
}

std::vector<ResourceVector> Schedule::usagePerStep(const Graph& g,
                                                   const LatencyModel& model) const {
  std::vector<ResourceVector> usage(static_cast<std::size_t>(steps_) + 1);
  for (NodeId n = 0; n < g.size(); ++n) {
    if (!isScheduled(g.kind(n)) || step_[n] == 0) continue;
    const int latency = model.latencyOf(g.kind(n));
    for (int t = step_[n]; t < step_[n] + latency && t <= steps_; ++t)
      ++usage.at(static_cast<std::size_t>(t)).of(resourceClassOf(g.kind(n)));
  }
  return usage;
}

ResourceVector Schedule::unitsRequired(const Graph& g, const LatencyModel& model) const {
  ResourceVector req;
  for (const ResourceVector& u : usagePerStep(g, model)) req = req.max(u);
  return req;
}

ResourceVector Schedule::unitsRequiredModulo(const Graph& g, int ii,
                                             const LatencyModel& model) const {
  if (ii <= 0) throw SynthesisError("unitsRequiredModulo: ii must be positive");
  std::vector<ResourceVector> folded(static_cast<std::size_t>(ii));
  const std::vector<ResourceVector> usage = usagePerStep(g, model);
  for (int s = 1; s <= steps_; ++s) {
    ResourceVector& slot = folded[static_cast<std::size_t>((s - 1) % ii)];
    for (std::size_t i = 0; i < kNumUnitClasses; ++i) slot.count[i] += usage[s].count[i];
  }
  ResourceVector req;
  for (const ResourceVector& u : folded) req = req.max(u);
  return req;
}

void Schedule::validate(const Graph& g, const LatencyModel& model) const {
  if (step_.size() != g.size()) throw SynthesisError("schedule/graph size mismatch");

  // Availability time of a node's value given the placement.
  std::vector<int> avail(g.size(), 0);
  for (const NodeId n : g.topoOrder()) {
    int ready = 0;
    for (const NodeId p : g.fanins(n)) ready = std::max(ready, avail[p]);
    for (const NodeId p : g.controlPredecessors(n)) ready = std::max(ready, avail[p]);
    if (isScheduled(g.kind(n))) {
      const int s = step_[n];
      const int latency = model.latencyOf(g.kind(n));
      if (s < 1 || s + latency - 1 > steps_)
        throw SynthesisError("node '" + g.node(n).name + "' placed at invalid step " +
                             std::to_string(s));
      if (s <= ready)
        throw SynthesisError("node '" + g.node(n).name + "' at step " + std::to_string(s) +
                             " violates precedence (inputs ready after step " +
                             std::to_string(ready) + ")");
      avail[n] = s + latency - 1;
    } else {
      avail[n] = ready;
    }
  }
}

std::string Schedule::render(const Graph& g) const {
  std::ostringstream os;
  for (int s = 1; s <= steps_; ++s) {
    os << "step " << s << ":";
    bool any = false;
    for (const NodeId n : nodesInStep(g, s)) {
      os << (any ? ", " : " ") << g.node(n).name << " [" << opName(g.kind(n)) << "]";
      any = true;
    }
    if (!any) os << " (idle)";
    os << '\n';
  }
  return os.str();
}

}  // namespace pmsched
