#pragma once
// Activation conditions: boolean functions over multiplexor select signals.
//
// A gated operation's latch-enable is a function of select values. For the
// paper's per-mux gating the function is a conjunction of literals; the
// Shared extension (see shared_gating.hpp) produces a disjunction of
// conjunctions (DNF): "this unit's result is used by AT LEAST ONE of these
// conditional consumers". Probabilities are computed exactly under the
// paper's model (independent fair selects).

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cdfg/graph.hpp"
#include "support/rational.hpp"

namespace pmsched {

/// "Select signal `select` carries value `value`."
struct GateLiteral {
  NodeId select = kInvalidNode;
  bool value = false;

  friend bool operator==(const GateLiteral&, const GateLiteral&) = default;
  friend auto operator<=>(const GateLiteral&, const GateLiteral&) = default;
};

/// Conjunction of literals. Invariant after normalizeTerm(): sorted by
/// select id, no duplicate selects (a contradictory term is dropped by the
/// caller instead of being represented).
using GateTerm = std::vector<GateLiteral>;

/// Disjunction of conjunctions. Empty DNF = FALSE; a DNF containing an
/// empty term = TRUE.
using GateDnf = std::vector<GateTerm>;

/// Sort + dedupe; returns false (and leaves `term` unspecified) when the
/// term contains contradictory literals.
[[nodiscard]] bool normalizeTerm(GateTerm& term);

/// AND of two normalized terms; false on contradiction.
[[nodiscard]] bool conjoinTerms(const GateTerm& a, const GateTerm& b, GateTerm& out);

/// Normalize a DNF: normalize terms, drop contradictions, remove duplicate
/// and subsumed terms (a term absorbs any superset of itself), and merge
/// complementary pairs. Runs on the interned-term engine (see
/// condition.cpp); bit-identical to simplifyDnfReference.
[[nodiscard]] GateDnf simplifyDnf(GateDnf dnf);

/// Retained from-scratch reference for simplifyDnf (the pre-interning
/// engine); property tests assert the fast engine matches it exactly.
[[nodiscard]] GateDnf simplifyDnfReference(GateDnf dnf);

/// The constant TRUE (one empty term).
[[nodiscard]] GateDnf dnfTrue();
/// True iff the DNF is the constant TRUE (contains an empty term).
[[nodiscard]] bool dnfIsTrue(const GateDnf& dnf);

/// AND of two simplified DNFs (cross product of terms, contradictions
/// dropped, result simplified).
[[nodiscard]] GateDnf andDnf(const GateDnf& a, const GateDnf& b);

/// Exact satisfaction probability under independent fair selects. Runs on
/// the ROBDD engine (see sched/bdd.hpp), so there is no support cap: the
/// cost is the BDD size, not 2^support. Bit-identical to
/// dnfProbabilityReference on every support the enumeration can handle.
[[nodiscard]] Rational dnfProbability(const GateDnf& dnf);

/// Retained enumeration path (counts satisfying assignments, 2^support
/// cost). Throws SynthesisError above `maxSupport` variables; differential
/// tests compare the BDD engine against it.
[[nodiscard]] Rational dnfProbabilityReference(const GateDnf& dnf, unsigned maxSupport = 24);

class BddManager;

/// The calling thread's DNF→probability manager — the instance
/// dnfProbability runs on. Passes that want O(1) condition identity (the
/// controller generator) or hold refs across queries (SharedGatingPass)
/// build on this instance and pin it (BddManager::pin / BddPin) so the
/// periodic trim below cannot invalidate their handles.
[[nodiscard]] BddManager& dnfProbabilityManager();

/// Clear the calling thread's manager once its arena exceeds `cap` nodes —
/// unless pins are live, in which case the trim is deferred (held refs stay
/// valid; BddManager::epoch() only advances on an actual clear). Returns
/// true iff a clear happened. dnfProbability calls this with the production
/// cap (2^20); tests call it with cap 0 to force the lifecycle.
bool trimDnfProbabilityManager(std::size_t cap);

/// All distinct select signals referenced by the DNF.
[[nodiscard]] std::vector<NodeId> dnfSupport(const GateDnf& dnf);

/// Render for diagnostics/doc: e.g. "(t=1 & eq=0) | (start=0)".
[[nodiscard]] std::string dnfToString(const GateDnf& dnf, const Graph& g);

// ---------------------------------------------------------------------------
// Interned DNF engine — the handle-level interface.
//
// simplifyDnf/andDnf above run on a thread-local instance of this engine
// and decode their results back to GateDnf vectors. Passes that make many
// dependent condition queries (shared gating's needOf/condOf recursion)
// instead own an engine and keep interned handles alive across calls,
// paying the encode/decode cost only at their API boundary.
// ---------------------------------------------------------------------------

class DnfEngine {
 public:
  /// Identity of one interned (sorted, deduped, contradiction-free) term.
  /// Content-equal terms share an id, so term equality is id equality.
  using TermId = std::uint32_t;

  /// An interned DNF: term ids into this engine's pool, sorted by term
  /// content and simplified (see simplifyDnf). Empty = FALSE.
  struct Dnf {
    std::vector<TermId> terms;

    [[nodiscard]] bool isFalse() const { return terms.empty(); }
    friend bool operator==(const Dnf&, const Dnf&) = default;
  };

  DnfEngine();
  ~DnfEngine();
  DnfEngine(const DnfEngine&) = delete;
  DnfEngine& operator=(const DnfEngine&) = delete;

  /// Normalize and intern every term (contradictory terms dropped); the
  /// result is NOT simplified — it mirrors the raw GateDnf term for term.
  [[nodiscard]] std::vector<TermId> encode(const GateDnf& dnf);

  /// The simplifyDnf schedule on already-interned terms: sort/dedupe,
  /// merge complementary pairs one at a time, drop subsumed terms, repeat
  /// until stable. Bit-identical to simplifyDnfReference.
  [[nodiscard]] Dnf simplify(std::vector<TermId> terms);

  /// encode + simplify: the interned equivalent of simplifyDnf.
  [[nodiscard]] Dnf intern(const GateDnf& dnf) { return simplify(encode(dnf)); }

  /// AND of two term sets (cross product, contradictions dropped, one
  /// final simplify) — the interned equivalent of andDnf.
  [[nodiscard]] Dnf conjoin(std::span<const TermId> a, std::span<const TermId> b);
  [[nodiscard]] Dnf conjoin(const Dnf& a, const Dnf& b) {
    return conjoin(std::span<const TermId>(a.terms), std::span<const TermId>(b.terms));
  }

  /// OR: concatenate and simplify once, mirroring the reference pass's
  /// "append all consumer terms, then simplifyDnf" schedule.
  [[nodiscard]] Dnf disjoin(const Dnf& a, const Dnf& b);

  [[nodiscard]] Dnf trueDnf();
  [[nodiscard]] bool isTrue(const Dnf& dnf) const;

  /// Distinct selects over all terms, ascending id.
  [[nodiscard]] std::vector<NodeId> support(const Dnf& dnf) const;

  [[nodiscard]] GateDnf decode(const Dnf& dnf) const;

  /// Reset the pool once its arena outgrows a fixed cap. Invalidates every
  /// outstanding TermId — only the thread-local wrappers (which hold no
  /// handles between calls) may use it.
  void maybeTrim();

  /// Literals currently interned in the arena — the growth measure a
  /// RunBudget's DNF term cap is checked against (passes that hold handles
  /// cannot trim, so they stop gating instead; see shared_gating.cpp).
  [[nodiscard]] std::size_t arenaLiterals() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pmsched
