#pragma once
// Activation conditions: boolean functions over multiplexor select signals.
//
// A gated operation's latch-enable is a function of select values. For the
// paper's per-mux gating the function is a conjunction of literals; the
// Shared extension (see shared_gating.hpp) produces a disjunction of
// conjunctions (DNF): "this unit's result is used by AT LEAST ONE of these
// conditional consumers". Probabilities are computed exactly under the
// paper's model (independent fair selects).

#include <string>
#include <vector>

#include "cdfg/graph.hpp"
#include "support/rational.hpp"

namespace pmsched {

/// "Select signal `select` carries value `value`."
struct GateLiteral {
  NodeId select = kInvalidNode;
  bool value = false;

  friend bool operator==(const GateLiteral&, const GateLiteral&) = default;
  friend auto operator<=>(const GateLiteral&, const GateLiteral&) = default;
};

/// Conjunction of literals. Invariant after normalizeTerm(): sorted by
/// select id, no duplicate selects (a contradictory term is dropped by the
/// caller instead of being represented).
using GateTerm = std::vector<GateLiteral>;

/// Disjunction of conjunctions. Empty DNF = FALSE; a DNF containing an
/// empty term = TRUE.
using GateDnf = std::vector<GateTerm>;

/// Sort + dedupe; returns false (and leaves `term` unspecified) when the
/// term contains contradictory literals.
[[nodiscard]] bool normalizeTerm(GateTerm& term);

/// AND of two normalized terms; false on contradiction.
[[nodiscard]] bool conjoinTerms(const GateTerm& a, const GateTerm& b, GateTerm& out);

/// Normalize a DNF: normalize terms, drop contradictions, remove duplicate
/// and subsumed terms (a term absorbs any superset of itself), and merge
/// complementary pairs. Runs on the interned-term engine (see
/// condition.cpp); bit-identical to simplifyDnfReference.
[[nodiscard]] GateDnf simplifyDnf(GateDnf dnf);

/// Retained from-scratch reference for simplifyDnf (the pre-interning
/// engine); property tests assert the fast engine matches it exactly.
[[nodiscard]] GateDnf simplifyDnfReference(GateDnf dnf);

/// The constant TRUE (one empty term).
[[nodiscard]] GateDnf dnfTrue();
/// True iff the DNF is the constant TRUE (contains an empty term).
[[nodiscard]] bool dnfIsTrue(const GateDnf& dnf);

/// AND of two simplified DNFs (cross product of terms, contradictions
/// dropped, result simplified).
[[nodiscard]] GateDnf andDnf(const GateDnf& a, const GateDnf& b);

/// Exact satisfaction probability under independent fair selects.
/// Throws SynthesisError if the support exceeds `maxSupport` variables
/// (enumeration cost 2^support).
[[nodiscard]] Rational dnfProbability(const GateDnf& dnf, unsigned maxSupport = 24);

/// All distinct select signals referenced by the DNF.
[[nodiscard]] std::vector<NodeId> dnfSupport(const GateDnf& dnf);

/// Render for diagnostics/doc: e.g. "(t=1 & eq=0) | (start=0)".
[[nodiscard]] std::string dnfToString(const GateDnf& dnf, const Graph& g);

}  // namespace pmsched
