#include "sched/condition.hpp"

#include <algorithm>

namespace pmsched {

bool normalizeTerm(GateTerm& term) {
  std::sort(term.begin(), term.end());
  for (std::size_t i = 1; i < term.size(); ++i) {
    if (term[i].select == term[i - 1].select) {
      if (term[i].value != term[i - 1].value) return false;  // contradiction
    }
  }
  term.erase(std::unique(term.begin(), term.end()), term.end());
  return true;
}

bool conjoinTerms(const GateTerm& a, const GateTerm& b, GateTerm& out) {
  out = a;
  out.insert(out.end(), b.begin(), b.end());
  return normalizeTerm(out);
}

namespace {

/// True if `a` subsumes `b`: every literal of `a` appears in `b`
/// (a is weaker/more general, so b is redundant in a disjunction).
bool subsumes(const GateTerm& a, const GateTerm& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

namespace {

/// If `a` and `b` differ only in the polarity of one literal, merge them
/// into the common remainder ((x&s=1)|(x&s=0) -> x). Returns true and fills
/// `merged` on success.
bool mergeAdjacent(const GateTerm& a, const GateTerm& b, GateTerm& merged) {
  if (a.size() != b.size()) return false;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].select != b[i].select) return false;
    if (a[i].value != b[i].value) ++mismatches;
  }
  if (mismatches != 1) return false;
  merged.clear();
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].value == b[i].value) merged.push_back(a[i]);
  return true;
}

}  // namespace

GateDnf simplifyDnf(GateDnf dnf) {
  GateDnf normalized;
  for (GateTerm& term : dnf) {
    if (normalizeTerm(term)) normalized.push_back(std::move(term));
  }

  // Alternate complementary-pair merging and subsumption elimination until
  // stable. The result is not a canonical minimum cover, but it removes
  // every single-literal redundancy, which keeps latch-enable supports (and
  // therefore the control edges the scheduler must respect) tight.
  bool changed = true;
  while (changed) {
    changed = false;
    std::sort(normalized.begin(), normalized.end());
    normalized.erase(std::unique(normalized.begin(), normalized.end()), normalized.end());

    // Merge one complementary pair at a time.
    for (std::size_t i = 0; i < normalized.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < normalized.size() && !changed; ++j) {
        GateTerm merged;
        if (mergeAdjacent(normalized[i], normalized[j], merged)) {
          normalized.erase(normalized.begin() + static_cast<std::ptrdiff_t>(j));
          normalized.erase(normalized.begin() + static_cast<std::ptrdiff_t>(i));
          normalized.push_back(std::move(merged));
          changed = true;
        }
      }
    }

    // Drop subsumed terms (terms are unique, so subsumption is strict).
    GateDnf kept;
    for (std::size_t i = 0; i < normalized.size(); ++i) {
      bool redundant = false;
      for (std::size_t j = 0; j < normalized.size() && !redundant; ++j)
        if (i != j && subsumes(normalized[j], normalized[i])) redundant = true;
      if (!redundant) kept.push_back(normalized[i]);
    }
    if (kept.size() != normalized.size()) changed = true;
    normalized = std::move(kept);
  }
  return normalized;
}

GateDnf dnfTrue() { return GateDnf{GateTerm{}}; }

bool dnfIsTrue(const GateDnf& dnf) {
  return std::any_of(dnf.begin(), dnf.end(), [](const GateTerm& t) { return t.empty(); });
}

GateDnf andDnf(const GateDnf& a, const GateDnf& b) {
  GateDnf out;
  for (const GateTerm& ta : a) {
    for (const GateTerm& tb : b) {
      GateTerm merged;
      if (conjoinTerms(ta, tb, merged)) out.push_back(std::move(merged));
    }
  }
  return simplifyDnf(std::move(out));
}

std::vector<NodeId> dnfSupport(const GateDnf& dnf) {
  std::vector<NodeId> support;
  for (const GateTerm& term : dnf)
    for (const GateLiteral& lit : term) support.push_back(lit.select);
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());
  return support;
}

Rational dnfProbability(const GateDnf& dnf, unsigned maxSupport) {
  if (dnf.empty()) return Rational::zero();
  for (const GateTerm& term : dnf)
    if (term.empty()) return Rational::one();

  const std::vector<NodeId> support = dnfSupport(dnf);
  if (support.size() > maxSupport)
    throw SynthesisError("dnfProbability: support of " + std::to_string(support.size()) +
                         " selects exceeds enumeration limit");

  // Exact: count satisfying assignments of the support variables.
  const unsigned k = static_cast<unsigned>(support.size());
  std::uint64_t satisfying = 0;
  for (std::uint64_t assign = 0; assign < (std::uint64_t{1} << k); ++assign) {
    auto valueOf = [&](NodeId sel) {
      const auto idx = static_cast<std::size_t>(
          std::lower_bound(support.begin(), support.end(), sel) - support.begin());
      return ((assign >> idx) & 1U) != 0;
    };
    bool sat = false;
    for (const GateTerm& term : dnf) {
      bool termSat = true;
      for (const GateLiteral& lit : term) {
        if (valueOf(lit.select) != lit.value) {
          termSat = false;
          break;
        }
      }
      if (termSat) {
        sat = true;
        break;
      }
    }
    if (sat) ++satisfying;
  }
  return Rational{static_cast<std::int64_t>(satisfying),
                  static_cast<std::int64_t>(std::uint64_t{1} << k)};
}

std::string dnfToString(const GateDnf& dnf, const Graph& g) {
  if (dnf.empty()) return "false";
  std::string out;
  for (std::size_t t = 0; t < dnf.size(); ++t) {
    if (t != 0) out += " | ";
    if (dnf[t].empty()) {
      out += "true";
      continue;
    }
    out += "(";
    for (std::size_t i = 0; i < dnf[t].size(); ++i) {
      if (i != 0) out += " & ";
      out += g.node(dnf[t][i].select).name;
      out += dnf[t][i].value ? "=1" : "=0";
    }
    out += ")";
  }
  return out;
}

}  // namespace pmsched
