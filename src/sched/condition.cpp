#include "sched/condition.hpp"

#include <algorithm>
#include <unordered_map>

#include "sched/bdd.hpp"
#include "support/fault_injector.hpp"

namespace pmsched {

bool normalizeTerm(GateTerm& term) {
  std::sort(term.begin(), term.end());
  for (std::size_t i = 1; i < term.size(); ++i) {
    if (term[i].select == term[i - 1].select) {
      if (term[i].value != term[i - 1].value) return false;  // contradiction
    }
  }
  term.erase(std::unique(term.begin(), term.end()), term.end());
  return true;
}

bool conjoinTerms(const GateTerm& a, const GateTerm& b, GateTerm& out) {
  out = a;
  out.insert(out.end(), b.begin(), b.end());
  return normalizeTerm(out);
}

// ---------------------------------------------------------------------------
// Interned DNF engine.
//
// The shared-gating pass calls simplifyDnf/andDnf once per consumer of every
// candidate node, so DNF churn dominates its profile. The engine below
// replaces the vector-of-vector-of-struct representation inside those
// operations with interned terms:
//
//  * a literal is one 64-bit word, (select << 1) | value, so a normalized
//    term is a sorted flat array and term comparison is a word-wise
//    lexicographic compare (identical ordering to GateTerm's operator<=>);
//  * terms are interned in a pool (hash table over a shared literal
//    arena): content-equal terms get the same TermId, making term equality
//    O(1) and the complementary-pair merge a hash lookup (flip one
//    literal, probe the pool) instead of an O(terms) scan. The free
//    functions below run on a thread-local DnfEngine; passes that keep
//    handles alive across calls (shared gating) own their engine instance;
//  * every term carries a 64-bit signature (a bloom filter of its literals);
//    "a subsumes b" requires sig(a) ⊆ sig(b), which rejects almost every
//    candidate pair before the literal-level std::includes runs.
//
// The simplification *semantics* deliberately replicate the retained
// reference implementation (simplifyDnfReference below) step for step —
// same one-merge-per-iteration schedule, same subsumption filter — so the
// fast engine is bit-identical to it; property tests assert both structural
// equality and probability preservation on random DNFs.
//
// One genuine behavioural change, applied to BOTH paths: the original
// subsumption filter dropped *both* copies of a duplicated term (each
// subsumes the other), so a complementary-pair merge whose result already
// existed in the cover — e.g. (a) | (a & s) | (a & !s) — collapsed to
// FALSE, silently deactivating a unit that is needed with probability 1/2.
// Equal terms now keep their first copy (tests/test_condition.cpp holds the
// regression).
// ---------------------------------------------------------------------------

namespace {

using Lit = std::uint64_t;

inline Lit encodeLit(const GateLiteral& l) {
  return (static_cast<Lit>(l.select) << 1) | (l.value ? 1U : 0U);
}

inline GateLiteral decodeLit(Lit e) {
  return GateLiteral{static_cast<NodeId>(e >> 1), (e & 1U) != 0};
}

inline std::uint64_t litSigBit(Lit e) {
  return std::uint64_t{1} << ((e * 0x9E3779B97F4A7C15ULL) >> 58);
}

inline std::uint64_t hashLits(std::span<const Lit> lits) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const Lit e : lits) {
    h ^= e;
    h *= 0x100000001B3ULL;
    h ^= h >> 29;
  }
  return h;
}

/// Interning pool: terms live in one flat literal arena.
class TermPool {
 public:
  using Id = std::uint32_t;
  static constexpr Id kNone = static_cast<Id>(-1);

  [[nodiscard]] std::span<const Lit> lits(Id id) const {
    const Ref& r = refs_[id];
    return {arena_.data() + r.offset, r.len};
  }
  [[nodiscard]] std::uint64_t sig(Id id) const { return refs_[id].sig; }
  [[nodiscard]] std::uint32_t size(Id id) const { return refs_[id].len; }

  /// Id of an already-interned term with this content; kNone if absent.
  [[nodiscard]] Id find(std::span<const Lit> sorted) const {
    const auto it = buckets_.find(hashLits(sorted));
    if (it == buckets_.end()) return kNone;
    for (const Id id : it->second)
      if (equals(id, sorted)) return id;
    return kNone;
  }

  /// Intern a normalized (sorted, deduped, contradiction-free) term.
  [[nodiscard]] Id intern(std::span<const Lit> sorted) {
    std::vector<Id>& bucket = buckets_[hashLits(sorted)];
    for (const Id id : bucket)
      if (equals(id, sorted)) return id;
    fault::point("dnf-intern");
    Ref r;
    r.offset = static_cast<std::uint32_t>(arena_.size());
    r.len = static_cast<std::uint32_t>(sorted.size());
    r.sig = 0;
    for (const Lit e : sorted) r.sig |= litSigBit(e);
    arena_.insert(arena_.end(), sorted.begin(), sorted.end());
    const Id id = static_cast<Id>(refs_.size());
    refs_.push_back(r);
    bucket.push_back(id);
    return id;
  }

  /// Lexicographic content order; identical to GateTerm's operator<.
  [[nodiscard]] bool less(Id a, Id b) const {
    const std::span<const Lit> la = lits(a);
    const std::span<const Lit> lb = lits(b);
    return std::lexicographical_compare(la.begin(), la.end(), lb.begin(), lb.end());
  }

  [[nodiscard]] bool lessThanLits(Id a, std::span<const Lit> lb) const {
    const std::span<const Lit> la = lits(a);
    return std::lexicographical_compare(la.begin(), la.end(), lb.begin(), lb.end());
  }

  /// Ids never escape a single public entry point, so the pool may be
  /// reset between them once the arena outgrows its cap.
  void maybeTrim() {
    if (arena_.size() < kArenaCap) return;
    arena_.clear();
    refs_.clear();
    buckets_.clear();
  }

  [[nodiscard]] std::size_t arenaLiterals() const { return arena_.size(); }

 private:
  static constexpr std::size_t kArenaCap = std::size_t{1} << 22;  // 32 MiB of literals

  struct Ref {
    std::uint32_t offset;
    std::uint32_t len;
    std::uint64_t sig;
  };

  [[nodiscard]] bool equals(Id id, std::span<const Lit> sorted) const {
    const std::span<const Lit> l = lits(id);
    return l.size() == sorted.size() && std::equal(l.begin(), l.end(), sorted.begin());
  }

  std::vector<Lit> arena_;
  std::vector<Ref> refs_;
  std::unordered_map<std::uint64_t, std::vector<Id>> buckets_;
};

/// Encode + single-pass normalize (sort, dedupe, drop contradictions) one
/// GateTerm into `buf`; false when the term is contradictory.
bool encodeTerm(const GateTerm& term, std::vector<Lit>& buf) {
  buf.clear();
  buf.reserve(term.size());
  for (const GateLiteral& l : term) buf.push_back(encodeLit(l));
  std::sort(buf.begin(), buf.end());
  std::size_t out = 0;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (out > 0 && (buf[out - 1] >> 1) == (buf[i] >> 1)) {
      if (buf[out - 1] != buf[i]) return false;  // contradiction
      continue;                                  // duplicate
    }
    buf[out++] = buf[i];
  }
  buf.resize(out);
  return true;
}

void sortUniqueIds(const TermPool& pool, std::vector<TermPool::Id>& ids) {
  std::sort(ids.begin(), ids.end(), [&pool](TermPool::Id a, TermPool::Id b) {
    return a != b && pool.less(a, b);
  });
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

/// Merge the first complementary pair in the reference's (i, j) order:
/// smallest i, then smallest j > i, such that term j equals term i with one
/// literal's polarity flipped. Applies the merge (erase both, append the
/// common remainder) and returns true.
bool mergeFirstPair(TermPool& pool, std::vector<TermPool::Id>& ids, std::vector<Lit>& buf) {
  if (ids.size() < 2) return false;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::span<const Lit> lits = pool.lits(ids[i]);
    std::size_t bestJ = ids.size();
    std::size_t flipK = 0;
    for (std::size_t k = 0; k < lits.size(); ++k) {
      buf.assign(lits.begin(), lits.end());
      buf[k] ^= 1U;  // flip the polarity; sortedness is preserved
      const TermPool::Id fid = pool.find(buf);
      if (fid == TermPool::kNone) continue;
      // ids is sorted by content, so the flip's position is a binary search.
      const auto it = std::lower_bound(
          ids.begin(), ids.end(), std::span<const Lit>(buf),
          [&pool](TermPool::Id a, std::span<const Lit> lb) { return pool.lessThanLits(a, lb); });
      if (it == ids.end() || *it != fid) continue;  // interned but not present here
      const std::size_t j = static_cast<std::size_t>(it - ids.begin());
      if (j > i && j < bestJ) {
        bestJ = j;
        flipK = k;
      }
    }
    if (bestJ < ids.size()) {
      buf.assign(lits.begin(), lits.end());
      buf.erase(buf.begin() + static_cast<std::ptrdiff_t>(flipK));
      const TermPool::Id merged = pool.intern(buf);
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(bestJ));
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(i));
      ids.push_back(merged);
      return true;
    }
  }
  return false;
}

/// Drop every term that another term subsumes (is a subset of), keeping the
/// first copy of content-equal duplicates. Signature containment rejects
/// non-subset pairs in O(1) before the literal-level check.
bool dropSubsumed(const TermPool& pool, std::vector<TermPool::Id>& ids) {
  const std::size_t n = ids.size();
  if (n < 2) return false;
  std::vector<TermPool::Id> kept;
  kept.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t sigI = pool.sig(ids[i]);
    bool redundant = false;
    for (std::size_t j = 0; j < n && !redundant; ++j) {
      if (j == i) continue;
      if (ids[j] == ids[i]) {
        redundant = j < i;  // keep the first of equal terms
        continue;
      }
      if (pool.size(ids[j]) >= pool.size(ids[i])) continue;  // strict subset only
      const std::uint64_t sigJ = pool.sig(ids[j]);
      if ((sigJ & ~sigI) != 0) continue;
      const std::span<const Lit> lj = pool.lits(ids[j]);
      const std::span<const Lit> li = pool.lits(ids[i]);
      redundant = std::includes(li.begin(), li.end(), lj.begin(), lj.end());
    }
    if (!redundant) kept.push_back(ids[i]);
  }
  if (kept.size() == n) return false;
  ids = std::move(kept);
  return true;
}

/// The reference loop on interned ids: per iteration sort+dedupe, merge one
/// complementary pair, filter subsumed terms; repeat until stable.
void simplifyIds(TermPool& pool, std::vector<TermPool::Id>& ids, std::vector<Lit>& buf) {
  bool changed = true;
  while (changed) {
    changed = false;
    sortUniqueIds(pool, ids);
    if (mergeFirstPair(pool, ids, buf)) changed = true;
    if (dropSubsumed(pool, ids)) changed = true;
  }
}

GateDnf decodeIds(const TermPool& pool, const std::vector<TermPool::Id>& ids) {
  GateDnf out;
  out.reserve(ids.size());
  for (const TermPool::Id id : ids) {
    GateTerm term;
    const std::span<const Lit> lits = pool.lits(id);
    term.reserve(lits.size());
    for (const Lit e : lits) term.push_back(decodeLit(e));
    out.push_back(std::move(term));
  }
  return out;
}

}  // namespace

struct DnfEngine::Impl {
  TermPool pool;
  std::vector<Lit> buf;
};

DnfEngine::DnfEngine() : impl_(std::make_unique<Impl>()) {}
DnfEngine::~DnfEngine() = default;

std::vector<DnfEngine::TermId> DnfEngine::encode(const GateDnf& dnf) {
  std::vector<TermId> ids;
  ids.reserve(dnf.size());
  for (const GateTerm& term : dnf)
    if (encodeTerm(term, impl_->buf)) ids.push_back(impl_->pool.intern(impl_->buf));
  return ids;
}

DnfEngine::Dnf DnfEngine::simplify(std::vector<TermId> terms) {
  simplifyIds(impl_->pool, terms, impl_->buf);
  return Dnf{std::move(terms)};
}

DnfEngine::Dnf DnfEngine::conjoin(std::span<const TermId> a, std::span<const TermId> b) {
  TermPool& pool = impl_->pool;
  std::vector<Lit>& buf = impl_->buf;

  // Cross product: merge two sorted literal arrays, dropping contradictory
  // combinations (same select, opposite polarity). The outer term is
  // copied out of the arena because intern() below may reallocate it.
  std::vector<TermId> ids;
  ids.reserve(a.size() * b.size());
  std::vector<Lit> ta;
  for (const TermId ia : a) {
    const std::span<const Lit> la = pool.lits(ia);
    ta.assign(la.begin(), la.end());
    for (const TermId ib : b) {
      const std::span<const Lit> tb = pool.lits(ib);
      buf.clear();
      std::size_t i = 0;
      std::size_t j = 0;
      bool ok = true;
      while (i < ta.size() && j < tb.size()) {
        if (ta[i] == tb[j]) {
          buf.push_back(ta[i]);
          ++i;
          ++j;
        } else if ((ta[i] >> 1) == (tb[j] >> 1)) {
          ok = false;  // contradiction
          break;
        } else if (ta[i] < tb[j]) {
          buf.push_back(ta[i++]);
        } else {
          buf.push_back(tb[j++]);
        }
      }
      if (!ok) continue;
      buf.insert(buf.end(), ta.begin() + static_cast<std::ptrdiff_t>(i), ta.end());
      buf.insert(buf.end(), tb.begin() + static_cast<std::ptrdiff_t>(j), tb.end());
      ids.push_back(pool.intern(buf));
    }
  }
  simplifyIds(pool, ids, buf);
  return Dnf{std::move(ids)};
}

DnfEngine::Dnf DnfEngine::disjoin(const Dnf& a, const Dnf& b) {
  std::vector<TermId> ids = a.terms;
  ids.insert(ids.end(), b.terms.begin(), b.terms.end());
  return simplify(std::move(ids));
}

DnfEngine::Dnf DnfEngine::trueDnf() {
  impl_->buf.clear();
  return Dnf{{impl_->pool.intern(impl_->buf)}};
}

bool DnfEngine::isTrue(const Dnf& dnf) const {
  for (const TermId id : dnf.terms)
    if (impl_->pool.size(id) == 0) return true;
  return false;
}

std::vector<NodeId> DnfEngine::support(const Dnf& dnf) const {
  std::vector<NodeId> out;
  for (const TermId id : dnf.terms)
    for (const Lit e : impl_->pool.lits(id)) out.push_back(static_cast<NodeId>(e >> 1));
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

GateDnf DnfEngine::decode(const Dnf& dnf) const { return decodeIds(impl_->pool, dnf.terms); }

void DnfEngine::maybeTrim() { impl_->pool.maybeTrim(); }

std::size_t DnfEngine::arenaLiterals() const { return impl_->pool.arenaLiterals(); }

namespace {

DnfEngine& threadEngine() {
  thread_local DnfEngine engine;
  return engine;
}

}  // namespace

GateDnf simplifyDnf(GateDnf dnf) {
  DnfEngine& eng = threadEngine();
  eng.maybeTrim();
  return eng.decode(eng.simplify(eng.encode(dnf)));
}

GateDnf andDnf(const GateDnf& a, const GateDnf& b) {
  DnfEngine& eng = threadEngine();
  eng.maybeTrim();
  const std::vector<DnfEngine::TermId> ea = eng.encode(a);
  const std::vector<DnfEngine::TermId> eb = eng.encode(b);
  return eng.decode(eng.conjoin(ea, eb));
}

// ---------------------------------------------------------------------------
// Retained reference implementation (the pre-interning engine).
// ---------------------------------------------------------------------------

namespace {

/// True if `a` subsumes `b`: every literal of `a` appears in `b`
/// (a is weaker/more general, so b is redundant in a disjunction).
bool subsumes(const GateTerm& a, const GateTerm& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// If `a` and `b` differ only in the polarity of one literal, merge them
/// into the common remainder ((x&s=1)|(x&s=0) -> x). Returns true and fills
/// `merged` on success.
bool mergeAdjacent(const GateTerm& a, const GateTerm& b, GateTerm& merged) {
  if (a.size() != b.size()) return false;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].select != b[i].select) return false;
    if (a[i].value != b[i].value) ++mismatches;
  }
  if (mismatches != 1) return false;
  merged.clear();
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].value == b[i].value) merged.push_back(a[i]);
  return true;
}

}  // namespace

GateDnf simplifyDnfReference(GateDnf dnf) {
  GateDnf normalized;
  for (GateTerm& term : dnf) {
    if (normalizeTerm(term)) normalized.push_back(std::move(term));
  }

  // Alternate complementary-pair merging and subsumption elimination until
  // stable. The result is not a canonical minimum cover, but it removes
  // every single-literal redundancy, which keeps latch-enable supports (and
  // therefore the control edges the scheduler must respect) tight.
  bool changed = true;
  while (changed) {
    changed = false;
    std::sort(normalized.begin(), normalized.end());
    normalized.erase(std::unique(normalized.begin(), normalized.end()), normalized.end());

    // Merge one complementary pair at a time.
    for (std::size_t i = 0; i < normalized.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < normalized.size() && !changed; ++j) {
        GateTerm merged;
        if (mergeAdjacent(normalized[i], normalized[j], merged)) {
          normalized.erase(normalized.begin() + static_cast<std::ptrdiff_t>(j));
          normalized.erase(normalized.begin() + static_cast<std::ptrdiff_t>(i));
          normalized.push_back(std::move(merged));
          changed = true;
        }
      }
    }

    // Drop subsumed terms, keeping the first copy of equal terms (a merge
    // can recreate a term that is already in the cover; dropping both
    // copies — as the pre-PR-2 filter did — loses the term entirely).
    GateDnf kept;
    for (std::size_t i = 0; i < normalized.size(); ++i) {
      bool redundant = false;
      for (std::size_t j = 0; j < normalized.size() && !redundant; ++j) {
        if (i == j) continue;
        if (normalized[j] == normalized[i]) {
          redundant = j < i;
          continue;
        }
        if (subsumes(normalized[j], normalized[i])) redundant = true;
      }
      if (!redundant) kept.push_back(normalized[i]);
    }
    if (kept.size() != normalized.size()) changed = true;
    normalized = std::move(kept);
  }
  return normalized;
}

GateDnf dnfTrue() { return GateDnf{GateTerm{}}; }

bool dnfIsTrue(const GateDnf& dnf) {
  return std::any_of(dnf.begin(), dnf.end(), [](const GateTerm& t) { return t.empty(); });
}

std::vector<NodeId> dnfSupport(const GateDnf& dnf) {
  std::vector<NodeId> support;
  for (const GateTerm& term : dnf)
    for (const GateLiteral& lit : term) support.push_back(lit.select);
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());
  return support;
}

BddManager& dnfProbabilityManager() {
  // Thread-local manager: hash-consing and the probability cache persist
  // across queries, so a condition seen twice costs two hash lookups.
  thread_local BddManager mgr;
  return mgr;
}

bool trimDnfProbabilityManager(std::size_t cap) {
  BddManager& mgr = dnfProbabilityManager();
  if (mgr.nodeCount() <= cap) return false;
  // Live pins mean someone (SharedGatingPass, the controller generator's
  // degraded-path keys) still holds refs into this manager: defer the trim
  // rather than invalidate them. The holder's unpin lets a later call clear.
  if (mgr.pinned()) return false;
  mgr.clear();
  return true;
}

Rational dnfProbability(const GateDnf& dnf) {
  if (dnf.empty()) return Rational::zero();
  for (const GateTerm& term : dnf)
    if (term.empty()) return Rational::one();
  BddManager& mgr = dnfProbabilityManager();
  trimDnfProbabilityManager(std::size_t{1} << 20);
  return mgr.probability(mgr.fromDnf(dnf));
}

Rational dnfProbabilityReference(const GateDnf& dnf, unsigned maxSupport) {
  if (dnf.empty()) return Rational::zero();
  for (const GateTerm& term : dnf)
    if (term.empty()) return Rational::one();

  const std::vector<NodeId> support = dnfSupport(dnf);
  if (support.size() > maxSupport)
    throw SynthesisError("dnfProbability: support of " + std::to_string(support.size()) +
                         " selects exceeds enumeration limit");

  // Exact: count satisfying assignments of the support variables. Each term
  // is two masks over support indices — "which variables it constrains" and
  // "to what values" — so the inner loop is two ANDs and a compare.
  const unsigned k = static_cast<unsigned>(support.size());
  std::vector<std::pair<std::uint64_t, std::uint64_t>> masks;  // (care, value)
  masks.reserve(dnf.size());
  for (const GateTerm& term : dnf) {
    std::uint64_t care = 0;
    std::uint64_t value = 0;
    bool contradictory = false;
    for (const GateLiteral& lit : term) {
      const auto idx = static_cast<unsigned>(
          std::lower_bound(support.begin(), support.end(), lit.select) - support.begin());
      const std::uint64_t bit = std::uint64_t{1} << idx;
      const std::uint64_t want = lit.value ? bit : 0;
      if ((care & bit) != 0 && (value & bit) != want) {
        contradictory = true;  // same select demanded both ways: never satisfied
        break;
      }
      care |= bit;
      value |= want;
    }
    if (!contradictory) masks.emplace_back(care, value);
  }
  std::uint64_t satisfying = 0;
  for (std::uint64_t assign = 0; assign < (std::uint64_t{1} << k); ++assign) {
    for (const auto& [care, value] : masks) {
      if ((assign & care) == value) {
        ++satisfying;
        break;
      }
    }
  }
  return Rational{static_cast<std::int64_t>(satisfying),
                  static_cast<std::int64_t>(std::uint64_t{1} << k)};
}

std::string dnfToString(const GateDnf& dnf, const Graph& g) {
  if (dnf.empty()) return "false";
  std::string out;
  for (std::size_t t = 0; t < dnf.size(); ++t) {
    if (t != 0) out += " | ";
    if (dnf[t].empty()) {
      out += "true";
      continue;
    }
    out += "(";
    for (std::size_t i = 0; i < dnf[t].size(); ++i) {
      if (i != 0) out += " & ";
      out += g.node(dnf[t][i].select).name;
      out += dnf[t][i].value ? "=1" : "=0";
    }
    out += ")";
  }
  return out;
}

}  // namespace pmsched
