#include "sched/bdd.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>
#include <string_view>

#include "support/diagnostics.hpp"
#include "support/fault_injector.hpp"

namespace pmsched {

namespace {

inline std::uint64_t hashPair(BddRef lo, BddRef hi) {
  std::uint64_t x = (static_cast<std::uint64_t>(lo) << 32) | hi;
  x *= 0x9E3779B97F4A7C15ULL;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 32;
  return x;
}

inline std::uint64_t hashIte(BddRef f, BddRef g, BddRef h) {
  std::uint64_t x = (static_cast<std::uint64_t>(f) << 32) | g;
  x ^= static_cast<std::uint64_t>(h) * 0x9E3779B97F4A7C15ULL;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 32;
  return x;
}

std::atomic<int> g_reorderModeOverride{-1};
std::atomic<std::size_t> g_reorderWatermarkOverride{0};

BddReorderMode envReorderMode() {
  static const BddReorderMode v = [] {
    if (const char* env = std::getenv("PMSCHED_BDD_REORDER")) {
      if (std::string_view(env) == "off") return BddReorderMode::Off;
    }
    return BddReorderMode::Auto;
  }();
  return v;
}

std::size_t envReorderWatermark() {
  static const std::size_t v = [] {
    if (const char* env = std::getenv("PMSCHED_BDD_REORDER_WATERMARK")) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(env, &end, 10);
      if (end != nullptr && *end == '\0' && n > 0) return static_cast<std::size_t>(n);
    }
    return std::size_t{4096};
  }();
  return v;
}

constexpr std::size_t kComputedInitial = std::size_t{1} << 12;
constexpr std::size_t kComputedMax = std::size_t{1} << 20;

/// Sifting aborts a direction once the table has grown past this factor of
/// its size when the variable started moving (Rudell's max-growth guard).
constexpr double kSiftMaxGrowth = 1.2;

}  // namespace

BddReorderMode bddReorderMode() {
  const int o = g_reorderModeOverride.load(std::memory_order_relaxed);
  return o < 0 ? envReorderMode() : static_cast<BddReorderMode>(o);
}

void setBddReorderMode(BddReorderMode mode) {
  g_reorderModeOverride.store(static_cast<int>(mode), std::memory_order_relaxed);
}

std::size_t bddReorderWatermark() {
  const std::size_t o = g_reorderWatermarkOverride.load(std::memory_order_relaxed);
  return o == 0 ? envReorderWatermark() : o;
}

void setBddReorderWatermark(std::size_t nodes) {
  g_reorderWatermarkOverride.store(nodes, std::memory_order_relaxed);
}

BddManager::BddManager() {
  nodes_.push_back(Node{kTermVar, kBddFalse, kBddFalse});  // 0 = FALSE
  nodes_.push_back(Node{kTermVar, kBddTrue, kBddTrue});    // 1 = TRUE
  computed_.assign(kComputedInitial, IteEntry{});
}

void BddManager::clear() {
  nodes_.resize(2);
  levels_.clear();
  std::fill(computed_.begin(), computed_.end(), IteEntry{});
  probCache_.clear();
  approxCache_.clear();
  varOf_.clear();
  order_.clear();
  roots_.clear();
  isRoot_.clear();
  visitStamp_.clear();
  visitTick_ = 0;
  watermark_ = 0;
  ++epoch_;
}

std::size_t BddManager::tableSize() const {
  std::size_t n = 0;
  for (const Level& lv : levels_) n += lv.count;
  return n;
}

void BddManager::growLevel(Level& lv, std::uint32_t var) {
  (void)var;
  const std::size_t cap = lv.slots.empty() ? 16 : lv.slots.size() * 2;
  std::vector<BddRef> old;
  old.swap(lv.slots);
  lv.slots.assign(cap, kBddInvalid);
  const std::size_t mask = cap - 1;
  for (const BddRef r : old) {
    if (r == kBddInvalid) continue;
    std::size_t slot = hashPair(nodes_[r].lo, nodes_[r].hi) & mask;
    while (lv.slots[slot] != kBddInvalid) slot = (slot + 1) & mask;
    lv.slots[slot] = r;
  }
}

void BddManager::insertUnique(BddRef r) {
  const Node& n = nodes_[r];
  Level& lv = levels_[n.var];
  if ((lv.count + 1) * 10 >= lv.slots.size() * 7) growLevel(lv, n.var);
  const std::size_t mask = lv.slots.size() - 1;
  std::size_t slot = hashPair(n.lo, n.hi) & mask;
  while (lv.slots[slot] != kBddInvalid) slot = (slot + 1) & mask;
  lv.slots[slot] = r;
  ++lv.count;
}

BddRef BddManager::makeNode(std::uint32_t var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;  // redundant test: both branches agree
  Level& lv = levels_[var];
  if ((lv.count + 1) * 10 >= lv.slots.size() * 7) growLevel(lv, var);
  const std::size_t mask = lv.slots.size() - 1;
  std::size_t slot = hashPair(lo, hi) & mask;
  while (lv.slots[slot] != kBddInvalid) {
    const Node& n = nodes_[lv.slots[slot]];
    if (n.lo == lo && n.hi == hi) return lv.slots[slot];
    slot = (slot + 1) & mask;
  }
  fault::point("bdd-node");
  if (nodeLimit_ != 0 && nodes_.size() >= nodeLimit_)
    throw BudgetExceededError(BudgetKind::BddNodes,
                              "BDD arena at its node cap (" + std::to_string(nodes_.size()) +
                                  " nodes)",
                              nodes_.size());
  const BddRef r = static_cast<BddRef>(nodes_.size());
  nodes_.push_back(Node{var, lo, hi});
  lv.slots[slot] = r;
  ++lv.count;
  return r;
}

BddRef BddManager::makeNodeRaw(std::uint32_t var, BddRef lo, BddRef hi) {
  // Swap-internal twin of makeNode: the cap was pre-checked for the whole
  // level swap and the fault point sits at the swap boundary, so this
  // never throws and swaps stay atomic.
  if (lo == hi) return lo;
  Level& lv = levels_[var];
  if ((lv.count + 1) * 10 >= lv.slots.size() * 7) growLevel(lv, var);
  const std::size_t mask = lv.slots.size() - 1;
  std::size_t slot = hashPair(lo, hi) & mask;
  while (lv.slots[slot] != kBddInvalid) {
    const Node& n = nodes_[lv.slots[slot]];
    if (n.lo == lo && n.hi == hi) return lv.slots[slot];
    slot = (slot + 1) & mask;
  }
  const BddRef r = static_cast<BddRef>(nodes_.size());
  nodes_.push_back(Node{var, lo, hi});
  lv.slots[slot] = r;
  ++lv.count;
  return r;
}

void BddManager::noteRoot(BddRef r) {
  if (r <= kBddTrue) return;
  if (isRoot_.size() < nodes_.size()) isRoot_.resize(nodes_.size(), 0);
  if (isRoot_[r] != 0) return;
  isRoot_[r] = 1;
  roots_.push_back(r);
}

std::uint32_t BddManager::varIndex(NodeId select) {
  const auto [it, inserted] = varOf_.try_emplace(select, static_cast<std::uint32_t>(order_.size()));
  if (inserted) {
    order_.push_back(select);
    levels_.emplace_back();
  }
  return it->second;
}

BddRef BddManager::literal(NodeId select, bool value) {
  const std::uint32_t v = varIndex(select);
  const BddRef r = value ? makeNode(v, kBddFalse, kBddTrue) : makeNode(v, kBddTrue, kBddFalse);
  noteRoot(r);
  return r;
}

BddRef BddManager::iteRec(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kBddTrue) return g;
  if (f == kBddFalse) return h;
  if (g == h) return g;
  if (g == kBddTrue && h == kBddFalse) return f;

  {
    const IteEntry& e = computed_[hashIte(f, g, h) & (computed_.size() - 1)];
    if (e.f == f && e.g == g && e.h == h) return e.r;
  }
  // A direct-mapped cache has one pathological failure mode: two live
  // subproblems sharing a slot evict each other and recursion re-expands
  // exponentially (XOR chains hit this). Growing under miss pressure
  // re-hashes the keys apart and restores near-linear cost; dropping the
  // old entries is deterministic (recomputation re-finds existing nodes).
  if (++computedMisses_ >= computed_.size() * 4 && computed_.size() < kComputedMax) {
    computed_.assign(computed_.size() * 2, IteEntry{});
    computedMisses_ = 0;
  }

  const std::uint32_t v = std::min({nodes_[f].var, nodes_[g].var, nodes_[h].var});
  const BddRef lo = iteRec(cofactor(f, v, false), cofactor(g, v, false), cofactor(h, v, false));
  const BddRef hi = iteRec(cofactor(f, v, true), cofactor(g, v, true), cofactor(h, v, true));
  const BddRef r = makeNode(v, lo, hi);
  // Re-probe: the table may have grown during the recursion.
  computed_[hashIte(f, g, h) & (computed_.size() - 1)] = IteEntry{f, g, h, r};
  return r;
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Scale the direct-mapped computed table with the arena (dropping the old
  // entries is fine: recomputation only re-finds existing nodes).
  if (computed_.size() < kComputedMax && nodes_.size() > computed_.size())
    computed_.assign(std::max(kComputedInitial, std::bit_ceil(nodes_.size())), IteEntry{});
  const BddRef r = iteRec(f, g, h);
  noteRoot(r);
  return r;
}

BddRef BddManager::fromDnf(const GateDnf& dnf) {
  maybeReorder();
  if (computed_.size() < kComputedMax && nodes_.size() > computed_.size())
    computed_.assign(std::max(kComputedInitial, std::bit_ceil(nodes_.size())), IteEntry{});

  // Register the support ascending so the variable order (and therefore
  // the node ids a given formula produces) is deterministic.
  for (const NodeId s : dnfSupport(dnf)) (void)varIndex(s);

  BddRef acc = kBddFalse;
  std::vector<std::pair<std::uint32_t, bool>> lits;
  for (const GateTerm& term : dnf) {
    lits.clear();
    lits.reserve(term.size());
    for (const GateLiteral& l : term) lits.emplace_back(varIndex(l.select), l.value);
    std::sort(lits.begin(), lits.end());
    bool contradictory = false;
    std::size_t out = 0;
    for (std::size_t i = 0; i < lits.size(); ++i) {
      if (out > 0 && lits[out - 1].first == lits[i].first) {
        if (lits[out - 1].second != lits[i].second) {
          contradictory = true;  // same select demanded both ways
          break;
        }
        continue;  // duplicate literal
      }
      lits[out++] = lits[i];
    }
    if (contradictory) continue;
    lits.resize(out);
    // A conjunction over distinct variables is a single chain; building it
    // bottom-up (deepest variable first) needs no ite at all.
    BddRef t = kBddTrue;
    for (auto it = lits.rbegin(); it != lits.rend(); ++it)
      t = it->second ? makeNode(it->first, kBddFalse, t) : makeNode(it->first, t, kBddFalse);
    acc = iteRec(acc, kBddTrue, t);  // acc OR t
    if (acc == kBddTrue) break;      // tautology: no later term can change it
  }
  noteRoot(acc);
  return acc;
}

template <class Done>
void BddManager::collectBottomUp(std::span<const BddRef> roots, Done done, std::vector<BddRef>& out) {
  if (visitStamp_.size() < nodes_.size()) visitStamp_.resize(nodes_.size(), 0);
  if (visitTick_ > std::numeric_limits<std::uint32_t>::max() - 4) {
    std::fill(visitStamp_.begin(), visitStamp_.end(), 0);
    visitTick_ = 0;
  }
  const std::uint32_t tExpand = visitTick_ + 1;
  const std::uint32_t tEmit = visitTick_ + 2;
  visitTick_ += 2;

  std::vector<BddRef> stack;
  for (const BddRef root : roots)
    if (root > kBddTrue && visitStamp_[root] < tExpand && !done(root)) stack.push_back(root);
  while (!stack.empty()) {
    const BddRef r = stack.back();
    if (visitStamp_[r] == tEmit) {  // duplicate stack entry, already emitted
      stack.pop_back();
      continue;
    }
    if (visitStamp_[r] == tExpand) {  // children done: emit
      visitStamp_[r] = tEmit;
      out.push_back(r);
      stack.pop_back();
      continue;
    }
    visitStamp_[r] = tExpand;
    const Node& n = nodes_[r];
    for (const BddRef c : {n.lo, n.hi})
      if (c > kBddTrue && visitStamp_[c] < tExpand && !done(c)) stack.push_back(c);
  }
}

BddManager::Dyadic BddManager::probabilityWide(BddRef f) {
  if (f == kBddFalse) return Dyadic{0, 0};
  if (f == kBddTrue) return Dyadic{1, 0};
  if (probCache_.size() < nodes_.size()) probCache_.resize(nodes_.size());
  if (probCache_[f].exp != kDyadicUnset) return probCache_[f];

  std::vector<BddRef> topo;
  const BddRef roots[1] = {f};
  collectBottomUp(std::span<const BddRef>(roots),
                  [&](BddRef r) { return probCache_[r].exp != kDyadicUnset; }, topo);
  const auto value = [&](BddRef r) -> Dyadic {
    if (r == kBddFalse) return Dyadic{0, 0};
    if (r == kBddTrue) return Dyadic{1, 0};
    return probCache_[r];
  };
  // Each reachable node is computed once, children before parents.
  // Variables absent between a node and its child need no correction:
  // they contribute the same factor to both branches.
  for (const BddRef r : topo) {
    const Node& n = nodes_[r];
    const Dyadic lo = value(n.lo);
    const Dyadic hi = value(n.hi);
    // (lo + hi) / 2 in exact dyadic arithmetic: align, add, halve, reduce.
    const unsigned e = std::max(lo.exp, hi.exp);
    if (e >= 126)
      throw BudgetExceededError(
          BudgetKind::RationalWidth,
          "BddManager::probability: dyadic accumulation needs more than 126 "
          "fractional bits — condition support is too wide for exact arithmetic",
          e);
    Dyadic x{(lo.num << (e - lo.exp)) + (hi.num << (e - hi.exp)), e + 1};
    while (x.num != 0 && (x.num & 1) == 0) {
      x.num >>= 1;
      --x.exp;
    }
    if (x.num == 0) x.exp = 0;
    probCache_[r] = x;
  }
  return probCache_[f];
}

Rational BddManager::probability(BddRef f) {
  // Either failure mode — a mid-accumulation 126-bit dyadic or a reduced
  // denominator past Rational's 62 bits — is the same family of error to a
  // caller; rethrow both with the SUPPORT WIDTH as the detail, which is the
  // quantity the degradation path reports in its error bar diagnostics.
  Dyadic d{0, 0};
  try {
    d = probabilityWide(f);
  } catch (const BudgetExceededError& e) {
    throw BudgetExceededError(BudgetKind::RationalWidth,
                              std::string(e.what()) + " (support width " +
                                  std::to_string(support(f).size()) + ")",
                              support(f).size());
  }
  // Reduced: num odd (or zero), so exp is the true denominator width.
  if (d.exp > 62)
    throw BudgetExceededError(
        BudgetKind::RationalWidth,
        "BddManager::probability: exact value has denominator 2^" + std::to_string(d.exp) +
            ", beyond the 62-bit Rational limit (support width " +
            std::to_string(support(f).size()) + ")",
        support(f).size());
  return Rational{static_cast<std::int64_t>(d.num), std::int64_t{1} << d.exp};
}

BddManager::ApproxProbability BddManager::probabilityApprox(BddRef f) {
  if (f == kBddFalse) return {0.0, 0.0};
  if (f == kBddTrue) return {1.0, 0.0};
  if (approxCache_.size() < nodes_.size()) approxCache_.resize(nodes_.size());
  if (approxCache_[f].error > 0) return approxCache_[f];

  std::vector<BddRef> topo;
  const BddRef roots[1] = {f};
  collectBottomUp(std::span<const BddRef>(roots),
                  [&](BddRef r) { return approxCache_[r].error > 0; }, topo);
  const auto value = [&](BddRef r) -> ApproxProbability {
    if (r == kBddFalse) return {0.0, 0.0};
    if (r == kBddTrue) return {1.0, 0.0};
    return approxCache_[r];
  };
  // (lo + hi) / 2: the halving is exact in binary floating point; the
  // addition rounds once, bounded by half an ulp of a value <= 2, i.e.
  // 2^-53 absolute. Child errors average, so the bound only grows along
  // the (node-count-bounded) additions, never exponentially. Every cached
  // entry has error >= 2^-53, so error == 0 doubles as the empty mark.
  for (const BddRef r : topo) {
    const Node& n = nodes_[r];
    const ApproxProbability lo = value(n.lo);
    const ApproxProbability hi = value(n.hi);
    approxCache_[r] = ApproxProbability{(lo.value + hi.value) / 2.0,
                                        (lo.error + hi.error) / 2.0 + 0x1p-53};
  }
  return approxCache_[f];
}

void BddManager::registerVariables(std::span<const NodeId> selects) {
  for (const NodeId s : selects) (void)varIndex(s);
}

BddRef BddManager::importFrom(const BddManager& src, BddRef f, std::vector<BddRef>& memo) {
  if (f <= kBddTrue) return f;
  // Map src's variables into this manager (registering unseen selects at
  // the end). The cheap structural copy is valid iff src levels land on
  // strictly increasing levels here — true for the pre-registered shared
  // order of the partitioned analysis, false as soon as either side
  // reordered; then the ite-based transfer (correct under any order pair)
  // takes over.
  bool monotone = true;
  std::uint32_t prev = 0;
  bool first = true;
  for (const NodeId s : src.order_) {
    const std::uint32_t d = varIndex(s);
    if (!first && d <= prev) monotone = false;
    prev = d;
    first = false;
  }
  const BddRef r = monotone ? importStructural(src, f, memo) : importByIte(src, f, memo);
  noteRoot(r);
  return r;
}

BddRef BddManager::importStructural(const BddManager& src, BddRef f, std::vector<BddRef>& memo) {
  if (f <= kBddTrue) return f;
  if (memo[f] != kBddInvalid) return memo[f];
  const Node& n = src.nodes_[f];
  const BddRef lo = importStructural(src, n.lo, memo);
  const BddRef hi = importStructural(src, n.hi, memo);
  const BddRef r = makeNode(varOf_.at(src.order_[n.var]), lo, hi);
  memo[f] = r;
  return r;
}

BddRef BddManager::importByIte(const BddManager& src, BddRef f, std::vector<BddRef>& memo) {
  if (f <= kBddTrue) return f;
  if (memo[f] != kBddInvalid) return memo[f];
  const Node& n = src.nodes_[f];
  const BddRef lo = importByIte(src, n.lo, memo);
  const BddRef hi = importByIte(src, n.hi, memo);
  const BddRef x = makeNode(varOf_.at(src.order_[n.var]), kBddFalse, kBddTrue);
  const BddRef r = iteRec(x, hi, lo);
  memo[f] = r;
  return r;
}

std::vector<NodeId> BddManager::support(BddRef f) const {
  std::vector<NodeId> out;
  std::vector<BddRef> stack{f};
  std::vector<bool> seen(nodes_.size(), false);
  while (!stack.empty()) {
    const BddRef r = stack.back();
    stack.pop_back();
    if (r <= kBddTrue || seen[r]) continue;
    seen[r] = true;
    out.push_back(order_[nodes_[r].var]);
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void BddManager::swapLevels(std::uint32_t i) {
  Level& up = levels_[i];
  Level& dn = levels_[i + 1];

  // Snapshot both levels (sorted for a deterministic rebuild) and plan the
  // rewrites BEFORE touching anything, so a cap trip or injected fault
  // leaves the manager untouched (swaps are atomic).
  std::vector<BddRef> uList;
  uList.reserve(up.count);
  for (const BddRef r : up.slots)
    if (r != kBddInvalid) uList.push_back(r);
  std::sort(uList.begin(), uList.end());
  std::vector<BddRef> vList;
  vList.reserve(dn.count);
  for (const BddRef r : dn.slots)
    if (r != kBddInvalid) vList.push_back(r);
  std::sort(vList.begin(), vList.end());

  const std::uint32_t vi = i + 1;
  struct Rewrite {
    BddRef u, f00, f01, f10, f11;
  };
  std::vector<Rewrite> rewrites;
  std::vector<BddRef> keep;
  for (const BddRef u : uList) {
    const Node n = nodes_[u];
    if (nodes_[n.lo].var != vi && nodes_[n.hi].var != vi) {
      keep.push_back(u);
      continue;
    }
    rewrites.push_back(Rewrite{u, cofactor(n.lo, vi, false), cofactor(n.lo, vi, true),
                               cofactor(n.hi, vi, false), cofactor(n.hi, vi, true)});
  }

  fault::point("bdd-sift");
  if (nodeLimit_ != 0 && nodes_.size() + 2 * rewrites.size() > nodeLimit_)
    throw BudgetExceededError(BudgetKind::BddNodes,
                              "BDD sift: swapping levels " + std::to_string(i) + "/" +
                                  std::to_string(i + 1) + " could exceed the node cap (" +
                                  std::to_string(nodes_.size()) + " nodes)",
                              nodes_.size());

  std::swap(order_[i], order_[i + 1]);
  varOf_[order_[i]] = i;
  varOf_[order_[i + 1]] = i + 1;
  std::fill(up.slots.begin(), up.slots.end(), kBddInvalid);
  up.count = 0;
  std::fill(dn.slots.begin(), dn.slots.end(), kBddInvalid);
  dn.count = 0;

  // Former level-i+1 nodes keep their function; only the position label
  // moves. Former level-i nodes that never touch level i+1 likewise.
  for (const BddRef v : vList) {
    nodes_[v].var = i;
    insertUnique(v);
  }
  for (const BddRef u : keep) {
    nodes_[u].var = i + 1;
    insertUnique(u);
  }
  // Nodes that do touch the swapped variable are rewritten IN PLACE around
  // the new top variable, so their refs keep denoting the same function:
  //   f = A ? f1 : f0  becomes  f = B ? (A ? f11 : f01) : (A ? f10 : f00).
  // The rewritten triple cannot collide with any relabeled node (distinct
  // functions had distinct nodes before the swap, and the swap preserves
  // both), so insertion is always fresh.
  for (const Rewrite& w : rewrites) {
    const BddRef newLo = makeNodeRaw(i + 1, w.f00, w.f10);
    const BddRef newHi = makeNodeRaw(i + 1, w.f01, w.f11);
    nodes_[w.u] = Node{i, newLo, newHi};
    insertUnique(w.u);
  }
}

void BddManager::sift() {
  if (order_.size() < 2) return;
  ++reorders_;

  // The approx cache is node-structure dependent (its error bars track the
  // DAG shape); the computed table may hold entries whose operands or
  // result are garbage about to be dropped from the unique tables. Flush
  // both. The exact probability cache survives: a live ref keeps its
  // function, so its dyadic stays correct under any order.
  std::fill(computed_.begin(), computed_.end(), IteEntry{});
  approxCache_.clear();

  // Liveness = reachable from any ref a public call returned. Everything
  // else (intermediate ite results nobody can hold, and the rewrite helpers
  // swapLevels mints) is dropped from the unique tables so the size metric
  // the sift optimizes reflects reality; the arena itself keeps the slots,
  // refs are never reused. Re-marking is repeated after every variable's
  // journey — each journey strands helper nodes, and letting them compound
  // across variables inflates every later journey's baseline (and its
  // growth cap with it). Safe mid-pass because computed_ is already flushed
  // and no ite runs during the sift, so a dropped ref can never resurface.
  std::vector<std::vector<BddRef>> byLevel(order_.size());
  const auto remark = [&] {
    std::vector<BddRef> live;
    collectBottomUp(std::span<const BddRef>(roots_), [](BddRef) { return false; }, live);
    for (auto& lvNodes : byLevel) lvNodes.clear();
    for (const BddRef r : live) byLevel[nodes_[r].var].push_back(r);
    for (auto& lvNodes : byLevel) std::sort(lvNodes.begin(), lvNodes.end());
    for (std::uint32_t v = 0; v < levels_.size(); ++v) {
      Level& lv = levels_[v];
      std::fill(lv.slots.begin(), lv.slots.end(), kBddInvalid);
      lv.count = 0;
      for (const BddRef r : byLevel[v]) insertUnique(r);
    }
  };
  remark();

  // Sift the most populated levels first: that is where reordering pays.
  std::vector<std::uint32_t> positions(order_.size());
  std::iota(positions.begin(), positions.end(), 0u);
  std::stable_sort(positions.begin(), positions.end(), [&](std::uint32_t a, std::uint32_t b) {
    return byLevel[a].size() > byLevel[b].size();
  });
  std::vector<NodeId> bySelect;
  bySelect.reserve(positions.size());
  for (const std::uint32_t p : positions) bySelect.push_back(order_[p]);

  const std::uint32_t top = 0;
  const std::uint32_t bottom = static_cast<std::uint32_t>(order_.size()) - 1;
  // Swaps never shrink the arena (dead slots are kept so refs stay stable),
  // so a pass that keeps exploring bad orders grows it monotonically. Budget
  // the whole pass at ~3x the starting arena and stop early rather than let
  // a single reorder balloon memory.
  const std::size_t arenaBudget = nodes_.size() * 3 + 4096;
  try {
    for (const NodeId sel : bySelect) {
      if (nodes_.size() > arenaBudget) break;
      const std::size_t startSize = tableSize();
      const std::size_t growthCap =
          static_cast<std::size_t>(static_cast<double>(startSize) * kSiftMaxGrowth) + 2;
      std::size_t best = startSize;
      std::uint32_t bestPos = varOf_.at(sel);
      // Down to the bottom...
      for (std::uint32_t p = varOf_.at(sel); p < bottom; ++p) {
        swapLevels(p);
        const std::size_t s = tableSize();
        if (s < best) {
          best = s;
          bestPos = p + 1;
        }
        if (s > growthCap) break;
      }
      // ...back up to the top...
      for (std::uint32_t p = varOf_.at(sel); p > top; --p) {
        swapLevels(p - 1);
        const std::size_t s = tableSize();
        if (s < best) {
          best = s;
          bestPos = p - 1;
        }
        if (s > growthCap) break;
      }
      // ...and park at the best position seen.
      while (varOf_.at(sel) < bestPos) swapLevels(varOf_.at(sel));
      while (varOf_.at(sel) > bestPos) swapLevels(varOf_.at(sel) - 1);
      remark();
    }
  } catch (const BudgetExceededError&) {
    // A cap trip between (atomic) swaps: stop where we are. The manager is
    // canonical for whatever order it reached; callers lose nothing but
    // the rest of the optimization.
    ++reorderAborts_;
  } catch (const FaultInjectedError&) {
    ++reorderAborts_;
  }
}

void BddManager::maybeReorder() {
  if (bddReorderMode() == BddReorderMode::Off) return;
  if (watermark_ == 0) watermark_ = bddReorderWatermark();
  if (nodes_.size() < watermark_) return;
  sift();
  // Rearm: the arena only grows (sifting drags garbage), so the next
  // trigger fires at twice whatever we ended at.
  watermark_ = std::max(bddReorderWatermark(), nodes_.size() * 2);
}

}  // namespace pmsched
