#include "sched/bdd.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "support/diagnostics.hpp"
#include "support/fault_injector.hpp"

namespace pmsched {

namespace {

inline std::uint64_t hashTriple(std::uint32_t var, BddRef lo, BddRef hi) {
  std::uint64_t x = (static_cast<std::uint64_t>(lo) << 32) | hi;
  x ^= static_cast<std::uint64_t>(var) * 0x9E3779B97F4A7C15ULL;
  x *= 0x100000001B3ULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

BddManager::BddManager() {
  nodes_.push_back(Node{kTermVar, kBddFalse, kBddFalse});  // 0 = FALSE
  nodes_.push_back(Node{kTermVar, kBddTrue, kBddTrue});    // 1 = TRUE
}

void BddManager::clear() {
  nodes_.resize(2);
  unique_.clear();
  computed_.clear();
  probCache_.clear();
  approxCache_.clear();
  varOf_.clear();
  order_.clear();
}

BddRef BddManager::makeNode(std::uint32_t var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;  // redundant test: both branches agree
  std::vector<BddRef>& bucket = unique_[hashTriple(var, lo, hi)];
  for (const BddRef r : bucket) {
    const Node& n = nodes_[r];
    if (n.var == var && n.lo == lo && n.hi == hi) return r;
  }
  fault::point("bdd-node");
  if (nodeLimit_ != 0 && nodes_.size() >= nodeLimit_)
    throw BudgetExceededError(BudgetKind::BddNodes,
                              "BDD arena at its node cap (" + std::to_string(nodes_.size()) +
                                  " nodes)",
                              nodes_.size());
  const BddRef r = static_cast<BddRef>(nodes_.size());
  nodes_.push_back(Node{var, lo, hi});
  bucket.push_back(r);
  return r;
}

std::uint32_t BddManager::varIndex(NodeId select) {
  const auto [it, inserted] = varOf_.try_emplace(select, static_cast<std::uint32_t>(order_.size()));
  if (inserted) order_.push_back(select);
  return it->second;
}

BddRef BddManager::literal(NodeId select, bool value) {
  const std::uint32_t v = varIndex(select);
  return value ? makeNode(v, kBddFalse, kBddTrue) : makeNode(v, kBddTrue, kBddFalse);
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kBddTrue) return g;
  if (f == kBddFalse) return h;
  if (g == h) return g;
  if (g == kBddTrue && h == kBddFalse) return f;

  const IteKey key{f, g, h};
  if (const auto it = computed_.find(key); it != computed_.end()) return it->second;

  const std::uint32_t v = std::min({nodes_[f].var, nodes_[g].var, nodes_[h].var});
  const BddRef lo = ite(cofactor(f, v, false), cofactor(g, v, false), cofactor(h, v, false));
  const BddRef hi = ite(cofactor(f, v, true), cofactor(g, v, true), cofactor(h, v, true));
  const BddRef r = makeNode(v, lo, hi);
  computed_.emplace(key, r);
  return r;
}

BddRef BddManager::fromDnf(const GateDnf& dnf) {
  // Register the support ascending so the variable order (and therefore
  // the node ids a given formula produces) is deterministic.
  for (const NodeId s : dnfSupport(dnf)) (void)varIndex(s);

  BddRef acc = kBddFalse;
  std::vector<std::pair<std::uint32_t, bool>> lits;
  for (const GateTerm& term : dnf) {
    lits.clear();
    lits.reserve(term.size());
    for (const GateLiteral& l : term) lits.emplace_back(varIndex(l.select), l.value);
    std::sort(lits.begin(), lits.end());
    bool contradictory = false;
    std::size_t out = 0;
    for (std::size_t i = 0; i < lits.size(); ++i) {
      if (out > 0 && lits[out - 1].first == lits[i].first) {
        if (lits[out - 1].second != lits[i].second) {
          contradictory = true;  // same select demanded both ways
          break;
        }
        continue;  // duplicate literal
      }
      lits[out++] = lits[i];
    }
    if (contradictory) continue;
    lits.resize(out);
    // A conjunction over distinct variables is a single chain; building it
    // bottom-up (highest variable first) needs no ite at all.
    BddRef t = kBddTrue;
    for (auto it = lits.rbegin(); it != lits.rend(); ++it)
      t = it->second ? makeNode(it->first, kBddFalse, t) : makeNode(it->first, t, kBddFalse);
    acc = bddOr(acc, t);
    if (acc == kBddTrue) break;  // tautology: no later term can change it
  }
  return acc;
}

BddManager::Dyadic BddManager::probabilityWide(BddRef f) {
  if (f == kBddFalse) return Dyadic{0, 0};
  if (f == kBddTrue) return Dyadic{1, 0};
  if (const auto it = probCache_.find(f); it != probCache_.end()) return it->second;
  const Node& n = nodes_[f];
  // Each reachable node is visited once; the recursion depth is bounded by
  // the support size. Variables absent between a node and its child need
  // no correction: they contribute the same factor to both branches.
  const Dyadic lo = probabilityWide(n.lo);
  const Dyadic hi = probabilityWide(n.hi);
  // (lo + hi) / 2 in exact dyadic arithmetic: align, add, halve, reduce.
  const unsigned e = std::max(lo.exp, hi.exp);
  if (e >= 126)
    throw BudgetExceededError(
        BudgetKind::RationalWidth,
        "BddManager::probability: dyadic accumulation needs more than 126 "
        "fractional bits — condition support is too wide for exact arithmetic",
        e);
  Dyadic r{(lo.num << (e - lo.exp)) + (hi.num << (e - hi.exp)), e + 1};
  while (r.num != 0 && (r.num & 1) == 0) {
    r.num >>= 1;
    --r.exp;
  }
  if (r.num == 0) r.exp = 0;
  probCache_.emplace(f, r);
  return r;
}

Rational BddManager::probability(BddRef f) {
  // Either failure mode — a mid-recursion 126-bit dyadic or a reduced
  // denominator past Rational's 62 bits — is the same family of error to a
  // caller; rethrow both with the SUPPORT WIDTH as the detail, which is the
  // quantity the degradation path reports in its error bar diagnostics.
  Dyadic d;
  try {
    d = probabilityWide(f);
  } catch (const BudgetExceededError& e) {
    throw BudgetExceededError(BudgetKind::RationalWidth,
                              std::string(e.what()) + " (support width " +
                                  std::to_string(support(f).size()) + ")",
                              support(f).size());
  }
  // Reduced: num odd (or zero), so exp is the true denominator width.
  if (d.exp > 62)
    throw BudgetExceededError(
        BudgetKind::RationalWidth,
        "BddManager::probability: exact value has denominator 2^" + std::to_string(d.exp) +
            ", beyond the 62-bit Rational limit (support width " +
            std::to_string(support(f).size()) + ")",
        support(f).size());
  return Rational{static_cast<std::int64_t>(d.num), std::int64_t{1} << d.exp};
}

BddManager::ApproxProbability BddManager::probabilityApprox(BddRef f) {
  if (f == kBddFalse) return {0.0, 0.0};
  if (f == kBddTrue) return {1.0, 0.0};
  if (const auto it = approxCache_.find(f); it != approxCache_.end()) return it->second;
  const Node& n = nodes_[f];
  const ApproxProbability lo = probabilityApprox(n.lo);
  const ApproxProbability hi = probabilityApprox(n.hi);
  // (lo + hi) / 2: the halving is exact in binary floating point; the
  // addition rounds once, bounded by half an ulp of a value <= 2, i.e.
  // 2^-53 absolute. Child errors average, so the bound only grows along
  // the (node-count-bounded) additions, never exponentially.
  const ApproxProbability r{(lo.value + hi.value) / 2.0,
                            (lo.error + hi.error) / 2.0 + 0x1p-53};
  approxCache_.emplace(f, r);
  return r;
}

void BddManager::registerVariables(std::span<const NodeId> selects) {
  for (const NodeId s : selects) (void)varIndex(s);
}

BddRef BddManager::importFrom(const BddManager& src, BddRef f, std::vector<BddRef>& memo) {
  if (f <= kBddTrue) return f;
  if (memo[f] != kBddInvalid) return memo[f];
  const Node& n = src.nodes_[f];
  const BddRef lo = importFrom(src, n.lo, memo);
  const BddRef hi = importFrom(src, n.hi, memo);
  const BddRef r = makeNode(varIndex(src.order_[n.var]), lo, hi);
  memo[f] = r;
  return r;
}

std::vector<NodeId> BddManager::support(BddRef f) const {
  std::vector<NodeId> out;
  std::vector<BddRef> stack{f};
  std::vector<bool> seen(nodes_.size(), false);
  while (!stack.empty()) {
    const BddRef r = stack.back();
    stack.pop_back();
    if (r <= kBddTrue || seen[r]) continue;
    seen[r] = true;
    out.push_back(order_[nodes_[r].var]);
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace pmsched
