#pragma once
// A complete schedule: the assignment of every scheduled node to a control
// step, plus derived resource usage. Produced by the list/force-directed
// schedulers, validated against the graph (including control edges).

#include <string>
#include <vector>

#include "cdfg/graph.hpp"
#include "sched/latency.hpp"
#include "sched/resources.hpp"

namespace pmsched {

class Schedule {
 public:
  Schedule() = default;
  Schedule(const Graph& g, int steps);

  [[nodiscard]] int steps() const { return steps_; }

  /// Control step (1-based) of a scheduled node.
  [[nodiscard]] int stepOf(NodeId n) const { return step_.at(n); }
  void place(NodeId n, int step) { step_.at(n) = step; }
  [[nodiscard]] bool isPlaced(NodeId n) const { return step_.at(n) != 0; }

  /// Nodes placed in a given step, ascending by id.
  [[nodiscard]] std::vector<NodeId> nodesInStep(const Graph& g, int step) const;

  /// Per-class concurrent usage of each step. Multi-cycle operations
  /// occupy their unit for `model.latencyOf(...)` consecutive steps.
  [[nodiscard]] std::vector<ResourceVector> usagePerStep(
      const Graph& g, const LatencyModel& model = LatencyModel::unit()) const;

  /// Component-wise max over steps: the units this schedule requires.
  [[nodiscard]] ResourceVector unitsRequired(
      const Graph& g, const LatencyModel& model = LatencyModel::unit()) const;

  /// Units required when execution overlaps modulo `ii` steps (pipelining
  /// with initiation interval `ii`): usage folds across stages.
  [[nodiscard]] ResourceVector unitsRequiredModulo(
      const Graph& g, int ii, const LatencyModel& model = LatencyModel::unit()) const;

  /// Throws SynthesisError if any precedence (data or control) edge is
  /// violated, a node is unplaced, a step is out of [1, steps], or a
  /// multi-cycle operation overruns the budget.
  void validate(const Graph& g, const LatencyModel& model = LatencyModel::unit()) const;

  /// Human-readable step table (for examples and figure benches).
  [[nodiscard]] std::string render(const Graph& g) const;

 private:
  int steps_ = 0;
  std::vector<int> step_;  // 0 = unplaced / transparent
};

}  // namespace pmsched
