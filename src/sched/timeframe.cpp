#include "sched/timeframe.hpp"

#include <algorithm>

namespace pmsched {

bool TimeFrames::feasible(const Graph& g) const { return !firstInfeasible(g).has_value(); }

std::optional<NodeId> TimeFrames::firstInfeasible(const Graph& g) const {
  for (NodeId n = 0; n < g.size(); ++n)
    if (isScheduled(g.kind(n)) && asap[n] > alap[n]) return n;
  return std::nullopt;
}

TimeFrames computeTimeFrames(const Graph& g, int steps,
                             const std::vector<std::pair<NodeId, NodeId>>& extraEdges,
                             const LatencyModel& model) {
  if (steps <= 0) throw InfeasibleError("computeTimeFrames: steps must be positive");

  // Extra predecessor/successor adjacency, indexed by node.
  std::vector<std::vector<NodeId>> xSucc(g.size());
  std::vector<std::vector<NodeId>> xPred(g.size());
  for (const auto& [before, after] : extraEdges) {
    xSucc[before].push_back(after);
    xPred[after].push_back(before);
  }

  // The propagation order must respect the extra edges too, otherwise a
  // tentative constraint from a later-ordered node would read a stale time.
  std::vector<NodeId> order;
  if (extraEdges.empty()) {
    order = g.topoOrder();
  } else {
    std::vector<int> indegree(g.size(), 0);
    for (NodeId i = 0; i < g.size(); ++i)
      indegree[i] = static_cast<int>(g.fanins(i).size() + g.controlPredecessors(i).size() +
                                     xPred[i].size());
    std::vector<NodeId> ready;
    for (NodeId i = 0; i < g.size(); ++i)
      if (indegree[i] == 0) ready.push_back(i);
    order.reserve(g.size());
    while (!ready.empty()) {
      const NodeId n = ready.back();
      ready.pop_back();
      order.push_back(n);
      auto relax = [&](NodeId s) {
        if (--indegree[s] == 0) ready.push_back(s);
      };
      for (const NodeId s : g.fanouts(n)) relax(s);
      for (const NodeId s : g.controlSuccessors(n)) relax(s);
      for (const NodeId s : xSucc[n]) relax(s);
    }
    if (order.size() != g.size())
      throw SynthesisError("computeTimeFrames: extra edges create a cycle");
  }

  TimeFrames tf;
  tf.steps = steps;
  tf.asap.assign(g.size(), 0);
  tf.alap.assign(g.size(), steps);

  // Forward: asap[n] = earliest start step (scheduled) or the time its
  // value is available (transparent). An operation with latency L started
  // at step s finishes at s+L-1; its value is ready after that step.
  for (const NodeId n : order) {
    int avail = 0;
    auto relax = [&](NodeId p) {
      const int ready = isScheduled(g.kind(p))
                            ? tf.asap[p] + model.latencyOf(g.kind(p)) - 1
                            : tf.asap[p];
      avail = std::max(avail, ready);
    };
    for (const NodeId p : g.fanins(n)) relax(p);
    for (const NodeId p : g.controlPredecessors(n)) relax(p);
    for (const NodeId p : xPred[n]) relax(p);
    tf.asap[n] = isScheduled(g.kind(n)) ? avail + 1 : avail;
  }

  // Backward: alap[n] = latest start step such that n finishes before every
  // consumer starts (transparent consumers relay a ready-time deadline).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    const bool schedN = isScheduled(g.kind(n));
    const int latencyN = schedN ? model.latencyOf(g.kind(n)) : 0;
    int latest = schedN ? steps - latencyN + 1 : steps;
    auto relax = [&](NodeId s) {
      if (isScheduled(g.kind(s))) {
        // n must be ready (asap-style) before consumer s starts:
        // scheduled n: start(n) + latencyN - 1 <= start(s) - 1;
        // transparent n: its value (a ready time) must exist a step before
        // s starts, i.e. by start(s) - 1 — not start(s), which would let a
        // producer behind a wire start in its consumer's step.
        latest = std::min(latest, schedN ? tf.alap[s] - latencyN : tf.alap[s] - 1);
      } else {
        // Transparent consumer relays a "value ready by" deadline.
        latest = std::min(latest, tf.alap[s] - (latencyN > 0 ? latencyN - 1 : 0));
      }
    };
    for (const NodeId s : g.fanouts(n)) relax(s);
    for (const NodeId s : g.controlSuccessors(n)) relax(s);
    for (const NodeId s : xSucc[n]) relax(s);
    tf.alap[n] = latest;
  }

  return tf;
}

}  // namespace pmsched
