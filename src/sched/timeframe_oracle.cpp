#include "sched/timeframe_oracle.hpp"

#include <algorithm>
#include <chrono>
#include <random>

#include "support/fault_injector.hpp"

namespace pmsched {

TimeFrameOracle::TimeFrameOracle(const Graph& g, int steps, const LatencyModel& model,
                                 std::string errorContext)
    : g_(g),
      steps_(steps),
      model_(model),
      ctx_(std::move(errorContext)),
      fanoutCsr_(g.fanoutCsr()),
      ctrlSuccCsr_(g.controlSuccCsr()),
      ctrlPredCsr_(g.controlPredCsr()) {
  if (steps <= 0) throw InfeasibleError(ctx_ + ": steps must be positive");

  const std::size_t n = g.size();
  sched_.resize(n);
  lat_.resize(n);
  latestStart_.resize(n);
  bound_ = 1;
  for (NodeId v = 0; v < n; ++v) {
    sched_[v] = isScheduled(g.kind(v));
    lat_[v] = sched_[v] ? model_.latencyOf(g.kind(v)) : 0;
    latestStart_[v] = sched_[v] ? steps - lat_[v] + 1 : steps;
    bound_ += lat_[v] + 1;  // loose DAG bound on any reachable asap value
  }

  topoPos_.resize(n);
  const std::span<const NodeId> order = g.topoOrderView();
  for (std::size_t i = 0; i < order.size(); ++i)
    topoPos_[order[i]] = static_cast<std::uint32_t>(i);

  asap_.assign(n, 0);
  alap_.assign(n, steps);
  pin_.assign(n, 0);
  xSucc_.resize(n);
  xPred_.resize(n);
  changedFlag_.assign(n, 0);
  inQueue_.assign(n, 0);

  // Initial frames: the exact recurrences of computeTimeFrames() over the
  // cached topological order (no pins, no extra edges yet).
  for (const NodeId v : order) asap_[v] = recomputeAsap(v);
  for (auto it = order.rbegin(); it != order.rend(); ++it) alap_[*it] = recomputeAlap(*it);
  for (NodeId v = 0; v < n; ++v)
    if (sched_[v] && asap_[v] > latestStart_[v]) ++overEnd_;

  initial_.asap = asap_;
  initial_.alap = alap_;
  initial_.overEnd = overEnd_;
}

TimeFrameOracle::FrameSnapshot TimeFrameOracle::snapshot() const {
  if (depth_ != 0) throw SynthesisError(ctx_ + ": snapshot with open tentative batches");
  FrameSnapshot s;
  s.asap = asap_;
  s.alap = alap_;
  s.overEnd = overEnd_;
  for (NodeId v = 0; v < g_.size(); ++v)
    for (const NodeId t : xSucc_[v]) s.extraEdges.emplace_back(v, t);
  return s;
}

void TimeFrameOracle::restore(const FrameSnapshot& s) {
  if (depth_ != 0) throw SynthesisError(ctx_ + ": restore with open tentative batches");
  beginChangeEpoch();
  asap_ = s.asap;
  alap_ = s.alap;
  overEnd_ = s.overEnd;
  for (std::vector<NodeId>& row : xSucc_) row.clear();
  for (std::vector<NodeId>& row : xPred_) row.clear();
  for (const Edge& e : s.extraEdges) {
    xSucc_[e.first].push_back(e.second);
    xPred_[e.second].push_back(e.first);
  }
}

int TimeFrameOracle::recomputeAsap(NodeId v) const {
  int avail = 0;
  auto relax = [&](NodeId p) {
    const int ready = sched_[p] ? asap_[p] + lat_[p] - 1 : asap_[p];
    if (ready > avail) avail = ready;
  };
  for (const NodeId p : g_.fanins(v)) relax(p);
  for (const NodeId p : ctrlPredCsr_.row(v)) relax(p);
  for (const NodeId p : xPred_[v]) relax(p);
  int value = sched_[v] ? avail + 1 : avail;
  if (pin_[v] != 0) {
    if (pin_[v] < value)
      throw InfeasibleError(ctx_ + ": pin below ASAP for '" + g_.node(v).name + "'");
    value = pin_[v];
  }
  return value;
}

int TimeFrameOracle::recomputeAlap(NodeId v) const {
  const bool schedV = sched_[v] != 0;
  const int latV = lat_[v];
  int latest = latestStart_[v];
  auto relax = [&](NodeId s) {
    if (sched_[s]) {
      // v must be ready before the scheduled consumer starts; a transparent
      // v relays a "value ready by" deadline one step before the start.
      latest = std::min(latest, schedV ? alap_[s] - latV : alap_[s] - 1);
    } else {
      latest = std::min(latest, alap_[s] - (latV > 0 ? latV - 1 : 0));
    }
  };
  for (const NodeId s : fanoutCsr_.row(v)) relax(s);
  for (const NodeId s : ctrlSuccCsr_.row(v)) relax(s);
  for (const NodeId s : xSucc_[v]) relax(s);
  int value = latest;
  if (pin_[v] != 0) {
    if (pin_[v] > value)
      throw InfeasibleError(ctx_ + ": pin above ALAP for '" + g_.node(v).name + "'");
    value = pin_[v];
  }
  return value;
}

void TimeFrameOracle::setAsap(NodeId v, int value) {
  if (sched_[v]) {
    const bool was = asap_[v] > latestStart_[v];
    const bool now = value > latestStart_[v];
    if (was != now) overEnd_ += now ? 1 : -1;
  }
  asap_[v] = value;
}

void TimeFrameOracle::setAlap(NodeId v, int value) { alap_[v] = value; }

void TimeFrameOracle::beginChangeEpoch() {
  for (const NodeId v : changed_) changedFlag_[v] = 0;
  changed_.clear();
}

void TimeFrameOracle::markChanged(NodeId v) {
  if (!changedFlag_[v]) {
    changedFlag_[v] = 1;
    changed_.push_back(v);
  }
}

TimeFrameOracle::RepairResult TimeFrameOracle::repairForward(std::span<const NodeId> seeds,
                                                             Batch* undo,
                                                             bool abortOnInfeasible) {
  // Adding precedence or pinning only raises ASAPs; a topo-ordered worklist
  // recomputes each affected node from final predecessor values. Batch
  // edges may run against the cached topo order (the source can sit later
  // in it than the target); the monotone recompute-and-re-enqueue loop
  // stays correct, it merely revisits such nodes.
  for (const NodeId v : seeds) enqueue(fwdQueue_, v);
  auto drain = [&] {
    while (!fwdQueue_.empty()) {
      inQueue_[fwdQueue_.top().second] = 0;
      fwdQueue_.pop();
    }
  };
  while (!fwdQueue_.empty()) {
    const NodeId v = fwdQueue_.top().second;
    fwdQueue_.pop();
    inQueue_[v] = 0;
    const int value = recomputeAsap(v);
    if (value == asap_[v]) continue;
    if (value > bound_) {
      // Values beyond the DAG bound mean the batch closed a cycle through a
      // scheduled node (the only kind the transform consumers can create).
      drain();
      return RepairResult::Cycle;
    }
    if (undo) undo->asapUndo.emplace_back(v, asap_[v]);
    setAsap(v, value);
    markChanged(v);
    if (abortOnInfeasible && overEnd_ > 0) {
      drain();
      return RepairResult::Infeasible;
    }
    for (const NodeId s : fanoutCsr_.row(v)) enqueue(fwdQueue_, s);
    for (const NodeId s : ctrlSuccCsr_.row(v)) enqueue(fwdQueue_, s);
    for (const NodeId s : xSucc_[v]) enqueue(fwdQueue_, s);
  }
  return RepairResult::Ok;
}

void TimeFrameOracle::repairBackward(std::span<const NodeId> seeds, Batch* undo) {
  // Only lowers ALAPs; reverse topological order.
  for (const NodeId v : seeds) enqueue(bwdQueue_, v);
  while (!bwdQueue_.empty()) {
    const NodeId v = bwdQueue_.top().second;
    bwdQueue_.pop();
    inQueue_[v] = 0;
    const int value = recomputeAlap(v);
    if (value == alap_[v]) continue;
    if (undo) undo->alapUndo.emplace_back(v, alap_[v]);
    setAlap(v, value);
    markChanged(v);
    for (const NodeId p : g_.fanins(v)) enqueue(bwdQueue_, p);
    for (const NodeId p : ctrlPredCsr_.row(v)) enqueue(bwdQueue_, p);
    for (const NodeId p : xPred_[v]) enqueue(bwdQueue_, p);
  }
}

void TimeFrameOracle::ensureAlap() {
  if (depth_ == 0) return;  // committed state is flushed at commit(); pins are eager
  Batch& top = batchPool_[depth_ - 1];
  if (top.poisoned)
    throw SynthesisError(ctx_ + ": ALAP values are unavailable on an aborted probe batch");
  if (top.bwdDone) return;
  // Flush the deferred backward repair for EVERY open batch's edges, but
  // log every change into the TOP batch's undo only. The fixed point is
  // computed over the full live edge set, so a value tightened "because of"
  // an inner batch cannot be attributed to that batch alone — logging into
  // an older batch would leave stale ALAPs behind when the newer batch is
  // popped. With top-only logging, pop(top) reverts the whole flush and
  // the lower batches deliberately keep bwdDone == false: a later read
  // re-flushes their seeds against the then-current edge set (a cheap
  // no-op when nothing changed), which is always attribution-correct.
  seedsB_.clear();
  for (std::size_t i = 0; i < depth_; ++i)
    for (const Edge& e : batchPool_[i].edges) seedsB_.push_back(e.first);
  repairBackward(seedsB_, &top);
  top.bwdDone = true;
}

void TimeFrameOracle::undoBatch(Batch& batch) {
  // Restoring in reverse replays the undo log back to the previous fixed
  // point exactly (the last restore of a node writes its oldest value).
  for (auto it = batch.asapUndo.rbegin(); it != batch.asapUndo.rend(); ++it) {
    setAsap(it->first, it->second);
    markChanged(it->first);
  }
  for (auto it = batch.alapUndo.rbegin(); it != batch.alapUndo.rend(); ++it) {
    setAlap(it->first, it->second);
    markChanged(it->first);
  }
  for (auto it = batch.edges.rbegin(); it != batch.edges.rend(); ++it) {
    xSucc_[it->first].pop_back();
    xPred_[it->second].pop_back();
  }
}

void TimeFrameOracle::push(std::span<const Edge> edges, bool probe) {
  if (depth_ > 0 && batchPool_[depth_ - 1].poisoned)
    throw SynthesisError(ctx_ + ": push on top of an aborted probe batch");
  beginChangeEpoch();
  if (depth_ == batchPool_.size()) batchPool_.emplace_back();
  Batch& batch = batchPool_[depth_++];
  batch.edges.assign(edges.begin(), edges.end());
  batch.asapUndo.clear();
  batch.alapUndo.clear();
  batch.bwdDone = false;
  batch.poisoned = false;
  seedsF_.clear();
  for (const auto& [before, after] : batch.edges) {
    xSucc_[before].push_back(after);
    xPred_[after].push_back(before);
    seedsF_.push_back(after);
  }
  switch (repairForward(seedsF_, &batch, probe)) {
    case RepairResult::Ok:
      break;
    case RepairResult::Infeasible:
      batch.poisoned = true;  // feasible() is false; only pop() may follow
      break;
    case RepairResult::Cycle:
      undoBatch(batch);
      --depth_;
      throw SynthesisError(ctx_ + ": extra edges create a cycle");
  }
}

void TimeFrameOracle::pop() {
  if (depth_ == 0) throw SynthesisError(ctx_ + ": pop without a matching push");
  beginChangeEpoch();
  undoBatch(batchPool_[--depth_]);
}

void TimeFrameOracle::commit() {
  if (depth_ != 1)
    throw SynthesisError(ctx_ + ": commit requires exactly one open batch");
  if (batchPool_[0].poisoned)
    throw SynthesisError(ctx_ + ": commit of an aborted probe batch");
  // Before any state changes: an injected fault here leaves the batch open
  // and the committed state untouched (the caller's pop still works).
  fault::point("oracle-commit");
  // Flush the lazy backward repair so committed state is always ALAP-exact
  // (commits are rare — accepted candidates only).
  ensureAlap();
  depth_ = 0;  // the edges stay live in xSucc_/xPred_
}

void TimeFrameOracle::pin(NodeId n, int step) {
  if (depth_ != 0) throw SynthesisError(ctx_ + ": pin with open tentative batches");
  if (!sched_[n]) throw SynthesisError(ctx_ + ": pin of a non-scheduled node");
  beginChangeEpoch();
  pin_[n] = step;
  const NodeId seeds[1] = {n};
  (void)repairForward(std::span<const NodeId>(seeds), nullptr, false);  // pins cannot cycle
  repairBackward(std::span<const NodeId>(seeds), nullptr);
}

std::optional<NodeId> TimeFrameOracle::firstInfeasible() {
  ensureAlap();
  for (NodeId v = 0; v < g_.size(); ++v)
    if (sched_[v] && asap_[v] > alap_[v]) return v;
  return std::nullopt;
}

TimeFrames TimeFrameOracle::frames() {
  ensureAlap();
  TimeFrames tf;
  tf.steps = steps_;
  tf.asap = asap_;
  tf.alap = alap_;
  return tf;
}

std::vector<std::vector<TimeFrameOracle::Edge>> seededProbeBatches(const Graph& g, int count,
                                                                   int edgesPerBatch) {
  std::vector<std::vector<TimeFrameOracle::Edge>> batches(std::max(count, 0));
  const std::vector<NodeId> ops = g.scheduledNodes();
  if (ops.size() < 2) return batches;

  // Edges oriented along the cached topological order, so every batch is
  // acyclic by construction (same recipe as the farm stress tests). Fixed
  // seed: the batches are reproducible per graph.
  std::vector<std::uint32_t> pos(g.size());
  const std::span<const NodeId> order = g.topoOrderView();
  for (std::uint32_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  std::mt19937_64 rng(1996);
  std::uniform_int_distribution<std::size_t> pick(0, ops.size() - 1);
  for (std::vector<TimeFrameOracle::Edge>& batch : batches) {
    for (int k = 0; k < edgesPerBatch; ++k) {
      NodeId a = ops[pick(rng)];
      NodeId b = ops[pick(rng)];
      if (a == b) continue;
      if (pos[a] > pos[b]) std::swap(a, b);
      batch.emplace_back(a, b);
    }
  }
  return batches;
}

double measureMedianProbeNs(const Graph& g, int steps, int rounds) {
  using Clock = std::chrono::steady_clock;
  const std::vector<std::vector<TimeFrameOracle::Edge>> batches = seededProbeBatches(g, rounds);

  TimeFrameOracle oracle(g, steps);
  std::vector<double> samples;
  samples.reserve(batches.size());
  for (const std::vector<TimeFrameOracle::Edge>& batch : batches) {
    if (batch.empty()) continue;  // degenerate graph or unlucky draws
    const Clock::time_point t0 = Clock::now();
    oracle.push(batch);  // full repair: what a diagnose probe costs
    (void)oracle.feasible();
    oracle.pop();
    samples.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count()));
  }
  if (samples.empty()) return 1e3;  // nominal probe: nothing measurable
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
  return std::max(1.0, samples[samples.size() / 2]);
}

}  // namespace pmsched
