#include "sched/shared_gating.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "sched/bdd.hpp"
#include "sched/condition.hpp"
#include "sched/probe_farm.hpp"
#include "sched/timeframe_oracle.hpp"
#include "support/fault_injector.hpp"
#include "support/run_budget.hpp"
#include "support/thread_pool.hpp"

namespace pmsched {

namespace {

// ---------------------------------------------------------------------------
// Oracle-backed pass on interned DNF handles.
//
// needOf/condOf recurse over the consumer DAG and call the DNF engine once
// per consumer of every candidate, so the pass owns a DnfEngine and keeps
// the interned handles in its memo tables: terms are encoded exactly once
// (at the design_.gates / design_.sharedGating boundary) and every
// conjoin/disjoin below runs directly on term ids. The reference pass
// (further down) keeps the original decode/encode-per-call flow; the
// differential tests assert bit-identical gating decisions.
//
// Parallel path (threadCount() > 1): candidates are processed in WAVES. The
// main thread evaluates the DNF part of a wave's candidates under the
// assumption that none of them is accepted (every memo write is logged),
// staging each candidate's oracle probe onto a ProbeFarm wave as its edges
// become known and ringing the pool ONCE per wave (the PR-5 batched
// handoff); verdicts are then consumed strictly in order. The
// assumption only breaks on an acceptance — which changes condOf() of the
// accepted node and thereby the needs of its producers (all LATER in the
// sweep, since consumers are processed before producers) — so the wave is
// cut at the winner: memo entries written by later candidates' evaluations
// are rolled back and the remainder re-enters the next wave against the
// updated state. A candidate's final decision is therefore always derived
// from exactly the committed decisions of its turn, which is what makes
// the pass bit-identical to the sequential sweep at any thread count (and
// to the retained from-scratch reference).
// ---------------------------------------------------------------------------

class SharedGatingPass {
 public:
  explicit SharedGatingPass(PowerManagedDesign& design, const RunBudget* budget = nullptr)
      : design_(design),
        g_(design.graph),
        oracle_(g_, design.steps, design.latency, "shared-gating"),
        budget_(budget) {
    cond_.resize(g_.size());
    need_.resize(g_.size());
  }

  /// Probeworthy candidates the oracle rejected for schedulability. Wave
  /// rejections are only counted when their verdict is consumed (candidates
  /// past a wave cut re-enter the next wave unconsumed), so the count is
  /// identical to the sequential sweep's at any thread count.
  [[nodiscard]] int slackRejects() const { return slackRejects_; }

  int run() {
    // Copy the order up front; control-edge insertion happens after the
    // sweep (the oracle snapshots the graph, so mutation is deferred).
    const std::vector<NodeId> order = g_.topoOrder();
    std::vector<NodeId> cands;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId n = *it;
      if (!isScheduled(g_.kind(n))) continue;
      if (!design_.gates[n].empty() || !design_.sharedGating[n].empty()) continue;
      cands.push_back(n);
    }
    // gates/sharedGating of candidates only change when a candidate is
    // accepted (each node is visited once), so the up-front filter sees
    // exactly what the per-turn filter would. Waves engage under the same
    // probe-cost policy as the transform sweep (see farmProbesWorthwhile).
    const bool waves =
        threadCount() > 1 && cands.size() >= 8 && farmProbesWorthwhile(g_.size());
    const int gated = waves ? runWaves(cands) : runSequential(cands);
    // The oracle's committed fixed point equals the from-scratch frames of
    // the augmented graph; snapshot it before mutating.
    design_.frames = oracle_.frames();
    for (const auto& [before, after] : committed_) g_.addControlEdge(before, after);
    return gated;
  }

 private:
  using Dnf = DnfEngine::Dnf;
  using Edge = TimeFrameOracle::Edge;

  /// True once the pass must stop accepting new gates: the global budget
  /// ran out, or the DNF arena outgrew the term cap. The pass holds live
  /// interned handles (cond_/need_), so it cannot trim the arena — per the
  /// degradation contract it stops at the last accepted gate instead.
  [[nodiscard]] bool budgetStop() {
    if (budget_ == nullptr) return false;
    if (budget_->exhausted()) return true;
    return budget_->dnfTermCap() != 0 && eng_.arenaLiterals() > budget_->dnfTermCap();
  }

  void markDegraded() {
    if (design_.degraded) return;
    design_.degraded = true;
    const BudgetKind kind = budget_->exhaustedWhy().value_or(BudgetKind::DnfTerms);
    design_.degradeReason = std::string("shared gating stopped early (") +
                            budgetKindName(kind) + "); kept every gate accepted so far";
    budget_->noteDegraded("shared-gating", kind,
                          "stopped at the last accepted gate; design stays valid");
  }

  int runSequential(const std::vector<NodeId>& cands) {
    int gated = 0;
    for (const NodeId n : cands) {
      if (budgetStop()) {
        markDegraded();
        break;
      }
      if (tryGate(n)) ++gated;
    }
    return gated;
  }

  /// The DNF half of tryGate(): decide whether `n` is probeworthy and
  /// compute its tentative edges. Pure with respect to the oracle; memo
  /// writes go through the (logged) condOf/needOf below.
  struct Eval {
    bool probeworthy = false;
    Dnf need;
    std::vector<Edge> edges;
    std::size_t ticket = static_cast<std::size_t>(-1);
    std::size_t logEnd = 0;  ///< memoLog_ size after this evaluation
  };

  void evalCandidate(NodeId n, Eval& e) {
    if (g_.fanouts(n).empty()) return;
    const Dnf& need = needOf(n);
    if (eng_.isTrue(need) || need.isFalse()) return;
    const std::vector<NodeId> support = eng_.support(need);
    for (const NodeId sel : support) {
      if (sel == n) return;
      if (!isScheduled(g_.kind(sel))) continue;
      if (faninOf(sel).test(n)) return;
    }
    for (const NodeId sel : support)
      if (isScheduled(g_.kind(sel))) e.edges.emplace_back(sel, n);
    e.need = need;
    e.probeworthy = true;
  }

  /// Reset every memo entry written after log position `mark` (entries are
  /// only ever written when unset, so the undo is a reset).
  void rollbackTo(std::size_t mark) {
    while (memoLog_.size() > mark) {
      const auto [table, n] = memoLog_.back();
      memoLog_.pop_back();
      (table == 'c' ? cond_ : need_)[n].reset();
    }
  }

  int runWaves(const std::vector<NodeId>& cands) {
    ProbeFarm farm(g_, design_.steps, design_.latency, "shared-gating", budget_);
    const std::size_t wave = std::max<std::size_t>(2 * farm.lanes(), 8);
    int gated = 0;
    std::size_t idx = 0;
    std::vector<Eval> evals;
    while (idx < cands.size()) {
      if (budgetStop()) {
        // Stop between waves: everything committed so far stays, staged
        // probes of the abandoned wave are reaped by the farm destructor
        // (its lanes poll the same budget, so the drain is one
        // slice-quantum).
        markDegraded();
        break;
      }
      const std::size_t end = std::min(idx + wave, cands.size());
      evals.assign(end - idx, Eval{});
      memoLog_.clear();
      logging_ = true;
      // Sub-waves: publish every ~lanes staged probes instead of ringing
      // once at the end, so the lanes work on the early candidates' probes
      // WHILE the consumer is still evaluating the later candidates' DNFs.
      // Verdicts are still consumed strictly in j order below (and no
      // commit happens during staging, so every job's captured version is
      // unchanged) — the overlap moves wall-clock idle time, not results.
      const std::size_t subWave = std::max<std::size_t>(farm.lanes(), 4);
      std::size_t staged = 0;
      for (std::size_t j = idx; j < end; ++j) {
        Eval& e = evals[j - idx];
        evalCandidate(cands[j], e);
        e.logEnd = memoLog_.size();
        if (e.probeworthy && !e.edges.empty()) {
          e.ticket = farm.stage(e.edges, false);
          if (++staged >= subWave) {
            farm.ring();
            staged = 0;
          }
        }
      }
      logging_ = false;
      farm.ring();  // tail sub-wave (no-op when nothing is pending)

      std::size_t nextIdx = end;
      for (std::size_t j = idx; j < end; ++j) {
        Eval& e = evals[j - idx];
        if (!e.probeworthy) continue;  // rejected before probing
        const NodeId n = cands[j];
        bool ok;
        if (e.edges.empty()) {
          ok = true;  // no scheduled select: trivially feasible
        } else {
          const ProbeFarm::Result r = farm.await(e.ticket);
          if (r.error && r.version == farm.version()) std::rethrow_exception(r.error);
          if (r.ran && !r.error && r.version == farm.version()) {
            ok = r.feasible;
            if (ok) {
              oracle_.push(e.edges);
              if (!oracle_.feasible())
                throw SynthesisError("shared-gating: speculative verdict diverged");
              oracle_.commit();
              farm.commitBatch(oracle_);
            }
          } else {
            // Defensive (a wave is cut at the first acceptance, so awaited
            // results should never be stale): sequential re-validation.
            oracle_.push(e.edges, /*probe=*/true);
            ok = oracle_.feasible();
            if (ok) {
              oracle_.commit();
              farm.commitBatch(oracle_);
            } else {
              oracle_.pop();
            }
          }
        }
        if (!ok) {
          // A consumed rejection is final (later commits only tighten), so
          // it counts exactly like the sequential sweep's oracle reject.
          ++slackRejects_;
          continue;
        }

        // ACCEPT: roll back the assumption-tainted memo writes of the later
        // candidates in this wave BEFORE installing the new condition (the
        // rollback log may contain a speculative condOf(n) entry).
        fault::point("gating-commit");
        rollbackTo(e.logEnd);
        committed_.insert(committed_.end(), e.edges.begin(), e.edges.end());
        design_.sharedGating[n] = eng_.decode(e.need);
        cond_[n] = std::move(e.need);
        ++gated;
        nextIdx = j + 1;
        break;
      }
      idx = nextIdx;
    }
    return gated;
  }

  /// Activation condition of node n as an interned DNF handle.
  const Dnf& condOf(NodeId n) {
    if (cond_[n]) return *cond_[n];
    Dnf result;
    if (!design_.sharedGating[n].empty()) {
      result = eng_.intern(design_.sharedGating[n]);
    } else {
      result = eng_.trueDnf();
      for (const NodeGate& gate : design_.gates[n]) {
        const GateDnf lit{GateTerm{
            GateLiteral{traceSelectProducer(g_, gate.mux), gate.side == MuxSide::True}}};
        result = eng_.conjoin(result, eng_.intern(lit));
        result = eng_.conjoin(result, condOf(gate.mux));
      }
    }
    cond_[n] = std::move(result);
    if (logging_) memoLog_.emplace_back('c', n);
    return *cond_[n];
  }

  /// Union of the conditions under which n's *value* is used, over all data
  /// consumers. TRUE as soon as any consumer needs it unconditionally.
  const Dnf& needOf(NodeId n) {
    if (need_[n]) return *need_[n];
    Dnf result;  // FALSE
    bool saturated = false;
    for (const NodeId f : g_.fanouts(n)) {
      if (saturated) break;
      const Node& consumer = g_.node(f);
      Dnf use;
      if (consumer.kind == OpKind::Output) {
        use = eng_.trueDnf();
      } else if (consumer.kind == OpKind::Wire) {
        use = needOf(f);  // transparent: whoever needs the wire needs n
      } else if (consumer.kind == OpKind::Mux) {
        // Which operand(s) of the mux does n feed?
        std::vector<DnfEngine::TermId> terms;
        const NodeId sel = traceSelectProducer(g_, f);
        for (std::size_t idx = 0; idx < consumer.operands.size(); ++idx) {
          if (consumer.operands[idx] != n) continue;
          if (idx == 0) {
            // Select input: needed whenever the mux computes at all.
            const Dnf& cond = condOf(f);
            terms.insert(terms.end(), cond.terms.begin(), cond.terms.end());
          } else {
            // Data input: needed when the mux computes AND selects it. This
            // holds for unmanaged muxes too; it is a property of the value's
            // use, not of the gating hardware.
            const GateDnf litDnf{GateTerm{GateLiteral{sel, idx == 1}}};
            const Dnf sideCond = eng_.conjoin(condOf(f), eng_.intern(litDnf));
            terms.insert(terms.end(), sideCond.terms.begin(), sideCond.terms.end());
          }
        }
        use = eng_.simplify(std::move(terms));
      } else {
        use = condOf(f);
      }
      result = eng_.disjoin(result, use);
      if (eng_.isTrue(result)) {
        result = eng_.trueDnf();
        saturated = true;
      }
    }
    need_[n] = std::move(result);
    if (logging_) memoLog_.emplace_back('n', n);
    return *need_[n];
  }

  bool tryGate(NodeId n) {
    // One evaluation path for both sweeps: the wave protocol is only
    // bit-identical to this sequential loop because the DNF half is
    // literally the same code (evalCandidate).
    Eval e;
    evalCandidate(n, e);
    if (!e.probeworthy) return false;

    if (budget_ != nullptr && !e.edges.empty()) budget_->chargeProbes();
    oracle_.push(e.edges, /*probe=*/true);
    if (!oracle_.feasible()) {
      oracle_.pop();
      ++slackRejects_;
      return false;
    }
    fault::point("gating-commit");
    oracle_.commit();

    committed_.insert(committed_.end(), e.edges.begin(), e.edges.end());
    design_.sharedGating[n] = eng_.decode(e.need);
    // condOf(n) would re-intern design_.sharedGating[n]; `e.need` is
    // already simplified, so the handle itself is that result.
    cond_[n] = std::move(e.need);
    return true;
  }

  /// Memoized data-edge transitive fanin of a select node.
  const NodeMask& faninOf(NodeId sel) {
    auto [it, inserted] = faninCache_.try_emplace(sel);
    if (inserted) it->second = g_.transitiveFanin(sel);
    return it->second;
  }

  PowerManagedDesign& design_;
  Graph& g_;
  DnfEngine eng_;
  TimeFrameOracle oracle_;
  const RunBudget* budget_ = nullptr;
  std::vector<std::pair<NodeId, NodeId>> committed_;
  std::vector<std::optional<Dnf>> cond_;
  std::vector<std::optional<Dnf>> need_;
  std::unordered_map<NodeId, NodeMask> faninCache_;
  /// Wave-evaluation memo write log for rollback (table tag, node).
  std::vector<std::pair<char, NodeId>> memoLog_;
  bool logging_ = false;
  int slackRejects_ = 0;
  /// Pipeline callers interleave this pass with code holding refs into the
  /// thread's DNF→probability manager (controller condition-class keys,
  /// mapper decode-memo keys). Pin it for the pass's lifetime so any
  /// dnfProbability call made while the sweep runs cannot trim the manager
  /// and invalidate those refs mid-pipeline (see trimDnfProbabilityManager).
  BddPin probabilityPin_{dnfProbabilityManager()};
};

// ---------------------------------------------------------------------------
// Retained from-scratch reference: GateDnf vectors at every engine call,
// frames recomputed per candidate. The executable specification for the
// interned pass above.
// ---------------------------------------------------------------------------

class SharedGatingPassReference {
 public:
  explicit SharedGatingPassReference(PowerManagedDesign& design)
      : design_(design), g_(design.graph) {
    cond_.resize(g_.size());
    need_.resize(g_.size());
  }

  int run() {
    const std::vector<NodeId> order = g_.topoOrder();
    int gated = 0;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId n = *it;
      if (!isScheduled(g_.kind(n))) continue;
      if (!design_.gates[n].empty() || !design_.sharedGating[n].empty()) continue;
      if (tryGate(n)) ++gated;
    }
    for (const auto& [before, after] : committed_) g_.addControlEdge(before, after);
    design_.frames = computeTimeFrames(g_, design_.steps, {}, design_.latency);
    return gated;
  }

 private:
  /// Activation condition of node n as a resolved DNF.
  const GateDnf& condOf(NodeId n) {
    if (cond_[n]) return *cond_[n];
    GateDnf result;
    if (!design_.sharedGating[n].empty()) {
      result = design_.sharedGating[n];
    } else {
      result = dnfTrue();
      for (const NodeGate& gate : design_.gates[n]) {
        GateDnf lit{GateTerm{
            GateLiteral{traceSelectProducer(g_, gate.mux), gate.side == MuxSide::True}}};
        result = andDnf(result, lit);
        result = andDnf(result, condOf(gate.mux));
      }
    }
    cond_[n] = std::move(result);
    return *cond_[n];
  }

  /// Union of the conditions under which n's *value* is used, over all data
  /// consumers. TRUE as soon as any consumer needs it unconditionally.
  const GateDnf& needOf(NodeId n) {
    if (need_[n]) return *need_[n];
    GateDnf result;  // FALSE
    bool saturated = false;
    for (const NodeId f : g_.fanouts(n)) {
      if (saturated) break;
      const Node& consumer = g_.node(f);
      GateDnf use;
      if (consumer.kind == OpKind::Output) {
        use = dnfTrue();
      } else if (consumer.kind == OpKind::Wire) {
        use = needOf(f);  // transparent: whoever needs the wire needs n
      } else if (consumer.kind == OpKind::Mux) {
        // Which operand(s) of the mux does n feed?
        use.clear();
        const NodeId sel = traceSelectProducer(g_, f);
        for (std::size_t idx = 0; idx < consumer.operands.size(); ++idx) {
          if (consumer.operands[idx] != n) continue;
          if (idx == 0) {
            // Select input: needed whenever the mux computes at all.
            for (const GateTerm& t : condOf(f)) use.push_back(t);
          } else {
            // Data input: needed when the mux computes AND selects it.
            const GateLiteral lit{sel, idx == 1};
            GateDnf sideCond = andDnf(condOf(f), GateDnf{GateTerm{lit}});
            for (GateTerm& t : sideCond) use.push_back(std::move(t));
          }
        }
        use = simplifyDnf(std::move(use));
      } else {
        use = condOf(f);
      }
      for (GateTerm& t : use) result.push_back(std::move(t));
      result = simplifyDnf(std::move(result));
      if (dnfIsTrue(result)) {
        result = dnfTrue();
        saturated = true;
      }
    }
    need_[n] = std::move(result);
    return *need_[n];
  }

  bool tryGate(NodeId n) {
    if (g_.fanouts(n).empty()) return false;
    const GateDnf& need = needOf(n);
    if (dnfIsTrue(need) || need.empty()) return false;

    const std::vector<NodeId> support = dnfSupport(need);
    for (const NodeId sel : support) {
      if (sel == n) return false;
      if (!isScheduled(g_.kind(sel))) continue;  // PI-driven select: free
      if (faninOf(sel).test(n)) return false;
    }

    std::vector<std::pair<NodeId, NodeId>> tentative;
    for (const NodeId sel : support)
      if (isScheduled(g_.kind(sel))) tentative.emplace_back(sel, n);

    std::vector<std::pair<NodeId, NodeId>> all = committed_;
    all.insert(all.end(), tentative.begin(), tentative.end());
    if (!computeTimeFrames(g_, design_.steps, all, design_.latency).feasible(g_)) return false;

    committed_.insert(committed_.end(), tentative.begin(), tentative.end());
    design_.sharedGating[n] = need;
    cond_[n].reset();  // recompute on demand with the new gating
    return true;
  }

  /// Memoized data-edge transitive fanin of a select node.
  const NodeMask& faninOf(NodeId sel) {
    auto [it, inserted] = faninCache_.try_emplace(sel);
    if (inserted) it->second = g_.transitiveFanin(sel);
    return it->second;
  }

  PowerManagedDesign& design_;
  Graph& g_;
  std::vector<std::pair<NodeId, NodeId>> committed_;
  std::vector<std::optional<GateDnf>> cond_;
  std::vector<std::optional<GateDnf>> need_;
  std::unordered_map<NodeId, NodeMask> faninCache_;
};

}  // namespace

int applySharedGating(PowerManagedDesign& design, const RunBudget* budget,
                      int* slackRejects) {
  SharedGatingPass pass(design, budget);
  const int gated = pass.run();
  if (slackRejects != nullptr) *slackRejects = pass.slackRejects();
  return gated;
}

int applySharedGatingReference(PowerManagedDesign& design) {
  SharedGatingPassReference pass(design);
  return pass.run();
}

}  // namespace pmsched
