#include "sched/shared_gating.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "sched/timeframe_oracle.hpp"

namespace pmsched {

namespace {

// ---------------------------------------------------------------------------
// Oracle-backed pass on interned DNF handles.
//
// needOf/condOf recurse over the consumer DAG and call the DNF engine once
// per consumer of every candidate, so the pass owns a DnfEngine and keeps
// the interned handles in its memo tables: terms are encoded exactly once
// (at the design_.gates / design_.sharedGating boundary) and every
// conjoin/disjoin below runs directly on term ids. The reference pass
// (further down) keeps the original decode/encode-per-call flow; the
// differential tests assert bit-identical gating decisions.
// ---------------------------------------------------------------------------

class SharedGatingPass {
 public:
  explicit SharedGatingPass(PowerManagedDesign& design)
      : design_(design),
        g_(design.graph),
        oracle_(g_, design.steps, design.latency, "shared-gating") {
    cond_.resize(g_.size());
    need_.resize(g_.size());
  }

  int run() {
    // Copy the order up front; control-edge insertion happens after the
    // sweep (the oracle snapshots the graph, so mutation is deferred).
    const std::vector<NodeId> order = g_.topoOrder();
    int gated = 0;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId n = *it;
      if (!isScheduled(g_.kind(n))) continue;
      if (!design_.gates[n].empty() || !design_.sharedGating[n].empty()) continue;
      if (tryGate(n)) ++gated;
    }
    // The oracle's committed fixed point equals the from-scratch frames of
    // the augmented graph; snapshot it before mutating.
    design_.frames = oracle_.frames();
    for (const auto& [before, after] : committed_) g_.addControlEdge(before, after);
    return gated;
  }

 private:
  using Dnf = DnfEngine::Dnf;

  /// Activation condition of node n as an interned DNF handle.
  const Dnf& condOf(NodeId n) {
    if (cond_[n]) return *cond_[n];
    Dnf result;
    if (!design_.sharedGating[n].empty()) {
      result = eng_.intern(design_.sharedGating[n]);
    } else {
      result = eng_.trueDnf();
      for (const NodeGate& gate : design_.gates[n]) {
        const GateDnf lit{GateTerm{
            GateLiteral{traceSelectProducer(g_, gate.mux), gate.side == MuxSide::True}}};
        result = eng_.conjoin(result, eng_.intern(lit));
        result = eng_.conjoin(result, condOf(gate.mux));
      }
    }
    cond_[n] = std::move(result);
    return *cond_[n];
  }

  /// Union of the conditions under which n's *value* is used, over all data
  /// consumers. TRUE as soon as any consumer needs it unconditionally.
  const Dnf& needOf(NodeId n) {
    if (need_[n]) return *need_[n];
    Dnf result;  // FALSE
    bool saturated = false;
    for (const NodeId f : g_.fanouts(n)) {
      if (saturated) break;
      const Node& consumer = g_.node(f);
      Dnf use;
      if (consumer.kind == OpKind::Output) {
        use = eng_.trueDnf();
      } else if (consumer.kind == OpKind::Wire) {
        use = needOf(f);  // transparent: whoever needs the wire needs n
      } else if (consumer.kind == OpKind::Mux) {
        // Which operand(s) of the mux does n feed?
        std::vector<DnfEngine::TermId> terms;
        const NodeId sel = traceSelectProducer(g_, f);
        for (std::size_t idx = 0; idx < consumer.operands.size(); ++idx) {
          if (consumer.operands[idx] != n) continue;
          if (idx == 0) {
            // Select input: needed whenever the mux computes at all.
            const Dnf& cond = condOf(f);
            terms.insert(terms.end(), cond.terms.begin(), cond.terms.end());
          } else {
            // Data input: needed when the mux computes AND selects it. This
            // holds for unmanaged muxes too; it is a property of the value's
            // use, not of the gating hardware.
            const GateDnf litDnf{GateTerm{GateLiteral{sel, idx == 1}}};
            const Dnf sideCond = eng_.conjoin(condOf(f), eng_.intern(litDnf));
            terms.insert(terms.end(), sideCond.terms.begin(), sideCond.terms.end());
          }
        }
        use = eng_.simplify(std::move(terms));
      } else {
        use = condOf(f);
      }
      result = eng_.disjoin(result, use);
      if (eng_.isTrue(result)) {
        result = eng_.trueDnf();
        saturated = true;
      }
    }
    need_[n] = std::move(result);
    return *need_[n];
  }

  bool tryGate(NodeId n) {
    if (g_.fanouts(n).empty()) return false;
    const Dnf& need = needOf(n);
    if (eng_.isTrue(need) || need.isFalse()) return false;

    // The latch-enable for n must see every select in the (simplified)
    // condition before n executes.
    const std::vector<NodeId> support = eng_.support(need);
    for (const NodeId sel : support) {
      if (sel == n) return false;
      if (!isScheduled(g_.kind(sel))) continue;  // PI-driven select: free
      // A select downstream of n would make the edge cyclic. The same few
      // selects recur across the whole pass, and transitive fanin follows
      // data edges only (control edges added by earlier gatings cannot
      // change it), so the masks are computed once and cached.
      if (faninOf(sel).test(n)) return false;
    }

    std::vector<std::pair<NodeId, NodeId>> tentative;
    for (const NodeId sel : support)
      if (isScheduled(g_.kind(sel))) tentative.emplace_back(sel, n);

    oracle_.push(tentative, /*probe=*/true);
    if (!oracle_.feasible()) {
      oracle_.pop();
      return false;
    }
    oracle_.commit();

    committed_.insert(committed_.end(), tentative.begin(), tentative.end());
    design_.sharedGating[n] = eng_.decode(need);
    // condOf(n) would re-intern design_.sharedGating[n]; `need` is already
    // simplified, so the handle itself is that result.
    cond_[n] = need;
    return true;
  }

  /// Memoized data-edge transitive fanin of a select node.
  const NodeMask& faninOf(NodeId sel) {
    auto [it, inserted] = faninCache_.try_emplace(sel);
    if (inserted) it->second = g_.transitiveFanin(sel);
    return it->second;
  }

  PowerManagedDesign& design_;
  Graph& g_;
  DnfEngine eng_;
  TimeFrameOracle oracle_;
  std::vector<std::pair<NodeId, NodeId>> committed_;
  std::vector<std::optional<Dnf>> cond_;
  std::vector<std::optional<Dnf>> need_;
  std::unordered_map<NodeId, NodeMask> faninCache_;
};

// ---------------------------------------------------------------------------
// Retained from-scratch reference: GateDnf vectors at every engine call,
// frames recomputed per candidate. The executable specification for the
// interned pass above.
// ---------------------------------------------------------------------------

class SharedGatingPassReference {
 public:
  explicit SharedGatingPassReference(PowerManagedDesign& design)
      : design_(design), g_(design.graph) {
    cond_.resize(g_.size());
    need_.resize(g_.size());
  }

  int run() {
    const std::vector<NodeId> order = g_.topoOrder();
    int gated = 0;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId n = *it;
      if (!isScheduled(g_.kind(n))) continue;
      if (!design_.gates[n].empty() || !design_.sharedGating[n].empty()) continue;
      if (tryGate(n)) ++gated;
    }
    for (const auto& [before, after] : committed_) g_.addControlEdge(before, after);
    design_.frames = computeTimeFrames(g_, design_.steps, {}, design_.latency);
    return gated;
  }

 private:
  /// Activation condition of node n as a resolved DNF.
  const GateDnf& condOf(NodeId n) {
    if (cond_[n]) return *cond_[n];
    GateDnf result;
    if (!design_.sharedGating[n].empty()) {
      result = design_.sharedGating[n];
    } else {
      result = dnfTrue();
      for (const NodeGate& gate : design_.gates[n]) {
        GateDnf lit{GateTerm{
            GateLiteral{traceSelectProducer(g_, gate.mux), gate.side == MuxSide::True}}};
        result = andDnf(result, lit);
        result = andDnf(result, condOf(gate.mux));
      }
    }
    cond_[n] = std::move(result);
    return *cond_[n];
  }

  /// Union of the conditions under which n's *value* is used, over all data
  /// consumers. TRUE as soon as any consumer needs it unconditionally.
  const GateDnf& needOf(NodeId n) {
    if (need_[n]) return *need_[n];
    GateDnf result;  // FALSE
    bool saturated = false;
    for (const NodeId f : g_.fanouts(n)) {
      if (saturated) break;
      const Node& consumer = g_.node(f);
      GateDnf use;
      if (consumer.kind == OpKind::Output) {
        use = dnfTrue();
      } else if (consumer.kind == OpKind::Wire) {
        use = needOf(f);  // transparent: whoever needs the wire needs n
      } else if (consumer.kind == OpKind::Mux) {
        // Which operand(s) of the mux does n feed?
        use.clear();
        const NodeId sel = traceSelectProducer(g_, f);
        for (std::size_t idx = 0; idx < consumer.operands.size(); ++idx) {
          if (consumer.operands[idx] != n) continue;
          if (idx == 0) {
            // Select input: needed whenever the mux computes at all.
            for (const GateTerm& t : condOf(f)) use.push_back(t);
          } else {
            // Data input: needed when the mux computes AND selects it.
            const GateLiteral lit{sel, idx == 1};
            GateDnf sideCond = andDnf(condOf(f), GateDnf{GateTerm{lit}});
            for (GateTerm& t : sideCond) use.push_back(std::move(t));
          }
        }
        use = simplifyDnf(std::move(use));
      } else {
        use = condOf(f);
      }
      for (GateTerm& t : use) result.push_back(std::move(t));
      result = simplifyDnf(std::move(result));
      if (dnfIsTrue(result)) {
        result = dnfTrue();
        saturated = true;
      }
    }
    need_[n] = std::move(result);
    return *need_[n];
  }

  bool tryGate(NodeId n) {
    if (g_.fanouts(n).empty()) return false;
    const GateDnf& need = needOf(n);
    if (dnfIsTrue(need) || need.empty()) return false;

    const std::vector<NodeId> support = dnfSupport(need);
    for (const NodeId sel : support) {
      if (sel == n) return false;
      if (!isScheduled(g_.kind(sel))) continue;  // PI-driven select: free
      if (faninOf(sel).test(n)) return false;
    }

    std::vector<std::pair<NodeId, NodeId>> tentative;
    for (const NodeId sel : support)
      if (isScheduled(g_.kind(sel))) tentative.emplace_back(sel, n);

    std::vector<std::pair<NodeId, NodeId>> all = committed_;
    all.insert(all.end(), tentative.begin(), tentative.end());
    if (!computeTimeFrames(g_, design_.steps, all, design_.latency).feasible(g_)) return false;

    committed_.insert(committed_.end(), tentative.begin(), tentative.end());
    design_.sharedGating[n] = need;
    cond_[n].reset();  // recompute on demand with the new gating
    return true;
  }

  /// Memoized data-edge transitive fanin of a select node.
  const NodeMask& faninOf(NodeId sel) {
    auto [it, inserted] = faninCache_.try_emplace(sel);
    if (inserted) it->second = g_.transitiveFanin(sel);
    return it->second;
  }

  PowerManagedDesign& design_;
  Graph& g_;
  std::vector<std::pair<NodeId, NodeId>> committed_;
  std::vector<std::optional<GateDnf>> cond_;
  std::vector<std::optional<GateDnf>> need_;
  std::unordered_map<NodeId, NodeMask> faninCache_;
};

}  // namespace

int applySharedGating(PowerManagedDesign& design) {
  SharedGatingPass pass(design);
  return pass.run();
}

int applySharedGatingReference(PowerManagedDesign& design) {
  SharedGatingPassReference pass(design);
  return pass.run();
}

}  // namespace pmsched
