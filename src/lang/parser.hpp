#pragma once
// Recursive-descent parser for SIL.
//
// Grammar (EBNF):
//   program    := 'circuit' IDENT ';' decl*
//   decl       := inputDecl | outputDecl | defDecl
//   inputDecl  := 'input' IDENT (',' IDENT)* ':' type ';'
//   outputDecl := 'output' IDENT ['=' expr] ';'
//   defDecl    := IDENT '=' expr ';'
//   type       := 'num' '<' NUMBER '>' | 'bool'
//   expr       := 'if' expr 'then' expr 'else' expr 'end' | orExpr
//   orExpr     := andExpr (('|'|'^') andExpr)*
//   andExpr    := cmpExpr ('&' cmpExpr)*
//   cmpExpr    := addExpr [('>'|'>='|'<'|'<='|'=='|'!=') addExpr]
//   addExpr    := mulExpr (('+'|'-') mulExpr)*
//   mulExpr    := shiftExpr ('*' shiftExpr)*
//   shiftExpr  := unary (('>>'|'<<') NUMBER)*
//   unary      := ('-'|'~') unary | primary
//   primary    := NUMBER | IDENT | '(' expr ')'

#include "lang/ast.hpp"

namespace pmsched {
namespace lang {

/// Parse a whole SIL program. Throws ParseError with location info.
[[nodiscard]] Module parse(std::string_view source);

}  // namespace lang
}  // namespace pmsched
