#pragma once
// SIL source texts for the paper's running examples, used by tests and the
// frontend examples. These demonstrate that the behavioral path (source ->
// CDFG -> schedule) produces the same structures as the programmatic
// builders in src/circuits.

#include <string_view>

namespace pmsched {
namespace lang {

/// |a-b| from Figures 1-2.
[[nodiscard]] std::string_view absdiffSource();

/// Subtractive GCD step matching circuits::gcd() operation inventory.
[[nodiscard]] std::string_view gcdSource();

/// Card dealer matching circuits::dealer() operation inventory.
[[nodiscard]] std::string_view dealerSource();

/// A fresh example beyond the paper's set: clipped weighted average with a
/// saturation conditional (demonstrates the DSL on new input).
[[nodiscard]] std::string_view clippedAverageSource();

}  // namespace lang
}  // namespace pmsched
