#pragma once
// Hand-written lexer for the SIL language. Supports line comments with
// '--' (Silage/VHDL style) and '#'.

#include <vector>

#include "lang/token.hpp"

namespace pmsched {
namespace lang {

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  /// Tokenize the whole input; the last token is always TokKind::End.
  /// Throws ParseError on malformed input (bad characters, huge literals).
  [[nodiscard]] std::vector<Token> tokenize();

 private:
  [[nodiscard]] bool atEnd() const { return pos_ >= source_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char advance();
  void skipWhitespaceAndComments();
  [[nodiscard]] SourceLoc here() const { return SourceLoc{line_, column_}; }

  Token lexNumber();
  Token lexIdentOrKeyword();

  std::string_view source_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

}  // namespace lang
}  // namespace pmsched
