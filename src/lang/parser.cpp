#include "lang/parser.hpp"

#include "lang/lexer.hpp"

namespace pmsched {
namespace lang {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Module parseModule() {
    Module mod;
    expect(TokKind::KwCircuit);
    mod.name = expect(TokKind::Ident).text;
    expect(TokKind::Semi);

    while (!check(TokKind::End)) {
      if (check(TokKind::KwInput)) {
        mod.inputs.push_back(parseInput());
      } else if (check(TokKind::KwOutput)) {
        mod.outputs.push_back(parseOutput());
      } else {
        mod.defs.push_back(parseDef());
      }
    }
    return mod;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& previous() const { return tokens_[pos_ - 1]; }
  bool check(TokKind kind) const { return peek().kind == kind; }
  bool match(TokKind kind) {
    if (!check(kind)) return false;
    ++pos_;
    return true;
  }
  const Token& expect(TokKind kind) {
    if (!check(kind))
      throw ParseError(peek().loc, "expected " + std::string(tokName(kind)) + ", found " +
                                       std::string(tokName(peek().kind)));
    return tokens_[pos_++];
  }

  InputDecl parseInput() {
    InputDecl decl;
    decl.loc = peek().loc;
    expect(TokKind::KwInput);
    decl.names.push_back(expect(TokKind::Ident).text);
    while (match(TokKind::Comma)) decl.names.push_back(expect(TokKind::Ident).text);
    expect(TokKind::Colon);
    decl.type = parseType();
    expect(TokKind::Semi);
    return decl;
  }

  TypeSpec parseType() {
    TypeSpec type;
    if (match(TokKind::KwBool)) {
      type.width = 1;
      type.isBool = true;
      return type;
    }
    expect(TokKind::KwNum);
    expect(TokKind::Lt);
    const Token& width = expect(TokKind::Number);
    if (width.number < 1 || width.number > 64)
      throw ParseError(width.loc, "width must be in [1, 64]");
    type.width = static_cast<int>(width.number);
    expect(TokKind::Gt);
    return type;
  }

  OutputDecl parseOutput() {
    OutputDecl decl;
    decl.loc = peek().loc;
    expect(TokKind::KwOutput);
    decl.name = expect(TokKind::Ident).text;
    if (match(TokKind::Assign)) decl.value = parseExpr();
    expect(TokKind::Semi);
    return decl;
  }

  ValueDef parseDef() {
    ValueDef def;
    def.loc = peek().loc;
    def.name = expect(TokKind::Ident).text;
    expect(TokKind::Assign);
    def.value = parseExpr();
    expect(TokKind::Semi);
    return def;
  }

  ExprPtr parseExpr() {
    if (check(TokKind::KwIf)) return parseIf();
    return parseOr();
  }

  ExprPtr parseIf() {
    auto expr = std::make_unique<Expr>();
    expr->kind = Expr::Kind::If;
    expr->loc = peek().loc;
    expect(TokKind::KwIf);
    expr->lhs = parseExpr();
    expect(TokKind::KwThen);
    expr->rhs = parseExpr();
    expect(TokKind::KwElse);
    expr->els = parseExpr();
    expect(TokKind::KwEnd);
    return expr;
  }

  ExprPtr makeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc) {
    auto expr = std::make_unique<Expr>();
    expr->kind = Expr::Kind::Binary;
    expr->binOp = op;
    expr->loc = loc;
    expr->lhs = std::move(lhs);
    expr->rhs = std::move(rhs);
    return expr;
  }

  ExprPtr parseOr() {
    ExprPtr lhs = parseAnd();
    for (;;) {
      const SourceLoc loc = peek().loc;
      if (match(TokKind::Pipe)) {
        lhs = makeBinary(BinOp::Or, std::move(lhs), parseAnd(), loc);
      } else if (match(TokKind::Caret)) {
        lhs = makeBinary(BinOp::Xor, std::move(lhs), parseAnd(), loc);
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parseAnd() {
    ExprPtr lhs = parseCmp();
    for (;;) {
      const SourceLoc loc = peek().loc;
      if (!match(TokKind::Amp)) return lhs;
      lhs = makeBinary(BinOp::And, std::move(lhs), parseCmp(), loc);
    }
  }

  ExprPtr parseCmp() {
    ExprPtr lhs = parseAdd();
    const SourceLoc loc = peek().loc;
    BinOp op;
    if (match(TokKind::Gt)) op = BinOp::Gt;
    else if (match(TokKind::Ge)) op = BinOp::Ge;
    else if (match(TokKind::Lt)) op = BinOp::Lt;
    else if (match(TokKind::Le)) op = BinOp::Le;
    else if (match(TokKind::EqEq)) op = BinOp::Eq;
    else if (match(TokKind::NotEq)) op = BinOp::Ne;
    else return lhs;
    return makeBinary(op, std::move(lhs), parseAdd(), loc);
  }

  ExprPtr parseAdd() {
    ExprPtr lhs = parseMul();
    for (;;) {
      const SourceLoc loc = peek().loc;
      if (match(TokKind::Plus)) {
        lhs = makeBinary(BinOp::Add, std::move(lhs), parseMul(), loc);
      } else if (match(TokKind::Minus)) {
        lhs = makeBinary(BinOp::Sub, std::move(lhs), parseMul(), loc);
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parseMul() {
    ExprPtr lhs = parseShift();
    for (;;) {
      const SourceLoc loc = peek().loc;
      if (!match(TokKind::Star)) return lhs;
      lhs = makeBinary(BinOp::Mul, std::move(lhs), parseShift(), loc);
    }
  }

  ExprPtr parseShift() {
    ExprPtr operand = parseUnary();
    for (;;) {
      const SourceLoc loc = peek().loc;
      int sign;
      if (match(TokKind::Shr)) sign = 1;
      else if (match(TokKind::Shl)) sign = -1;
      else return operand;

      const Token& amount = expect(TokKind::Number);
      auto expr = std::make_unique<Expr>();
      expr->kind = Expr::Kind::Shift;
      expr->loc = loc;
      expr->shiftAmount = sign * static_cast<int>(amount.number);
      expr->lhs = std::move(operand);
      operand = std::move(expr);
    }
  }

  ExprPtr parseUnary() {
    const SourceLoc loc = peek().loc;
    if (match(TokKind::Minus)) {
      auto expr = std::make_unique<Expr>();
      expr->kind = Expr::Kind::Unary;
      expr->unOp = UnOp::Neg;
      expr->loc = loc;
      expr->lhs = parseUnary();
      return expr;
    }
    if (match(TokKind::Tilde)) {
      auto expr = std::make_unique<Expr>();
      expr->kind = Expr::Kind::Unary;
      expr->unOp = UnOp::Not;
      expr->loc = loc;
      expr->lhs = parseUnary();
      return expr;
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    auto expr = std::make_unique<Expr>();
    expr->loc = peek().loc;
    if (match(TokKind::Number)) {
      expr->kind = Expr::Kind::Number;
      expr->number = previous().number;
      return expr;
    }
    if (match(TokKind::Ident)) {
      expr->kind = Expr::Kind::Name;
      expr->name = previous().text;
      return expr;
    }
    if (match(TokKind::LParen)) {
      ExprPtr inner = parseExpr();
      expect(TokKind::RParen);
      return inner;
    }
    throw ParseError(peek().loc, "expected expression, found " +
                                     std::string(tokName(peek().kind)));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Module parse(std::string_view source) {
  Lexer lexer(source);
  Parser parser(lexer.tokenize());
  return parser.parseModule();
}

}  // namespace lang
}  // namespace pmsched
