#pragma once
// Abstract syntax tree for the SIL language.
//
// SIL is single-assignment and purely applicative, like Silage: a circuit
// is a set of value definitions; conditionals are expressions ("if c then
// a else b end") that elaborate to CDFG multiplexors, which is exactly the
// structure the paper's scheduling transform operates on.

#include <memory>
#include <string>
#include <vector>

#include "lang/token.hpp"

namespace pmsched {
namespace lang {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp : std::uint8_t {
  Add,
  Sub,
  Mul,
  Gt,
  Ge,
  Lt,
  Le,
  Eq,
  Ne,
  And,
  Or,
  Xor,
};

enum class UnOp : std::uint8_t { Neg, Not };

struct Expr {
  enum class Kind : std::uint8_t { Number, Name, Unary, Binary, If, Shift } kind;
  SourceLoc loc;

  // Number
  std::int64_t number = 0;
  // Name
  std::string name;
  // Unary
  UnOp unOp = UnOp::Neg;
  // Binary
  BinOp binOp = BinOp::Add;
  // Shift (by a constant; elaborates to free wiring)
  int shiftAmount = 0;  ///< > 0 shifts right, < 0 shifts left

  ExprPtr lhs;  ///< Unary/Shift operand; Binary lhs; If condition
  ExprPtr rhs;  ///< Binary rhs; If then-branch
  ExprPtr els;  ///< If else-branch
};

/// Declared value type: bool is a 1-bit num.
struct TypeSpec {
  int width = 8;
  bool isBool = false;
};

struct InputDecl {
  std::vector<std::string> names;
  TypeSpec type;
  SourceLoc loc;
};

struct ValueDef {
  std::string name;
  ExprPtr value;
  SourceLoc loc;
};

struct OutputDecl {
  std::string name;
  ExprPtr value;  ///< may be null: "output x;" exports an existing value
  SourceLoc loc;
};

struct Module {
  std::string name;
  std::vector<InputDecl> inputs;
  std::vector<ValueDef> defs;
  std::vector<OutputDecl> outputs;
};

}  // namespace lang
}  // namespace pmsched
