#include "lang/lexer.hpp"

#include <cctype>

namespace pmsched {
namespace lang {

char Lexer::advance() {
  const char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    while (!atEnd() && std::isspace(static_cast<unsigned char>(peek())) != 0) advance();
    if (peek() == '#' || (peek() == '-' && peek(1) == '-')) {
      while (!atEnd() && peek() != '\n') advance();
      continue;
    }
    break;
  }
}

Token Lexer::lexNumber() {
  Token tok;
  tok.kind = TokKind::Number;
  tok.loc = here();
  std::int64_t value = 0;
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())) != 0) {
    const int digit = advance() - '0';
    if (value > (INT64_MAX - digit) / 10) throw ParseError(tok.loc, "numeric literal overflow");
    value = value * 10 + digit;
  }
  tok.number = value;
  return tok;
}

Token Lexer::lexIdentOrKeyword() {
  Token tok;
  tok.loc = here();
  std::string text;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) != 0 || peek() == '_'))
    text += advance();

  if (text == "circuit") tok.kind = TokKind::KwCircuit;
  else if (text == "input") tok.kind = TokKind::KwInput;
  else if (text == "output") tok.kind = TokKind::KwOutput;
  else if (text == "if") tok.kind = TokKind::KwIf;
  else if (text == "then") tok.kind = TokKind::KwThen;
  else if (text == "else") tok.kind = TokKind::KwElse;
  else if (text == "end") tok.kind = TokKind::KwEnd;
  else if (text == "num") tok.kind = TokKind::KwNum;
  else if (text == "bool") tok.kind = TokKind::KwBool;
  else {
    tok.kind = TokKind::Ident;
    tok.text = std::move(text);
  }
  return tok;
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> tokens;
  for (;;) {
    skipWhitespaceAndComments();
    if (atEnd()) break;

    const char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      tokens.push_back(lexNumber());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      tokens.push_back(lexIdentOrKeyword());
      continue;
    }

    Token tok;
    tok.loc = here();
    advance();
    switch (c) {
      case ';': tok.kind = TokKind::Semi; break;
      case ':': tok.kind = TokKind::Colon; break;
      case ',': tok.kind = TokKind::Comma; break;
      case '(': tok.kind = TokKind::LParen; break;
      case ')': tok.kind = TokKind::RParen; break;
      case '+': tok.kind = TokKind::Plus; break;
      case '-': tok.kind = TokKind::Minus; break;
      case '*': tok.kind = TokKind::Star; break;
      case '&': tok.kind = TokKind::Amp; break;
      case '|': tok.kind = TokKind::Pipe; break;
      case '^': tok.kind = TokKind::Caret; break;
      case '~': tok.kind = TokKind::Tilde; break;
      case '=':
        if (peek() == '=') {
          advance();
          tok.kind = TokKind::EqEq;
        } else {
          tok.kind = TokKind::Assign;
        }
        break;
      case '!':
        if (peek() == '=') {
          advance();
          tok.kind = TokKind::NotEq;
        } else {
          throw ParseError(tok.loc, "unexpected '!'");
        }
        break;
      case '<':
        if (peek() == '=') {
          advance();
          tok.kind = TokKind::Le;
        } else if (peek() == '<') {
          advance();
          tok.kind = TokKind::Shl;
        } else {
          tok.kind = TokKind::Lt;
        }
        break;
      case '>':
        if (peek() == '=') {
          advance();
          tok.kind = TokKind::Ge;
        } else if (peek() == '>') {
          advance();
          tok.kind = TokKind::Shr;
        } else {
          tok.kind = TokKind::Gt;
        }
        break;
      default:
        throw ParseError(tok.loc, std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(tok);
  }

  Token end;
  end.kind = TokKind::End;
  end.loc = here();
  tokens.push_back(end);
  return tokens;
}

}  // namespace lang
}  // namespace pmsched
