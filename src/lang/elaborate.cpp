#include "lang/elaborate.hpp"

#include <map>

#include "lang/parser.hpp"

namespace pmsched {
namespace lang {

namespace {

class Elaborator {
 public:
  explicit Elaborator(const Module& module) : module_(module), graph_(module.name) {}

  Graph run() {
    for (const InputDecl& decl : module_.inputs) {
      for (const std::string& name : decl.names) {
        checkFresh(name, decl.loc);
        bindings_[name] = graph_.addInput(name, decl.type.width);
      }
    }
    for (const ValueDef& def : module_.defs) {
      checkFresh(def.name, def.loc);
      bindings_[def.name] = elaborate(*def.value, /*widthHint=*/0, def.name);
    }
    for (const OutputDecl& out : module_.outputs) {
      NodeId value = kInvalidNode;
      if (out.value) {
        value = elaborate(*out.value, 0, out.name + "_val");
      } else {
        const auto it = bindings_.find(out.name);
        if (it == bindings_.end())
          throw ParseError(out.loc, "output of undefined value '" + out.name + "'");
        value = it->second;
      }
      const std::string outName =
          bindings_.count(out.name) != 0 ? out.name + "_out" : out.name;
      graph_.addOutput(value, outName);
    }
    graph_.validate();
    return std::move(graph_);
  }

 private:
  void checkFresh(const std::string& name, SourceLoc loc) {
    if (bindings_.count(name) != 0)
      throw ParseError(loc, "redefinition of '" + name + "' (SIL is single-assignment)");
  }

  int widthOf(NodeId node) const { return graph_.node(node).width; }

  NodeId zeroOfWidth(int width) {
    const auto it = zeros_.find(width);
    if (it != zeros_.end()) return it->second;
    const NodeId z = graph_.addConst(0, width, "zero_w" + std::to_string(width));
    zeros_[width] = z;
    return z;
  }

  /// widthHint guides constant widths (0 = default 8). `nameHint` names the
  /// top node of a definition so CDFGs stay readable in reports.
  NodeId elaborate(const Expr& expr, int widthHint, const std::string& nameHint = {}) {
    switch (expr.kind) {
      case Expr::Kind::Number:
        return graph_.addConst(expr.number, widthHint > 0 ? widthHint : 8,
                               nameHint.empty() ? std::string{} : nameHint);
      case Expr::Kind::Name: {
        const auto it = bindings_.find(expr.name);
        if (it == bindings_.end())
          throw ParseError(expr.loc, "use of undefined value '" + expr.name + "'");
        return it->second;
      }
      case Expr::Kind::Unary: {
        const NodeId operand = elaborate(*expr.lhs, widthHint);
        if (expr.unOp == UnOp::Neg) {
          const int w = widthOf(operand);
          return graph_.addOp(OpKind::Sub, {zeroOfWidth(w), operand}, nameHint);
        }
        return graph_.addOp(OpKind::Not, {operand}, nameHint);
      }
      case Expr::Kind::Shift: {
        const NodeId operand = elaborate(*expr.lhs, widthHint);
        if (expr.shiftAmount <= -64 || expr.shiftAmount >= 64)
          throw ParseError(expr.loc, "shift amount out of range");
        return graph_.addWire(operand, expr.shiftAmount, nameHint);
      }
      case Expr::Kind::If: {
        const NodeId cond = elaborate(*expr.lhs, 1);
        if (widthOf(cond) != 1)
          throw ParseError(expr.loc, "condition of 'if' must be boolean (1 bit)");
        const NodeId thenV = elaborate(*expr.rhs, widthHint);
        const NodeId elseV = elaborate(*expr.els, widthHint > 0 ? widthHint : widthOf(thenV));
        return graph_.addMux(cond, thenV, elseV, nameHint);
      }
      case Expr::Kind::Binary: {
        // Elaborate the non-constant side first so a bare number inherits
        // its sibling's width.
        NodeId lhs = kNoWidthYet;
        NodeId rhs = kNoWidthYet;
        if (expr.lhs->kind == Expr::Kind::Number && expr.rhs->kind != Expr::Kind::Number) {
          rhs = elaborate(*expr.rhs, widthHint);
          lhs = elaborate(*expr.lhs, widthOf(rhs));
        } else if (expr.rhs->kind == Expr::Kind::Number) {
          lhs = elaborate(*expr.lhs, widthHint);
          rhs = elaborate(*expr.rhs, widthOf(lhs));
        } else {
          lhs = elaborate(*expr.lhs, widthHint);
          rhs = elaborate(*expr.rhs, widthHint);
        }
        return graph_.addOp(opKindOf(expr.binOp, expr.loc), {lhs, rhs}, nameHint);
      }
    }
    throw ParseError(expr.loc, "internal: unknown expression kind");
  }

  static OpKind opKindOf(BinOp op, SourceLoc loc) {
    switch (op) {
      case BinOp::Add: return OpKind::Add;
      case BinOp::Sub: return OpKind::Sub;
      case BinOp::Mul: return OpKind::Mul;
      case BinOp::Gt: return OpKind::CmpGt;
      case BinOp::Ge: return OpKind::CmpGe;
      case BinOp::Lt: return OpKind::CmpLt;
      case BinOp::Le: return OpKind::CmpLe;
      case BinOp::Eq: return OpKind::CmpEq;
      case BinOp::Ne: return OpKind::CmpNe;
      case BinOp::And: return OpKind::And;
      case BinOp::Or: return OpKind::Or;
      case BinOp::Xor: return OpKind::Xor;
    }
    throw ParseError(loc, "internal: unknown binary operator");
  }

  static constexpr NodeId kNoWidthYet = kInvalidNode;

  const Module& module_;
  Graph graph_;
  std::map<std::string, NodeId> bindings_;
  std::map<int, NodeId> zeros_;
};

}  // namespace

Graph elaborate(const Module& module) { return Elaborator(module).run(); }

Graph compile(std::string_view source) { return elaborate(parse(source)); }

}  // namespace lang
}  // namespace pmsched
