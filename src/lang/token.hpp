#pragma once
// Tokens of the PMSched behavioral description language ("SIL"), a small
// single-assignment language standing in for Silage (which is what the
// paper's HYPER flow consumed). See lang/parser.hpp for the grammar.

#include <cstdint>
#include <string>
#include <string_view>

#include "support/diagnostics.hpp"

namespace pmsched {
namespace lang {

enum class TokKind : std::uint8_t {
  End,
  Ident,
  Number,
  // keywords
  KwCircuit,
  KwInput,
  KwOutput,
  KwIf,
  KwThen,
  KwElse,
  KwEnd,
  KwNum,
  KwBool,
  // punctuation / operators
  Semi,       // ;
  Colon,      // :
  Comma,      // ,
  Assign,     // =
  LParen,     // (
  RParen,     // )
  Lt,         // <
  Gt,         // >
  Le,         // <=
  Ge,         // >=
  EqEq,       // ==
  NotEq,      // !=
  Plus,       // +
  Minus,      // -
  Star,       // *
  Amp,        // &
  Pipe,       // |
  Caret,      // ^
  Tilde,      // ~
  Shl,        // <<
  Shr,        // >>
};

[[nodiscard]] constexpr std::string_view tokName(TokKind kind) {
  switch (kind) {
    case TokKind::End: return "<end of input>";
    case TokKind::Ident: return "identifier";
    case TokKind::Number: return "number";
    case TokKind::KwCircuit: return "'circuit'";
    case TokKind::KwInput: return "'input'";
    case TokKind::KwOutput: return "'output'";
    case TokKind::KwIf: return "'if'";
    case TokKind::KwThen: return "'then'";
    case TokKind::KwElse: return "'else'";
    case TokKind::KwEnd: return "'end'";
    case TokKind::KwNum: return "'num'";
    case TokKind::KwBool: return "'bool'";
    case TokKind::Semi: return "';'";
    case TokKind::Colon: return "':'";
    case TokKind::Comma: return "','";
    case TokKind::Assign: return "'='";
    case TokKind::LParen: return "'('";
    case TokKind::RParen: return "')'";
    case TokKind::Lt: return "'<'";
    case TokKind::Gt: return "'>'";
    case TokKind::Le: return "'<='";
    case TokKind::Ge: return "'>='";
    case TokKind::EqEq: return "'=='";
    case TokKind::NotEq: return "'!='";
    case TokKind::Plus: return "'+'";
    case TokKind::Minus: return "'-'";
    case TokKind::Star: return "'*'";
    case TokKind::Amp: return "'&'";
    case TokKind::Pipe: return "'|'";
    case TokKind::Caret: return "'^'";
    case TokKind::Tilde: return "'~'";
    case TokKind::Shl: return "'<<'";
    case TokKind::Shr: return "'>>'";
  }
  return "?";
}

struct Token {
  TokKind kind = TokKind::End;
  std::string text;          ///< identifier spelling
  std::int64_t number = 0;   ///< numeric literal value
  SourceLoc loc;
};

}  // namespace lang
}  // namespace pmsched
