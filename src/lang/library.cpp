#include "lang/library.hpp"

namespace pmsched {
namespace lang {

std::string_view absdiffSource() {
  return R"(-- |a - b|, the running example of Monteiro et al. (DAC'96), Figs. 1-2.
circuit absdiff;

input a, b : num<8>;

t = a > b;

output abs = if t then a - b else b - a end;
)";
}

std::string_view gcdSource() {
  return R"(-- One iteration of subtractive GCD with a single shared subtractor.
circuit gcd;

input a, b, a_init, b_init : num<8>;
input start : bool;

t     = a > b;
big   = if t then a else b end;
small = if t then b else a end;
eq    = big == small;
d     = big - small;

a_next  = if eq then a else small end;
b_inner = if eq then b else d end;

output a_out   = if start then a_init else a_next end;
output b_out   = if start then b_init else b_inner end;
output gcd_out = a_next;
)";
}

std::string_view dealerSource() {
  return R"(-- Card dealer: a two-hand payout selection tree.
circuit dealer;

input p, q, r, s : num<8>;

s1 = p + q;
s2 = r + s;
c1 = p > q;
c2 = p > r;
c3 = r > q;
d  = s2 - q;

mA = if c2 then s1 else s2 end;
mB = if c3 then d else s2 end;

output deal  = if c1 then mA else mB end;
output total = s1;
)";
}

std::string_view clippedAverageSource() {
  return R"(-- Clipped weighted average: saturate the blend when it overshoots.
circuit clipavg;

input x, y, limit : num<8>;
input heavy : bool;

wx   = if heavy then x * 3 else x end;
blend = (wx + y) >> 1;
over  = blend > limit;

output avg = if over then limit else blend end;
output clipped = over;
)";
}

}  // namespace lang
}  // namespace pmsched
