#pragma once
// Elaboration: SIL AST -> CDFG. Single-assignment checking, width
// inference, and lowering of conditionals to multiplexor nodes (the
// structures the power-management transform gates).

#include "cdfg/graph.hpp"
#include "lang/ast.hpp"

namespace pmsched {
namespace lang {

/// Elaborate a parsed module. Throws ParseError (with source locations) on
/// semantic errors: redefinitions, unknown names, non-boolean conditions,
/// shift overflow, outputs of undefined values.
[[nodiscard]] Graph elaborate(const Module& module);

/// Convenience: parse + elaborate.
[[nodiscard]] Graph compile(std::string_view source);

}  // namespace lang
}  // namespace pmsched
