#pragma once
// Hardware allocation: bind scheduled operations to execution units and
// values to registers. Stands in for HYPER's datapath generation step.
//
// Unit binding is first-fit per control step with an optional
// mutual-exclusion extension (§II-C of the paper): two operations may share
// a unit in the SAME control step when their activation conditions are
// provably disjoint — the generalization the paper highlights over earlier
// mutual-exclusion work.
//
// Register allocation is the classic left-edge algorithm over value
// lifetimes [production step, last consumption step].

#include <vector>

#include "power/activation.hpp"
#include "sched/power_transform.hpp"
#include "sched/schedule.hpp"

namespace pmsched {

/// One physical execution unit instance.
struct FunctionalUnit {
  ResourceClass cls = ResourceClass::None;
  int index = 0;                ///< instance number within the class
  std::vector<NodeId> ops;      ///< operations executed on this unit
  int width = 8;                ///< widest operation bound to it
};

/// One physical register.
struct RegisterInfo {
  int index = 0;
  int width = 8;
  std::vector<NodeId> values;  ///< values stored here (disjoint lifetimes)
};

struct Binding {
  std::vector<FunctionalUnit> units;
  std::vector<int> unitOf;  ///< node -> index into units, -1 for transparent

  std::vector<RegisterInfo> registers;
  std::vector<int> registerOf;  ///< node -> register index, -1 if unregistered

  /// Interconnect estimate: 2:1 muxes needed to route distinct sources into
  /// unit input ports.
  int interconnectMuxes = 0;

  [[nodiscard]] int unitCount(ResourceClass rc) const {
    int n = 0;
    for (const FunctionalUnit& u : units)
      if (u.cls == rc) ++n;
    return n;
  }
};

struct BindingOptions {
  /// Allow same-step unit sharing between operations whose activation
  /// conditions are disjoint (requires `activation`).
  bool allowMutexSharing = false;
  const ActivationResult* activation = nullptr;
};

/// Bind a scheduled design. The schedule must validate against the graph.
[[nodiscard]] Binding bindDesign(const Graph& g, const Schedule& sched,
                                 const BindingOptions& opts = {});

/// Area model over a full binding: units + registers + interconnect.
struct AreaModel {
  double unitArea = 0;
  double registerArea = 0;
  double interconnectArea = 0;

  [[nodiscard]] double total() const { return unitArea + registerArea + interconnectArea; }
};

[[nodiscard]] AreaModel estimateArea(const Binding& binding,
                                     const UnitCosts& costs = UnitCosts::defaults());

}  // namespace pmsched
