#include "alloc/binding.hpp"

#include <algorithm>
#include <map>

#include "sched/condition.hpp"

namespace pmsched {

namespace {

/// Two activation conditions are mutually exclusive when their conjunction
/// is unsatisfiable (empty DNF after simplification).
bool mutuallyExclusive(const GateDnf& a, const GateDnf& b) {
  return andDnf(a, b).empty();
}

}  // namespace

Binding bindDesign(const Graph& g, const Schedule& sched, const BindingOptions& opts) {
  sched.validate(g);
  if (opts.allowMutexSharing && opts.activation == nullptr)
    throw SynthesisError("bindDesign: mutex sharing requires activation analysis");

  Binding binding;
  binding.unitOf.assign(g.size(), -1);
  binding.registerOf.assign(g.size(), -1);

  // ---- functional unit binding ---------------------------------------------
  // Greedy first-fit, step by step; a unit is reusable across steps freely,
  // and within one step only via the mutual-exclusion extension.
  struct UnitState {
    FunctionalUnit unit;
    int lastStep = 0;
    std::vector<NodeId> opsThisStep;
  };
  std::map<ResourceClass, std::vector<UnitState>> pool;

  for (int step = 1; step <= sched.steps(); ++step) {
    for (auto& [cls, states] : pool)
      for (UnitState& s : states) s.opsThisStep.clear();

    for (const NodeId n : sched.nodesInStep(g, step)) {
      const ResourceClass rc = resourceClassOf(g.kind(n));
      std::vector<UnitState>& states = pool[rc];

      UnitState* chosen = nullptr;
      for (UnitState& s : states) {
        if (s.opsThisStep.empty()) {
          chosen = &s;
          break;
        }
        if (opts.allowMutexSharing) {
          const bool disjointFromAll = std::all_of(
              s.opsThisStep.begin(), s.opsThisStep.end(), [&](NodeId other) {
                return mutuallyExclusive(opts.activation->condition[n],
                                         opts.activation->condition[other]);
              });
          if (disjointFromAll) {
            chosen = &s;
            break;
          }
        }
      }
      if (chosen == nullptr) {
        UnitState fresh;
        fresh.unit.cls = rc;
        fresh.unit.index = static_cast<int>(states.size());
        states.push_back(std::move(fresh));
        chosen = &states.back();
      }
      chosen->unit.ops.push_back(n);
      chosen->unit.width = std::max(chosen->unit.width, g.node(n).width);
      chosen->opsThisStep.push_back(n);
      chosen->lastStep = step;
    }
  }

  for (auto& [cls, states] : pool) {
    for (UnitState& s : states) {
      const int unitIdx = static_cast<int>(binding.units.size());
      for (const NodeId n : s.unit.ops) binding.unitOf[n] = unitIdx;
      binding.units.push_back(std::move(s.unit));
    }
  }

  // ---- register allocation (left-edge) -------------------------------------
  // A value needs a register from the step after it is produced until the
  // last step that consumes it. Inputs are externally registered; outputs
  // read their producer's register.
  struct Lifetime {
    NodeId value = kInvalidNode;
    int begin = 0;  // first step the register holds the value
    int end = 0;    // last step a consumer reads it
    int width = 8;
  };

  // Step at which a node's value becomes available (transparent nodes relay
  // their producer's time).
  std::vector<int> avail(g.size(), 0);
  for (const NodeId n : g.topoOrder()) {
    if (isScheduled(g.kind(n))) {
      avail[n] = sched.stepOf(n);
    } else {
      int t = 0;
      for (const NodeId p : g.fanins(n)) t = std::max(t, avail[p]);
      avail[n] = t;
    }
  }

  std::vector<Lifetime> lifetimes;
  for (NodeId n = 0; n < g.size(); ++n) {
    if (!isScheduled(g.kind(n))) continue;
    int lastUse = avail[n];
    bool hasUse = false;
    // Uses through wires count at the wire consumer's step.
    std::vector<NodeId> stack{n};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId f : g.fanouts(v)) {
        if (g.kind(f) == OpKind::Wire) {
          stack.push_back(f);
        } else if (g.kind(f) == OpKind::Output) {
          lastUse = std::max(lastUse, sched.steps());
          hasUse = true;
        } else {
          lastUse = std::max(lastUse, sched.stepOf(f));
          hasUse = true;
        }
      }
    }
    if (!hasUse) continue;  // dead value: no register needed
    lifetimes.push_back(Lifetime{n, avail[n], lastUse, g.node(n).width});
  }

  std::sort(lifetimes.begin(), lifetimes.end(), [](const Lifetime& a, const Lifetime& b) {
    if (a.begin != b.begin) return a.begin < b.begin;
    return a.value < b.value;
  });

  std::vector<int> regFreeAt;  // per register: first step it is free again
  for (const Lifetime& lt : lifetimes) {
    int reg = -1;
    for (std::size_t r = 0; r < regFreeAt.size(); ++r) {
      if (regFreeAt[r] <= lt.begin && binding.registers[r].width == lt.width) {
        reg = static_cast<int>(r);
        break;
      }
    }
    if (reg < 0) {
      reg = static_cast<int>(binding.registers.size());
      binding.registers.push_back(RegisterInfo{reg, lt.width, {}});
      regFreeAt.push_back(0);
    }
    binding.registers[static_cast<std::size_t>(reg)].values.push_back(lt.value);
    binding.registerOf[lt.value] = reg;
    regFreeAt[static_cast<std::size_t>(reg)] = lt.end + 1;
  }

  // ---- interconnect estimate -----------------------------------------------
  // Each unit input port needs a (k-1)-deep 2:1 mux tree over its k distinct
  // sources; sources are producer registers or primary inputs/constants.
  for (const FunctionalUnit& unit : binding.units) {
    const std::size_t ports = unit.cls == ResourceClass::Mux ? 3 : 2;
    for (std::size_t port = 0; port < ports; ++port) {
      std::vector<NodeId> sources;
      for (const NodeId op : unit.ops) {
        const auto operands = g.fanins(op);
        if (port >= operands.size()) continue;
        NodeId src = operands[port];
        while (g.kind(src) == OpKind::Wire) src = g.fanins(src)[0];
        if (std::find(sources.begin(), sources.end(), src) == sources.end())
          sources.push_back(src);
      }
      if (sources.size() > 1)
        binding.interconnectMuxes += static_cast<int>(sources.size()) - 1;
    }
  }

  return binding;
}

AreaModel estimateArea(const Binding& binding, const UnitCosts& costs) {
  AreaModel area;
  for (const FunctionalUnit& u : binding.units)
    area.unitArea += costs.area[unitIndex(u.cls)] * (static_cast<double>(u.width) / 8.0);
  for (const RegisterInfo& r : binding.registers)
    area.registerArea += 4.0 * r.width;  // ~4 NAND2-equivalents per enabled DFF bit
  area.interconnectArea += 3.0 * 8.0 * binding.interconnectMuxes;  // 2:1 mux word
  return area;
}

}  // namespace pmsched
