#pragma once
// Design-space exploration: one latency sweep, one warm oracle run.
//
// The paper evaluates its transform one (latency, resources) point at a
// time; re-running the whole pipeline per sweep point costs
// O(points × full-run). This driver amortizes the sweep: it runs the full
// pipeline only until the step budget SATURATES — the point past which the
// transform and the shared-gating pass provably make identical decisions at
// every looser budget — and from there on reuses the committed base design,
// re-running only the steps-dependent tail (resource minimization, list
// schedule, binding, controller) per point, with exact dominance pruning of
// points that cannot enter the latency/power/area Pareto front.
//
// The saturation certificate (docs/EXPLORE.md has the monotonicity
// argument):
//   * the run did not degrade,
//   * managedCount() equals the graph's full candidate count (every mux
//     with gated work was managed — no slack rejections in the transform),
//   * the shared-gating pass rejected zero probeworthy candidates for slack.
// Feasibility of a fixed control-edge set is monotone in the step budget,
// so past a saturated point every probe both passes repeat verbatim —
// the design differs only in `steps` and the recomputed time frames, and
// the activation analysis (which depends on neither) is byte-identical.
// Every emitted point is therefore bit-identical to the one-shot `pmsched`
// run at that step budget; explorePerPointReference() is the retained
// per-point loop the differential tests pin that claim against.

#include <string>
#include <vector>

#include "cdfg/graph.hpp"
#include "sched/power_transform.hpp"
#include "server/service.hpp"

namespace pmsched {

class RunBudget;

/// One resolved sweep request (the CLI's --explore-* flags / the server's
/// "explore" op).
struct ExploreRequest {
  Graph graph;
  int minSteps = 0;  ///< first step budget; 0 = the critical path length
  int maxSteps = 0;  ///< last step budget; 0 = minSteps + span
  int span = 8;      ///< sweep width when maxSteps is derived
  MuxOrdering ordering = MuxOrdering::OutputFirst;
  bool optimal = false;
  bool shared = true;
};

/// One Pareto-front point. `summary` is exactly the one-shot run's summary
/// at this step budget; power/area are the exact doubles the dominance rule
/// compared (rendered via the summary's fixed-digit strings).
struct ExplorePoint {
  int steps = 0;
  DesignSummary summary;
  double power = 0;  ///< datapath power reduction % (higher is better)
  double area = 0;   ///< UnitCosts::defaults().costOf(minimized units)
};

/// A sweep point that produced no design: infeasible step budget, a
/// controller-synthesis failure at that budget (the one-shot run fails the
/// same deterministic way), or an injected "explore-point" fault. Typed, so
/// callers can tell them apart.
struct ExploreSkip {
  int steps = 0;
  std::string kind;  ///< "infeasible" | "synthesis" | "fault"
  std::string note;
};

/// Sweep accounting. Deterministic and thread-count-invariant — the JSON
/// these render into is byte-diffed across thread counts in CI.
struct ExploreStats {
  int pointsSwept = 0;     ///< points entered (skips included, pruned included)
  int fullRuns = 0;        ///< full pipeline runs (pre-saturation)
  int amortizedRuns = 0;   ///< tail-only runs from the saturated base
  int pruned = 0;          ///< saturated points dominance-pruned before the tail
  int dominated = 0;       ///< fully evaluated points kept off the front
  int candidates = 0;      ///< muxes with gated work (the certificate target)
  int saturationSteps = -1;   ///< first saturated budget (-1: never saturated)
  int relaxedBoundSteps = -1; ///< min budget where ALL candidate edges fit jointly
};

struct ExploreResult {
  std::string circuit;
  int ops = 0;
  int criticalPath = 0;
  int minSteps = 0;
  int maxSteps = 0;
  std::string mode;  ///< "amortized" | "per-point"
  MuxOrdering ordering = MuxOrdering::OutputFirst;
  bool optimal = false;
  bool shared = true;
  std::vector<ExplorePoint> front;  ///< ascending steps; append-only Pareto front
  std::vector<ExploreSkip> skipped;
  ExploreStats stats;
  /// Budget exhausted mid-sweep: the front is the clean prefix of the
  /// unbudgeted sweep's front (points are dropped whole, never emitted
  /// half-finished) and the reason is "explore".
  bool degraded = false;
  std::string degradeReason;
};

/// The amortized sweep. Budget exhaustion stops the sweep at a monotone
/// prefix; an infeasible point or an injected explore-point fault skips that
/// point (typed) and keeps sweeping. Throws only on malformed graphs.
[[nodiscard]] ExploreResult exploreDesignSpace(const ExploreRequest& req,
                                               const RunBudget* budget = nullptr);

/// The retained per-point loop: every point is a full runDesignJob(). Same
/// admission rule, same JSON shape (mode "per-point") — the executable
/// specification the differential tests and the bench baseline run against.
[[nodiscard]] ExploreResult explorePerPointReference(const ExploreRequest& req,
                                                     const RunBudget* budget = nullptr);

/// The whole result as one compact JSON object. Contains no timing or
/// host-dependent fields: two runs at different thread counts render
/// byte-identical documents (the CI explore-smoke job diffs them).
[[nodiscard]] std::string renderExploreJson(const ExploreResult& res);

/// Just the "front" array — what the amortized-vs-reference differential
/// byte-compares (the full documents differ in mode and stats by design).
[[nodiscard]] std::string renderExploreFrontJson(const ExploreResult& res);

}  // namespace pmsched
