#include "explore/explore.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "cdfg/analysis.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/resources.hpp"
#include "sched/timeframe.hpp"
#include "support/fault_injector.hpp"
#include "support/json.hpp"
#include "support/run_budget.hpp"

namespace pmsched {

namespace {

/// Muxes whose gated sets contain at least one scheduled operation — the
/// transform's candidate list (greedy and optimal agree on it; ordering
/// only permutes it). Gated sets depend on data edges alone, so the count
/// computed here on the INPUT graph matches what the transform sees.
int fullCandidateCount(const Graph& g) {
  const std::vector<NodeMask> cones = faninConeMasks(g);
  int count = 0;
  for (const NodeId m : g.nodesOfKind(OpKind::Mux)) {
    const GatedSets sets = computeGatedSets(g, m, cones);
    const auto scheduled = [&](const std::vector<NodeId>& nodes) {
      return std::any_of(nodes.begin(), nodes.end(),
                         [&](NodeId n) { return isScheduled(g.kind(n)); });
    };
    if (scheduled(sets.gatedTrue) || scheduled(sets.gatedFalse)) ++count;
  }
  return count;
}

/// Smallest budget in [minSteps, maxSteps] at which the UNION of every
/// candidate's control edges is jointly feasible. Feasibility of an edge
/// set is monotone in steps and every committed set is a subset of this
/// union, so the transform is certain to saturate at or before this bound —
/// a cheap predictive stat (the sweep itself uses the empirical
/// certificate). -1 when even maxSteps cannot fit the union.
int relaxedBoundSteps(const Graph& g, int minSteps, int maxSteps) {
  const std::vector<NodeMask> cones = faninConeMasks(g);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const NodeId m : g.nodesOfKind(OpKind::Mux)) {
    const GatedSets sets = computeGatedSets(g, m, cones);
    const auto scheduled = [&](const std::vector<NodeId>& nodes) {
      return std::any_of(nodes.begin(), nodes.end(),
                         [&](NodeId n) { return isScheduled(g.kind(n)); });
    };
    if (!scheduled(sets.gatedTrue) && !scheduled(sets.gatedFalse)) continue;
    const NodeId ctrl = traceSelectProducer(g, m);
    if (!isScheduled(g.kind(ctrl))) continue;  // PI-driven select: no edges
    for (const NodeId t : sets.topTrue) edges.emplace_back(ctrl, t);
    for (const NodeId t : sets.topFalse) edges.emplace_back(ctrl, t);
  }
  // Feasibility is monotone in the budget, so the least feasible s is found
  // by binary search instead of a linear scan over the sweep range.
  const auto feasibleAt = [&](int s) {
    return computeTimeFrames(g, s, edges, LatencyModel::unit()).feasible(g);
  };
  if (!feasibleAt(maxSteps)) return -1;
  int lo = minSteps, hi = maxSteps;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (feasibleAt(mid)) hi = mid;
    else lo = mid + 1;
  }
  return lo;
}

/// An earlier front point already has strictly better latency, so it
/// dominates a later candidate as soon as it is at least as good on both
/// remaining axes.
bool dominatedByFront(const std::vector<ExplorePoint>& front, double power, double area) {
  return std::any_of(front.begin(), front.end(), [&](const ExplorePoint& p) {
    return p.power >= power && p.area <= area;
  });
}

/// The empirical saturation certificate (see the header): a clean run that
/// managed every candidate and whose shared-gating pass rejected nothing
/// for slack repeats its decisions verbatim at every looser budget.
bool saturatedOutcome(const DesignOutcome& out, int fullCandidates) {
  return !out.summary.degraded && out.design.managedCount() == fullCandidates &&
         out.sharedGatingSlackRejects == 0;
}

void stopDegraded(ExploreResult& res, const RunBudget* budget) {
  res.degraded = true;
  res.degradeReason = "explore";
  if (budget != nullptr)
    budget->noteDegraded("explore",
                         budget->exhaustedWhy().value_or(BudgetKind::Deadline),
                         "sweep stopped; the front is a clean prefix");
}

ExploreResult runSweep(const ExploreRequest& req, const RunBudget* budget, bool amortize) {
  req.graph.validate();
  ExploreResult res;
  res.circuit = req.graph.name();
  res.ops = countOps(req.graph).totalUnits();
  res.criticalPath = criticalPathLength(req.graph);
  res.minSteps = req.minSteps > 0 ? req.minSteps : res.criticalPath;
  res.maxSteps = req.maxSteps > 0 ? req.maxSteps : res.minSteps + std::max(req.span, 0);
  res.mode = amortize ? "amortized" : "per-point";
  res.ordering = req.ordering;
  res.optimal = req.optimal;
  res.shared = req.shared;
  const int fullCandidates = fullCandidateCount(req.graph);
  res.stats.candidates = fullCandidates;
  res.stats.relaxedBoundSteps = relaxedBoundSteps(req.graph, res.minSteps, res.maxSteps);

  // The saturated base: the full outcome whose design every later point
  // copies. Its activation result is steps-independent, so basePower is the
  // EXACT power of every amortized point — which is what makes pruning on
  // (basePower, candidate area) equivalent to full evaluation.
  std::optional<DesignOutcome> base;
  double basePower = 0;
  // Area floor of the amortized tail: minimized area is non-increasing in
  // the step budget (a schedule feasible at s is feasible at s+1 with the
  // same units), so ONE minimizeResources call at maxSteps bounds every
  // remaining point from below. Once the front holds a point at or under
  // that floor, every later point is provably dominated — the sweep stops
  // paying for per-point resource minimization.
  double floorArea = 0;
  bool floorReached = false;

  for (int s = res.minSteps; s <= res.maxSteps; ++s) {
    if (budget != nullptr && budget->exhausted()) {
      stopDegraded(res, budget);
      break;
    }
    ++res.stats.pointsSwept;
    try {
      fault::point("explore-point");
    } catch (const FaultInjectedError& e) {
      res.skipped.push_back({s, "fault", e.what()});
      continue;
    }

    DesignJob job;
    job.graph = req.graph;
    job.steps = s;
    job.ordering = req.ordering;
    job.optimal = req.optimal;
    job.shared = req.shared;

    try {
      DesignOutcome out;
      if (base.has_value()) {
        if (floorReached) {
          ++res.stats.pruned;
          continue;
        }
        // Amortized point: only the steps-dependent tail can change. Prune
        // before paying for it — power is constant past saturation, so the
        // point enters the front iff its minimized area improves on it.
        const ResourceVector units = minimizeResources(base->design.graph, s);
        const double area = UnitCosts::defaults().costOf(units);
        if (dominatedByFront(res.front, basePower, area)) {
          ++res.stats.pruned;
          continue;
        }
        ++res.stats.amortizedRuns;
        out.design = base->design;
        out.design.steps = s;
        // The committed fixed point equals the from-scratch frames of the
        // already-augmented graph (the oracle invariant both passes pin).
        out.design.frames =
            computeTimeFrames(out.design.graph, s, {}, out.design.latency);
        out.sharedGated = base->sharedGated;
        out.sharedGatingSlackRejects = base->sharedGatingSlackRejects;
        out.activation = base->activation;
        FinishOptions fin;
        fin.units = &units;
        fin.reuseActivation = true;
        finishDesignJob(out, job, budget, fin);
      } else {
        ++res.stats.fullRuns;
        out = runDesignJob(job, budget);
      }

      if (budget != nullptr && budget->exhausted()) {
        // Keep the point only if it finished clean (then it is identical to
        // the unbudgeted run's); a half-budgeted result never enters the
        // front — that is what keeps the partial front a monotone prefix.
        if (!out.summary.degraded) {
          const double power = out.activation.reductionPercent(OpPowerModel::paperWeights());
          const double area = UnitCosts::defaults().costOf(out.units);
          if (!dominatedByFront(res.front, power, area))
            res.front.push_back(ExplorePoint{s, out.summary, power, area});
          else
            ++res.stats.dominated;
        }
        stopDegraded(res, budget);
        break;
      }

      const double power = out.activation.reductionPercent(OpPowerModel::paperWeights());
      const double area = UnitCosts::defaults().costOf(out.units);
      if (!dominatedByFront(res.front, power, area))
        res.front.push_back(ExplorePoint{s, out.summary, power, area});
      else
        ++res.stats.dominated;

      if (amortize && !base.has_value() && saturatedOutcome(out, fullCandidates)) {
        res.stats.saturationSteps = s;
        basePower = power;
        base.emplace(std::move(out));
        if (s < res.maxSteps)
          floorArea = UnitCosts::defaults().costOf(
              minimizeResources(base->design.graph, res.maxSteps));
      }
      // A hypothetical point at (basePower, floorArea) being dominated means
      // every remaining point (whose area is >= the floor and whose power is
      // exactly basePower) is dominated too.
      if (base.has_value() && !floorReached)
        floorReached = dominatedByFront(res.front, basePower, floorArea);
    } catch (const InfeasibleError& e) {
      res.skipped.push_back({s, "infeasible", e.what()});
    } catch (const SynthesisError& e) {
      // The one-shot run at this budget fails the same way (deterministic
      // schedule/binding/activation), so skipping typed preserves the
      // point-for-point equivalence: the point exists in neither world.
      res.skipped.push_back({s, "synthesis", e.what()});
    }
  }
  return res;
}

}  // namespace

ExploreResult exploreDesignSpace(const ExploreRequest& req, const RunBudget* budget) {
  return runSweep(req, budget, /*amortize=*/true);
}

ExploreResult explorePerPointReference(const ExploreRequest& req, const RunBudget* budget) {
  return runSweep(req, budget, /*amortize=*/false);
}

namespace {

const char* orderingName(MuxOrdering ordering) {
  switch (ordering) {
    case MuxOrdering::OutputFirst: return "output";
    case MuxOrdering::InputFirst: return "input";
    case MuxOrdering::BySavings: return "savings";
  }
  return "output";
}

void writeFront(JsonWriter& w, const ExploreResult& res) {
  w.beginArray();
  for (const ExplorePoint& p : res.front) {
    w.beginObject()
        .key("steps").value(p.steps)
        .key("managed").value(p.summary.managed)
        .key("shared_gated").value(p.summary.sharedGated)
        .key("units").value(p.summary.units)
        .key("area").value(p.area)
        .key("reduction_percent").value(p.summary.reductionPercent)
        .key("degraded").value(p.summary.degraded);
    if (p.summary.degraded) w.key("degrade_reason").value(p.summary.degradeReason);
    w.endObject();
  }
  w.endArray();
}

}  // namespace

std::string renderExploreJson(const ExploreResult& res) {
  JsonWriter w;
  w.beginObject()
      .key("circuit").value(res.circuit)
      .key("ops").value(res.ops)
      .key("critical_path").value(res.criticalPath)
      .key("min_steps").value(res.minSteps)
      .key("max_steps").value(res.maxSteps)
      .key("mode").value(res.mode)
      .key("ordering").value(orderingName(res.ordering))
      .key("optimal").value(res.optimal)
      .key("shared").value(res.shared)
      .key("front");
  writeFront(w, res);
  w.key("skipped").beginArray();
  for (const ExploreSkip& skip : res.skipped) {
    w.beginObject()
        .key("steps").value(skip.steps)
        .key("kind").value(skip.kind)
        .key("note").value(skip.note)
        .endObject();
  }
  w.endArray();
  w.key("stats").beginObject()
      .key("points_swept").value(res.stats.pointsSwept)
      .key("full_runs").value(res.stats.fullRuns)
      .key("amortized_runs").value(res.stats.amortizedRuns)
      .key("pruned").value(res.stats.pruned)
      .key("dominated").value(res.stats.dominated)
      .key("candidates").value(res.stats.candidates)
      .key("saturation_steps").value(res.stats.saturationSteps)
      .key("relaxed_bound_steps").value(res.stats.relaxedBoundSteps)
      .endObject();
  w.key("degraded").value(res.degraded);
  if (res.degraded) w.key("degrade_reason").value(res.degradeReason);
  w.endObject();
  return w.str();
}

std::string renderExploreFrontJson(const ExploreResult& res) {
  JsonWriter w;
  writeFront(w, res);
  return w.str();
}

}  // namespace pmsched
