#pragma once
// VHDL emission: the paper's flow generated "VHDL code for the controller
// as well as the datapath corresponding to the power-management-aware
// schedule" and pushed it through Synopsys. We emit the same two entities
// plus a self-checking testbench whose expected outputs come from the CDFG
// interpreter.
//
// The datapath is emitted at value level (one register per live value with
// a load enable, combinational operator expressions); the controller is a
// state-per-control-step FSM whose load enables are ANDed with the
// activation conditions over captured status bits. Unit-level sharing is
// what src/rtl builds for power measurement; a synthesis tool re-shares
// this RTL equivalently.

#include <string>

#include "ctrl/controller.hpp"
#include "sched/schedule.hpp"

namespace pmsched {
namespace vhdl {

/// Datapath entity `<name>_datapath`: registers with load enables, operator
/// network, status-bit outputs for every captured select.
[[nodiscard]] std::string emitDatapath(const PowerManagedDesign& design, const Schedule& sched,
                                       const ControllerSpec& ctrl);

/// Controller entity `<name>_controller`: state ring, gated load enables.
[[nodiscard]] std::string emitController(const PowerManagedDesign& design,
                                         const Schedule& sched, const ControllerSpec& ctrl);

/// Self-checking testbench: drives `vectors` random samples (seeded) and
/// asserts the interpreter's outputs.
[[nodiscard]] std::string emitTestbench(const PowerManagedDesign& design, const Schedule& sched,
                                        const ControllerSpec& ctrl, int vectors,
                                        std::uint64_t seed);

}  // namespace vhdl
}  // namespace pmsched
