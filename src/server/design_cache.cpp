#include "server/design_cache.hpp"

#include <algorithm>
#include <set>

#include "server/cache_persist.hpp"
#include "support/fault_injector.hpp"

namespace pmsched {

namespace {

// splitmix64 finalizer — same avalanche the canonicalizer uses; good enough
// to fold the small option fields into the graph hash.
std::uint64_t avalanche(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

DesignCache::DesignCache(std::size_t maxEntries) : maxEntries_(maxEntries) {}

std::uint64_t DesignCache::keyHash(std::uint64_t formHash,
                                   const DesignCacheOptions& options) {
  std::uint64_t h = formHash;
  h = avalanche(h ^ static_cast<std::uint64_t>(options.steps));
  h = avalanche(h ^ (static_cast<std::uint64_t>(options.ordering) << 8));
  h = avalanche(h ^ (options.optimal ? 0x11ULL : 0x22ULL));
  h = avalanche(h ^ (options.shared ? 0x44ULL : 0x88ULL));
  return h;
}

std::optional<CachedDesign> DesignCache::lookup(const CanonicalForm& form,
                                                const DesignCacheOptions& options) {
  if (maxEntries_ == 0) return std::nullopt;
  const std::uint64_t key = keyHash(form.hash, options);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, end] = entries_.equal_range(key);
  for (; it != end; ++it) {
    Entry& e = it->second;
    // Full-text comparison: the hash only routes here, it never decides.
    if (e.options == options && e.canonicalText == form.text) {
      ++stats_.hits;
      lru_.splice(lru_.end(), lru_, e.lruIt);  // mark most-recently-used
      return e.value;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

std::optional<std::string> DesignCache::lookupExact(const std::string& key) {
  if (maxEntries_ == 0) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = exact_.find(key);
  if (it == exact_.end()) return std::nullopt;
  ++stats_.hits;
  ++stats_.exactHits;
  exactLru_.splice(exactLru_.end(), exactLru_, it->second.lruIt);
  return it->second.resultJson;
}

void DesignCache::insertExact(const std::string& key, const std::string& resultJson) {
  if (maxEntries_ == 0) return;
  try {
    fault::point("cache-insert");
  } catch (const FaultInjectedError&) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.insertFailures;
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (exact_.find(key) != exact_.end()) return;  // insert race — keep the first
  exactLru_.push_back(key);
  exact_.emplace(key, ExactEntry{resultJson, std::prev(exactLru_.end())});
  while (exact_.size() > maxEntries_ && !exactLru_.empty()) {
    exact_.erase(exactLru_.front());
    exactLru_.pop_front();
    ++stats_.evictions;
  }
}

void DesignCache::insert(const CanonicalForm& form, const DesignCacheOptions& options,
                         const DesignOutcome& outcome) {
  if (maxEntries_ == 0) return;
  if (outcome.summary.degraded) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rejectedDegraded;
    return;
  }
  try {
    fault::point("cache-insert");
  } catch (const FaultInjectedError&) {
    // Clean degradation: the result is still served to the requester, it
    // just isn't warmed. Nothing in the cache was touched yet.
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.insertFailures;
    return;
  }

  Entry entry;
  entry.formHash = form.hash;
  entry.canonicalText = form.text;
  entry.options = options;
  entry.value.summary = outcome.summary;
  entry.value.ctrlEdges = encodeCtrlEdges(form, outcome.design.graph);

  const std::uint64_t key = keyHash(form.hash, options);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, end] = entries_.equal_range(key);
  for (; it != end; ++it) {
    if (it->second.options == options && it->second.canonicalText == form.text)
      return;  // lost an insert race for the same design — keep the first
  }
  lru_.push_back(key);
  entry.lruIt = std::prev(lru_.end());

  if (persist_) {
    // Journal under the cache lock: an insert is already a miss (the slow
    // path), and serializing with the emplace keeps journal order == cache
    // order. A failed append only costs durability, never the live entry.
    PersistRecord record;
    record.hash = entry.formHash;
    record.canonicalText = entry.canonicalText;
    record.options = entry.options;
    record.value = entry.value;
    if (!persist_->append(record)) {
      ++stats_.journalAppendFailures;
    } else if (persist_->appendsSinceSnapshot() >= persist_->compactEvery()) {
      entries_.emplace(key, std::move(entry));
      ++stats_.inserts;
      if (!persist_->writeSnapshot(exportRecordsLocked())) ++stats_.journalAppendFailures;
      evictToCapacityLocked();
      return;
    }
  }

  entries_.emplace(key, std::move(entry));
  ++stats_.inserts;
  evictToCapacityLocked();
}

void DesignCache::evictToCapacityLocked() {
  while (entries_.size() > maxEntries_ && !lru_.empty()) {
    const std::uint64_t coldest = lru_.front();
    auto [eit, eend] = entries_.equal_range(coldest);
    for (; eit != eend; ++eit) {
      if (eit->second.lruIt == lru_.begin()) {
        entries_.erase(eit);
        break;
      }
    }
    lru_.pop_front();
    ++stats_.evictions;
  }
}

void DesignCache::insertRestoredLocked(PersistRecord&& record) {
  // Restores skip the "cache-insert" fault site and the journal: they came
  // FROM the journal, and re-appending them would double the file per boot.
  const std::uint64_t key = keyHash(record.hash, record.options);
  auto [it, end] = entries_.equal_range(key);
  for (; it != end; ++it) {
    if (it->second.options == record.options &&
        it->second.canonicalText == record.canonicalText)
      return;  // snapshot + journal overlap after a mid-compaction crash
  }
  Entry entry;
  entry.formHash = record.hash;
  entry.canonicalText = std::move(record.canonicalText);
  entry.options = record.options;
  entry.value = std::move(record.value);
  lru_.push_back(key);
  entry.lruIt = std::prev(lru_.end());
  entries_.emplace(key, std::move(entry));
  evictToCapacityLocked();
}

std::vector<PersistRecord> DesignCache::exportRecordsLocked() const {
  // Coldest-first (lru_ front) so replaying the snapshot in file order
  // rebuilds the same recency ranking the cache had when it was written.
  // Same-bucket coincidences make the key ambiguous, so match entries to
  // LRU positions by iterator identity; n is bounded by maxEntries_, and
  // compaction/drain are off the request path, so O(n^2) is fine here.
  std::vector<PersistRecord> records;
  records.reserve(entries_.size());
  for (auto lruIt = lru_.begin(); lruIt != lru_.end(); ++lruIt) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.lruIt == lruIt) {
        PersistRecord record;
        record.hash = it->second.formHash;
        record.canonicalText = it->second.canonicalText;
        record.options = it->second.options;
        record.value = it->second.value;
        records.push_back(std::move(record));
        break;
      }
    }
  }
  return records;
}

void DesignCache::enablePersistence(std::unique_ptr<CachePersistence> persist) {
  if (maxEntries_ == 0 || !persist) return;
  CachePersistence::LoadResult loaded = persist->load();
  std::lock_guard<std::mutex> lock(mutex_);
  persist_ = std::move(persist);
  for (PersistRecord& record : loaded.records) insertRestoredLocked(std::move(record));
  stats_.journalReplayed += loaded.replayed;
  stats_.journalSkipped += loaded.skipped;
}

bool DesignCache::flushSnapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!persist_) return true;
  return persist_->writeSnapshot(exportRecordsLocked());
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> DesignCache::encodeCtrlEdges(
    const CanonicalForm& form, const Graph& designGraph) {
  // Walk exactly as saveGraphText does — source id ascending, per-source
  // insertion order — so replaying this sequence reproduces the design
  // text byte-for-byte.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (NodeId n = 0; n < designGraph.size(); ++n) {
    for (NodeId succ : designGraph.controlSuccessors(n))
      edges.emplace_back(form.indexOf[n], form.indexOf[succ]);
  }
  return edges;
}

Graph DesignCache::replayDesignGraph(const CachedDesign& hit, const CanonicalForm& form,
                                     const Graph& requestGraph) {
  Graph out = requestGraph;
  // Requests may arrive with control edges already present (re-submitted
  // designs); the cached sequence includes them, so skip duplicates while
  // keeping the stored relative order for the new ones — addControlEdge
  // appends, which lands each per-source list in the original order.
  std::set<std::pair<NodeId, NodeId>> present;
  for (NodeId n = 0; n < out.size(); ++n)
    for (NodeId succ : out.controlSuccessors(n)) present.emplace(n, succ);
  for (const auto& [fromIdx, toIdx] : hit.ctrlEdges) {
    const NodeId from = form.order[fromIdx];
    const NodeId to = form.order[toIdx];
    if (present.emplace(from, to).second) out.addControlEdge(from, to);
  }
  return out;
}

DesignCacheStats DesignCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t DesignCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace pmsched
