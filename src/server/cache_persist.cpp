#include "server/cache_persist.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "support/fault_injector.hpp"

namespace pmsched {

namespace {

constexpr char kMagic[8] = {'P', 'M', 'S', 'C', 'A', 'C', 'H', 'E'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = sizeof(kMagic) + sizeof(std::uint32_t);

/// Frames larger than this are rejected on decode: no legitimate record
/// approaches it, and it stops a corrupt length field from asking for
/// gigabytes before the CRC gets a chance to veto.
constexpr std::uint32_t kMaxPayloadBytes = 64u * 1024u * 1024u;

// --- little-endian primitive codec ---------------------------------------

void putU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void putU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void putStr(std::string& out, std::string_view s) {
  putU32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

bool getU32(std::string_view data, std::size_t& off, std::uint32_t& v) {
  if (data.size() - off < 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[off + i])) << (8 * i);
  off += 4;
  return true;
}

bool getU64(std::string_view data, std::size_t& off, std::uint64_t& v) {
  if (data.size() - off < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[off + i])) << (8 * i);
  off += 8;
  return true;
}

bool getI32(std::string_view data, std::size_t& off, int& v) {
  std::uint32_t u = 0;
  if (!getU32(data, off, u)) return false;
  v = static_cast<int>(u);
  return true;
}

bool getU8(std::string_view data, std::size_t& off, std::uint8_t& v) {
  if (off >= data.size()) return false;
  v = static_cast<std::uint8_t>(data[off++]);
  return true;
}

bool getStr(std::string_view data, std::size_t& off, std::string& s) {
  std::uint32_t len = 0;
  if (!getU32(data, off, len)) return false;
  if (data.size() - off < len) return false;
  s.assign(data.substr(off, len));
  off += len;
  return true;
}

// --- payload codec --------------------------------------------------------

std::string encodePayload(const PersistRecord& r) {
  std::string p;
  putU64(p, r.hash);
  putU32(p, static_cast<std::uint32_t>(r.options.steps));
  p.push_back(static_cast<char>(r.options.ordering));
  p.push_back(r.options.optimal ? 1 : 0);
  p.push_back(r.options.shared ? 1 : 0);
  const DesignSummary& s = r.value.summary;
  putU32(p, static_cast<std::uint32_t>(s.ops));
  putU32(p, static_cast<std::uint32_t>(s.criticalPath));
  putU32(p, static_cast<std::uint32_t>(s.steps));
  putU32(p, static_cast<std::uint32_t>(s.managed));
  putU32(p, static_cast<std::uint32_t>(s.sharedGated));
  putStr(p, s.units);
  putStr(p, s.reductionPercent);
  putStr(p, r.canonicalText);
  putU32(p, static_cast<std::uint32_t>(r.value.ctrlEdges.size()));
  for (const auto& [from, to] : r.value.ctrlEdges) {
    putU32(p, from);
    putU32(p, to);
  }
  return p;
}

std::optional<PersistRecord> decodePayload(std::string_view p) {
  PersistRecord r;
  std::size_t off = 0;
  std::uint8_t ordering = 0, optimal = 0, shared = 0;
  if (!getU64(p, off, r.hash) || !getI32(p, off, r.options.steps) ||
      !getU8(p, off, ordering) || !getU8(p, off, optimal) || !getU8(p, off, shared))
    return std::nullopt;
  if (ordering > static_cast<std::uint8_t>(MuxOrdering::BySavings)) return std::nullopt;
  r.options.ordering = static_cast<MuxOrdering>(ordering);
  r.options.optimal = optimal != 0;
  r.options.shared = shared != 0;
  DesignSummary& s = r.value.summary;
  if (!getI32(p, off, s.ops) || !getI32(p, off, s.criticalPath) || !getI32(p, off, s.steps) ||
      !getI32(p, off, s.managed) || !getI32(p, off, s.sharedGated) ||
      !getStr(p, off, s.units) || !getStr(p, off, s.reductionPercent) ||
      !getStr(p, off, r.canonicalText))
    return std::nullopt;
  std::uint32_t edgeCount = 0;
  if (!getU32(p, off, edgeCount)) return std::nullopt;
  if (static_cast<std::size_t>(edgeCount) * 8 != p.size() - off) return std::nullopt;
  r.value.ctrlEdges.reserve(edgeCount);
  for (std::uint32_t i = 0; i < edgeCount; ++i) {
    std::uint32_t from = 0, to = 0;
    if (!getU32(p, off, from) || !getU32(p, off, to)) return std::nullopt;
    r.value.ctrlEdges.emplace_back(from, to);
  }
  // Only persisted-as-finished entries are valid; degraded results are
  // never written, so a decoded record is always replayable.
  s.degraded = false;
  s.degradeReason.clear();
  return r;
}

bool readFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return in.good() || in.eof();
}

/// Decode records from `data[off..]` into `out`, stopping at the first
/// truncated/corrupt frame. Returns true when the whole region decoded.
bool decodeRegion(std::string_view data, std::size_t off, std::vector<PersistRecord>& out) {
  while (off < data.size()) {
    std::size_t next = off;
    std::optional<PersistRecord> record = decodePersistRecord(data, next);
    if (!record) return false;
    out.push_back(std::move(*record));
    off = next;
  }
  return true;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  // IEEE CRC-32 (reflected polynomial 0xEDB88320), table built on first use.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data)
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::string encodePersistRecord(const PersistRecord& record) {
  const std::string payload = encodePayload(record);
  std::string frame;
  frame.reserve(8 + payload.size());
  putU32(frame, static_cast<std::uint32_t>(payload.size()));
  putU32(frame, crc32(payload));
  frame.append(payload);
  return frame;
}

std::optional<PersistRecord> decodePersistRecord(std::string_view data, std::size_t& offset) {
  std::size_t off = offset;
  std::uint32_t len = 0, crc = 0;
  if (!getU32(data, off, len) || !getU32(data, off, crc)) return std::nullopt;
  if (len > kMaxPayloadBytes || data.size() - off < len) return std::nullopt;
  const std::string_view payload = data.substr(off, len);
  if (crc32(payload) != crc) return std::nullopt;
  std::optional<PersistRecord> record = decodePayload(payload);
  if (!record) return std::nullopt;
  offset = off + len;
  return record;
}

CachePersistence::CachePersistence(std::string path, std::size_t compactEvery)
    : path_(std::move(path)),
      journalPath_(path_ + ".journal"),
      compactEvery_(compactEvery == 0 ? 1 : compactEvery) {}

CachePersistence::LoadResult CachePersistence::load() {
  LoadResult result;
  appendsSinceSnapshot_ = 0;
  try {
    fault::point("cache-snapshot-load");
  } catch (const FaultInjectedError&) {
    // Clean degradation: a load failure is only a cold start. The files are
    // left alone; the next compaction rewrites them from live state.
    ++result.skipped;
    return result;
  }

  std::string data;
  if (readFile(path_, data) && !data.empty()) {
    const bool headerOk = data.size() >= kHeaderSize &&
                          std::memcmp(data.data(), kMagic, sizeof(kMagic)) == 0;
    std::uint32_t version = 0;
    std::size_t off = sizeof(kMagic);
    if (headerOk && getU32(data, off, version) && version == kVersion) {
      if (!decodeRegion(data, kHeaderSize, result.records)) ++result.skipped;
    } else {
      ++result.skipped;  // unusable snapshot — the journal may still help
    }
  }
  if (readFile(journalPath_, data) && !data.empty()) {
    if (!decodeRegion(data, 0, result.records)) ++result.skipped;
  }
  result.replayed = result.records.size();
  return result;
}

bool CachePersistence::append(const PersistRecord& record) {
  try {
    fault::point("cache-journal-write");
  } catch (const FaultInjectedError&) {
    return false;  // entry not durable; the live cache is unaffected
  }
  std::ofstream out(journalPath_, std::ios::binary | std::ios::app);
  if (!out) return false;
  const std::string frame = encodePersistRecord(record);
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out.flush();
  if (!out) return false;
  ++appendsSinceSnapshot_;
  return true;
}

bool CachePersistence::writeSnapshot(const std::vector<PersistRecord>& records) {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(kMagic, sizeof(kMagic));
    std::string header;
    putU32(header, kVersion);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    for (const PersistRecord& r : records) {
      const std::string frame = encodePersistRecord(r);
      out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    }
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  // Truncate the journal only now that the snapshot holds its contents — a
  // crash between the two steps merely replays duplicates, loses nothing.
  std::ofstream(journalPath_, std::ios::binary | std::ios::trunc);
  appendsSinceSnapshot_ = 0;
  return true;
}

}  // namespace pmsched
