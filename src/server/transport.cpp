#include "server/transport.hpp"

#include <istream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "server/server.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <cerrno>
#include <cstring>
#endif

namespace pmsched {

int serveStdio(ServerCore& core, std::istream& in, std::ostream& out) {
  std::mutex writeMutex;  // design responses arrive from worker threads
  auto sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(writeMutex);
    out << line << '\n';
    out.flush();
  };
  std::string line;
  bool serving = true;
  while (serving && std::getline(in, line)) {
    if (line.empty()) continue;  // blank lines between frames are allowed
    serving = core.submitFrame(line, sink);
  }
  // EOF (or shutdown): let every admitted request finish and respond
  // before the process exits — no request is ever silently dropped.
  core.waitIdle();
  return 0;
}

#if defined(__unix__) || defined(__APPLE__)

namespace {

/// One connection: assemble '\n'-delimited frames from the byte stream and
/// submit them; responses are written back under a per-connection mutex.
void serveConnection(ServerCore& core, int fd, std::size_t maxBuffered) {
  std::mutex writeMutex;
  auto sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(writeMutex);
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;  // peer gone; the request result is simply lost
      off += static_cast<std::size_t>(n);
    }
  };

  std::string buffer;
  char chunk[4096];
  bool serving = true;
  while (serving) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;  // EOF or error ends the connection
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty()) serving = core.submitFrame(line, sink);
      if (!serving) break;
    }
    buffer.erase(0, start);
    // A frame that never terminates would buffer forever — reject it as a
    // protocol error and drop the connection (the stream is unframeable
    // from here on).
    if (serving && maxBuffered != 0 && buffer.size() > maxBuffered) {
      sink(makeErrorResponse("null", ServerErrorCategory::Protocol,
                             "unterminated frame exceeds " + std::to_string(maxBuffered) +
                                 " buffered bytes"));
      break;
    }
  }
  // Workers may still hold this connection's sink (it captures fd and the
  // write mutex by reference) — drain them before tearing either down.
  core.waitIdle();
  ::close(fd);
}

}  // namespace

int serveUnixSocket(ServerCore& core, const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path)
    throw std::runtime_error("socket path too long: '" + path + "'");
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) throw std::runtime_error("cannot create socket: " + std::string(std::strerror(errno)));
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(listener);
    throw std::runtime_error("cannot bind '" + path + "': " + std::strerror(err));
  }
  if (::listen(listener, 16) != 0) {
    const int err = errno;
    ::close(listener);
    throw std::runtime_error("cannot listen on '" + path + "': " + std::strerror(err));
  }

  // Frames are capped by the core's limit; allow double for the transport
  // buffer so the cap itself produces the typed response, not a disconnect.
  const std::size_t maxBuffered = 2 * (1u << 20);
  std::vector<std::thread> connections;
  while (!core.shutdownRequested()) {
    pollfd pfd{listener, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);  // wake to re-check shutdown
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    connections.emplace_back([&core, fd, maxBuffered] { serveConnection(core, fd, maxBuffered); });
  }
  for (std::thread& t : connections) t.join();
  core.waitIdle();
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

#else

int serveUnixSocket(ServerCore&, const std::string& path) {
  throw std::runtime_error("unix sockets are not supported on this platform ('" + path +
                           "'); use --serve with stdio");
}

#endif

}  // namespace pmsched
