#include "server/transport.hpp"

#include <atomic>
#include <istream>
#include <mutex>
#include <ostream>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "server/server.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <cerrno>
#include <cstring>
#endif

namespace pmsched {

namespace {

std::atomic<bool> globalDrain{false};

}  // namespace

void requestGlobalDrain() { globalDrain.store(true, std::memory_order_relaxed); }
bool globalDrainRequested() { return globalDrain.load(std::memory_order_relaxed); }
void clearGlobalDrain() { globalDrain.store(false, std::memory_order_relaxed); }

int serveStdio(ServerCore& core, std::istream& in, std::ostream& out) {
  std::mutex writeMutex;  // design responses arrive from worker threads
  auto sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(writeMutex);
    out << line << '\n';
    out.flush();
  };
  std::string line;
  bool serving = true;
  // A signal mid-getline fails the stream with EINTR (no SA_RESTART), so
  // every exit from this loop — EOF, shutdown op, SIGTERM/SIGINT — lands in
  // the same drain below.
  while (serving && !globalDrainRequested() && std::getline(in, line)) {
    if (line.empty()) continue;  // blank lines between frames are allowed
    serving = core.submitFrame(line, sink);
  }
  // One drain path: every admitted request is answered (typed, if the drain
  // deadline fails it out of the queue) and the cache snapshot is flushed —
  // no request is ever silently dropped, and the exit code stays 0.
  core.drain();
  return 0;
}

#if defined(__unix__) || defined(__APPLE__)

namespace {

/// Open-connection registry: drain must unblock connection threads parked
/// in recv() (an idle client would otherwise stall the listener's join
/// forever). shutdownAll() half-closes the read side; recv returns 0 and
/// the connection falls into its normal teardown. remove() happens BEFORE
/// close() so the registry never touches a recycled descriptor.
class ConnectionRegistry {
 public:
  void add(int fd) {
    std::lock_guard<std::mutex> lock(mutex_);
    fds_.insert(fd);
  }
  void remove(int fd) {
    std::lock_guard<std::mutex> lock(mutex_);
    fds_.erase(fd);
  }
  void shutdownAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : fds_) ::shutdown(fd, SHUT_RD);
  }

 private:
  std::mutex mutex_;
  std::set<int> fds_;
};

/// One connection: assemble '\n'-delimited frames from the byte stream and
/// submit them; responses are written back under a per-connection mutex.
void serveConnection(ServerCore& core, ConnectionRegistry& registry, int fd,
                     std::size_t maxBuffered) {
  std::mutex writeMutex;
  auto sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(writeMutex);
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;  // peer gone; the request result is simply lost
      off += static_cast<std::size_t>(n);
    }
  };

  std::string buffer;
  char chunk[4096];
  bool serving = true;
  while (serving) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;  // EOF or error ends the connection
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty()) serving = core.submitFrame(line, sink);
      if (!serving) break;
    }
    buffer.erase(0, start);
    // A frame that never terminates would buffer forever — reject it as a
    // protocol error and drop the connection (the stream is unframeable
    // from here on).
    if (serving && maxBuffered != 0 && buffer.size() > maxBuffered) {
      sink(makeErrorResponse("null", ServerErrorCategory::Protocol,
                             "unterminated frame exceeds " + std::to_string(maxBuffered) +
                                 " buffered bytes"));
      break;
    }
  }
  // Workers may still hold this connection's sink (it captures fd and the
  // write mutex by reference) — drain them before tearing either down.
  core.waitIdle();
  registry.remove(fd);
  ::close(fd);
}

}  // namespace

int serveUnixSocket(ServerCore& core, const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path)
    throw std::runtime_error("socket path too long: '" + path + "'");
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) throw std::runtime_error("cannot create socket: " + std::string(std::strerror(errno)));
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(listener);
    throw std::runtime_error("cannot bind '" + path + "': " + std::strerror(err));
  }
  if (::listen(listener, 16) != 0) {
    const int err = errno;
    ::close(listener);
    throw std::runtime_error("cannot listen on '" + path + "': " + std::strerror(err));
  }

  // Frames are capped by the core's limit; allow double for the transport
  // buffer so the cap itself produces the typed response, not a disconnect.
  const std::size_t maxBuffered = 2 * (1u << 20);
  ConnectionRegistry registry;
  std::vector<std::thread> connections;
  while (!core.shutdownRequested() && !globalDrainRequested()) {
    pollfd pfd{listener, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);  // wake to re-check shutdown/drain
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: condition re-checked above
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    registry.add(fd);
    connections.emplace_back([&core, &registry, fd, maxBuffered] {
      serveConnection(core, registry, fd, maxBuffered);
    });
  }
  // Unblock every connection parked in recv() (idle clients would stall the
  // joins forever), then join and run the single drain path.
  registry.shutdownAll();
  for (std::thread& t : connections) t.join();
  core.drain();
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}

#else

int serveUnixSocket(ServerCore&, const std::string& path) {
  throw std::runtime_error("unix sockets are not supported on this platform ('" + path +
                           "'); use --serve with stdio");
}

#endif

}  // namespace pmsched
