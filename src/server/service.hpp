#pragma once
// The design service: one synthesis request -> one finished design.
//
// This is the compute core both front ends share. The CLI (tools/pmsched.cpp)
// resolves its arguments into a DesignJob and prints the outcome; the server
// (src/server/server.hpp) decodes a JSONL frame into the same DesignJob and
// serializes the outcome back. Because both run EXACTLY this function, a
// server response is bit-identical to the equivalent one-shot CLI run — the
// differential suite (tests/test_server.cpp, the CI serve-smoke job) pins
// that equivalence at 1/2/8 threads.

#include <string>

#include "alloc/binding.hpp"
#include "ctrl/controller.hpp"
#include "power/activation.hpp"
#include "sched/power_transform.hpp"
#include "sched/resources.hpp"
#include "sched/schedule.hpp"

namespace pmsched {

class RunBudget;

/// One fully-resolved synthesis request.
struct DesignJob {
  Graph graph;
  int steps = 0;
  MuxOrdering ordering = MuxOrdering::OutputFirst;
  bool optimal = false;  ///< exact DFS instead of the paper's greedy order
  bool shared = true;    ///< run the shared (OR-composed) gating extension
};

/// Name-free result numbers — what the CLI summary prints and the design
/// cache may replay for an isomorphic request (no node names inside, so the
/// values transfer across renamings unchanged).
struct DesignSummary {
  int ops = 0;
  int criticalPath = 0;
  int steps = 0;
  int managed = 0;
  int sharedGated = 0;
  std::string units;              ///< ResourceVector::toString()
  std::string reductionPercent;   ///< fixed(x, 2) — exactly the CLI's digits
  bool degraded = false;
  std::string degradeReason;      ///< the CLI's "degraded: yes (<kind>)" kind
};

/// Everything the pipeline produced. The heavyweight members feed the CLI's
/// artifact emitters (report, VHDL, power sim); the server serializes only
/// the summary plus the design graph.
struct DesignOutcome {
  PowerManagedDesign design;
  int sharedGated = 0;
  ResourceVector units;
  Schedule schedule;
  Binding binding;
  ActivationResult activation;
  ControllerSpec controller;
  DesignSummary summary;
  /// Probeworthy shared-gating candidates the oracle rejected for slack.
  /// Zero is half of the explore driver's saturation certificate (the
  /// transform half is managedCount == the graph's full candidate count).
  int sharedGatingSlackRejects = 0;
};

/// Run the full pipeline: power-management transform (greedy or optimal),
/// shared gating, resource minimization, list scheduling, binding,
/// activation analysis, controller synthesis. Throws InfeasibleError when
/// the step budget admits no schedule; budget exhaustion degrades per the
/// docs/ROBUSTNESS.md contracts instead of throwing.
[[nodiscard]] DesignOutcome runDesignJob(const DesignJob& job,
                                         const RunBudget* budget = nullptr);

/// Steering for finishDesignJob() when a caller already holds part of the
/// tail's result (the explore driver's amortized point path).
struct FinishOptions {
  /// Already-minimized resources for out.design.graph at job.steps; skips
  /// the minimizeResources search when non-null.
  const ResourceVector* units = nullptr;
  /// out.activation is already valid for out.design — skip the analysis.
  /// Sound only when the design's gating conditions are unchanged (the
  /// analysis does not depend on the step budget or the schedule).
  bool reuseActivation = false;
};

/// The steps-dependent tail of runDesignJob(): resource minimization, list
/// scheduling, binding, activation analysis, controller synthesis and the
/// summary verdict, over an out.design/out.sharedGated the caller already
/// produced. runDesignJob() is exactly transform + shared gating + this.
void finishDesignJob(DesignOutcome& out, const DesignJob& job,
                     const RunBudget* budget = nullptr, const FinishOptions& fin = {});

}  // namespace pmsched
