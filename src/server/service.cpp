#include "server/service.hpp"

#include "cdfg/analysis.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/shared_gating.hpp"
#include "support/run_budget.hpp"
#include "support/strings.hpp"

namespace pmsched {

DesignOutcome runDesignJob(const DesignJob& job, const RunBudget* budget) {
  DesignOutcome out;
  out.design = job.optimal
                   ? applyPowerManagementOptimal(job.graph, job.steps, 24, budget)
                   : applyPowerManagement(job.graph, job.steps, job.ordering,
                                          LatencyModel::unit(), budget);
  if (job.shared)
    out.sharedGated = applySharedGating(out.design, budget, &out.sharedGatingSlackRejects);
  finishDesignJob(out, job, budget);
  return out;
}

void finishDesignJob(DesignOutcome& out, const DesignJob& job, const RunBudget* budget,
                     const FinishOptions& fin) {
  out.units = fin.units != nullptr ? *fin.units
                                   : minimizeResources(out.design.graph, job.steps);
  const ListScheduleResult scheduled = listSchedule(out.design.graph, job.steps, out.units);
  if (!scheduled.schedule) throw InfeasibleError(scheduled.message);
  out.schedule = *scheduled.schedule;
  out.binding = bindDesign(out.design.graph, out.schedule);
  if (!fin.reuseActivation) out.activation = analyzeActivation(out.design, budget);
  out.controller = synthesizeController(out.design, out.schedule, out.binding, out.activation);

  DesignSummary& s = out.summary;
  s.ops = countOps(job.graph).totalUnits();
  s.criticalPath = criticalPathLength(job.graph);
  s.steps = job.steps;
  s.managed = out.design.managedCount();
  s.sharedGated = out.sharedGated;
  s.units = out.units.toString();
  s.reductionPercent = fixed(out.activation.reductionPercent(OpPowerModel::paperWeights()), 2);

  // One stable degradation verdict, mirroring the CLI's summary line: the
  // budget's first-trip kind wins, then the first logged event, then the
  // transform's own reason.
  s.degraded = out.design.degraded || out.activation.degraded ||
               (budget != nullptr && budget->degraded());
  if (s.degraded) {
    if (budget != nullptr && budget->exhaustedWhy())
      s.degradeReason = budgetKindName(*budget->exhaustedWhy());
    else if (budget != nullptr && !budget->events().empty())
      s.degradeReason = budgetKindName(budget->events().front().kind);
    else if (!out.design.degradeReason.empty())
      s.degradeReason = out.design.degradeReason;
    else
      s.degradeReason = "stage-local limit";
  }
}

}  // namespace pmsched
