#include "server/server.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "cdfg/textio.hpp"
#include "explore/explore.hpp"
#include "sched/condition.hpp"
#include "server/cache_persist.hpp"
#include "support/fault_injector.hpp"
#include "support/json.hpp"
#include "support/run_budget.hpp"
#include "support/thread_pool.hpp"

namespace pmsched {

namespace {

/// How many consecutive small requests may jump the line while a large one
/// waits; keeps small-request latency low without starving large tenants.
constexpr std::size_t kSmallBurst = 4;

}  // namespace

ServerCore::ServerCore(ServerOptions options)
    : options_(std::move(options)), cache_(options_.cacheEntries) {
  // Restore the warm cache BEFORE any worker can serve: a restarted server
  // answers its first isomorphic repeat from the replayed journal.
  if (!options_.cachePersistPath.empty() && options_.cacheEntries != 0)
    cache_.enablePersistence(std::make_unique<CachePersistence>(options_.cachePersistPath,
                                                                options_.compactEvery));
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ServerCore::~ServerCore() {
  requestShutdown();
  for (std::thread& t : workers_) t.join();
}

void ServerCore::requestShutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  queueCv_.notify_all();
}

bool ServerCore::submitFrame(const std::string& line, ResponseSink sink) {
  RequestFrame frame;
  try {
    frame = parseRequestFrame(line, options_.maxFrameBytes);
  } catch (const ServerError& e) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.protocolErrors;
    }
    sink(makeErrorResponse(extractFrameId(line), e.category(), e.what()));
    return !shutdownRequested();
  } catch (const FaultInjectedError& e) {
    // "serve-frame" clean degradation: this frame is lost, the connection
    // keeps serving and the process still exits 0 at EOF.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.protocolErrors;
    }
    sink(makeErrorResponse(extractFrameId(line), ServerErrorCategory::Internal, e.what()));
    return !shutdownRequested();
  }

  switch (frame.op) {
    case RequestOp::Design:
    case RequestOp::Explore:
      handleDesign(std::move(frame), sink);
      return !shutdownRequested();

    case RequestOp::Ping: {
      JsonWriter w;
      w.beginObject().key("pong").value(true).endObject();
      sink(makeResultResponse(frame.idJson, w.str()));
      return !shutdownRequested();
    }

    case RequestOp::OpenSession: {
      std::unique_lock<std::mutex> lock(mutex_);
      if (sessions_.count(frame.session) != 0) {
        lock.unlock();
        sink(makeErrorResponse(frame.idJson, ServerErrorCategory::Protocol,
                               "session '" + frame.session + "' is already open"));
        return !shutdownRequested();
      }
      sessions_.emplace(frame.session, 0);
      ++stats_.sessionsOpened;
      stats_.sessionsPeak = std::max<std::uint64_t>(stats_.sessionsPeak, sessions_.size());
      lock.unlock();
      JsonWriter w;
      w.beginObject().key("session").value(frame.session).key("open").value(true).endObject();
      sink(makeResultResponse(frame.idJson, w.str()));
      return !shutdownRequested();
    }

    case RequestOp::CloseSession: {
      std::unique_lock<std::mutex> lock(mutex_);
      auto it = sessions_.find(frame.session);
      if (it == sessions_.end()) {
        lock.unlock();
        sink(makeErrorResponse(frame.idJson, ServerErrorCategory::Protocol,
                               "session '" + frame.session + "' is not open"));
        return !shutdownRequested();
      }
      const std::uint64_t served = it->second;
      sessions_.erase(it);
      ++stats_.sessionsClosed;
      lock.unlock();
      JsonWriter w;
      w.beginObject()
          .key("session")
          .value(frame.session)
          .key("closed")
          .value(true)
          .key("requests")
          .value(static_cast<std::int64_t>(served))
          .endObject();
      sink(makeResultResponse(frame.idJson, w.str()));
      return !shutdownRequested();
    }

    case RequestOp::Stats: {
      const ServerStats s = statsSnapshot();
      JsonWriter w;
      w.beginObject()
          .key("accepted").value(static_cast<std::int64_t>(s.accepted))
          .key("completed").value(static_cast<std::int64_t>(s.completed))
          .key("rejected_admission").value(static_cast<std::int64_t>(s.rejectedAdmission))
          .key("protocol_errors").value(static_cast<std::int64_t>(s.protocolErrors))
          .key("sessions").beginObject()
              .key("opened").value(static_cast<std::int64_t>(s.sessionsOpened))
              .key("closed").value(static_cast<std::int64_t>(s.sessionsClosed))
              .key("open").value(static_cast<std::int64_t>(s.sessionsOpen))
              .key("peak").value(static_cast<std::int64_t>(s.sessionsPeak))
          .endObject()
          .key("queue").beginObject()
              .key("small").value(static_cast<std::int64_t>(s.queuedSmall))
              .key("large").value(static_cast<std::int64_t>(s.queuedLarge))
          .endObject()
          .key("supervision").beginObject()
              .key("worker_restarts").value(static_cast<std::int64_t>(s.workerRestarts))
              .key("retries").value(static_cast<std::int64_t>(s.retries))
              .key("deadline_trips").value(static_cast<std::int64_t>(s.deadlineTrips))
              .key("drain_abandoned").value(static_cast<std::int64_t>(s.drainAbandoned))
          .endObject()
          .key("cache").beginObject()
              .key("hits").value(static_cast<std::int64_t>(s.cache.hits))
              .key("exact_hits").value(static_cast<std::int64_t>(s.cache.exactHits))
              .key("misses").value(static_cast<std::int64_t>(s.cache.misses))
              .key("inserts").value(static_cast<std::int64_t>(s.cache.inserts))
              .key("evictions").value(static_cast<std::int64_t>(s.cache.evictions))
              .key("rejected_degraded").value(static_cast<std::int64_t>(s.cache.rejectedDegraded))
              .key("insert_failures").value(static_cast<std::int64_t>(s.cache.insertFailures))
              .key("journal_replayed").value(static_cast<std::int64_t>(s.cache.journalReplayed))
              .key("journal_skipped").value(static_cast<std::int64_t>(s.cache.journalSkipped))
              .key("journal_append_failures").value(static_cast<std::int64_t>(s.cache.journalAppendFailures))
          .endObject()
          .endObject();
      sink(makeResultResponse(frame.idJson, w.str()));
      return !shutdownRequested();
    }

    case RequestOp::Shutdown: {
      std::size_t leaked = 0;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
        leaked = sessions_.size();
      }
      queueCv_.notify_all();
      // The transport observes the false return and runs the same drain()
      // path a signal does — this op only flips the flag and reports leaks.
      JsonWriter w;
      w.beginObject()
          .key("stopped")
          .value(true)
          .key("leaked_sessions")
          .value(static_cast<std::int64_t>(leaked))
          .endObject();
      sink(makeResultResponse(frame.idJson, w.str()));
      return false;
    }
  }
  return !shutdownRequested();
}

void ServerCore::handleDesign(RequestFrame&& frame, ResponseSink& sink) {
  try {
    fault::point("serve-accept");
  } catch (const FaultInjectedError& e) {
    // Clean degradation: this request is rejected as if the queue were
    // full; the server keeps serving.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.rejectedAdmission;
    }
    sink(makeErrorResponse(frame.idJson, ServerErrorCategory::Admission, e.what()));
    return;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (shutdown_) {
    lock.unlock();
    sink(makeErrorResponse(frame.idJson, ServerErrorCategory::Admission,
                           "server is shutting down"));
    return;
  }
  if (!frame.session.empty()) {
    auto it = sessions_.find(frame.session);
    if (it == sessions_.end()) {
      lock.unlock();
      sink(makeErrorResponse(frame.idJson, ServerErrorCategory::Protocol,
                             "session '" + frame.session + "' is not open"));
      return;
    }
    ++it->second;
  }
  const std::size_t pending = smallQueue_.size() + largeQueue_.size();
  if (pending >= options_.queueCapacity) {
    ++stats_.rejectedAdmission;
    lock.unlock();
    sink(makeErrorResponse(frame.idJson, ServerErrorCategory::Admission,
                           "design queue is full (" + std::to_string(pending) +
                               " pending)"));
    return;
  }
  Job job;
  job.idJson = std::move(frame.idJson);
  job.session = std::move(frame.session);
  job.design = std::move(frame.design);
  job.sink = std::move(sink);
  // Explore sweeps are whole-range jobs; they always class as large so a
  // burst of them cannot starve small one-shot requests.
  const bool small =
      !job.design.explore && job.design.graphText.size() <= options_.smallRequestBytes;
  (small ? smallQueue_ : largeQueue_).push_back(std::move(job));
  ++stats_.accepted;
  ++inFlight_;
  lock.unlock();
  queueCv_.notify_one();
}

bool ServerCore::popJob(Job& out, bool wait) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const bool haveSmall = !smallQueue_.empty();
    const bool haveLarge = !largeQueue_.empty();
    if (haveSmall || haveLarge) {
      // Small-first, but once kSmallBurst smalls have jumped a waiting
      // large request, the large one goes next.
      const bool takeLarge = haveLarge && (!haveSmall || smallStreak_ >= kSmallBurst);
      if (takeLarge) {
        out = std::move(largeQueue_.front());
        largeQueue_.pop_front();
        smallStreak_ = 0;
      } else {
        out = std::move(smallQueue_.front());
        smallQueue_.pop_front();
        smallStreak_ = haveLarge ? smallStreak_ + 1 : 0;
      }
      return true;
    }
    if (!wait || shutdown_) return false;
    queueCv_.wait(lock);
  }
}

void ServerCore::workerLoop() {
  // Supervision loop: each iteration is one incarnation of this worker. A
  // job whose exception escapes processJob() ends the incarnation — the
  // warm thread-local arenas are quarantined (they may be mid-mutation) and
  // the compute pool is rebuilt — then the next iteration starts a fresh
  // incarnation on the same OS thread, so the worker pool never shrinks.
  for (;;) {
    // Private lanes for this worker: the whole pipeline below resolves
    // globalThreadPool() to this pool, so concurrent requests never contend
    // for the single-coordinator process pool.
    ScopedComputePool scope(options_.threadsPerWorker);
    bool crashed = false;
    Job job;
    while (!crashed && popJob(job, /*wait=*/true)) {
      crashed = runJobSupervised(job);
      // Bound warm state between tenants: pinned nodes survive, the epoch
      // advances, and the next request re-warms only what it touches. A
      // crash instead quarantines EVERYTHING (cap 0 = full clear below).
      if (!crashed) trimDnfProbabilityManager(options_.warmDnfCap);
    }
    if (!crashed) return;  // clean shutdown: queues drained, flag set
    trimDnfProbabilityManager(0);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.workerRestarts;
    }
  }
}

bool ServerCore::drainOne() {
  Job job;
  if (!popJob(job, /*wait=*/false)) return false;
  // Same supervised path the workers run, so workers == 0 tests exercise
  // crash handling deterministically on the calling thread.
  const bool crashed = runJobSupervised(job);
  trimDnfProbabilityManager(crashed ? 0 : options_.warmDnfCap);
  if (crashed) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.workerRestarts;
  }
  return true;
}

bool ServerCore::runJobSupervised(Job& job) {
  try {
    // The "worker-crash" site models a fault INSIDE the worker but outside
    // the per-job typed catches — exactly what supervision exists for.
    fault::point("worker-crash");
    processJob(job);
    finishJob();
    return false;
  } catch (const std::exception& e) {
    superviseCrash(std::move(job), e.what());
    return true;
  } catch (...) {
    superviseCrash(std::move(job), "unknown worker failure");
    return true;
  }
}

void ServerCore::superviseCrash(Job&& job, const std::string& what) {
  if (!job.responded && job.attempts == 0) {
    // One bounded retry: fresh incarnation, cache bypassed (the warm path
    // may be what crashed), short backoff so a transient fault can clear.
    // The job stays in-flight, so waitIdle()/drain() still cover it, and it
    // re-enters through its size class without an admission check — it was
    // already admitted once.
    if (options_.retryBackoffMs > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.retryBackoffMs));
    job.attempts = 1;
    job.bypassCache = true;
    const bool small =
        !job.design.explore && job.design.graphText.size() <= options_.smallRequestBytes;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.retries;
      (small ? smallQueue_ : largeQueue_).push_back(std::move(job));
    }
    queueCv_.notify_one();
    return;
  }
  if (!job.responded) {
    // Retry also crashed (or the first crash was not retryable): the
    // requester gets a typed internal error, never silence.
    job.responded = true;
    job.sink(makeErrorResponse(job.idJson, ServerErrorCategory::Internal, what));
  }
  // Crash after the response was sent (e.g. during memoization): nothing to
  // resend — the requester already has the correct answer.
  finishJob();
}

namespace {

/// Raw-bytes key for the exact-request memo: every field that steers the
/// response payload, then the graph text verbatim. Computed BEFORE any
/// parsing, so a memo hit costs one hash + one compare of the request.
std::string exactRequestKey(const DesignRequest& d) {
  std::string key;
  key.reserve(d.graphText.size() + 32);
  key += std::to_string(d.steps);
  key += '|';
  key += std::to_string(static_cast<int>(d.ordering));
  key += '|';
  key += d.optimal ? '1' : '0';
  key += d.shared ? '1' : '0';
  key += d.emitDesign ? '1' : '0';
  key += '|';
  key += d.graphText;
  return key;
}

/// Compose the request's own caps with the server-side default deadline
/// (applied only when the request sent no `budget.ms` of its own — a client
/// deadline always wins; the other caps compose). Returns nullptr when the
/// job ends up unbudgeted; `defaultDeadline` reports whether the SERVER's
/// deadline is the active ms cap (for the deadline-trip counter).
const RunBudget* composeBudget(const DesignRequest& d, const ServerOptions& options,
                               RunBudget& storage, bool& defaultDeadline) {
  const RunBudget* budget = nullptr;
  if (d.hasBudget()) {
    if (d.budgetMs > 0) storage.setDeadline(std::chrono::milliseconds(d.budgetMs));
    if (d.budgetProbes > 0)
      storage.setProbeCap(static_cast<std::uint64_t>(d.budgetProbes));
    if (d.budgetBddNodes > 0)
      storage.setBddNodeCap(static_cast<std::size_t>(d.budgetBddNodes));
    if (d.budgetDnfTerms > 0)
      storage.setDnfTermCap(static_cast<std::size_t>(d.budgetDnfTerms));
    budget = &storage;
  }
  defaultDeadline = options.defaultDeadlineMs > 0 && d.budgetMs == 0;
  if (defaultDeadline) {
    storage.setDeadline(std::chrono::milliseconds(options.defaultDeadlineMs));
    budget = &storage;
  }
  return budget;
}

}  // namespace

void ServerCore::processJob(Job& job) {
  try {
    if (job.design.explore) {
      // Explore sweeps bypass both cache levels by construction (the parser
      // pins cache=false): the sweep itself is the amortization, and the
      // result shape (a front, not one design) does not fit either level.
      ExploreRequest req;
      req.graph = loadGraphText(job.design.graphText);
      req.minSteps = job.design.exploreMinSteps;
      req.maxSteps = job.design.exploreMaxSteps;
      req.span = job.design.exploreSpan;
      req.ordering = job.design.ordering;
      req.optimal = job.design.optimal;
      req.shared = job.design.shared;
      RunBudget budgetStorage;
      bool defaultDeadline = false;
      const RunBudget* budget =
          composeBudget(job.design, options_, budgetStorage, defaultDeadline);
      const ExploreResult res = exploreDesignSpace(req, budget);
      if (defaultDeadline && budgetStorage.exhaustedWhy() == BudgetKind::Deadline) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.deadlineTrips;
      }
      job.responded = true;
      job.sink(makeResultResponse(job.idJson, renderExploreJson(res)));
      return;
    }

    // Budgeted runs are wall-clock-dependent, so they neither consult nor
    // feed the cache — a replay could disagree with a live run. A retried
    // job also bypasses it: the warm path may be what crashed attempt 0.
    const bool cacheable = job.design.cache && !job.design.hasBudget() &&
                           !job.bypassCache && options_.cacheEntries != 0;

    // Level 1: byte-identical repeat of an earlier request — answer from
    // the memo without touching the graph at all.
    std::string exactKey;
    if (cacheable) {
      exactKey = exactRequestKey(job.design);
      if (auto memo = cache_.lookupExact(exactKey)) {
        job.responded = true;
        job.sink(makeResultResponse(job.idJson, *memo));
        return;
      }
    }

    DesignJob dj;
    dj.graph = loadGraphText(job.design.graphText);
    dj.steps = job.design.steps;
    dj.ordering = job.design.ordering;
    dj.optimal = job.design.optimal;
    dj.shared = job.design.shared;

    const DesignCacheOptions copts{dj.steps, dj.ordering, dj.optimal, dj.shared};

    // Level 2: canonical-form cache — renamed / reordered isomorphs of a
    // warm design land here.
    CanonicalForm form;
    if (cacheable) {
      form = canonicalizeGraph(dj.graph);
      if (auto hit = cache_.lookup(form, copts)) {
        // Summary-only requests skip the replay entirely: the stored
        // summary answers them, no clone or serialization needed.
        std::string text;
        if (job.design.emitDesign) {
          const Graph designGraph =
              DesignCache::replayDesignGraph(*hit, form, dj.graph);
          text = saveGraphText(designGraph);
        }
        const std::string resultJson =
            makeDesignResultJson(hit->summary, text, /*cacheHit=*/true);
        job.responded = true;
        job.sink(makeResultResponse(job.idJson, resultJson));
        cache_.insertExact(exactKey, resultJson);
        return;
      }
    }

    RunBudget budgetStorage;
    bool defaultDeadline = false;
    const RunBudget* budget =
        composeBudget(job.design, options_, budgetStorage, defaultDeadline);

    const DesignOutcome outcome = runDesignJob(dj, budget);
    if (defaultDeadline && budgetStorage.exhaustedWhy() == BudgetKind::Deadline) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.deadlineTrips;
    }
    // A default-deadline run that did NOT degrade is identical to an
    // unbudgeted one (the budget never tripped), so caching it is sound;
    // insert() rejects the degraded case on its own.
    if (cacheable) cache_.insert(form, copts, outcome);
    const std::string text =
        job.design.emitDesign ? saveGraphText(outcome.design.graph) : std::string();
    job.responded = true;
    job.sink(makeDesignResponse(job.idJson, outcome.summary, text, /*cacheHit=*/false));
    // Memoize under the raw request too (the stored variant reads
    // cache_hit:true, which is what a future memo hit is). Degraded
    // results are wall-clock-dependent and never memoized.
    if (cacheable && !outcome.summary.degraded)
      cache_.insertExact(exactKey,
                         makeDesignResultJson(outcome.summary, text, /*cacheHit=*/true));
  } catch (const ServerError& e) {
    job.responded = true;
    job.sink(makeErrorResponse(job.idJson, e.category(), e.what()));
  } catch (const ParseError& e) {
    job.responded = true;
    job.sink(makeErrorResponse(job.idJson, ServerErrorCategory::Parse, e.what()));
  } catch (const InfeasibleError& e) {
    job.responded = true;
    job.sink(makeErrorResponse(job.idJson, ServerErrorCategory::Infeasible, e.what()));
  } catch (const BudgetExceededError& e) {
    job.responded = true;
    job.sink(makeErrorResponse(job.idJson, ServerErrorCategory::Budget, e.what()));
  }
  // No catch-all: anything else escaping here IS a worker crash. The
  // supervision layer (runJobSupervised) owns retry-or-typed-internal.
}

void ServerCore::finishJob() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.completed;
    --inFlight_;
  }
  idleCv_.notify_all();
}

void ServerCore::waitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idleCv_.wait(lock, [this] { return inFlight_ == 0; });
}

void ServerCore::drain() {
  requestShutdown();
  bool expired = false;
  try {
    fault::point("drain-deadline");
  } catch (const FaultInjectedError&) {
    // Clean degradation: pretend the deadline already passed — queued work
    // fails out typed immediately, running work is still waited out.
    expired = true;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (!expired)
    idleCv_.wait_for(lock, std::chrono::milliseconds(options_.drainDeadlineMs),
                     [this] { return inFlight_ == 0; });
  if (inFlight_ != 0) {
    // Deadline hit with work still pending. Jobs still QUEUED get a typed
    // error now (their sinks run below, outside the lock); jobs already
    // RUNNING on a worker are un-abandonable mid-pipeline, so those are
    // waited out unbounded — they always terminate (budgets bound them).
    std::deque<Job> abandoned;
    abandoned.swap(smallQueue_);
    while (!largeQueue_.empty()) {
      abandoned.push_back(std::move(largeQueue_.front()));
      largeQueue_.pop_front();
    }
    stats_.drainAbandoned += abandoned.size();
    stats_.completed += abandoned.size();
    inFlight_ -= abandoned.size();
    lock.unlock();
    for (Job& job : abandoned)
      job.sink(makeErrorResponse(job.idJson, ServerErrorCategory::Admission,
                                 "server drained before this request ran"));
    lock.lock();
    idleCv_.wait(lock, [this] { return inFlight_ == 0; });
  }
  lock.unlock();
  // The snapshot is a pure optimization (the journal already has every
  // insert), but flushing compacts the pair for the next boot.
  cache_.flushSnapshot();
}

bool ServerCore::shutdownRequested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_;
}

ServerStats ServerCore::statsSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerStats s = stats_;
  s.sessionsOpen = sessions_.size();
  s.queuedSmall = smallQueue_.size();
  s.queuedLarge = largeQueue_.size();
  s.cache = cache_.stats();
  return s;
}

std::size_t ServerCore::openSessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

}  // namespace pmsched
