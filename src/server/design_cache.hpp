#pragma once
// Canonical-form design cache — the server's warm request path.
//
// Key: the canonical form of the request graph (cdfg/analysis.hpp —
// identity modulo node naming / insertion order) plus every option that
// steers the pipeline (steps, ordering, optimal, shared). Value: the
// name-free parts of the finished design — the summary numbers and the
// inserted control edges encoded as canonical-index pairs, in exactly the
// order saveGraphText() walks them. A hit replays those edges onto the
// CURRENT request's graph through its own canonical mapping, so the reply
// carries the caller's node names even when the warm entry was produced by
// a differently-named isomorph.
//
// Collision safety: the 64-bit hash only routes to a bucket; every hit
// compares the full canonical text before replaying. A hash coincidence
// between different graphs therefore costs a miss, never a wrong design.
//
// Degraded results (budget exhaustion mid-pipeline) are never inserted:
// they depend on wall-clock, so replaying one would break the
// response-equals-one-shot-CLI guarantee. Requests carrying a budget bypass
// the cache entirely for the same reason (see server.cpp).
//
// Thread-safety: all public calls lock one internal mutex; replay work
// (graph cloning, edge insertion) happens outside the cache on the worker.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cdfg/analysis.hpp"
#include "server/service.hpp"

namespace pmsched {

class CachePersistence;  // server/cache_persist.hpp
struct PersistRecord;

/// Pipeline-steering options folded into the cache key.
struct DesignCacheOptions {
  int steps = 0;
  MuxOrdering ordering = MuxOrdering::OutputFirst;
  bool optimal = false;
  bool shared = true;

  friend bool operator==(const DesignCacheOptions&, const DesignCacheOptions&) = default;
};

/// One replayable warm result.
struct CachedDesign {
  DesignSummary summary;
  /// Control edges of the finished design as (from, to) canonical indices,
  /// in saveGraphText order (source ascending, per-source insertion order).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ctrlEdges;
};

struct DesignCacheStats {
  std::uint64_t hits = 0;       ///< exact-memo hits + canonical hits
  std::uint64_t exactHits = 0;  ///< subset of hits served by the exact memo
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejectedDegraded = 0;  ///< insert() refused a degraded result
  std::uint64_t insertFailures = 0;    ///< cache-insert fault site fired
  // Persistence (zero unless enablePersistence() was called):
  std::uint64_t journalReplayed = 0;        ///< records restored at startup
  std::uint64_t journalSkipped = 0;         ///< corrupt/truncated tails dropped
  std::uint64_t journalAppendFailures = 0;  ///< appends lost to fault/IO error
};

class DesignCache {
 public:
  /// `maxEntries` bounds the resident set; 0 disables caching entirely
  /// (every lookup is a miss, every insert a no-op).
  explicit DesignCache(std::size_t maxEntries = 256);

  /// Warm lookup: canonical text + options must both match exactly.
  [[nodiscard]] std::optional<CachedDesign> lookup(const CanonicalForm& form,
                                                   const DesignCacheOptions& options);

  /// Exact-request memo, the level in FRONT of the canonical cache: keyed
  /// on the raw request bytes (graph text + every response-steering option),
  /// valued with the finished result JSON. A hit costs one string hash — no
  /// graph parse, no canonicalization — which is what makes byte-identical
  /// repeats an order of magnitude cheaper than recompute. A miss here says
  /// nothing (renamed isomorphs land in the canonical layer), so it is not
  /// counted; only lookup() decides hits vs misses for the stats.
  [[nodiscard]] std::optional<std::string> lookupExact(const std::string& key);

  /// Memoize a finished result under its raw request key. Fires the same
  /// "cache-insert" fault point as insert(): a fault degrades to "not
  /// memoized", never to a lost response. Callers must not pass degraded
  /// results.
  void insertExact(const std::string& key, const std::string& resultJson);

  /// Store a finished, non-degraded result (degraded ones are counted and
  /// dropped). Fires the "cache-insert" fault point BEFORE mutating, so an
  /// injected fault degrades to "entry not cached" with the cache intact.
  void insert(const CanonicalForm& form, const DesignCacheOptions& options,
              const DesignOutcome& outcome);

  /// Encode the outcome's control edges for insert(); exposed so tests can
  /// assert the replay representation directly.
  [[nodiscard]] static std::vector<std::pair<std::uint32_t, std::uint32_t>> encodeCtrlEdges(
      const CanonicalForm& form, const Graph& designGraph);

  /// Replay a hit onto `requestGraph` (must canonicalize to the hit's
  /// form): clone + insert the mapped control edges that are not already
  /// present, preserving the stored order.
  [[nodiscard]] static Graph replayDesignGraph(const CachedDesign& hit,
                                               const CanonicalForm& form,
                                               const Graph& requestGraph);

  /// Attach a persistence backend: replay its snapshot + journal into the
  /// cache (coldest-first, so LRU recency survives a restart), then journal
  /// every subsequent insert() and compact periodically. A no-op when the
  /// cache is disabled (maxEntries == 0). Call once, before serving starts.
  void enablePersistence(std::unique_ptr<CachePersistence> persist);

  /// Rewrite the snapshot from the current canonical entries and truncate
  /// the journal (the drain path calls this). True when not persistent or
  /// the write succeeded.
  bool flushSnapshot();

  [[nodiscard]] DesignCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::uint64_t formHash = 0;  ///< CanonicalForm::hash (persisted verbatim)
    std::string canonicalText;
    DesignCacheOptions options;
    CachedDesign value;
    std::list<std::uint64_t>::iterator lruIt;  ///< position in lru_
  };

  [[nodiscard]] static std::uint64_t keyHash(std::uint64_t formHash,
                                             const DesignCacheOptions& options);
  void insertRestoredLocked(PersistRecord&& record);
  void evictToCapacityLocked();
  [[nodiscard]] std::vector<PersistRecord> exportRecordsLocked() const;

  struct ExactEntry {
    std::string resultJson;
    std::list<std::string>::iterator lruIt;  ///< position in exactLru_
  };

  mutable std::mutex mutex_;
  std::size_t maxEntries_;
  /// Bucketed by combined hash; the rare coincidence shares a bucket.
  std::unordered_multimap<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  ///< least-recently-used order, front = coldest
  /// Exact-request memo (front level), bounded by the same maxEntries_.
  std::unordered_map<std::string, ExactEntry> exact_;
  std::list<std::string> exactLru_;
  /// Snapshot + journal backend; null when the cache is memory-only. Guarded
  /// by mutex_ (journal appends serialize with the insert that caused them).
  std::unique_ptr<CachePersistence> persist_;
  DesignCacheStats stats_;
};

}  // namespace pmsched
