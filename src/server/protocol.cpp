#include "server/protocol.hpp"

#include <limits>

#include "server/service.hpp"
#include "support/fault_injector.hpp"
#include "support/json.hpp"

namespace pmsched {

const char* serverErrorCategoryName(ServerErrorCategory category) {
  switch (category) {
    case ServerErrorCategory::Protocol: return "protocol";
    case ServerErrorCategory::Parse: return "parse";
    case ServerErrorCategory::Usage: return "usage";
    case ServerErrorCategory::Admission: return "admission";
    case ServerErrorCategory::Infeasible: return "infeasible";
    case ServerErrorCategory::Budget: return "budget";
    case ServerErrorCategory::Internal: return "internal";
  }
  return "internal";
}

namespace {

[[noreturn]] void protocolError(const std::string& message) {
  throw ServerError(ServerErrorCategory::Protocol, message);
}

/// Serialize an id value for verbatim echo. Only numbers and strings are
/// admissible ids — anything else is a protocol error.
std::string serializeId(const JsonValue& id) {
  if (id.isInteger()) return std::to_string(id.asInt());
  if (id.isString()) {
    JsonWriter w;
    w.value(id.asString());
    return w.str();
  }
  protocolError("'id' must be an integer or a string");
}

long long requireBudgetField(const JsonValue& v, const char* name) {
  if (!v.isInteger() || v.asInt() <= 0)
    throw ServerError(ServerErrorCategory::Usage,
                      std::string("budget field '") + name + "' must be a positive integer");
  return v.asInt();
}

bool requireBool(const JsonValue& v, const char* name) {
  if (!v.isBool()) protocolError(std::string("field '") + name + "' must be a boolean");
  return v.asBool();
}

/// A small positive integer field shared by the explore range options.
int requireSmallInt(const JsonValue& v, const char* name, long long maxValue) {
  if (!v.isInteger() || v.asInt() <= 0 || v.asInt() > maxValue)
    throw ServerError(ServerErrorCategory::Usage,
                      std::string("field '") + name + "' must be an integer in [1, " +
                          std::to_string(maxValue) + "]");
  return static_cast<int>(v.asInt());
}

void parseDesignFields(const JsonValue& root, DesignRequest& out) {
  bool haveGraph = false;
  bool haveSteps = false;
  for (const auto& [key, value] : root.members()) {
    if (key == "id" || key == "op" || key == "session") continue;  // shared fields
    if (key == "graph") {
      if (!value.isString()) protocolError("field 'graph' must be a string");
      out.graphText = value.asString();
      haveGraph = true;
    } else if (key == "steps") {
      if (out.explore)
        throw ServerError(ServerErrorCategory::Usage,
                          "explore sweeps step budgets; use 'min_steps'/'max_steps'");
      if (!value.isInteger()) protocolError("field 'steps' must be an integer");
      const long long steps = value.asInt();
      if (steps <= 0 || steps > std::numeric_limits<int>::max())
        throw ServerError(ServerErrorCategory::Usage,
                          "'steps' must be a positive 32-bit integer");
      out.steps = static_cast<int>(steps);
      haveSteps = true;
    } else if (out.explore && key == "span") {
      if (!value.isInteger() || value.asInt() < 0 || value.asInt() > (1 << 16))
        throw ServerError(ServerErrorCategory::Usage,
                          "field 'span' must be an integer in [0, 65536]");
      out.exploreSpan = static_cast<int>(value.asInt());
    } else if (out.explore && key == "min_steps") {
      out.exploreMinSteps = requireSmallInt(value, "min_steps", 1 << 20);
    } else if (out.explore && key == "max_steps") {
      out.exploreMaxSteps = requireSmallInt(value, "max_steps", 1 << 20);
    } else if (out.explore && (key == "cache" || key == "emit_design")) {
      // Explore results bypass the design cache and never embed a single
      // design graph; reject rather than silently ignore.
      throw ServerError(ServerErrorCategory::Usage,
                        "field '" + key + "' does not apply to op 'explore'");
    } else if (key == "ordering") {
      if (!value.isString()) protocolError("field 'ordering' must be a string");
      const std::string& mode = value.asString();
      if (mode == "output") out.ordering = MuxOrdering::OutputFirst;
      else if (mode == "input") out.ordering = MuxOrdering::InputFirst;
      else if (mode == "savings") out.ordering = MuxOrdering::BySavings;
      else
        throw ServerError(ServerErrorCategory::Usage, "unknown ordering '" + mode + "'");
    } else if (key == "optimal") {
      out.optimal = requireBool(value, "optimal");
    } else if (key == "shared") {
      out.shared = requireBool(value, "shared");
    } else if (key == "cache") {
      out.cache = requireBool(value, "cache");
    } else if (key == "emit_design") {
      out.emitDesign = requireBool(value, "emit_design");
    } else if (key == "budget") {
      if (!value.isObject()) protocolError("field 'budget' must be an object");
      for (const auto& [bkey, bvalue] : value.members()) {
        if (bkey == "ms") out.budgetMs = requireBudgetField(bvalue, "ms");
        else if (bkey == "probes") out.budgetProbes = requireBudgetField(bvalue, "probes");
        else if (bkey == "bdd_nodes")
          out.budgetBddNodes = requireBudgetField(bvalue, "bdd_nodes");
        else if (bkey == "dnf_terms")
          out.budgetDnfTerms = requireBudgetField(bvalue, "dnf_terms");
        else protocolError("unknown budget field '" + bkey + "'");
      }
    } else {
      protocolError("unknown field '" + key + "'");
    }
  }
  if (!haveGraph)
    protocolError(std::string(out.explore ? "explore" : "design") +
                  " request is missing 'graph'");
  if (out.explore) {
    if (out.exploreMinSteps > 0 && out.exploreMaxSteps > 0 &&
        out.exploreMaxSteps < out.exploreMinSteps)
      throw ServerError(ServerErrorCategory::Usage,
                        "'max_steps' must be >= 'min_steps'");
    return;
  }
  if (!haveSteps) protocolError("design request is missing 'steps'");
}

}  // namespace

RequestFrame parseRequestFrame(std::string_view line, std::size_t maxFrameBytes) {
  fault::point("serve-frame");
  if (maxFrameBytes != 0 && line.size() > maxFrameBytes)
    protocolError("frame of " + std::to_string(line.size()) + " bytes exceeds the " +
                  std::to_string(maxFrameBytes) + "-byte limit");

  JsonValue root = JsonValue::makeNull();
  try {
    root = parseJson(line);
  } catch (const JsonParseError& e) {
    protocolError(std::string("invalid JSON: ") + e.what());
  }
  if (!root.isObject()) protocolError("request frame must be a JSON object");

  RequestFrame frame;
  const JsonValue* id = root.find("id");
  if (id == nullptr) protocolError("request frame is missing 'id'");
  frame.idJson = serializeId(*id);

  const JsonValue* op = root.find("op");
  if (op == nullptr || !op->isString()) protocolError("request frame is missing 'op'");
  const std::string& opName = op->asString();

  if (const JsonValue* session = root.find("session")) {
    if (!session->isString()) protocolError("field 'session' must be a string");
    frame.session = session->asString();
    if (frame.session.empty()) protocolError("field 'session' must be non-empty");
  }

  if (opName == "design") {
    frame.op = RequestOp::Design;
    parseDesignFields(root, frame.design);
    return frame;
  }
  if (opName == "explore") {
    frame.op = RequestOp::Explore;
    frame.design.explore = true;
    frame.design.cache = false;       // the sweep is the amortization
    frame.design.emitDesign = false;  // fronts, not a single design graph
    parseDesignFields(root, frame.design);
    return frame;
  }

  // Non-design ops accept only the shared fields.
  for (const auto& [key, value] : root.members()) {
    (void)value;
    if (key != "id" && key != "op" && key != "session")
      protocolError("unknown field '" + key + "' for op '" + opName + "'");
  }
  if (opName == "open_session") {
    if (frame.session.empty()) protocolError("open_session requires 'session'");
    frame.op = RequestOp::OpenSession;
  } else if (opName == "close_session") {
    if (frame.session.empty()) protocolError("close_session requires 'session'");
    frame.op = RequestOp::CloseSession;
  } else if (opName == "ping") {
    frame.op = RequestOp::Ping;
  } else if (opName == "stats") {
    frame.op = RequestOp::Stats;
  } else if (opName == "shutdown") {
    frame.op = RequestOp::Shutdown;
  } else {
    protocolError("unknown op '" + opName + "'");
  }
  return frame;
}

std::string extractFrameId(std::string_view line) {
  try {
    const JsonValue root = parseJson(line);
    if (!root.isObject()) return "null";
    const JsonValue* id = root.find("id");
    if (id == nullptr) return "null";
    return serializeId(*id);
  } catch (...) {
    return "null";
  }
}

std::string makeErrorResponse(const std::string& idJson, ServerErrorCategory category,
                              const std::string& message) {
  JsonWriter w;
  w.beginObject()
      .key("category")
      .value(serverErrorCategoryName(category))
      .key("message")
      .value(message)
      .endObject();
  return "{\"id\":" + idJson + ",\"ok\":false,\"error\":" + w.str() + "}";
}

std::string makeResultResponse(const std::string& idJson, const std::string& resultJson) {
  return "{\"id\":" + idJson + ",\"ok\":true,\"result\":" + resultJson + "}";
}

std::string makeDesignResponse(const std::string& idJson, const DesignSummary& summary,
                               const std::string& designText, bool cacheHit) {
  return makeResultResponse(idJson, makeDesignResultJson(summary, designText, cacheHit));
}

std::string makeDesignResultJson(const DesignSummary& summary,
                                 const std::string& designText, bool cacheHit) {
  JsonWriter w;
  w.beginObject()
      .key("ops")
      .value(summary.ops)
      .key("critical_path")
      .value(summary.criticalPath)
      .key("steps")
      .value(summary.steps)
      .key("managed")
      .value(summary.managed)
      .key("shared_gated")
      .value(summary.sharedGated)
      .key("units")
      .value(summary.units)
      .key("reduction_percent")
      .value(summary.reductionPercent)
      .key("degraded")
      .value(summary.degraded);
  if (summary.degraded) w.key("degrade_reason").value(summary.degradeReason);
  w.key("cache_hit").value(cacheHit);
  if (!designText.empty()) w.key("design").value(designText);
  w.endObject();
  return w.str();
}

}  // namespace pmsched
