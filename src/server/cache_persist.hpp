#pragma once
// Crash-safe persistence for the canonical-form design cache.
//
// Layout on disk (both files live next to each other):
//   <path>           snapshot: 8-byte magic + u32 version, then records
//   <path>.journal   append-only journal: records only, no header
//
// A record is [u32 payloadLen][u32 crc32(payload)][payload]; the payload is
// one canonical-form cache entry (hash, options, summary, canonical text,
// control edges) in a fixed little-endian encoding. The exact-request memo
// is deliberately NOT persisted: it is keyed on raw request bytes and
// rebuilds itself from canonical hits within a few requests.
//
// Crash model: the server may die at ANY byte boundary (kill -9 mid-append
// included). Restart replays the snapshot, then the journal, stopping at
// the first record whose length runs past EOF or whose CRC mismatches —
// the valid prefix is replayed, the corrupt tail is counted and dropped,
// and the server starts warm with everything that was durably written.
// Snapshot rewrites are atomic (tmp + rename), and the journal is truncated
// only AFTER the new snapshot is in place, so no crash window loses both.
//
// Fault sites: "cache-snapshot-load" fires at load() entry (degrades to a
// cold start), "cache-journal-write" fires per append (degrades to "entry
// not journaled"); neither may surface past the cache.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "server/design_cache.hpp"

namespace pmsched {

/// One canonical-form entry as persisted: everything DesignCache needs to
/// re-insert it without re-running the pipeline or re-canonicalizing.
struct PersistRecord {
  std::uint64_t hash = 0;  ///< CanonicalForm::hash (FNV-1a of canonicalText)
  std::string canonicalText;
  DesignCacheOptions options;
  CachedDesign value;
};

/// CRC32 (IEEE, reflected 0xEDB88320) over `data` — the per-record checksum.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

/// Frame one record: [len][crc][payload]. Exposed for the format tests.
[[nodiscard]] std::string encodePersistRecord(const PersistRecord& record);

/// Decode the record starting at `offset`; advances `offset` past it on
/// success. Returns nullopt on a truncated frame, CRC mismatch, or a
/// malformed payload — the caller stops there (corrupt-tail tolerance).
[[nodiscard]] std::optional<PersistRecord> decodePersistRecord(std::string_view data,
                                                               std::size_t& offset);

class CachePersistence {
 public:
  /// `path` is the snapshot file; the journal lives at `path + ".journal"`.
  /// Every `compactEvery` journal appends, the owning cache rewrites the
  /// snapshot and truncates the journal (see DesignCache::insert).
  explicit CachePersistence(std::string path, std::size_t compactEvery = 1024);

  struct LoadResult {
    std::vector<PersistRecord> records;  ///< snapshot prefix, then journal prefix
    std::uint64_t replayed = 0;          ///< records recovered (snapshot + journal)
    std::uint64_t skipped = 0;           ///< corrupt/truncated tails dropped
  };

  /// Read snapshot + journal. Never throws: unreadable or corrupt files
  /// degrade to fewer (or zero) records. Fires "cache-snapshot-load" first;
  /// an injected fault degrades to a cold start.
  [[nodiscard]] LoadResult load();

  /// Append one record to the journal and flush it. Fires
  /// "cache-journal-write" first; a fault (or an I/O error) returns false —
  /// the entry is simply not durable, nothing else degrades.
  bool append(const PersistRecord& record);

  /// Atomically replace the snapshot with `records` (tmp + rename), then
  /// truncate the journal. Returns false on I/O failure (the old snapshot
  /// and journal are left intact in that case).
  bool writeSnapshot(const std::vector<PersistRecord>& records);

  /// Journal appends since the last successful snapshot write (or load).
  [[nodiscard]] std::size_t appendsSinceSnapshot() const { return appendsSinceSnapshot_; }
  [[nodiscard]] std::size_t compactEvery() const { return compactEvery_; }
  [[nodiscard]] const std::string& snapshotPath() const { return path_; }
  [[nodiscard]] const std::string& journalPath() const { return journalPath_; }

 private:
  std::string path_;
  std::string journalPath_;
  std::size_t compactEvery_;
  std::size_t appendsSinceSnapshot_ = 0;
};

}  // namespace pmsched
