#pragma once
// ServerCore — the multi-tenant scheduling service behind `pmsched --serve`.
//
// One core multiplexes many concurrent design requests onto shared warm
// state:
//  * each worker thread wraps itself in a ScopedComputePool, so every
//    request still runs the full parallel pipeline without fighting other
//    requests for the single-coordinator global pool;
//  * the thread-local DnfEngine/BddManager arenas stay warm across requests
//    on a worker and are trimmed (epoch-bumping, pin-respecting) between
//    requests so tenants cannot grow each other's memory unboundedly;
//  * a canonical-form DesignCache short-circuits isomorphic repeats
//    (see design_cache.hpp for the bit-identity argument);
//  * admission control bounds the queue: requests beyond the capacity get a
//    typed "admission" rejection instead of unbounded latency, and a
//    size-classed two-queue scheme keeps small requests responsive without
//    starving large ones.
//
// Transport is out of scope here: submitFrame() takes one JSONL line and a
// sink callback, so the stdio loop, the Unix-socket listener, the benches
// and the tests all drive the same object. Sinks run on the submitting
// thread for control ops and on a worker thread for design ops — transports
// serialize their writes.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/design_cache.hpp"
#include "server/protocol.hpp"

namespace pmsched {

struct ServerOptions {
  std::size_t workers = 0;          ///< worker threads; 0 = test mode (drainOne())
  std::size_t queueCapacity = 64;   ///< max queued design requests (small+large)
  std::size_t maxFrameBytes = 1 << 20;  ///< per-line frame limit (0 = unlimited)
  std::size_t cacheEntries = 256;   ///< DesignCache capacity (0 = cache off)
  std::size_t threadsPerWorker = 0;  ///< lanes per worker pool (0 = configured)
  std::size_t smallRequestBytes = 4096;  ///< graph-text size classing threshold
  /// DnfEngine probability-arena cap kept warm between requests on each
  /// worker (live pinned nodes always survive the trim).
  std::size_t warmDnfCap = 1 << 16;
  /// Server-side default RunBudget deadline applied to every design request
  /// that did not send its own `budget.ms` (0 = no default). A request's
  /// own deadline always wins; the other budget caps compose unchanged.
  std::uint64_t defaultDeadlineMs = 0;
  /// How long drain() waits for in-flight work before failing still-QUEUED
  /// requests with a typed error (running jobs are always waited out).
  std::uint64_t drainDeadlineMs = 5000;
  /// Pause before the single automatic retry of an internal-failed request
  /// (tests set 0 to keep supervision deterministic and fast).
  std::uint64_t retryBackoffMs = 10;
  /// Snapshot + journal file for the canonical design cache (empty = the
  /// cache is memory-only). The journal lives at "<path>.journal".
  std::string cachePersistPath;
  /// Journal appends between snapshot compactions.
  std::size_t compactEvery = 1024;
};

/// Counters reported by the "stats" op and asserted by the tests.
struct ServerStats {
  std::uint64_t accepted = 0;         ///< design requests admitted to a queue
  std::uint64_t completed = 0;        ///< design responses sent (ok or error)
  std::uint64_t rejectedAdmission = 0;
  std::uint64_t protocolErrors = 0;
  std::uint64_t sessionsOpened = 0;
  std::uint64_t sessionsClosed = 0;
  std::uint64_t sessionsOpen = 0;
  std::uint64_t sessionsPeak = 0;
  std::uint64_t queuedSmall = 0;  ///< current depths
  std::uint64_t queuedLarge = 0;
  // Supervision counters (the chaos harness asserts recovery through these):
  std::uint64_t workerRestarts = 0;  ///< crashed workers rebuilt (arenas quarantined)
  std::uint64_t retries = 0;         ///< internal-failed requests retried once
  std::uint64_t deadlineTrips = 0;   ///< server default deadline degraded a run
  std::uint64_t drainAbandoned = 0;  ///< queued jobs failed out at drain deadline
  DesignCacheStats cache;
};

class ServerCore {
 public:
  using ResponseSink = std::function<void(const std::string& line)>;

  explicit ServerCore(ServerOptions options = {});
  ~ServerCore();

  ServerCore(const ServerCore&) = delete;
  ServerCore& operator=(const ServerCore&) = delete;

  /// Handle one request line. Control ops (ping/stats/sessions/shutdown)
  /// respond synchronously through `sink`; design ops are admitted to the
  /// queue and respond from a worker later. Every outcome — including every
  /// malformed frame — produces exactly one response line. Returns false
  /// once the server is shut down (this call may be the one that shut it
  /// down); the transport should stop reading then.
  bool submitFrame(const std::string& line, ResponseSink sink);

  /// Test mode (workers == 0): dequeue and process one design request on
  /// the calling thread, observing the same fairness policy the workers
  /// use. Returns false when nothing is queued.
  bool drainOne();

  /// Block until every admitted design request has completed.
  void waitIdle();

  /// Stop accepting design requests (they now get a typed "server is
  /// shutting down" rejection) and wake every waiting worker. Idempotent;
  /// the `shutdown` op, SIGTERM/SIGINT, and the destructor all route here.
  void requestShutdown();

  /// The one drain path: requestShutdown(), wait up to
  /// options.drainDeadlineMs for in-flight work, fail any job still QUEUED
  /// at the deadline with a typed error, wait out the jobs actually running
  /// on workers, then flush the cache snapshot. Fires the "drain-deadline"
  /// fault site on entry (a fault means the deadline is treated as already
  /// expired — queued work fails out typed, nothing hangs or leaks).
  void drain();

  [[nodiscard]] bool shutdownRequested() const;
  [[nodiscard]] ServerStats statsSnapshot() const;
  /// Sessions still open (the shutdown response reports this as
  /// "leaked_sessions"; the CI smoke asserts it is zero).
  [[nodiscard]] std::size_t openSessions() const;

 private:
  struct Job {
    std::string idJson;
    std::string session;
    DesignRequest design;
    ResponseSink sink;
    std::uint32_t attempts = 0;  ///< supervised retries already consumed
    bool bypassCache = false;    ///< retry runs fresh, in case warm state crashed it
    bool responded = false;      ///< sink already called — supervision must not resend
  };

  void handleDesign(RequestFrame&& frame, ResponseSink& sink);
  void processJob(Job& job);
  /// Pop the next job per the fairness policy (small-first with an
  /// anti-starvation cap). Test mode: non-blocking. Worker mode: waits.
  bool popJob(Job& out, bool wait);
  void workerLoop();
  /// Run one job under supervision: any exception escaping processJob()
  /// (injected faults included) is caught here and either retried once
  /// (backoff + cache bypass) or answered with a typed `internal` error.
  /// Returns true when the worker crashed and must quarantine its arenas.
  bool runJobSupervised(Job& job);
  void superviseCrash(Job&& job, const std::string& what);
  void finishJob();

  ServerOptions options_;
  DesignCache cache_;

  mutable std::mutex mutex_;  ///< guards everything below
  std::condition_variable queueCv_;  ///< signalled on enqueue and close
  std::condition_variable idleCv_;   ///< signalled as jobs finish
  std::deque<Job> smallQueue_;
  std::deque<Job> largeQueue_;
  std::size_t smallStreak_ = 0;  ///< consecutive small pops while large waited
  std::map<std::string, std::uint64_t> sessions_;  ///< name -> request count
  ServerStats stats_;
  std::uint64_t inFlight_ = 0;  ///< admitted, not yet completed
  bool shutdown_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace pmsched
