#pragma once
// Transports for `pmsched --serve`: both feed JSONL lines into one
// ServerCore and write one response line per request.
//
//  * serveStdio — the default: requests on stdin, responses on stdout,
//    EOF ends the server (exit 0). This is what the corpus replays, the
//    loadgen pipes into, and what tests drive with stringstreams.
//  * serveUnixSocket — a SOCK_STREAM listener at a filesystem path; each
//    connection speaks the same JSONL protocol. A "shutdown" request from
//    any connection stops the listener.
//
// Both transports end through ServerCore::drain(): stop accepting, fail
// queued work typed if the drain deadline passes, wait out running work,
// flush the cache snapshot, exit 0. SIGTERM/SIGINT reach the same path via
// requestGlobalDrain() — the CLI installs handlers WITHOUT SA_RESTART so a
// blocked stdin read fails with EINTR and falls into the drain.
//
// Response ordering: control ops respond in submission order on the
// submitting connection; design responses arrive as workers finish, so
// concurrent clients must match responses by "id", not by position.

#include <iosfwd>
#include <string>

namespace pmsched {

class ServerCore;

/// Ask every running transport loop to drain (async-signal-safe: one atomic
/// store — this is exactly what the CLI's SIGTERM/SIGINT handlers call).
void requestGlobalDrain();
/// Observed by the transport loops between frames / accept timeouts.
[[nodiscard]] bool globalDrainRequested();
/// Reset the flag (tests drive several servers in one process).
void clearGlobalDrain();

/// Pump `in` line-by-line into `core`, writing responses to `out` (one
/// line each, flushed). Returns the process exit code (0 — framing and
/// request errors are typed responses, not process failures).
int serveStdio(ServerCore& core, std::istream& in, std::ostream& out);

/// Listen on a Unix-domain socket at `path` (an existing socket file is
/// replaced). Serves until a shutdown request arrives. Returns the process
/// exit code; a socket that cannot be created/bound is an input error
/// reported by the caller (throws std::runtime_error).
int serveUnixSocket(ServerCore& core, const std::string& path);

}  // namespace pmsched
