#pragma once
// JSONL request framing for `pmsched --serve` (see docs/SERVER.md).
//
// One request per line: a single JSON object, UTF-8, terminated by '\n'.
// Every response is likewise one line:
//   {"id":<echoed>,"ok":true,"result":{...}}
//   {"id":<echoed>,"ok":false,"error":{"category":"...","message":"..."}}
//
// Framing errors are TYPED, never fatal: a malformed line produces one
// error response (category "protocol") and the connection keeps serving.
// The corpus suite (tests/corpus/server, tools/run_server_corpus.sh) pins
// that contract — truncated JSONL, oversized frames, duplicate sessions and
// garbage UTF-8 must all yield structured errors, never a crash or hang.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sched/power_transform.hpp"

namespace pmsched {

struct DesignSummary;

/// Response error taxonomy. Mirrors the CLI exit-code families
/// (docs/ROBUSTNESS.md): protocol ~ the frame itself, parse ~ the embedded
/// graph text, usage ~ option values, admission ~ backpressure rejection,
/// infeasible/budget/internal ~ the pipeline outcomes.
enum class ServerErrorCategory {
  Protocol,
  Parse,
  Usage,
  Admission,
  Infeasible,
  Budget,
  Internal,
};

[[nodiscard]] const char* serverErrorCategoryName(ServerErrorCategory category);

/// A typed request failure; the router converts it into one error response.
class ServerError : public std::runtime_error {
 public:
  ServerError(ServerErrorCategory category, const std::string& message)
      : std::runtime_error(message), category_(category) {}

  [[nodiscard]] ServerErrorCategory category() const { return category_; }

 private:
  ServerErrorCategory category_;
};

/// The "design" op payload — the JSONL spelling of the CLI's argument set.
struct DesignRequest {
  std::string graphText;   ///< CDFG text, as a JSON string ("graph")
  int steps = 0;           ///< control-step budget ("steps", required > 0)
  MuxOrdering ordering = MuxOrdering::OutputFirst;  ///< "output"|"input"|"savings"
  bool optimal = false;    ///< exact DFS ("optimal")
  bool shared = true;      ///< shared-gating extension ("shared")
  bool cache = true;       ///< allow canonical-cache lookup/insert ("cache")
  bool emitDesign = true;  ///< include the design graph text in the result

  // Per-request run budget ("budget": {"ms","probes","bdd_nodes","dnf_terms"}).
  long long budgetMs = 0;
  long long budgetProbes = 0;
  long long budgetBddNodes = 0;
  long long budgetDnfTerms = 0;

  // The "explore" op reuses this payload with a sweep range instead of one
  // "steps" point ("span", "min_steps", "max_steps" — docs/EXPLORE.md).
  // Explore results bypass both design-cache levels (the sweep IS the
  // amortization) and always class as large for admission.
  bool explore = false;
  int exploreSpan = 8;
  int exploreMinSteps = 0;  ///< 0 = critical path
  int exploreMaxSteps = 0;  ///< 0 = min + span

  [[nodiscard]] bool hasBudget() const {
    return budgetMs > 0 || budgetProbes > 0 || budgetBddNodes > 0 || budgetDnfTerms > 0;
  }
};

enum class RequestOp { Design, Explore, OpenSession, CloseSession, Ping, Stats, Shutdown };

/// One decoded request line.
struct RequestFrame {
  std::string idJson = "null";  ///< serialized "id" (number or string), echoed back
  RequestOp op = RequestOp::Ping;
  std::string session;  ///< "session" — open/close target or design affinity
  DesignRequest design;  ///< populated when op == Design
};

/// Decode one line. Throws ServerError (category protocol/usage) on any
/// malformed input: invalid JSON, non-object top level, unknown op or field,
/// wrong field types, out-of-range values, frames over `maxFrameBytes`.
/// Fires the "serve-frame" fault point before parsing.
[[nodiscard]] RequestFrame parseRequestFrame(std::string_view line,
                                             std::size_t maxFrameBytes);

/// Best-effort id recovery from a line that failed parseRequestFrame(), so
/// the error response still echoes the caller's id when one is readable.
/// Returns "null" when the line is too broken to tell.
[[nodiscard]] std::string extractFrameId(std::string_view line);

// ---- response builders (single lines, no trailing '\n') -------------------

[[nodiscard]] std::string makeErrorResponse(const std::string& idJson,
                                            ServerErrorCategory category,
                                            const std::string& message);

/// `resultJson` must be a complete JSON value (typically an object built
/// with JsonWriter); it is embedded verbatim.
[[nodiscard]] std::string makeResultResponse(const std::string& idJson,
                                             const std::string& resultJson);

/// The "design" success payload: summary numbers plus (optionally) the
/// finished design graph text — exactly what the one-shot CLI would print
/// and save for the same request.
[[nodiscard]] std::string makeDesignResponse(const std::string& idJson,
                                             const DesignSummary& summary,
                                             const std::string& designText,
                                             bool cacheHit);

/// Just the result object of a design response (no id envelope) — what the
/// exact-request memo stores, so a memo hit is re-enveloped under the new
/// request's id without rebuilding the payload.
[[nodiscard]] std::string makeDesignResultJson(const DesignSummary& summary,
                                               const std::string& designText,
                                               bool cacheHit);

}  // namespace pmsched
