#pragma once
// Activation analysis: the exact probability that each operation executes
// in a power-managed design, under the paper's model that every mux selects
// each input with probability 1/2, independently.
//
// A gated node's activation condition is a DNF over "select signal s has
// value v" literals: a single conjunction for the paper's per-mux gating
// (nested gating composes by AND), and a genuine disjunction for nodes
// gated by the Shared extension. Probabilities are dyadic rationals and are
// computed exactly — Table II's "average number of operations executed"
// columns fall out of summing them per unit class.

#include <array>
#include <memory>
#include <vector>

#include "power/power_model.hpp"
#include "sched/bdd.hpp"
#include "sched/power_transform.hpp"
#include "support/rational.hpp"

namespace pmsched {

class RunBudget;

struct ActivationResult {
  /// Execution probability per node (1 for ungated operations). Exact
  /// unless the matching errorBar entry is nonzero (see below).
  std::vector<Rational> probability;
  /// Resolved activation condition per node (TRUE for ungated ones).
  std::vector<GateDnf> condition;

  /// One BDD manager shared by every condition in the design: nested and
  /// shared gating produce heavily overlapping conditions, so hash-consing
  /// makes `bdd[n]` a canonical handle (equal function <=> equal ref) and
  /// later queries (probability, support, equivalence) reuse the built
  /// structure instead of re-enumerating. Shared so copies of the result
  /// keep the handles valid.
  std::shared_ptr<BddManager> bdds;
  /// Canonical condition BDD per node (kBddTrue for ungated operations,
  /// kBddInvalid when the build degraded for that node — consumers that
  /// need the BDD must check; the controller path only reads condition[]).
  std::vector<BddRef> bdd;

  /// Per-node bound on |probability[n] - exact P(n)|. Zero for every node
  /// computed exactly; nonzero entries mark nodes that fell back to the
  /// bounded-error estimate (support past Rational's width, BDD arena at
  /// its cap, or run budget exhausted mid-analysis).
  std::vector<double> errorBar;
  /// True when at least one node's probability is an estimate.
  bool degraded = false;

  /// Sum of probabilities per unit class — the paper's Table II
  /// "Average Number of Operations Executed" columns.
  std::array<Rational, kNumUnitClasses> averageExecuted{};
  /// Static op counts per class (every op executes without PM).
  std::array<int, kNumUnitClasses> totalOps{};

  /// Expected datapath power with PM, in the model's relative units.
  [[nodiscard]] double expectedPower(const OpPowerModel& model) const;
  /// Datapath power without PM (all ops execute).
  [[nodiscard]] double fullPower(const OpPowerModel& model) const;
  /// The paper's "Power Red.(%)" column.
  [[nodiscard]] double reductionPercent(const OpPowerModel& model) const;

  [[nodiscard]] Rational averageOf(ResourceClass rc) const {
    return averageExecuted[unitIndex(rc)];
  }
};

/// Analyze a power-managed design; gating information comes from the
/// transform (and the shared-gating pass, if it ran). With a budget, the
/// BDD arenas honor its node cap and exhaustion mid-analysis degrades the
/// remaining nodes to bounded-error estimates instead of aborting; either
/// way a node whose exact probability overflows Rational falls back to
/// BddManager::probabilityApprox with an explicit error bar.
[[nodiscard]] ActivationResult analyzeActivation(const PowerManagedDesign& design,
                                                 const RunBudget* budget = nullptr);

}  // namespace pmsched
