#include "power/activation.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <utility>

#include "support/run_budget.hpp"
#include "support/thread_pool.hpp"

namespace pmsched {

namespace {

/// Fewest nontrivial conditions for which the partitioned build is worth
/// spinning up the pool. Partitions trade away the shared manager's
/// cross-node cache (each rebuilds the subformulas it shares with other
/// partitions), so small condition sets are strictly better off
/// sequential; the threshold errs high.
constexpr std::size_t kMinConditionsForParallel = 64;

/// Snap a double in [0, 1] onto the 52-fractional-bit dyadic grid — every
/// such grid point is an exact Rational, and the snap moves the value by at
/// most 2^-53.
Rational quantizeProbability(double v) {
  constexpr std::int64_t kDen = std::int64_t{1} << 52;
  const double clamped = std::min(std::max(v, 0.0), 1.0);
  return Rational{static_cast<std::int64_t>(std::llround(clamped * static_cast<double>(kDen))),
                  kDen};
}

/// What one condition's analysis produced, exactly or degraded.
struct NodeOutcome {
  BddRef ref = kBddInvalid;  // kBddInvalid when no canonical handle exists
  Rational prob = Rational::zero();
  double error = 0;  // 0 = exact
  bool degraded = false;
};

/// Probability sandwich straight from the DNF, no BDD required: each
/// normalized term holds with probability exactly 2^-|term|, so the union
/// is at least the largest single term and at most the (clamped) sum. The
/// midpoint with half-width error bar is the last-resort estimate when the
/// budget refuses even the BDD build.
NodeOutcome dnfIntervalEstimate(const GateDnf& cond) {
  double lb = 0, ub = 0;
  for (const GateTerm& term : cond) {
    const double p = std::ldexp(1.0, -static_cast<int>(term.size()));
    lb = std::max(lb, p);
    ub += p;
  }
  ub = std::min(ub, 1.0);
  NodeOutcome out;
  out.prob = quantizeProbability((lb + ub) / 2.0);
  out.error = (ub - lb) / 2.0 + 0x1p-53;
  out.degraded = true;
  return out;
}

/// Build one condition in `mgr`, degrading per the robustness contract:
/// a node-cap trip mid-build yields the DNF interval estimate (no handle);
/// an exact probability past Rational's width yields the bounded-error
/// BDD estimate (handle kept). Never throws BudgetExceededError.
NodeOutcome buildCondition(BddManager& mgr, const GateDnf& cond) {
  NodeOutcome out;
  try {
    out.ref = mgr.fromDnf(cond);
  } catch (const BudgetExceededError&) {
    return dnfIntervalEstimate(cond);  // manager stays valid; handle refused
  }
  try {
    out.prob = mgr.probability(out.ref);
  } catch (const BudgetExceededError&) {
    const BddManager::ApproxProbability approx = mgr.probabilityApprox(out.ref);
    out.prob = quantizeProbability(approx.value);
    out.error = approx.error + 0x1p-53;
    out.degraded = true;
  }
  return out;
}

}  // namespace

ActivationResult analyzeActivation(const PowerManagedDesign& design, const RunBudget* budget) {
  const Graph& g = design.graph;

  ActivationResult result;
  result.condition = resolveActivationConditions(design);
  result.probability.assign(g.size(), Rational::one());
  result.bdds = std::make_shared<BddManager>();
  result.bdd.assign(g.size(), kBddTrue);
  result.errorBar.assign(g.size(), 0.0);
  result.averageExecuted.fill(Rational::zero());
  result.totalOps.fill(0);
  if (budget != nullptr && budget->bddNodeCap() != 0)
    result.bdds->setNodeLimit(budget->bddNodeCap());

  // Every condition BDD ends up in ONE manager, so the conditions of a
  // gated cone (which share muxes and therefore subformulas) share nodes,
  // and the per-node probability is a cache hit for every subgraph already
  // weighed for an earlier node.
  std::vector<NodeId> nontrivial;
  for (NodeId n = 0; n < g.size(); ++n) {
    const GateDnf& cond = result.condition[n];
    if (dnfIsTrue(cond)) {
      result.bdd[n] = kBddTrue;
    } else if (cond.empty()) {
      result.bdd[n] = kBddFalse;
      result.probability[n] = Rational::zero();
    } else {
      nontrivial.push_back(n);
    }
  }

  // Condition classes: nodes gated by the same cone carry *equal* DNFs, so
  // each distinct condition is analyzed once and the outcome fanned out to
  // every node in its class. Within one manager an equal DNF hash-conses to
  // the identical ref anyway, so the dedup changes no result — it removes
  // the redundant rebuild (and, partitioned, the redundant merge) work.
  std::vector<const GateDnf*> classCond;            // first occurrence, class order
  std::vector<int> classOfNode(nontrivial.size());  // parallel to `nontrivial`
  {
    std::map<GateDnf, int> index;
    for (std::size_t i = 0; i < nontrivial.size(); ++i) {
      const GateDnf& cond = result.condition[nontrivial[i]];
      const auto [it, fresh] = index.emplace(cond, static_cast<int>(classCond.size()));
      if (fresh) classCond.push_back(&cond);
      classOfNode[i] = it->second;
    }
  }

  std::vector<NodeOutcome> outs(classCond.size());
  const std::size_t threads = threadCount();
  const bool partitioned =
      threads > 1 && (speculationMode() == SpeculationMode::Force
                          ? classCond.size() >= 2
                          : classCond.size() >= kMinConditionsForParallel);
  if (partitioned) {
    // Partitioned parallel build, in two passes. Pass 1 builds a shared
    // core — every term that occurs in more than one condition class, i.e.
    // the cross-partition common subconditions — directly in the final
    // manager; pass 2 has every partition import that core (a structural
    // copy under the shared variable order) and then build its share of
    // the classes on top, so the sharing the partition split forfeits is
    // recovered instead of re-derived per partition. The merge stays
    // canonical and thread-count independent:
    //  * all managers pre-register the SAME variable order — the first-use
    //    order a sequential fromDnf sweep in node id order would produce —
    //    so a class BDD is structurally identical no matter which
    //    partition built it (reordering may change an order mid-build;
    //    importFrom then falls back to its ite-based transfer, which is
    //    still exact — see PARALLELISM.md);
    //  * the merge walks classes in first-occurrence order, so the final
    //    manager's node numbering is a deterministic function of the
    //    conditions alone.
    // Probabilities are computed inside the partitions (exact dyadics are
    // manager-independent) where they parallelize.
    std::vector<NodeId> varOrder;
    {
      std::vector<char> seen(g.size(), 0);
      for (const NodeId n : nontrivial)
        for (const NodeId s : dnfSupport(result.condition[n]))
          if (!seen[s]) {
            seen[s] = 1;
            varOrder.push_back(s);
          }
    }
    result.bdds->registerVariables(varOrder);

    // Pass 1: the shared core, in deterministic first-occurrence order.
    std::vector<GateDnf> coreTerms;
    {
      std::map<GateTerm, int> occurrences;
      for (const GateDnf* cond : classCond)
        for (const GateTerm& term : *cond) ++occurrences[term];
      std::map<GateTerm, bool> emitted;
      for (const GateDnf* cond : classCond)
        for (const GateTerm& term : *cond)
          if (occurrences[term] >= 2 && !std::exchange(emitted[term], true))
            coreTerms.push_back(GateDnf{term});
    }
    std::vector<BddRef> coreRefs;
    try {
      for (const GateDnf& term : coreTerms) coreRefs.push_back(result.bdds->fromDnf(term));
    } catch (const BudgetExceededError&) {
      // The core is purely an optimization: partitions that cannot seed
      // from it simply rebuild what they need.
    }

    // Pass 2: partitions import the core, then build their classes.
    struct Partition {
      BddManager mgr;
      std::vector<NodeOutcome> out;  // parallel to its slice of the classes
    };
    const std::size_t parts = std::min(threads, classCond.size());
    std::vector<std::unique_ptr<Partition>> partition(parts);
    // Round-robin assignment: class c belongs to partition c % parts
    // (balances the deep conditions, which cluster at high node ids).
    // Degradation happens INSIDE the lambda — buildCondition never throws
    // a budget error, so nothing escapes parallelFor. The core manager is
    // only read (importFrom takes src const), so the concurrent seeding
    // imports are race-free.
    globalThreadPool().parallelFor(0, parts, 1, [&](std::size_t, std::size_t p) {
      auto part = std::make_unique<Partition>();
      part->mgr.registerVariables(varOrder);
      if (budget != nullptr && budget->bddNodeCap() != 0)
        part->mgr.setNodeLimit(budget->bddNodeCap());
      {
        std::vector<BddRef> coreMemo(result.bdds->nodeCount(), kBddInvalid);
        try {
          for (const BddRef r : coreRefs) (void)part->mgr.importFrom(*result.bdds, r, coreMemo);
        } catch (const BudgetExceededError&) {
          // Partition arena at its cap already: build unseeded; the class
          // builds degrade through buildCondition as usual.
        }
      }
      for (std::size_t c = p; c < classCond.size(); c += parts)
        part->out.push_back(budget != nullptr && budget->exhausted()
                                ? dnfIntervalEstimate(*classCond[c])
                                : buildCondition(part->mgr, *classCond[c]));
      partition[p] = std::move(part);
    });

    // Merge per class; core structure is already present in the final
    // manager, so the shared parts of every import are memo hits.
    std::vector<std::vector<BddRef>> memo(parts);
    for (std::size_t p = 0; p < parts; ++p)
      memo[p].assign(partition[p]->mgr.nodeCount(), kBddInvalid);
    for (std::size_t c = 0; c < classCond.size(); ++c) {
      const std::size_t p = c % parts;
      NodeOutcome out = partition[p]->out[c / parts];
      if (out.ref != kBddInvalid) {
        try {
          out.ref = result.bdds->importFrom(partition[p]->mgr, out.ref, memo[p]);
        } catch (const BudgetExceededError&) {
          out.ref = kBddInvalid;  // merge arena at its cap; keep the
          out.degraded = true;    // partition's (exact) probability
        }
      }
      outs[c] = out;
    }
  } else {
    for (std::size_t c = 0; c < classCond.size(); ++c)
      outs[c] = budget != nullptr && budget->exhausted()
                    ? dnfIntervalEstimate(*classCond[c])
                    : buildCondition(*result.bdds, *classCond[c]);
  }

  for (std::size_t i = 0; i < nontrivial.size(); ++i) {
    const NodeOutcome& out = outs[static_cast<std::size_t>(classOfNode[i])];
    const NodeId n = nontrivial[i];
    result.bdd[n] = out.ref;
    result.probability[n] = out.prob;
    result.errorBar[n] = out.error;
    result.degraded = result.degraded || out.degraded;
  }
  if (result.degraded && budget != nullptr)
    budget->noteDegraded("activation-analysis", BudgetKind::RationalWidth,
                         "some probabilities are bounded-error estimates (see errorBar)");

  for (NodeId n = 0; n < g.size(); ++n) {
    const ResourceClass rc = resourceClassOf(g.kind(n));
    if (rc == ResourceClass::None) continue;
    result.averageExecuted[unitIndex(rc)] += result.probability[n];
    ++result.totalOps[unitIndex(rc)];
  }
  return result;
}

double ActivationResult::expectedPower(const OpPowerModel& model) const {
  double p = 0;
  for (std::size_t i = 0; i < kNumUnitClasses; ++i)
    p += averageExecuted[i].toDouble() * model.weight[i];
  return p;
}

double ActivationResult::fullPower(const OpPowerModel& model) const {
  double p = 0;
  for (std::size_t i = 0; i < kNumUnitClasses; ++i)
    p += static_cast<double>(totalOps[i]) * model.weight[i];
  return p;
}

double ActivationResult::reductionPercent(const OpPowerModel& model) const {
  const double full = fullPower(model);
  if (full == 0) return 0;
  return (full - expectedPower(model)) / full * 100.0;
}

}  // namespace pmsched
