#include "power/activation.hpp"

#include <memory>

#include "support/thread_pool.hpp"

namespace pmsched {

namespace {

/// Fewest nontrivial conditions for which the partitioned build is worth
/// spinning up the pool. Partitions trade away the shared manager's
/// cross-node cache (each rebuilds the subformulas it shares with other
/// partitions), so small condition sets are strictly better off
/// sequential; the threshold errs high.
constexpr std::size_t kMinConditionsForParallel = 64;

}  // namespace

ActivationResult analyzeActivation(const PowerManagedDesign& design) {
  const Graph& g = design.graph;

  ActivationResult result;
  result.condition = resolveActivationConditions(design);
  result.probability.assign(g.size(), Rational::one());
  result.bdds = std::make_shared<BddManager>();
  result.bdd.assign(g.size(), kBddTrue);
  result.averageExecuted.fill(Rational::zero());
  result.totalOps.fill(0);

  // Every condition BDD ends up in ONE manager, so the conditions of a
  // gated cone (which share muxes and therefore subformulas) share nodes,
  // and the per-node probability is a cache hit for every subgraph already
  // weighed for an earlier node.
  std::vector<NodeId> nontrivial;
  for (NodeId n = 0; n < g.size(); ++n) {
    const GateDnf& cond = result.condition[n];
    if (dnfIsTrue(cond)) {
      result.bdd[n] = kBddTrue;
    } else if (cond.empty()) {
      result.bdd[n] = kBddFalse;
      result.probability[n] = Rational::zero();
    } else {
      nontrivial.push_back(n);
    }
  }

  const std::size_t threads = threadCount();
  const bool partitioned =
      threads > 1 && (speculationMode() == SpeculationMode::Force
                          ? nontrivial.size() >= 2
                          : nontrivial.size() >= kMinConditionsForParallel);
  if (partitioned) {
    // Partitioned parallel build. Every worker builds its share of the
    // conditions in a private manager, then the shares are merged into the
    // shared manager by a hash-consed structural copy. Two properties make
    // the merge canonical and the output independent of the thread count:
    //  * all managers (partitions and the final one) pre-register the SAME
    //    variable order — the first-use order a sequential fromDnf sweep in
    //    node id order would produce — so a partition BDD is structurally
    //    identical to what the merge manager would build itself;
    //  * the merge walks nodes in id order, so the final manager's node
    //    numbering is a deterministic function of the conditions alone.
    // Probabilities are computed inside the partitions (exact dyadics are
    // manager-independent) where they parallelize.
    std::vector<NodeId> varOrder;
    {
      std::vector<char> seen(g.size(), 0);
      for (const NodeId n : nontrivial)
        for (const NodeId s : dnfSupport(result.condition[n]))
          if (!seen[s]) {
            seen[s] = 1;
            varOrder.push_back(s);
          }
    }
    result.bdds->registerVariables(varOrder);

    struct Partition {
      BddManager mgr;
      std::vector<BddRef> ref;      // parallel to its slice of `nontrivial`
      std::vector<Rational> prob;
    };
    const std::size_t parts = std::min(threads, nontrivial.size());
    std::vector<std::unique_ptr<Partition>> partition(parts);
    // Round-robin assignment: nontrivial[i] belongs to partition i % parts
    // (balances the deep conditions, which cluster at high node ids).
    globalThreadPool().parallelFor(0, parts, 1, [&](std::size_t, std::size_t p) {
      auto part = std::make_unique<Partition>();
      part->mgr.registerVariables(varOrder);
      for (std::size_t i = p; i < nontrivial.size(); i += parts) {
        const BddRef r = part->mgr.fromDnf(result.condition[nontrivial[i]]);
        part->ref.push_back(r);
        part->prob.push_back(part->mgr.probability(r));
      }
      partition[p] = std::move(part);
    });

    std::vector<std::vector<BddRef>> memo(parts);
    for (std::size_t p = 0; p < parts; ++p)
      memo[p].assign(partition[p]->mgr.nodeCount(), kBddInvalid);
    for (std::size_t i = 0; i < nontrivial.size(); ++i) {
      const std::size_t p = i % parts;
      const std::size_t slot = i / parts;
      const NodeId n = nontrivial[i];
      result.bdd[n] = result.bdds->importFrom(partition[p]->mgr, partition[p]->ref[slot],
                                              memo[p]);
      result.probability[n] = partition[p]->prob[slot];
    }
  } else {
    for (const NodeId n : nontrivial) {
      result.bdd[n] = result.bdds->fromDnf(result.condition[n]);
      result.probability[n] = result.bdds->probability(result.bdd[n]);
    }
  }

  for (NodeId n = 0; n < g.size(); ++n) {
    const ResourceClass rc = resourceClassOf(g.kind(n));
    if (rc == ResourceClass::None) continue;
    result.averageExecuted[unitIndex(rc)] += result.probability[n];
    ++result.totalOps[unitIndex(rc)];
  }
  return result;
}

double ActivationResult::expectedPower(const OpPowerModel& model) const {
  double p = 0;
  for (std::size_t i = 0; i < kNumUnitClasses; ++i)
    p += averageExecuted[i].toDouble() * model.weight[i];
  return p;
}

double ActivationResult::fullPower(const OpPowerModel& model) const {
  double p = 0;
  for (std::size_t i = 0; i < kNumUnitClasses; ++i)
    p += static_cast<double>(totalOps[i]) * model.weight[i];
  return p;
}

double ActivationResult::reductionPercent(const OpPowerModel& model) const {
  const double full = fullPower(model);
  if (full == 0) return 0;
  return (full - expectedPower(model)) / full * 100.0;
}

}  // namespace pmsched
