#include "power/activation.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "support/run_budget.hpp"
#include "support/thread_pool.hpp"

namespace pmsched {

namespace {

/// Fewest nontrivial conditions for which the partitioned build is worth
/// spinning up the pool. Partitions trade away the shared manager's
/// cross-node cache (each rebuilds the subformulas it shares with other
/// partitions), so small condition sets are strictly better off
/// sequential; the threshold errs high.
constexpr std::size_t kMinConditionsForParallel = 64;

/// Snap a double in [0, 1] onto the 52-fractional-bit dyadic grid — every
/// such grid point is an exact Rational, and the snap moves the value by at
/// most 2^-53.
Rational quantizeProbability(double v) {
  constexpr std::int64_t kDen = std::int64_t{1} << 52;
  const double clamped = std::min(std::max(v, 0.0), 1.0);
  return Rational{static_cast<std::int64_t>(std::llround(clamped * static_cast<double>(kDen))),
                  kDen};
}

/// What one condition's analysis produced, exactly or degraded.
struct NodeOutcome {
  BddRef ref = kBddInvalid;  // kBddInvalid when no canonical handle exists
  Rational prob = Rational::zero();
  double error = 0;  // 0 = exact
  bool degraded = false;
};

/// Probability sandwich straight from the DNF, no BDD required: each
/// normalized term holds with probability exactly 2^-|term|, so the union
/// is at least the largest single term and at most the (clamped) sum. The
/// midpoint with half-width error bar is the last-resort estimate when the
/// budget refuses even the BDD build.
NodeOutcome dnfIntervalEstimate(const GateDnf& cond) {
  double lb = 0, ub = 0;
  for (const GateTerm& term : cond) {
    const double p = std::ldexp(1.0, -static_cast<int>(term.size()));
    lb = std::max(lb, p);
    ub += p;
  }
  ub = std::min(ub, 1.0);
  NodeOutcome out;
  out.prob = quantizeProbability((lb + ub) / 2.0);
  out.error = (ub - lb) / 2.0 + 0x1p-53;
  out.degraded = true;
  return out;
}

/// Build one condition in `mgr`, degrading per the robustness contract:
/// a node-cap trip mid-build yields the DNF interval estimate (no handle);
/// an exact probability past Rational's width yields the bounded-error
/// BDD estimate (handle kept). Never throws BudgetExceededError.
NodeOutcome buildCondition(BddManager& mgr, const GateDnf& cond) {
  NodeOutcome out;
  try {
    out.ref = mgr.fromDnf(cond);
  } catch (const BudgetExceededError&) {
    return dnfIntervalEstimate(cond);  // manager stays valid; handle refused
  }
  try {
    out.prob = mgr.probability(out.ref);
  } catch (const BudgetExceededError&) {
    const BddManager::ApproxProbability approx = mgr.probabilityApprox(out.ref);
    out.prob = quantizeProbability(approx.value);
    out.error = approx.error + 0x1p-53;
    out.degraded = true;
  }
  return out;
}

}  // namespace

ActivationResult analyzeActivation(const PowerManagedDesign& design, const RunBudget* budget) {
  const Graph& g = design.graph;

  ActivationResult result;
  result.condition = resolveActivationConditions(design);
  result.probability.assign(g.size(), Rational::one());
  result.bdds = std::make_shared<BddManager>();
  result.bdd.assign(g.size(), kBddTrue);
  result.errorBar.assign(g.size(), 0.0);
  result.averageExecuted.fill(Rational::zero());
  result.totalOps.fill(0);
  if (budget != nullptr && budget->bddNodeCap() != 0)
    result.bdds->setNodeLimit(budget->bddNodeCap());

  // Every condition BDD ends up in ONE manager, so the conditions of a
  // gated cone (which share muxes and therefore subformulas) share nodes,
  // and the per-node probability is a cache hit for every subgraph already
  // weighed for an earlier node.
  std::vector<NodeId> nontrivial;
  for (NodeId n = 0; n < g.size(); ++n) {
    const GateDnf& cond = result.condition[n];
    if (dnfIsTrue(cond)) {
      result.bdd[n] = kBddTrue;
    } else if (cond.empty()) {
      result.bdd[n] = kBddFalse;
      result.probability[n] = Rational::zero();
    } else {
      nontrivial.push_back(n);
    }
  }

  const std::size_t threads = threadCount();
  const bool partitioned =
      threads > 1 && (speculationMode() == SpeculationMode::Force
                          ? nontrivial.size() >= 2
                          : nontrivial.size() >= kMinConditionsForParallel);
  if (partitioned) {
    // Partitioned parallel build. Every worker builds its share of the
    // conditions in a private manager, then the shares are merged into the
    // shared manager by a hash-consed structural copy. Two properties make
    // the merge canonical and the output independent of the thread count:
    //  * all managers (partitions and the final one) pre-register the SAME
    //    variable order — the first-use order a sequential fromDnf sweep in
    //    node id order would produce — so a partition BDD is structurally
    //    identical to what the merge manager would build itself;
    //  * the merge walks nodes in id order, so the final manager's node
    //    numbering is a deterministic function of the conditions alone.
    // Probabilities are computed inside the partitions (exact dyadics are
    // manager-independent) where they parallelize.
    std::vector<NodeId> varOrder;
    {
      std::vector<char> seen(g.size(), 0);
      for (const NodeId n : nontrivial)
        for (const NodeId s : dnfSupport(result.condition[n]))
          if (!seen[s]) {
            seen[s] = 1;
            varOrder.push_back(s);
          }
    }
    result.bdds->registerVariables(varOrder);

    struct Partition {
      BddManager mgr;
      std::vector<NodeOutcome> out;  // parallel to its slice of `nontrivial`
    };
    const std::size_t parts = std::min(threads, nontrivial.size());
    std::vector<std::unique_ptr<Partition>> partition(parts);
    // Round-robin assignment: nontrivial[i] belongs to partition i % parts
    // (balances the deep conditions, which cluster at high node ids).
    // Degradation happens INSIDE the lambda — buildCondition never throws
    // a budget error, so nothing escapes parallelFor.
    globalThreadPool().parallelFor(0, parts, 1, [&](std::size_t, std::size_t p) {
      auto part = std::make_unique<Partition>();
      part->mgr.registerVariables(varOrder);
      if (budget != nullptr && budget->bddNodeCap() != 0)
        part->mgr.setNodeLimit(budget->bddNodeCap());
      for (std::size_t i = p; i < nontrivial.size(); i += parts) {
        const GateDnf& cond = result.condition[nontrivial[i]];
        part->out.push_back(budget != nullptr && budget->exhausted()
                                ? dnfIntervalEstimate(cond)
                                : buildCondition(part->mgr, cond));
      }
      partition[p] = std::move(part);
    });

    std::vector<std::vector<BddRef>> memo(parts);
    for (std::size_t p = 0; p < parts; ++p)
      memo[p].assign(partition[p]->mgr.nodeCount(), kBddInvalid);
    for (std::size_t i = 0; i < nontrivial.size(); ++i) {
      const std::size_t p = i % parts;
      const std::size_t slot = i / parts;
      const NodeId n = nontrivial[i];
      NodeOutcome& out = partition[p]->out[slot];
      if (out.ref != kBddInvalid) {
        try {
          result.bdd[n] =
              result.bdds->importFrom(partition[p]->mgr, out.ref, memo[p]);
        } catch (const BudgetExceededError&) {
          result.bdd[n] = kBddInvalid;  // merge arena at its cap; keep the
          out.degraded = true;          // partition's (exact) probability
        }
      } else {
        result.bdd[n] = kBddInvalid;
      }
      result.probability[n] = out.prob;
      result.errorBar[n] = out.error;
      result.degraded = result.degraded || out.degraded;
    }
  } else {
    for (const NodeId n : nontrivial) {
      const GateDnf& cond = result.condition[n];
      const NodeOutcome out = budget != nullptr && budget->exhausted()
                                  ? dnfIntervalEstimate(cond)
                                  : buildCondition(*result.bdds, cond);
      result.bdd[n] = out.ref;
      result.probability[n] = out.prob;
      result.errorBar[n] = out.error;
      result.degraded = result.degraded || out.degraded;
    }
  }
  if (result.degraded && budget != nullptr)
    budget->noteDegraded("activation-analysis", BudgetKind::RationalWidth,
                         "some probabilities are bounded-error estimates (see errorBar)");

  for (NodeId n = 0; n < g.size(); ++n) {
    const ResourceClass rc = resourceClassOf(g.kind(n));
    if (rc == ResourceClass::None) continue;
    result.averageExecuted[unitIndex(rc)] += result.probability[n];
    ++result.totalOps[unitIndex(rc)];
  }
  return result;
}

double ActivationResult::expectedPower(const OpPowerModel& model) const {
  double p = 0;
  for (std::size_t i = 0; i < kNumUnitClasses; ++i)
    p += averageExecuted[i].toDouble() * model.weight[i];
  return p;
}

double ActivationResult::fullPower(const OpPowerModel& model) const {
  double p = 0;
  for (std::size_t i = 0; i < kNumUnitClasses; ++i)
    p += static_cast<double>(totalOps[i]) * model.weight[i];
  return p;
}

double ActivationResult::reductionPercent(const OpPowerModel& model) const {
  const double full = fullPower(model);
  if (full == 0) return 0;
  return (full - expectedPower(model)) / full * 100.0;
}

}  // namespace pmsched
