#include "power/activation.hpp"

namespace pmsched {

ActivationResult analyzeActivation(const PowerManagedDesign& design) {
  const Graph& g = design.graph;

  ActivationResult result;
  result.condition = resolveActivationConditions(design);
  result.probability.assign(g.size(), Rational::one());
  result.bdds = std::make_shared<BddManager>();
  result.bdd.assign(g.size(), kBddTrue);
  result.averageExecuted.fill(Rational::zero());
  result.totalOps.fill(0);

  for (NodeId n = 0; n < g.size(); ++n) {
    // Every condition BDD lives in one manager, so the conditions of a
    // gated cone (which share muxes and therefore subformulas) share
    // nodes, and the per-node probability is a cache hit for every
    // subgraph already weighed for an earlier node.
    const GateDnf& cond = result.condition[n];
    if (dnfIsTrue(cond)) {
      result.bdd[n] = kBddTrue;
      result.probability[n] = Rational::one();
    } else if (cond.empty()) {
      result.bdd[n] = kBddFalse;
      result.probability[n] = Rational::zero();
    } else {
      result.bdd[n] = result.bdds->fromDnf(cond);
      result.probability[n] = result.bdds->probability(result.bdd[n]);
    }

    const ResourceClass rc = resourceClassOf(g.kind(n));
    if (rc == ResourceClass::None) continue;
    result.averageExecuted[unitIndex(rc)] += result.probability[n];
    ++result.totalOps[unitIndex(rc)];
  }
  return result;
}

double ActivationResult::expectedPower(const OpPowerModel& model) const {
  double p = 0;
  for (std::size_t i = 0; i < kNumUnitClasses; ++i)
    p += averageExecuted[i].toDouble() * model.weight[i];
  return p;
}

double ActivationResult::fullPower(const OpPowerModel& model) const {
  double p = 0;
  for (std::size_t i = 0; i < kNumUnitClasses; ++i)
    p += static_cast<double>(totalOps[i]) * model.weight[i];
  return p;
}

double ActivationResult::reductionPercent(const OpPowerModel& model) const {
  const double full = fullPower(model);
  if (full == 0) return 0;
  return (full - expectedPower(model)) / full * 100.0;
}

}  // namespace pmsched
