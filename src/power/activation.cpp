#include "power/activation.hpp"

namespace pmsched {

ActivationResult analyzeActivation(const PowerManagedDesign& design) {
  const Graph& g = design.graph;

  ActivationResult result;
  result.condition = resolveActivationConditions(design);
  result.probability.assign(g.size(), Rational::one());
  result.averageExecuted.fill(Rational::zero());
  result.totalOps.fill(0);

  for (NodeId n = 0; n < g.size(); ++n) {
    // Most nodes are ungated (TRUE) — skip the support enumeration for them.
    const GateDnf& cond = result.condition[n];
    if (dnfIsTrue(cond))
      result.probability[n] = Rational::one();
    else if (cond.empty())
      result.probability[n] = Rational::zero();
    else
      result.probability[n] = dnfProbability(cond);

    const ResourceClass rc = resourceClassOf(g.kind(n));
    if (rc == ResourceClass::None) continue;
    result.averageExecuted[unitIndex(rc)] += result.probability[n];
    ++result.totalOps[unitIndex(rc)];
  }
  return result;
}

double ActivationResult::expectedPower(const OpPowerModel& model) const {
  double p = 0;
  for (std::size_t i = 0; i < kNumUnitClasses; ++i)
    p += averageExecuted[i].toDouble() * model.weight[i];
  return p;
}

double ActivationResult::fullPower(const OpPowerModel& model) const {
  double p = 0;
  for (std::size_t i = 0; i < kNumUnitClasses; ++i)
    p += static_cast<double>(totalOps[i]) * model.weight[i];
  return p;
}

double ActivationResult::reductionPercent(const OpPowerModel& model) const {
  const double full = fullPower(model);
  if (full == 0) return 0;
  return (full - expectedPower(model)) / full * 100.0;
}

}  // namespace pmsched
