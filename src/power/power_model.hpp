#pragma once
// Relative datapath power model.
//
// The paper (§V) weighs one execution of each operation type by power
// measured from timing simulation with random vectors on an 8-bit datapath:
// MUX:1, COMP:4, +:3, -:3, *:20. Those weights are the default here;
// bench_opweights re-derives them from our own gate-level netlist simulator
// so the model is calibrated rather than assumed.

#include <array>

#include "cdfg/analysis.hpp"
#include "cdfg/op.hpp"

namespace pmsched {

struct OpPowerModel {
  /// Energy per execution of one operation, by unit class (relative units).
  std::array<double, kNumUnitClasses> weight{};

  /// The paper's published weights (8-bit datapath).
  [[nodiscard]] static OpPowerModel paperWeights() {
    OpPowerModel m;
    m.weight[unitIndex(ResourceClass::Mux)] = 1;
    m.weight[unitIndex(ResourceClass::Comparator)] = 4;
    m.weight[unitIndex(ResourceClass::Adder)] = 3;
    m.weight[unitIndex(ResourceClass::Subtractor)] = 3;
    m.weight[unitIndex(ResourceClass::Multiplier)] = 20;
    m.weight[unitIndex(ResourceClass::Logic)] = 1;
    m.weight[unitIndex(ResourceClass::Shifter)] = 2;
    return m;
  }

  /// Width-scaled variant (extension): linear in width for mux/comp/add/sub/
  /// logic/shift, quadratic for the array multiplier. Normalized so width 8
  /// reproduces paperWeights().
  [[nodiscard]] static OpPowerModel scaledToWidth(int width) {
    OpPowerModel m = paperWeights();
    const double lin = static_cast<double>(width) / 8.0;
    for (const ResourceClass rc : kUnitClasses) {
      const double factor = rc == ResourceClass::Multiplier ? lin * lin : lin;
      m.weight[unitIndex(rc)] *= factor;
    }
    return m;
  }

  [[nodiscard]] double weightOf(ResourceClass rc) const { return weight[unitIndex(rc)]; }

  /// Power of a graph when every operation executes every sample
  /// (the no-power-management baseline).
  [[nodiscard]] double fullPower(const OpStats& stats) const {
    return stats.mux * weightOf(ResourceClass::Mux) +
           stats.comp * weightOf(ResourceClass::Comparator) +
           stats.add * weightOf(ResourceClass::Adder) +
           stats.sub * weightOf(ResourceClass::Subtractor) +
           stats.mul * weightOf(ResourceClass::Multiplier) +
           stats.logic * weightOf(ResourceClass::Logic) +
           stats.shift * weightOf(ResourceClass::Shifter);
  }
};

}  // namespace pmsched
