#include "netlist/netlist.hpp"

#include <algorithm>

namespace pmsched {

double gateArea(GateKind kind) {
  switch (kind) {
    case GateKind::Const0:
    case GateKind::Const1:
    case GateKind::Input:
    case GateKind::Buf: return 0.0;
    case GateKind::Inv: return 0.5;
    case GateKind::And2:
    case GateKind::Or2: return 1.5;
    case GateKind::Nand2:
    case GateKind::Nor2: return 1.0;
    case GateKind::Xor2:
    case GateKind::Xnor2: return 2.5;
    case GateKind::Dff: return 4.0;
  }
  return 0.0;
}

SignalId Netlist::addInput(std::string name) {
  const auto id = static_cast<SignalId>(gates_.size());
  gates_.push_back(Gate{GateKind::Input, kNoSignal, kNoSignal, false});
  inputs_.emplace_back(id, std::move(name));
  return id;
}

SignalId Netlist::constant(bool value) {
  const auto id = static_cast<SignalId>(gates_.size());
  gates_.push_back(Gate{value ? GateKind::Const1 : GateKind::Const0, kNoSignal, kNoSignal,
                        false});
  return id;
}

SignalId Netlist::addGate(GateKind kind, SignalId a, SignalId b) {
  switch (kind) {
    case GateKind::Buf:
    case GateKind::Inv:
      if (a >= gates_.size() || b != kNoSignal)
        throw SynthesisError("addGate: unary gate operand error");
      break;
    case GateKind::And2:
    case GateKind::Or2:
    case GateKind::Nand2:
    case GateKind::Nor2:
    case GateKind::Xor2:
    case GateKind::Xnor2:
      if (a >= gates_.size() || b >= gates_.size())
        throw SynthesisError("addGate: binary gate operand error");
      break;
    default: throw SynthesisError("addGate: not a combinational gate kind");
  }
  const auto id = static_cast<SignalId>(gates_.size());
  gates_.push_back(Gate{kind, a, b, false});
  return id;
}

SignalId Netlist::addDff(SignalId d, SignalId enable, bool init) {
  if (d >= gates_.size()) throw SynthesisError("addDff: dangling data input");
  if (enable != kNoSignal && enable >= gates_.size())
    throw SynthesisError("addDff: dangling enable");
  const auto id = static_cast<SignalId>(gates_.size());
  gates_.push_back(Gate{GateKind::Dff, d, enable, init});
  return id;
}

void Netlist::markOutput(SignalId sig, std::string name) {
  if (sig >= gates_.size()) throw SynthesisError("markOutput: dangling signal");
  outputs_.emplace_back(sig, std::move(name));
}

std::size_t Netlist::combGateCount() const {
  return static_cast<std::size_t>(std::count_if(gates_.begin(), gates_.end(), [](const Gate& g) {
    return g.kind != GateKind::Dff && g.kind != GateKind::Input &&
           g.kind != GateKind::Const0 && g.kind != GateKind::Const1;
  }));
}

std::size_t Netlist::dffCount() const {
  return static_cast<std::size_t>(std::count_if(gates_.begin(), gates_.end(), [](const Gate& g) {
    return g.kind == GateKind::Dff;
  }));
}

double Netlist::area() const {
  double total = 0;
  for (const Gate& g : gates_) total += gateArea(g.kind);
  return total;
}

void Netlist::patchBufData(SignalId buf, SignalId newData) {
  if (buf >= gates_.size() || gates_[buf].kind != GateKind::Buf)
    throw SynthesisError("patchBufData: not a Buf");
  if (newData >= gates_.size()) throw SynthesisError("patchBufData: dangling source");
  gates_[buf].a = newData;
}

void Netlist::patchDffData(SignalId dff, SignalId newData) {
  if (dff >= gates_.size() || gates_[dff].kind != GateKind::Dff)
    throw SynthesisError("patchDffData: not a Dff");
  if (newData >= gates_.size()) throw SynthesisError("patchDffData: dangling source");
  gates_[dff].a = newData;
}

std::vector<SignalId> Netlist::combOrder() const {
  // Full topological sort of the combinational gates (patching can make
  // ids non-monotonic). DFFs, inputs and constants are sources.
  auto isSource = [&](SignalId id) {
    const GateKind k = gates_[id].kind;
    return k == GateKind::Dff || k == GateKind::Input || k == GateKind::Const0 ||
           k == GateKind::Const1;
  };

  std::vector<int> indegree(gates_.size(), 0);
  std::vector<std::vector<SignalId>> succ(gates_.size());
  for (SignalId i = 0; i < gates_.size(); ++i) {
    if (isSource(i)) continue;
    const Gate& g = gates_[i];
    for (const SignalId op : {g.a, g.b}) {
      if (op == kNoSignal || isSource(op)) continue;
      ++indegree[i];
      succ[op].push_back(i);
    }
  }

  std::vector<SignalId> ready;
  for (SignalId i = 0; i < gates_.size(); ++i)
    if (!isSource(i) && indegree[i] == 0) ready.push_back(i);

  std::vector<SignalId> order;
  order.reserve(gates_.size());
  while (!ready.empty()) {
    const SignalId n = ready.back();
    ready.pop_back();
    order.push_back(n);
    for (const SignalId s : succ[n])
      if (--indegree[s] == 0) ready.push_back(s);
  }

  std::size_t combCount = 0;
  for (SignalId i = 0; i < gates_.size(); ++i)
    if (!isSource(i)) ++combCount;
  if (order.size() != combCount)
    throw SynthesisError("netlist '" + name_ + "': combinational cycle detected");
  return order;
}

std::vector<std::uint32_t> Netlist::fanoutCounts() const {
  std::vector<std::uint32_t> fanout(gates_.size(), 0);
  for (const Gate& g : gates_) {
    if (g.a != kNoSignal) ++fanout[g.a];
    if (g.b != kNoSignal) ++fanout[g.b];
  }
  return fanout;
}

Simulator::Simulator(const Netlist& netlist) : netlist_(netlist) {
  (void)netlist.combOrder();  // validates: no combinational cycles

  fanouts_.resize(netlist.signalCount());
  for (SignalId i = 0; i < netlist.signalCount(); ++i) {
    const Gate& g = netlist.gate(i);
    if (g.kind == GateKind::Dff || g.kind == GateKind::Input ||
        g.kind == GateKind::Const0 || g.kind == GateKind::Const1)
      continue;
    if (g.a != kNoSignal) fanouts_[g.a].push_back(i);
    if (g.b != kNoSignal) fanouts_[g.b].push_back(i);
  }

  const auto fanout = netlist.fanoutCounts();
  weight_.resize(netlist.signalCount());
  for (std::size_t i = 0; i < weight_.size(); ++i) weight_[i] = 1 + fanout[i];

  value_.assign(netlist.signalCount(), false);
  pending_.assign(netlist.signalCount(), false);
  for (SignalId i = 0; i < netlist.signalCount(); ++i) {
    const Gate& g = netlist.gate(i);
    if (g.kind == GateKind::Const1) value_[i] = true;
    if (g.kind == GateKind::Dff) value_[i] = g.dffInit;
  }

  // Bring all combinational logic to a consistent power-on state without
  // charging energy for it.
  for (const SignalId id : netlist.combOrder()) value_[id] = evaluate(id);
}

bool Simulator::evaluate(SignalId sig) const {
  const Gate& g = netlist_.gate(sig);
  const bool a = g.a != kNoSignal && value_[g.a];
  const bool b = g.b != kNoSignal && value_[g.b];
  switch (g.kind) {
    case GateKind::Buf: return a;
    case GateKind::Inv: return !a;
    case GateKind::And2: return a && b;
    case GateKind::Or2: return a || b;
    case GateKind::Nand2: return !(a && b);
    case GateKind::Nor2: return !(a || b);
    case GateKind::Xor2: return a != b;
    case GateKind::Xnor2: return a == b;
    default: return value_[sig];
  }
}

void Simulator::bump(SignalId sig) {
  ++toggles_;
  energy_ += weight_[sig];
}

void Simulator::setInput(SignalId input, bool value) {
  if (netlist_.gate(input).kind != GateKind::Input)
    throw SynthesisError("setInput: not an input signal");
  if (value_[input] == value) return;
  value_[input] = value;
  bump(input);
  for (const SignalId f : fanouts_[input]) {
    if (!pending_[f]) {
      pending_[f] = true;
      wave_.push_back(f);
    }
  }
}

void Simulator::settle() {
  // Unit-delay waves: all gates scheduled for time t evaluate against the
  // values at time t; changes schedule their consumers for t+1. A gate
  // whose inputs arrive at different times therefore glitches, and every
  // transition is counted.
  std::vector<SignalId> current;
  while (!wave_.empty()) {
    current.clear();
    std::swap(current, wave_);
    for (const SignalId id : current) pending_[id] = false;

    std::vector<std::pair<SignalId, bool>> changes;
    for (const SignalId id : current) {
      const bool v = evaluate(id);
      if (v != value_[id]) changes.emplace_back(id, v);
    }
    for (const auto& [id, v] : changes) {
      value_[id] = v;
      bump(id);
      for (const SignalId f : fanouts_[id]) {
        if (!pending_[f]) {
          pending_[f] = true;
          wave_.push_back(f);
        }
      }
    }
  }
}

void Simulator::clock() {
  settle();
  // Capture all enabled DFFs simultaneously (pre-edge values feed DFFs that
  // read other DFFs).
  std::vector<std::pair<SignalId, bool>> next;
  for (SignalId i = 0; i < netlist_.signalCount(); ++i) {
    const Gate& g = netlist_.gate(i);
    if (g.kind != GateKind::Dff) continue;
    const bool enabled = g.b == kNoSignal || value_[g.b];
    if (enabled && value_[g.a] != value_[i]) next.emplace_back(i, value_[g.a]);
  }
  for (const auto& [id, v] : next) {
    value_[id] = v;
    bump(id);
    for (const SignalId f : fanouts_[id]) {
      if (!pending_[f]) {
        pending_[f] = true;
        wave_.push_back(f);
      }
    }
  }
  settle();
}

std::uint64_t Simulator::wordValue(const std::vector<SignalId>& bits) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (value_.at(bits[i])) v |= std::uint64_t{1} << i;
  return v;
}

}  // namespace pmsched
