#pragma once
// Word-level netlist generators: the functional-unit library. These are the
// gate structures whose relative power (measured by bench_opweights with
// random vectors) calibrates the MUX:1 / COMP:4 / +:3 / -:3 / *:20 weights
// the paper uses for its datapath power model.
//
// Words are little-endian bit vectors (bits[0] = LSB). Arithmetic is two's
// complement; comparisons are signed.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace pmsched {

using Word = std::vector<SignalId>;

/// `width` fresh primary inputs named name[0..width).
[[nodiscard]] Word inputWord(Netlist& nl, const std::string& name, int width);

/// Constant word (two's complement of `value`).
[[nodiscard]] Word constWord(Netlist& nl, std::int64_t value, int width);

/// Ripple-carry adder; result truncated to the operand width.
[[nodiscard]] Word adderWord(Netlist& nl, const Word& a, const Word& b);

/// Two's-complement subtractor (a - b) via inverted operand + carry-in.
[[nodiscard]] Word subtractorWord(Netlist& nl, const Word& a, const Word& b);

/// Signed comparisons. Gt/Ge derive from the subtractor's sign/overflow.
[[nodiscard]] SignalId compareGtWord(Netlist& nl, const Word& a, const Word& b);
[[nodiscard]] SignalId compareGeWord(Netlist& nl, const Word& a, const Word& b);
[[nodiscard]] SignalId compareEqWord(Netlist& nl, const Word& a, const Word& b);

/// Array multiplier; result truncated to the operand width.
[[nodiscard]] Word multiplierWord(Netlist& nl, const Word& a, const Word& b);

/// 2:1 word multiplexor: sel ? whenTrue : whenFalse.
[[nodiscard]] Word mux2Word(Netlist& nl, SignalId sel, const Word& whenTrue,
                            const Word& whenFalse);

/// Word of D flip-flops with a shared (optional) enable.
[[nodiscard]] Word registerWord(Netlist& nl, const Word& d, SignalId enable = kNoSignal);

/// Compile-time shift: pure rewiring (arithmetic right for shift > 0,
/// left for shift < 0), sign-extending like the CORDIC datapath expects.
[[nodiscard]] Word shiftWord(Netlist& nl, const Word& a, int shift);

/// Bitwise ops.
[[nodiscard]] Word andWord(Netlist& nl, const Word& a, const Word& b);
[[nodiscard]] Word orWord(Netlist& nl, const Word& a, const Word& b);
[[nodiscard]] Word xorWord(Netlist& nl, const Word& a, const Word& b);
[[nodiscard]] Word notWord(Netlist& nl, const Word& a);

/// Resize with sign extension (or truncation).
[[nodiscard]] Word resizeWord(Netlist& nl, const Word& a, int width);

}  // namespace pmsched
