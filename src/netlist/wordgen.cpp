#include "netlist/wordgen.hpp"

namespace pmsched {

namespace {

struct FullAdd {
  SignalId sum;
  SignalId carry;
};

FullAdd fullAdder(Netlist& nl, SignalId a, SignalId b, SignalId cin) {
  const SignalId axb = nl.addGate(GateKind::Xor2, a, b);
  const SignalId sum = nl.addGate(GateKind::Xor2, axb, cin);
  const SignalId t1 = nl.addGate(GateKind::And2, a, b);
  const SignalId t2 = nl.addGate(GateKind::And2, axb, cin);
  const SignalId carry = nl.addGate(GateKind::Or2, t1, t2);
  return {sum, carry};
}

/// Shared adder core; returns sum bits plus the final carry and the carry
/// into the MSB (for signed overflow detection).
struct AdderResult {
  Word sum;
  SignalId carryOut = kNoSignal;
  SignalId carryIntoMsb = kNoSignal;
};

AdderResult rippleCore(Netlist& nl, const Word& a, const Word& b, SignalId cin) {
  if (a.size() != b.size() || a.empty()) throw SynthesisError("adder: width mismatch");
  AdderResult r;
  SignalId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    r.carryIntoMsb = carry;
    const FullAdd fa = fullAdder(nl, a[i], b[i], carry);
    r.sum.push_back(fa.sum);
    carry = fa.carry;
  }
  r.carryOut = carry;
  return r;
}

}  // namespace

Word inputWord(Netlist& nl, const std::string& name, int width) {
  Word w;
  for (int i = 0; i < width; ++i) w.push_back(nl.addInput(name + "[" + std::to_string(i) + "]"));
  return w;
}

Word constWord(Netlist& nl, std::int64_t value, int width) {
  Word w;
  for (int i = 0; i < width; ++i)
    w.push_back(nl.constant(((static_cast<std::uint64_t>(value) >> i) & 1U) != 0));
  return w;
}

Word adderWord(Netlist& nl, const Word& a, const Word& b) {
  return rippleCore(nl, a, b, nl.constant(false)).sum;
}

Word subtractorWord(Netlist& nl, const Word& a, const Word& b) {
  Word bInv;
  for (const SignalId bit : b) bInv.push_back(nl.addGate(GateKind::Inv, bit));
  return rippleCore(nl, a, bInv, nl.constant(true)).sum;
}

namespace {

/// Signed a < b: sign(a-b) XOR overflow(a-b).
SignalId signedLess(Netlist& nl, const Word& a, const Word& b) {
  Word bInv;
  for (const SignalId bit : b) bInv.push_back(nl.addGate(GateKind::Inv, bit));
  const AdderResult diff = rippleCore(nl, a, bInv, nl.constant(true));
  const SignalId overflow = nl.addGate(GateKind::Xor2, diff.carryOut, diff.carryIntoMsb);
  return nl.addGate(GateKind::Xor2, diff.sum.back(), overflow);
}

}  // namespace

SignalId compareGtWord(Netlist& nl, const Word& a, const Word& b) {
  return signedLess(nl, b, a);  // a > b  <=>  b < a
}

SignalId compareGeWord(Netlist& nl, const Word& a, const Word& b) {
  return nl.addGate(GateKind::Inv, signedLess(nl, a, b));  // a >= b <=> !(a < b)
}

SignalId compareEqWord(Netlist& nl, const Word& a, const Word& b) {
  if (a.size() != b.size() || a.empty()) throw SynthesisError("compare: width mismatch");
  SignalId all = kNoSignal;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const SignalId eq = nl.addGate(GateKind::Xnor2, a[i], b[i]);
    all = all == kNoSignal ? eq : nl.addGate(GateKind::And2, all, eq);
  }
  return all;
}

Word multiplierWord(Netlist& nl, const Word& a, const Word& b) {
  if (a.size() != b.size() || a.empty()) throw SynthesisError("multiplier: width mismatch");
  const std::size_t width = a.size();

  // Carry-save array of partial products, truncated to `width` bits.
  Word acc(width, kNoSignal);
  for (std::size_t i = 0; i < width; ++i) acc[i] = nl.addGate(GateKind::And2, a[i], b[0]);

  for (std::size_t row = 1; row < width; ++row) {
    SignalId carry = nl.constant(false);
    for (std::size_t col = row; col < width; ++col) {
      const SignalId pp = nl.addGate(GateKind::And2, a[col - row], b[row]);
      const FullAdd fa = fullAdder(nl, acc[col], pp, carry);
      acc[col] = fa.sum;
      carry = fa.carry;
    }
  }
  return acc;
}

Word mux2Word(Netlist& nl, SignalId sel, const Word& whenTrue, const Word& whenFalse) {
  if (whenTrue.size() != whenFalse.size()) throw SynthesisError("mux: width mismatch");
  Word out;
  for (std::size_t i = 0; i < whenTrue.size(); ++i) {
    const SignalId t = nl.addGate(GateKind::And2, sel, whenTrue[i]);
    const SignalId nsel = nl.addGate(GateKind::Inv, sel);
    const SignalId f = nl.addGate(GateKind::And2, nsel, whenFalse[i]);
    out.push_back(nl.addGate(GateKind::Or2, t, f));
  }
  return out;
}

Word registerWord(Netlist& nl, const Word& d, SignalId enable) {
  Word q;
  for (const SignalId bit : d) q.push_back(nl.addDff(bit, enable));
  return q;
}

Word shiftWord(Netlist& nl, const Word& a, int shift) {
  if (shift == 0) return a;
  const int width = static_cast<int>(a.size());
  Word out(a.size(), kNoSignal);
  if (shift > 0) {  // arithmetic right: fill with sign bit
    for (int i = 0; i < width; ++i) {
      const int src = i + shift;
      out[static_cast<std::size_t>(i)] =
          src < width ? a[static_cast<std::size_t>(src)] : a.back();
    }
  } else {  // left: fill with zeros
    const SignalId zero = nl.constant(false);
    for (int i = 0; i < width; ++i) {
      const int src = i + shift;
      out[static_cast<std::size_t>(i)] = src >= 0 ? a[static_cast<std::size_t>(src)] : zero;
    }
  }
  return out;
}

namespace {
Word bitwise(Netlist& nl, GateKind kind, const Word& a, const Word& b) {
  if (a.size() != b.size()) throw SynthesisError("bitwise: width mismatch");
  Word out;
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(nl.addGate(kind, a[i], b[i]));
  return out;
}
}  // namespace

Word andWord(Netlist& nl, const Word& a, const Word& b) {
  return bitwise(nl, GateKind::And2, a, b);
}
Word orWord(Netlist& nl, const Word& a, const Word& b) {
  return bitwise(nl, GateKind::Or2, a, b);
}
Word xorWord(Netlist& nl, const Word& a, const Word& b) {
  return bitwise(nl, GateKind::Xor2, a, b);
}
Word notWord(Netlist& nl, const Word& a) {
  Word out;
  for (const SignalId bit : a) out.push_back(nl.addGate(GateKind::Inv, bit));
  return out;
}

Word resizeWord(Netlist& nl, const Word& a, int width) {
  Word out = a;
  if (static_cast<int>(out.size()) > width) {
    out.resize(static_cast<std::size_t>(width));
  } else {
    (void)nl;
    while (static_cast<int>(out.size()) < width) out.push_back(a.back());  // sign extend
  }
  return out;
}

}  // namespace pmsched
