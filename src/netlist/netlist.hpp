#pragma once
// Structural gate-level netlist and a zero-delay cycle simulator with
// toggle counting. Together with src/rtl this substitutes for the paper's
// Synopsys Design Compiler + DesignPower flow: Table III only needs
// *relative* area and power of the original vs power-managed design under
// random vectors, and weighted toggle counts over a gate netlist measure
// exactly that effect (input latches that hold their value stop all
// downstream switching).
//
// Power model: each signal transition costs (1 + fanout) capacitance units.
// Area model: NAND2-equivalent gate counts.

#include <cstdint>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace pmsched {

using SignalId = std::uint32_t;
inline constexpr SignalId kNoSignal = static_cast<SignalId>(-1);

enum class GateKind : std::uint8_t {
  Const0,
  Const1,
  Input,
  Buf,
  Inv,
  And2,
  Or2,
  Nand2,
  Nor2,
  Xor2,
  Xnor2,
  Dff,  ///< a = data, b = enable (kNoSignal = always enabled)
};

/// NAND2-equivalent area of one gate.
[[nodiscard]] double gateArea(GateKind kind);

struct Gate {
  GateKind kind = GateKind::Const0;
  SignalId a = kNoSignal;
  SignalId b = kNoSignal;
  bool dffInit = false;  ///< power-on value for Dff
};

class Netlist {
 public:
  Netlist() : Netlist("netlist") {}
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  SignalId addInput(std::string name);
  SignalId constant(bool value);
  /// Combinational gate; unary kinds (Buf/Inv) take only `a`.
  SignalId addGate(GateKind kind, SignalId a, SignalId b = kNoSignal);
  /// D flip-flop with optional clock enable and power-on value.
  SignalId addDff(SignalId d, SignalId enable = kNoSignal, bool init = false);
  void markOutput(SignalId sig, std::string name);

  /// Deferred wiring support: RTL mapping builds register files whose data
  /// networks are only known after the registers exist (the classic
  /// unit -> register -> unit loop, acyclic only through the DFF boundary).
  /// These two patches re-point a Buf's operand / a Dff's data input after
  /// creation; combOrder() performs a full topological sort, so patched
  /// netlists still simulate correctly — as long as no combinational cycle
  /// is introduced (combOrder throws if one is).
  void patchBufData(SignalId buf, SignalId newData);
  void patchDffData(SignalId dff, SignalId newData);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t signalCount() const { return gates_.size(); }
  [[nodiscard]] const Gate& gate(SignalId id) const { return gates_.at(id); }
  [[nodiscard]] const std::vector<std::pair<SignalId, std::string>>& outputs() const {
    return outputs_;
  }
  [[nodiscard]] const std::vector<std::pair<SignalId, std::string>>& inputs() const {
    return inputs_;
  }

  [[nodiscard]] std::size_t combGateCount() const;
  [[nodiscard]] std::size_t dffCount() const;
  /// Total NAND2-equivalent area.
  [[nodiscard]] double area() const;

  /// Evaluation order for combinational logic (inputs/constants/DFFs are
  /// sources). Throws SynthesisError on a combinational cycle.
  [[nodiscard]] std::vector<SignalId> combOrder() const;

  /// Fanout count per signal (capacitance proxy for the power model).
  [[nodiscard]] std::vector<std::uint32_t> fanoutCounts() const;

 private:
  std::string name_;
  std::vector<Gate> gates_;
  std::vector<std::pair<SignalId, std::string>> inputs_;
  std::vector<std::pair<SignalId, std::string>> outputs_;
};

/// Event-driven unit-delay simulator with weighted toggle counting.
///
/// Every gate has one unit of delay, so a gate whose inputs settle at
/// different times produces *glitches* — and those intermediate transitions
/// are counted. This matches the paper's methodology ("timing simulation
/// with random input vectors"): glitching is what makes carry chains and
/// multiplier arrays dominate datapath power.
class Simulator {
 public:
  explicit Simulator(const Netlist& netlist);

  void setInput(SignalId input, bool value);
  /// Propagate pending events to quiescence, counting every transition.
  void settle();
  /// One clock cycle: settle, capture enabled DFFs, propagate their new
  /// outputs (the post-capture settle belongs to the next cycle's wave).
  void clock();

  [[nodiscard]] bool value(SignalId sig) const { return value_.at(sig); }
  [[nodiscard]] std::uint64_t wordValue(const std::vector<SignalId>& bits) const;

  /// Fanout-weighted transition count so far (the power figure).
  [[nodiscard]] std::uint64_t energy() const { return energy_; }
  /// Raw transition count so far (glitches included).
  [[nodiscard]] std::uint64_t toggles() const { return toggles_; }
  void resetCounters() {
    energy_ = 0;
    toggles_ = 0;
  }

 private:
  [[nodiscard]] bool evaluate(SignalId sig) const;
  void bump(SignalId sig);  // count one transition of sig

  const Netlist& netlist_;
  std::vector<std::vector<SignalId>> fanouts_;  // combinational consumers
  std::vector<std::uint32_t> weight_;           // 1 + fanout
  std::vector<bool> value_;
  std::vector<bool> pending_;  // already queued for the next wave
  std::vector<SignalId> wave_;
  std::uint64_t energy_ = 0;
  std::uint64_t toggles_ = 0;
};

}  // namespace pmsched
