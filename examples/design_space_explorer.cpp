// Design-space exploration: sweep the control-step budget for every paper
// circuit and chart the trade-off the scheduler navigates — throughput vs
// power-management opportunity vs execution-unit area. This is the
// "explore any available slack" knob of the paper turned into a tool.
//
// Since the explore subsystem landed (src/explore, `pmsched --explore`,
// docs/EXPLORE.md) this example is a thin wrapper over the first-class
// driver: each circuit is ONE amortized sweep — the full pipeline runs only
// until the step budget saturates, later points reuse the committed base
// design — instead of the per-point loop this file used to hand-roll. The
// printed table is the latency/power/area Pareto front; every point is
// bit-identical to the one-shot `pmsched` run at that budget.
//
// Also demonstrates compiling a fresh circuit from SIL source and exploring
// it the same way (the clipped-average example).

#include <cstdio>
#include <iostream>
#include <utility>

#include "circuits/circuits.hpp"
#include "explore/explore.hpp"
#include "lang/elaborate.hpp"
#include "lang/library.hpp"

namespace {

using namespace pmsched;

void explore(const std::string& name, Graph g, int span) {
  ExploreRequest req;
  req.graph = std::move(g);
  req.span = span;
  const ExploreResult res = exploreDesignSpace(req);

  std::cout << name << " (critical path " << res.criticalPath << ", sweep "
            << res.minSteps << ".." << res.maxSteps << "):\n";
  std::printf("  %-6s %-9s %-12s %-12s %-8s %s\n", "steps", "PM muxes", "shared ops",
              "power red.%", "area", "units");
  for (const ExplorePoint& p : res.front)
    std::printf("  %-6d %-9d %-12d %-12s %-8.0f %s\n", p.steps, p.summary.managed,
                p.summary.sharedGated, p.summary.reductionPercent.c_str(), p.area,
                p.summary.units.c_str());
  for (const ExploreSkip& skip : res.skipped)
    std::printf("  %-6d (skipped: %s)\n", skip.steps, skip.kind.c_str());
  std::printf("  [%d points: %d full, %d amortized, %d pruned; saturation at %d steps]\n\n",
              res.stats.pointsSwept, res.stats.fullRuns, res.stats.amortizedRuns,
              res.stats.pruned, res.stats.saturationSteps);
}

}  // namespace

int main() {
  using namespace pmsched;

  std::cout << "Design-space exploration: control steps vs power management\n"
            << "============================================================\n\n";

  for (const auto& circuit : circuits::paperCircuits())
    explore(circuit.name, circuit.build(), 8);

  std::cout << "A circuit compiled from SIL source gets the same treatment:\n\n";
  explore("clipavg", lang::compile(lang::clippedAverageSource()), 3);

  std::cout << "Reading: every circuit has a knee — the smallest budget at which the\n"
               "control chain fits ahead of the gated work. Points past the knee are\n"
               "dominated (no extra power reduction, no cheaper datapath) and the\n"
               "amortized sweep prunes them without re-running the pipeline;\n"
               "`pmsched --explore` emits this same front as JSON.\n";
  return 0;
}
