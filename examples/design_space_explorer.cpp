// Design-space exploration: sweep the control-step budget for every paper
// circuit and chart the trade-off the scheduler navigates — throughput vs
// power-management opportunity vs execution-unit area. This is the
// "explore any available slack" knob of the paper turned into a tool.
//
// Also demonstrates compiling a fresh circuit from SIL source and exploring
// it the same way (the clipped-average example).

#include <cstdio>
#include <iostream>

#include "analysis/experiments.hpp"
#include "lang/elaborate.hpp"
#include "lang/library.hpp"

namespace {

using namespace pmsched;

void explore(const std::string& name, const Graph& g, int extraBudget) {
  const int cp = criticalPathLength(g);
  std::cout << name << " (critical path " << cp << "):\n";
  std::printf("  %-6s %-9s %-12s %-12s %-11s\n", "steps", "PM muxes", "shared ops",
              "power red.%", "area incr.");
  for (int steps = cp; steps <= cp + extraBudget; ++steps) {
    const analysis::Table2Row row = analysis::table2Row(name, g, steps);
    std::printf("  %-6d %-9d %-12d %-12.2f %-11.2f\n", steps, row.pmMuxes, row.sharedGated,
                row.powerReductionPct, row.areaIncrease);
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace pmsched;

  std::cout << "Design-space exploration: control steps vs power management\n"
            << "============================================================\n\n";

  for (const auto& circuit : circuits::paperCircuits()) {
    if (std::string_view(circuit.name) == "cordic") continue;  // swept separately below
    explore(circuit.name, circuit.build(), 4);
  }

  // CORDIC is large; sample a few budgets only.
  {
    const Graph g = circuits::cordic();
    const int cp = criticalPathLength(g);
    std::cout << "cordic (critical path " << cp << "):\n";
    std::printf("  %-6s %-9s %-12s %-12s\n", "steps", "PM muxes", "shared ops",
                "power red.%");
    for (const int steps : {cp, cp + 2, cp + 4, cp + 8}) {
      const analysis::Table2Row row = analysis::table2Row("cordic", g, steps);
      std::printf("  %-6d %-9d %-12d %-12.2f\n", steps, row.pmMuxes, row.sharedGated,
                  row.powerReductionPct);
    }
    std::cout << "\n";
  }

  std::cout << "A circuit compiled from SIL source gets the same treatment:\n\n";
  const Graph clip = lang::compile(lang::clippedAverageSource());
  explore("clipavg", clip, 3);

  std::cout << "Reading: every circuit has a knee — the smallest budget at which the\n"
               "control chain fits ahead of the gated work. Slack beyond the knee buys\n"
               "nothing more, which is how a designer picks the throughput constraint.\n";
  return 0;
}
