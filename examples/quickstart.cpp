// Quickstart: the |a-b| example from the paper's Figures 1 and 2.
//
// Builds the CDFG, schedules it with 2 and 3 control steps, applies the
// power-management transform, and prints the schedules plus the expected
// datapath power reduction.

#include <iostream>

#include "analysis/experiments.hpp"

int main() {
  using namespace pmsched;

  std::cout << "PMSched quickstart: scheduling |a-b| for power management\n"
            << "=========================================================\n\n";

  const Graph g = circuits::absdiff();
  std::cout << "CDFG '" << g.name() << "': " << countOps(g).totalUnits()
            << " operations, critical path " << criticalPathLength(g) << " steps\n\n";

  for (const analysis::AbsdiffFigure& fig : analysis::absdiffFigures()) {
    std::cout << "--- " << fig.steps << " control steps, "
              << (fig.powerManaged ? "with" : "without") << " power management ---\n";
    std::cout << fig.scheduleText;
    std::cout << "power-managed muxes: " << fig.pmMuxes
              << ", subtractors needed: " << fig.subtractors << ", datapath power reduction: ";
    std::printf("%.2f%%\n\n", fig.powerReductionPct);
  }

  std::cout << "As in the paper: with only 2 control steps the comparison cannot\n"
               "precede the subtractions, so both a-b and b-a always execute. A\n"
               "third control step lets the scheduler place a>b first and gate the\n"
               "loser's input latches.\n";
  return 0;
}
