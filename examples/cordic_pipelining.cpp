// §IV-B demo: pipelining the CORDIC rotator to create power-management
// slack without sacrificing throughput.
//
// CORDIC at its critical path (48 steps) already gates most rotation muxes;
// tightening the THROUGHPUT below 48 steps is impossible without
// pipelining. With k stages, a new sample enters every T steps while each
// sample takes k*T steps of latency — and the transform gets k*T steps of
// slack to order control before data.

#include <cstdio>
#include <iostream>

#include "power/activation.hpp"
#include "circuits/circuits.hpp"
#include "sched/pipeline.hpp"
#include "sched/shared_gating.hpp"

int main() {
  using namespace pmsched;

  const Graph g = circuits::cordic();
  std::cout << "CORDIC pipelining for power management (paper §IV-B)\n"
            << "=====================================================\n\n"
            << "critical path: " << criticalPathLength(g) << " control steps\n\n";

  const OpPowerModel model = OpPowerModel::paperWeights();
  std::printf("%-8s %-8s %-9s %-10s %-12s %-10s\n", "stages", "T (thru)", "latency",
              "PM muxes", "power red.%", "units cost");

  for (const int throughput : {48, 24, 16}) {
    const int stages = (criticalPathLength(g) + throughput - 1) / throughput;
    for (const int extraStages : {0, 1}) {
      const int k = stages + extraStages;
      PipelineOptions opts;
      opts.stages = k;
      opts.effectiveSteps = throughput;
      try {
        PipelineResult result = pipelineSchedule(g, opts);
        const ActivationResult activation = analyzeActivation(result.design);
        std::printf("%-8d %-8d %-9d %-10d %-12.2f %-10.0f\n", k, throughput, result.latency,
                    result.design.managedCount(), activation.reductionPercent(model),
                    UnitCosts::defaults().costOf(result.units));
      } catch (const InfeasibleError& e) {
        std::printf("%-8d %-8d infeasible: %s\n", k, throughput, e.what());
      }
    }
  }

  std::cout << "\nReading: at throughput 16 a 3-stage pipeline holds the sample for 48\n"
               "steps (the critical path) and still gates the rotation muxes, while an\n"
               "unpipelined design could not even meet the throughput. Extra stages add\n"
               "slack and power management improves further — at the cost of latency\n"
               "and pipeline registers (the trade-off the paper describes).\n";
  return 0;
}
