// End-to-end flow on the GCD circuit, starting from behavioral source:
//
//   SIL source -> CDFG -> power-management transform -> resource-minimal
//   schedule -> binding -> controller -> VHDL (datapath + controller +
//   self-checking testbench)
//
// This is the paper's flow (Silage -> HYPER -> scheduling with power
// management -> VHDL) on our substrates. VHDL files are written to the
// current directory.

#include <fstream>
#include <iostream>

#include "alloc/binding.hpp"
#include "ctrl/controller.hpp"
#include "lang/elaborate.hpp"
#include "lang/library.hpp"
#include "power/activation.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/shared_gating.hpp"
#include "vhdl/emit.hpp"

int main() {
  using namespace pmsched;

  std::cout << "GCD: behavioral source to power-managed VHDL\n"
            << "============================================\n\n";
  std::cout << "-- SIL source --\n" << lang::gcdSource() << "\n";

  const Graph g = lang::compile(lang::gcdSource());
  const OpStats stats = countOps(g);
  std::cout << "CDFG: " << stats.totalUnits() << " operations (" << stats.mux << " MUX, "
            << stats.comp << " COMP, " << stats.sub << " SUB), critical path "
            << criticalPathLength(g) << "\n\n";

  const int steps = 7;  // the paper's most relaxed GCD budget
  PowerManagedDesign design = applyPowerManagement(g, steps);
  applySharedGating(design);
  std::cout << "Power management at " << steps << " steps: " << design.managedCount()
            << " managed muxes\n";
  for (const MuxPmInfo& info : design.muxes) {
    if (!info.managed || !info.hasGatedWork()) continue;
    std::cout << "  mux '" << design.graph.node(info.mux).name << "' gates:";
    for (const NodeId n : info.gatedTrue)
      std::cout << " " << design.graph.node(n).name << "(T)";
    for (const NodeId n : info.gatedFalse)
      std::cout << " " << design.graph.node(n).name << "(F)";
    std::cout << "\n";
  }

  const ResourceVector units = minimizeResources(design.graph, steps);
  const ListScheduleResult scheduled = listSchedule(design.graph, steps, units);
  if (!scheduled.schedule) {
    std::cerr << "scheduling failed: " << scheduled.message << "\n";
    return 1;
  }
  std::cout << "\nSchedule (" << steps << " steps, units " << units.toString() << "):\n"
            << scheduled.schedule->render(design.graph) << "\n";

  const Binding binding = bindDesign(design.graph, *scheduled.schedule);
  const ActivationResult activation = analyzeActivation(design);
  const ControllerSpec ctrl =
      synthesizeController(design, *scheduled.schedule, binding, activation);
  std::cout << "Controller: " << ctrl.stateCount() << " states, " << ctrl.loads.size()
            << " loads (" << ctrl.gatedLoadCount() << " gated), ~"
            << ctrl.estimatedArea() << " NAND2-eq\n\n";

  const std::string datapath = vhdl::emitDatapath(design, *scheduled.schedule, ctrl);
  const std::string controller = vhdl::emitController(design, *scheduled.schedule, ctrl);
  const std::string testbench =
      vhdl::emitTestbench(design, *scheduled.schedule, ctrl, /*vectors=*/8, /*seed=*/7);

  for (const auto& [file, text] : {std::pair<const char*, const std::string&>{
                                       "gcd_datapath.vhd", datapath},
                                   {"gcd_controller.vhd", controller},
                                   {"gcd_tb.vhd", testbench}}) {
    std::ofstream out(file);
    out << text;
    std::cout << "wrote " << file << " (" << text.size() << " bytes)\n";
  }

  std::cout << "\n-- controller excerpt --\n"
            << controller.substr(0, controller.find("end architecture")) << "...\n";
  return 0;
}
