// Tests for the activation-condition algebra (terms, DNFs, exact
// probabilities) that Table II's averages rest on.

#include <gtest/gtest.h>

#include <random>

#include "sched/bdd.hpp"
#include "sched/condition.hpp"

namespace pmsched {
namespace {

GateLiteral lit(NodeId sel, bool v) { return GateLiteral{sel, v}; }

TEST(Condition, NormalizeSortsAndDedupes) {
  GateTerm term{lit(3, true), lit(1, false), lit(3, true)};
  ASSERT_TRUE(normalizeTerm(term));
  ASSERT_EQ(term.size(), 2u);
  EXPECT_EQ(term[0].select, 1u);
  EXPECT_EQ(term[1].select, 3u);
}

TEST(Condition, NormalizeDetectsContradiction) {
  GateTerm term{lit(2, true), lit(2, false)};
  EXPECT_FALSE(normalizeTerm(term));
}

TEST(Condition, ConjoinMergesAndDetectsConflict) {
  GateTerm a{lit(1, true)};
  GateTerm b{lit(2, false)};
  GateTerm out;
  ASSERT_TRUE(conjoinTerms(a, b, out));
  EXPECT_EQ(out.size(), 2u);

  GateTerm conflicting{lit(1, false)};
  EXPECT_FALSE(conjoinTerms(a, conflicting, out));
}

TEST(Condition, SimplifyDropsSubsumedTerms) {
  // (s1) | (s1 & s2) == (s1)
  GateDnf dnf{{lit(1, true)}, {lit(1, true), lit(2, true)}};
  const GateDnf simplified = simplifyDnf(dnf);
  ASSERT_EQ(simplified.size(), 1u);
  EXPECT_EQ(simplified[0].size(), 1u);
}

TEST(Condition, SimplifyMergesComplementaryPairs) {
  // (s1 & s2) | (s1 & !s2) == (s1)
  GateDnf dnf{{lit(1, true), lit(2, true)}, {lit(1, true), lit(2, false)}};
  const GateDnf simplified = simplifyDnf(dnf);
  ASSERT_EQ(simplified.size(), 1u);
  EXPECT_EQ(simplified[0], (GateTerm{lit(1, true)}));
}

TEST(Condition, SimplifyRecognizesTautology) {
  // (s1) | (!s1) == true (empty term)
  GateDnf dnf{{lit(1, true)}, {lit(1, false)}};
  const GateDnf simplified = simplifyDnf(dnf);
  EXPECT_TRUE(dnfIsTrue(simplified));
}

TEST(Condition, DealerSharedConditionSimplifies) {
  // The dealer's shared adder: (c1=0 & c3=1) | (c1=0 & c3=0) | (c1=1 & c2=0)
  // must simplify to (c1=0) | (c1=1 & c2=0), dropping c3 from the support.
  GateDnf dnf{{lit(1, false), lit(3, true)},
              {lit(1, false), lit(3, false)},
              {lit(1, true), lit(2, false)}};
  const GateDnf simplified = simplifyDnf(dnf);
  EXPECT_EQ(simplified.size(), 2u);
  const std::vector<NodeId> support = dnfSupport(simplified);
  EXPECT_EQ(support, (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(dnfProbability(simplified), Rational(3, 4));
}

TEST(Condition, AndDnfDistributes) {
  const GateDnf a{{lit(1, true)}, {lit(2, true)}};
  const GateDnf b{{lit(3, false)}};
  const GateDnf c = andDnf(a, b);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(dnfProbability(c), Rational(3, 8));  // P((s1|s2) & !s3)
}

TEST(Condition, AndDnfDropsContradictions) {
  const GateDnf a{{lit(1, true)}};
  const GateDnf b{{lit(1, false)}};
  EXPECT_TRUE(andDnf(a, b).empty());  // FALSE
}

TEST(Condition, TrueAndFalseProbability) {
  EXPECT_EQ(dnfProbability(dnfTrue()), Rational(1));
  EXPECT_EQ(dnfProbability(GateDnf{}), Rational(0));
}

TEST(Condition, SingleLiteralIsHalf) {
  EXPECT_EQ(dnfProbability(GateDnf{{lit(7, true)}}), Rational(1, 2));
}

TEST(Condition, ConjunctionIsProductOfHalves) {
  EXPECT_EQ(dnfProbability(GateDnf{{lit(1, true), lit(2, false), lit(3, true)}}),
            Rational(1, 8));
}

TEST(Condition, UnionWithOverlapIsInclusionExclusion) {
  // P(s1 | s2) = 3/4 even though terms overlap.
  EXPECT_EQ(dnfProbability(GateDnf{{lit(1, true)}, {lit(2, true)}}), Rational(3, 4));
}

TEST(Condition, ReferenceSupportLimitStillEnforced) {
  GateDnf big;
  GateTerm term;
  for (NodeId i = 0; i < 30; ++i) term.push_back(lit(i, true));
  big.push_back(term);
  EXPECT_THROW((void)dnfProbabilityReference(big, 24), SynthesisError);
  EXPECT_NO_THROW((void)dnfProbabilityReference(big, 30));
}

TEST(Condition, ProbabilityBeyondEnumerationCap) {
  // Regression for the lifted 24-variable cap: the seed's dnfProbability
  // threw SynthesisError on this 30-literal term; the BDD path evaluates
  // it exactly.
  GateDnf big;
  GateTerm term;
  for (NodeId i = 0; i < 30; ++i) term.push_back(lit(i, true));
  big.push_back(term);
  EXPECT_EQ(dnfProbability(big), Rational::dyadic(30));

  // A 48-variable union of 24 disjoint pair-terms: P = 1 - (3/4)^24.
  GateDnf wide;
  for (NodeId i = 0; i < 48; i += 2) wide.push_back({lit(i, true), lit(i + 1, true)});
  Rational miss = Rational::one();
  for (int i = 0; i < 24; ++i) miss *= Rational{3, 4};
  EXPECT_EQ(dnfProbability(wide), Rational::one() - miss);
}

TEST(Condition, MergeRecreatingExistingTermKeepsIt) {
  // Regression: (a) | (a & s) | (a & !s) — the pair merge recreates (a),
  // and the old subsumption filter dropped BOTH equal copies, collapsing
  // the whole condition to FALSE (probability 1/2 -> 0).
  GateDnf dnf{{lit(1, true)},
              {lit(1, true), lit(2, true)},
              {lit(1, true), lit(2, false)}};
  const Rational before = dnfProbability(dnf);
  const GateDnf simplified = simplifyDnf(dnf);
  ASSERT_EQ(simplified, (GateDnf{{lit(1, true)}}));
  EXPECT_EQ(dnfProbability(simplified), before);
  EXPECT_EQ(simplifyDnfReference(dnf), simplified);
}

namespace {

/// Seeded random DNF over `vars` selects: `terms` terms of up to `maxLen`
/// literals (duplicates and contradictions allowed — simplify must cope).
GateDnf randomDnf(std::mt19937_64& rng, NodeId vars, int terms, int maxLen) {
  std::uniform_int_distribution<NodeId> sel(1, vars);
  std::uniform_int_distribution<int> len(0, maxLen);
  std::uniform_int_distribution<int> bit(0, 1);
  GateDnf dnf;
  for (int t = 0; t < terms; ++t) {
    GateTerm term;
    const int n = len(rng);
    for (int i = 0; i < n; ++i) term.push_back(lit(sel(rng), bit(rng) != 0));
    dnf.push_back(std::move(term));
  }
  return dnf;
}

/// Brute-force evaluation of a DNF under one assignment (bit i of `assign`
/// is the value of select i+1).
bool evalDnf(const GateDnf& dnf, std::uint32_t assign) {
  for (const GateTerm& term : dnf) {
    bool sat = true;
    for (const GateLiteral& l : term) {
      const bool v = ((assign >> (l.select - 1)) & 1U) != 0;
      if (v != l.value) {
        sat = false;
        break;
      }
    }
    if (sat) return true;
  }
  return false;
}

}  // namespace

TEST(Condition, SimplifyMatchesReferenceAndPreservesSemantics) {
  // Property check over random DNFs: the interned engine must be
  // structurally identical to the retained reference, and simplification
  // must not change the function (checked by exact probability AND by
  // brute-force truth-table comparison).
  std::mt19937_64 rng(20260729);
  const NodeId vars = 6;
  for (int round = 0; round < 400; ++round) {
    const GateDnf dnf = randomDnf(rng, vars, 1 + round % 12, 1 + round % 5);
    const GateDnf fast = simplifyDnf(dnf);
    const GateDnf ref = simplifyDnfReference(dnf);
    ASSERT_EQ(fast, ref) << "round " << round;
    ASSERT_EQ(dnfProbability(fast), dnfProbability(dnf)) << "round " << round;
    for (std::uint32_t assign = 0; assign < (1U << vars); ++assign)
      ASSERT_EQ(evalDnf(fast, assign), evalDnf(dnf, assign))
          << "round " << round << " assignment " << assign;
  }
}

TEST(Condition, AndDnfPreservesSemantics) {
  std::mt19937_64 rng(42);
  const NodeId vars = 5;
  for (int round = 0; round < 200; ++round) {
    const GateDnf a = randomDnf(rng, vars, 1 + round % 6, 1 + round % 4);
    const GateDnf b = randomDnf(rng, vars, 1 + round % 5, 1 + round % 3);
    const GateDnf c = andDnf(a, b);
    for (std::uint32_t assign = 0; assign < (1U << vars); ++assign)
      ASSERT_EQ(evalDnf(c, assign), evalDnf(a, assign) && evalDnf(b, assign))
          << "round " << round << " assignment " << assign;
  }
}

TEST(Condition, SimplifyIdempotent) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 100; ++round) {
    const GateDnf once = simplifyDnf(randomDnf(rng, 6, 1 + round % 10, 1 + round % 4));
    ASSERT_EQ(simplifyDnf(once), once) << "round " << round;
  }
}

TEST(Condition, DnfEngineHandlesMatchFreeFunctions) {
  // The handle-level engine (what shared gating holds in needOf/condOf)
  // must agree operation for operation with the decode/encode free
  // functions it replaces.
  std::mt19937_64 rng(991);
  DnfEngine eng;
  for (int round = 0; round < 150; ++round) {
    const GateDnf a = randomDnf(rng, 6, 1 + round % 8, 1 + round % 4);
    const GateDnf b = randomDnf(rng, 6, 1 + round % 6, 1 + round % 3);
    const DnfEngine::Dnf ia = eng.intern(a);
    const DnfEngine::Dnf ib = eng.intern(b);
    const GateDnf sa = simplifyDnf(a);
    const GateDnf sb = simplifyDnf(b);
    ASSERT_EQ(eng.decode(ia), sa) << "round " << round;
    ASSERT_EQ(eng.decode(eng.conjoin(ia, ib)), andDnf(sa, sb)) << "round " << round;
    GateDnf unioned = sa;
    unioned.insert(unioned.end(), sb.begin(), sb.end());
    ASSERT_EQ(eng.decode(eng.disjoin(ia, ib)), simplifyDnf(unioned)) << "round " << round;
    ASSERT_EQ(eng.support(ia), dnfSupport(sa)) << "round " << round;
    ASSERT_EQ(eng.isTrue(ia), dnfIsTrue(sa)) << "round " << round;
    // Interning is idempotent and canonical: equal content, equal handle.
    ASSERT_EQ(eng.intern(sa), ia) << "round " << round;
  }
}

// Satellite regression (ISSUE 7): a pass holding BDD handles into the
// thread-local probability manager must survive the manager's periodic
// trim. Pins defer the clear; only an unpinned trim advances the epoch and
// invalidates refs.
TEST(Condition, PinnedManagerSurvivesForcedTrim) {
  BddManager& mgr = dnfProbabilityManager();
  mgr.clear();  // deterministic start regardless of earlier tests
  const std::uint64_t epoch0 = mgr.epoch();

  const GateDnf dnf{{lit(1, true), lit(2, false)}, {lit(3, true)}};
  const Rational p = dnfProbability(dnf);

  {
    BddPin hold(mgr);
    const BddRef ref = mgr.fromDnf(dnf);
    // Forced trim (cap 0 = everything is over budget) must be deferred
    // while the pin is live: same epoch, same ref, same probability.
    EXPECT_FALSE(trimDnfProbabilityManager(0));
    EXPECT_EQ(mgr.epoch(), epoch0);
    EXPECT_EQ(mgr.fromDnf(dnf), ref);
    EXPECT_EQ(mgr.probability(ref), p);

    // A nested holder composes: still pinned after one of two releases.
    {
      BddPin second(mgr);
      EXPECT_FALSE(trimDnfProbabilityManager(0));
    }
    EXPECT_FALSE(trimDnfProbabilityManager(0));
    EXPECT_EQ(mgr.probability(ref), p);
  }

  // Last pin released: the deferred trim now lands and the epoch advances,
  // telling holders their cached refs are stale.
  EXPECT_TRUE(trimDnfProbabilityManager(0));
  EXPECT_EQ(mgr.epoch(), epoch0 + 1);
  EXPECT_EQ(mgr.nodeCount(), 2u);  // just the terminals
  // And the rebuilt condition still answers identically.
  EXPECT_EQ(dnfProbability(dnf), p);
}

TEST(Condition, ToStringReadable) {
  Graph g;
  const NodeId a = g.addInput("flagA", 1);
  const NodeId b = g.addInput("flagB", 1);
  const GateDnf dnf{{lit(a, true), lit(b, false)}, {lit(b, true)}};
  const std::string text = dnfToString(dnf, g);
  EXPECT_EQ(text, "(flagA=1 & flagB=0) | (flagB=1)");
  EXPECT_EQ(dnfToString(GateDnf{}, g), "false");
  EXPECT_EQ(dnfToString(dnfTrue(), g), "true");
}

}  // namespace
}  // namespace pmsched
