// Tests for the activation-condition algebra (terms, DNFs, exact
// probabilities) that Table II's averages rest on.

#include <gtest/gtest.h>

#include "sched/condition.hpp"

namespace pmsched {
namespace {

GateLiteral lit(NodeId sel, bool v) { return GateLiteral{sel, v}; }

TEST(Condition, NormalizeSortsAndDedupes) {
  GateTerm term{lit(3, true), lit(1, false), lit(3, true)};
  ASSERT_TRUE(normalizeTerm(term));
  ASSERT_EQ(term.size(), 2u);
  EXPECT_EQ(term[0].select, 1u);
  EXPECT_EQ(term[1].select, 3u);
}

TEST(Condition, NormalizeDetectsContradiction) {
  GateTerm term{lit(2, true), lit(2, false)};
  EXPECT_FALSE(normalizeTerm(term));
}

TEST(Condition, ConjoinMergesAndDetectsConflict) {
  GateTerm a{lit(1, true)};
  GateTerm b{lit(2, false)};
  GateTerm out;
  ASSERT_TRUE(conjoinTerms(a, b, out));
  EXPECT_EQ(out.size(), 2u);

  GateTerm conflicting{lit(1, false)};
  EXPECT_FALSE(conjoinTerms(a, conflicting, out));
}

TEST(Condition, SimplifyDropsSubsumedTerms) {
  // (s1) | (s1 & s2) == (s1)
  GateDnf dnf{{lit(1, true)}, {lit(1, true), lit(2, true)}};
  const GateDnf simplified = simplifyDnf(dnf);
  ASSERT_EQ(simplified.size(), 1u);
  EXPECT_EQ(simplified[0].size(), 1u);
}

TEST(Condition, SimplifyMergesComplementaryPairs) {
  // (s1 & s2) | (s1 & !s2) == (s1)
  GateDnf dnf{{lit(1, true), lit(2, true)}, {lit(1, true), lit(2, false)}};
  const GateDnf simplified = simplifyDnf(dnf);
  ASSERT_EQ(simplified.size(), 1u);
  EXPECT_EQ(simplified[0], (GateTerm{lit(1, true)}));
}

TEST(Condition, SimplifyRecognizesTautology) {
  // (s1) | (!s1) == true (empty term)
  GateDnf dnf{{lit(1, true)}, {lit(1, false)}};
  const GateDnf simplified = simplifyDnf(dnf);
  EXPECT_TRUE(dnfIsTrue(simplified));
}

TEST(Condition, DealerSharedConditionSimplifies) {
  // The dealer's shared adder: (c1=0 & c3=1) | (c1=0 & c3=0) | (c1=1 & c2=0)
  // must simplify to (c1=0) | (c1=1 & c2=0), dropping c3 from the support.
  GateDnf dnf{{lit(1, false), lit(3, true)},
              {lit(1, false), lit(3, false)},
              {lit(1, true), lit(2, false)}};
  const GateDnf simplified = simplifyDnf(dnf);
  EXPECT_EQ(simplified.size(), 2u);
  const std::vector<NodeId> support = dnfSupport(simplified);
  EXPECT_EQ(support, (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(dnfProbability(simplified), Rational(3, 4));
}

TEST(Condition, AndDnfDistributes) {
  const GateDnf a{{lit(1, true)}, {lit(2, true)}};
  const GateDnf b{{lit(3, false)}};
  const GateDnf c = andDnf(a, b);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(dnfProbability(c), Rational(3, 8));  // P((s1|s2) & !s3)
}

TEST(Condition, AndDnfDropsContradictions) {
  const GateDnf a{{lit(1, true)}};
  const GateDnf b{{lit(1, false)}};
  EXPECT_TRUE(andDnf(a, b).empty());  // FALSE
}

TEST(Condition, TrueAndFalseProbability) {
  EXPECT_EQ(dnfProbability(dnfTrue()), Rational(1));
  EXPECT_EQ(dnfProbability(GateDnf{}), Rational(0));
}

TEST(Condition, SingleLiteralIsHalf) {
  EXPECT_EQ(dnfProbability(GateDnf{{lit(7, true)}}), Rational(1, 2));
}

TEST(Condition, ConjunctionIsProductOfHalves) {
  EXPECT_EQ(dnfProbability(GateDnf{{lit(1, true), lit(2, false), lit(3, true)}}),
            Rational(1, 8));
}

TEST(Condition, UnionWithOverlapIsInclusionExclusion) {
  // P(s1 | s2) = 3/4 even though terms overlap.
  EXPECT_EQ(dnfProbability(GateDnf{{lit(1, true)}, {lit(2, true)}}), Rational(3, 4));
}

TEST(Condition, SupportLimitEnforced) {
  GateDnf big;
  GateTerm term;
  for (NodeId i = 0; i < 30; ++i) term.push_back(lit(i, true));
  big.push_back(term);
  EXPECT_THROW((void)dnfProbability(big, 24), SynthesisError);
  EXPECT_NO_THROW((void)dnfProbability(big, 30));
}

TEST(Condition, ToStringReadable) {
  Graph g;
  const NodeId a = g.addInput("flagA", 1);
  const NodeId b = g.addInput("flagB", 1);
  const GateDnf dnf{{lit(a, true), lit(b, false)}, {lit(b, true)}};
  const std::string text = dnfToString(dnf, g);
  EXPECT_EQ(text, "(flagA=1 & flagB=0) | (flagB=1)");
  EXPECT_EQ(dnfToString(GateDnf{}, g), "false");
  EXPECT_EQ(dnfToString(dnfTrue(), g), "true");
}

}  // namespace
}  // namespace pmsched
