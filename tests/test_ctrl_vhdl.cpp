// Tests for controller synthesis and the VHDL writers.

#include <gtest/gtest.h>

#include "alloc/binding.hpp"
#include "circuits/circuits.hpp"
#include "ctrl/controller.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/shared_gating.hpp"
#include "vhdl/emit.hpp"

namespace pmsched {
namespace {

struct Flow {
  PowerManagedDesign design;
  Schedule sched;
  Binding binding;
  ActivationResult activation;
  ControllerSpec ctrl;
};

Flow runFlow(const Graph& g, int steps, bool pm) {
  Flow flow{.design = pm ? applyPowerManagement(g, steps) : unmanagedDesign(g, steps),
            .sched = {},
            .binding = {},
            .activation = {},
            .ctrl = {}};
  if (pm) applySharedGating(flow.design);
  const ResourceVector units = minimizeResources(flow.design.graph, steps);
  flow.sched = *listSchedule(flow.design.graph, steps, units).schedule;
  flow.binding = bindDesign(flow.design.graph, flow.sched);
  flow.activation = analyzeActivation(flow.design);
  flow.ctrl = synthesizeController(flow.design, flow.sched, flow.binding, flow.activation);
  return flow;
}

TEST(Controller, OneLoadPerRegisteredValue) {
  const Flow flow = runFlow(circuits::gcd(), 7, true);
  int registered = 0;
  for (NodeId n = 0; n < flow.design.graph.size(); ++n)
    if (isScheduled(flow.design.graph.kind(n)) && flow.binding.registerOf[n] >= 0)
      ++registered;
  EXPECT_EQ(static_cast<int>(flow.ctrl.loads.size()), registered);
}

TEST(Controller, GatedLoadsOnlyWithPowerManagement) {
  const Flow baseline = runFlow(circuits::gcd(), 7, false);
  EXPECT_EQ(baseline.ctrl.gatedLoadCount(), 0);

  const Flow pm = runFlow(circuits::gcd(), 7, true);
  EXPECT_GT(pm.ctrl.gatedLoadCount(), 0);
  EXPECT_GT(pm.ctrl.conditionLiterals(), 0);
}

TEST(Controller, PmControllerIsMoreComplex) {
  // The paper: "the controller is somewhat more complex" with PM.
  const Flow baseline = runFlow(circuits::dealer(), 6, false);
  const Flow pm = runFlow(circuits::dealer(), 6, true);
  EXPECT_GT(pm.ctrl.estimatedArea(), baseline.ctrl.estimatedArea());
  EXPECT_EQ(pm.ctrl.stateCount(), baseline.ctrl.stateCount());
}

TEST(Controller, StatusCapturedBeforeUse) {
  const Flow flow = runFlow(circuits::dealer(), 6, true);
  for (const LoadAction& load : flow.ctrl.loads) {
    for (const GateTerm& term : load.condition) {
      for (const GateLiteral& lit : term) {
        if (!isScheduled(flow.design.graph.kind(lit.select))) continue;
        EXPECT_LT(flow.sched.stepOf(lit.select), load.step);
      }
    }
  }
}

TEST(Controller, LoadsSortedByStep) {
  const Flow flow = runFlow(circuits::vender(), 6, true);
  for (std::size_t i = 1; i < flow.ctrl.loads.size(); ++i)
    EXPECT_LE(flow.ctrl.loads[i - 1].step, flow.ctrl.loads[i].step);
}

TEST(Vhdl, DatapathStructurallyComplete) {
  const Flow flow = runFlow(circuits::gcd(), 7, true);
  const std::string text = vhdl::emitDatapath(flow.design, flow.sched, flow.ctrl);

  EXPECT_NE(text.find("entity gcd_datapath is"), std::string::npos);
  EXPECT_NE(text.find("architecture rtl of gcd_datapath"), std::string::npos);
  // Every input/output port present.
  for (const NodeId n : flow.design.graph.nodesOfKind(OpKind::Input))
    EXPECT_NE(text.find("pi_" + flow.design.graph.node(n).name), std::string::npos);
  for (const NodeId n : flow.design.graph.nodesOfKind(OpKind::Output))
    EXPECT_NE(text.find("po_" + flow.design.graph.node(n).name), std::string::npos);
  // Every load enable declared and used.
  for (const LoadAction& load : flow.ctrl.loads) {
    const std::string ld = "ld_" + flow.design.graph.node(load.value).name;
    EXPECT_NE(text.find(ld + " : in std_logic"), std::string::npos) << ld;
    EXPECT_NE(text.find("if " + ld + " = '1'"), std::string::npos) << ld;
  }
  EXPECT_NE(text.find("rising_edge(clk)"), std::string::npos);
}

TEST(Vhdl, ControllerEncodesGatedEnables) {
  const Flow flow = runFlow(circuits::gcd(), 7, true);
  const std::string text = vhdl::emitController(flow.design, flow.sched, flow.ctrl);

  EXPECT_NE(text.find("entity gcd_controller is"), std::string::npos);
  EXPECT_NE(text.find("signal state"), std::string::npos);
  // Gated loads must reference a status bit in their enable expression.
  bool sawGated = false;
  for (const LoadAction& load : flow.ctrl.loads) {
    if (!load.isGated()) continue;
    sawGated = true;
    EXPECT_NE(text.find("st_"), std::string::npos);
  }
  EXPECT_TRUE(sawGated);
}

TEST(Vhdl, BaselineControllerHasNoConditions) {
  const Flow flow = runFlow(circuits::gcd(), 7, false);
  const std::string text = vhdl::emitController(flow.design, flow.sched, flow.ctrl);
  EXPECT_EQ(text.find(" and ("), std::string::npos);
}

TEST(Vhdl, TestbenchAssertsInterpreterValues) {
  const Flow flow = runFlow(circuits::absdiff(), 3, true);
  const std::string text =
      vhdl::emitTestbench(flow.design, flow.sched, flow.ctrl, /*vectors=*/3, /*seed=*/11);
  EXPECT_NE(text.find("entity absdiff_tb is"), std::string::npos);
  // Three vectors -> three asserts on the single output.
  std::size_t count = 0;
  for (std::size_t pos = text.find("assert po_abs_out"); pos != std::string::npos;
       pos = text.find("assert po_abs_out", pos + 1))
    ++count;
  EXPECT_EQ(count, 3u);
  EXPECT_NE(text.find("report \"testbench done\""), std::string::npos);
}

TEST(Vhdl, EmittedTextIsBalanced) {
  // Sanity: every 'entity' has an 'end entity;', every process an
  // 'end process;'.
  const Flow flow = runFlow(circuits::dealer(), 6, true);
  for (const std::string& text : {vhdl::emitDatapath(flow.design, flow.sched, flow.ctrl),
                                 vhdl::emitController(flow.design, flow.sched, flow.ctrl)}) {
    auto countOf = [&](const std::string& needle) {
      std::size_t count = 0;
      for (std::size_t pos = text.find(needle); pos != std::string::npos;
           pos = text.find(needle, pos + 1))
        ++count;
      return count;
    };
    EXPECT_EQ(countOf("entity"), 2u);  // declaration + "end entity;"
    EXPECT_EQ(countOf("process ("), countOf("end process;"));
  }
}

}  // namespace
}  // namespace pmsched
