// Canonical-form invariance suite (src/cdfg/analysis.hpp).
//
// The design cache keys requests by canonicalHash(), so two properties are
// load-bearing: isomorphic graphs (same structure, any node names, any
// insertion order) must canonicalize identically, and structural edits —
// however small — must change the form. Both are exercised across 100+
// seeded random DFGs.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <random>
#include <vector>

#include "cdfg/analysis.hpp"
#include "cdfg/graph.hpp"
#include "support/random_dfg.hpp"

namespace pmsched {
namespace {

/// Re-add every node of `g` in `order` (must be topological) with fresh
/// names; `tweak` may mutate one node record before insertion.
Graph rebuild(const Graph& g, const std::vector<NodeId>& order,
              const std::function<void(NodeId, Node&)>& tweak = nullptr) {
  Graph out("rebuilt");
  std::vector<NodeId> map(g.size(), kInvalidNode);
  std::size_t serial = 0;
  for (NodeId id : order) {
    Node n = g.node(id);
    if (tweak) tweak(id, n);
    const std::string name = "p" + std::to_string(serial++);
    std::vector<NodeId> ops;
    ops.reserve(n.operands.size());
    for (NodeId o : n.operands) ops.push_back(map[o]);
    NodeId fresh = kInvalidNode;
    switch (n.kind) {
      case OpKind::Input: fresh = out.addInput(name, n.width); break;
      case OpKind::Const: fresh = out.addConst(n.constValue, n.width, name); break;
      case OpKind::Output: fresh = out.addOutput(ops[0], name); break;
      case OpKind::Wire: fresh = out.addWire(ops[0], n.shift, name); break;
      case OpKind::Mux: fresh = out.addMux(ops[0], ops[1], ops[2], name); break;
      default: fresh = out.addOp(n.kind, ops, name, n.width); break;
    }
    map[id] = fresh;
  }
  // Control edges under the same mapping, in the original emit order.
  for (NodeId id = 0; id < g.size(); ++id)
    for (NodeId succ : g.controlSuccessors(id)) out.addControlEdge(map[id], map[succ]);
  return out;
}

/// A uniformly random topological order (data edges only suffice for the
/// generator's DFGs; control edges are handled by the indegree count too).
std::vector<NodeId> randomTopoOrder(const Graph& g, std::mt19937_64& rng) {
  std::vector<std::size_t> missing(g.size(), 0);
  for (NodeId id = 0; id < g.size(); ++id)
    missing[id] = g.fanins(id).size() + g.controlPredecessors(id).size();
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < g.size(); ++id)
    if (missing[id] == 0) ready.push_back(id);
  std::vector<NodeId> order;
  order.reserve(g.size());
  while (!ready.empty()) {
    const std::size_t pick = rng() % ready.size();
    const NodeId id = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (NodeId c : g.fanoutCsr().row(id))
      if (--missing[c] == 0) ready.push_back(c);
    for (NodeId c : g.controlSuccessors(id))
      if (--missing[c] == 0) ready.push_back(c);
  }
  return order;
}

std::vector<Graph> testGraphs() {
  std::vector<Graph> graphs;
  for (int layers = 2; layers <= 6; ++layers)
    for (int perLayer = 2; perLayer <= 6; ++perLayer)
      for (std::uint64_t seed : {1ULL, 17ULL, 99ULL, 4242ULL, 31337ULL})
        graphs.push_back(randomLayeredDfg(layers, perLayer, seed));
  return graphs;  // 5*5*5 = 125 graphs
}

TEST(CanonicalHash, RenameInvariance) {
  std::size_t checked = 0;
  for (const Graph& g : testGraphs()) {
    const CanonicalForm original = canonicalizeGraph(g);
    // Same insertion order, every node renamed.
    const Graph renamed = rebuild(g, g.allNodes());
    const CanonicalForm form = canonicalizeGraph(renamed);
    ASSERT_EQ(original.text, form.text);
    ASSERT_EQ(original.hash, form.hash);
    ++checked;
  }
  EXPECT_GE(checked, 100u);
}

TEST(CanonicalHash, InsertionOrderInvariance) {
  std::mt19937_64 rng(0xDAC1996);
  std::size_t checked = 0;
  for (const Graph& g : testGraphs()) {
    const CanonicalForm original = canonicalizeGraph(g);
    for (int round = 0; round < 3; ++round) {
      const Graph shuffled = rebuild(g, randomTopoOrder(g, rng));
      const CanonicalForm form = canonicalizeGraph(shuffled);
      ASSERT_EQ(original.text, form.text);
      ASSERT_EQ(original.hash, form.hash);
    }
    ++checked;
  }
  EXPECT_GE(checked, 100u);
}

TEST(CanonicalHash, StructuralEditsChangeTheForm) {
  std::mt19937_64 rng(7);
  for (const Graph& g : testGraphs()) {
    const CanonicalForm original = canonicalizeGraph(g);

    // Edit 1: flip one binary arithmetic op.
    std::vector<NodeId> arith;
    for (NodeId id = 0; id < g.size(); ++id)
      if (g.kind(id) == OpKind::Add || g.kind(id) == OpKind::Sub) arith.push_back(id);
    if (!arith.empty()) {
      const NodeId victim = arith[rng() % arith.size()];
      const Graph edited = rebuild(g, g.allNodes(), [&](NodeId id, Node& n) {
        if (id == victim) n.kind = n.kind == OpKind::Add ? OpKind::Sub : OpKind::Add;
      });
      EXPECT_NE(original.text, canonicalizeGraph(edited).text);
    }

    // Edit 2: swap a mux's true/false inputs (slots are semantic).
    for (NodeId id = 0; id < g.size(); ++id) {
      const Node& n = g.node(id);
      if (n.kind == OpKind::Mux && n.operands[1] != n.operands[2]) {
        const Graph edited = rebuild(g, g.allNodes(), [&](NodeId nid, Node& node) {
          if (nid == id) std::swap(node.operands[1], node.operands[2]);
        });
        EXPECT_NE(original.text, canonicalizeGraph(edited).text);
        break;
      }
    }

    // Edit 3: a new control edge is part of the identity.
    {
      Graph edited = g.clone();
      const std::vector<NodeId> sched = edited.scheduledNodes();
      if (sched.size() >= 2) {
        const std::vector<NodeId> topo(edited.topoOrder());
        // First and last scheduled node in topo order: always acyclic.
        NodeId first = kInvalidNode, last = kInvalidNode;
        for (NodeId id : topo)
          if (std::find(sched.begin(), sched.end(), id) != sched.end()) {
            if (first == kInvalidNode) first = id;
            last = id;
          }
        if (first != last) {
          edited.addControlEdge(first, last);
          EXPECT_NE(original.text, canonicalizeGraph(edited).text);
        }
      }
    }
  }
}

TEST(CanonicalHash, ConstValueAndWidthAreSemantic) {
  const Graph g = randomLayeredDfg(4, 4, 11);
  const CanonicalForm original = canonicalizeGraph(g);

  bool editedConst = false;
  for (NodeId id = 0; id < g.size() && !editedConst; ++id)
    if (g.kind(id) == OpKind::Const) {
      const Graph edited = rebuild(g, g.allNodes(), [&](NodeId nid, Node& n) {
        if (nid == id) n.constValue += 1;
      });
      EXPECT_NE(original.text, canonicalizeGraph(edited).text);
      editedConst = true;
    }

  const Graph widened = rebuild(g, g.allNodes(), [&](NodeId nid, Node& n) {
    if (nid == 0) n.width += 8;
  });
  EXPECT_NE(original.text, canonicalizeGraph(widened).text);
}

TEST(CanonicalHash, OrderAndIndexAreInversePermutations) {
  const Graph g = randomLayeredDfg(5, 5, 3);
  const CanonicalForm form = canonicalizeGraph(g);
  ASSERT_EQ(form.order.size(), g.size());
  ASSERT_EQ(form.indexOf.size(), g.size());
  for (std::size_t i = 0; i < form.order.size(); ++i)
    EXPECT_EQ(form.indexOf[form.order[i]], i);
  EXPECT_EQ(form.hash, canonicalHash(g));
}

TEST(CanonicalHash, DistinctSeedsProduceDistinctForms) {
  // Sanity against degenerate hashing: different structures should
  // (essentially always) disagree.
  const CanonicalForm a = canonicalizeGraph(randomLayeredDfg(4, 4, 1));
  const CanonicalForm b = canonicalizeGraph(randomLayeredDfg(4, 4, 2));
  EXPECT_NE(a.text, b.text);
  EXPECT_NE(a.hash, b.hash);
}

}  // namespace
}  // namespace pmsched
