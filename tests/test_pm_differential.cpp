// Differential tests for the oracle-backed power-management paths: the
// incremental transform, exact search, and shared gating must produce
// bit-identical designs (managed sets, gated sets, control edges, frames,
// resolved conditions) to the retained from-scratch reference paths.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cdfg/analysis.hpp"
#include "circuits/circuits.hpp"
#include "power/activation.hpp"
#include "sched/power_transform.hpp"
#include "sched/shared_gating.hpp"
#include "support/random_dfg.hpp"
#include "support/thread_pool.hpp"

namespace pmsched {
namespace {

std::vector<Graph> allCircuits() {
  std::vector<Graph> out;
  for (const auto& entry : circuits::paperCircuits()) out.push_back(entry.build());
  out.push_back(circuits::cordic());
  out.push_back(circuits::diffeq());
  out.push_back(circuits::fir8());
  out.push_back(circuits::arf());
  out.push_back(circuits::ewf());
  return out;
}

void expectDesignsEqual(const PowerManagedDesign& a, const PowerManagedDesign& b,
                        const std::string& what) {
  ASSERT_EQ(a.steps, b.steps) << what;
  ASSERT_EQ(a.muxes.size(), b.muxes.size()) << what;
  for (std::size_t i = 0; i < a.muxes.size(); ++i) {
    const MuxPmInfo& ma = a.muxes[i];
    const MuxPmInfo& mb = b.muxes[i];
    ASSERT_EQ(ma.mux, mb.mux) << what;
    ASSERT_EQ(ma.managed, mb.managed) << what << ": mux " << ma.mux;
    ASSERT_EQ(ma.reason, mb.reason) << what << ": mux " << ma.mux;
    ASSERT_EQ(ma.lastControl, mb.lastControl) << what << ": mux " << ma.mux;
    ASSERT_EQ(ma.gatedTrue, mb.gatedTrue) << what << ": mux " << ma.mux;
    ASSERT_EQ(ma.gatedFalse, mb.gatedFalse) << what << ": mux " << ma.mux;
    ASSERT_EQ(ma.topTrue, mb.topTrue) << what << ": mux " << ma.mux;
    ASSERT_EQ(ma.topFalse, mb.topFalse) << what << ": mux " << ma.mux;
  }
  ASSERT_EQ(a.frames.asap, b.frames.asap) << what;
  ASSERT_EQ(a.frames.alap, b.frames.alap) << what;
  ASSERT_EQ(a.graph.size(), b.graph.size()) << what;
  ASSERT_EQ(a.graph.controlEdgeCount(), b.graph.controlEdgeCount()) << what;
  for (NodeId n = 0; n < a.graph.size(); ++n) {
    ASSERT_EQ(a.graph.controlPredecessors(n), b.graph.controlPredecessors(n))
        << what << ": control preds of node " << n;
    ASSERT_EQ(a.sharedGating[n], b.sharedGating[n]) << what << ": shared gating of " << n;
    ASSERT_EQ(a.gates[n].size(), b.gates[n].size()) << what << ": gates of " << n;
    for (std::size_t k = 0; k < a.gates[n].size(); ++k) {
      ASSERT_EQ(a.gates[n][k].mux, b.gates[n][k].mux) << what;
      ASSERT_EQ(a.gates[n][k].side, b.gates[n][k].side) << what;
    }
  }
  // Resolved activation conditions compose gates and shared gating; their
  // equality seals the full downstream-visible state.
  const std::vector<GateDnf> condA = resolveActivationConditions(a);
  const std::vector<GateDnf> condB = resolveActivationConditions(b);
  ASSERT_EQ(condA, condB) << what;
}

TEST(PowerTransformDifferential, GreedyMatchesReferenceOnCircuits) {
  for (const Graph& g : allCircuits()) {
    const int cp = criticalPathLength(g);
    for (const int slack : {0, 1, 3}) {
      const std::string what = g.name() + " @" + std::to_string(cp + slack);
      expectDesignsEqual(applyPowerManagement(g, cp + slack),
                         applyPowerManagementReference(g, cp + slack), what);
    }
  }
}

TEST(PowerTransformDifferential, AllOrderingsMatchReference) {
  const Graph g = circuits::dealer();
  const int steps = criticalPathLength(g) + 2;
  for (const MuxOrdering ordering :
       {MuxOrdering::OutputFirst, MuxOrdering::InputFirst, MuxOrdering::BySavings}) {
    expectDesignsEqual(applyPowerManagement(g, steps, ordering),
                       applyPowerManagementReference(g, steps, ordering),
                       "dealer ordering " + std::to_string(static_cast<int>(ordering)));
  }
}

TEST(PowerTransformDifferential, GreedyMatchesReferenceOnRandomDfgs) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const Graph g = randomLayeredDfg(3 + static_cast<int>(seed % 6), 4, seed);
    const int cp = criticalPathLength(g);
    for (const int slack : {1, 4}) {
      const std::string what = "seed " + std::to_string(seed) + " @" + std::to_string(cp + slack);
      expectDesignsEqual(applyPowerManagement(g, cp + slack),
                         applyPowerManagementReference(g, cp + slack), what);
    }
  }
}

TEST(PowerTransformDifferential, MultiCycleModelMatchesReference) {
  const LatencyModel model = LatencyModel::multiCycleMultiplier(2);
  for (std::uint64_t seed = 30; seed < 36; ++seed) {
    const Graph g = randomLayeredDfg(5, 4, seed);
    const int steps = criticalPathLength(g) * 2 + 3;
    expectDesignsEqual(applyPowerManagement(g, steps, MuxOrdering::OutputFirst, model),
                       applyPowerManagementReference(g, steps, MuxOrdering::OutputFirst, model),
                       "multi-cycle seed " + std::to_string(seed));
  }
}

TEST(PowerTransformDifferential, OptimalMatchesReference) {
  for (const Graph& g : allCircuits()) {
    const int steps = criticalPathLength(g) + 2;
    expectDesignsEqual(applyPowerManagementOptimal(g, steps),
                       applyPowerManagementOptimalReference(g, steps),
                       g.name() + " optimal");
  }
  for (std::uint64_t seed = 50; seed < 58; ++seed) {
    const Graph g = randomLayeredDfg(4 + static_cast<int>(seed % 3), 4, seed);
    const int steps = criticalPathLength(g) + 2;
    expectDesignsEqual(applyPowerManagementOptimal(g, steps),
                       applyPowerManagementOptimalReference(g, steps),
                       "optimal seed " + std::to_string(seed));
  }
}

/// RAII thread-count override so a failing test cannot leak its setting.
/// Speculation is FORCED so the differential graphs — far below the
/// auto-mode size heuristic — still exercise the full farm machinery; the
/// PREVIOUS mode is restored on exit (hardcoding Auto would permanently
/// shadow a PMSCHED_SPECULATE=force environment pin for later tests).
struct ScopedThreads {
  explicit ScopedThreads(std::size_t n) : prev_(speculationMode()) {
    setThreadCount(n);
    setSpeculationMode(SpeculationMode::Force);
  }
  ~ScopedThreads() {
    setThreadCount(0);
    setSpeculationMode(prev_);
  }
  SpeculationMode prev_;
};

TEST(PowerTransformDifferential, DesignsAreIdenticalAtOneTwoAndEightThreads) {
  // The speculative parallel sweep must be BIT-identical to the sequential
  // one at every thread count — the whole point of the wave/commit
  // protocol. Run greedy + shared gating and the exact search on the same
  // inputs at 1, 2 and 8 threads and compare everything.
  std::vector<Graph> graphs;
  graphs.push_back(circuits::dealer());
  graphs.push_back(circuits::diffeq());
  for (std::uint64_t seed = 90; seed < 96; ++seed)
    graphs.push_back(randomLayeredDfg(6, 5, seed));

  for (const Graph& g : graphs) {
    const int steps = criticalPathLength(g) + 2;

    std::vector<PowerManagedDesign> greedy;
    std::vector<PowerManagedDesign> optimal;
    std::vector<int> sharedCounts;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      ScopedThreads guard(threads);
      PowerManagedDesign design = applyPowerManagement(g, steps);
      sharedCounts.push_back(applySharedGating(design));
      greedy.push_back(std::move(design));
      optimal.push_back(applyPowerManagementOptimal(g, steps));
    }
    for (std::size_t i = 1; i < greedy.size(); ++i) {
      ASSERT_EQ(sharedCounts[0], sharedCounts[i]) << g.name();
      expectDesignsEqual(greedy[0], greedy[i],
                         g.name() + " greedy+shared, thread variant " + std::to_string(i));
      expectDesignsEqual(optimal[0], optimal[i],
                         g.name() + " optimal, thread variant " + std::to_string(i));
    }
  }
}

TEST(PowerTransformDifferential, ActivationAnalysisIsThreadCountInvariant) {
  // The partitioned BDD build must produce the same conditions and exact
  // probabilities as the sequential shared-manager build.
  const Graph g = randomLayeredDfg(8, 5, 97);
  const int steps = criticalPathLength(g) + 3;

  ActivationResult base;
  {
    ScopedThreads guard(1);
    PowerManagedDesign design = applyPowerManagement(g, steps);
    applySharedGating(design);
    base = analyzeActivation(design);
  }
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    ScopedThreads guard(threads);
    PowerManagedDesign design = applyPowerManagement(g, steps);
    applySharedGating(design);
    const ActivationResult r = analyzeActivation(design);
    ASSERT_EQ(r.condition, base.condition) << threads;
    ASSERT_EQ(r.probability.size(), base.probability.size());
    for (std::size_t n = 0; n < r.probability.size(); ++n)
      ASSERT_EQ(r.probability[n], base.probability[n]) << threads << " node " << n;
    for (std::size_t c = 0; c < kNumUnitClasses; ++c)
      ASSERT_EQ(r.averageExecuted[c], base.averageExecuted[c]) << threads;
    // The shared manager's refs must still be canonical: equal conditions
    // share a ref, and probability queries on the merged manager agree
    // with the partition-computed values.
    for (std::size_t n = 0; n < r.bdd.size(); ++n)
      ASSERT_EQ(r.bdds->probability(r.bdd[n]), r.probability[n]) << threads << " node " << n;
  }
}

TEST(SharedGatingDifferential, MatchesReferenceOnCircuitsAndRandomDfgs) {
  auto check = [](const Graph& g, int steps, const std::string& what) {
    PowerManagedDesign fast = applyPowerManagement(g, steps);
    PowerManagedDesign ref = applyPowerManagementReference(g, steps);
    const int gatedFast = applySharedGating(fast);
    const int gatedRef = applySharedGatingReference(ref);
    ASSERT_EQ(gatedFast, gatedRef) << what;
    expectDesignsEqual(fast, ref, what + " (after shared gating)");
  };
  for (const Graph& g : allCircuits())
    check(g, criticalPathLength(g) + 2, g.name() + " shared gating");
  for (std::uint64_t seed = 70; seed < 80; ++seed) {
    const Graph g = randomLayeredDfg(5, 4, seed);
    check(g, criticalPathLength(g) + 3, "shared gating seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace pmsched
