// Deterministic malformed-input corpus replay: every tests/corpus/*.bad.cdfg
// must be rejected with a ParseError (one exception family, a usable
// location, a nonempty message — never an abort or a stray exception type),
// and every *.ok.cdfg must load and validate. The same files run through
// the pmsched CLI in tools/run_corpus.sh, which additionally pins the exit
// codes and the structured stderr diagnostic.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cdfg/textio.hpp"

#ifndef PMSCHED_CORPUS_DIR
#error "PMSCHED_CORPUS_DIR must point at tests/corpus (set by CMakeLists.txt)"
#endif

namespace pmsched {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<fs::path> corpusFiles(const std::string& suffix) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(PMSCHED_CORPUS_DIR)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0)
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Corpus, EveryMalformedFileIsRejectedWithAStructuredParseError) {
  const std::vector<fs::path> bad = corpusFiles(".bad.cdfg");
  ASSERT_GE(bad.size(), 12u) << "corpus went missing from " << PMSCHED_CORPUS_DIR;
  for (const fs::path& path : bad) {
    const std::string text = slurp(path);
    try {
      (void)loadGraphText(text);
      ADD_FAILURE() << path.filename() << ": expected ParseError, parsed fine";
    } catch (const ParseError& e) {
      EXPECT_FALSE(std::string(e.what()).empty()) << path.filename();
      // loc line 0 is the documented "whole-graph problem" marker; any
      // other value must point into the file.
      const std::size_t lines =
          static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')) + 1;
      EXPECT_LE(e.loc().line, lines) << path.filename();
    } catch (const std::exception& e) {
      ADD_FAILURE() << path.filename() << ": wrong exception family: " << e.what();
    }
  }
}

TEST(Corpus, EveryValidFileLoadsAndValidates) {
  const std::vector<fs::path> ok = corpusFiles(".ok.cdfg");
  ASSERT_GE(ok.size(), 2u) << "corpus went missing from " << PMSCHED_CORPUS_DIR;
  for (const fs::path& path : ok) {
    const Graph g = loadGraphText(slurp(path));
    EXPECT_GT(g.size(), 0u) << path.filename();
    EXPECT_NO_THROW(g.validate()) << path.filename();
  }
}

}  // namespace
}  // namespace pmsched
