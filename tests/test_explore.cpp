// Explore-driver suite: Pareto-front dominance invariants, bit-identity of
// every front point against the one-shot pipeline, the amortized-vs-
// per-point differential (the executable form of the saturation argument in
// docs/EXPLORE.md), budget exhaustion as a monotone clean prefix, the
// explore-point fault contract, and the server "explore" op (which must
// bypass both design-cache levels). The CMake registration runs this binary
// at 1, 2 and 8 compute threads with forced speculation — every assertion
// here is thread-count-invariant by construction.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cdfg/textio.hpp"
#include "circuits/circuits.hpp"
#include "explore/explore.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "support/fault_injector.hpp"
#include "support/json.hpp"
#include "support/random_dfg.hpp"
#include "support/run_budget.hpp"

namespace pmsched {
namespace {

ExploreRequest requestFor(Graph g, int span = 8) {
  ExploreRequest req;
  req.graph = std::move(g);
  req.span = span;
  return req;
}

/// The inputs every differential below sweeps: the paper's circuits (the
/// negative controls included) plus a layered random DFG large enough to
/// exercise saturation, pruning and the synthesis-skip path.
std::vector<ExploreRequest> sweepInputs(int span = 8) {
  std::vector<ExploreRequest> inputs;
  for (const auto& named : circuits::paperCircuits())
    inputs.push_back(requestFor(named.build(), span));
  inputs.push_back(requestFor(randomLayeredDfg(32, 6, 1), span));
  return inputs;
}

/// One front point rendered for comparison: the summary exactly as the
/// server/CLI would serialize it, plus the raw dominance doubles.
std::string pointKey(const ExplorePoint& p) {
  return std::to_string(p.steps) + "|" +
         makeDesignResultJson(p.summary, {}, false) + "|" +
         std::to_string(p.power) + "|" + std::to_string(p.area);
}

TEST(Explore, FrontDominanceInvariants) {
  for (const ExploreRequest& req : sweepInputs()) {
    const ExploreResult res = exploreDesignSpace(req);
    SCOPED_TRACE(res.circuit);
    EXPECT_FALSE(res.degraded);
    for (std::size_t i = 0; i < res.front.size(); ++i) {
      const ExplorePoint& p = res.front[i];
      EXPECT_GE(p.steps, res.minSteps);
      EXPECT_LE(p.steps, res.maxSteps);
      for (std::size_t j = 0; j < i; ++j) {
        const ExplorePoint& q = res.front[j];
        EXPECT_LT(q.steps, p.steps);  // ascending latency
        // No admitted point may be dominated by an earlier one.
        EXPECT_FALSE(q.power >= p.power && q.area <= p.area)
            << "point at " << p.steps << " dominated by " << q.steps;
      }
    }
  }
}

TEST(Explore, FrontPointsBitIdenticalToOneShot) {
  for (const ExploreRequest& req : sweepInputs()) {
    const ExploreResult res = exploreDesignSpace(req);
    SCOPED_TRACE(res.circuit);
    for (const ExplorePoint& p : res.front) {
      DesignJob job;
      job.graph = req.graph;
      job.steps = p.steps;
      job.ordering = req.ordering;
      job.optimal = req.optimal;
      job.shared = req.shared;
      const DesignOutcome oneShot = runDesignJob(job);
      EXPECT_EQ(makeDesignResultJson(p.summary, {}, false),
                makeDesignResultJson(oneShot.summary, {}, false))
          << "steps " << p.steps;
    }
  }
}

TEST(Explore, AmortizedMatchesPerPointReference) {
  for (ExploreRequest req : sweepInputs()) {
    for (const bool optimal : {false, true}) {
      req.optimal = optimal;
      const ExploreResult amortized = exploreDesignSpace(req);
      const ExploreResult reference = explorePerPointReference(req);
      SCOPED_TRACE(amortized.circuit + (optimal ? " (optimal)" : ""));
      EXPECT_EQ(renderExploreFrontJson(amortized), renderExploreFrontJson(reference));
      ASSERT_EQ(amortized.skipped.size(), reference.skipped.size());
      for (std::size_t i = 0; i < amortized.skipped.size(); ++i) {
        EXPECT_EQ(amortized.skipped[i].steps, reference.skipped[i].steps);
        EXPECT_EQ(amortized.skipped[i].kind, reference.skipped[i].kind);
      }
    }
  }
}

TEST(Explore, AmortizationActuallyKicksIn) {
  // The 32-layer DFG saturates inside the sweep: past that point the driver
  // must stop paying for full pipeline runs.
  const ExploreResult res = exploreDesignSpace(requestFor(randomLayeredDfg(32, 6, 1), 16));
  EXPECT_GT(res.stats.saturationSteps, 0);
  EXPECT_GT(res.stats.amortizedRuns + res.stats.pruned, 0);
  EXPECT_LT(res.stats.fullRuns, res.stats.pointsSwept);
  // And the predictive relaxed bound never lies past the empirical one.
  if (res.stats.relaxedBoundSteps >= 0)
    EXPECT_LE(res.stats.relaxedBoundSteps, res.stats.saturationSteps);
}

TEST(Explore, BudgetExhaustionYieldsMonotoneCleanPrefix) {
  const ExploreRequest req = requestFor(randomLayeredDfg(32, 6, 1), 16);
  const ExploreResult full = exploreDesignSpace(req);
  ASSERT_FALSE(full.degraded);
  // Sweep the probe cap (deterministic, unlike a wall-clock deadline) from
  // starvation to plenty: at every cap the partial front must be a prefix
  // of the unbudgeted front, point for point.
  for (const std::uint64_t cap : {1ull, 50ull, 500ull, 5000ull, 50000ull}) {
    RunBudget budget;
    budget.setProbeCap(cap);
    const ExploreResult part = exploreDesignSpace(req, &budget);
    SCOPED_TRACE("probe cap " + std::to_string(cap));
    ASSERT_LE(part.front.size(), full.front.size());
    for (std::size_t i = 0; i < part.front.size(); ++i)
      EXPECT_EQ(pointKey(part.front[i]), pointKey(full.front[i]));
    if (part.front.size() < full.front.size()) {
      EXPECT_TRUE(part.degraded);
      EXPECT_EQ(part.degradeReason, "explore");
    }
  }
}

TEST(Explore, FaultSkipsPointKeepsFront) {
  const ExploreRequest req = requestFor(circuits::dealer(), 6);
  const ExploreResult clean = exploreDesignSpace(req);
  ASSERT_GE(clean.front.size(), 1u);

  fault::arm("explore-point:2");
  const ExploreResult faulted = exploreDesignSpace(req);
  fault::arm("");

  ASSERT_EQ(faulted.skipped.size(), 1u);
  EXPECT_EQ(faulted.skipped[0].kind, "fault");
  EXPECT_EQ(faulted.skipped[0].steps, faulted.minSteps + 1);
  EXPECT_FALSE(faulted.degraded);  // a skipped point is not degradation
  EXPECT_FALSE(faulted.front.empty());
  // Every surviving front point is still bit-identical to the clean sweep's
  // point at the same budget.
  for (const ExplorePoint& p : faulted.front) {
    bool matched = false;
    for (const ExplorePoint& q : clean.front)
      if (q.steps == p.steps) {
        EXPECT_EQ(pointKey(p), pointKey(q));
        matched = true;
      }
    // A point absent from the clean front could only appear because the
    // faulted sweep skipped one of its dominators; dominance still holds
    // within the faulted front (checked by construction in the driver).
    (void)matched;
  }
}

TEST(Explore, RenderedJsonParsesAndIsStable) {
  const ExploreResult res = exploreDesignSpace(requestFor(circuits::gcd()));
  const std::string json = renderExploreJson(res);
  const JsonValue doc = parseJson(json);
  ASSERT_TRUE(doc.isObject());
  EXPECT_EQ(doc.find("mode")->asString(), "amortized");
  EXPECT_NE(doc.find("front"), nullptr);
  EXPECT_NE(doc.find("stats"), nullptr);
  // Rendering is a pure function of the result.
  EXPECT_EQ(json, renderExploreJson(res));
}

// ---- server "explore" op ---------------------------------------------------

std::string exploreFrame(int id, const std::string& graphText,
                         const std::string& extra = {}) {
  JsonWriter g;
  g.value(graphText);
  return "{\"id\":" + std::to_string(id) + ",\"op\":\"explore\",\"graph\":" + g.str() +
         extra + "}";
}

TEST(Explore, ServerExploreRoundTripBypassesCache) {
  ServerOptions opts;
  opts.workers = 0;  // deterministic: drainOne() runs jobs on this thread
  ServerCore core(opts);

  const std::string graphText = saveGraphText(circuits::dealer());
  std::vector<std::string> out;
  core.submitFrame(exploreFrame(1, graphText, ",\"span\":6"),
                   [&](const std::string& line) { out.push_back(line); });
  while (core.drainOne()) {
  }
  ASSERT_EQ(out.size(), 1u);
  const JsonValue response = parseJson(out[0]);
  ASSERT_TRUE(response.find("ok")->asBool()) << out[0];
  const JsonValue* result = response.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->find("mode")->asString(), "amortized");
  EXPECT_FALSE(result->find("front")->items().empty());

  // The response must equal the in-process sweep verbatim.
  ExploreRequest req = requestFor(circuits::dealer(), 6);
  std::string expected = makeResultResponse("1", renderExploreJson(exploreDesignSpace(req)));
  EXPECT_EQ(out[0], expected);

  // Explore results bypass BOTH cache levels: a byte-identical repeat is
  // recomputed, and the cache counters never move.
  out.clear();
  core.submitFrame(exploreFrame(2, graphText, ",\"span\":6"),
                   [&](const std::string& line) { out.push_back(line); });
  while (core.drainOne()) {
  }
  ASSERT_EQ(out.size(), 1u);
  const ServerStats stats = core.statsSnapshot();
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.exactHits, 0u);
  EXPECT_EQ(stats.cache.misses, 0u);
  EXPECT_EQ(stats.cache.inserts, 0u);
}

TEST(Explore, ServerExploreRejectsDesignOnlyFields) {
  ServerOptions opts;
  opts.workers = 0;
  ServerCore core(opts);
  const std::string graphText = saveGraphText(circuits::absdiff());

  for (const std::string& extra :
       {std::string(",\"steps\":4"), std::string(",\"cache\":true"),
        std::string(",\"emit_design\":true"), std::string(",\"min_steps\":9,\"max_steps\":4")}) {
    std::vector<std::string> out;
    core.submitFrame(exploreFrame(7, graphText, extra),
                     [&](const std::string& line) { out.push_back(line); });
    ASSERT_EQ(out.size(), 1u) << extra;
    const JsonValue response = parseJson(out[0]);
    EXPECT_FALSE(response.find("ok")->asBool()) << extra;
    EXPECT_EQ(response.find("error")->find("category")->asString(), "usage") << extra;
  }
  // And the design op does not grow the explore-only fields.
  std::vector<std::string> out;
  JsonWriter g;
  g.value(graphText);
  core.submitFrame("{\"id\":8,\"op\":\"design\",\"graph\":" + g.str() +
                       ",\"steps\":4,\"span\":6}",
                   [&](const std::string& line) { out.push_back(line); });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(parseJson(out[0]).find("error")->find("category")->asString(), "protocol");
}

}  // namespace
}  // namespace pmsched
